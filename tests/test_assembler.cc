/** @file Tests for the text assembler and disassembler round-trip. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "isa/assembler.hh"
#include "isa/disassembler.hh"
#include "workloads/workloads.hh"

namespace gpr {
namespace {

TEST(Assembler, MinimalKernel)
{
    const Program p = assemble(".kernel tiny\nEXIT\n");
    EXPECT_EQ(p.name(), "tiny");
    EXPECT_EQ(p.size(), 1u);
    EXPECT_EQ(p.inst(0).op, Opcode::Exit);
}

TEST(Assembler, FullSyntaxForms)
{
    const Program p = assemble(R"(
.kernel forms
.dialect cuda
.smem 64
start:
    S2R   V0, SR_TID_X
    MOV   V1, 0x10          # hex immediate
    MOV   V2, -3            // negative immediate
    FADD  V3, V1, 1.5f      # float immediate
    IMAD  V4, V0, V1, V2
    ISETP.LT P0, V4, 100
    SELP  V5, V1, V2, P0
@P0 BRA   start
@!P1 LDG  V6, [V4 + 8]
    STG   [V4 - 4], V6
    LDS   V7, [V0]
    STS   [V0 + 12], V7
    ATOMS_ADD [V0], V1
    BAR
    SYNC_LABEL: SYNC
    EXIT
)");
    EXPECT_EQ(p.size(), 16u);
    EXPECT_EQ(p.inst(1).src[0].imm, 0x10u);
    EXPECT_EQ(p.inst(2).src[0].imm, static_cast<Word>(-3));
    EXPECT_EQ(p.inst(3).src[0].imm, 0u); // dst V3; src0 = V1
    EXPECT_EQ(p.inst(3).src[1].imm, 0x3fc00000u); // 1.5f
    EXPECT_EQ(p.inst(5).cmp, CmpOp::Lt);
    EXPECT_EQ(p.inst(6).predSrc, 0u);
    EXPECT_EQ(p.inst(7).guard, 0);
    EXPECT_FALSE(p.inst(7).guardNegate);
    EXPECT_EQ(p.inst(7).target, 0u);
    EXPECT_EQ(p.inst(8).guard, 1);
    EXPECT_TRUE(p.inst(8).guardNegate);
    EXPECT_EQ(p.inst(8).memOffset, 8);
    EXPECT_EQ(p.inst(9).memOffset, -4);
    EXPECT_TRUE(p.inst(12).traits().isAtomic);
}

TEST(Assembler, SouthernIslandsScalarRegs)
{
    const Program p = assemble(R"(
.kernel si_test
.dialect si
    LDPARAM S0, 0
    IADD    S1, S0, 4
    MOV     V0, S1
    EXIT
)");
    EXPECT_EQ(p.dialect(), IsaDialect::SouthernIslands);
    EXPECT_EQ(p.numSRegs(), 2u);
    EXPECT_EQ(p.inst(1).dst.kind, OperandKind::SReg);
}

TEST(Assembler, ErrorsAreFatalWithDiagnostics)
{
    // Unknown mnemonic.
    EXPECT_THROW(assemble(".kernel k\nBOGUS V0, V1\nEXIT\n"), FatalError);
    // Unresolved label.
    EXPECT_THROW(assemble(".kernel k\nBRA nowhere\nEXIT\n"), FatalError);
    // Wrong operand count.
    EXPECT_THROW(assemble(".kernel k\nIADD V0, V1\nEXIT\n"), FatalError);
    // Bad guard register.
    EXPECT_THROW(assemble(".kernel k\n@P9 MOV V0, 1\nEXIT\n"), FatalError);
    // SETP without comparison suffix.
    EXPECT_THROW(assemble(".kernel k\nISETP P0, V0, V1\nEXIT\n"),
                 FatalError);
    // Redefined label.
    EXPECT_THROW(assemble(".kernel k\nx:\nx:\nEXIT\n"), FatalError);
    // Scalar register in CUDA dialect.
    EXPECT_THROW(assemble(".kernel k\n.dialect cuda\nMOV S0, 1\nEXIT\n"),
                 FatalError);
    // Empty program.
    EXPECT_THROW(assemble(".kernel k\n"), FatalError);
    // Missing EXIT.
    EXPECT_THROW(assemble(".kernel k\nMOV V0, 1\n"), FatalError);
    // Shared access without .smem declaration.
    EXPECT_THROW(assemble(".kernel k\nLDS V0, [V1]\nEXIT\n"), FatalError);
}

TEST(Assembler, CommentsAndBlankLines)
{
    const Program p = assemble(R"(
# full-line comment
.kernel c   // trailing comment

    NOP     # after instruction
    EXIT
)");
    EXPECT_EQ(p.size(), 2u);
}

TEST(Disassembler, RoundTripSynthetic)
{
    const char* source = R"(
.kernel rt
.dialect cuda
.smem 128
loop:
    S2R   V0, SR_CTAID_Y
    ISETP.GE P2, V0, 7
@!P2 BRA loop
    LDS   V1, [V0 + 4]
    FFMA  V2, V1, V1, V0
    STG   [V2], V1
    EXIT
)";
    const Program p1 = assemble(source);
    const Program p2 = assemble(disassemble(p1));
    ASSERT_EQ(p1.size(), p2.size());
    EXPECT_EQ(p1.numVRegs(), p2.numVRegs());
    EXPECT_EQ(p1.smemBytes(), p2.smemBytes());
    for (std::uint32_t i = 0; i < p1.size(); ++i) {
        EXPECT_EQ(p1.inst(i).toString(), p2.inst(i).toString())
            << "at pc " << i;
    }
}

/** Round-trip every built-in workload kernel through text and back. */
class WorkloadRoundTrip
    : public ::testing::TestWithParam<std::string_view>
{
};

TEST_P(WorkloadRoundTrip, DisassembleAssembleIdentity)
{
    for (IsaDialect dialect :
         {IsaDialect::Cuda, IsaDialect::SouthernIslands}) {
        const auto wl = makeWorkload(GetParam());
        const WorkloadInstance inst = wl->build(dialect, {});
        const Program& p1 = inst.program;
        const Program p2 = assemble(disassemble(p1));
        ASSERT_EQ(p1.size(), p2.size());
        EXPECT_EQ(p1.numVRegs(), p2.numVRegs());
        EXPECT_EQ(p1.numSRegs(), p2.numSRegs());
        EXPECT_EQ(p1.smemBytes(), p2.smemBytes());
        for (std::uint32_t i = 0; i < p1.size(); ++i) {
            ASSERT_EQ(p1.inst(i).op, p2.inst(i).op) << "at pc " << i;
            ASSERT_EQ(p1.inst(i).toString(), p2.inst(i).toString())
                << "at pc " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadRoundTrip,
                         ::testing::ValuesIn(allWorkloadNames()),
                         [](const auto& info) {
                             return std::string(info.param);
                         });

} // namespace
} // namespace gpr
