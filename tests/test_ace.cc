/** @file Tests for ACE lifetime accounting, driven both synthetically and
 *  through full simulations. */

#include <gtest/gtest.h>

#include "reliability/ace.hh"
#include "sim_test_util.hh"
#include "workloads/workloads.hh"

namespace gpr {
namespace {

constexpr auto kRf = TargetStructure::VectorRegisterFile;
constexpr auto kLds = TargetStructure::SharedMemory;

/** Synthetic event streams against a small config. */
class AceSynthetic : public ::testing::Test
{
  protected:
    GpuConfig cfg_ = test::smallCudaConfig();
};

TEST_F(AceSynthetic, WriteThenReadsCountsToLastRead)
{
    AceAnalyzer ace(cfg_, AceMode::Standard);
    ace.onAlloc(kRf, 0, 0, 8, 0);
    ace.onWrite(kRf, 0, 3, 10);
    ace.onRead(kRf, 0, 3, 0, 20);
    ace.onRead(kRf, 0, 3, 0, 50);
    ace.onWrite(kRf, 0, 3, 70); // commits [10, 50]
    ace.onKernelEnd(100);        // second epoch never read: dead
    EXPECT_EQ(ace.aceUnitCycles(kRf), 40u);
}

TEST_F(AceSynthetic, DeadWriteCountsNothing)
{
    AceAnalyzer ace(cfg_, AceMode::Standard);
    ace.onAlloc(kRf, 0, 0, 4, 0);
    ace.onWrite(kRf, 0, 1, 5);
    ace.onWrite(kRf, 0, 1, 25); // overwrite with no read between
    ace.onKernelEnd(50);
    EXPECT_EQ(ace.aceUnitCycles(kRf), 0u);
}

TEST_F(AceSynthetic, ConservativeModeExtendsToOverwrite)
{
    AceAnalyzer ace(cfg_, AceMode::Conservative);
    ace.onAlloc(kRf, 0, 0, 4, 0);
    ace.onWrite(kRf, 0, 1, 10);
    ace.onRead(kRf, 0, 1, 0, 15);
    ace.onWrite(kRf, 0, 1, 60); // conservative: [10, 60]
    ace.onKernelEnd(100);
    EXPECT_EQ(ace.aceUnitCycles(kRf), 50u);
}

TEST_F(AceSynthetic, FreeCommitsPendingInterval)
{
    AceAnalyzer ace(cfg_, AceMode::Standard);
    ace.onAlloc(kLds, 1, 0, 16, 0);
    ace.onWrite(kLds, 1, 2, 10);
    ace.onRead(kLds, 1, 2, 0, 30);
    ace.onFree(kLds, 1, 0, 16, 40); // commits [10, 30]
    ace.onKernelEnd(80);
    EXPECT_EQ(ace.aceUnitCycles(kLds), 20u);
}

TEST_F(AceSynthetic, KernelEndCommitsOpenInterval)
{
    AceAnalyzer ace(cfg_, AceMode::Standard);
    ace.onAlloc(kRf, 0, 0, 4, 0);
    ace.onWrite(kRf, 0, 0, 10);
    ace.onRead(kRf, 0, 0, 0, 90);
    ace.onKernelEnd(100); // commits [10, 90]
    EXPECT_EQ(ace.aceUnitCycles(kRf), 80u);
}

TEST_F(AceSynthetic, ReadOfUninitialisedAllocationIsConservative)
{
    // Allocation opens an epoch; reading it without a program write
    // counts from the alloc (undefined contents could matter).
    AceAnalyzer ace(cfg_, AceMode::Standard);
    ace.onAlloc(kRf, 0, 0, 4, 5);
    ace.onRead(kRf, 0, 2, 0, 35);
    ace.onKernelEnd(50);
    EXPECT_EQ(ace.aceUnitCycles(kRf), 30u);
}

TEST_F(AceSynthetic, SmIndexingSeparatesInstances)
{
    AceAnalyzer ace(cfg_, AceMode::Standard);
    ace.onAlloc(kRf, 0, 0, 4, 0);
    ace.onAlloc(kRf, 1, 0, 4, 0);
    ace.onWrite(kRf, 0, 0, 10);
    ace.onRead(kRf, 1, 0, 0, 40); // different SM: separate word
    ace.onWrite(kRf, 0, 0, 50); // SM0 word unread => dead
    ace.onKernelEnd(60);
    // Only SM1's alloc-to-read interval counts: [0, 40].
    EXPECT_EQ(ace.aceUnitCycles(kRf), 40u);
}

/** Full-simulation properties. */
TEST(AceAnalysis, AvfWithinBounds)
{
    const GpuConfig cfg = test::smallCudaConfig();
    for (auto name : {"vectoradd", "reduction", "histogram"}) {
        const auto wl = makeWorkload(name);
        const WorkloadInstance inst = wl->build(cfg.dialect, {});
        const AceResult r = runAceAnalysis(cfg, inst);
        for (const AceStructureResult& s : r.structures) {
            EXPECT_GE(s.avf(), 0.0) << name;
            EXPECT_LE(s.avf(), 1.0) << name;
        }
        // A word can only be ACE while allocated, so the structure AVF
        // cannot exceed its time-averaged occupancy (plus epsilon for
        // cycle-boundary accounting).
        EXPECT_LE(r.forStructure(kRf).avf(),
                  r.goldenStats.avgRegFileOccupancy + 0.02)
            << name;
        EXPECT_LE(r.forStructure(kLds).avf(),
                  r.goldenStats.avgSmemOccupancy + 0.02)
            << name;
    }
}

TEST(AceAnalysis, ConservativeDominatesStandard)
{
    const GpuConfig cfg = test::smallCudaConfig();
    for (auto name : {"vectoradd", "scan"}) {
        const auto wl = makeWorkload(name);
        const WorkloadInstance inst = wl->build(cfg.dialect, {});
        const AceResult std_mode =
            runAceAnalysis(cfg, inst, AceMode::Standard);
        const AceResult cons_mode =
            runAceAnalysis(cfg, inst, AceMode::Conservative);
        EXPECT_GE(cons_mode.forStructure(kRf).avf() + 1e-12,
                  std_mode.forStructure(kRf).avf())
            << name;
        EXPECT_GE(cons_mode.forStructure(kLds).avf() + 1e-12,
                  std_mode.forStructure(kLds).avf())
            << name;
    }
}

TEST(AceAnalysis, DeterministicAcrossRuns)
{
    const GpuConfig cfg = test::smallCudaConfig();
    const auto wl = makeWorkload("transpose");
    const WorkloadInstance inst = wl->build(cfg.dialect, {});
    const AceResult a = runAceAnalysis(cfg, inst);
    const AceResult b = runAceAnalysis(cfg, inst);
    ASSERT_EQ(a.structures.size(), b.structures.size());
    for (std::size_t i = 0; i < a.structures.size(); ++i)
        EXPECT_EQ(a.structures[i].aceUnitCycles, b.structures[i].aceUnitCycles);
}

TEST(AceAnalysis, NoSharedUseMeansZeroLdsAce)
{
    const GpuConfig cfg = test::smallCudaConfig();
    const auto wl = makeWorkload("kmeans"); // no local memory
    const WorkloadInstance inst = wl->build(cfg.dialect, {});
    const AceResult r = runAceAnalysis(cfg, inst);
    EXPECT_EQ(r.forStructure(kLds).aceUnitCycles, 0u);
    EXPECT_GT(r.forStructure(kRf).aceUnitCycles, 0u);
}

} // namespace
} // namespace gpr
