/** @file Tests for FI sample planning: the footnote 4 reproduction,
 *  property tests for the binomial interval math, and the adaptive
 *  sequential stopping rule. */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "reliability/sampling.hh"

namespace gpr {
namespace {

TEST(SamplePlan, PaperPlanIs2000At99)
{
    const SamplePlan plan = paperSamplePlan();
    EXPECT_EQ(plan.injections, 2000u);
    EXPECT_DOUBLE_EQ(plan.confidence, 0.99);
    EXPECT_FALSE(plan.adaptive());
    // The number quoted in footnote 4.
    EXPECT_NEAR(plan.errorMargin(), 0.0288, 5e-4);
}

TEST(SamplePlan, PlanForMarginAchievesIt)
{
    for (double margin : {0.10, 0.05, 0.02}) {
        const SamplePlan plan = planForMargin(margin, 0.99);
        EXPECT_LE(plan.errorMargin(), margin + 1e-12);
    }
}

TEST(SamplePlan, MarginMonotoneInInjections)
{
    SamplePlan small{100, 0.99, 0.0, 0};
    SamplePlan large{1000, 0.99, 0.0, 0};
    EXPECT_GT(small.errorMargin(), large.errorMargin());
}

TEST(SamplePlan, DefaultBenchPlanDocumented)
{
    // The benches default to 150 injections; the header prints ~10.5%.
    SamplePlan bench{150, 0.99, 0.0, 0};
    EXPECT_NEAR(bench.errorMargin(), 0.1052, 1e-3);
}

TEST(SamplePlan, AdaptiveCapDefaultsToTheFixedEquivalent)
{
    const SamplePlan plan = adaptivePlan(0.05, 0.95);
    EXPECT_TRUE(plan.adaptive());
    EXPECT_EQ(plan.resolvedMaxInjections(),
              requiredSamples(0.05, 0.95));

    const SamplePlan capped = adaptivePlan(0.05, 0.95, 123);
    EXPECT_EQ(capped.resolvedMaxInjections(), 123u);

    // For a fixed plan the ceiling *is* the plan size.
    EXPECT_EQ(paperSamplePlan().resolvedMaxInjections(), 2000u);
}

// ------------------------------------------------- interval properties

/** Binomial pmf via log-gamma (stable for n up to the test sweep). */
double
binomialPmf(std::size_t n, std::size_t k, double p)
{
    const double nn = static_cast<double>(n);
    const double kk = static_cast<double>(k);
    const double log_pmf = std::lgamma(nn + 1.0) - std::lgamma(kk + 1.0) -
                           std::lgamma(nn - kk + 1.0) +
                           kk * std::log(p) +
                           (nn - kk) * std::log1p(-p);
    return std::exp(log_pmf);
}

/** Coverage of @p intervals (indexed by k) at true proportion @p p. */
double
coverageAt(const std::vector<Interval>& intervals, double p)
{
    const std::size_t n = intervals.size() - 1;
    double covered = 0.0;
    for (std::size_t k = 0; k <= n; ++k) {
        if (intervals[k].lo <= p && p <= intervals[k].hi)
            covered += binomialPmf(n, k, p);
    }
    return covered;
}

void
expectSane(const Interval& iv, const char* what)
{
    EXPECT_TRUE(std::isfinite(iv.lo)) << what;
    EXPECT_TRUE(std::isfinite(iv.hi)) << what;
    EXPECT_GE(iv.lo, 0.0) << what;
    EXPECT_LE(iv.hi, 1.0) << what;
    EXPECT_LE(iv.lo, iv.hi) << what;
}

TEST(Intervals, SaneOnTheWholeSweptGrid)
{
    for (std::size_t n : {1u, 2u, 7u, 25u, 100u}) {
        for (double conf : {0.90, 0.95, 0.99}) {
            for (std::size_t k = 0; k <= n; ++k) {
                expectSane(wilsonInterval(k, n, conf), "wilson");
                expectSane(clopperPearsonInterval(k, n, conf),
                           "clopper-pearson");
            }
        }
    }
}

TEST(Intervals, DegenerateCases)
{
    // n = 0: no data, the vacuous interval — never a NaN or a crash.
    for (double conf : {0.90, 0.99}) {
        for (const Interval& iv :
             {wilsonInterval(0, 0, conf),
              clopperPearsonInterval(0, 0, conf)}) {
            EXPECT_DOUBLE_EQ(iv.lo, 0.0);
            EXPECT_DOUBLE_EQ(iv.hi, 1.0);
        }
        // k = 0 pins the lower bound, k = n the upper.
        for (std::size_t n : {1u, 10u, 500u}) {
            EXPECT_DOUBLE_EQ(wilsonInterval(0, n, conf).lo, 0.0);
            EXPECT_DOUBLE_EQ(clopperPearsonInterval(0, n, conf).lo, 0.0);
            EXPECT_DOUBLE_EQ(wilsonInterval(n, n, conf).hi, 1.0);
            EXPECT_DOUBLE_EQ(clopperPearsonInterval(n, n, conf).hi, 1.0);
            // ...and the other bound stays strictly informative.
            EXPECT_LT(wilsonInterval(0, n, conf).hi, 1.0);
            EXPECT_LT(clopperPearsonInterval(0, n, conf).hi, 1.0);
            EXPECT_GT(wilsonInterval(n, n, conf).lo, 0.0);
            EXPECT_GT(clopperPearsonInterval(n, n, conf).lo, 0.0);
        }
    }
}

TEST(Intervals, SymmetricUnderSuccessFailureExchange)
{
    // I(k, n) mirrored about 1/2 is I(n-k, n): lo(k) = 1 - hi(n-k).
    for (std::size_t n : {5u, 24u, 100u}) {
        for (double conf : {0.90, 0.99}) {
            for (std::size_t k = 0; k <= n; ++k) {
                const Interval w = wilsonInterval(k, n, conf);
                const Interval wm = wilsonInterval(n - k, n, conf);
                EXPECT_NEAR(w.lo, 1.0 - wm.hi, 1e-12);
                EXPECT_NEAR(w.hi, 1.0 - wm.lo, 1e-12);
                const Interval c = clopperPearsonInterval(k, n, conf);
                const Interval cm =
                    clopperPearsonInterval(n - k, n, conf);
                EXPECT_NEAR(c.lo, 1.0 - cm.hi, 1e-9);
                EXPECT_NEAR(c.hi, 1.0 - cm.lo, 1e-9);
            }
        }
    }
}

TEST(Intervals, WidthMonotoneInSampleSize)
{
    // At a fixed observed proportion, more samples never widen the
    // interval.
    for (double conf : {0.90, 0.95, 0.99}) {
        for (double rate : {0.0, 0.1, 0.5}) {
            double prev_wilson = 2.0, prev_cp = 2.0;
            for (std::size_t n : {20u, 40u, 80u, 160u, 320u, 640u}) {
                const auto k = static_cast<std::size_t>(
                    std::llround(rate * static_cast<double>(n)));
                const double w = wilsonInterval(k, n, conf).width();
                const double c =
                    clopperPearsonInterval(k, n, conf).width();
                EXPECT_LT(w, prev_wilson) << n << " @ " << rate;
                EXPECT_LT(c, prev_cp) << n << " @ " << rate;
                prev_wilson = w;
                prev_cp = c;
            }
        }
    }
}

TEST(Intervals, CoverageAgainstTheExactBinomial)
{
    // Clopper–Pearson inverts the binomial CDF, so its coverage is
    // >= nominal for *every* (n, p); Wilson trades a little pointwise
    // coverage near the edges for much tighter intervals, so it gets a
    // small tolerance pointwise and must be nearly nominal on average.
    for (std::size_t n : {10u, 50u, 200u}) {
        for (double conf : {0.90, 0.95, 0.99}) {
            std::vector<Interval> wilson, cp;
            for (std::size_t k = 0; k <= n; ++k) {
                wilson.push_back(wilsonInterval(k, n, conf));
                cp.push_back(clopperPearsonInterval(k, n, conf));
            }
            double wilson_sum = 0.0;
            int points = 0;
            for (double p = 0.02; p < 0.99; p += 0.0243) {
                const double cov_cp = coverageAt(cp, p);
                EXPECT_GE(cov_cp, conf - 1e-9)
                    << "CP undercovers at n=" << n << " p=" << p;
                // Wilson's pointwise dips at tiny n near the boundary
                // counts are a documented trade-off (min coverage
                // ~0.82 at n=10); the bound below catches a *broken*
                // interval, the mean check below catches a biased one.
                const double cov_w = coverageAt(wilson, p);
                EXPECT_GE(cov_w, conf - 0.10)
                    << "Wilson far below nominal at n=" << n
                    << " p=" << p;
                wilson_sum += cov_w;
                ++points;
            }
            EXPECT_GE(wilson_sum / points, conf - 0.015)
                << "Wilson mean coverage at n=" << n;
        }
    }
}

TEST(Intervals, WilsonTighterThanClopperPearsonOnAverage)
{
    // CP buys its guaranteed coverage with width; Wilson is tighter on
    // average (pointwise the order can flip at the extreme counts,
    // where CP's one-sided bound is very sharp).
    for (std::size_t n : {10u, 100u}) {
        double wilson_total = 0.0, cp_total = 0.0;
        for (std::size_t k = 0; k <= n; ++k) {
            wilson_total += wilsonInterval(k, n, 0.95).width();
            cp_total += clopperPearsonInterval(k, n, 0.95).width();
            // Interior counts are strictly ordered.
            if (k > 0 && k < n) {
                EXPECT_LE(wilsonInterval(k, n, 0.95).width(),
                          clopperPearsonInterval(k, n, 0.95).width() +
                              1e-9)
                    << k << "/" << n;
            }
        }
        EXPECT_LT(wilson_total, cp_total) << n;
    }
}

// ---------------------------------------------- sequential stopping rule

TEST(Sequential, ScheduleIsDeterministicAndEndsAtTheCap)
{
    const SamplePlan plan = adaptivePlan(0.05, 0.95);
    const auto schedule = sequentialSchedule(plan);
    ASSERT_FALSE(schedule.empty());
    EXPECT_EQ(schedule.front(), kSequentialInitialLook);
    EXPECT_EQ(schedule.back(), plan.resolvedMaxInjections());
    for (std::size_t i = 1; i < schedule.size(); ++i)
        EXPECT_LT(schedule[i - 1], schedule[i]);
    // Pure function of the plan.
    EXPECT_EQ(schedule, sequentialSchedule(plan));

    // A cap below the first look degenerates to a single look.
    const auto tiny = sequentialSchedule(adaptivePlan(0.3, 0.9, 20));
    ASSERT_EQ(tiny.size(), 1u);
    EXPECT_EQ(tiny.front(), 20u);
}

TEST(Sequential, PeekingGuardInflatesTheConfidence)
{
    const SamplePlan plan = adaptivePlan(0.05, 0.95);
    const double guarded = sequentialConfidence(plan);
    EXPECT_GT(guarded, plan.confidence);
    EXPECT_LT(guarded, 1.0);
    // Bonferroni over the schedule's looks, exactly.
    const double looks =
        static_cast<double>(sequentialSchedule(plan).size());
    EXPECT_DOUBLE_EQ(guarded, 1.0 - (1.0 - plan.confidence) / looks);
}

TEST(Sequential, StopsWhenEveryRateMeetsTheMargin)
{
    const SamplePlan plan = adaptivePlan(0.05, 0.95, 2000);

    // Zero failures at a large n: everything is tight — stop.
    const SequentialDecision clean =
        evaluateSequentialStop(0, 0, 1000, plan);
    EXPECT_TRUE(clean.stop);
    EXPECT_LE(clean.achievedMargin, plan.margin);

    // A mid-range rate at a small n: wide — keep going.
    const SequentialDecision wide =
        evaluateSequentialStop(20, 5, 50, plan);
    EXPECT_FALSE(wide.stop);
    EXPECT_GT(wide.achievedMargin, plan.margin);

    // The decision tracks the *worst* of SDC/DUE/AVF: a tight SDC rate
    // cannot mask a wide DUE rate.
    const SequentialDecision lopsided =
        evaluateSequentialStop(0, 25, 50, plan);
    EXPECT_FALSE(lopsided.stop);

    // n = 0 never stops (and never divides by zero).
    EXPECT_FALSE(evaluateSequentialStop(0, 0, 0, plan).stop);
}

TEST(Sequential, GuardIsStricterThanTheNominalInterval)
{
    // Near the stopping boundary the guarded decision must be the
    // conservative one: whenever it stops, the nominal interval is
    // strictly within the margin too.
    const SamplePlan plan = adaptivePlan(0.08, 0.9, 500);
    for (std::uint64_t n : sequentialSchedule(plan)) {
        for (std::uint64_t fails = 0; fails <= n / 4; fails += 3) {
            const SequentialDecision d =
                evaluateSequentialStop(fails / 2, fails - fails / 2, n,
                                       plan);
            if (d.stop) {
                EXPECT_LE(d.achievedMargin, plan.margin);
            }
        }
    }
}

} // namespace
} // namespace gpr
