/** @file Tests for FI sample planning (footnote 4 reproduction). */

#include <gtest/gtest.h>

#include "reliability/sampling.hh"

namespace gpr {
namespace {

TEST(SamplePlan, PaperPlanIs2000At99)
{
    const SamplePlan plan = paperSamplePlan();
    EXPECT_EQ(plan.injections, 2000u);
    EXPECT_DOUBLE_EQ(plan.confidence, 0.99);
    // The number quoted in footnote 4.
    EXPECT_NEAR(plan.errorMargin(), 0.0288, 5e-4);
}

TEST(SamplePlan, PlanForMarginAchievesIt)
{
    for (double margin : {0.10, 0.05, 0.02}) {
        const SamplePlan plan = planForMargin(margin, 0.99);
        EXPECT_LE(plan.errorMargin(), margin + 1e-12);
    }
}

TEST(SamplePlan, MarginMonotoneInInjections)
{
    SamplePlan small{100, 0.99};
    SamplePlan large{1000, 0.99};
    EXPECT_GT(small.errorMargin(), large.errorMargin());
}

TEST(SamplePlan, DefaultBenchPlanDocumented)
{
    // The benches default to 150 injections; the header prints ~10.5%.
    SamplePlan bench{150, 0.99};
    EXPECT_NEAR(bench.errorMargin(), 0.1052, 1e-3);
}

} // namespace
} // namespace gpr
