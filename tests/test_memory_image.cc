/** @file Tests for the global-memory image. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "sim/memory_image.hh"

namespace gpr {
namespace {

TEST(MemoryImage, BufferAllocationIsContiguous)
{
    MemoryImage img;
    const Buffer a = img.allocBuffer(10);
    const Buffer b = img.allocBuffer(5);
    EXPECT_EQ(a.byteAddr, 0u);
    EXPECT_EQ(b.byteAddr, 40u);
    EXPECT_EQ(img.sizeWords(), 15u);
    EXPECT_EQ(img.sizeBytes(), 60u);
}

TEST(MemoryImage, TypedAccess)
{
    MemoryImage img;
    const Buffer buf = img.allocBuffer(4);
    img.setFloat(buf, 0, 1.5f);
    img.setInt(buf, 1, -7);
    img.setWord(buf, 2, 0xffffffff);
    EXPECT_FLOAT_EQ(img.getFloat(buf, 0), 1.5f);
    EXPECT_EQ(img.getInt(buf, 1), -7);
    EXPECT_EQ(img.getWord(buf, 2), 0xffffffffu);
}

TEST(MemoryImage, MisalignedWordAccessPanics)
{
    MemoryImage img;
    img.allocBuffer(2);
    img.writeWord(0, 0x11);
    // Misaligned word addresses used to silently align down, which hid
    // address-corruption faults; the simulator now traps them as
    // MisalignedAddress before the image is reached, so reaching the
    // image misaligned is a caller bug.
    EXPECT_THROW(img.readWord(1), PanicError);
    EXPECT_THROW(img.readWord(3), PanicError);
    EXPECT_THROW(img.writeWord(2, 0x22), PanicError);
    EXPECT_EQ(img.readWord(0), 0x11u);
}

TEST(MemoryImage, ZeroWordBufferRejected)
{
    MemoryImage img;
    const Buffer a = img.allocBuffer(1);
    // A zero-word buffer would alias the next allocation's base address
    // — two "distinct" buffers with equal handles.
    EXPECT_THROW(img.allocBuffer(0), PanicError);
    const Buffer b = img.allocBuffer(1);
    EXPECT_NE(a.byteAddr, b.byteAddr);
}

TEST(MemoryImage, Bounds)
{
    MemoryImage img;
    img.allocBuffer(2);
    EXPECT_TRUE(img.inBounds(0));
    EXPECT_TRUE(img.inBounds(7));
    EXPECT_FALSE(img.inBounds(8));
    EXPECT_FALSE(img.inBounds(1ull << 40));
    EXPECT_THROW(img.readWord(8), PanicError);
    EXPECT_THROW(img.writeWord(8, 1), PanicError);
}

TEST(MemoryImage, BufferIndexChecked)
{
    MemoryImage img;
    const Buffer buf = img.allocBuffer(2);
    EXPECT_THROW(buf.byteAddrOfWord(2), PanicError);
}

TEST(MemoryImage, CopySemanticsIsolateRuns)
{
    MemoryImage a;
    const Buffer buf = a.allocBuffer(1);
    a.setWord(buf, 0, 1);
    MemoryImage b = a; // value copy
    b.setWord(buf, 0, 2);
    EXPECT_EQ(a.getWord(buf, 0), 1u);
    EXPECT_EQ(b.getWord(buf, 0), 2u);
}

} // namespace
} // namespace gpr
