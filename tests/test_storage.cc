/** @file Tests for WordStorage allocation and bit-flip behaviour. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "sim/storage.hh"

namespace gpr {
namespace {

TEST(WordStorage, ReadWrite)
{
    WordStorage s(16);
    s.write(3, 0xabcd1234);
    EXPECT_EQ(s.read(3), 0xabcd1234u);
    EXPECT_EQ(s.read(0), 0u);
}

TEST(WordStorage, FlipBitLinearAddressing)
{
    WordStorage s(4);
    s.flipBitAt(0);
    EXPECT_EQ(s.read(0), 1u);
    s.flipBitAt(33); // word 1, bit 1
    EXPECT_EQ(s.read(1), 2u);
    s.flipBitAt(33); // flip back
    EXPECT_EQ(s.read(1), 0u);
    s.flipBitAt(127); // word 3, bit 31
    EXPECT_EQ(s.read(3), 0x80000000u);
}

TEST(WordStorage, AllocateFirstFit)
{
    WordStorage s(100);
    const auto a = s.allocate(30);
    const auto b = s.allocate(30);
    const auto c = s.allocate(30);
    ASSERT_TRUE(a && b && c);
    EXPECT_EQ(*a, 0u);
    EXPECT_EQ(*b, 30u);
    EXPECT_EQ(*c, 60u);
    EXPECT_EQ(s.allocatedWords(), 90u);
    EXPECT_FALSE(s.allocate(20).has_value()); // only 10 left
    EXPECT_TRUE(s.allocate(10).has_value());
}

TEST(WordStorage, ReleaseCoalesces)
{
    WordStorage s(100);
    const auto a = s.allocate(30);
    const auto b = s.allocate(30);
    const auto c = s.allocate(30);
    ASSERT_TRUE(a && b && c);
    // Free middle then neighbours; everything must coalesce back.
    s.release(*b, 30);
    EXPECT_FALSE(s.allocate(40).has_value());
    s.release(*a, 30);
    // Now [0,60) is free.
    const auto big = s.allocate(60);
    ASSERT_TRUE(big.has_value());
    EXPECT_EQ(*big, 0u);
    s.release(*big, 60);
    s.release(*c, 30);
    EXPECT_EQ(s.allocatedWords(), 0u);
    // After full release the storage must hand out one span again.
    EXPECT_TRUE(s.allocate(100).has_value());
}

TEST(WordStorage, ValuesPersistAcrossFree)
{
    // SRAM keeps contents: free then realloc sees the old bits (which
    // the simulator treats as architecturally undefined).
    WordStorage s(10);
    const auto a = s.allocate(10);
    ASSERT_TRUE(a.has_value());
    s.write(5, 0x1234);
    s.release(*a, 10);
    EXPECT_EQ(s.read(5), 0x1234u);
}

TEST(WordStorage, Panics)
{
    WordStorage s(8);
    EXPECT_THROW(s.read(8), PanicError);
    EXPECT_THROW(s.write(9, 0), PanicError);
    EXPECT_THROW(s.flipBitAt(8ull * 32), PanicError);
    EXPECT_THROW(s.allocate(0), PanicError);
    EXPECT_THROW(WordStorage(0), PanicError);
    EXPECT_THROW(s.release(0, 4), PanicError); // nothing allocated
}

} // namespace
} // namespace gpr
