/** @file Tests for protection-scheme what-if models. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "reliability/protection.hh"

namespace gpr {
namespace {

TEST(Protection, UnprotectedIsIdentity)
{
    const ProtectedRates r = applyProtection(unprotectedScheme(), 0.2, 0.1);
    EXPECT_DOUBLE_EQ(r.sdc, 0.2);
    EXPECT_DOUBLE_EQ(r.due, 0.1);
    EXPECT_DOUBLE_EQ(r.avf(), 0.3);
}

TEST(Protection, ParityConvertsSdcToDue)
{
    const ProtectedRates r = applyProtection(parityScheme(), 0.2, 0.1);
    EXPECT_DOUBLE_EQ(r.sdc, 0.0);
    EXPECT_DOUBLE_EQ(r.due, 0.3); // all former SDCs detected
    // Parity does not reduce total AVF, it re-classifies it.
    EXPECT_DOUBLE_EQ(r.avf(), 0.3);
}

TEST(Protection, EccNearlyEliminatesBoth)
{
    const ProtectedRates r = applyProtection(eccSecdedScheme(), 0.2, 0.1);
    EXPECT_NEAR(r.sdc, 0.002, 1e-12);
    EXPECT_NEAR(r.due, 0.001, 1e-12);
    EXPECT_LT(r.avf(), 0.01);
}

TEST(Protection, PerfOverheadsOrdered)
{
    // Stronger protection costs more performance.
    EXPECT_EQ(unprotectedScheme().perfOverhead, 0.0);
    EXPECT_GT(parityScheme().perfOverhead, 0.0);
    EXPECT_GT(eccSecdedScheme().perfOverhead,
              parityScheme().perfOverhead);
}

TEST(Protection, BuiltinsListedOnce)
{
    const auto& schemes = builtinProtectionSchemes();
    ASSERT_EQ(schemes.size(), 3u);
    EXPECT_EQ(schemes[0].name, "unprotected");
    EXPECT_EQ(schemes[1].name, "parity");
    EXPECT_EQ(schemes[2].name, "ECC-SECDED");
}

TEST(Protection, RejectsInvalidRates)
{
    EXPECT_THROW(applyProtection(parityScheme(), 0.8, 0.5), PanicError);
    EXPECT_THROW(applyProtection(parityScheme(), -0.1, 0.0), PanicError);
}

TEST(Protection, ZeroRatesStayZero)
{
    for (const auto& scheme : builtinProtectionSchemes()) {
        const ProtectedRates r = applyProtection(scheme, 0.0, 0.0);
        EXPECT_EQ(r.sdc, 0.0);
        EXPECT_EQ(r.due, 0.0);
    }
}

} // namespace
} // namespace gpr
