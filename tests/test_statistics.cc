/** @file Tests for statistics helpers, including the paper's footnote 4. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/statistics.hh"
#include "common/logging.hh"

namespace gpr {
namespace {

TEST(RunningStat, KnownSeries)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.push(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12); // sample variance
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, EmptyAndSingle)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    s.push(3.5);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(InverseNormalCdf, KnownQuantiles)
{
    EXPECT_NEAR(inverseNormalCdf(0.5), 0.0, 1e-9);
    EXPECT_NEAR(inverseNormalCdf(0.975), 1.959964, 1e-5);
    EXPECT_NEAR(inverseNormalCdf(0.995), 2.575829, 1e-5);
    EXPECT_NEAR(inverseNormalCdf(0.84134474), 1.0, 1e-4);
    // Symmetry.
    EXPECT_NEAR(inverseNormalCdf(0.025), -inverseNormalCdf(0.975), 1e-9);
}

TEST(InverseNormalCdf, RejectsOutOfDomain)
{
    EXPECT_THROW(inverseNormalCdf(0.0), PanicError);
    EXPECT_THROW(inverseNormalCdf(1.0), PanicError);
}

TEST(Footnote4, PaperNumbersReproduce)
{
    // "2,000 fault injections ... 2.88% error margin for 99% confidence".
    EXPECT_NEAR(proportionErrorMargin(2000, 0.99), 0.0288, 5e-4);
}

TEST(ProportionErrorMargin, ShrinksWithSamples)
{
    double prev = 1.0;
    for (std::size_t n : {10u, 100u, 1000u, 10000u}) {
        const double m = proportionErrorMargin(n, 0.99);
        EXPECT_LT(m, prev);
        prev = m;
    }
}

TEST(ProportionErrorMargin, GrowsWithConfidence)
{
    EXPECT_LT(proportionErrorMargin(500, 0.90),
              proportionErrorMargin(500, 0.99));
}

TEST(ProportionErrorMargin, MeasuredPeakedAtHalf)
{
    // Wald margin is maximal at p=0.5.
    const double mid = proportionErrorMargin(0.5, 1000, 0.95);
    EXPECT_GT(mid, proportionErrorMargin(0.1, 1000, 0.95));
    EXPECT_GT(mid, proportionErrorMargin(0.9, 1000, 0.95));
    EXPECT_EQ(proportionErrorMargin(0.0, 1000, 0.95), 0.0);
}

TEST(RequiredSamples, InverseOfMargin)
{
    for (double margin : {0.05, 0.0288, 0.01}) {
        const std::size_t n = requiredSamples(margin, 0.99);
        // The resulting plan must achieve the margin...
        EXPECT_LE(proportionErrorMargin(n, 0.99), margin + 1e-9);
        // ...and n-1 must not.
        EXPECT_GT(proportionErrorMargin(n - 1, 0.99), margin);
    }
}

TEST(RequiredSamples, PaperPlan)
{
    // 2.88% @ 99% needs just about 2000 injections.
    const std::size_t n = requiredSamples(0.0288, 0.99);
    EXPECT_NEAR(static_cast<double>(n), 2000.0, 10.0);
}

TEST(WilsonInterval, ContainsPointEstimate)
{
    for (std::size_t k : {0u, 5u, 50u, 100u}) {
        const Interval iv = wilsonInterval(k, 100, 0.99);
        const double p = k / 100.0;
        EXPECT_LE(iv.lo, p + 1e-12);
        EXPECT_GE(iv.hi, p - 1e-12);
        EXPECT_GE(iv.lo, 0.0);
        EXPECT_LE(iv.hi, 1.0);
    }
}

TEST(WilsonInterval, ZeroSuccessesHasOpenUpperBound)
{
    const Interval iv = wilsonInterval(0, 100, 0.95);
    EXPECT_EQ(iv.lo, 0.0);
    EXPECT_GT(iv.hi, 0.0); // rule of three-ish
    EXPECT_LT(iv.hi, 0.06);
}

TEST(WilsonInterval, NarrowsWithSamples)
{
    EXPECT_GT(wilsonInterval(10, 100, 0.95).width(),
              wilsonInterval(100, 1000, 0.95).width());
}

TEST(PearsonCorrelation, PerfectAndInverse)
{
    std::vector<double> x = {1, 2, 3, 4, 5};
    std::vector<double> y = {2, 4, 6, 8, 10};
    EXPECT_NEAR(pearsonCorrelation(x, y), 1.0, 1e-12);
    std::vector<double> z = {10, 8, 6, 4, 2};
    EXPECT_NEAR(pearsonCorrelation(x, z), -1.0, 1e-12);
}

TEST(PearsonCorrelation, DegenerateSeries)
{
    std::vector<double> x = {1, 2, 3};
    std::vector<double> c = {5, 5, 5};
    EXPECT_EQ(pearsonCorrelation(x, c), 0.0);
    EXPECT_EQ(pearsonCorrelation({}, {}), 0.0);
    EXPECT_EQ(pearsonCorrelation({1.0}, {2.0}), 0.0);
}

} // namespace
} // namespace gpr
