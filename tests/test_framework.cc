/** @file End-to-end tests of the ReliabilityFramework facade. */

#include <gtest/gtest.h>

#include <sstream>

#include "core/framework.hh"

namespace gpr {
namespace {

TEST(Framework, AceOnlyAnalysisIsFastAndComplete)
{
    ReliabilityFramework fw(GpuModel::GeforceGtx480);
    AnalysisOptions options;
    options.aceOnly = true;
    const ReliabilityReport r = fw.analyze("reduction", options);

    EXPECT_EQ(r.workload, "reduction");
    EXPECT_EQ(r.gpuName, "GeForce GTX 480");
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.execSeconds, 0.0);
    EXPECT_GT(r.ipc, 0.0);

    const StructureReport& rf =
        r.forStructure(TargetStructure::VectorRegisterFile);
    const StructureReport& lm =
        r.forStructure(TargetStructure::SharedMemory);
    EXPECT_TRUE(rf.applicable);
    EXPECT_GT(rf.avfAce, 0.0);
    EXPECT_EQ(rf.injections, 0u); // no FI in aceOnly mode

    EXPECT_TRUE(lm.applicable); // reduction uses smem
    EXPECT_FALSE(
        r.forStructure(TargetStructure::ScalarRegisterFile).applicable);

    // The control-state targets are registered and reported too.
    EXPECT_TRUE(
        r.forStructure(TargetStructure::PredicateFile).applicable);
    EXPECT_TRUE(r.forStructure(TargetStructure::SimtStack).applicable);
    EXPECT_GT(r.forStructure(TargetStructure::SimtStack).avfAce, 0.0);

    // EPF assembled from the ACE AVFs.
    const EpfResult check =
        computeEpf(fw.config(), r.cycles, rf.avfAce, lm.avfAce, 0.0);
    EXPECT_DOUBLE_EQ(r.epf.fitTotal(), check.fitTotal());
    EXPECT_DOUBLE_EQ(r.epf.eit, check.eit);
}

TEST(Framework, FiAnalysisPopulatesCampaignFields)
{
    ReliabilityFramework fw(GpuModel::QuadroFx5600);
    AnalysisOptions options;
    options.plan.injections = 40;
    const ReliabilityReport r = fw.analyze("vectoradd", options);

    const StructureReport& rf =
        r.forStructure(TargetStructure::VectorRegisterFile);
    EXPECT_EQ(rf.injections, 40u);
    EXPECT_GT(rf.fiErrorMargin, 0.0);
    EXPECT_GE(rf.avfFi, 0.0);
    EXPECT_LE(rf.avfFi, 1.0);
    EXPECT_NEAR(rf.avfFi, rf.sdcRate + rf.dueRate, 1e-12);
    // vectoradd has no smem
    EXPECT_FALSE(
        r.forStructure(TargetStructure::SharedMemory).applicable);
    EXPECT_GT(rf.occupancy, 0.0);
}

TEST(Framework, ScalarFileReportedOnAmd)
{
    ReliabilityFramework fw(GpuModel::HdRadeon7970);
    AnalysisOptions options;
    options.aceOnly = true;
    const ReliabilityReport r = fw.analyze("vectoradd", options);
    const StructureReport& srf =
        r.forStructure(TargetStructure::ScalarRegisterFile);
    EXPECT_TRUE(srf.applicable);
    EXPECT_GE(srf.avfAce, 0.0);
}

TEST(Framework, BuildInstanceUsesDeviceDialect)
{
    ReliabilityFramework amd(GpuModel::HdRadeon7970);
    EXPECT_EQ(amd.buildInstance("scan").program.dialect(),
              IsaDialect::SouthernIslands);
    ReliabilityFramework nv(GpuModel::QuadroFx5800);
    EXPECT_EQ(nv.buildInstance("scan").program.dialect(),
              IsaDialect::Cuda);
}

TEST(Framework, UnknownWorkloadIsFatal)
{
    ReliabilityFramework fw(GpuModel::GeforceGtx480);
    EXPECT_THROW(fw.analyze("bogus"), FatalError);
}

TEST(Framework, SummaryPrintsAllSections)
{
    ReliabilityFramework fw(GpuModel::GeforceGtx480);
    AnalysisOptions options;
    options.aceOnly = true;
    const ReliabilityReport r = fw.analyze("matrixMul", options);
    std::ostringstream os;
    r.printSummary(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("matrixMul on GeForce GTX 480"),
              std::string::npos);
    EXPECT_NE(text.find("register-file"), std::string::npos);
    EXPECT_NE(text.find("local-memory"), std::string::npos);
    EXPECT_NE(text.find("predicate-file"), std::string::npos);
    EXPECT_NE(text.find("simt-stack"), std::string::npos);
    EXPECT_NE(text.find("EPF"), std::string::npos);
}

} // namespace
} // namespace gpr
