/** @file Tests for single-injection classification. */

#include <gtest/gtest.h>

#include "reliability/fault_injector.hh"
#include "sim_test_util.hh"
#include "workloads/workloads.hh"

namespace gpr {
namespace {

TEST(FaultInjector, GoldenRunValidatesAndCaches)
{
    const GpuConfig cfg = test::smallCudaConfig();
    const auto wl = makeWorkload("vectoradd");
    const WorkloadInstance inst = wl->build(cfg.dialect, {});

    FaultInjector injector(cfg, inst);
    const RunResult& g1 = injector.goldenRun();
    const RunResult& g2 = injector.goldenRun();
    EXPECT_EQ(&g1, &g2); // cached, not re-run
    EXPECT_GT(injector.goldenCycles(), 0u);
}

TEST(FaultInjector, DialectMismatchIsFatal)
{
    const GpuConfig cfg = test::smallCudaConfig();
    const auto wl = makeWorkload("vectoradd");
    const WorkloadInstance si_inst =
        wl->build(IsaDialect::SouthernIslands, {});
    EXPECT_THROW(FaultInjector(cfg, si_inst), FatalError);
}

TEST(FaultInjector, UnallocatedFlipClassifiesMasked)
{
    const GpuConfig cfg = test::smallCudaConfig();
    const auto wl = makeWorkload("vectoradd");
    const WorkloadInstance inst = wl->build(cfg.dialect, {});

    FaultInjector injector(cfg, inst);
    FaultSpec fault;
    fault.structure = TargetStructure::SharedMemory; // kernel uses none
    fault.bitIndex = 5;
    fault.cycle = injector.goldenCycles() / 2;
    const InjectionResult r = injector.inject(fault);
    EXPECT_EQ(r.outcome, FaultOutcome::Masked);
    EXPECT_EQ(r.trap, TrapKind::None);
}

TEST(FaultInjector, RandomInjectionsAreClassified)
{
    const GpuConfig cfg = test::smallCudaConfig();
    const auto wl = makeWorkload("vectoradd");
    const WorkloadInstance inst = wl->build(cfg.dialect, {});

    FaultInjector injector(cfg, inst);
    Rng rng(99);
    std::size_t outcomes[3] = {0, 0, 0};
    for (int i = 0; i < 40; ++i) {
        const InjectionResult r = injector.injectRandom(
            TargetStructure::VectorRegisterFile, rng);
        ++outcomes[static_cast<int>(r.outcome)];
        EXPECT_LT(r.fault.bitIndex,
                  injector.gpu().structureBits(
                      TargetStructure::VectorRegisterFile));
        EXPECT_LT(r.fault.cycle, injector.goldenCycles());
        // DUE iff trapped.
        EXPECT_EQ(r.outcome == FaultOutcome::Due,
                  r.trap != TrapKind::None);
    }
    // With a 2-SM device occupancy is high: expect at least one masked
    // and (statistically near-certain) at least one non-masked outcome.
    EXPECT_GT(outcomes[0] + outcomes[1] + outcomes[2], 0u);
}

TEST(FaultInjector, SameFaultSameOutcome)
{
    const GpuConfig cfg = test::smallCudaConfig();
    const auto wl = makeWorkload("reduction");
    const WorkloadInstance inst = wl->build(cfg.dialect, {});

    FaultInjector injector(cfg, inst);
    FaultSpec fault;
    fault.structure = TargetStructure::VectorRegisterFile;
    fault.bitIndex = 4242;
    fault.cycle = injector.goldenCycles() / 3;
    const InjectionResult a = injector.inject(fault);
    const InjectionResult b = injector.inject(fault);
    EXPECT_EQ(a.outcome, b.outcome);
    EXPECT_EQ(a.trap, b.trap);
}

} // namespace
} // namespace gpr
