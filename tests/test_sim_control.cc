/** @file SIMT control flow: divergence, reconvergence, loops, EXIT. */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "sim_test_util.hh"
#include "workloads/kernel_util.hh"

namespace gpr {
namespace {

using test::runProgram;
using test::smallCudaConfig;

/** Common prologue: out[tid] writable via addr; returns (tid, addr). */
struct Prologue
{
    Operand tid;
    Operand addr;
};

Prologue
emitPrologue(KernelBuilder& kb)
{
    const Operand tid = kb.vreg();
    const Operand pout = kb.uniformReg();
    kb.s2r(tid, SpecialReg::TidX);
    kb.ldparam(pout, 0);
    const Operand addr = kb.vreg();
    kb.shl(addr, tid, KernelBuilder::imm(2));
    kb.iadd(addr, addr, pout);
    return {tid, addr};
}

RunResult
runOneBlock(const Program& prog, std::uint32_t threads,
            std::uint32_t out_words)
{
    MemoryImage img;
    const Buffer out = img.allocBuffer(out_words);
    LaunchConfig launch;
    launch.blockX = threads;
    launch.gridX = 1;
    launch.addParamAddr(out.byteAddr);
    return runProgram(smallCudaConfig(), prog, launch, img);
}

/** if-then via the DivergentIf idiom: both sides of the split correct. */
TEST(SimControl, DivergentIfThen)
{
    KernelBuilder kb("ifthen", IsaDialect::Cuda);
    const Prologue pro = emitPrologue(kb);
    const Operand v = kb.vreg();
    kb.mov(v, KernelBuilder::imm(100));
    const unsigned p = kb.preg();
    kb.isetp(CmpOp::Lt, p, pro.tid, KernelBuilder::imm(7));
    DivergentIf div(kb, p);
    kb.iadd(v, v, KernelBuilder::imm(11)); // only tid < 7
    div.close();
    kb.stg(pro.addr, v);
    kb.exit();
    const Program prog = kb.finish();

    const RunResult r = runOneBlock(prog, 32, 32);
    ASSERT_TRUE(r.clean()) << trapKindName(r.trap);
    for (std::uint32_t i = 0; i < 32; ++i)
        EXPECT_EQ(r.memory.readWord(i * 4), i < 7 ? 111u : 100u) << i;
    EXPECT_GT(r.stats.divergenceEvents, 0u);
}

/** if-else via explicit SSY/BRA/SYNC emission. */
TEST(SimControl, DivergentIfElse)
{
    KernelBuilder kb("ifelse", IsaDialect::Cuda);
    const Prologue pro = emitPrologue(kb);
    const Operand v = kb.vreg();
    const unsigned p = kb.preg();
    kb.isetp(CmpOp::Lt, p, pro.tid, KernelBuilder::imm(16));

    const Label else_l = kb.newLabel("else");
    const Label end_l = kb.newLabel("end");
    kb.ssy(end_l);
    kb.bra(else_l, ifNotP(p));
    kb.mov(v, KernelBuilder::imm(1)); // then: tid < 16
    kb.sync();
    kb.bind(else_l);
    kb.mov(v, KernelBuilder::imm(2)); // else
    kb.sync();
    kb.bind(end_l);
    kb.stg(pro.addr, v);
    kb.exit();
    const Program prog = kb.finish();

    const RunResult r = runOneBlock(prog, 32, 32);
    ASSERT_TRUE(r.clean());
    for (std::uint32_t i = 0; i < 32; ++i)
        EXPECT_EQ(r.memory.readWord(i * 4), i < 16 ? 1u : 2u);
}

/** Nested divergence reconverges correctly. */
TEST(SimControl, NestedDivergence)
{
    KernelBuilder kb("nested", IsaDialect::Cuda);
    const Prologue pro = emitPrologue(kb);
    const Operand v = kb.vreg();
    kb.mov(v, KernelBuilder::imm(0));
    const unsigned p_outer = kb.preg();
    const unsigned p_inner = kb.preg();
    kb.isetp(CmpOp::Lt, p_outer, pro.tid, KernelBuilder::imm(16));
    DivergentIf outer(kb, p_outer);
    kb.iadd(v, v, KernelBuilder::imm(1)); // tid < 16
    kb.isetp(CmpOp::Lt, p_inner, pro.tid, KernelBuilder::imm(4));
    {
        DivergentIf inner(kb, p_inner);
        kb.iadd(v, v, KernelBuilder::imm(10)); // tid < 4
        inner.close();
    }
    kb.iadd(v, v, KernelBuilder::imm(100)); // all tid < 16 again
    outer.close();
    kb.stg(pro.addr, v);
    kb.exit();
    const Program prog = kb.finish();

    const RunResult r = runOneBlock(prog, 32, 32);
    ASSERT_TRUE(r.clean());
    for (std::uint32_t i = 0; i < 32; ++i) {
        const Word expect = i < 4 ? 111 : (i < 16 ? 101 : 0);
        EXPECT_EQ(r.memory.readWord(i * 4), expect) << i;
    }
}

/** Uniform backward branch: a simple counted loop. */
TEST(SimControl, UniformLoop)
{
    KernelBuilder kb("loop", IsaDialect::Cuda);
    const Prologue pro = emitPrologue(kb);
    const Operand acc = kb.vreg();
    const Operand i = kb.vreg();
    kb.mov(acc, KernelBuilder::imm(0));
    kb.mov(i, KernelBuilder::imm(0));
    const unsigned p = kb.preg();
    const Label loop = kb.newLabel("loop");
    kb.bind(loop);
    kb.iadd(acc, acc, i);
    kb.iadd(i, i, KernelBuilder::imm(1));
    kb.isetp(CmpOp::Lt, p, i, KernelBuilder::imm(10));
    kb.bra(loop, ifP(p));
    kb.stg(pro.addr, acc);
    kb.exit();
    const Program prog = kb.finish();

    const RunResult r = runOneBlock(prog, 32, 32);
    ASSERT_TRUE(r.clean());
    for (std::uint32_t t = 0; t < 32; ++t)
        EXPECT_EQ(r.memory.readWord(t * 4), 45u); // 0+1+...+9
}

/** Divergent loop trip counts (lane-dependent) via the SSY pattern. */
TEST(SimControl, DivergentLoopTripCounts)
{
    KernelBuilder kb("divloop", IsaDialect::Cuda);
    const Prologue pro = emitPrologue(kb);
    const Operand acc = kb.vreg();
    const Operand i = kb.vreg();
    kb.mov(acc, KernelBuilder::imm(0));
    kb.mov(i, KernelBuilder::imm(0));
    const unsigned p = kb.preg();
    const Label done = kb.newLabel("done");
    const Label loop = kb.newLabel("loop");
    kb.ssy(done);
    kb.bind(loop);
    kb.iadd(acc, acc, KernelBuilder::imm(1));
    kb.iadd(i, i, KernelBuilder::imm(1));
    // Loop while i < tid%5 + 1 (1..5 iterations per lane).
    const Operand bound = kb.vreg();
    const Operand rem = kb.vreg();
    // rem = tid - (tid/... cheap mod 5 by repeated subtract is overkill;
    // use tid & 3 instead (1..4 iterations).
    kb.and_(rem, pro.tid, KernelBuilder::imm(3));
    kb.iadd(bound, rem, KernelBuilder::imm(1));
    kb.isetp(CmpOp::Lt, p, i, bound);
    kb.bra(loop, ifP(p));
    kb.sync();
    kb.bind(done);
    kb.stg(pro.addr, acc);
    kb.exit();
    const Program prog = kb.finish();

    const RunResult r = runOneBlock(prog, 32, 32);
    ASSERT_TRUE(r.clean());
    for (std::uint32_t t = 0; t < 32; ++t)
        EXPECT_EQ(r.memory.readWord(t * 4), (t & 3) + 1) << t;
}

/** Guarded EXIT retires lanes; the rest continue. */
TEST(SimControl, PartialExit)
{
    KernelBuilder kb("pexit", IsaDialect::Cuda);
    const Prologue pro = emitPrologue(kb);
    const Operand v = kb.vreg();
    kb.mov(v, KernelBuilder::imm(5));
    kb.stg(pro.addr, v); // everyone writes 5 first
    const unsigned p = kb.preg();
    kb.isetp(CmpOp::Lt, p, pro.tid, KernelBuilder::imm(20));
    kb.exit(ifNotP(p)); // lanes >= 20 leave
    kb.mov(v, KernelBuilder::imm(9));
    kb.stg(pro.addr, v); // survivors overwrite with 9
    kb.exit();
    const Program prog = kb.finish();

    const RunResult r = runOneBlock(prog, 32, 32);
    ASSERT_TRUE(r.clean());
    for (std::uint32_t i = 0; i < 32; ++i)
        EXPECT_EQ(r.memory.readWord(i * 4), i < 20 ? 9u : 5u);
}

/** SYNC with an empty reconvergence stack traps (corrupted control). */
TEST(SimControl, SyncUnderflowTraps)
{
    KernelBuilder kb("underflow", IsaDialect::Cuda);
    kb.sync(); // no SSY pushed
    kb.exit();
    const Program prog = kb.finish();

    MemoryImage img;
    img.allocBuffer(1);
    LaunchConfig launch;
    launch.blockX = 32;
    launch.gridX = 1;
    const RunResult r = runProgram(smallCudaConfig(), prog, launch, img);
    EXPECT_EQ(r.trap, TrapKind::InvalidControlFlow);
}

/** An infinite loop hits the watchdog. */
TEST(SimControl, WatchdogCatchesInfiniteLoop)
{
    KernelBuilder kb("spin", IsaDialect::Cuda);
    const Operand v = kb.vreg();
    const Label loop = kb.newLabel("spin");
    kb.bind(loop);
    kb.iadd(v, v, KernelBuilder::imm(1));
    kb.bra(loop);
    kb.exit(); // unreachable but satisfies the verifier
    const Program prog = kb.finish();

    MemoryImage img;
    img.allocBuffer(1);
    LaunchConfig launch;
    launch.blockX = 32;
    launch.gridX = 1;
    RunOptions options;
    options.maxCycles = 20000;
    const RunResult r =
        runProgram(smallCudaConfig(), prog, launch, img, options);
    EXPECT_EQ(r.trap, TrapKind::Watchdog);
}

/** Partial warps (laneCount < warpWidth) execute correctly. */
TEST(SimControl, PartialWarpLanes)
{
    KernelBuilder kb("partial", IsaDialect::Cuda);
    const Prologue pro = emitPrologue(kb);
    const Operand v = kb.vreg();
    kb.mov(v, KernelBuilder::imm(3));
    kb.stg(pro.addr, v);
    kb.exit();
    const Program prog = kb.finish();

    const RunResult r = runOneBlock(prog, 40, 40); // 1 full + 8-lane warp
    ASSERT_TRUE(r.clean());
    for (std::uint32_t i = 0; i < 40; ++i)
        EXPECT_EQ(r.memory.readWord(i * 4), 3u);
}

} // namespace
} // namespace gpr
