/** @file Tests for statistical FI campaigns. */

#include <gtest/gtest.h>

#include "reliability/campaign.hh"
#include "sim_test_util.hh"
#include "workloads/workloads.hh"

namespace gpr {
namespace {

CampaignResult
smallCampaign(std::size_t n, unsigned threads, std::uint64_t seed = 0xAB,
              bool keep = false)
{
    const GpuConfig cfg = test::smallCudaConfig();
    const auto wl = makeWorkload("vectoradd");
    const WorkloadInstance inst = wl->build(cfg.dialect, {});
    CampaignConfig cc;
    cc.plan.injections = n;
    cc.numThreads = threads;
    cc.seed = seed;
    cc.keepRecords = keep;
    return runCampaign(cfg, inst, TargetStructure::VectorRegisterFile, cc);
}

TEST(Campaign, ZeroInjectionsYieldsEmptyResult)
{
    const CampaignResult r = smallCampaign(0, 1);
    EXPECT_EQ(r.injections, 0u);
    EXPECT_EQ(r.avf(), 0.0);
    EXPECT_GT(r.goldenStats.cycles, 0u); // golden still ran
}

TEST(Campaign, CountsAreConsistent)
{
    const CampaignResult r = smallCampaign(60, 2);
    EXPECT_EQ(r.masked + r.sdc + r.due, 60u);
    EXPECT_GE(r.avf(), 0.0);
    EXPECT_LE(r.avf(), 1.0);
    EXPECT_NEAR(r.avf(), r.sdcRate() + r.dueRate(), 1e-12);
    EXPECT_GT(r.wallSeconds, 0.0);
}

TEST(Campaign, ThreadCountDoesNotChangeResults)
{
    const CampaignResult a = smallCampaign(50, 1, 7);
    const CampaignResult b = smallCampaign(50, 2, 7);
    EXPECT_EQ(a.masked, b.masked);
    EXPECT_EQ(a.sdc, b.sdc);
    EXPECT_EQ(a.due, b.due);
}

TEST(Campaign, SeedChangesSamples)
{
    const CampaignResult a = smallCampaign(80, 2, 1);
    const CampaignResult b = smallCampaign(80, 2, 2);
    // Different seeds explore different fault sets; identical triples
    // would be suspicious (not impossible, but with 80 samples over a
    // multi-megabit space the masked counts almost surely differ).
    const bool identical =
        a.masked == b.masked && a.sdc == b.sdc && a.due == b.due;
    if (identical) {
        // Accept only if both campaigns are fully masked (tiny AVF).
        EXPECT_EQ(a.sdc + a.due, 0u);
    }
}

TEST(Campaign, SameSeedReproduces)
{
    const CampaignResult a = smallCampaign(50, 2, 123);
    const CampaignResult b = smallCampaign(50, 2, 123);
    EXPECT_EQ(a.masked, b.masked);
    EXPECT_EQ(a.sdc, b.sdc);
    EXPECT_EQ(a.due, b.due);
}

TEST(Campaign, RecordsKeptWhenRequested)
{
    const CampaignResult r = smallCampaign(30, 2, 5, true);
    ASSERT_EQ(r.records.size(), 30u);
    std::size_t masked = 0, sdc = 0, due = 0;
    for (const InjectionResult& rec : r.records) {
        switch (rec.outcome) {
          case FaultOutcome::Masked:
            ++masked;
            break;
          case FaultOutcome::Sdc:
            ++sdc;
            break;
          case FaultOutcome::Due:
            ++due;
            break;
        }
        EXPECT_EQ(rec.fault.structure,
                  TargetStructure::VectorRegisterFile);
    }
    EXPECT_EQ(masked, r.masked);
    EXPECT_EQ(sdc, r.sdc);
    EXPECT_EQ(due, r.due);
}

TEST(Campaign, MarginMatchesPlanFormula)
{
    const CampaignResult r = smallCampaign(100, 2);
    // Wald margin at the measured AVF is never larger than worst-case.
    EXPECT_LE(r.errorMargin(),
              proportionErrorMargin(100, r.confidence) + 1e-12);
    const Interval w = r.wilson();
    EXPECT_GE(w.lo, 0.0);
    EXPECT_LE(w.hi, 1.0);
    EXPECT_LE(w.lo, r.avf() + 1e-12);
    EXPECT_GE(w.hi, r.avf() - 1e-12);
}

TEST(Campaign, OutcomeNames)
{
    EXPECT_EQ(faultOutcomeName(FaultOutcome::Masked), "masked");
    EXPECT_EQ(faultOutcomeName(FaultOutcome::Sdc), "SDC");
    EXPECT_EQ(faultOutcomeName(FaultOutcome::Due), "DUE");
}

} // namespace
} // namespace gpr
