/** @file Tests for opcode traits and mnemonic round-trips. */

#include <gtest/gtest.h>

#include "isa/opcode.hh"

namespace gpr {
namespace {

TEST(Opcode, MnemonicRoundTripsForAllOpcodes)
{
    for (std::size_t i = 0; i < static_cast<std::size_t>(Opcode::NumOpcodes);
         ++i) {
        const auto op = static_cast<Opcode>(i);
        const auto parsed = opcodeFromMnemonic(opMnemonic(op));
        ASSERT_TRUE(parsed.has_value()) << opMnemonic(op);
        EXPECT_EQ(*parsed, op);
    }
}

TEST(Opcode, MnemonicParsingIsCaseInsensitive)
{
    EXPECT_EQ(opcodeFromMnemonic("iadd"), Opcode::IAdd);
    EXPECT_EQ(opcodeFromMnemonic("IaDd"), Opcode::IAdd);
    EXPECT_EQ(opcodeFromMnemonic("ffma"), Opcode::FFma);
}

TEST(Opcode, UnknownMnemonicRejected)
{
    EXPECT_FALSE(opcodeFromMnemonic("BOGUS").has_value());
    EXPECT_FALSE(opcodeFromMnemonic("").has_value());
}

TEST(Opcode, TraitsConsistency)
{
    for (std::size_t i = 0; i < static_cast<std::size_t>(Opcode::NumOpcodes);
         ++i) {
        const auto op = static_cast<Opcode>(i);
        const OpTraits& t = opTraits(op);
        // Stores never write a register destination.
        if (t.isStore) {
            EXPECT_FALSE(t.writesDst) << t.mnemonic;
        }
        // Atomics are memory ops.
        if (t.isAtomic) {
            EXPECT_TRUE(t.isMemory) << t.mnemonic;
        }
        // Branch implies control category.
        if (t.isBranch) {
            EXPECT_EQ(t.category, OpCategory::Control) << t.mnemonic;
        }
        // SETP writes predicates, not registers.
        if (t.writesPred) {
            EXPECT_FALSE(t.writesDst) << t.mnemonic;
        }
        EXPECT_LE(t.numSrcs, 3u) << t.mnemonic;
    }
}

TEST(Opcode, MemoryCategories)
{
    EXPECT_EQ(opTraits(Opcode::Ldg).category, OpCategory::MemGlobal);
    EXPECT_EQ(opTraits(Opcode::Sts).category, OpCategory::MemShared);
    EXPECT_TRUE(opTraits(Opcode::AtomsAdd).isAtomic);
    EXPECT_TRUE(opTraits(Opcode::Stg).isStore);
    EXPECT_FALSE(opTraits(Opcode::Ldg).isStore);
}

TEST(CmpOp, NameRoundTrip)
{
    for (auto cmp : {CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt,
                     CmpOp::Ge}) {
        const auto parsed = cmpOpFromName(cmpOpName(cmp));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, cmp);
    }
    EXPECT_FALSE(cmpOpFromName("XX").has_value());
    EXPECT_EQ(cmpOpFromName("lt"), CmpOp::Lt);
}

} // namespace
} // namespace gpr
