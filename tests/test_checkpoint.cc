/**
 * @file
 * Checkpoint-restore injection engine tests: snapshot/restore round
 * trips, resumed-run equivalence, and the exhaustive differential
 * guarantee — per-injection outcomes of the checkpointed engine are
 * bit-identical to the legacy from-scratch engine across structures,
 * workloads and both ISA dialects.
 */

#include <gtest/gtest.h>

#include "reliability/campaign.hh"
#include "reliability/fault_injector.hh"
#include "sim_test_util.hh"
#include "workloads/workloads.hh"

namespace gpr {
namespace {

WorkloadInstance
buildFor(const GpuConfig& cfg, const char* workload)
{
    return makeWorkload(workload)->build(cfg.dialect, {});
}

/** Record a mid-run checkpoint of @p inst on @p cfg. */
GpuCheckpoint
midRunCheckpoint(Gpu& gpu, const WorkloadInstance& inst)
{
    Gpu probe(gpu.config());
    const RunResult golden =
        probe.run(inst.program, inst.launch, inst.image);
    EXPECT_TRUE(golden.clean());

    CheckpointRecorder recorder;
    recorder.checkpointCycles = {golden.stats.cycles / 2};
    RunOptions options;
    options.recorder = &recorder;
    options.hashInterval = std::max<Cycle>(1, golden.stats.cycles / 16);
    const RunResult rec = gpu.run(inst.program, inst.launch, inst.image,
                                  options);
    EXPECT_TRUE(rec.clean());
    EXPECT_EQ(rec.stats.cycles, golden.stats.cycles);
    EXPECT_EQ(recorder.checkpoints.size(), 1u);
    return std::move(recorder.checkpoints.front());
}

TEST(Checkpoint, SnapshotMutateRestoreRoundTrip)
{
    const GpuConfig cfg = test::smallCudaConfig();
    const WorkloadInstance inst = buildFor(cfg, "reduction");

    Gpu gpu(cfg);
    const GpuCheckpoint cp = midRunCheckpoint(gpu, inst);
    EXPECT_GT(cp.now, 0u);

    gpu.restore(cp);
    const std::uint64_t h0 = gpu.deviceStateHash();

    // snapshot() of the restored device must round-trip bit-for-bit.
    const GpuCheckpoint again = gpu.snapshot();
    gpu.restore(again);
    EXPECT_EQ(gpu.deviceStateHash(), h0);

    // Mutate device state (one VRF bit flip) -> the fingerprint moves...
    GpuCheckpoint flipped = cp;
    flipped.sms.front().vrf.flipBitAt(7);
    gpu.restore(flipped);
    const std::uint64_t h1 = gpu.deviceStateHash();
    EXPECT_NE(h1, h0);

    // ...and restoring the original snapshot brings it back exactly.
    gpu.restore(cp);
    EXPECT_EQ(gpu.deviceStateHash(), h0);
}

TEST(Checkpoint, ResumedRunReproducesGoldenExactly)
{
    const GpuConfig cfg = test::smallCudaConfig();
    const WorkloadInstance inst = buildFor(cfg, "scan");

    Gpu gpu(cfg);
    const RunResult golden =
        gpu.run(inst.program, inst.launch, inst.image);
    ASSERT_TRUE(golden.clean());

    const GpuCheckpoint cp = midRunCheckpoint(gpu, inst);

    RunOptions options;
    options.resume = &cp;
    const RunResult resumed =
        gpu.run(inst.program, inst.launch, MemoryImage{}, options);
    ASSERT_TRUE(resumed.clean());
    EXPECT_EQ(resumed.stats.cycles, golden.stats.cycles);
    EXPECT_EQ(resumed.stats.warpInstructions,
              golden.stats.warpInstructions);
    EXPECT_EQ(resumed.memory.words(), golden.memory.words());
}

TEST(Checkpoint, PackShapeAndAdoption)
{
    const GpuConfig cfg = test::smallCudaConfig();
    const WorkloadInstance inst = buildFor(cfg, "vectoradd");

    FaultInjector injector(cfg, inst);
    const auto pack = injector.buildCheckpointPack(4);
    ASSERT_TRUE(pack);
    EXPECT_EQ(pack->goldenCycles, injector.goldenCycles());
    EXPECT_GT(pack->hashInterval, 0u);
    EXPECT_TRUE(pack->windows.enabled());
    EXPECT_GT(pack->windows.intervalCount(), 0u);
    EXPECT_LE(pack->checkpoints.size(), 4u);
    for (std::size_t i = 0; i < pack->checkpoints.size(); ++i) {
        EXPECT_GT(pack->checkpoints[i].now, 0u);
        EXPECT_LT(pack->checkpoints[i].now, pack->goldenCycles);
        if (i > 0) {
            EXPECT_LT(pack->checkpoints[i - 1].now,
                      pack->checkpoints[i].now);
        }
    }

    // Sibling injector of the same cell adopts the shared pack.
    FaultInjector sibling(cfg, inst);
    sibling.adoptGoldenCycles(pack->goldenCycles);
    sibling.adoptCheckpointPack(pack);
    EXPECT_EQ(sibling.checkpointPack().get(), pack.get());
}

/**
 * The tentpole guarantee: for every injection, the checkpointed engine
 * classifies exactly like the from-scratch engine.  Swept across all
 * three structures, several workloads, and both dialects (CUDA via the
 * small Fermi config, Southern Islands via the small Tahiti config,
 * which is also the only scalar-register-file chip).
 */
TEST(Checkpoint, DifferentialOutcomeEquality)
{
    constexpr std::size_t kInjections = 25;
    const GpuConfig configs[] = {test::smallCudaConfig(),
                                 test::smallSiConfig()};
    const char* workloads[] = {"vectoradd", "reduction", "histogram"};

    std::size_t converged_total = 0;
    for (const GpuConfig& cfg : configs) {
        for (const char* wname : workloads) {
            const WorkloadInstance inst = buildFor(cfg, wname);

            std::vector<TargetStructure> structures;
            structures.push_back(TargetStructure::VectorRegisterFile);
            if (makeWorkload(wname)->usesLocalMemory())
                structures.push_back(TargetStructure::SharedMemory);
            if (cfg.scalarRegWordsPerSm > 0)
                structures.push_back(TargetStructure::ScalarRegisterFile);

            FaultInjector legacy(cfg, inst);
            FaultInjector ckpt(cfg, inst);
            ckpt.adoptGoldenCycles(legacy.goldenCycles());
            ckpt.buildCheckpointPack(4);

            for (TargetStructure s : structures) {
                for (std::size_t i = 0; i < kInjections; ++i) {
                    const std::uint64_t seed = deriveSeed(
                        0xD1FF, static_cast<std::uint64_t>(s) * 1000 + i);
                    const InjectionResult a =
                        runIndexedInjection(legacy, s, seed, i);
                    const InjectionResult b =
                        runIndexedInjection(ckpt, s, seed, i);
                    EXPECT_EQ(a.fault.bitIndex, b.fault.bitIndex);
                    EXPECT_EQ(a.fault.cycle, b.fault.cycle);
                    EXPECT_EQ(a.outcome, b.outcome)
                        << wname << " on " << cfg.name << " "
                        << targetStructureName(s) << " bit "
                        << a.fault.bitIndex << " cycle " << a.fault.cycle;
                    EXPECT_EQ(a.trap, b.trap);
                    EXPECT_FALSE(a.converged()); // legacy never shortcuts
                    if (b.converged()) {
                        ++converged_total;
                        EXPECT_EQ(b.outcome, FaultOutcome::Masked);
                    }
                }
            }
        }
    }
    // The engine must actually shortcut a healthy share of the masked
    // population (deterministic given the fixed seeds).
    EXPECT_GT(converged_total, 0u);
}

/** The campaign path: checkpoints on vs off is count-for-count equal. */
TEST(Checkpoint, CampaignCountsInvariantUnderEngine)
{
    const GpuConfig cfg = test::smallCudaConfig();
    const WorkloadInstance inst = buildFor(cfg, "reduction");

    CampaignConfig legacy;
    legacy.plan.injections = 80;
    legacy.numThreads = 2;
    legacy.checkpoints = 0;

    CampaignConfig ckpt = legacy;
    ckpt.checkpoints = 6;

    const CampaignResult a = runCampaign(
        cfg, inst, TargetStructure::SharedMemory, legacy);
    const CampaignResult b =
        runCampaign(cfg, inst, TargetStructure::SharedMemory, ckpt);
    EXPECT_EQ(a.masked, b.masked);
    EXPECT_EQ(a.sdc, b.sdc);
    EXPECT_EQ(a.due, b.due);
}

/**
 * Regression: this exact fault (scan on the full-size FX 5600, LDS bit
 * 1325566 flipped at cycle 2619) once hash-"converged" spuriously.  The
 * flip is read into a register, leaving two single-bit differences at
 * bit 30 of odd-position words — bit 62 of the hash chunks — and the
 * original XOR-multiply hash was triangular mod 2^64, so the two
 * top-bit differences cancelled with probability ~1/4.  The rotate in
 * StateHash::round exists because of this fault; it must stay SDC.
 */
TEST(Checkpoint, HashIsNotTriangularRegression)
{
    const GpuConfig& cfg = gpuConfig(GpuModel::QuadroFx5600);
    const WorkloadInstance inst = buildFor(cfg, "scan");

    FaultSpec fault;
    fault.structure = TargetStructure::SharedMemory;
    fault.bitIndex = 1325566;
    fault.cycle = 2619;

    FaultInjector legacy(cfg, inst);
    const InjectionResult a = legacy.inject(fault);
    ASSERT_EQ(a.outcome, FaultOutcome::Sdc);

    FaultInjector ckpt(cfg, inst);
    ckpt.adoptGoldenCycles(legacy.goldenCycles());
    ckpt.buildCheckpointPack(8);
    const InjectionResult b = ckpt.inject(fault);
    EXPECT_EQ(b.outcome, FaultOutcome::Sdc);
    EXPECT_FALSE(b.converged());
}

/** Dead-window prefilter edge: a fault in never-touched space is
 *  masked without simulation, and inject() agrees with a from-scratch
 *  run of the very same fault. */
TEST(Checkpoint, PrefilterAgreesOnUntouchedStorage)
{
    const GpuConfig cfg = test::smallCudaConfig();
    const WorkloadInstance inst = buildFor(cfg, "vectoradd");

    FaultInjector legacy(cfg, inst);
    FaultInjector ckpt(cfg, inst);
    ckpt.adoptGoldenCycles(legacy.goldenCycles());
    ckpt.buildCheckpointPack(2);

    FaultSpec fault;
    fault.structure = TargetStructure::SharedMemory; // kernel uses none
    fault.bitIndex = 1234;
    fault.cycle = legacy.goldenCycles() / 2;

    const InjectionResult a = legacy.inject(fault);
    const InjectionResult b = ckpt.inject(fault);
    EXPECT_EQ(a.outcome, FaultOutcome::Masked);
    EXPECT_EQ(b.outcome, FaultOutcome::Masked);
    EXPECT_TRUE(b.converged());
}

} // namespace
} // namespace gpr
