/**
 * @file
 * Checkpoint-restore injection engine tests: snapshot/restore round
 * trips, resumed-run equivalence, and the exhaustive differential
 * guarantee — per-injection outcomes of the checkpointed engine are
 * bit-identical to the legacy from-scratch engine across structures,
 * workloads and both ISA dialects.
 */

#include <gtest/gtest.h>

#include "reliability/campaign.hh"
#include "reliability/fault_injector.hh"
#include "sim/storage.hh"
#include "sim/structure_registry.hh"
#include "sim_test_util.hh"
#include "workloads/workloads.hh"

namespace gpr {
namespace {

WorkloadInstance
buildFor(const GpuConfig& cfg, const char* workload)
{
    return makeWorkload(workload)->build(cfg.dialect, {});
}

/** Record a mid-run checkpoint of @p inst on @p cfg. */
GpuCheckpoint
midRunCheckpoint(Gpu& gpu, const WorkloadInstance& inst)
{
    Gpu probe(gpu.config());
    const RunResult golden =
        probe.run(inst.program, inst.launch, inst.image);
    EXPECT_TRUE(golden.clean());

    CheckpointRecorder recorder;
    recorder.checkpointCycles = {golden.stats.cycles / 2};
    RunOptions options;
    options.recorder = &recorder;
    options.hashInterval = std::max<Cycle>(1, golden.stats.cycles / 16);
    const RunResult rec = gpu.run(inst.program, inst.launch, inst.image,
                                  options);
    EXPECT_TRUE(rec.clean());
    EXPECT_EQ(rec.stats.cycles, golden.stats.cycles);
    EXPECT_EQ(recorder.checkpoints.size(), 1u);
    return std::move(recorder.checkpoints.front());
}

TEST(Checkpoint, SnapshotMutateRestoreRoundTrip)
{
    const GpuConfig cfg = test::smallCudaConfig();
    const WorkloadInstance inst = buildFor(cfg, "reduction");

    Gpu gpu(cfg);
    const GpuCheckpoint cp = midRunCheckpoint(gpu, inst);
    EXPECT_GT(cp.now, 0u);

    gpu.restore(cp);
    const std::uint64_t h0 = gpu.deviceStateHash();

    // snapshot() of the restored device must round-trip bit-for-bit.
    const GpuCheckpoint again = gpu.snapshot();
    gpu.restore(again);
    EXPECT_EQ(gpu.deviceStateHash(), h0);

    // Mutate device state (one VRF bit flip) -> the fingerprint moves...
    GpuCheckpoint flipped = cp;
    flipped.sms.front().vrf.flipBitAt(7);
    gpu.restore(flipped);
    const std::uint64_t h1 = gpu.deviceStateHash();
    EXPECT_NE(h1, h0);

    // ...and restoring the original snapshot brings it back exactly.
    gpu.restore(cp);
    EXPECT_EQ(gpu.deviceStateHash(), h0);
}

TEST(Checkpoint, ResumedRunReproducesGoldenExactly)
{
    const GpuConfig cfg = test::smallCudaConfig();
    const WorkloadInstance inst = buildFor(cfg, "scan");

    Gpu gpu(cfg);
    const RunResult golden =
        gpu.run(inst.program, inst.launch, inst.image);
    ASSERT_TRUE(golden.clean());

    const GpuCheckpoint cp = midRunCheckpoint(gpu, inst);

    RunOptions options;
    options.resume = &cp;
    const RunResult resumed =
        gpu.run(inst.program, inst.launch, MemoryImage{}, options);
    ASSERT_TRUE(resumed.clean());
    EXPECT_EQ(resumed.stats.cycles, golden.stats.cycles);
    EXPECT_EQ(resumed.stats.warpInstructions,
              golden.stats.warpInstructions);
    EXPECT_EQ(resumed.memory.words(), golden.memory.words());
}

TEST(Checkpoint, PackShapeAndAdoption)
{
    const GpuConfig cfg = test::smallCudaConfig();
    const WorkloadInstance inst = buildFor(cfg, "vectoradd");

    FaultInjector injector(cfg, inst);
    const auto pack = injector.buildCheckpointPack(4);
    ASSERT_TRUE(pack);
    EXPECT_EQ(pack->goldenCycles, injector.goldenCycles());
    EXPECT_GT(pack->hashInterval, 0u);
    EXPECT_TRUE(pack->windows.enabled());
    EXPECT_GT(pack->windows.intervalCount(), 0u);

    // Delta encoding: one full baseline, then ascending deltas starting
    // with the trivial cycle-0 one, at most the budget past it.
    ASSERT_FALSE(pack->deltas.empty());
    EXPECT_EQ(pack->deltas.front().now, 0u);
    EXPECT_LE(pack->deltas.size(), 4u + 1u);
    for (std::size_t i = 1; i < pack->deltas.size(); ++i) {
        EXPECT_GT(pack->deltas[i].now, pack->deltas[i - 1].now);
        EXPECT_LT(pack->deltas[i].now, pack->goldenCycles);
    }

    // The whole point of the delta encoding: resident bytes well under
    // what the same checkpoint cycles would cost as full snapshots.
    EXPECT_GT(pack->approxBytes(), 0u);
    if (pack->deltas.size() > 1) {
        EXPECT_LT(pack->approxBytes(), pack->fullEquivalentBytes());
    }

    // Sibling injector of the same cell adopts the shared pack.
    FaultInjector sibling(cfg, inst);
    sibling.adoptGoldenCycles(pack->goldenCycles);
    sibling.adoptCheckpointPack(pack);
    EXPECT_EQ(sibling.checkpointPack().get(), pack.get());
}

/**
 * Delta restore is bit-identical to full restore: record the same
 * checkpoint cycles once as full snapshots and once delta-encoded, then
 * resume every checkpoint through both paths and require identical
 * trajectories and final memory words.
 */
TEST(Checkpoint, DeltaResumeMatchesFullResume)
{
    const GpuConfig cfg = test::smallCudaConfig();
    const WorkloadInstance inst = buildFor(cfg, "reduction");

    Gpu gpu(cfg);
    const RunResult golden =
        gpu.run(inst.program, inst.launch, inst.image);
    ASSERT_TRUE(golden.clean());
    const Cycle g = golden.stats.cycles;
    ASSERT_GT(g, 4u);

    CheckpointRecorder full_rec;
    full_rec.checkpointCycles = {g / 4, g / 2, (3 * g) / 4};
    RunOptions rec_full;
    rec_full.recorder = &full_rec;
    rec_full.hashInterval = std::max<Cycle>(1, g / 16);
    ASSERT_TRUE(gpu.run(inst.program, inst.launch, inst.image, rec_full)
                    .clean());
    ASSERT_EQ(full_rec.checkpoints.size(), 3u);

    CheckpointRecorder delta_rec;
    delta_rec.delta = true;
    delta_rec.checkpointCycles = full_rec.checkpointCycles;
    RunOptions rec_delta;
    rec_delta.recorder = &delta_rec;
    rec_delta.hashInterval = rec_full.hashInterval;
    ASSERT_TRUE(gpu.run(inst.program, inst.launch, inst.image, rec_delta)
                    .clean());
    ASSERT_EQ(delta_rec.deltas.size(), 4u); // cycle 0 + the three above

    for (std::size_t i = 0; i < full_rec.checkpoints.size(); ++i) {
        RunOptions full;
        full.resume = &full_rec.checkpoints[i];
        const RunResult a =
            gpu.run(inst.program, inst.launch, MemoryImage{}, full);

        gpu.anchorTo(delta_rec.baseline);
        MemoryImage scratch = delta_rec.baseline.memory;
        scratch.markCleanForRestore();
        RunOptions delta;
        delta.resumeBaseline = &delta_rec.baseline;
        delta.resumeDelta = &delta_rec.deltas[i + 1];
        delta.imageInOut = &scratch;
        const RunResult b =
            gpu.run(inst.program, inst.launch, MemoryImage{}, delta);

        EXPECT_EQ(a.trap, b.trap);
        EXPECT_EQ(a.stats.cycles, b.stats.cycles);
        EXPECT_EQ(a.stats.warpInstructions, b.stats.warpInstructions);
        EXPECT_EQ(a.memory.words(), scratch.words());
        EXPECT_EQ(a.stats.cycles, g);
    }

    // The trivial cycle-0 delta reproduces the run from the top.
    gpu.anchorTo(delta_rec.baseline);
    MemoryImage scratch = delta_rec.baseline.memory;
    scratch.markCleanForRestore();
    RunOptions from_zero;
    from_zero.resumeBaseline = &delta_rec.baseline;
    from_zero.resumeDelta = &delta_rec.deltas.front();
    from_zero.imageInOut = &scratch;
    const RunResult z =
        gpu.run(inst.program, inst.launch, MemoryImage{}, from_zero);
    EXPECT_TRUE(z.clean());
    EXPECT_EQ(z.stats.cycles, g);
    EXPECT_EQ(scratch.words(), golden.memory.words());
}

/**
 * The tentpole guarantee: for every injection, the checkpointed engine
 * classifies exactly like the from-scratch engine.  Swept across all
 * three structures, several workloads, and both dialects (CUDA via the
 * small Fermi config, Southern Islands via the small Tahiti config,
 * which is also the only scalar-register-file chip).
 */
TEST(Checkpoint, DifferentialOutcomeEquality)
{
    constexpr std::size_t kInjections = 25;
    const GpuConfig configs[] = {test::smallCudaConfig(),
                                 test::smallSiConfig()};
    const char* workloads[] = {"vectoradd", "reduction", "histogram"};

    std::size_t converged_total = 0;
    for (const GpuConfig& cfg : configs) {
        for (const char* wname : workloads) {
            const WorkloadInstance inst = buildFor(cfg, wname);

            std::vector<TargetStructure> structures;
            structures.push_back(TargetStructure::VectorRegisterFile);
            if (makeWorkload(wname)->usesLocalMemory())
                structures.push_back(TargetStructure::SharedMemory);
            if (cfg.scalarRegWordsPerSm > 0)
                structures.push_back(TargetStructure::ScalarRegisterFile);

            FaultInjector legacy(cfg, inst);
            FaultInjector ckpt(cfg, inst);
            ckpt.adoptGoldenCycles(legacy.goldenCycles());
            ckpt.buildCheckpointPack(4);

            for (TargetStructure s : structures) {
                for (std::size_t i = 0; i < kInjections; ++i) {
                    const std::uint64_t seed = deriveSeed(
                        0xD1FF, static_cast<std::uint64_t>(s) * 1000 + i);
                    const InjectionResult a =
                        runIndexedInjection(legacy, s, seed, i);
                    const InjectionResult b =
                        runIndexedInjection(ckpt, s, seed, i);
                    EXPECT_EQ(a.fault.bitIndex, b.fault.bitIndex);
                    EXPECT_EQ(a.fault.cycle, b.fault.cycle);
                    EXPECT_EQ(a.outcome, b.outcome)
                        << wname << " on " << cfg.name << " "
                        << targetStructureName(s) << " bit "
                        << a.fault.bitIndex << " cycle " << a.fault.cycle;
                    EXPECT_EQ(a.trap, b.trap);
                    EXPECT_FALSE(a.converged()); // legacy never shortcuts
                    if (b.converged()) {
                        ++converged_total;
                        EXPECT_EQ(b.outcome, FaultOutcome::Masked);
                    }
                }
            }
        }
    }
    // The engine must actually shortcut a healthy share of the masked
    // population (deterministic given the fixed seeds).
    EXPECT_GT(converged_total, 0u);
}

/**
 * Delta restore under every fault behavior: the checkpointed engine's
 * outcome equals the legacy from-scratch engine's for each registry
 * structure x {transient, stuck-at-0, stuck-at-1, intermittent}.
 * Persistent behaviors exercise the restore path hardest — every
 * injection delta-restores and replays to completion (no hash early-out)
 * — so any page the revert missed would flip an outcome here.
 */
TEST(Checkpoint, DeltaRestoreAgreesAcrossBehaviors)
{
    constexpr std::size_t kInjections = 6;
    const FaultBehavior behaviors[] = {
        FaultBehavior::Transient, FaultBehavior::StuckAt0,
        FaultBehavior::StuckAt1, FaultBehavior::Intermittent};

    const GpuConfig cfg = test::smallCudaConfig();
    const char* wname = "reduction";
    const WorkloadInstance inst = buildFor(cfg, wname);
    const std::vector<TargetStructure> structures = selectStructures(
        cfg, makeWorkload(wname)->usesLocalMemory(), {});
    ASSERT_FALSE(structures.empty());

    FaultInjector legacy(cfg, inst);
    FaultInjector ckpt(cfg, inst);
    ckpt.adoptGoldenCycles(legacy.goldenCycles());
    ckpt.buildCheckpointPack(4);

    for (TargetStructure s : structures) {
        for (FaultBehavior behavior : behaviors) {
            const FaultShape shape{behavior, FaultPattern::SingleBit};
            const std::uint64_t seed =
                deriveSeed(0xBEEF, static_cast<std::uint64_t>(s) * 16 +
                                       static_cast<std::uint64_t>(behavior));
            for (std::size_t i = 0; i < kInjections; ++i) {
                const InjectionResult a =
                    runIndexedInjection(legacy, s, seed, i, shape);
                const InjectionResult b =
                    runIndexedInjection(ckpt, s, seed, i, shape);
                EXPECT_EQ(a.fault.bitIndex, b.fault.bitIndex);
                EXPECT_EQ(a.fault.cycle, b.fault.cycle);
                EXPECT_EQ(a.outcome, b.outcome)
                    << targetStructureName(s) << " "
                    << faultBehaviorName(behavior) << " bit "
                    << a.fault.bitIndex << " cycle " << a.fault.cycle;
                EXPECT_EQ(a.trap, b.trap);
            }
        }
    }
}

/**
 * The incremental dirty-page hash equals a from-scratch hash of the same
 * contents: interleaving hashInto() with randomized writes (exercising
 * the digest cache at every state) always matches a freshly built
 * duplicate that hashes once at the end.
 */
TEST(Checkpoint, DirtyPageHashMatchesFreshHash)
{
    Rng rng(0x9A6E5);
    WordStorage a(1000); // intentionally not a page multiple
    WordStorage b(1000);
    for (int round = 0; round < 20; ++round) {
        for (int w = 0; w < 37; ++w) {
            const auto idx = static_cast<std::uint32_t>(rng.below(1000));
            const auto val = static_cast<Word>(rng.below(1ull << 32));
            a.write(idx, val);
            b.write(idx, val);
        }
        // Hash `a` every round (cached digests + dirty recompute)...
        StateHash ha;
        a.hashInto(ha);
        // ...and a fresh copy of `b` (every page recomputed from scratch).
        WordStorage fresh(1000);
        for (std::uint32_t i = 0; i < 1000; ++i)
            fresh.write(i, b.read(i));
        StateHash hb;
        fresh.hashInto(hb);
        EXPECT_EQ(ha.value(), hb.value()) << "round " << round;
    }

    // Same property for the memory image.
    MemoryImage img;
    const Buffer buf = img.allocBuffer(1000);
    MemoryImage dup;
    const Buffer dup_buf = dup.allocBuffer(1000);
    for (int round = 0; round < 20; ++round) {
        for (int w = 0; w < 37; ++w) {
            const auto idx = static_cast<std::uint32_t>(rng.below(1000));
            const auto val = static_cast<Word>(rng.below(1ull << 32));
            img.setWord(buf, idx, val);
            dup.setWord(dup_buf, idx, val);
        }
        StateHash hi;
        img.hashInto(hi);
        MemoryImage fresh;
        const Buffer fresh_buf = fresh.allocBuffer(1000);
        for (std::uint32_t i = 0; i < 1000; ++i)
            fresh.setWord(fresh_buf, i, dup.getWord(dup_buf, i));
        StateHash hf;
        fresh.hashInto(hf);
        EXPECT_EQ(hi.value(), hf.value()) << "round " << round;
    }
}

/** Checkpoint placement is a pure perf knob: fault-aware and even
 *  spacing classify every injection identically (and match the legacy
 *  engine — CampaignCountsInvariantUnderEngine covers that leg). */
TEST(Checkpoint, PlacementInvariantCampaignCounts)
{
    const GpuConfig cfg = test::smallCudaConfig();
    const WorkloadInstance inst = buildFor(cfg, "reduction");

    CampaignConfig aware;
    aware.plan.injections = 80;
    aware.numThreads = 2;
    aware.checkpoints = 6;
    aware.placement = CheckpointPlacement::FaultAware;

    CampaignConfig even = aware;
    even.placement = CheckpointPlacement::Even;

    const CampaignResult a = runCampaign(
        cfg, inst, TargetStructure::VectorRegisterFile, aware);
    const CampaignResult b = runCampaign(
        cfg, inst, TargetStructure::VectorRegisterFile, even);
    EXPECT_EQ(a.masked, b.masked);
    EXPECT_EQ(a.sdc, b.sdc);
    EXPECT_EQ(a.due, b.due);
}

/** The campaign path: checkpoints on vs off is count-for-count equal. */
TEST(Checkpoint, CampaignCountsInvariantUnderEngine)
{
    const GpuConfig cfg = test::smallCudaConfig();
    const WorkloadInstance inst = buildFor(cfg, "reduction");

    CampaignConfig legacy;
    legacy.plan.injections = 80;
    legacy.numThreads = 2;
    legacy.checkpoints = 0;

    CampaignConfig ckpt = legacy;
    ckpt.checkpoints = 6;

    const CampaignResult a = runCampaign(
        cfg, inst, TargetStructure::SharedMemory, legacy);
    const CampaignResult b =
        runCampaign(cfg, inst, TargetStructure::SharedMemory, ckpt);
    EXPECT_EQ(a.masked, b.masked);
    EXPECT_EQ(a.sdc, b.sdc);
    EXPECT_EQ(a.due, b.due);
}

/**
 * Regression: this exact fault (scan on the full-size FX 5600, LDS bit
 * 1325566 flipped at cycle 2619) once hash-"converged" spuriously.  The
 * flip is read into a register, leaving two single-bit differences at
 * bit 30 of odd-position words — bit 62 of the hash chunks — and the
 * original XOR-multiply hash was triangular mod 2^64, so the two
 * top-bit differences cancelled with probability ~1/4.  The rotate in
 * StateHash::round exists because of this fault; it must stay SDC.
 */
TEST(Checkpoint, HashIsNotTriangularRegression)
{
    const GpuConfig& cfg = gpuConfig(GpuModel::QuadroFx5600);
    const WorkloadInstance inst = buildFor(cfg, "scan");

    FaultSpec fault;
    fault.structure = TargetStructure::SharedMemory;
    fault.bitIndex = 1325566;
    fault.cycle = 2619;

    FaultInjector legacy(cfg, inst);
    const InjectionResult a = legacy.inject(fault);
    ASSERT_EQ(a.outcome, FaultOutcome::Sdc);

    FaultInjector ckpt(cfg, inst);
    ckpt.adoptGoldenCycles(legacy.goldenCycles());
    ckpt.buildCheckpointPack(8);
    const InjectionResult b = ckpt.inject(fault);
    EXPECT_EQ(b.outcome, FaultOutcome::Sdc);
    EXPECT_FALSE(b.converged());
}

/** Dead-window prefilter edge: a fault in never-touched space is
 *  masked without simulation, and inject() agrees with a from-scratch
 *  run of the very same fault. */
TEST(Checkpoint, PrefilterAgreesOnUntouchedStorage)
{
    const GpuConfig cfg = test::smallCudaConfig();
    const WorkloadInstance inst = buildFor(cfg, "vectoradd");

    FaultInjector legacy(cfg, inst);
    FaultInjector ckpt(cfg, inst);
    ckpt.adoptGoldenCycles(legacy.goldenCycles());
    ckpt.buildCheckpointPack(2);

    FaultSpec fault;
    fault.structure = TargetStructure::SharedMemory; // kernel uses none
    fault.bitIndex = 1234;
    fault.cycle = legacy.goldenCycles() / 2;

    const InjectionResult a = legacy.inject(fault);
    const InjectionResult b = ckpt.inject(fault);
    EXPECT_EQ(a.outcome, FaultOutcome::Masked);
    EXPECT_EQ(b.outcome, FaultOutcome::Masked);
    EXPECT_TRUE(b.converged());
}

} // namespace
} // namespace gpr
