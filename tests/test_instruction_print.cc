/** @file Rendering tests: Instruction::toString covers every syntactic
 *  form the assembler accepts (keeps the round-trip property honest). */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/instruction.hh"

namespace gpr {
namespace {

/** Assemble a one-instruction kernel and return that instruction's
 *  printed form. */
std::string
printOf(const std::string& line, const char* extra_directives = "")
{
    const Program p = assemble(std::string(".kernel t\n") +
                               extra_directives + line + "\nEXIT\n");
    return p.inst(0).toString();
}

TEST(InstructionPrint, AluForms)
{
    EXPECT_EQ(printOf("IADD V1, V2, V3"), "IADD V1, V2, V3");
    EXPECT_EQ(printOf("IMAD V1, V2, V3, V4"), "IMAD V1, V2, V3, V4");
    EXPECT_EQ(printOf("NOT V1, V2"), "NOT V1, V2");
    EXPECT_EQ(printOf("MOV V0, 0x10"), "MOV V0, 0x10");
}

TEST(InstructionPrint, GuardPrefixes)
{
    EXPECT_EQ(printOf("@P0 IADD V1, V2, V3"), "@P0 IADD V1, V2, V3");
    EXPECT_EQ(printOf("@!P3 MOV V1, 5"), "@!P3 MOV V1, 0x5");
}

TEST(InstructionPrint, PredicateForms)
{
    EXPECT_EQ(printOf("ISETP.LT P2, V1, V2"), "ISETP.LT P2, V1, V2");
    EXPECT_EQ(printOf("FSETP.GE P0, V1, 0x0"), "FSETP.GE P0, V1, 0x0");
    EXPECT_EQ(printOf("SELP V0, V1, V2, P1"), "SELP V0, V1, V2, P1");
}

TEST(InstructionPrint, MemoryForms)
{
    EXPECT_EQ(printOf("LDG V1, [V2]"), "LDG V1, [V2]");
    EXPECT_EQ(printOf("LDG V1, [V2 + 16]"), "LDG V1, [V2 + 16]");
    EXPECT_EQ(printOf("STG [V2 - 4], V1"), "STG [V2 - 4], V1");
    EXPECT_EQ(printOf("LDS V1, [V0 + 8]", ".smem 64\n"),
              "LDS V1, [V0 + 8]");
    EXPECT_EQ(printOf("ATOMS_ADD [V0], V1", ".smem 64\n"),
              "ATOMS_ADD [V0], V1");
    EXPECT_EQ(printOf("ATOMG_ADD [V0 + 4], V1"), "ATOMG_ADD [V0 + 4], V1");
}

TEST(InstructionPrint, SpecialAndControl)
{
    EXPECT_EQ(printOf("S2R V0, SR_CTAID_X"), "S2R V0, SR_CTAID_X");
    EXPECT_EQ(printOf("LDPARAM V0, 2"), "LDPARAM V0, 0x2");
    EXPECT_EQ(printOf("BAR"), "BAR");
    EXPECT_EQ(printOf("NOP"), "NOP");

    // Branch targets print the label.
    const Program p = assemble(
        ".kernel t\nl0:\nBRA l0\nEXIT\n");
    EXPECT_EQ(p.inst(0).toString(), "BRA l0");
}

TEST(InstructionPrint, ScalarRegisters)
{
    const Program p = assemble(
        ".kernel t\n.dialect si\nIADD S1, S0, 4\nEXIT\n");
    EXPECT_EQ(p.inst(0).toString(), "IADD S1, S0, 0x4");
}

TEST(InstructionPrint, DefaultInstructionIsNop)
{
    Instruction i;
    EXPECT_EQ(i.toString(), "NOP");
}

} // namespace
} // namespace gpr
