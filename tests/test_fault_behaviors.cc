/**
 * @file
 * Tests for the generalized fault-behavior API: behavior x pattern x
 * target fault descriptions (transient, stuck-at, intermittent; single
 * and adjacent multi-bit), the persistence hooks behind them, the
 * bit-identity guarantee for default-shape campaigns, and the full
 * orchestrated path (adaptive stopping, store resume, spec identity)
 * under non-default shapes.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/random.hh"
#include "core/export.hh"
#include "core/orchestrator.hh"
#include "reliability/campaign.hh"
#include "reliability/fault_injector.hh"
#include "sim/sm_core.hh"
#include "sim/storage.hh"
#include "sim/structure_registry.hh"
#include "sim_test_util.hh"
#include "workloads/workloads.hh"

namespace gpr {
namespace {

constexpr auto kRf = TargetStructure::VectorRegisterFile;
constexpr auto kLds = TargetStructure::SharedMemory;
constexpr auto kPred = TargetStructure::PredicateFile;
constexpr auto kSimt = TargetStructure::SimtStack;

constexpr FaultBehavior kPersistentBehaviors[] = {
    FaultBehavior::StuckAt0, FaultBehavior::StuckAt1,
    FaultBehavior::Intermittent};

WorkloadInstance
buildFor(const GpuConfig& cfg, const char* workload)
{
    return makeWorkload(workload)->build(cfg.dialect, {});
}

std::string
tempStorePath(const char* name)
{
    return testing::TempDir() + "gpr_behaviors_" + name + ".jsonl";
}

std::vector<std::string>
storeLines(const std::string& path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            lines.push_back(line);
    return lines;
}

void
expectIdenticalReports(const StudyResult& a, const StudyResult& b)
{
    ASSERT_EQ(a.reports.size(), b.reports.size());
    for (std::size_t i = 0; i < a.reports.size(); ++i) {
        const ReliabilityReport& ra = a.reports[i];
        const ReliabilityReport& rb = b.reports[i];
        EXPECT_EQ(ra.workload, rb.workload);
        EXPECT_EQ(ra.cycles, rb.cycles);
        ASSERT_EQ(ra.structures.size(), rb.structures.size());
        for (std::size_t k = 0; k < ra.structures.size(); ++k) {
            const StructureReport& sa = ra.structures[k];
            const StructureReport& sb = rb.structures[k];
            EXPECT_EQ(sa.applicable, sb.applicable);
            EXPECT_EQ(sa.injections, sb.injections);
            EXPECT_EQ(sa.avfFi, sb.avfFi);
            EXPECT_EQ(sa.sdcRate, sb.sdcRate);
            EXPECT_EQ(sa.dueRate, sb.dueRate);
            EXPECT_EQ(sa.avfCi.lo, sb.avfCi.lo);
            EXPECT_EQ(sa.avfCi.hi, sb.avfCi.hi);
            EXPECT_EQ(sa.behavior, sb.behavior);
            EXPECT_EQ(sa.pattern, sb.pattern);
        }
        EXPECT_EQ(ra.epf.epf(), rb.epf.epf());
    }
}

TEST(FaultModel, NamesRoundTripAndWidths)
{
    for (unsigned i = 0; i < kNumFaultBehaviors; ++i) {
        const auto b = static_cast<FaultBehavior>(i);
        FaultBehavior parsed;
        ASSERT_TRUE(tryFaultBehaviorFromName(faultBehaviorName(b), parsed));
        EXPECT_EQ(parsed, b);
        EXPECT_EQ(faultBehaviorFromName(faultBehaviorName(b)), b);
    }
    for (unsigned i = 0; i < kNumFaultPatterns; ++i) {
        const auto p = static_cast<FaultPattern>(i);
        FaultPattern parsed;
        ASSERT_TRUE(tryFaultPatternFromName(faultPatternName(p), parsed));
        EXPECT_EQ(parsed, p);
    }
    EXPECT_EQ(faultPatternWidth(FaultPattern::SingleBit), 1u);
    EXPECT_EQ(faultPatternWidth(FaultPattern::AdjacentDouble), 2u);
    EXPECT_EQ(faultPatternWidth(FaultPattern::AdjacentQuad), 4u);

    FaultBehavior b;
    EXPECT_FALSE(tryFaultBehaviorFromName("stuck-at-2", b));
    EXPECT_THROW(faultBehaviorFromName("permanent"), FatalError);
    FaultPattern p;
    EXPECT_FALSE(tryFaultPatternFromName("double", p));
    EXPECT_THROW(faultPatternFromName("burst"), FatalError);

    EXPECT_FALSE(faultBehaviorPersistent(FaultBehavior::Transient));
    for (FaultBehavior pb : kPersistentBehaviors)
        EXPECT_TRUE(faultBehaviorPersistent(pb));
    EXPECT_TRUE(FaultShape{}.isDefault());
    EXPECT_FALSE(
        (FaultShape{FaultBehavior::StuckAt0, FaultPattern::SingleBit}
             .isDefault()));
}

TEST(FaultModel, BareFaultSpecAggregateStaysTransientSingleBit)
{
    // The PR-4-era aggregate initialization must keep compiling and
    // must mean exactly what it used to: one transient single-bit flip.
    const FaultSpec fault{kRf, 17, 1000};
    EXPECT_EQ(fault.behavior, FaultBehavior::Transient);
    EXPECT_EQ(fault.pattern, FaultPattern::SingleBit);
    EXPECT_TRUE(fault.shape().isDefault());
    EXPECT_FALSE(fault.persistent());
    EXPECT_FALSE(faultForcedValue(fault));
}

TEST(FaultModel, ApplyFaultMaskEqualsRepeatedSingleFlips)
{
    const GpuConfig cfg = test::smallCudaConfig();
    SmCore a(cfg, 0);
    SmCore b(cfg, 0);

    a.applyFault(kRf, 64, 0b1011);
    b.flipBit(kRf, 64); // deprecated shim == applyFault(s, b, 1)
    b.applyFault(kRf, 65, 1);
    b.applyFault(kRf, 67, 1);

    StateHash ha, hb, fresh;
    a.hashInto(ha);
    b.hashInto(hb);
    SmCore(cfg, 0).hashInto(fresh);
    EXPECT_EQ(ha.value(), hb.value());
    EXPECT_NE(ha.value(), fresh.value());
}

TEST(FaultModel, StuckBitOverlayForcesReadsAndRetainsRawValue)
{
    WordStorage st(8);
    st.write(3, 0x0000F0F0u);
    st.setStuckBits(3, 0x0000000Fu, 0x00000005u);

    // Binding starts disabled: reads see the raw value.
    EXPECT_EQ(st.read(3), 0x0000F0F0u);

    st.setStuckEnabled(true);
    EXPECT_EQ(st.read(3), 0x0000F0F5u);
    EXPECT_EQ(st.read(2), 0u) << "overlay must only affect its word";

    // Writes land underneath the overlay; the raw value resurfaces
    // when the fault deactivates (intermittent retention semantics).
    st.write(3, 0xFFFFFFFFu);
    EXPECT_EQ(st.read(3), 0xFFFFFFF5u);
    st.setStuckEnabled(false);
    EXPECT_EQ(st.read(3), 0xFFFFFFFFu);

    st.setStuckEnabled(true);
    st.clearStuck();
    EXPECT_EQ(st.read(3), 0xFFFFFFFFu);
}

TEST(FaultModel, DefaultShapeCampaignBitIdenticalToShapelessApi)
{
    // A campaign with the defaulted shape field must classify exactly
    // like the pre-redesign API surface: same per-injection faults,
    // same counts.
    const GpuConfig& cfg = gpuConfig(GpuModel::QuadroFx5600);
    const WorkloadInstance inst = buildFor(cfg, "vectoradd");

    FaultInjector injector(cfg, inst);
    injector.buildCheckpointPack(4);
    for (std::size_t i = 0; i < 20; ++i) {
        const InjectionResult a = runIndexedInjection(injector, kRf, 7, i);
        const InjectionResult b = runIndexedInjection(
            injector, kRf, 7, i,
            FaultShape{FaultBehavior::Transient, FaultPattern::SingleBit});
        EXPECT_EQ(a.fault.bitIndex, b.fault.bitIndex);
        EXPECT_EQ(a.fault.cycle, b.fault.cycle);
        EXPECT_EQ(a.outcome, b.outcome);
        EXPECT_EQ(a.trap, b.trap);
        EXPECT_EQ(a.shortcut, b.shortcut);
    }

    CampaignConfig plain;
    plain.plan.injections = 40;
    plain.numThreads = 2;
    CampaignConfig shaped = plain;
    shaped.shape = FaultShape{};
    const CampaignResult x = runCampaign(cfg, inst, kRf, plain);
    const CampaignResult y = runCampaign(cfg, inst, kRf, shaped);
    EXPECT_EQ(x.masked, y.masked);
    EXPECT_EQ(x.sdc, y.sdc);
    EXPECT_EQ(x.due, y.due);
}

TEST(FaultModel, PersistentDifferentialAcrossEnginesAndStructures)
{
    // For every persistent behavior, the checkpoint-restore engine must
    // classify exactly like the from-scratch engine.  The legacy engine
    // never shortcuts; the checkpoint engine may take the persistent
    // fast path (value-residency prefilter, residency-gated hash
    // early-out) on word storage — and any shortcut it takes must agree
    // with the legacy engine's fully simulated verdict, which is the
    // differential gate for the fast path's soundness.  Control-bit
    // structures (pred/simt) have no fast path and must stay
    // shortcut-free.
    constexpr std::size_t kInjections = 12;
    const GpuConfig configs[] = {test::smallCudaConfig(),
                                 test::smallSiConfig()};

    std::size_t unmasked_total = 0;
    for (const GpuConfig& cfg : configs) {
        const WorkloadInstance inst = buildFor(cfg, "reduction");
        FaultInjector legacy(cfg, inst);
        FaultInjector ckpt(cfg, inst);
        ckpt.adoptGoldenCycles(legacy.goldenCycles());
        ckpt.buildCheckpointPack(4);

        for (TargetStructure s : {kRf, kLds, kPred, kSimt}) {
            for (FaultBehavior behavior : kPersistentBehaviors) {
                const FaultShape shape{behavior, FaultPattern::SingleBit};
                for (std::size_t i = 0; i < kInjections; ++i) {
                    const std::uint64_t seed = deriveSeed(
                        0xBEAF, static_cast<std::uint64_t>(s) * 100 + i);
                    const InjectionResult a =
                        runIndexedInjection(legacy, s, seed, i, shape);
                    const InjectionResult b =
                        runIndexedInjection(ckpt, s, seed, i, shape);
                    EXPECT_EQ(a.fault.bitIndex, b.fault.bitIndex);
                    EXPECT_EQ(a.fault.cycle, b.fault.cycle);
                    EXPECT_EQ(a.outcome, b.outcome)
                        << cfg.name << " " << targetStructureName(s)
                        << " " << faultBehaviorName(behavior) << " bit "
                        << a.fault.bitIndex << " cycle " << a.fault.cycle;
                    EXPECT_EQ(a.trap, b.trap);
                    EXPECT_EQ(a.shortcut, InjectionShortcut::None);
                    // The persistent fast path never reuses the
                    // transient-only dead-window shortcut, and a
                    // shortcut always means Masked.
                    EXPECT_NE(b.shortcut, InjectionShortcut::DeadWindow);
                    if (b.shortcut != InjectionShortcut::None) {
                        EXPECT_EQ(b.outcome, FaultOutcome::Masked);
                    }
                    if (s == kPred || s == kSimt) {
                        EXPECT_EQ(b.shortcut, InjectionShortcut::None);
                    }
                    if (behavior == FaultBehavior::Intermittent) {
                        EXPECT_GE(a.fault.intermittentPeriod, 8u);
                        EXPECT_LE(a.fault.intermittentPeriod, 64u);
                        EXPECT_GE(a.fault.intermittentActive, 1u);
                        EXPECT_LT(a.fault.intermittentActive,
                                  a.fault.intermittentPeriod);
                        EXPECT_EQ(a.fault.intermittentPeriod,
                                  b.fault.intermittentPeriod);
                        EXPECT_EQ(a.fault.intermittentActive,
                                  b.fault.intermittentActive);
                        EXPECT_EQ(a.fault.intermittentValue,
                                  b.fault.intermittentValue);
                    }
                    if (a.outcome != FaultOutcome::Masked)
                        ++unmasked_total;
                }
            }
        }
    }
    // The sweep must hit real failures, or it proves nothing.
    EXPECT_GT(unmasked_total, 0u);
}

TEST(FaultModel, StuckAgreeCycleTracksLastDisagreeingRead)
{
    const GpuConfig cfg = test::smallCudaConfig();
    FaultWindowRecorder rec(cfg);
    // Word 7 of SM 0's register file: read as 0b1 at cycle 10, then as
    // 0b0 at cycle 20.
    rec.onRead(kRf, 0, 7, 0x1, 10);
    rec.onRead(kRf, 0, 7, 0x0, 20);
    FaultWindows fw;
    rec.finalize(fw);

    // Bit 0 last reads 0 at cycle 20, so stuck-at-1 is benign only from
    // cycle 21; it last reads 1 at cycle 10, so stuck-at-0 from 11.
    EXPECT_EQ(fw.stuckAgreeCycle(kRf, 7, 0, 1, true), 21u);
    EXPECT_EQ(fw.stuckAgreeCycle(kRf, 7, 0, 1, false), 11u);
    // Bit 1 reads 0 both times: stuck-at-0 is benign from the start,
    // stuck-at-1 only after the last read.
    EXPECT_EQ(fw.stuckAgreeCycle(kRf, 7, 1, 1, false), 0u);
    EXPECT_EQ(fw.stuckAgreeCycle(kRf, 7, 1, 1, true), 21u);
    // A never-read word is benign at any cycle.
    EXPECT_EQ(fw.stuckAgreeCycle(kRf, 3, 5, 1, true), 0u);
    // Multi-bit groups take the max over their bits.
    EXPECT_EQ(fw.stuckAgreeCycle(kRf, 7, 0, 2, false), 11u);
    // Control-bit structures have no residency: stay conservative.
    EXPECT_EQ(fw.stuckAgreeCycle(kPred, 0, 0, 1, true),
              FaultWindows::kNeverAgrees);
}

TEST(FaultModel, ResidencyPrefilterVerdictsMatchFullSimulation)
{
    // Randomized (structure, bit, cycle) samples: every prefilter
    // verdict of the fast path must agree with a full from-scratch
    // simulation of the same fault, and a ValueResidency shortcut must
    // only ever claim Masked faults the legacy engine also masks.
    const GpuConfig configs[] = {test::smallCudaConfig(),
                                 test::smallSiConfig()};
    constexpr auto kSrf = TargetStructure::ScalarRegisterFile;

    std::size_t residency_hits = 0;
    for (const GpuConfig& cfg : configs) {
        const WorkloadInstance inst = buildFor(cfg, "reduction");
        FaultInjector legacy(cfg, inst);
        FaultInjector ckpt(cfg, inst);
        ckpt.adoptGoldenCycles(legacy.goldenCycles());
        ckpt.buildCheckpointPack(4);

        Rng rng(0x51CC + cfg.numSms);
        for (TargetStructure s : {kRf, kLds, kSrf}) {
            if (legacy.gpu().structureBits(s) == 0)
                continue; // no SRF on this chip
            for (FaultBehavior behavior :
                 {FaultBehavior::StuckAt0, FaultBehavior::StuckAt1}) {
                for (int i = 0; i < 10; ++i) {
                    FaultSpec fault;
                    fault.structure = s;
                    fault.behavior = behavior;
                    fault.bitIndex =
                        rng.below(legacy.gpu().structureBits(s));
                    fault.cycle = rng.below(legacy.goldenCycles());
                    const InjectionResult b = ckpt.inject(fault);
                    const InjectionResult a = legacy.inject(fault);
                    EXPECT_EQ(a.outcome, b.outcome)
                        << cfg.name << " " << targetStructureName(s)
                        << " " << faultBehaviorName(behavior) << " bit "
                        << fault.bitIndex << " cycle " << fault.cycle;
                    EXPECT_EQ(a.trap, b.trap);
                    if (b.shortcut == InjectionShortcut::ValueResidency) {
                        EXPECT_EQ(a.outcome, FaultOutcome::Masked);
                        ++residency_hits;
                    }
                }
            }
        }
    }
    // The battery must actually exercise the prefilter.
    EXPECT_GT(residency_hits, 0u);
}

TEST(FaultModel, PersistentCampaignsBitIdenticalAcrossEngines)
{
    // Campaign-level differential: the fast-path engine (prefilter,
    // masked early-out, shared-restore batching) must reproduce the
    // from-scratch engine's counts exactly, per persistent behavior.
    const GpuConfig cfg = test::smallCudaConfig();
    const WorkloadInstance inst = buildFor(cfg, "reduction");

    for (FaultBehavior behavior : kPersistentBehaviors) {
        CampaignConfig fast;
        fast.plan.injections = 48;
        fast.numThreads = 2;
        fast.shape = FaultShape{behavior, FaultPattern::SingleBit};
        CampaignConfig legacy = fast;
        legacy.checkpoints = 0;
        const CampaignResult x = runCampaign(cfg, inst, kRf, fast);
        const CampaignResult y = runCampaign(cfg, inst, kRf, legacy);
        EXPECT_EQ(x.masked, y.masked) << faultBehaviorName(behavior);
        EXPECT_EQ(x.sdc, y.sdc) << faultBehaviorName(behavior);
        EXPECT_EQ(x.due, y.due) << faultBehaviorName(behavior);
    }
}

TEST(FaultModel, MultiBitDifferentialAndAlignment)
{
    constexpr std::size_t kInjections = 15;
    const GpuConfig cfg = test::smallCudaConfig();
    const WorkloadInstance inst = buildFor(cfg, "histogram");

    FaultInjector legacy(cfg, inst);
    FaultInjector ckpt(cfg, inst);
    ckpt.adoptGoldenCycles(legacy.goldenCycles());
    ckpt.buildCheckpointPack(4);

    for (FaultPattern pattern :
         {FaultPattern::AdjacentDouble, FaultPattern::AdjacentQuad}) {
        const FaultShape shape{FaultBehavior::Transient, pattern};
        const unsigned width = faultPatternWidth(pattern);
        for (TargetStructure s : {kRf, kLds, kPred, kSimt}) {
            for (std::size_t i = 0; i < kInjections; ++i) {
                const std::uint64_t seed = deriveSeed(
                    0x3B17, static_cast<std::uint64_t>(s) * 100 + i);
                const InjectionResult a =
                    runIndexedInjection(legacy, s, seed, i, shape);
                const InjectionResult b =
                    runIndexedInjection(ckpt, s, seed, i, shape);
                EXPECT_EQ(a.outcome, b.outcome)
                    << targetStructureName(s) << " width " << width
                    << " bit " << a.fault.bitIndex;
                EXPECT_EQ(a.trap, b.trap);
                // The injected group is the sampled bit's width-aligned
                // neighborhood (SM-local), so explicitly aligning the
                // sampled bit must classify identically.
                const std::uint64_t bits_per_sm =
                    structureSpec(s).bitsPerSm(cfg);
                FaultSpec aligned = a.fault;
                aligned.bitIndex -= (a.fault.bitIndex % bits_per_sm) % width;
                const InjectionResult c = legacy.inject(aligned);
                EXPECT_EQ(c.outcome, a.outcome)
                    << targetStructureName(s) << " width " << width
                    << " bit " << a.fault.bitIndex;
                EXPECT_EQ(c.trap, a.trap);
            }
        }
    }
}

TEST(FaultModel, StuckAtDivergesFromTransientOnControlState)
{
    // The headline experiment's mechanism at unit scale: the same
    // sampled fault list classified under stuck-at-0 must produce
    // different counts than under the transient model on the predicate
    // file (a persistent fault keeps re-corrupting guard bits a
    // one-shot flip recovers from).  The cell (reduction on the FX
    // 5600, the paper-grid seeds) is one where the divergence is large:
    // every sampled transient predicate flip masks, while stuck-at-0
    // produces SDC.
    const GpuConfig& cfg = gpuConfig(GpuModel::QuadroFx5600);
    const WorkloadInstance inst = buildFor(cfg, "reduction");

    CampaignConfig transient;
    transient.plan.injections = 80;
    transient.numThreads = 2;
    transient.seed =
        deriveSeed(0xC0FFEE, static_cast<std::uint64_t>(kPred));
    CampaignConfig stuck = transient;
    stuck.shape = FaultShape{FaultBehavior::StuckAt0,
                             FaultPattern::SingleBit};

    const CampaignResult t = runCampaign(cfg, inst, kPred, transient);
    const CampaignResult p = runCampaign(cfg, inst, kPred, stuck);
    ASSERT_EQ(t.injections, p.injections);
    EXPECT_NE(std::make_pair(t.sdc, t.due), std::make_pair(p.sdc, p.due))
        << "stuck-at-0 and transient classified every sampled predicate "
           "fault identically";
    EXPECT_GT(p.sdc + p.due, t.sdc + t.due)
        << "persistent predicate faults should be strictly more harmful "
           "on this cell";
}

TEST(FaultModel, AdaptiveStuckAtStudyMatchesStandaloneCampaign)
{
    // A stuck-at campaign through the adaptive orchestrator: same
    // stopping point and counts as standalone runCampaign(), and the
    // stopping decision recomputable from the outcome prefix alone.
    StudySpec spec = StudySpecBuilder()
                         .workload("vectoradd")
                         .gpu(GpuModel::QuadroFx5600)
                         .structure(kPred)
                         .margin(0.1)
                         .confidence(0.9)
                         .maxInjections(200)
                         .faultBehavior(FaultBehavior::StuckAt0)
                         .verbose(false)
                         .build();
    const StudyResult result = runStudy(spec);
    const StructureReport& sr =
        result.reports.front().forStructure(kPred);
    EXPECT_EQ(sr.behavior, FaultBehavior::StuckAt0);
    EXPECT_EQ(sr.pattern, FaultPattern::SingleBit);
    EXPECT_GT(sr.injections, 0u);

    const GpuConfig& cfg = gpuConfig(GpuModel::QuadroFx5600);
    WorkloadParams params;
    params.seed = spec.workloadSeed;
    const WorkloadInstance inst =
        makeWorkload("vectoradd")->build(cfg.dialect, params);
    CampaignConfig cc;
    cc.plan = spec.plan;
    cc.seed = deriveSeed(spec.seed, static_cast<std::uint64_t>(kPred));
    cc.numThreads = 1;
    cc.shape = spec.faultShape();
    const CampaignResult fi = runCampaign(cfg, inst, kPred, cc);

    EXPECT_EQ(sr.injections, fi.injections);
    EXPECT_EQ(sr.avfFi, fi.avf());
    EXPECT_EQ(sr.sdcRate, fi.sdcRate());
    EXPECT_EQ(sr.dueRate, fi.dueRate());

    // Replay the stopping rule over the recorded outcome prefix: the
    // campaign must have stopped at the first satisfying look (or the
    // cap) — a pure function of (sdc, due, n), shape included only
    // through the outcomes themselves.
    FaultInjector injector(cfg, inst);
    injector.buildCheckpointPack(spec.checkpoints);
    std::uint64_t sdc = 0, due = 0;
    std::uint64_t expected_stop = spec.plan.resolvedMaxInjections();
    std::uint64_t n = 0;
    for (std::uint64_t look : sequentialSchedule(spec.plan)) {
        for (; n < look; ++n) {
            const InjectionResult r = runIndexedInjection(
                injector, kPred, cc.seed, n, cc.shape);
            sdc += r.outcome == FaultOutcome::Sdc;
            due += r.outcome == FaultOutcome::Due;
        }
        if (evaluateSequentialStop(sdc, due, n, spec.plan).stop) {
            expected_stop = n;
            break;
        }
    }
    EXPECT_EQ(sr.injections, expected_stop);
}

TEST(FaultModel, StuckAtStudyKillAndResumeIsBitIdentical)
{
    const std::string path = tempStorePath("resume");
    StudySpec first = StudySpecBuilder()
                          .workload("reduction")
                          .gpu(GpuModel::QuadroFx5600)
                          .structures({kRf, kSimt})
                          .injections(24)
                          .faultBehavior(FaultBehavior::StuckAt1)
                          .faultPattern(FaultPattern::AdjacentDouble)
                          .shardsPerCampaign(4)
                          .jobs(1)
                          .store(path)
                          .verbose(false)
                          .build();
    StudyProgress full_progress;
    const StudyResult full = runStudy(first, &full_progress);
    ASSERT_EQ(full_progress.executedShards, 8u);

    // Every shard record carries the non-default shape and parses back.
    const auto lines = storeLines(path);
    ASSERT_EQ(lines.size(), 9u);
    for (std::size_t i = 1; i < lines.size(); ++i) {
        EXPECT_NE(lines[i].find("\"behavior\":\"stuck-at-1\""),
                  std::string::npos)
            << lines[i];
        ShardRecord r;
        ASSERT_TRUE(parseShardRecord(lines[i], r)) << lines[i];
        EXPECT_EQ(r.key.behavior, FaultBehavior::StuckAt1);
        EXPECT_EQ(r.key.pattern, FaultPattern::AdjacentDouble);
    }

    // Kill after 3 shards (plus a torn tail line) and resume.
    {
        std::ofstream out(path, std::ios::trunc);
        for (std::size_t i = 0; i < 4; ++i)
            out << lines[i] << '\n';
        out << lines[4].substr(0, lines[4].size() / 2);
    }
    StudySpec second = first;
    second.jobs = 4;
    second.resume = true;
    StudyProgress resumed_progress;
    const StudyResult resumed = runStudy(second, &resumed_progress);
    EXPECT_EQ(resumed_progress.resumedShards, 3u);
    EXPECT_EQ(resumed_progress.executedShards, 5u);
    expectIdenticalReports(full, resumed);

    // A doctored spec (same everything, default behavior) must be
    // refused: the shape is campaign identity.
    StudySpec doctored = second;
    doctored.faultBehavior = FaultBehavior::Transient;
    try {
        runStudy(doctored);
        FAIL() << "expected FatalError on shape mismatch";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find(first.campaignHashHex()),
                  std::string::npos)
            << e.what();
    }
    std::remove(path.c_str());
}

TEST(FaultModel, ShapeIsCampaignIdentityOnlyWhenNonDefault)
{
    const StudySpec base = StudySpecBuilder().verbose(false).build();

    // Explicit defaults hash identically to an untouched spec — the
    // pre-redesign hash stays valid for every default-shape store.
    StudySpec explicit_default = base;
    explicit_default.faultBehavior = FaultBehavior::Transient;
    explicit_default.faultPattern = FaultPattern::SingleBit;
    EXPECT_EQ(explicit_default.campaignHash(), base.campaignHash());

    StudySpec stuck = base;
    stuck.faultBehavior = FaultBehavior::StuckAt0;
    EXPECT_NE(stuck.campaignHash(), base.campaignHash());
    StudySpec quad = base;
    quad.faultPattern = FaultPattern::AdjacentQuad;
    EXPECT_NE(quad.campaignHash(), base.campaignHash());
    EXPECT_NE(stuck.campaignHash(), quad.campaignHash());

    // JSON round-trip, equality and dump contents.
    StudySpec shaped = base;
    shaped.faultBehavior = FaultBehavior::Intermittent;
    shaped.faultPattern = FaultPattern::AdjacentDouble;
    const std::string json = shaped.toJsonString();
    EXPECT_NE(json.find("\"fault_behavior\":\"intermittent\""),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"fault_pattern\":\"adjacent-double\""),
              std::string::npos)
        << json;
    const StudySpec back = StudySpec::fromJson(json);
    EXPECT_TRUE(back == shaped);
    EXPECT_EQ(back.campaignHash(), shaped.campaignHash());
    EXPECT_FALSE(back == base);

    // A default spec's JSON still names the shape (dump-spec fixed
    // point), parsing back to the default.
    const std::string default_json = base.toJsonString();
    EXPECT_NE(default_json.find("\"fault_behavior\":\"transient\""),
              std::string::npos);
    EXPECT_TRUE(StudySpec::fromJson(default_json) == base);
}

TEST(FaultModel, DefaultStoreRecordsCarryNoShapeKeys)
{
    // Default-shape stores must stay byte-compatible with pre-shape
    // builds: no behavior/pattern keys on any shard record.
    const std::string path = tempStorePath("default");
    const StudySpec spec = StudySpecBuilder()
                               .workload("vectoradd")
                               .gpu(GpuModel::QuadroFx5600)
                               .structure(kRf)
                               .injections(12)
                               .shardsPerCampaign(2)
                               .store(path)
                               .verbose(false)
                               .build();
    runStudy(spec);
    const auto lines = storeLines(path);
    ASSERT_EQ(lines.size(), 3u);
    for (std::size_t i = 1; i < lines.size(); ++i) {
        EXPECT_EQ(lines[i].find("\"behavior\""), std::string::npos)
            << lines[i];
        EXPECT_EQ(lines[i].find("\"pattern\""), std::string::npos)
            << lines[i];
        ShardRecord r;
        ASSERT_TRUE(parseShardRecord(lines[i], r));
        EXPECT_EQ(r.key.behavior, FaultBehavior::Transient);
        EXPECT_EQ(r.key.pattern, FaultPattern::SingleBit);
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace gpr
