/** @file Integration tests asserting the paper's qualitative findings on
 *  the reproduction — the scientific acceptance tests.
 *
 *  These use a 2-SM device and moderate injection counts so they stay
 *  fast; margins in the assertions account for the sampling error.
 */

#include <gtest/gtest.h>

#include "reliability/ace.hh"
#include "reliability/campaign.hh"
#include "reliability/fit_epf.hh"
#include "sim_test_util.hh"
#include "workloads/workloads.hh"

namespace gpr {
namespace {

struct Measured
{
    double avf_fi = 0.0;
    double margin = 0.0;
    double avf_ace = 0.0;
    double occupancy = 0.0;
};

Measured
measure(const GpuConfig& cfg, const char* workload, TargetStructure s,
        std::size_t n)
{
    const auto wl = makeWorkload(workload);
    const WorkloadInstance inst = wl->build(cfg.dialect, {});
    CampaignConfig cc;
    cc.plan.injections = n;
    cc.seed = 0x7357;
    const CampaignResult fi = runCampaign(cfg, inst, s, cc);
    const AceResult ace = runAceAnalysis(cfg, inst);
    Measured m;
    m.avf_fi = fi.avf();
    m.margin = fi.errorMargin();
    m.avf_ace = ace.forStructure(s).avf();
    m.occupancy = s == TargetStructure::VectorRegisterFile
                      ? fi.goldenStats.avgRegFileOccupancy
                      : fi.goldenStats.avgSmemOccupancy;
    return m;
}

/** Finding: ACE analysis never undershoots FI beyond sampling noise and
 *  significantly overestimates the register file. */
TEST(PaperClaims, AceDominatesFiOnRegisterFile)
{
    const GpuConfig cfg = test::smallCudaConfig();
    for (const char* wl : {"kmeans", "reduction", "vectoradd"}) {
        const Measured m = measure(cfg, wl,
                                   TargetStructure::VectorRegisterFile,
                                   150);
        EXPECT_GE(m.avf_ace, m.avf_fi - m.margin - 0.02) << wl;
    }
    // kmeans (argmin masking) shows the overestimate clearly.
    const Measured km =
        measure(cfg, "kmeans", TargetStructure::VectorRegisterFile, 150);
    EXPECT_GT(km.avf_ace, km.avf_fi + 0.03)
        << "expected a visible ACE overestimate on kmeans";
}

/** Finding: for local memory, ACE is close to FI. */
TEST(PaperClaims, AceMatchesFiOnLocalMemory)
{
    const GpuConfig cfg = test::smallCudaConfig();
    for (const char* wl : {"transpose", "scan"}) {
        const Measured m =
            measure(cfg, wl, TargetStructure::SharedMemory, 150);
        EXPECT_NEAR(m.avf_ace, m.avf_fi, m.margin + 0.05) << wl;
    }
}

/** Finding: AVF is bounded by (and tracks) structure occupancy. */
TEST(PaperClaims, AvfBoundedByOccupancy)
{
    const GpuConfig cfg = test::smallCudaConfig();
    for (const char* wl : {"vectoradd", "scan", "histogram"}) {
        const Measured rf = measure(
            cfg, wl, TargetStructure::VectorRegisterFile, 120);
        EXPECT_LE(rf.avf_fi, rf.occupancy + rf.margin + 0.02) << wl;
        EXPECT_LE(rf.avf_ace, rf.occupancy + 0.02) << wl;
    }
}

/** Finding: AVF varies across benchmarks on the same GPU. */
TEST(PaperClaims, AvfVariesAcrossBenchmarks)
{
    const GpuConfig cfg = test::smallCudaConfig();
    double lo = 2.0, hi = -1.0;
    for (const char* wl : {"vectoradd", "matrixMul", "kmeans"}) {
        const auto workload = makeWorkload(wl);
        const WorkloadInstance inst = workload->build(cfg.dialect, {});
        const AceResult ace = runAceAnalysis(cfg, inst);
        lo = std::min(
            lo, ace.forStructure(TargetStructure::VectorRegisterFile)
                    .avf());
        hi = std::max(
            hi, ace.forStructure(TargetStructure::VectorRegisterFile)
                    .avf());
    }
    EXPECT_GT(hi - lo, 0.05)
        << "register-file AVF should vary clearly across benchmarks";
}

/**
 * Finding: ACE analysis is orders of magnitude cheaper than FI — *as
 * the paper's tools run FI*, i.e. every injection simulated from
 * scratch (checkpoints = 0).  The checkpoint-restore engine has since
 * overturned this cost ratio (see bench/injection_throughput.cc), so
 * the claim is pinned to the legacy engine it was made about.
 */
TEST(PaperClaims, AceIsMuchCheaperThanFi)
{
    const GpuConfig cfg = test::smallCudaConfig();
    const auto wl = makeWorkload("vectoradd");
    const WorkloadInstance inst = wl->build(cfg.dialect, {});
    CampaignConfig cc;
    cc.plan.injections = 100;
    cc.checkpoints = 0; // the paper's from-scratch FI methodology
    const CampaignResult fi =
        runCampaign(cfg, inst, TargetStructure::VectorRegisterFile, cc);
    const AceResult ace = runAceAnalysis(cfg, inst);
    EXPECT_LT(ace.wallSeconds * 5, fi.wallSeconds)
        << "ACE must be much cheaper than a 100-injection campaign";
}

/**
 * Footnote 4, pinned: "2,000 fault injections per hardware structure
 * ... statistically provides 2.88% error margin for 99% confidence
 * level."  bench/footnote_sampling.cc renders these numbers; this pins
 * them to the sampling subsystem so a statistics regression (or a
 * quantile-approximation swap) fails loudly.
 */
TEST(PaperClaims, Footnote4SamplePlanNumbers)
{
    const SamplePlan paper = paperSamplePlan();
    ASSERT_EQ(paper.injections, 2000u);
    ASSERT_DOUBLE_EQ(paper.confidence, 0.99);
    // 2.88% to the printed precision of the footnote.
    EXPECT_NEAR(paper.errorMargin(), 0.0288, 5e-5);

    // Inverting the footnote's margin recovers the footnote's n
    // exactly, and the resulting plan honours its target.
    EXPECT_EQ(planForMargin(0.0288, 0.99).injections, 2000u);
    EXPECT_LE(planForMargin(0.0288, 0.99).errorMargin(), 0.0288);

    // An adaptive campaign at the footnote's precision can never
    // exceed the footnote's budget — the cap defaults to the same n.
    EXPECT_EQ(adaptivePlan(0.0288, 0.99).resolvedMaxInjections(), 2000u);

    // The Wilson interval the campaigns report is consistent with the
    // worst-case formula at p = 0.5: at the formula's own derivation
    // point the half-width matches the quoted margin up to Wilson's
    // finite-n shrinkage (z^2/n correction, ~5e-5 at n = 2000).
    const Interval half =
        wilsonInterval(1000, paper.injections, paper.confidence);
    EXPECT_NEAR(half.width() / 2.0, paper.errorMargin(), 1e-4);
}

/** Finding: EPF sits in the paper's 1e12..1e16 band for real chips. */
TEST(PaperClaims, EpfInPaperRange)
{
    for (GpuModel model :
         {GpuModel::QuadroFx5600, GpuModel::GeforceGtx480}) {
        const GpuConfig& cfg = gpuConfig(model);
        const auto wl = makeWorkload("reduction");
        const WorkloadInstance inst = wl->build(cfg.dialect, {});
        const AceResult ace = runAceAnalysis(cfg, inst);
        const EpfResult epf = computeEpf(
            cfg, ace.goldenStats.cycles,
            ace.forStructure(TargetStructure::VectorRegisterFile).avf(),
            ace.forStructure(TargetStructure::SharedMemory).avf());
        EXPECT_GT(epf.epf(), 1e12) << cfg.name;
        EXPECT_LT(epf.epf(), 1e17) << cfg.name;
    }
}

/** Finding (cross-vendor): the same benchmark yields different AVFs on
 *  different architectures — the reason the comparison matters. */
TEST(PaperClaims, AvfDiffersAcrossArchitectures)
{
    const auto wl = makeWorkload("vectoradd");

    GpuConfig small_g80 = gpuConfig(GpuModel::QuadroFx5600);
    small_g80.numSms = 2;
    const WorkloadInstance nv_inst = wl->build(small_g80.dialect, {});
    const AceResult nv = runAceAnalysis(small_g80, nv_inst);

    GpuConfig small_tahiti = test::smallSiConfig();
    const WorkloadInstance amd_inst =
        wl->build(small_tahiti.dialect, {});
    const AceResult amd = runAceAnalysis(small_tahiti, amd_inst);

    // G80's tiny register file concentrates live state: higher AVF than
    // Tahiti's huge file at the same benchmark.
    EXPECT_GT(nv.forStructure(TargetStructure::VectorRegisterFile).avf(),
              amd.forStructure(TargetStructure::VectorRegisterFile).avf());
}

} // namespace
} // namespace gpr
