/** @file Parameterized integration tests: every benchmark on every GPU
 *  runs to completion and verifies its golden output. */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/string_utils.hh"

#include "sim_test_util.hh"
#include "workloads/workloads.hh"

namespace gpr {
namespace {

using Combo = std::tuple<std::string_view, GpuModel>;

class WorkloadOnGpu : public ::testing::TestWithParam<Combo>
{
};

TEST_P(WorkloadOnGpu, GoldenRunVerifies)
{
    const auto [name, model] = GetParam();
    const GpuConfig& cfg = gpuConfig(model);
    const auto wl = makeWorkload(name);
    const WorkloadInstance inst = wl->build(cfg.dialect, {});

    Gpu gpu(cfg);
    const RunResult r = gpu.run(inst.program, inst.launch, inst.image);
    ASSERT_TRUE(r.clean()) << trapKindName(r.trap);
    std::string why;
    EXPECT_TRUE(verifyOutputs(inst, r.memory, &why)) << why;

    // Occupancies are proper fractions; the kernel did real work.
    EXPECT_GT(r.stats.cycles, 0u);
    EXPECT_GT(r.stats.warpInstructions, 0u);
    EXPECT_GT(r.stats.avgRegFileOccupancy, 0.0);
    EXPECT_LE(r.stats.avgRegFileOccupancy, 1.0);
    EXPECT_GE(r.stats.avgSmemOccupancy, 0.0);
    EXPECT_LE(r.stats.avgSmemOccupancy, 1.0);
    EXPECT_LE(r.stats.avgWarpOccupancy, 1.0);

    if (wl->usesLocalMemory()) {
        EXPECT_GT(r.stats.sharedAccesses, 0u);
        EXPECT_GT(r.stats.avgSmemOccupancy, 0.0);
        EXPECT_GT(inst.program.smemBytes(), 0u);
    } else {
        EXPECT_EQ(inst.program.smemBytes(), 0u);
    }
}

TEST_P(WorkloadOnGpu, DialectLoweringMatchesVendor)
{
    const auto [name, model] = GetParam();
    const GpuConfig& cfg = gpuConfig(model);
    const auto wl = makeWorkload(name);
    const WorkloadInstance inst = wl->build(cfg.dialect, {});

    EXPECT_EQ(inst.program.dialect(), cfg.dialect);
    if (cfg.dialect == IsaDialect::SouthernIslands) {
        // Uniform values must have been lowered onto the scalar file.
        EXPECT_GT(inst.program.numSRegs(), 0u) << "no scalar registers";
    } else {
        EXPECT_EQ(inst.program.numSRegs(), 0u);
    }
    EXPECT_GT(inst.program.numVRegs(), 0u);
}

std::vector<Combo>
allCombos()
{
    std::vector<Combo> combos;
    for (auto name : allWorkloadNames())
        for (GpuModel model : allGpuModels())
            combos.emplace_back(name, model);
    return combos;
}

std::string
comboName(const ::testing::TestParamInfo<Combo>& info)
{
    std::string n = std::string(std::get<0>(info.param)) + "_";
    switch (std::get<1>(info.param)) {
      case GpuModel::HdRadeon7970:
        n += "hd7970";
        break;
      case GpuModel::QuadroFx5600:
        n += "fx5600";
        break;
      case GpuModel::QuadroFx5800:
        n += "fx5800";
        break;
      case GpuModel::GeforceGtx480:
        n += "gtx480";
        break;
    }
    return n;
}

INSTANTIATE_TEST_SUITE_P(AllPairs, WorkloadOnGpu,
                         ::testing::ValuesIn(allCombos()), comboName);

TEST(WorkloadRegistry, TenBenchmarksInFigureOrder)
{
    const auto& names = allWorkloadNames();
    ASSERT_EQ(names.size(), 10u);
    EXPECT_EQ(names.front(), "backprop");
    EXPECT_EQ(names.back(), "vectoradd");
    // Sorted as in the paper's figures.
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end(),
                               [](auto a, auto b) {
                                   return toLower(std::string(a)) <
                                          toLower(std::string(b));
                               }));
}

TEST(WorkloadRegistry, LocalMemorySetMatchesFigure2)
{
    // Fig. 2 has exactly these seven benchmarks.
    const std::set<std::string_view> expected = {
        "backprop",  "dwtHaar1D", "histogram", "matrixMul",
        "reduction", "scan",      "transpose"};
    std::set<std::string_view> actual(localMemoryWorkloadNames().begin(),
                                      localMemoryWorkloadNames().end());
    EXPECT_EQ(actual, expected);

    // And usesLocalMemory() agrees with the registry split.
    for (auto name : allWorkloadNames()) {
        EXPECT_EQ(makeWorkload(name)->usesLocalMemory(),
                  expected.count(name) == 1)
            << name;
    }
}

TEST(WorkloadRegistry, UnknownNameIsFatal)
{
    EXPECT_THROW(makeWorkload("nonesuch"), FatalError);
}

TEST(WorkloadRegistry, SeedChangesInputsButStaysValid)
{
    const GpuConfig cfg = test::smallCudaConfig();
    const auto wl = makeWorkload("vectoradd");
    WorkloadParams p1, p2;
    p1.seed = 1;
    p2.seed = 2;
    const WorkloadInstance a = wl->build(cfg.dialect, p1);
    const WorkloadInstance b = wl->build(cfg.dialect, p2);

    // Different inputs...
    bool any_diff = false;
    for (std::uint32_t i = 0; i < a.image.sizeWords() && !any_diff; ++i)
        any_diff = a.image.readWord(i * 4) != b.image.readWord(i * 4);
    EXPECT_TRUE(any_diff);

    // ...but both verify on their own goldens.
    Gpu gpu(cfg);
    for (const WorkloadInstance* inst : {&a, &b}) {
        const RunResult r =
            gpu.run(inst->program, inst->launch, inst->image);
        ASSERT_TRUE(r.clean());
        std::string why;
        EXPECT_TRUE(verifyOutputs(*inst, r.memory, &why)) << why;
    }
}

} // namespace
} // namespace gpr
