/**
 * @file
 * Cache-hierarchy fault targets: CacheModel semantics at unit scale
 * (tag / valid / data faults and their writeback consequences), the
 * misaligned-address trap the caches made necessary, registry coverage
 * across all four paper GPUs, and the legacy-vs-checkpoint differential
 * battery over l1d/l1i/l2 for every fault behavior.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "isa/builder.hh"
#include "reliability/campaign.hh"
#include "reliability/fault_injector.hh"
#include "sim/cache.hh"
#include "sim/structure_registry.hh"
#include "sim_test_util.hh"
#include "workloads/workloads.hh"

namespace gpr {
namespace {

constexpr auto kL1d = TargetStructure::L1DataCache;
constexpr auto kL1i = TargetStructure::L1InstructionCache;
constexpr auto kL2 = TargetStructure::L2Cache;

// A tiny 4-line x 4-word write-back cache (the L2 flavor) over a
// 64-word image.  lineBytes = 16, so addr A maps to line (A/16) % 4.
struct SmallCache
{
    MemoryImage img;
    Buffer buf;
    CacheModel l2{kL2, 0, 4, 4};

    SmallCache() { buf = img.allocBuffer(64); }
};

TEST(CacheModel, FaultFreeReadsAndWritesAreTransparent)
{
    SmallCache s;
    s.img.writeWord(0, 0x1234);
    const CacheModel::Access a = s.l2.read(0, nullptr, s.img, nullptr, 0);
    ASSERT_FALSE(a.trap.has_value());
    EXPECT_EQ(a.value, 0x1234u);

    ASSERT_FALSE(
        s.l2.write(4, 0xBEEF, nullptr, s.img, nullptr, 1).has_value());
    const CacheModel::Access b = s.l2.read(4, nullptr, s.img, nullptr, 2);
    EXPECT_EQ(b.value, 0xBEEFu);
    // Write-back: the store is cached, not yet in the image...
    EXPECT_EQ(s.img.readWord(4), 0u);
    // ...until the dirty line is flushed.
    ASSERT_FALSE(
        s.l2.flushDirty(nullptr, s.img, nullptr, 3).has_value());
    EXPECT_EQ(s.img.readWord(4), 0xBEEFu);
}

TEST(CacheModel, TagFaultMisalignedWritebackTraps)
{
    SmallCache s;
    ASSERT_FALSE(
        s.l2.write(0, 0xAA, nullptr, s.img, nullptr, 0).has_value());
    // Line 0's tag is 0; setting tag bit 0 makes the writeback address
    // 1 — detectably misaligned, the delayed DUE the old silent
    // align-down used to swallow.
    s.l2.flipBit(0);
    const auto trap = s.l2.flushDirty(nullptr, s.img, nullptr, 1);
    ASSERT_TRUE(trap.has_value());
    EXPECT_EQ(*trap, TrapKind::MisalignedAddress);
}

TEST(CacheModel, TagFaultOutOfBoundsWritebackTraps)
{
    SmallCache s;
    ASSERT_FALSE(
        s.l2.write(0, 0xAA, nullptr, s.img, nullptr, 0).has_value());
    // Tag bit 20: writeback address 1 MiB, far past the 256-byte image.
    s.l2.flipBit(20);
    const auto trap = s.l2.flushDirty(nullptr, s.img, nullptr, 1);
    ASSERT_TRUE(trap.has_value());
    EXPECT_EQ(*trap, TrapKind::GlobalOutOfBounds);
}

TEST(CacheModel, TagFaultWordAlignedInBoundsWritesSilentlyWrongAddress)
{
    SmallCache s;
    ASSERT_FALSE(
        s.l2.write(0, 0xAA, nullptr, s.img, nullptr, 0).has_value());
    // Tag bit 4 turns line base 0 into 16: word-aligned, in bounds —
    // undetectable, the line lands at the wrong address (stale SDC).
    s.l2.flipBit(4);
    ASSERT_FALSE(
        s.l2.flushDirty(nullptr, s.img, nullptr, 1).has_value());
    EXPECT_EQ(s.img.readWord(0), 0u) << "the store never reached word 0";
    EXPECT_EQ(s.img.readWord(16), 0xAAu);
}

TEST(CacheModel, TagFaultTurnsMissIntoStaleHit)
{
    SmallCache s;
    s.img.writeWord(0, 0x1111);
    s.img.writeWord(64, 0x2222);
    ASSERT_FALSE(
        s.l2.read(0, nullptr, s.img, nullptr, 0).trap.has_value());
    // Addr 64 also maps to line 0 (base 64).  Corrupting the cached tag
    // from 0 to 64 makes that access a *hit* on line 0's stale data.
    s.l2.flipBit(6);
    const CacheModel::Access a = s.l2.read(64, nullptr, s.img, nullptr, 1);
    ASSERT_FALSE(a.trap.has_value());
    EXPECT_EQ(a.value, 0x1111u) << "expected the stale cached word";
}

TEST(CacheModel, ValidBitFaultForcesMissAndRefetch)
{
    SmallCache s;
    s.img.writeWord(0, 0x1234);
    ASSERT_FALSE(
        s.l2.read(0, nullptr, s.img, nullptr, 0).trap.has_value());

    // Corrupt the cached copy (data bit 0 of line 0's word 0)...
    s.l2.flipBit(34);
    EXPECT_EQ(s.l2.read(0, nullptr, s.img, nullptr, 1).value, 0x1235u);

    // ...then knock the valid bit out: the next access misses and
    // refetches the uncorrupted word from memory — masked.
    s.l2.flipBit(32);
    EXPECT_EQ(s.l2.read(0, nullptr, s.img, nullptr, 2).value, 0x1234u);
}

TEST(CacheModel, ForceBitIsIdempotentAndFlipSelfInverts)
{
    SmallCache s;
    ASSERT_FALSE(
        s.l2.read(0, nullptr, s.img, nullptr, 0).trap.has_value());
    StateHash before;
    s.l2.hashInto(before);

    s.l2.forceBit(34, true);
    s.l2.forceBit(34, true); // persistent reassert: no further change
    StateHash forced;
    s.l2.hashInto(forced);
    EXPECT_NE(before.value(), forced.value());

    s.l2.flipBit(34);
    s.l2.forceBit(34, false); // already clear: idempotent
    StateHash back;
    s.l2.hashInto(back);
    EXPECT_EQ(before.value(), back.value());
}

TEST(CacheModel, InstructionFetchIsIdentityUntilFaulted)
{
    CacheModel l1i(kL1i, 0, 4, 4);
    for (std::uint32_t pc : {0u, 1u, 5u, 17u, 16u, 5u})
        EXPECT_EQ(l1i.fetchInst(pc, nullptr, 0), pc);

    // pc 5 lives in line 1 slot 1; its data bits start at
    // 1*cacheLineBits + 34 + 1*32.  Flipping bit 0 there makes the
    // fetch return instruction index 4 instead of 5.
    const std::uint64_t bit = cacheLineBits(4) + 34 + 32;
    l1i.flipBit(bit);
    EXPECT_EQ(l1i.fetchInst(5, nullptr, 1), 4u);
    // Other slots of the line are untouched.
    EXPECT_EQ(l1i.fetchInst(6, nullptr, 2), 6u);
}

TEST(CacheRegistry, CacheRowsApplyOnAllFourPaperGpus)
{
    for (GpuModel m : {GpuModel::HdRadeon7970, GpuModel::QuadroFx5600,
                       GpuModel::QuadroFx5800, GpuModel::GeforceGtx480}) {
        const GpuConfig& cfg = gpuConfig(m);
        for (TargetStructure s : {kL1d, kL1i, kL2}) {
            EXPECT_GT(structureBitsTotal(cfg, s), 0u) << cfg.name;
            EXPECT_GT(structureAceUnitsTotal(cfg, s), 0u) << cfg.name;
            EXPECT_TRUE(structureApplies(cfg, s, false)) << cfg.name;
        }
        // The shared L2 is chip-scoped: totals must not scale with SMs.
        GpuConfig one_sm = cfg;
        one_sm.numSms = 1;
        EXPECT_EQ(structureBitsTotal(cfg, kL2),
                  structureBitsTotal(one_sm, kL2));
        EXPECT_EQ(structureBitsTotal(cfg, kL1d),
                  structureBitsTotal(one_sm, kL1d) * cfg.numSms);
    }

    // Geometry identity: bits = lines x (34 + 32*lineWords).
    const GpuConfig& gtx = gpuConfig(GpuModel::GeforceGtx480);
    EXPECT_EQ(structureBitsTotal(gtx, kL2),
              gtx.l2Lines() * cacheLineBits(gtx.cacheLineWords()));
}

TEST(CacheFaults, MisalignedLoadTrapsInsteadOfAligningDown)
{
    // Regression for the silent align-down: a load from a misaligned
    // global address must classify as a DUE (MisalignedAddress), not
    // quietly read the enclosing word.
    KernelBuilder kb("misaligned", IsaDialect::Cuda);
    const Operand addr = kb.uniformReg();
    const Operand v = kb.vreg();
    kb.ldparam(addr, 0);
    kb.ldg(v, addr, 0);
    kb.stg(addr, v, 4);
    kb.exit();
    const Program prog = kb.finish();

    MemoryImage img;
    const Buffer buf = img.allocBuffer(4);
    LaunchConfig launch;
    launch.blockX = 1;
    launch.gridX = 1;
    launch.addParamAddr(buf.byteAddr + 1); // misaligned by one byte

    const RunResult r =
        test::runProgram(test::smallCudaConfig(), prog, launch, img);
    EXPECT_EQ(r.trap, TrapKind::MisalignedAddress);
}

TEST(CacheFaults, DifferentialAcrossEnginesAllBehaviors)
{
    // For every fault behavior, an injection into l1d/l1i/l2 through
    // the checkpoint-restore engine must classify exactly like the
    // from-scratch engine.  Caches publish no exact dead windows, so
    // the persistent fast path must never shortcut them; transient
    // runs may still converge onto the golden trajectory hash.
    constexpr std::size_t kInjections = 10;
    constexpr FaultBehavior kBehaviors[] = {
        FaultBehavior::Transient, FaultBehavior::StuckAt0,
        FaultBehavior::StuckAt1, FaultBehavior::Intermittent};
    const GpuConfig configs[] = {test::smallCudaConfig(),
                                 test::smallSiConfig()};

    std::size_t unmasked_total = 0;
    for (const GpuConfig& cfg : configs) {
        const WorkloadInstance inst =
            makeWorkload("reduction")->build(cfg.dialect, {});
        FaultInjector legacy(cfg, inst);
        FaultInjector ckpt(cfg, inst);
        ckpt.adoptGoldenCycles(legacy.goldenCycles());
        ckpt.buildCheckpointPack(4);

        for (TargetStructure s : {kL1d, kL1i, kL2}) {
            for (FaultBehavior behavior : kBehaviors) {
                const FaultShape shape{behavior, FaultPattern::SingleBit};
                for (std::size_t i = 0; i < kInjections; ++i) {
                    const std::uint64_t seed = deriveSeed(
                        0xCACE, static_cast<std::uint64_t>(s) * 100 + i);
                    const InjectionResult a =
                        runIndexedInjection(legacy, s, seed, i, shape);
                    const InjectionResult b =
                        runIndexedInjection(ckpt, s, seed, i, shape);
                    EXPECT_EQ(a.fault.bitIndex, b.fault.bitIndex);
                    EXPECT_EQ(a.fault.cycle, b.fault.cycle);
                    EXPECT_EQ(a.outcome, b.outcome)
                        << cfg.name << " " << targetStructureName(s)
                        << " " << faultBehaviorName(behavior) << " bit "
                        << a.fault.bitIndex << " cycle " << a.fault.cycle;
                    EXPECT_EQ(a.trap, b.trap);
                    EXPECT_EQ(a.shortcut, InjectionShortcut::None);
                    if (behavior == FaultBehavior::Transient) {
                        EXPECT_NE(b.shortcut,
                                  InjectionShortcut::DeadWindow);
                        EXPECT_NE(b.shortcut,
                                  InjectionShortcut::ValueResidency);
                        if (b.shortcut != InjectionShortcut::None)
                            EXPECT_EQ(b.outcome, FaultOutcome::Masked);
                    } else {
                        EXPECT_EQ(b.shortcut, InjectionShortcut::None);
                    }
                    if (a.outcome != FaultOutcome::Masked)
                        ++unmasked_total;
                }
            }
        }

        // Targeted phase: random bits rarely land in resident lines of
        // a multi-kilobyte cache, but line 0 of the L1i holds the hot
        // low instruction slots of every kernel, so corrupting them
        // manifests.  Both engines must agree here too.
        for (FaultBehavior behavior : kBehaviors) {
            for (std::uint32_t slot : {1u, 2u, 3u, 5u}) {
                FaultSpec f;
                f.structure = kL1i;
                f.bitIndex = 34 + slot * 32 + 1; // SM 0, line 0, bit 1
                f.cycle = legacy.goldenCycles() / 4;
                f.behavior = behavior;
                if (behavior == FaultBehavior::Intermittent) {
                    f.intermittentPeriod = 16;
                    f.intermittentActive = 8;
                    f.intermittentValue = true;
                }
                const InjectionResult a = legacy.inject(f);
                const InjectionResult b = ckpt.inject(f);
                EXPECT_EQ(a.outcome, b.outcome)
                    << cfg.name << " targeted slot " << slot << " "
                    << faultBehaviorName(behavior);
                EXPECT_EQ(a.trap, b.trap);
                if (a.outcome != FaultOutcome::Masked)
                    ++unmasked_total;
            }
        }
    }
    // The sweep must hit real failures, or it proves nothing.
    EXPECT_GT(unmasked_total, 0u);
}

TEST(CacheFaults, CampaignsRunOnCacheStructures)
{
    // End-to-end smoke: a small campaign per cache structure completes
    // and its counts partition the injections.
    const GpuConfig cfg = test::smallCudaConfig();
    const WorkloadInstance inst =
        makeWorkload("vectoradd")->build(cfg.dialect, {});
    for (TargetStructure s : {kL1d, kL1i, kL2}) {
        CampaignConfig cc;
        cc.plan.injections = 16;
        cc.numThreads = 2;
        const CampaignResult r = runCampaign(cfg, inst, s, cc);
        EXPECT_EQ(r.injections, 16u) << targetStructureName(s);
        EXPECT_EQ(r.masked + r.sdc + r.due, r.injections)
            << targetStructureName(s);
    }
}

} // namespace
} // namespace gpr
