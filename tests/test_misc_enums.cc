/** @file Coverage for the small enum/name/value helpers that glue the
 *  public API together. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "isa/dialect.hh"
#include "isa/operand.hh"
#include "sim/fault_model.hh"
#include "sim/launch.hh"
#include "sim/structure_registry.hh"
#include "sim/trap.hh"
#include "sim/warp.hh"

namespace gpr {
namespace {

TEST(TrapNames, AllDistinctAndStable)
{
    EXPECT_EQ(trapKindName(TrapKind::None), "none");
    EXPECT_EQ(trapKindName(TrapKind::GlobalOutOfBounds),
              "global-out-of-bounds");
    EXPECT_EQ(trapKindName(TrapKind::SharedOutOfBounds),
              "shared-out-of-bounds");
    EXPECT_EQ(trapKindName(TrapKind::BarrierDeadlock), "barrier-deadlock");
    EXPECT_EQ(trapKindName(TrapKind::Watchdog), "watchdog-timeout");
    EXPECT_EQ(trapKindName(TrapKind::InvalidControlFlow),
              "invalid-control-flow");
}

TEST(StructureNames, Stable)
{
    EXPECT_EQ(targetStructureName(TargetStructure::VectorRegisterFile),
              "register-file");
    EXPECT_EQ(targetStructureName(TargetStructure::SharedMemory),
              "local-memory");
    EXPECT_EQ(targetStructureName(TargetStructure::ScalarRegisterFile),
              "scalar-register-file");
    EXPECT_EQ(targetStructureName(TargetStructure::PredicateFile),
              "predicate-file");
    EXPECT_EQ(targetStructureName(TargetStructure::SimtStack),
              "simt-stack");
}

TEST(StructureNames, UnregisteredIdFailsLoudly)
{
    EXPECT_THROW(targetStructureName(static_cast<TargetStructure>(200)),
                 FatalError);
    EXPECT_THROW(targetStructureFromName("bogus-structure"), FatalError);
}

TEST(Dialect, Helpers)
{
    EXPECT_EQ(dialectName(IsaDialect::Cuda), "CUDA");
    EXPECT_EQ(dialectName(IsaDialect::SouthernIslands),
              "SouthernIslands");
    EXPECT_EQ(dialectWarpWidth(IsaDialect::Cuda), 32u);
    EXPECT_EQ(dialectWarpWidth(IsaDialect::SouthernIslands), 64u);
    EXPECT_FALSE(dialectHasScalarUnit(IsaDialect::Cuda));
    EXPECT_TRUE(dialectHasScalarUnit(IsaDialect::SouthernIslands));
}

TEST(SpecialRegs, NameRoundTrip)
{
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(SpecialReg::NumSpecialRegs); ++i) {
        const auto sr = static_cast<SpecialReg>(i);
        const auto parsed = specialRegFromName(specialRegName(sr));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, sr);
    }
    EXPECT_FALSE(specialRegFromName("SR_NOPE").has_value());
    EXPECT_EQ(specialRegFromName("sr_tid_x"), SpecialReg::TidX);
}

TEST(Operand, EqualityBySemantics)
{
    EXPECT_EQ(Operand::vreg(3), Operand::vreg(3));
    EXPECT_FALSE(Operand::vreg(3) == Operand::vreg(4));
    EXPECT_FALSE(Operand::vreg(3) == Operand::sreg_(3));
    EXPECT_EQ(Operand::immediate(7), Operand::immediate(7));
    EXPECT_EQ(Operand::special(SpecialReg::Lane),
              Operand::special(SpecialReg::Lane));
    EXPECT_FALSE(Operand::special(SpecialReg::Lane) ==
                 Operand::special(SpecialReg::TidX));
}

TEST(Operand, ToStringForms)
{
    EXPECT_EQ(Operand::vreg(12).toString(), "V12");
    EXPECT_EQ(Operand::sreg_(2).toString(), "S2");
    EXPECT_EQ(Operand::immediate(0xff).toString(), "0xff");
    EXPECT_EQ(Operand::special(SpecialReg::NCtaIdY).toString(),
              "SR_NCTAID_Y");
    EXPECT_EQ(Operand().toString(), "<none>");
}

TEST(LaunchConfig, DerivedCounts)
{
    LaunchConfig launch;
    launch.gridX = 4;
    launch.gridY = 3;
    launch.blockX = 16;
    launch.blockY = 2;
    EXPECT_EQ(launch.numBlocks(), 12u);
    EXPECT_EQ(launch.threadsPerBlock(), 32u);
    EXPECT_EQ(launch.totalThreads(), 384u);

    launch.addParamInt(-1);
    launch.addParamFloat(1.0f);
    launch.addParamAddr(0x100);
    ASSERT_EQ(launch.params.size(), 3u);
    EXPECT_EQ(launch.params[0], 0xffffffffu);
    EXPECT_EQ(launch.params[1], 0x3f800000u);
    EXPECT_EQ(launch.params[2], 0x100u);
}

TEST(LaneMask, FullMaskWidths)
{
    EXPECT_EQ(fullMask(1), 0x1ull);
    EXPECT_EQ(fullMask(32), 0xffffffffull);
    EXPECT_EQ(fullMask(64), ~0ull);
    EXPECT_EQ(fullMask(33), 0x1ffffffffull);
}

} // namespace
} // namespace gpr
