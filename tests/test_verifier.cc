/** @file Tests for static program verification. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "isa/verifier.hh"

namespace gpr {
namespace {

Instruction
makeInst(Opcode op)
{
    Instruction i;
    i.op = op;
    return i;
}

Program
makeProgram(std::vector<Instruction> insts, IsaDialect dialect,
            std::uint32_t vregs, std::uint32_t sregs, std::uint32_t smem)
{
    return Program("test", dialect, std::move(insts), {}, vregs, sregs,
                   smem);
}

TEST(Verifier, AcceptsMinimalProgram)
{
    std::vector<Instruction> insts;
    insts.push_back(makeInst(Opcode::Exit));
    EXPECT_NO_THROW(verifyProgram(makeProgram(std::move(insts),
                                              IsaDialect::Cuda, 0, 0, 0)));
}

TEST(Verifier, RejectsRegisterOutOfRange)
{
    Instruction mov = makeInst(Opcode::Mov);
    mov.dst = Operand::vreg(5);
    mov.src[0] = Operand::immediateInt(1);
    std::vector<Instruction> insts{mov, makeInst(Opcode::Exit)};
    // Only 2 vregs declared but V5 used.
    EXPECT_THROW(verifyProgram(makeProgram(std::move(insts),
                                           IsaDialect::Cuda, 2, 0, 0)),
                 FatalError);
}

TEST(Verifier, RejectsScalarRegsInCudaDialect)
{
    Instruction mov = makeInst(Opcode::Mov);
    mov.dst = Operand::sreg_(0);
    mov.src[0] = Operand::immediateInt(1);
    std::vector<Instruction> insts{mov, makeInst(Opcode::Exit)};
    EXPECT_THROW(verifyProgram(makeProgram(std::move(insts),
                                           IsaDialect::Cuda, 0, 1, 0)),
                 FatalError);
}

TEST(Verifier, RejectsScalarDstWithVectorSource)
{
    Instruction add = makeInst(Opcode::IAdd);
    add.dst = Operand::sreg_(0);
    add.src[0] = Operand::vreg(0); // non-uniform source
    add.src[1] = Operand::immediateInt(1);
    std::vector<Instruction> insts{add, makeInst(Opcode::Exit)};
    EXPECT_THROW(
        verifyProgram(makeProgram(std::move(insts),
                                  IsaDialect::SouthernIslands, 1, 1, 0)),
        FatalError);
}

TEST(Verifier, AcceptsScalarDstWithUniformSources)
{
    Instruction add = makeInst(Opcode::IAdd);
    add.dst = Operand::sreg_(0);
    add.src[0] = Operand::sreg_(0);
    add.src[1] = Operand::immediateInt(1);
    std::vector<Instruction> insts{add, makeInst(Opcode::Exit)};
    EXPECT_NO_THROW(
        verifyProgram(makeProgram(std::move(insts),
                                  IsaDialect::SouthernIslands, 0, 1, 0)));
}

TEST(Verifier, RejectsBranchTargetOutOfRange)
{
    Instruction bra = makeInst(Opcode::Bra);
    bra.target = 99;
    std::vector<Instruction> insts{bra, makeInst(Opcode::Exit)};
    EXPECT_THROW(verifyProgram(makeProgram(std::move(insts),
                                           IsaDialect::Cuda, 0, 0, 0)),
                 FatalError);
}

TEST(Verifier, RejectsSharedAccessWithoutSmem)
{
    Instruction lds = makeInst(Opcode::Lds);
    lds.dst = Operand::vreg(0);
    lds.src[0] = Operand::vreg(0);
    std::vector<Instruction> insts{lds, makeInst(Opcode::Exit)};
    EXPECT_THROW(verifyProgram(makeProgram(std::move(insts),
                                           IsaDialect::Cuda, 1, 0, 0)),
                 FatalError);
}

TEST(Verifier, RejectsMissingExit)
{
    std::vector<Instruction> insts{makeInst(Opcode::Nop)};
    EXPECT_THROW(verifyProgram(makeProgram(std::move(insts),
                                           IsaDialect::Cuda, 0, 0, 0)),
                 FatalError);
}

TEST(Verifier, RejectsFallThroughOffEnd)
{
    // EXIT exists but is not last, and the last instruction can fall off.
    std::vector<Instruction> insts{makeInst(Opcode::Exit),
                                   makeInst(Opcode::Nop)};
    EXPECT_THROW(verifyProgram(makeProgram(std::move(insts),
                                           IsaDialect::Cuda, 0, 0, 0)),
                 FatalError);
}

TEST(Verifier, AcceptsTrailingUnconditionalBranch)
{
    Instruction bra = makeInst(Opcode::Bra);
    bra.target = 0;
    std::vector<Instruction> insts{makeInst(Opcode::Exit), bra};
    EXPECT_NO_THROW(verifyProgram(makeProgram(std::move(insts),
                                              IsaDialect::Cuda, 0, 0, 0)));
}

TEST(Verifier, RejectsSpecialOperandOutsideS2r)
{
    Instruction add = makeInst(Opcode::IAdd);
    add.dst = Operand::vreg(0);
    add.src[0] = Operand::special(SpecialReg::TidX);
    add.src[1] = Operand::immediateInt(1);
    std::vector<Instruction> insts{add, makeInst(Opcode::Exit)};
    EXPECT_THROW(verifyProgram(makeProgram(std::move(insts),
                                           IsaDialect::Cuda, 1, 0, 0)),
                 FatalError);
}

} // namespace
} // namespace gpr
