/** @file Tests for the KernelBuilder programmatic assembler. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "isa/builder.hh"

namespace gpr {
namespace {

TEST(KernelBuilder, CountsRegisters)
{
    KernelBuilder kb("t", IsaDialect::Cuda);
    const Operand a = kb.vreg();
    const Operand b = kb.vreg();
    const Operand c = kb.vreg();
    kb.iadd(c, a, b);
    kb.exit();
    const Program p = kb.finish();
    EXPECT_EQ(p.numVRegs(), 3u);
    EXPECT_EQ(p.numSRegs(), 0u);
    EXPECT_EQ(p.size(), 2u);
}

TEST(KernelBuilder, UniformRegIsScalarOnSouthernIslands)
{
    KernelBuilder si("t", IsaDialect::SouthernIslands);
    EXPECT_EQ(si.uniformReg().kind, OperandKind::SReg);
    EXPECT_EQ(si.warpWidth(), 64u);

    KernelBuilder cuda("t", IsaDialect::Cuda);
    EXPECT_EQ(cuda.uniformReg().kind, OperandKind::VReg);
    EXPECT_EQ(cuda.warpWidth(), 32u);
}

TEST(KernelBuilder, LabelsResolve)
{
    KernelBuilder kb("t", IsaDialect::Cuda);
    const Operand r = kb.vreg();
    const unsigned p = kb.preg();
    const Label loop = kb.newLabel("loop");
    kb.mov(r, KernelBuilder::imm(0));
    kb.bind(loop);
    kb.iadd(r, r, KernelBuilder::imm(1));
    kb.isetp(CmpOp::Lt, p, r, KernelBuilder::imm(10));
    kb.bra(loop, ifP(p));
    kb.exit();
    const Program prog = kb.finish();
    EXPECT_EQ(prog.inst(3).target, 1u); // BRA jumps to the IADD
    EXPECT_EQ(prog.inst(3).guard, static_cast<std::int8_t>(p));
}

TEST(KernelBuilder, UnboundLabelIsFatal)
{
    KernelBuilder kb("t", IsaDialect::Cuda);
    const Label never = kb.newLabel("never");
    kb.bra(never);
    kb.exit();
    EXPECT_THROW(kb.finish(), FatalError);
}

TEST(KernelBuilder, DoubleBindPanics)
{
    KernelBuilder kb("t", IsaDialect::Cuda);
    const Label l = kb.newLabel();
    kb.bind(l);
    EXPECT_THROW(kb.bind(l), PanicError);
}

TEST(KernelBuilder, DoubleFinishPanics)
{
    KernelBuilder kb("t", IsaDialect::Cuda);
    kb.exit();
    kb.finish();
    EXPECT_THROW(kb.finish(), PanicError);
}

TEST(KernelBuilder, PredicateExhaustionPanics)
{
    KernelBuilder kb("t", IsaDialect::Cuda);
    for (unsigned i = 0; i < kNumPredRegs; ++i)
        kb.preg();
    EXPECT_THROW(kb.preg(), PanicError);
}

TEST(KernelBuilder, GuardEncodedOnInstruction)
{
    KernelBuilder kb("t", IsaDialect::Cuda);
    const Operand r = kb.vreg();
    const unsigned p = kb.preg();
    kb.mov(r, KernelBuilder::imm(1), ifNotP(p));
    kb.exit();
    const Program prog = kb.finish();
    EXPECT_EQ(prog.inst(0).guard, static_cast<std::int8_t>(p));
    EXPECT_TRUE(prog.inst(0).guardNegate);
}

TEST(KernelBuilder, MemOffsetsStored)
{
    KernelBuilder kb("t", IsaDialect::Cuda);
    const Operand a = kb.vreg();
    const Operand v = kb.vreg();
    kb.ldg(v, a, 16);
    kb.stg(a, v, -4);
    kb.exit();
    const Program prog = kb.finish();
    EXPECT_EQ(prog.inst(0).memOffset, 16);
    EXPECT_EQ(prog.inst(1).memOffset, -4);
}

TEST(KernelBuilder, SmemBytesRecorded)
{
    KernelBuilder kb("t", IsaDialect::Cuda);
    const Operand a = kb.vreg();
    kb.sts(a, a);
    kb.exit();
    const Program prog = kb.finish(1024);
    EXPECT_EQ(prog.smemBytes(), 1024u);
    EXPECT_EQ(prog.sharedMemoryOpCount(), 1u);
}

TEST(KernelBuilder, ImmediateHelpers)
{
    EXPECT_EQ(KernelBuilder::imm(-1).imm, 0xffffffffu);
    EXPECT_EQ(KernelBuilder::fimm(1.0f).imm, 0x3f800000u);
}

} // namespace
} // namespace gpr
