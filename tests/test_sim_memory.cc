/** @file Global/shared memory behaviour: coalescing, traps, atomics,
 *  bank conflicts. */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "sim_test_util.hh"

namespace gpr {
namespace {

using test::runProgram;
using test::smallCudaConfig;

/** Coalesced warp load: 32 consecutive words = one 128-byte segment. */
TEST(SimMemory, CoalescedLoadCountsOneTransaction)
{
    KernelBuilder kb("coalesced", IsaDialect::Cuda);
    const Operand tid = kb.vreg();
    const Operand pin = kb.uniformReg();
    kb.s2r(tid, SpecialReg::TidX);
    kb.ldparam(pin, 0);
    const Operand addr = kb.vreg();
    kb.shl(addr, tid, KernelBuilder::imm(2));
    kb.iadd(addr, addr, pin);
    const Operand v = kb.vreg();
    kb.ldg(v, addr);
    kb.exit();
    const Program prog = kb.finish();

    MemoryImage img;
    img.allocBuffer(64);
    LaunchConfig launch;
    launch.blockX = 32;
    launch.gridX = 1;
    launch.addParamAddr(0);

    const RunResult r = runProgram(smallCudaConfig(), prog, launch, img);
    ASSERT_TRUE(r.clean());
    EXPECT_EQ(r.stats.globalLoads, 1u);
    EXPECT_EQ(r.stats.globalTransactions, 1u);
}

/** Strided warp load: 32 words 128 bytes apart = 32 segments. */
TEST(SimMemory, StridedLoadCountsManyTransactions)
{
    KernelBuilder kb("strided", IsaDialect::Cuda);
    const Operand tid = kb.vreg();
    const Operand pin = kb.uniformReg();
    kb.s2r(tid, SpecialReg::TidX);
    kb.ldparam(pin, 0);
    const Operand addr = kb.vreg();
    kb.shl(addr, tid, KernelBuilder::imm(7)); // 128-byte stride
    kb.iadd(addr, addr, pin);
    const Operand v = kb.vreg();
    kb.ldg(v, addr);
    kb.exit();
    const Program prog = kb.finish();

    MemoryImage img;
    img.allocBuffer(32 * 32 + 32);
    LaunchConfig launch;
    launch.blockX = 32;
    launch.gridX = 1;
    launch.addParamAddr(0);

    const RunResult r = runProgram(smallCudaConfig(), prog, launch, img);
    ASSERT_TRUE(r.clean());
    EXPECT_EQ(r.stats.globalTransactions, 32u);
}

/** A global access beyond the image traps as DUE-style abort. */
TEST(SimMemory, GlobalOutOfBoundsTraps)
{
    KernelBuilder kb("oob", IsaDialect::Cuda);
    const Operand addr = kb.vreg();
    kb.mov(addr, KernelBuilder::imm(1 << 20)); // way past the image
    const Operand v = kb.vreg();
    kb.ldg(v, addr);
    kb.exit();
    const Program prog = kb.finish();

    MemoryImage img;
    img.allocBuffer(16);
    LaunchConfig launch;
    launch.blockX = 32;
    launch.gridX = 1;

    const RunResult r = runProgram(smallCudaConfig(), prog, launch, img);
    EXPECT_EQ(r.trap, TrapKind::GlobalOutOfBounds);
}

/** A shared access beyond the block allocation traps. */
TEST(SimMemory, SharedOutOfBoundsTraps)
{
    KernelBuilder kb("soob", IsaDialect::Cuda);
    const Operand addr = kb.vreg();
    kb.mov(addr, KernelBuilder::imm(4096)); // block declared 64 bytes
    const Operand v = kb.vreg();
    kb.lds(v, addr);
    kb.exit();
    const Program prog = kb.finish(64);

    MemoryImage img;
    img.allocBuffer(16);
    LaunchConfig launch;
    launch.blockX = 32;
    launch.gridX = 1;

    const RunResult r = runProgram(smallCudaConfig(), prog, launch, img);
    EXPECT_EQ(r.trap, TrapKind::SharedOutOfBounds);
}

/** Shared memory round-trips data within a block. */
TEST(SimMemory, SharedMemoryRoundTrip)
{
    KernelBuilder kb("smem_rt", IsaDialect::Cuda);
    const Operand tid = kb.vreg();
    const Operand pout = kb.uniformReg();
    kb.s2r(tid, SpecialReg::TidX);
    kb.ldparam(pout, 0);
    const Operand s_addr = kb.vreg();
    kb.shl(s_addr, tid, KernelBuilder::imm(2));
    const Operand v = kb.vreg();
    kb.imul(v, tid, KernelBuilder::imm(3));
    kb.sts(s_addr, v);
    kb.bar();
    // Read the neighbour's slot (tid+1 mod 32).
    const Operand n_addr = kb.vreg();
    kb.iadd(n_addr, tid, KernelBuilder::imm(1));
    kb.and_(n_addr, n_addr, KernelBuilder::imm(31));
    kb.shl(n_addr, n_addr, KernelBuilder::imm(2));
    const Operand got = kb.vreg();
    kb.lds(got, n_addr);
    const Operand o_addr = kb.vreg();
    kb.shl(o_addr, tid, KernelBuilder::imm(2));
    kb.iadd(o_addr, o_addr, pout);
    kb.stg(o_addr, got);
    kb.exit();
    const Program prog = kb.finish(32 * 4);

    MemoryImage img;
    const Buffer out = img.allocBuffer(32);
    LaunchConfig launch;
    launch.blockX = 32;
    launch.gridX = 1;
    launch.addParamAddr(out.byteAddr);

    const RunResult r = runProgram(smallCudaConfig(), prog, launch, img);
    ASSERT_TRUE(r.clean());
    for (std::uint32_t i = 0; i < 32; ++i)
        EXPECT_EQ(r.memory.getWord(out, i), ((i + 1) % 32) * 3);
    EXPECT_GT(r.stats.sharedAccesses, 0u);
}

/** All lanes hitting one word is a broadcast-conflict: replays counted. */
TEST(SimMemory, BankConflictReplaysCounted)
{
    // Lanes read words tid*32 (mod 32 banks => all in bank 0): worst-case
    // conflict, replay factor == active lanes with distinct words.
    KernelBuilder kb("conflict", IsaDialect::Cuda);
    const Operand tid = kb.vreg();
    kb.s2r(tid, SpecialReg::TidX);
    const Operand s_addr = kb.vreg();
    kb.shl(s_addr, tid, KernelBuilder::imm(7)); // word index tid*32
    const Operand v = kb.vreg();
    kb.lds(v, s_addr);
    kb.exit();
    const Program prog = kb.finish(32 * 32 * 4);

    MemoryImage img;
    img.allocBuffer(4);
    LaunchConfig launch;
    launch.blockX = 32;
    launch.gridX = 1;

    const RunResult r = runProgram(smallCudaConfig(), prog, launch, img);
    ASSERT_TRUE(r.clean());
    // 32 distinct words, all mapping to bank 0 => 31 replays.
    EXPECT_EQ(r.stats.sharedBankConflictReplays, 31u);
}

/** Shared atomics accumulate across all lanes and blocks' merges work. */
TEST(SimMemory, AtomicsAccumulate)
{
    KernelBuilder kb("atomics", IsaDialect::Cuda);
    const Operand tid = kb.vreg();
    const Operand pout = kb.uniformReg();
    kb.s2r(tid, SpecialReg::TidX);
    kb.ldparam(pout, 0);
    const Operand one = kb.vreg();
    kb.mov(one, KernelBuilder::imm(1));
    const Operand zero_addr = kb.vreg();
    kb.mov(zero_addr, KernelBuilder::imm(0));
    // Everyone zeroes slot 0 once via tid 0, barrier, then all atoms-add.
    const unsigned p = kb.preg();
    kb.isetp(CmpOp::Eq, p, tid, KernelBuilder::imm(0));
    const Operand z = kb.vreg();
    kb.mov(z, KernelBuilder::imm(0));
    kb.sts(zero_addr, z, 0, ifP(p));
    kb.bar();
    kb.atomsAdd(zero_addr, one);
    kb.bar();
    // tid 0 merges the block count into global slot 0 atomically.
    const Operand count = kb.vreg();
    kb.lds(count, zero_addr, 0, ifP(p));
    kb.atomgAdd(pout, count, 0, ifP(p));
    kb.exit();
    const Program prog = kb.finish(64);

    MemoryImage img;
    const Buffer out = img.allocBuffer(1);
    LaunchConfig launch;
    launch.blockX = 64;
    launch.gridX = 4;
    launch.addParamAddr(out.byteAddr);

    const RunResult r = runProgram(smallCudaConfig(), prog, launch, img);
    ASSERT_TRUE(r.clean());
    EXPECT_EQ(r.memory.getWord(out, 0), 256u); // 4 blocks x 64 threads
}

/** Stores reach the returned memory image. */
TEST(SimMemory, StoreVisibleInResult)
{
    KernelBuilder kb("st", IsaDialect::Cuda);
    const Operand addr = kb.vreg();
    const Operand v = kb.vreg();
    kb.mov(addr, KernelBuilder::imm(8));
    kb.mov(v, KernelBuilder::imm(0xabc));
    const unsigned p = kb.preg();
    const Operand tid = kb.vreg();
    kb.s2r(tid, SpecialReg::TidX);
    kb.isetp(CmpOp::Eq, p, tid, KernelBuilder::imm(0));
    kb.stg(addr, v, 0, ifP(p));
    kb.exit();
    const Program prog = kb.finish();

    MemoryImage img;
    img.allocBuffer(8);
    LaunchConfig launch;
    launch.blockX = 32;
    launch.gridX = 1;

    const RunResult r = runProgram(smallCudaConfig(), prog, launch, img);
    ASSERT_TRUE(r.clean());
    EXPECT_EQ(r.memory.readWord(8), 0xabcu);
    EXPECT_EQ(r.stats.globalStores, 1u);
}

} // namespace
} // namespace gpr
