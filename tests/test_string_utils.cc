/** @file Tests for string helpers used by the assembler and reports. */

#include <gtest/gtest.h>

#include "common/string_utils.hh"

namespace gpr {
namespace {

TEST(Trim, Basics)
{
    EXPECT_EQ(trim("  abc  "), "abc");
    EXPECT_EQ(trim("abc"), "abc");
    EXPECT_EQ(trim("\t x \n"), "x");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
}

TEST(Split, CommaSeparated)
{
    const auto parts = split("a, b ,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "b");
    EXPECT_EQ(parts[2], "c");
}

TEST(Split, KeepsEmptyPieces)
{
    const auto parts = split("a,,b", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[1], "");
}

TEST(SplitWhitespace, DropsEmpty)
{
    const auto parts = splitWhitespace("  one\t two   three ");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "one");
    EXPECT_EQ(parts[2], "three");
    EXPECT_TRUE(splitWhitespace("   ").empty());
}

TEST(StartsWith, Basics)
{
    EXPECT_TRUE(startsWith("--flag=x", "--flag="));
    EXPECT_FALSE(startsWith("-f", "--"));
    EXPECT_TRUE(startsWith("abc", ""));
    EXPECT_FALSE(startsWith("", "a"));
}

TEST(CaseConversion, Basics)
{
    EXPECT_EQ(toLower("AbC_1"), "abc_1");
    EXPECT_EQ(toUpper("iAdd"), "IADD");
}

TEST(ParseInt, Decimal)
{
    EXPECT_EQ(parseInt("42"), 42);
    EXPECT_EQ(parseInt("-17"), -17);
    EXPECT_EQ(parseInt("+8"), 8);
    EXPECT_EQ(parseInt(" 15 "), 15);
}

TEST(ParseInt, HexAndBinary)
{
    EXPECT_EQ(parseInt("0x10"), 16);
    EXPECT_EQ(parseInt("0XFF"), 255);
    EXPECT_EQ(parseInt("0b101"), 5);
    EXPECT_EQ(parseInt("-0x8"), -8);
}

TEST(ParseInt, Rejections)
{
    EXPECT_FALSE(parseInt("").has_value());
    EXPECT_FALSE(parseInt("12abc").has_value());
    EXPECT_FALSE(parseInt("abc").has_value());
    EXPECT_FALSE(parseInt("1.5").has_value());
    EXPECT_FALSE(parseInt("--3").has_value());
    // Overflow beyond int64.
    EXPECT_FALSE(parseInt("99999999999999999999999").has_value());
}

TEST(ParseDouble, Basics)
{
    EXPECT_DOUBLE_EQ(*parseDouble("1.5"), 1.5);
    EXPECT_DOUBLE_EQ(*parseDouble("-2e3"), -2000.0);
    EXPECT_FALSE(parseDouble("1.5x").has_value());
    EXPECT_FALSE(parseDouble("").has_value());
}

TEST(Strprintf, FormatsLikePrintf)
{
    EXPECT_EQ(strprintf("%d-%s", 7, "x"), "7-x");
    EXPECT_EQ(strprintf("%.2f", 3.14159), "3.14");
    EXPECT_EQ(strprintf("empty"), "empty");
}

TEST(SciNotation, Format)
{
    EXPECT_EQ(sciNotation(1.234e14), "1.23e+14");
    EXPECT_EQ(sciNotation(0.00123, 1), "1.2e-03");
}

} // namespace
} // namespace gpr
