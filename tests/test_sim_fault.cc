/** @file Fault-application semantics inside the simulator. */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "sim_test_util.hh"

namespace gpr {
namespace {

using test::runProgram;
using test::smallCudaConfig;

/**
 * A single-warp kernel that parks a known value in a register for many
 * cycles and then stores it: out[0] = value held in V1 across the delay.
 */
Program
makeHoldKernel()
{
    KernelBuilder kb("hold", IsaDialect::Cuda);
    const Operand tid = kb.vreg();          // V0
    const Operand held = kb.vreg();         // V1 <- the victim register
    const Operand pout = kb.uniformReg();   // V2
    kb.s2r(tid, SpecialReg::TidX);
    kb.ldparam(pout, 0);
    kb.mov(held, KernelBuilder::imm(0));
    const unsigned p0 = kb.preg();
    kb.isetp(CmpOp::Eq, p0, tid, KernelBuilder::imm(0));
    kb.mov(held, KernelBuilder::imm(0x0f0f0f0f), ifP(p0));

    // Busy delay loop (uniform) so the value sits in the file.
    const Operand i = kb.vreg();
    kb.mov(i, KernelBuilder::imm(0));
    const unsigned p1 = kb.preg();
    const Label loop = kb.newLabel("delay");
    kb.bind(loop);
    kb.iadd(i, i, KernelBuilder::imm(1));
    kb.isetp(CmpOp::Lt, p1, i, KernelBuilder::imm(50));
    kb.bra(loop, ifP(p1));

    kb.stg(pout, held, 0, ifP(p0));
    kb.exit();
    return kb.finish();
}

struct HoldSetup
{
    Program prog = makeHoldKernel();
    MemoryImage img;
    Buffer out;
    LaunchConfig launch;

    HoldSetup()
    {
        out = img.allocBuffer(1);
        launch.blockX = 32;
        launch.gridX = 1;
        launch.addParamAddr(out.byteAddr);
    }
};

/** Locate the physical bit index of V1, lane 0, block 0, SM 0.
 *  Layout: block base 0 (first dispatch), reg-major within warp:
 *  word = (warpInBlock * numVRegs + r) * warpWidth + lane. */
BitIndex
victimBitIndex(const Program& prog, const GpuConfig& cfg, unsigned bit)
{
    const std::uint32_t word = (0 * prog.numVRegs() + 1) * cfg.warpWidth + 0;
    (void)cfg;
    return static_cast<BitIndex>(word) * 32 + bit;
}

TEST(SimFault, FlipOfLiveRegisterCorruptsOutput)
{
    HoldSetup s;
    const GpuConfig cfg = smallCudaConfig();

    RunOptions options;
    FaultSpec fault;
    fault.structure = TargetStructure::VectorRegisterFile;
    fault.bitIndex = victimBitIndex(s.prog, cfg, 4); // flip bit 4
    fault.cycle = 120; // mid-delay: after write, before the store
    options.fault = fault;

    const RunResult r =
        runProgram(cfg, s.prog, s.launch, s.img, options);
    ASSERT_TRUE(r.clean());
    EXPECT_EQ(r.memory.getWord(s.out, 0), 0x0f0f0f0fu ^ 0x10u);
}

TEST(SimFault, FlipBeforeWriteIsMasked)
{
    HoldSetup s;
    const GpuConfig cfg = smallCudaConfig();

    RunOptions options;
    FaultSpec fault;
    fault.structure = TargetStructure::VectorRegisterFile;
    fault.bitIndex = victimBitIndex(s.prog, cfg, 4);
    fault.cycle = 0; // before the MOV writes the register
    options.fault = fault;

    const RunResult r =
        runProgram(cfg, s.prog, s.launch, s.img, options);
    ASSERT_TRUE(r.clean());
    EXPECT_EQ(r.memory.getWord(s.out, 0), 0x0f0f0f0fu);
}

TEST(SimFault, FlipInUnallocatedSpaceIsMasked)
{
    HoldSetup s;
    const GpuConfig cfg = smallCudaConfig();

    RunOptions options;
    FaultSpec fault;
    fault.structure = TargetStructure::VectorRegisterFile;
    // Last word of the last SM: far outside the single resident block.
    fault.bitIndex =
        (std::uint64_t{cfg.numSms} * cfg.regFileWordsPerSm) * 32 - 1;
    fault.cycle = 100;
    options.fault = fault;

    const RunResult r =
        runProgram(cfg, s.prog, s.launch, s.img, options);
    ASSERT_TRUE(r.clean());
    EXPECT_EQ(r.memory.getWord(s.out, 0), 0x0f0f0f0fu);
}

TEST(SimFault, FlipAfterKernelEndIsHarmless)
{
    HoldSetup s;
    const GpuConfig cfg = smallCudaConfig();

    RunOptions options;
    FaultSpec fault;
    fault.structure = TargetStructure::VectorRegisterFile;
    fault.bitIndex = victimBitIndex(s.prog, cfg, 4);
    fault.cycle = 1u << 30; // beyond the run
    options.fault = fault;

    const RunResult r =
        runProgram(cfg, s.prog, s.launch, s.img, options);
    ASSERT_TRUE(r.clean());
    EXPECT_EQ(r.memory.getWord(s.out, 0), 0x0f0f0f0fu);
}

TEST(SimFault, SharedMemoryFlipCorruptsParkedData)
{
    // Park a value in shared memory across a delay, then read it back.
    KernelBuilder kb("smem_hold", IsaDialect::Cuda);
    const Operand tid = kb.vreg();
    const Operand pout = kb.uniformReg();
    kb.s2r(tid, SpecialReg::TidX);
    kb.ldparam(pout, 0);
    const unsigned p0 = kb.preg();
    kb.isetp(CmpOp::Eq, p0, tid, KernelBuilder::imm(0));
    const Operand v = kb.vreg();
    kb.mov(v, KernelBuilder::imm(0x77));
    const Operand zero = kb.vreg();
    kb.mov(zero, KernelBuilder::imm(0));
    kb.sts(zero, v, 0, ifP(p0));

    const Operand i = kb.vreg();
    kb.mov(i, KernelBuilder::imm(0));
    const unsigned p1 = kb.preg();
    const Label loop = kb.newLabel("delay");
    kb.bind(loop);
    kb.iadd(i, i, KernelBuilder::imm(1));
    kb.isetp(CmpOp::Lt, p1, i, KernelBuilder::imm(50));
    kb.bra(loop, ifP(p1));

    const Operand got = kb.vreg();
    kb.lds(got, zero, 0, ifP(p0));
    kb.stg(pout, got, 0, ifP(p0));
    kb.exit();
    const Program prog = kb.finish(64);

    MemoryImage img;
    const Buffer out = img.allocBuffer(1);
    LaunchConfig launch;
    launch.blockX = 32;
    launch.gridX = 1;
    launch.addParamAddr(out.byteAddr);

    const GpuConfig cfg = smallCudaConfig();
    RunOptions options;
    FaultSpec fault;
    fault.structure = TargetStructure::SharedMemory;
    fault.bitIndex = 0; // word 0 bit 0 of SM 0's LDS (block 0 allocates it)
    fault.cycle = 150;
    options.fault = fault;

    const RunResult r = runProgram(cfg, prog, launch, img, options);
    ASSERT_TRUE(r.clean());
    EXPECT_EQ(r.memory.getWord(out, 0), 0x77u ^ 0x1u);
}

} // namespace
} // namespace gpr
