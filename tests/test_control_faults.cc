/**
 * @file
 * Tests for the control-state fault targets (predicate file, SIMT
 * reconvergence stack + PC) introduced on top of the structure
 * registry: bit-mapping sanity, trap behaviour of corrupted PCs, ACE
 * coverage, and the differential guarantee that the legacy and
 * checkpoint-restore engines classify identical control-fault lists
 * identically (control structures skip the dead-window prefilter but
 * keep checkpoint restore + hash early-out).
 */

#include <gtest/gtest.h>

#include "reliability/ace.hh"
#include "reliability/campaign.hh"
#include "reliability/fault_injector.hh"
#include "sim/structure_registry.hh"
#include "sim_test_util.hh"
#include "workloads/workloads.hh"

namespace gpr {
namespace {

constexpr auto kPred = TargetStructure::PredicateFile;
constexpr auto kSimt = TargetStructure::SimtStack;

WorkloadInstance
buildFor(const GpuConfig& cfg, const char* workload)
{
    return makeWorkload(workload)->build(cfg.dialect, {});
}

TEST(ControlFaults, FaultSpaceCoversEveryResidentWarpSlot)
{
    const GpuConfig cfg = test::smallCudaConfig();
    const Gpu gpu(cfg);
    EXPECT_EQ(gpu.structureBits(kPred),
              std::uint64_t{cfg.numSms} * cfg.maxWarpsPerSm *
                  kNumPredRegs * cfg.warpWidth);
    EXPECT_EQ(gpu.structureBits(kSimt),
              std::uint64_t{cfg.numSms} * cfg.maxWarpsPerSm *
                  simtBitsPerWarp(cfg));
}

TEST(ControlFaults, CorruptedPcTrapsAsDue)
{
    // Flipping bit 31 of warp slot 0's PC early in the run sends the
    // fetch far outside the program: InvalidControlFlow, classified DUE
    // — by both engines.
    const GpuConfig cfg = test::smallCudaConfig();
    const WorkloadInstance inst = buildFor(cfg, "reduction");

    FaultSpec fault;
    fault.structure = kSimt;
    fault.bitIndex = 31; // SM 0, warp slot 0, PC bit 31
    fault.cycle = 5;

    FaultInjector legacy(cfg, inst);
    const InjectionResult a = legacy.inject(fault);
    EXPECT_EQ(a.outcome, FaultOutcome::Due);
    EXPECT_EQ(a.trap, TrapKind::InvalidControlFlow);

    FaultInjector ckpt(cfg, inst);
    ckpt.adoptGoldenCycles(legacy.goldenCycles());
    ckpt.buildCheckpointPack(4);
    const InjectionResult b = ckpt.inject(fault);
    EXPECT_EQ(b.outcome, a.outcome);
    EXPECT_EQ(b.trap, a.trap);
}

TEST(ControlFaults, FlipInUnusedWarpSlotIsMasked)
{
    // The last warp slot of the last SM is never claimed by these tiny
    // grids: its control state is dead, so the flip must be Masked —
    // with zero observable difference between engines.
    const GpuConfig cfg = test::smallCudaConfig();
    const WorkloadInstance inst = buildFor(cfg, "vectoradd");

    FaultInjector legacy(cfg, inst);
    FaultInjector ckpt(cfg, inst);
    ckpt.adoptGoldenCycles(legacy.goldenCycles());
    ckpt.buildCheckpointPack(2);

    for (TargetStructure s : {kPred, kSimt}) {
        FaultSpec fault;
        fault.structure = s;
        fault.bitIndex = legacy.gpu().structureBits(s) - 1;
        fault.cycle = legacy.goldenCycles() / 2;

        const InjectionResult a = legacy.inject(fault);
        const InjectionResult b = ckpt.inject(fault);
        EXPECT_EQ(a.outcome, FaultOutcome::Masked)
            << targetStructureName(s);
        EXPECT_EQ(b.outcome, FaultOutcome::Masked)
            << targetStructureName(s);
        // Unused slots are outside the trajectory hash, so the
        // checkpointed run converges at the first boundary.
        EXPECT_TRUE(b.converged()) << targetStructureName(s);
        // But never via the dead-window prefilter, which is
        // word-storage-only.
        EXPECT_NE(b.shortcut, InjectionShortcut::DeadWindow)
            << targetStructureName(s);
    }
}

TEST(ControlFaults, AceCoversControlState)
{
    for (const GpuConfig& cfg :
         {test::smallCudaConfig(), test::smallSiConfig()}) {
        const WorkloadInstance inst = buildFor(cfg, "reduction");
        const AceResult ace = runAceAnalysis(cfg, inst);

        // The PC/mask unit is read+written every issue: the SIMT target
        // accumulates ACE time on any kernel.
        const AceStructureResult& simt = ace.forStructure(kSimt);
        EXPECT_GT(simt.aceUnitCycles, 0u) << cfg.name;
        EXPECT_GT(simt.avf(), 0.0) << cfg.name;
        EXPECT_LE(simt.avf(), 1.0) << cfg.name;

        // reduction's guarded bounds/tree branches exercise predicates.
        const AceStructureResult& pred = ace.forStructure(kPred);
        EXPECT_GT(pred.aceUnitCycles, 0u) << cfg.name;
        EXPECT_LE(pred.avf(), 1.0) << cfg.name;
    }
}

/**
 * The differential guarantee extended to the control-state targets:
 * for every injection the checkpointed engine (restore + hash
 * early-out, no prefilter) classifies exactly like the from-scratch
 * engine, across both dialects and divergence/barrier-heavy kernels.
 */
TEST(ControlFaults, DifferentialOutcomeEquality)
{
    constexpr std::size_t kInjections = 30;
    const GpuConfig configs[] = {test::smallCudaConfig(),
                                 test::smallSiConfig()};
    const char* workloads[] = {"vectoradd", "reduction", "histogram"};

    std::size_t converged_total = 0;
    std::size_t unmasked_total = 0;
    for (const GpuConfig& cfg : configs) {
        for (const char* wname : workloads) {
            const WorkloadInstance inst = buildFor(cfg, wname);

            FaultInjector legacy(cfg, inst);
            FaultInjector ckpt(cfg, inst);
            ckpt.adoptGoldenCycles(legacy.goldenCycles());
            ckpt.buildCheckpointPack(4);

            for (TargetStructure s : {kPred, kSimt}) {
                for (std::size_t i = 0; i < kInjections; ++i) {
                    const std::uint64_t seed = deriveSeed(
                        0xC7A1, static_cast<std::uint64_t>(s) * 1000 + i);
                    const InjectionResult a =
                        runIndexedInjection(legacy, s, seed, i);
                    const InjectionResult b =
                        runIndexedInjection(ckpt, s, seed, i);
                    EXPECT_EQ(a.fault.bitIndex, b.fault.bitIndex);
                    EXPECT_EQ(a.fault.cycle, b.fault.cycle);
                    EXPECT_EQ(a.outcome, b.outcome)
                        << wname << " on " << cfg.name << " "
                        << targetStructureName(s) << " bit "
                        << a.fault.bitIndex << " cycle " << a.fault.cycle;
                    EXPECT_EQ(a.trap, b.trap);
                    EXPECT_FALSE(a.converged());
                    EXPECT_NE(b.shortcut, InjectionShortcut::DeadWindow);
                    if (b.converged()) {
                        ++converged_total;
                        EXPECT_EQ(b.outcome, FaultOutcome::Masked);
                    }
                    if (a.outcome != FaultOutcome::Masked)
                        ++unmasked_total;
                }
            }
        }
    }
    // The sweep must exercise both interesting regimes (deterministic
    // given the fixed seeds): hash-convergence shortcuts and real
    // SDC/DUE outcomes from corrupted control state.
    EXPECT_GT(converged_total, 0u);
    EXPECT_GT(unmasked_total, 0u);
}

/** Campaign path over a control structure: engine choice never changes
 *  the counts. */
TEST(ControlFaults, CampaignCountsInvariantUnderEngine)
{
    const GpuConfig cfg = test::smallCudaConfig();
    const WorkloadInstance inst = buildFor(cfg, "reduction");

    CampaignConfig legacy;
    legacy.plan.injections = 60;
    legacy.numThreads = 2;
    legacy.checkpoints = 0;

    CampaignConfig ckpt = legacy;
    ckpt.checkpoints = 6;

    for (TargetStructure s : {kPred, kSimt}) {
        const CampaignResult a = runCampaign(cfg, inst, s, legacy);
        const CampaignResult b = runCampaign(cfg, inst, s, ckpt);
        EXPECT_EQ(a.masked, b.masked) << targetStructureName(s);
        EXPECT_EQ(a.sdc, b.sdc) << targetStructureName(s);
        EXPECT_EQ(a.due, b.due) << targetStructureName(s);
    }
}

} // namespace
} // namespace gpr
