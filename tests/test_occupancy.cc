/** @file Tests for the static occupancy calculator. */

#include <gtest/gtest.h>

#include "arch/occupancy.hh"
#include "common/logging.hh"
#include "isa/builder.hh"

namespace gpr {
namespace {

/** Build a trivial kernel with a given register/smem footprint. */
Program
kernelWith(IsaDialect dialect, std::uint32_t vregs, std::uint32_t smem)
{
    KernelBuilder kb("occ", dialect);
    Operand last = kb.vreg();
    for (std::uint32_t i = 1; i < vregs; ++i)
        last = kb.vreg();
    kb.mov(last, KernelBuilder::imm(0));
    if (smem > 0)
        kb.sts(last, last);
    kb.exit();
    return kb.finish(smem);
}

TEST(Occupancy, BlockSlotLimited)
{
    const GpuConfig& fermi = gpuConfig(GpuModel::GeforceGtx480);
    // 4 regs x 128 threads = tiny; 8-block cap binds.
    const Program p = kernelWith(IsaDialect::Cuda, 4, 0);
    const OccupancyInfo o = computeOccupancy(fermi, p, 128, 1000);
    EXPECT_EQ(o.blocksPerSm, 8u);
    EXPECT_EQ(o.limiter, OccupancyInfo::Limiter::BlockSlots);
    EXPECT_EQ(o.warpsPerBlock, 4u);
    EXPECT_EQ(o.activeWarpsPerSm, 32u);
    EXPECT_NEAR(o.warpOccupancy, 32.0 / 48.0, 1e-12);
}

TEST(Occupancy, RegisterLimited)
{
    const GpuConfig& g80 = gpuConfig(GpuModel::QuadroFx5600);
    // 16 regs x 128 threads = 2048 words; 8192-word file => 4 blocks.
    const Program p = kernelWith(IsaDialect::Cuda, 16, 0);
    const OccupancyInfo o = computeOccupancy(g80, p, 128, 1000);
    EXPECT_EQ(o.blocksPerSm, 4u);
    EXPECT_EQ(o.limiter, OccupancyInfo::Limiter::Registers);
    EXPECT_NEAR(o.regFileOccupancy, 1.0, 1e-12);
}

TEST(Occupancy, SharedMemoryLimited)
{
    const GpuConfig& g80 = gpuConfig(GpuModel::QuadroFx5600);
    // 6 KB per block on a 16 KB SM => 2 blocks.
    const Program p = kernelWith(IsaDialect::Cuda, 4, 6 * 1024);
    const OccupancyInfo o = computeOccupancy(g80, p, 64, 1000);
    EXPECT_EQ(o.blocksPerSm, 2u);
    EXPECT_EQ(o.limiter, OccupancyInfo::Limiter::SharedMemory);
    EXPECT_NEAR(o.smemOccupancy, 12.0 / 16.0, 1e-12);
}

TEST(Occupancy, WarpSlotLimited)
{
    const GpuConfig& g80 = gpuConfig(GpuModel::QuadroFx5600);
    // 512-thread blocks = 16 warps; 24 slots => 1 block.
    const Program p = kernelWith(IsaDialect::Cuda, 4, 0);
    const OccupancyInfo o = computeOccupancy(g80, p, 512, 1000);
    EXPECT_EQ(o.blocksPerSm, 1u);
    EXPECT_EQ(o.limiter, OccupancyInfo::Limiter::WarpSlots);
}

TEST(Occupancy, GridSizeLimited)
{
    const GpuConfig& fermi = gpuConfig(GpuModel::GeforceGtx480);
    const Program p = kernelWith(IsaDialect::Cuda, 4, 0);
    // 15 blocks over 15 SMs: one each.
    const OccupancyInfo o = computeOccupancy(fermi, p, 128, 15);
    EXPECT_EQ(o.blocksPerSm, 1u);
    EXPECT_EQ(o.limiter, OccupancyInfo::Limiter::GridSize);
}

TEST(Occupancy, SouthernIslandsWavefronts)
{
    const GpuConfig& tahiti = gpuConfig(GpuModel::HdRadeon7970);
    const Program p = kernelWith(IsaDialect::SouthernIslands, 8, 0);
    // 256 threads = 4 waves of 64.
    const OccupancyInfo o = computeOccupancy(tahiti, p, 256, 100000);
    EXPECT_EQ(o.warpsPerBlock, 4u);
    EXPECT_EQ(o.regsPerBlock, 4u * 64 * 8);
}

TEST(Occupancy, PartialWarpRoundsUp)
{
    const GpuConfig& fermi = gpuConfig(GpuModel::GeforceGtx480);
    const Program p = kernelWith(IsaDialect::Cuda, 4, 0);
    const OccupancyInfo o = computeOccupancy(fermi, p, 33, 1000);
    EXPECT_EQ(o.warpsPerBlock, 2u); // 33 threads occupy 2 warps
}

TEST(Occupancy, RejectsImpossibleLaunches)
{
    const GpuConfig& g80 = gpuConfig(GpuModel::QuadroFx5600);
    // Block larger than the device maximum.
    const Program small = kernelWith(IsaDialect::Cuda, 4, 0);
    EXPECT_THROW(computeOccupancy(g80, small, 1024, 1), FatalError);
    // One block exceeding the register file.
    const Program fat = kernelWith(IsaDialect::Cuda, 64, 0);
    EXPECT_THROW(computeOccupancy(g80, fat, 512, 1), FatalError);
    // One block exceeding shared memory.
    const Program smem_hog = kernelWith(IsaDialect::Cuda, 4, 20 * 1024);
    EXPECT_THROW(computeOccupancy(g80, smem_hog, 64, 1), FatalError);
    // Dialect mismatch.
    const Program si = kernelWith(IsaDialect::SouthernIslands, 4, 0);
    EXPECT_THROW(computeOccupancy(g80, si, 64, 1), FatalError);
}

TEST(Occupancy, LimiterNames)
{
    EXPECT_EQ(occupancyLimiterName(OccupancyInfo::Limiter::Registers),
              "registers");
    EXPECT_EQ(occupancyLimiterName(OccupancyInfo::Limiter::GridSize),
              "grid-size");
}

} // namespace
} // namespace gpr
