/** @file Tests for bit-manipulation helpers. */

#include <gtest/gtest.h>

#include "common/bitutils.hh"

namespace gpr {
namespace {

TEST(BitUtils, FlipBit)
{
    EXPECT_EQ(flipBit(0x0, 0), 0x1u);
    EXPECT_EQ(flipBit(0x1, 0), 0x0u);
    EXPECT_EQ(flipBit(0x0, 31), 0x80000000u);
    // Flipping twice restores.
    for (unsigned b = 0; b < 32; ++b)
        EXPECT_EQ(flipBit(flipBit(0xdeadbeefu, b), b), 0xdeadbeefu);
}

TEST(BitUtils, GetSetBit)
{
    Word w = 0;
    w = setBit(w, 5, true);
    EXPECT_TRUE(getBit(w, 5));
    EXPECT_FALSE(getBit(w, 4));
    w = setBit(w, 5, false);
    EXPECT_EQ(w, 0u);
}

TEST(BitUtils, Popcount)
{
    EXPECT_EQ(popcount(0u), 0u);
    EXPECT_EQ(popcount(0xffffffffu), 32u);
    EXPECT_EQ(popcount(0x80000001u), 2u);
}

TEST(BitUtils, CeilDivAndRoundUp)
{
    EXPECT_EQ(ceilDiv(10, 3), 4);
    EXPECT_EQ(ceilDiv(9, 3), 3);
    EXPECT_EQ(ceilDiv(1, 128), 1);
    EXPECT_EQ(roundUp(10, 8), 16);
    EXPECT_EQ(roundUp(16, 8), 16);
}

TEST(BitUtils, FloatBitsRoundTrip)
{
    for (float f : {0.0f, 1.0f, -2.5f, 3.14159f, 1e-20f, -1e20f}) {
        EXPECT_EQ(wordToFloat(floatBits(f)), f);
    }
    EXPECT_EQ(floatBits(1.0f), 0x3f800000u);
    EXPECT_EQ(floatBits(-0.0f), 0x80000000u);
}

} // namespace
} // namespace gpr
