/** @file Differential fuzzing of the execution pipeline: random
 *  straight-line kernels run on the simulator must match a simple
 *  per-thread reference interpreter bit-for-bit.  This exercises operand
 *  routing, predication, SELP, scoreboard/writeback ordering and the
 *  store path across both dialects, independent of the workloads. */

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hh"
#include "isa/builder.hh"
#include "sim/alu.hh"
#include "sim_test_util.hh"

namespace gpr {
namespace {

constexpr unsigned kLiveRegs = 6;
constexpr unsigned kOpsPerProgram = 40;
constexpr unsigned kThreads = 64;

/** Opcodes the fuzzer draws from (3-input ops included). */
const Opcode kAluPool[] = {
    Opcode::IAdd, Opcode::ISub, Opcode::IMul, Opcode::IMad, Opcode::IMin,
    Opcode::IMax, Opcode::And,  Opcode::Or,   Opcode::Xor,  Opcode::Not,
    Opcode::Shl,  Opcode::Shr,  Opcode::Shra, Opcode::Mov,
};

struct FuzzOp
{
    Opcode op;
    unsigned dst;
    unsigned src[3];     // register indices
    bool srcIsImm[3];
    Word imm[3];
    bool isSetp = false; // ISETP.LT writing pred 0
    bool isSelp = false; // SELP reading pred 0
};

/** One generated program plus everything the oracle needs. */
struct FuzzProgram
{
    std::vector<FuzzOp> ops;
};

FuzzProgram
generate(Rng& rng)
{
    FuzzProgram fp;
    for (unsigned i = 0; i < kOpsPerProgram; ++i) {
        FuzzOp op{};
        const std::uint64_t kind = rng.below(10);
        if (kind == 0) {
            op.isSetp = true;
        } else if (kind == 1) {
            op.isSelp = true;
        } else {
            op.op = kAluPool[rng.below(std::size(kAluPool))];
        }
        op.dst = static_cast<unsigned>(rng.below(kLiveRegs));
        for (int s = 0; s < 3; ++s) {
            op.src[s] = static_cast<unsigned>(rng.below(kLiveRegs));
            op.srcIsImm[s] = rng.below(4) == 0;
            op.imm[s] = static_cast<Word>(rng());
        }
        fp.ops.push_back(op);
    }
    return fp;
}

Program
lower(const FuzzProgram& fp, IsaDialect dialect)
{
    KernelBuilder kb("fuzz", dialect);
    const Operand tid = kb.vreg();
    const Operand pout = kb.uniformReg();
    kb.s2r(tid, SpecialReg::TidX);
    kb.ldparam(pout, 0);

    std::vector<Operand> regs;
    for (unsigned r = 0; r < kLiveRegs; ++r) {
        const Operand v = kb.vreg();
        // Seed: r ^ (tid * (2r+3)) — thread-distinct, deterministic.
        kb.imul(v, tid, KernelBuilder::imm(2 * r + 3));
        kb.xor_(v, v, KernelBuilder::imm(static_cast<std::int32_t>(r)));
        regs.push_back(v);
    }
    const unsigned pred = kb.preg();
    // Initialise the predicate deterministically: tid & 1.
    {
        const Operand lsb = kb.vreg();
        kb.and_(lsb, tid, KernelBuilder::imm(1));
        kb.isetp(CmpOp::Eq, pred, lsb, KernelBuilder::imm(0));
    }

    auto operand = [&](const FuzzOp& op, int s) {
        return op.srcIsImm[s] ? Operand::immediate(op.imm[s])
                              : regs[op.src[s]];
    };

    for (const FuzzOp& op : fp.ops) {
        if (op.isSetp) {
            kb.isetp(CmpOp::Lt, pred, operand(op, 0), operand(op, 1));
        } else if (op.isSelp) {
            kb.selp(regs[op.dst], operand(op, 0), operand(op, 1), pred);
        } else {
            const OpTraits& t = opTraits(op.op);
            if (t.numSrcs == 1) {
                Instruction dummy;
                (void)dummy;
                if (op.op == Opcode::Mov)
                    kb.mov(regs[op.dst], operand(op, 0));
                else
                    kb.not_(regs[op.dst], operand(op, 0));
            } else if (t.numSrcs == 3) {
                kb.imad(regs[op.dst], operand(op, 0), operand(op, 1),
                        operand(op, 2));
            } else {
                switch (op.op) {
                  case Opcode::IAdd:
                    kb.iadd(regs[op.dst], operand(op, 0), operand(op, 1));
                    break;
                  case Opcode::ISub:
                    kb.isub(regs[op.dst], operand(op, 0), operand(op, 1));
                    break;
                  case Opcode::IMul:
                    kb.imul(regs[op.dst], operand(op, 0), operand(op, 1));
                    break;
                  case Opcode::IMin:
                    kb.imin(regs[op.dst], operand(op, 0), operand(op, 1));
                    break;
                  case Opcode::IMax:
                    kb.imax(regs[op.dst], operand(op, 0), operand(op, 1));
                    break;
                  case Opcode::And:
                    kb.and_(regs[op.dst], operand(op, 0), operand(op, 1));
                    break;
                  case Opcode::Or:
                    kb.or_(regs[op.dst], operand(op, 0), operand(op, 1));
                    break;
                  case Opcode::Xor:
                    kb.xor_(regs[op.dst], operand(op, 0), operand(op, 1));
                    break;
                  case Opcode::Shl:
                    kb.shl(regs[op.dst], operand(op, 0), operand(op, 1));
                    break;
                  case Opcode::Shr:
                    kb.shr(regs[op.dst], operand(op, 0), operand(op, 1));
                    break;
                  case Opcode::Shra:
                    kb.shra(regs[op.dst], operand(op, 0), operand(op, 1));
                    break;
                  default:
                    panic("unexpected opcode in pool");
                }
            }
        }
    }

    // Store every live register: out[tid * kLiveRegs + r].
    for (unsigned r = 0; r < kLiveRegs; ++r) {
        const Operand addr = kb.vreg();
        kb.imad(addr, tid, KernelBuilder::imm(kLiveRegs),
                KernelBuilder::imm(static_cast<std::int32_t>(r)));
        kb.shl(addr, addr, KernelBuilder::imm(2));
        kb.iadd(addr, addr, pout);
        kb.stg(addr, regs[r]);
    }
    kb.exit();
    return kb.finish();
}

/** Reference interpreter: per-thread, program order. */
std::vector<Word>
oracle(const FuzzProgram& fp, unsigned tid)
{
    std::vector<Word> regs(kLiveRegs);
    for (unsigned r = 0; r < kLiveRegs; ++r)
        regs[r] = (tid * (2 * r + 3)) ^ r;
    bool pred = (tid & 1) == 0;

    auto value = [&](const FuzzOp& op, int s) {
        return op.srcIsImm[s] ? op.imm[s] : regs[op.src[s]];
    };

    for (const FuzzOp& op : fp.ops) {
        if (op.isSetp) {
            pred = evalCmpInt(CmpOp::Lt, value(op, 0), value(op, 1));
        } else if (op.isSelp) {
            regs[op.dst] = pred ? value(op, 0) : value(op, 1);
        } else {
            const OpTraits& t = opTraits(op.op);
            const Opcode actual = t.numSrcs == 3 ? Opcode::IMad : op.op;
            regs[op.dst] = evalAlu(actual, value(op, 0), value(op, 1),
                                   value(op, 2));
        }
    }
    return regs;
}

class SimFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SimFuzz, SimulatorMatchesOracle)
{
    Rng rng(GetParam());
    const FuzzProgram fp = generate(rng);

    for (IsaDialect dialect :
         {IsaDialect::Cuda, IsaDialect::SouthernIslands}) {
        const GpuConfig cfg = dialect == IsaDialect::Cuda
                                  ? test::smallCudaConfig()
                                  : test::smallSiConfig();
        const Program prog = lower(fp, dialect);

        MemoryImage img;
        const Buffer out = img.allocBuffer(kThreads * kLiveRegs);
        LaunchConfig launch;
        launch.blockX = kThreads;
        launch.gridX = 1;
        launch.addParamAddr(out.byteAddr);

        const RunResult r =
            test::runProgram(cfg, prog, launch, std::move(img));
        ASSERT_TRUE(r.clean()) << trapKindName(r.trap);

        for (unsigned t = 0; t < kThreads; ++t) {
            const std::vector<Word> expect = oracle(fp, t);
            for (unsigned reg = 0; reg < kLiveRegs; ++reg) {
                ASSERT_EQ(r.memory.getWord(out, t * kLiveRegs + reg),
                          expect[reg])
                    << "seed " << GetParam() << " dialect "
                    << dialectName(dialect) << " thread " << t << " reg "
                    << reg;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, SimFuzz,
                         ::testing::Range<std::uint64_t>(1, 25));

} // namespace
} // namespace gpr
