/** @file Tests for the deterministic PRNG infrastructure. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/random.hh"

namespace gpr {
namespace {

TEST(SplitMix64, DeterministicSequence)
{
    SplitMix64 a(42);
    SplitMix64 b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge)
{
    SplitMix64 a(1);
    SplitMix64 b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, Deterministic)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, BelowIsInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL,
                                1ULL << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng rng(9);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowZeroPanics)
{
    Rng rng(9);
    EXPECT_THROW(rng.below(0), PanicError);
}

TEST(Rng, BetweenInclusiveBounds)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t v = rng.between(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        saw_lo |= v == 5;
        saw_hi |= v == 8;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(13);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    // Mean of U(0,1) with n=10000: ~0.5 +/- ~0.01; allow generous slack.
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(17);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(-3.0, 5.0);
        EXPECT_GE(v, -3.0);
        EXPECT_LT(v, 5.0);
    }
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng rng(19);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.below(10)];
    for (int c : counts) {
        // Each bucket expects 10000; 5-sigma is ~475.
        EXPECT_NEAR(c, n / 10, 600);
    }
}

TEST(Rng, DeriveProducesIndependentStreams)
{
    Rng root(23);
    Rng a = root.derive(0);
    Rng b = root.derive(1);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a() == b() ? 1 : 0;
    EXPECT_LT(equal, 3);
}

TEST(DeriveSeed, StableAndDistinct)
{
    const std::uint64_t s0 = deriveSeed(100, 0);
    EXPECT_EQ(s0, deriveSeed(100, 0));
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 1000; ++i)
        seen.insert(deriveSeed(100, i));
    EXPECT_EQ(seen.size(), 1000u);
}

TEST(DeriveSeed, RootSeedMatters)
{
    EXPECT_NE(deriveSeed(1, 5), deriveSeed(2, 5));
}

} // namespace
} // namespace gpr
