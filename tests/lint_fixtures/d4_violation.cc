// Fixture: D4 unguarded mutable member and non-const static object.
// Not compiled into the build — tests/test_lint.cc lints it as text.
#include <cstddef>

struct Cache
{
    std::size_t
    lookup(std::size_t k) const
    {
        ++hits_;
        return k;
    }

    mutable std::size_t hits_ = 0;    // D4: mutable, no guard
};

static std::size_t g_counter = 0;     // D4: non-const static object
