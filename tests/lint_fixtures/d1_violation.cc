// Fixture: every D1 nondeterminism source the checker must catch.
// Not compiled into the build — tests/test_lint.cc lints it as text.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

int
drawEntropy()
{
    std::random_device rd;                           // D1: hardware entropy
    std::mt19937 gen;                                // D1: default-seeded
    int r = rand();                                  // D1: libc rand
    long t = time(nullptr);                          // D1: wall-clock
    auto now = std::chrono::steady_clock::now();     // D1: clock read
    (void)now;
    return static_cast<int>(rd() + gen() + static_cast<unsigned>(r + t));
}
