// Fixture: violates no rule, under any path — the silence baseline.
// Not compiled into the build — tests/test_lint.cc lints it as text.
#include <cstdint>
#include <vector>

std::uint64_t
sumCounts(const std::vector<std::uint64_t>& counts)
{
    std::uint64_t total = 0;
    for (std::uint64_t c : counts)
        total += c;
    return total;
}
