// Fixture: the same violating patterns as the d*_violation files, each
// silenced through a designed suppression form — the allow round-trip.
// Not compiled into the build — tests/test_lint.cc lints it as text.
#include <chrono>
#include <random>
#include <thread>
#include <unordered_map>

int
entropySeed()
{
    // gpr:lint-allow(D1): explicit entropy escape for --seed=random
    std::random_device rd;
    return static_cast<int>(rd());
}

void
ownedThread()
{
    std::thread t([] {}); // gpr:lint-allow(D3): joined below, test-only
    t.join();
}

std::size_t
orderInsensitiveCount(const std::unordered_map<int, int>& m)
{
    std::size_t n = 0;
    // gpr:lint-allow(D2): order-insensitive fold (pure count)
    for (const auto& kv : m)
        n += static_cast<std::size_t>(kv.second > 0);
    return n;
}

struct GuardedCache
{
    // gpr:guarded_by(owner's mutex_)
    mutable std::size_t hits_ = 0;
};
