// Fixture: the file-level timing whitelist — clock reads allowed
// file-wide, but only for rule D1; other rules still fire.
// Not compiled into the build — tests/test_lint.cc lints it as text.

// gpr:lint-allow-file(D1): timing whitelist — progress display only

#include <chrono>
#include <thread>

double
elapsedSeconds(std::chrono::steady_clock::time_point start)
{
    const auto now = std::chrono::steady_clock::now(); // D1 allowed
    return std::chrono::duration<double>(now - start).count();
}

void
stillCaught()
{
    std::thread t([] {});   // D3 still fires: the allow names only D1
    t.join();
}
