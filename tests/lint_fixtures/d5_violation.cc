// Fixture: D5 order-dependent float accumulation in a statistics path.
// Not compiled into the build — tests/test_lint.cc lints it under a
// virtual src/common/statistics_* path so the D5 path filter applies.
#include <numeric>
#include <vector>

double
totalSeconds(const std::vector<double>& samples)
{
    double busySeconds = 0.0;
    for (double s : samples)
        busySeconds += s;             // D5: container-order fold
    return busySeconds +
           std::accumulate(samples.begin(), samples.end(), 0.0); // D5
}
