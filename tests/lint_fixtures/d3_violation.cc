// Fixture: D3 raw threading outside common/worker_pool.*.
// Not compiled into the build — tests/test_lint.cc lints it as text.
#include <future>
#include <thread>

void
spawnWork()
{
    std::thread t([] {});                        // D3: raw std::thread
    t.detach();                                  // D3: detach
    auto f = std::async([] { return 1; });       // D3: std::async
    (void)f;
}
