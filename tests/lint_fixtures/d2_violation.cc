// Fixture: D2 address-ordered containers and unordered iteration.
// Not compiled into the build — tests/test_lint.cc lints it as text.
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

struct Node
{
};

std::vector<std::string>
exportNames(const std::unordered_map<std::string, int>& index)
{
    std::map<Node*, int> order;       // D2: pointer-keyed ordered map
    (void)order;
    std::vector<std::string> out;
    for (const auto& kv : index)      // D2: hash-order iteration
        out.push_back(kv.first);
    return out;
}
