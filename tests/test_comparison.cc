/** @file Tests for the cross-architecture comparison study driver. */

#include <gtest/gtest.h>

#include <sstream>

#include "core/comparison.hh"

namespace gpr {
namespace {

StudyOptions
tinyStudy()
{
    StudyOptions options;
    options.workloads = {"vectoradd", "reduction"};
    options.gpus = {GpuModel::QuadroFx5600, GpuModel::GeforceGtx480};
    options.analysis.aceOnly = true;
    options.verbose = false;
    return options;
}

TEST(ComparisonStudy, ShapeAndIndexing)
{
    const StudyResult study = runComparisonStudy(tinyStudy());
    ASSERT_EQ(study.workloads.size(), 2u);
    ASSERT_EQ(study.gpus.size(), 2u);
    ASSERT_EQ(study.reports.size(), 4u);
    EXPECT_EQ(study.at(0, 0).workload, "vectoradd");
    EXPECT_EQ(study.at(0, 1).gpuName, "GeForce GTX 480");
    EXPECT_EQ(study.at(1, 0).workload, "reduction");
    EXPECT_THROW(study.at(2, 0), PanicError);
}

TEST(ComparisonStudy, Figure1HasRowPerCellPlusAverages)
{
    const StudyResult study = runComparisonStudy(tinyStudy());
    const TextTable fig1 = study.figure1();
    // 2 workloads x 2 gpus + 2 average rows; columns gained the FI
    // confidence-interval error bar.
    EXPECT_EQ(fig1.rowCount(), 6u);
    EXPECT_EQ(fig1.columnCount(), 6u);
}

TEST(ComparisonStudy, Figure2OnlyLocalMemoryBenchmarks)
{
    const StudyResult study = runComparisonStudy(tinyStudy());
    const TextTable fig2 = study.figure2();
    // Only 'reduction' uses local memory: 1 workload x 2 gpus + 2 avgs.
    EXPECT_EQ(fig2.rowCount(), 4u);
}

TEST(ComparisonStudy, Figure3CoversAllCells)
{
    const StudyResult study = runComparisonStudy(tinyStudy());
    const TextTable fig3 = study.figure3();
    EXPECT_EQ(fig3.rowCount(), 4u);
    EXPECT_EQ(fig3.columnCount(), 7u); // incl. the EPF CI error bar
}

TEST(ComparisonStudy, ClaimsComputable)
{
    const StudyResult study = runComparisonStudy(tinyStudy());
    const auto claims = study.claims();
    EXPECT_GE(claims.rfAvfOccupancyCorrelation, -1.0);
    EXPECT_LE(claims.rfAvfOccupancyCorrelation, 1.0);
    EXPECT_GT(claims.aceSecondsTotal, 0.0);

    std::ostringstream os;
    study.printClaims(os);
    EXPECT_NE(os.str().find("occupancy"), std::string::npos);
}

TEST(ComparisonStudy, DefaultsCoverFullGrid)
{
    // Don't run it (expensive) — just check the option defaults resolve
    // to the paper's full grid.
    StudyOptions options;
    EXPECT_TRUE(options.workloads.empty());
    EXPECT_TRUE(options.gpus.empty());
    // Defaults are applied inside runComparisonStudy; validated by the
    // fig benches.  Here we sanity-check the sources they draw from.
    EXPECT_EQ(allWorkloadNames().size(), 10u);
    EXPECT_EQ(allGpuModels().size(), 4u);
}

TEST(ComparisonStudy, SmallFiStudyProducesMargins)
{
    StudyOptions options = tinyStudy();
    options.analysis.aceOnly = false;
    options.analysis.plan.injections = 25;
    options.workloads = {"vectoradd"};
    const StudyResult study = runComparisonStudy(options);
    for (const auto& rep : study.reports) {
        const StructureReport& rf =
            rep.forStructure(TargetStructure::VectorRegisterFile);
        EXPECT_EQ(rf.injections, 25u);
        EXPECT_GT(rf.fiErrorMargin, 0.0);
    }
}

TEST(ComparisonStudy, StructureRestrictionMatchesFullSlice)
{
    // A --structures restricted study reproduces the matching slice of
    // the unrestricted study bit-for-bit (per-structure campaign seeds
    // are independent), and leaves excluded structures FI-free.
    StudyOptions all = tinyStudy();
    all.analysis.aceOnly = false;
    all.analysis.plan.injections = 20;
    all.workloads = {"vectoradd"};
    all.gpus = {GpuModel::GeforceGtx480};
    StudyOptions only_pred = all;
    only_pred.structures = {TargetStructure::PredicateFile};

    const StudyResult full = runComparisonStudy(all);
    const StudyResult restricted = runComparisonStudy(only_pred);
    ASSERT_EQ(full.reports.size(), 1u);
    ASSERT_EQ(restricted.reports.size(), 1u);

    const auto& fp =
        full.reports[0].forStructure(TargetStructure::PredicateFile);
    const auto& rp =
        restricted.reports[0].forStructure(TargetStructure::PredicateFile);
    EXPECT_EQ(fp.sdcRate, rp.sdcRate);
    EXPECT_EQ(fp.dueRate, rp.dueRate);
    EXPECT_EQ(fp.avfFi, rp.avfFi);
    EXPECT_EQ(fp.injections, rp.injections);

    const auto& rf = restricted.reports[0].forStructure(
        TargetStructure::VectorRegisterFile);
    EXPECT_EQ(rf.injections, 0u); // excluded: ACE only
    EXPECT_GT(rf.avfAce, 0.0);

    // The FIT/EPF roll-up of an excluded storage structure falls back
    // to its ACE AVF — never a bogus "measured zero".
    EXPECT_GT(restricted.reports[0].epf.fitRegisterFile, 0.0);
}

} // namespace
} // namespace gpr
