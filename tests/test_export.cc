/** @file Tests for JSON/CSV export of analysis results. */

#include <gtest/gtest.h>

#include <sstream>

#include "core/export.hh"

namespace gpr {
namespace {

TEST(JsonWriter, PrimitiveShapes)
{
    std::ostringstream os;
    JsonWriter j(os);
    j.beginObject();
    j.kv("s", "text");
    j.kv("d", 1.5);
    j.kv("u", std::uint64_t{42});
    j.kv("b", true);
    j.key("arr").beginArray();
    j.value(std::uint64_t{1});
    j.value(std::uint64_t{2});
    j.endArray();
    j.key("nested").beginObject();
    j.kv("x", 0.25);
    j.endObject();
    j.endObject();
    EXPECT_EQ(os.str(),
              R"({"s":"text","d":1.5,"u":42,"b":true,"arr":[1,2],)"
              R"("nested":{"x":0.25}})");
}

TEST(JsonWriter, EscapesStrings)
{
    std::ostringstream os;
    JsonWriter j(os);
    j.beginObject();
    j.kv("k", "a\"b\\c\nd");
    j.endObject();
    EXPECT_EQ(os.str(), "{\"k\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(JsonWriter, NonFiniteBecomesNull)
{
    std::ostringstream os;
    JsonWriter j(os);
    j.beginArray();
    j.value(std::numeric_limits<double>::infinity());
    j.value(std::numeric_limits<double>::quiet_NaN());
    j.endArray();
    EXPECT_EQ(os.str(), "[null,null]");
}

TEST(JsonWriter, MisuseIsCaught)
{
    std::ostringstream os;
    JsonWriter j(os);
    j.beginObject();
    EXPECT_THROW(j.endArray(), PanicError);
    std::ostringstream os2;
    JsonWriter j2(os2);
    j2.beginArray();
    EXPECT_THROW(j2.key("k"), PanicError);
}

ReliabilityReport
sampleReport()
{
    ReliabilityReport r;
    r.workload = "vectoradd";
    r.gpuName = "GeForce GTX 480";
    r.cycles = 3110;
    r.execSeconds = 2.2e-6;
    r.ipc = 5.9;
    for (const StructureSpec& spec : structureRegistry()) {
        StructureReport sr;
        sr.structure = spec.id;
        r.structures.push_back(sr);
    }
    StructureReport& rf =
        r.structures[static_cast<std::size_t>(
            TargetStructure::VectorRegisterFile)];
    rf.applicable = true;
    rf.avfFi = 0.067;
    rf.avfAce = 0.070;
    rf.occupancy = 0.36;
    rf.injections = 150;
    r.epf.eit = 1.6e18;
    r.epf.fitRegisterFile = 1000.0;
    return r;
}

TEST(Export, ReportJsonHasAllSections)
{
    std::ostringstream os;
    writeReportJson(os, sampleReport());
    const std::string out = os.str();
    EXPECT_NE(out.find("\"workload\":\"vectoradd\""), std::string::npos);
    EXPECT_NE(out.find("\"register_file\":{\"applicable\":true"),
              std::string::npos);
    EXPECT_NE(out.find("\"local_memory\":{\"applicable\":false}"),
              std::string::npos);
    // Every registered structure appears exactly once.
    for (const StructureSpec& spec : structureRegistry()) {
        const std::string key =
            "\"" + std::string(spec.jsonKey) + "\":{";
        const auto first = out.find(key);
        EXPECT_NE(first, std::string::npos) << spec.jsonKey;
        EXPECT_EQ(out.find(key, first + 1), std::string::npos)
            << spec.jsonKey;
    }
    EXPECT_NE(out.find("\"epf\":{"), std::string::npos);
    // Balanced braces (cheap well-formedness check).
    EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
              std::count(out.begin(), out.end(), '}'));
}

TEST(Export, StudyJsonAndCsvCoverAllCells)
{
    StudyOptions options;
    options.workloads = {"vectoradd"};
    options.gpus = {GpuModel::QuadroFx5600, GpuModel::GeforceGtx480};
    options.analysis.aceOnly = true;
    options.verbose = false;
    const StudyResult study = runComparisonStudy(options);

    std::ostringstream json;
    writeStudyJson(json, study);
    const std::string jtext = json.str();
    EXPECT_NE(jtext.find("\"cells\":["), std::string::npos);
    EXPECT_NE(jtext.find("Quadro FX 5600"), std::string::npos);
    EXPECT_NE(jtext.find("GeForce GTX 480"), std::string::npos);
    EXPECT_NE(jtext.find("\"claims\":{"), std::string::npos);
    EXPECT_EQ(std::count(jtext.begin(), jtext.end(), '{'),
              std::count(jtext.begin(), jtext.end(), '}'));

    std::ostringstream csv;
    writeStudyCsv(csv, study);
    const std::string ctext = csv.str();
    // Header + one row per cell.
    EXPECT_EQ(std::count(ctext.begin(), ctext.end(), '\n'), 3);
    EXPECT_NE(ctext.find("benchmark,gpu,cycles"), std::string::npos);
}

} // namespace
} // namespace gpr
