/** @file Basic simulator execution: data movement, ALU, predication,
 *  special registers, parameters, 2-D geometry. */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "sim_test_util.hh"

namespace gpr {
namespace {

using test::runProgram;
using test::smallCudaConfig;

/** Each thread stores a constant to out[gid]. */
TEST(SimBasic, StoreConstantPerThread)
{
    KernelBuilder kb("store_const", IsaDialect::Cuda);
    const Operand tid = kb.vreg();
    const Operand bid = kb.uniformReg();
    const Operand bdim = kb.uniformReg();
    const Operand pout = kb.uniformReg();
    kb.s2r(tid, SpecialReg::TidX);
    kb.s2r(bid, SpecialReg::CtaIdX);
    kb.s2r(bdim, SpecialReg::NTidX);
    kb.ldparam(pout, 0);
    const Operand gid = kb.vreg();
    kb.imad(gid, bid, bdim, tid);
    const Operand addr = kb.vreg();
    kb.shl(addr, gid, KernelBuilder::imm(2));
    kb.iadd(addr, addr, pout);
    const Operand v = kb.vreg();
    kb.mov(v, KernelBuilder::imm(0x5a5a));
    kb.stg(addr, v);
    kb.exit();
    const Program prog = kb.finish();

    MemoryImage img;
    const Buffer out = img.allocBuffer(128);
    LaunchConfig launch;
    launch.blockX = 64;
    launch.gridX = 2;
    launch.addParamAddr(out.byteAddr);

    const RunResult r = runProgram(smallCudaConfig(), prog, launch, img);
    ASSERT_TRUE(r.clean()) << trapKindName(r.trap);
    for (std::uint32_t i = 0; i < 128; ++i)
        EXPECT_EQ(r.memory.getWord(out, i), 0x5a5au) << i;
    EXPECT_GT(r.stats.cycles, 0u);
    EXPECT_GT(r.stats.warpInstructions, 0u);
    EXPECT_EQ(r.stats.blocksCompleted, 2u);
}

/** Thread/block indices land in the right output slots (2-D geometry). */
TEST(SimBasic, TwoDimensionalGeometry)
{
    KernelBuilder kb("geom2d", IsaDialect::Cuda);
    const Operand tx = kb.vreg();
    const Operand ty = kb.vreg();
    const Operand bx = kb.uniformReg();
    const Operand by = kb.uniformReg();
    const Operand pout = kb.uniformReg();
    kb.s2r(tx, SpecialReg::TidX);
    kb.s2r(ty, SpecialReg::TidY);
    kb.s2r(bx, SpecialReg::CtaIdX);
    kb.s2r(by, SpecialReg::CtaIdY);
    kb.ldparam(pout, 0);

    // gx = bx*4+tx (0..7), gy = by*2+ty (0..3); out[gy*8+gx] = gy*100+gx.
    const Operand gx = kb.vreg();
    const Operand gy = kb.vreg();
    kb.imad(gx, bx, KernelBuilder::imm(4), tx);
    kb.imad(gy, by, KernelBuilder::imm(2), ty);
    const Operand val = kb.vreg();
    kb.imad(val, gy, KernelBuilder::imm(100), gx);
    const Operand addr = kb.vreg();
    kb.imad(addr, gy, KernelBuilder::imm(8), gx);
    kb.shl(addr, addr, KernelBuilder::imm(2));
    kb.iadd(addr, addr, pout);
    kb.stg(addr, val);
    kb.exit();
    const Program prog = kb.finish();

    MemoryImage img;
    const Buffer out = img.allocBuffer(32);
    LaunchConfig launch;
    launch.blockX = 4;
    launch.blockY = 2;
    launch.gridX = 2;
    launch.gridY = 2;
    launch.addParamAddr(out.byteAddr);

    const RunResult r = runProgram(smallCudaConfig(), prog, launch, img);
    ASSERT_TRUE(r.clean());
    for (std::uint32_t gy = 0; gy < 4; ++gy)
        for (std::uint32_t gx = 0; gx < 8; ++gx)
            EXPECT_EQ(r.memory.getWord(out, gy * 8 + gx), gy * 100 + gx);
}

/** Guarded instructions only touch lanes where the predicate holds. */
TEST(SimBasic, PredicationMasksLanes)
{
    KernelBuilder kb("pred", IsaDialect::Cuda);
    const Operand tid = kb.vreg();
    const Operand pout = kb.uniformReg();
    kb.s2r(tid, SpecialReg::TidX);
    kb.ldparam(pout, 0);
    const Operand addr = kb.vreg();
    kb.shl(addr, tid, KernelBuilder::imm(2));
    kb.iadd(addr, addr, pout);
    const Operand v = kb.vreg();
    kb.mov(v, KernelBuilder::imm(1));
    const unsigned p = kb.preg();
    // p := tid < 10; store 7 where p, 1 elsewhere.
    kb.isetp(CmpOp::Lt, p, tid, KernelBuilder::imm(10));
    kb.mov(v, KernelBuilder::imm(7), ifP(p));
    kb.stg(addr, v);
    kb.exit();
    const Program prog = kb.finish();

    MemoryImage img;
    const Buffer out = img.allocBuffer(32);
    LaunchConfig launch;
    launch.blockX = 32;
    launch.gridX = 1;
    launch.addParamAddr(out.byteAddr);

    const RunResult r = runProgram(smallCudaConfig(), prog, launch, img);
    ASSERT_TRUE(r.clean());
    for (std::uint32_t i = 0; i < 32; ++i)
        EXPECT_EQ(r.memory.getWord(out, i), i < 10 ? 7u : 1u) << i;
}

/** SELP picks per-lane between two values. */
TEST(SimBasic, SelpSelectsPerLane)
{
    KernelBuilder kb("selp", IsaDialect::Cuda);
    const Operand tid = kb.vreg();
    const Operand pout = kb.uniformReg();
    kb.s2r(tid, SpecialReg::TidX);
    kb.ldparam(pout, 0);
    const unsigned p = kb.preg();
    const Operand one = kb.vreg();
    const Operand two = kb.vreg();
    kb.mov(one, KernelBuilder::imm(111));
    kb.mov(two, KernelBuilder::imm(222));
    // even tid -> 111, odd tid -> 222.
    const Operand lsb = kb.vreg();
    kb.and_(lsb, tid, KernelBuilder::imm(1));
    kb.isetp(CmpOp::Eq, p, lsb, KernelBuilder::imm(0));
    const Operand sel = kb.vreg();
    kb.selp(sel, one, two, p);
    const Operand addr = kb.vreg();
    kb.shl(addr, tid, KernelBuilder::imm(2));
    kb.iadd(addr, addr, pout);
    kb.stg(addr, sel);
    kb.exit();
    const Program prog = kb.finish();

    MemoryImage img;
    const Buffer out = img.allocBuffer(64);
    LaunchConfig launch;
    launch.blockX = 64;
    launch.gridX = 1;
    launch.addParamAddr(out.byteAddr);

    const RunResult r = runProgram(smallCudaConfig(), prog, launch, img);
    ASSERT_TRUE(r.clean());
    for (std::uint32_t i = 0; i < 64; ++i)
        EXPECT_EQ(r.memory.getWord(out, i), i % 2 ? 222u : 111u);
}

/** Scalar registers hold per-wavefront uniforms on Southern Islands. */
TEST(SimBasic, ScalarUnitComputesUniforms)
{
    KernelBuilder kb("scalar", IsaDialect::SouthernIslands);
    const Operand tid = kb.vreg();
    const Operand bid = kb.uniformReg(); // SReg
    const Operand pout = kb.uniformReg();
    ASSERT_EQ(bid.kind, OperandKind::SReg);
    kb.s2r(tid, SpecialReg::TidX);
    kb.s2r(bid, SpecialReg::CtaIdX);
    kb.ldparam(pout, 0);

    const Operand scaled = kb.uniformReg();
    kb.imul(scaled, bid, KernelBuilder::imm(1000)); // scalar ALU op

    // out[bid*64 + tid] = scaled + tid.
    const Operand v = kb.vreg();
    kb.iadd(v, scaled, tid); // vector op with scalar source
    const Operand addr = kb.vreg();
    kb.imad(addr, bid, KernelBuilder::imm(64), tid);
    kb.shl(addr, addr, KernelBuilder::imm(2));
    kb.iadd(addr, addr, pout);
    kb.stg(addr, v);
    kb.exit();
    const Program prog = kb.finish();
    EXPECT_GT(prog.numSRegs(), 0u);

    MemoryImage img;
    const Buffer out = img.allocBuffer(128);
    LaunchConfig launch;
    launch.blockX = 64;
    launch.gridX = 2;
    launch.addParamAddr(out.byteAddr);

    const RunResult r =
        runProgram(test::smallSiConfig(), prog, launch, img);
    ASSERT_TRUE(r.clean());
    for (std::uint32_t b = 0; b < 2; ++b)
        for (std::uint32_t t = 0; t < 64; ++t)
            EXPECT_EQ(r.memory.getWord(out, b * 64 + t), b * 1000 + t);
}

/** Missing kernel parameters are an internal error (panic), not a trap. */
TEST(SimBasic, MissingParameterPanics)
{
    KernelBuilder kb("noparam", IsaDialect::Cuda);
    const Operand v = kb.vreg();
    kb.ldparam(v, 3); // parameter 3 never provided
    kb.exit();
    const Program prog = kb.finish();

    MemoryImage img;
    img.allocBuffer(1);
    LaunchConfig launch;
    launch.blockX = 32;
    launch.gridX = 1;

    EXPECT_THROW(runProgram(smallCudaConfig(), prog, launch, img),
                 PanicError);
}

/** The lane special register counts within the warp. */
TEST(SimBasic, LaneAndWarpIdSpecials)
{
    KernelBuilder kb("lanes", IsaDialect::Cuda);
    const Operand lane = kb.vreg();
    const Operand warp = kb.vreg();
    const Operand pout = kb.uniformReg();
    kb.s2r(lane, SpecialReg::Lane);
    kb.s2r(warp, SpecialReg::WarpId);
    kb.ldparam(pout, 0);
    const Operand tid = kb.vreg();
    kb.s2r(tid, SpecialReg::TidX);
    // out[tid] = warp*1000 + lane.
    const Operand v = kb.vreg();
    kb.imad(v, warp, KernelBuilder::imm(1000), lane);
    const Operand addr = kb.vreg();
    kb.shl(addr, tid, KernelBuilder::imm(2));
    kb.iadd(addr, addr, pout);
    kb.stg(addr, v);
    kb.exit();
    const Program prog = kb.finish();

    MemoryImage img;
    const Buffer out = img.allocBuffer(96);
    LaunchConfig launch;
    launch.blockX = 96; // 3 warps of 32
    launch.gridX = 1;
    launch.addParamAddr(out.byteAddr);

    const RunResult r = runProgram(smallCudaConfig(), prog, launch, img);
    ASSERT_TRUE(r.clean());
    for (std::uint32_t i = 0; i < 96; ++i)
        EXPECT_EQ(r.memory.getWord(out, i), (i / 32) * 1000 + i % 32);
}

} // namespace
} // namespace gpr
