/** @file Tests for text/CSV table rendering. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"

namespace gpr {
namespace {

TEST(TextTable, RendersAlignedCells)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::ostringstream os;
    t.render(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("| alpha |     1 |"), std::string::npos);
    EXPECT_NE(out.find("| b     |    22 |"), std::string::npos);
    EXPECT_NE(out.find("+-------+-------+"), std::string::npos);
}

TEST(TextTable, LeftAlignOverride)
{
    TextTable t({"h1", "h2"});
    t.setAlign(1, Align::Left);
    t.addRow({"x", "y"});
    std::ostringstream os;
    t.render(os);
    EXPECT_NE(os.str().find("| y  |"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchPanics)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), PanicError);
}

TEST(TextTable, EmptyHeadersPanics)
{
    EXPECT_THROW(TextTable({}), PanicError);
}

TEST(TextTable, CsvEscaping)
{
    TextTable t({"k", "v"});
    t.addRow({"plain", "with,comma"});
    t.addRow({"quote\"inside", "line\nbreak"});
    std::ostringstream os;
    t.renderCsv(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("k,v"), std::string::npos);
    EXPECT_NE(out.find("plain,\"with,comma\""), std::string::npos);
    EXPECT_NE(out.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(TextTable, Counts)
{
    TextTable t({"a", "b", "c"});
    EXPECT_EQ(t.columnCount(), 3u);
    EXPECT_EQ(t.rowCount(), 0u);
    t.addRow({"1", "2", "3"});
    EXPECT_EQ(t.rowCount(), 1u);
}

} // namespace
} // namespace gpr
