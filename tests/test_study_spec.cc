/** @file Tests for the declarative StudySpec experiment description. */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/export.hh"
#include "core/orchestrator.hh"
#include "core/study_spec.hh"

namespace gpr {
namespace {

StudySpec
sampleSpec()
{
    return StudySpecBuilder()
        .workloads({"vectoradd", "reduction"})
        .gpus({GpuModel::QuadroFx5600, GpuModel::HdRadeon7970})
        .structures({TargetStructure::VectorRegisterFile,
                     TargetStructure::PredicateFile})
        .injections(24)
        .confidence(0.95)
        .seed(0xFEEDFACECAFEBEEFULL) // above 2^53: exercises exact u64
        .workloadSeed(7)
        .rawFitPerMbit(850.0)
        .jobs(3)
        .shardsPerCampaign(4)
        .checkpoints(2)
        .store("spec_store.jsonl")
        .verbose(false)
        .build();
}

TEST(StudySpec, BuilderSetsEveryField)
{
    const StudySpec spec = sampleSpec();
    EXPECT_EQ(spec.workloads,
              (std::vector<std::string>{"vectoradd", "reduction"}));
    EXPECT_EQ(spec.gpus, (std::vector<GpuModel>{GpuModel::QuadroFx5600,
                                                GpuModel::HdRadeon7970}));
    EXPECT_EQ(spec.structures,
              (std::vector<TargetStructure>{
                  TargetStructure::VectorRegisterFile,
                  TargetStructure::PredicateFile}));
    EXPECT_EQ(spec.plan.injections, 24u);
    EXPECT_DOUBLE_EQ(spec.plan.confidence, 0.95);
    EXPECT_EQ(spec.seed, 0xFEEDFACECAFEBEEFULL);
    EXPECT_EQ(spec.workloadSeed, 7u);
    EXPECT_FALSE(spec.aceOnly);
    EXPECT_DOUBLE_EQ(spec.fitParams.rawFitPerMbit, 850.0);
    EXPECT_EQ(spec.jobs, 3u);
    EXPECT_EQ(spec.shardsPerCampaign, 4u);
    EXPECT_EQ(spec.checkpoints, 2u);
    EXPECT_EQ(spec.storePath, "spec_store.jsonl");
    EXPECT_FALSE(spec.resume);
    EXPECT_FALSE(spec.verbose);
}

TEST(StudySpec, JsonRoundTripIsBitIdentical)
{
    const StudySpec spec = sampleSpec();
    const std::string json = spec.toJsonString();
    const StudySpec back = StudySpec::fromJson(json);
    EXPECT_TRUE(back == spec);
    // The serialized form itself is stable: spec -> json -> spec -> json
    // reproduces the byte-identical document.
    EXPECT_EQ(back.toJsonString(), json);
}

TEST(StudySpec, DefaultSpecRoundTripsToo)
{
    const StudySpec spec = paperStudySpec();
    const StudySpec back = StudySpec::fromJson(spec.toJsonString());
    EXPECT_TRUE(back == spec);
}

TEST(StudySpec, FromJsonAcceptsAnyKeyOrderAndMissingSections)
{
    // Keys reordered relative to toJson() output, sections omitted.
    const StudySpec a = StudySpec::fromJson(
        R"({"campaign":{"seed":9,"injections":50},)"
        R"("grid":{"gpus":["7970"],"workloads":["scan"]}})");
    EXPECT_EQ(a.plan.injections, 50u);
    EXPECT_EQ(a.seed, 9u);
    ASSERT_EQ(a.gpus.size(), 1u);
    EXPECT_EQ(a.gpus[0], GpuModel::HdRadeon7970);
    EXPECT_EQ(a.workloads, std::vector<std::string>{"scan"});
    // Missing fields keep their defaults.
    EXPECT_DOUBLE_EQ(a.plan.confidence, 0.99);
    EXPECT_EQ(a.checkpoints, kDefaultCheckpoints);

    const StudySpec b = StudySpec::fromJson(
        R"({"grid":{"workloads":["scan"],"gpus":["7970"]},)"
        R"("campaign":{"injections":50,"seed":9}})");
    EXPECT_TRUE(a == b);
    EXPECT_EQ(a.campaignHash(), b.campaignHash());
}

TEST(StudySpec, ValidationErrorsArePrecise)
{
    // Unknown workload (named in the message, with the registry).
    try {
        StudySpec::fromJson(R"({"grid":{"workloads":["vectoradz"]}})");
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("vectoradz"), std::string::npos) << what;
        EXPECT_NE(what.find("vectoradd"), std::string::npos) << what;
    }

    // Unknown GPU and structure names.
    EXPECT_THROW(
        StudySpec::fromJson(R"({"grid":{"gpus":["riva128"]}})"),
        FatalError);
    EXPECT_THROW(
        StudySpec::fromJson(R"({"grid":{"structures":["l3"]}})"),
        FatalError);

    // Zero-injection plan without ace_only.
    EXPECT_THROW(
        StudySpec::fromJson(R"({"campaign":{"injections":0}})"),
        FatalError);
    EXPECT_NO_THROW(StudySpec::fromJson(
        R"({"campaign":{"injections":0,"ace_only":true}})"));

    // Confidence outside (0, 1); resume without a store.
    EXPECT_THROW(
        StudySpec::fromJson(R"({"campaign":{"confidence":1.5}})"),
        FatalError);
    EXPECT_THROW(
        StudySpec::fromJson(R"({"execution":{"resume":true}})"),
        FatalError);

    // Unknown keys are typos, not extensions to ignore silently.
    try {
        StudySpec::fromJson(R"({"campaign":{"injectons":10}})");
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("injectons"),
                  std::string::npos);
    }
    EXPECT_THROW(StudySpec::fromJson(R"({"gird":{}})"), FatalError);
}

TEST(StudySpec, HashIgnoresOrderingDuplicatesAndSpelledOutDefaults)
{
    const StudySpec base = sampleSpec();

    // Grid listing order does not change the campaign identity.
    StudySpec reordered = base;
    std::reverse(reordered.workloads.begin(), reordered.workloads.end());
    std::reverse(reordered.gpus.begin(), reordered.gpus.end());
    std::reverse(reordered.structures.begin(), reordered.structures.end());
    EXPECT_EQ(reordered.campaignHash(), base.campaignHash());

    // Duplicate grid entries collapse to one cell in the orchestrator;
    // the hash agrees.
    StudySpec duplicated = base;
    duplicated.workloads.push_back("vectoradd");
    EXPECT_EQ(duplicated.campaignHash(), base.campaignHash());

    // Empty means all: spelling the defaults out hashes identically.
    StudySpec implicit_all;
    StudySpec explicit_all;
    for (std::string_view name : allWorkloadNames())
        explicit_all.workloads.emplace_back(name);
    explicit_all.gpus = allGpuModels();
    for (const StructureSpec& s : structureRegistry())
        explicit_all.structures.push_back(s.id);
    EXPECT_EQ(explicit_all.campaignHash(), implicit_all.campaignHash());
}

TEST(StudySpec, HashCoversCampaignFieldsButNotExecutionKnobs)
{
    const StudySpec base = sampleSpec();

    StudySpec execution_only = base;
    execution_only.jobs = 16;
    execution_only.shardsPerCampaign = 1;
    execution_only.checkpoints = 0;
    execution_only.storePath = "elsewhere.jsonl";
    execution_only.verbose = true;
    EXPECT_EQ(execution_only.campaignHash(), base.campaignHash());

    StudySpec reseeded = base;
    reseeded.seed = base.seed + 1;
    EXPECT_NE(reseeded.campaignHash(), base.campaignHash());

    StudySpec resized = base;
    resized.plan.injections = 25;
    EXPECT_NE(resized.campaignHash(), base.campaignHash());

    StudySpec sliced = base;
    sliced.workloads.pop_back();
    EXPECT_NE(sliced.campaignHash(), base.campaignHash());

    EXPECT_EQ(base.campaignHashHex().size(), 16u);
}

TEST(StudySpec, PresetsDescribeTheIntendedExperiments)
{
    const StudySpec paper = paperStudySpec();
    EXPECT_TRUE(paper.workloads.empty()); // all ten
    EXPECT_TRUE(paper.gpus.empty());      // all four
    EXPECT_EQ(paper.plan.injections, 2000u);
    EXPECT_DOUBLE_EQ(paper.plan.confidence, 0.99);
    EXPECT_EQ(paper.resolvedWorkloads().size(), 10u);
    EXPECT_EQ(paper.resolvedGpus().size(), 4u);
    EXPECT_EQ(paper.resolvedStructures().size(), kNumTargetStructures);

    const StudySpec smoke = smokeStudySpec();
    EXPECT_EQ(smoke.workloads.size(), 2u);
    EXPECT_EQ(smoke.gpus, std::vector<GpuModel>{GpuModel::GeforceGtx480});
    EXPECT_EQ(smoke.plan.injections, 40u);
}

TEST(StudySpec, NameListParsersValidateAgainstTheRegistries)
{
    EXPECT_EQ(parseWorkloadList("scan, kmeans"),
              (std::vector<std::string>{"scan", "kmeans"}));
    EXPECT_THROW(parseWorkloadList("scan,nope"), FatalError);
    EXPECT_EQ(parseGpuList("gtx480,7970"),
              (std::vector<GpuModel>{GpuModel::GeforceGtx480,
                                     GpuModel::HdRadeon7970}));
    EXPECT_THROW(parseGpuList("gtx480,voodoo2"), FatalError);
    EXPECT_EQ(parseStructureList("rf,simt"),
              (std::vector<TargetStructure>{
                  TargetStructure::VectorRegisterFile,
                  TargetStructure::SimtStack}));
    EXPECT_THROW(parseStructureList("rf,l1"), FatalError);
}

TEST(StudySpec, PlanStudyCostsTheSpecWithoutExecuting)
{
    StudySpec spec = StudySpecBuilder()
                         .workloads({"vectoradd", "reduction"})
                         .gpu(GpuModel::QuadroFx5600)
                         .injections(24)
                         .shardsPerCampaign(4)
                         .build();
    const StudyPlan plan = planStudy(spec);
    EXPECT_EQ(plan.gridCells, 2u);
    EXPECT_EQ(plan.goldenRuns, 2u);
    // vectoradd: RF + pred + simt + l1d/l1i/l2; reduction adds LDS
    // -> 13 campaigns.
    EXPECT_EQ(plan.campaigns.size(), 13u);
    EXPECT_EQ(plan.totalShards(), 52u);
    EXPECT_EQ(plan.totalInjections(), 13u * 24u);
    for (const StudyPlanCampaign& c : plan.campaigns) {
        EXPECT_EQ(c.shards, 4u);
        EXPECT_EQ(c.injections, 24u);
    }

    // The plan agrees with the work-list the orchestrator executes.
    EXPECT_EQ(plan.totalShards(), decomposeStudy(spec).size());

    // ACE-only: no shards, but the golden runs remain.
    spec.aceOnly = true;
    const StudyPlan ace = planStudy(spec);
    EXPECT_EQ(ace.totalShards(), 0u);
    EXPECT_EQ(ace.goldenRuns, 2u);
}

TEST(StudySpec, SpecRunMatchesLegacyStructRunBitForBit)
{
    // The same experiment described twice: once as a spec, once through
    // the deprecated option structs.  Reports must be bit-identical.
    const StudySpec spec = StudySpecBuilder()
                               .workloads({"vectoradd", "reduction"})
                               .gpu(GpuModel::QuadroFx5600)
                               .injections(24)
                               .jobs(2)
                               .shardsPerCampaign(2)
                               .verbose(false)
                               .build();

    StudyOptions legacy;
    legacy.workloads = spec.workloads;
    legacy.gpus = spec.gpus;
    legacy.analysis.plan = spec.plan;
    legacy.analysis.seed = spec.seed;
    legacy.analysis.workloadSeed = spec.workloadSeed;
    legacy.verbose = false;
    OrchestratorOptions orch;
    orch.jobs = 2;
    orch.shardsPerCampaign = 2;

    // And the conversion helper agrees with the hand-built spec.
    EXPECT_TRUE(studySpecFromLegacy(legacy, orch) == spec);

    const StudyResult from_spec = runStudy(spec);
    const StudyResult from_legacy = runStudy(legacy, orch);
    ASSERT_EQ(from_spec.reports.size(), from_legacy.reports.size());
    for (std::size_t i = 0; i < from_spec.reports.size(); ++i) {
        const ReliabilityReport& a = from_spec.reports[i];
        const ReliabilityReport& b = from_legacy.reports[i];
        EXPECT_EQ(a.workload, b.workload);
        EXPECT_EQ(a.cycles, b.cycles);
        ASSERT_EQ(a.structures.size(), b.structures.size());
        for (std::size_t k = 0; k < a.structures.size(); ++k) {
            EXPECT_EQ(a.structures[k].avfFi, b.structures[k].avfFi);
            EXPECT_EQ(a.structures[k].sdcRate, b.structures[k].sdcRate);
            EXPECT_EQ(a.structures[k].dueRate, b.structures[k].dueRate);
            EXPECT_EQ(a.structures[k].avfAce, b.structures[k].avfAce);
            EXPECT_EQ(a.structures[k].injections,
                      b.structures[k].injections);
        }
        EXPECT_EQ(a.epf.epf(), b.epf.epf());
    }
}

TEST(JsonParser, ParsesTheShapesTheRepositoryEmits)
{
    const JsonValue v = parseJson(
        R"({"s":"a\"b","n":1.5,"u":18446744073709551615,)"
        R"("t":true,"f":false,"z":null,"a":[1,2],"o":{"k":"v"}})");
    EXPECT_EQ(v.find("s")->asString(), "a\"b");
    EXPECT_DOUBLE_EQ(v.find("n")->asDouble(), 1.5);
    EXPECT_EQ(v.find("u")->asU64(), 18446744073709551615ULL);
    EXPECT_TRUE(v.find("t")->asBool());
    EXPECT_FALSE(v.find("f")->asBool());
    EXPECT_TRUE(v.find("z")->isNull());
    ASSERT_EQ(v.find("a")->items().size(), 2u);
    EXPECT_EQ(v.find("a")->items()[1].asU64(), 2u);
    EXPECT_EQ(v.find("o")->find("k")->asString(), "v");
    EXPECT_EQ(v.find("missing"), nullptr);

    EXPECT_THROW(parseJson("{"), FatalError);
    EXPECT_THROW(parseJson("{} trailing"), FatalError);
    EXPECT_THROW(parseJson(R"({"a":1,"a":2})"), FatalError);
    EXPECT_THROW(parseJson(R"({"a":1.5})").find("a")->asU64(),
                 FatalError);
}

TEST(StoreHeaderRecord, RoundTripsAndRejectsShardRecords)
{
    StoreHeader h;
    h.specHash = "00c0ffee00c0ffee";
    h.specJson = sampleSpec().toJsonString();
    std::ostringstream os;
    writeStoreHeader(os, h);

    StoreHeader back;
    ASSERT_TRUE(parseStoreHeader(os.str(), back));
    EXPECT_EQ(back.version, 1u);
    EXPECT_EQ(back.specHash, h.specHash);

    // A shard record is not a header; a header is not a shard record.
    EXPECT_FALSE(parseStoreHeader(
        R"({"workload":"scan","gpu":"GeForce GTX 480"})", back));
    ShardRecord record;
    EXPECT_FALSE(parseShardRecord(os.str(), record));
}

} // namespace
} // namespace gpr
