/** @file Tests for the adaptive (sequential early-stopping) campaign
 *  engine: differential vs exhaustive fixed-N, and bit-identity under
 *  resume and any jobs/shards split. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/random.hh"
#include "core/export.hh"
#include "core/orchestrator.hh"
#include "reliability/campaign.hh"
#include "workloads/workloads.hh"

namespace gpr {
namespace {

StudySpec
adaptiveMiniSpec()
{
    return StudySpecBuilder()
        .workloads({"vectoradd", "reduction"})
        .gpu(GpuModel::QuadroFx5600)
        .margin(0.1)
        .confidence(0.9)
        .maxInjections(200)
        .verbose(false)
        .build();
}

std::string
tempStorePath(const char* name)
{
    return testing::TempDir() + "gpr_adaptive_" + name + ".jsonl";
}

void
expectIdenticalReports(const StudyResult& a, const StudyResult& b)
{
    ASSERT_EQ(a.reports.size(), b.reports.size());
    for (std::size_t i = 0; i < a.reports.size(); ++i) {
        const ReliabilityReport& ra = a.reports[i];
        const ReliabilityReport& rb = b.reports[i];
        EXPECT_EQ(ra.workload, rb.workload);
        EXPECT_EQ(ra.cycles, rb.cycles);
        ASSERT_EQ(ra.structures.size(), rb.structures.size());
        for (std::size_t k = 0; k < ra.structures.size(); ++k) {
            const StructureReport& sa = ra.structures[k];
            const StructureReport& sb = rb.structures[k];
            EXPECT_EQ(sa.applicable, sb.applicable);
            // Bit-identical, stopping points included: the sequential
            // decision is a pure function of the ordered record prefix.
            EXPECT_EQ(sa.injections, sb.injections);
            EXPECT_EQ(sa.avfFi, sb.avfFi);
            EXPECT_EQ(sa.sdcRate, sb.sdcRate);
            EXPECT_EQ(sa.dueRate, sb.dueRate);
            EXPECT_EQ(sa.avfCi.lo, sb.avfCi.lo);
            EXPECT_EQ(sa.avfCi.hi, sb.avfCi.hi);
            EXPECT_EQ(sa.sdcCi.lo, sb.sdcCi.lo);
            EXPECT_EQ(sa.sdcCi.hi, sb.sdcCi.hi);
            EXPECT_EQ(sa.dueCi.lo, sb.dueCi.lo);
            EXPECT_EQ(sa.dueCi.hi, sb.dueCi.hi);
            EXPECT_EQ(sa.achievedMargin, sb.achievedMargin);
            EXPECT_EQ(sa.avfAce, sb.avfAce);
        }
        EXPECT_EQ(ra.epf.epf(), rb.epf.epf());
        EXPECT_EQ(ra.epfCi.lo, rb.epfCi.lo);
        EXPECT_EQ(ra.epfCi.hi, rb.epfCi.hi);
    }
}

TEST(AdaptiveCampaign, StopsEarlyAndAgreesWithExhaustiveFixedN)
{
    // One small cell, one structure.  The exhaustive run injects the
    // full cap; the adaptive run must stop earlier and its interval
    // must contain the exhaustive ground truth.
    StudySpec adaptive = adaptiveMiniSpec();
    adaptive.workloads = {"vectoradd"};
    adaptive.structures = {TargetStructure::VectorRegisterFile};

    StudySpec exhaustive = adaptive;
    exhaustive.plan.margin = 0.0;
    exhaustive.plan.maxInjections = 0;
    exhaustive.plan.injections = adaptive.plan.resolvedMaxInjections();

    const StudyResult a = runStudy(adaptive);
    const StudyResult e = runStudy(exhaustive);
    const StructureReport& sa = a.reports.front().forStructure(
        TargetStructure::VectorRegisterFile);
    const StructureReport& se = e.reports.front().forStructure(
        TargetStructure::VectorRegisterFile);

    ASSERT_EQ(se.injections, 200u);
    EXPECT_LT(sa.injections, se.injections)
        << "adaptive campaign failed to stop before the cap";
    EXPECT_LE(sa.achievedMargin, adaptive.plan.margin);

    // The exhaustive estimate lies inside the adaptive interval...
    EXPECT_GE(se.avfFi, sa.avfCi.lo);
    EXPECT_LE(se.avfFi, sa.avfCi.hi);
    // ...and the adaptive prefix is literally a prefix of the same
    // derived injection sequence, so the two estimates are close.
    EXPECT_NEAR(sa.avfFi, se.avfFi, sa.achievedMargin + 1e-12);
}

TEST(AdaptiveCampaign, OrchestratorMatchesStandaloneCampaign)
{
    // The orchestrated adaptive path and the standalone runCampaign()
    // adaptive path share the schedule, the stopping rule, and the
    // (seed, index) derivation — same stopping point, same counts.
    StudySpec spec = adaptiveMiniSpec();
    spec.workloads = {"vectoradd"};
    spec.structures = {TargetStructure::VectorRegisterFile};
    const StudyResult result = runStudy(spec);
    const StructureReport& sr = result.reports.front().forStructure(
        TargetStructure::VectorRegisterFile);

    const GpuConfig& cfg = gpuConfig(GpuModel::QuadroFx5600);
    const auto workload = makeWorkload("vectoradd");
    WorkloadParams params;
    params.seed = spec.workloadSeed;
    const WorkloadInstance inst = workload->build(cfg.dialect, params);
    CampaignConfig cc;
    cc.plan = spec.plan;
    cc.seed = deriveSeed(spec.seed,
                         static_cast<std::uint64_t>(
                             TargetStructure::VectorRegisterFile));
    cc.numThreads = 1;
    const CampaignResult fi =
        runCampaign(cfg, inst, TargetStructure::VectorRegisterFile, cc);

    EXPECT_EQ(sr.injections, fi.injections);
    EXPECT_EQ(sr.avfFi, fi.avf());
    EXPECT_EQ(sr.sdcRate, fi.sdcRate());
    EXPECT_EQ(sr.dueRate, fi.dueRate());
    EXPECT_EQ(sr.achievedMargin, fi.achievedMargin());
    EXPECT_EQ(sr.avfCi.lo, fi.avfInterval().lo);
    EXPECT_EQ(sr.avfCi.hi, fi.avfInterval().hi);
}

TEST(AdaptiveCampaign, JobsAndShardsDoNotChangeStoppingPoints)
{
    StudySpec serial = adaptiveMiniSpec();
    serial.jobs = 1;
    serial.shardsPerCampaign = 1;
    const StudyResult a = runStudy(serial);

    StudySpec wide = adaptiveMiniSpec();
    wide.jobs = 8;
    wide.shardsPerCampaign = 8;
    const StudyResult b = runStudy(wide);

    expectIdenticalReports(a, b);
}

TEST(AdaptiveCampaign, KillAndResumeIsBitIdentical)
{
    const std::string path = tempStorePath("resume");

    StudySpec first = adaptiveMiniSpec();
    first.jobs = 1;
    first.shardsPerCampaign = 4;
    first.storePath = path;
    StudyProgress full_progress;
    const StudyResult full = runStudy(first, &full_progress);
    EXPECT_GT(full_progress.prunedShards, 0u)
        << "mini spec unexpectedly ran to its cap everywhere";

    // Kill mid-cell: keep the header plus a prefix of the records (the
    // middle of some campaign's batch sequence), plus a truncated tail
    // line as a real kill would leave.
    std::vector<std::string> lines;
    {
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line))
            if (!line.empty())
                lines.push_back(line);
    }
    ASSERT_GT(lines.size(), 5u);
    {
        std::ofstream out(path, std::ios::trunc);
        for (std::size_t i = 0; i < 4; ++i)
            out << lines[i] << '\n';
        out << lines[4].substr(0, lines[4].size() / 2);
    }

    StudySpec second = adaptiveMiniSpec();
    second.jobs = 8; // resume at a different job count
    second.shardsPerCampaign = 4;
    second.storePath = path;
    second.resume = true;
    StudyProgress resumed_progress;
    const StudyResult resumed = runStudy(second, &resumed_progress);
    EXPECT_EQ(resumed_progress.resumedShards, 3u);
    expectIdenticalReports(full, resumed);

    // A fully-populated store resumes every executed shard and prunes
    // the same ones.
    StudyProgress third_progress;
    const StudyResult third = runStudy(second, &third_progress);
    EXPECT_EQ(third_progress.executedShards, 0u);
    EXPECT_EQ(third_progress.resumedShards,
              full_progress.executedShards);
    EXPECT_EQ(third_progress.prunedShards, full_progress.prunedShards);
    expectIdenticalReports(full, third);

    // And a different shard split against the same store recomputes
    // (keys do not match) but still lands on identical numbers.
    StudySpec resharded = adaptiveMiniSpec();
    resharded.jobs = 4;
    resharded.shardsPerCampaign = 2;
    resharded.storePath = path;
    resharded.resume = true;
    const StudyResult reshard = runStudy(resharded);
    expectIdenticalReports(full, reshard);
    std::remove(path.c_str());
}

TEST(AdaptiveCampaign, ProgressAccountingCoversEveryShard)
{
    StudySpec spec = adaptiveMiniSpec();
    spec.jobs = 4;
    StudyProgress progress;
    runStudy(spec, &progress);
    EXPECT_EQ(progress.executedShards + progress.resumedShards +
                  progress.prunedShards,
              progress.totalShards);
    EXPECT_EQ(progress.resumedShards, 0u);
    // The worst case is the full decomposition.
    EXPECT_EQ(progress.totalShards, decomposeStudy(spec).size());
}

TEST(AdaptiveCampaign, AdaptiveSpecRoundTripsThroughJson)
{
    const StudySpec spec = adaptiveMiniSpec();
    const StudySpec back = StudySpec::fromJson(spec.toJsonString());
    EXPECT_TRUE(back == spec);
    EXPECT_EQ(back.campaignHash(), spec.campaignHash());

    // The adaptive fields are campaign identity: changing the margin or
    // the cap changes the hash; a fixed-N spec's hash is untouched by
    // the (unused) adaptive defaults.
    StudySpec tightened = spec;
    tightened.plan.margin = 0.05;
    EXPECT_NE(tightened.campaignHash(), spec.campaignHash());
    StudySpec recapped = spec;
    recapped.plan.maxInjections = 150;
    EXPECT_NE(recapped.campaignHash(), spec.campaignHash());

    // Validation: a cap without a margin is a spec error.
    StudySpec bad = spec;
    bad.plan.margin = 0.0;
    EXPECT_THROW(bad.validate(), FatalError);
}

} // namespace
} // namespace gpr
