/** @file Tests for the bench command-line plumbing. */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/bench_cli.hh"

namespace gpr {
namespace {

bool
parseArgs(BenchCli& cli, std::vector<std::string> args)
{
    std::vector<char*> argv;
    static std::string prog = "bench";
    argv.push_back(prog.data());
    for (auto& a : args)
        argv.push_back(a.data());
    return cli.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchCli, DefaultsAreSane)
{
    BenchCli cli;
    ASSERT_TRUE(parseArgs(cli, {}));
    EXPECT_EQ(cli.study.analysis.plan.injections, 150u);
    EXPECT_DOUBLE_EQ(cli.study.analysis.plan.confidence, 0.99);
    EXPECT_FALSE(cli.study.analysis.aceOnly);
    EXPECT_FALSE(cli.csv);
    EXPECT_TRUE(cli.study.workloads.empty());
    EXPECT_TRUE(cli.study.gpus.empty());
}

TEST(BenchCli, ParsesAllFlags)
{
    BenchCli cli;
    ASSERT_TRUE(parseArgs(cli, {"--injections=2000", "--confidence=0.95",
                                "--seed=42", "--threads=3",
                                "--workloads=scan,kmeans",
                                "--gpus=gtx480,7970", "--ace-only",
                                "--csv"}));
    EXPECT_EQ(cli.study.analysis.plan.injections, 2000u);
    EXPECT_DOUBLE_EQ(cli.study.analysis.plan.confidence, 0.95);
    EXPECT_EQ(cli.study.analysis.seed, 42u);
    EXPECT_EQ(cli.study.analysis.numThreads, 3u);
    ASSERT_EQ(cli.study.workloads.size(), 2u);
    EXPECT_EQ(cli.study.workloads[0], "scan");
    ASSERT_EQ(cli.study.gpus.size(), 2u);
    EXPECT_EQ(cli.study.gpus[0], GpuModel::GeforceGtx480);
    EXPECT_EQ(cli.study.gpus[1], GpuModel::HdRadeon7970);
    EXPECT_TRUE(cli.study.analysis.aceOnly);
    EXPECT_TRUE(cli.csv);
}

TEST(BenchCli, RejectsBadValues)
{
    BenchCli a;
    EXPECT_FALSE(parseArgs(a, {"--injections=xyz"}));
    BenchCli b;
    EXPECT_FALSE(parseArgs(b, {"--confidence=1.5"}));
    BenchCli c;
    EXPECT_FALSE(parseArgs(c, {"--no-such-flag"}));
    BenchCli d;
    EXPECT_FALSE(parseArgs(d, {"--help"}));
}

TEST(BenchCli, UnknownGpuIsFatal)
{
    BenchCli cli;
    EXPECT_THROW(parseArgs(cli, {"--gpus=riva128"}), FatalError);
}

TEST(BenchCli, HeaderMentionsPlan)
{
    BenchCli cli;
    ASSERT_TRUE(parseArgs(cli, {"--injections=2000"}));
    std::ostringstream os;
    cli.printHeader(os, "Test Title");
    const std::string text = os.str();
    EXPECT_NE(text.find("Test Title"), std::string::npos);
    EXPECT_NE(text.find("2000 injections"), std::string::npos);
    EXPECT_NE(text.find("2.88"), std::string::npos);
}

TEST(BenchCli, AceOnlyHeader)
{
    BenchCli cli;
    ASSERT_TRUE(parseArgs(cli, {"--ace-only"}));
    std::ostringstream os;
    cli.printHeader(os, "T");
    EXPECT_NE(os.str().find("ACE analysis only"), std::string::npos);
}

} // namespace
} // namespace gpr
