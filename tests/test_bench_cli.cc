/** @file Tests for the spec-based bench command-line plumbing. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/bench_cli.hh"

namespace gpr {
namespace {

bool
parseArgs(BenchCli& cli, std::vector<std::string> args)
{
    std::vector<char*> argv;
    // gpr:guarded_by(single-threaded: test main thread only)
    static std::string prog = "bench";
    argv.push_back(prog.data());
    for (auto& a : args)
        argv.push_back(a.data());
    return cli.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchCli, DefaultsAreSane)
{
    BenchCli cli;
    ASSERT_TRUE(parseArgs(cli, {}));
    EXPECT_EQ(cli.spec.plan.injections, 150u);
    EXPECT_DOUBLE_EQ(cli.spec.plan.confidence, 0.99);
    EXPECT_FALSE(cli.spec.aceOnly);
    EXPECT_FALSE(cli.csv);
    EXPECT_FALSE(cli.dryRun);
    EXPECT_FALSE(cli.dumpSpec);
    EXPECT_TRUE(cli.spec.workloads.empty());
    EXPECT_TRUE(cli.spec.gpus.empty());
}

TEST(BenchCli, ParsesAllFlags)
{
    BenchCli cli;
    ASSERT_TRUE(parseArgs(cli, {"--injections=2000", "--confidence=0.95",
                                "--seed=42", "--threads=3",
                                "--workloads=scan,kmeans",
                                "--gpus=gtx480,7970", "--ace-only",
                                "--csv"}));
    EXPECT_EQ(cli.spec.plan.injections, 2000u);
    EXPECT_DOUBLE_EQ(cli.spec.plan.confidence, 0.95);
    EXPECT_EQ(cli.spec.seed, 42u);
    EXPECT_EQ(cli.spec.jobs, 3u);
    ASSERT_EQ(cli.spec.workloads.size(), 2u);
    EXPECT_EQ(cli.spec.workloads[0], "scan");
    ASSERT_EQ(cli.spec.gpus.size(), 2u);
    EXPECT_EQ(cli.spec.gpus[0], GpuModel::GeforceGtx480);
    EXPECT_EQ(cli.spec.gpus[1], GpuModel::HdRadeon7970);
    EXPECT_TRUE(cli.spec.aceOnly);
    EXPECT_TRUE(cli.csv);
}

TEST(BenchCli, ParsesAdaptiveFlags)
{
    BenchCli cli;
    ASSERT_TRUE(parseArgs(cli, {"--margin=0.05", "--confidence=0.9",
                                "--max-injections=300"}));
    EXPECT_TRUE(cli.spec.plan.adaptive());
    EXPECT_DOUBLE_EQ(cli.spec.plan.margin, 0.05);
    EXPECT_DOUBLE_EQ(cli.spec.plan.confidence, 0.9);
    EXPECT_EQ(cli.spec.plan.maxInjections, 300u);
    EXPECT_NO_THROW(cli.spec.validate());

    BenchCli bad;
    EXPECT_FALSE(parseArgs(bad, {"--margin=1.5"}));
    // A cap without a margin parses but fails validation.
    BenchCli capped;
    ASSERT_TRUE(parseArgs(capped, {"--max-injections=300"}));
    EXPECT_THROW(capped.spec.validate(), FatalError);
}

TEST(BenchCli, AdaptiveHeaderAndDryRun)
{
    BenchCli cli;
    ASSERT_TRUE(parseArgs(cli, {"--workloads=vectoradd", "--gpus=fx5600",
                                "--margin=0.08", "--confidence=0.9",
                                "--dry-run"}));
    std::ostringstream header;
    cli.printHeader(header, "T");
    EXPECT_NE(header.str().find("adaptive stopping"), std::string::npos);

    std::ostringstream os;
    EXPECT_TRUE(cli.runMetaActions(os));
    // The plan is the worst case; the note says campaigns stop early.
    EXPECT_NE(os.str().find("adaptive: worst case"), std::string::npos)
        << os.str();
}

TEST(BenchCli, RejectsBadValues)
{
    BenchCli a;
    EXPECT_FALSE(parseArgs(a, {"--injections=xyz"}));
    BenchCli b;
    EXPECT_FALSE(parseArgs(b, {"--confidence=1.5"}));
    BenchCli c;
    EXPECT_FALSE(parseArgs(c, {"--no-such-flag"}));
    BenchCli d;
    EXPECT_FALSE(parseArgs(d, {"--help"}));
}

TEST(BenchCli, UnknownGpuIsFatal)
{
    BenchCli cli;
    EXPECT_THROW(parseArgs(cli, {"--gpus=riva128"}), FatalError);
}

TEST(BenchCli, UnknownWorkloadIsFatal)
{
    // Workload typos fail at parse time with the registered names in
    // the message, not deep inside the study when makeWorkload trips.
    BenchCli cli;
    try {
        parseArgs(cli, {"--workloads=vectorad"});
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("vectoradd"),
                  std::string::npos);
    }
}

TEST(BenchCli, ZeroInjectionPlanIsFatalAtRunTimeUnlessAceOnly)
{
    // Parsing succeeds (harnesses may adjust the spec afterwards, e.g.
    // fig3 flips ace-only); the spec fails validation when acted on.
    BenchCli fi;
    ASSERT_TRUE(parseArgs(fi, {"--injections=0", "--dry-run"}));
    std::ostringstream os;
    EXPECT_THROW(fi.runMetaActions(os), FatalError);
    EXPECT_THROW(fi.spec.validate(), FatalError);

    BenchCli ace;
    ASSERT_TRUE(parseArgs(ace, {"--injections=0", "--ace-only"}));
    EXPECT_NO_THROW(ace.spec.validate());
}

TEST(BenchCli, SpecFlagLoadsBaselineAndLaterFlagsOverride)
{
    const std::string path = testing::TempDir() + "bench_cli_spec.json";
    {
        std::ofstream out(path);
        out << R"({"grid":{"workloads":["scan"],"gpus":["gtx480"]},)"
            << R"("campaign":{"injections":77,"seed":5}})";
    }

    BenchCli plain;
    ASSERT_TRUE(parseArgs(plain, {"--spec=" + path}));
    EXPECT_EQ(plain.spec.plan.injections, 77u);
    EXPECT_EQ(plain.spec.seed, 5u);
    ASSERT_EQ(plain.spec.workloads.size(), 1u);
    EXPECT_EQ(plain.spec.workloads[0], "scan");

    BenchCli overridden;
    ASSERT_TRUE(
        parseArgs(overridden, {"--spec=" + path, "--injections=99"}));
    EXPECT_EQ(overridden.spec.plan.injections, 99u);
    EXPECT_EQ(overridden.spec.seed, 5u);
    std::remove(path.c_str());
}

TEST(BenchCli, DumpSpecRoundTrips)
{
    BenchCli cli;
    ASSERT_TRUE(parseArgs(cli, {"--workloads=scan", "--gpus=7970",
                                "--injections=10", "--dump-spec"}));
    EXPECT_TRUE(cli.dumpSpec);
    std::ostringstream os;
    EXPECT_TRUE(cli.runMetaActions(os));
    const StudySpec back = StudySpec::fromJson(os.str());
    EXPECT_TRUE(back == cli.spec);
}

TEST(BenchCli, DryRunPrintsThePlan)
{
    BenchCli cli;
    ASSERT_TRUE(parseArgs(cli, {"--workloads=vectoradd", "--gpus=fx5600",
                                "--injections=24", "--shards=4",
                                "--dry-run"}));
    std::ostringstream os;
    EXPECT_TRUE(cli.runMetaActions(os));
    const std::string text = os.str();
    // vectoradd on FX 5600: RF + pred + simt + l1d/l1i/l2, 4 shards
    // each.
    EXPECT_NE(text.find("6 campaigns"), std::string::npos) << text;
    EXPECT_NE(text.find("24 shards"), std::string::npos) << text;
    EXPECT_NE(text.find("144 injections"), std::string::npos) << text;
    EXPECT_NE(text.find(cli.spec.campaignHashHex()), std::string::npos);
}

TEST(BenchCli, NoMetaActionByDefault)
{
    BenchCli cli;
    ASSERT_TRUE(parseArgs(cli, {}));
    std::ostringstream os;
    EXPECT_FALSE(cli.runMetaActions(os));
    EXPECT_TRUE(os.str().empty());
}

TEST(BenchCli, HeaderMentionsPlan)
{
    BenchCli cli;
    ASSERT_TRUE(parseArgs(cli, {"--injections=2000"}));
    std::ostringstream os;
    cli.printHeader(os, "Test Title");
    const std::string text = os.str();
    EXPECT_NE(text.find("Test Title"), std::string::npos);
    EXPECT_NE(text.find("2000 injections"), std::string::npos);
    EXPECT_NE(text.find("2.88"), std::string::npos);
}

TEST(BenchCli, AceOnlyHeader)
{
    BenchCli cli;
    ASSERT_TRUE(parseArgs(cli, {"--ace-only"}));
    std::ostringstream os;
    cli.printHeader(os, "T");
    EXPECT_NE(os.str().find("ACE analysis only"), std::string::npos);
}

} // namespace
} // namespace gpr
