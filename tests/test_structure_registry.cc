/**
 * @file
 * Tests for the data-driven target-structure registry: name round trips,
 * per-model bit budgets, exactly-once appearance in exports, loud
 * failure on unregistered ids — plus the pinned pre-refactor regression
 * guaranteeing the original three structures' campaign numbers survived
 * the dissolution of the hard-coded triple bit-for-bit.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "core/export.hh"
#include "core/framework.hh"
#include "reliability/campaign.hh"
#include "sim/gpu.hh"
#include "sim/structure_registry.hh"
#include "workloads/workloads.hh"

namespace gpr {
namespace {

TEST(StructureRegistry, EnumOrderedAndComplete)
{
    const auto& registry = structureRegistry();
    ASSERT_EQ(registry.size(), kNumTargetStructures);
    for (std::size_t i = 0; i < registry.size(); ++i)
        EXPECT_EQ(static_cast<std::size_t>(registry[i].id), i);
}

TEST(StructureRegistry, NamesRoundTripAndAreUnique)
{
    std::set<std::string_view> names;
    for (const StructureSpec& spec : structureRegistry()) {
        EXPECT_EQ(targetStructureFromName(spec.name), spec.id);
        EXPECT_EQ(targetStructureFromName(spec.shortName), spec.id);
        EXPECT_EQ(targetStructureName(spec.id), spec.name);
        EXPECT_TRUE(names.insert(spec.name).second) << spec.name;
        EXPECT_TRUE(names.insert(spec.shortName).second) << spec.shortName;
        EXPECT_TRUE(names.insert(spec.jsonKey).second) << spec.jsonKey;
    }

    TargetStructure out;
    EXPECT_FALSE(tryTargetStructureFromName("no-such-structure", out));
    EXPECT_THROW(targetStructureFromName("no-such-structure"), FatalError);
}

TEST(StructureRegistry, BitBudgetsNonzeroWherePresent)
{
    for (GpuModel model : allGpuModels()) {
        const GpuConfig& cfg = gpuConfig(model);
        const Gpu gpu(cfg);
        for (const StructureSpec& spec : structureRegistry()) {
            const std::uint64_t bits = structureBitsTotal(cfg, spec.id);
            EXPECT_EQ(gpu.structureBits(spec.id), bits) << spec.name;
            // The scalar RF is the only structure a chip may lack.
            if (spec.id == TargetStructure::ScalarRegisterFile &&
                cfg.vendor == Vendor::Nvidia) {
                EXPECT_EQ(bits, 0u) << cfg.name;
            } else {
                EXPECT_GT(bits, 0u) << cfg.name << " " << spec.name;
                EXPECT_GT(structureAceUnitsTotal(cfg, spec.id), 0u)
                    << cfg.name << " " << spec.name;
            }
        }
    }
}

TEST(StructureRegistry, ControlBitGeometryMatchesSpecTable)
{
    const GpuConfig& cfg = gpuConfig(GpuModel::GeforceGtx480);
    EXPECT_EQ(structureSpec(TargetStructure::PredicateFile)
                  .bitsPerSm(cfg),
              std::uint64_t{cfg.maxWarpsPerSm} * kNumPredRegs *
                  cfg.warpWidth);
    EXPECT_EQ(structureSpec(TargetStructure::SimtStack).bitsPerSm(cfg),
              std::uint64_t{cfg.maxWarpsPerSm} *
                  (32 + 2 * std::uint64_t{cfg.warpWidth} +
                   kSimtStackDepth * (1 + 32 + cfg.warpWidth)));
    for (const StructureSpec& spec : structureRegistry()) {
        EXPECT_EQ(spec.exactDeadWindows,
                  spec.kind == StructureKind::WordStorage)
            << spec.name;
    }
}

TEST(StructureRegistry, AceUnitBitWidthsSumToBitBudget)
{
    // Structures with nonuniform ACE units declare per-unit bit widths
    // that must tile the fault space exactly — the weighting that keeps
    // ACE a conservative bound on bit-uniform injection.
    for (GpuModel model : allGpuModels()) {
        const GpuConfig& cfg = gpuConfig(model);
        for (const StructureSpec& spec : structureRegistry()) {
            if (!spec.aceUnitBits)
                continue;
            const auto units =
                static_cast<std::uint32_t>(spec.aceUnitsPerSm(cfg));
            std::uint64_t sum = 0;
            for (std::uint32_t u = 0; u < units; ++u)
                sum += spec.aceUnitBits(cfg, u);
            EXPECT_EQ(sum, spec.bitsPerSm(cfg))
                << cfg.name << " " << spec.name;
        }
    }
}

TEST(StructureRegistry, UnregisteredIdsFailLoudlyEverywhere)
{
    const auto bogus = static_cast<TargetStructure>(250);
    EXPECT_THROW(structureSpec(bogus), FatalError);
    EXPECT_THROW(targetStructureName(bogus), FatalError);

    AceResult ace;
    EXPECT_THROW(ace.forStructure(TargetStructure::VectorRegisterFile),
                 FatalError); // empty result: registry out of sync
    ReliabilityReport report;
    EXPECT_THROW(report.forStructure(TargetStructure::SimtStack),
                 FatalError);
}

/** Every registered structure appears exactly once in the JSON export
 *  and the human-readable summary. */
TEST(StructureRegistry, ExportListsEveryStructureExactlyOnce)
{
    ReliabilityFramework fw(GpuModel::GeforceGtx480);
    AnalysisOptions options;
    options.aceOnly = true;
    const ReliabilityReport r = fw.analyze("reduction", options);

    std::ostringstream json;
    writeReportJson(json, r);
    const std::string jtext = json.str();

    std::ostringstream summary;
    r.printSummary(summary);
    const std::string stext = summary.str();

    auto count = [](const std::string& hay, const std::string& needle) {
        std::size_t n = 0;
        for (auto pos = hay.find(needle); pos != std::string::npos;
             pos = hay.find(needle, pos + needle.size()))
            ++n;
        return n;
    };
    for (const StructureSpec& spec : structureRegistry()) {
        EXPECT_EQ(count(jtext, "\"" + std::string(spec.jsonKey) + "\":{"),
                  1u)
            << spec.jsonKey;
        EXPECT_EQ(count(stext, "  " + std::string(spec.name) + " "), 1u)
            << spec.name;
    }
}

/**
 * Pinned pre-refactor regression: these masked/SDC/DUE counts were
 * captured on the hard-coded three-structure implementation (reduction
 * on the HD Radeon 7970, workload seed 42, campaign seed 0xC0FFEE,
 * 200 injections per structure).  The registry refactor — and any
 * future registry extension — must reproduce them bit-for-bit: the
 * original structures' enum values, bit budgets, sampling and outcome
 * classification are all frozen by this test.
 */
TEST(StructureRegistry, PinnedPreRefactorCampaignCounts)
{
    const GpuConfig& cfg = gpuConfig(GpuModel::HdRadeon7970);
    WorkloadParams params;
    params.seed = 42;
    const WorkloadInstance inst =
        makeWorkload("reduction")->build(cfg.dialect, params);

    struct Pin
    {
        TargetStructure structure;
        std::size_t masked, sdc, due;
    };
    const Pin pins[] = {
        {TargetStructure::VectorRegisterFile, 197, 2, 1},
        {TargetStructure::SharedMemory, 199, 1, 0},
        {TargetStructure::ScalarRegisterFile, 200, 0, 0},
    };

    CampaignConfig cc;
    cc.plan.injections = 200;
    for (const Pin& pin : pins) {
        const CampaignResult r =
            runCampaign(cfg, inst, pin.structure, cc);
        EXPECT_EQ(r.masked, pin.masked)
            << targetStructureName(pin.structure);
        EXPECT_EQ(r.sdc, pin.sdc) << targetStructureName(pin.structure);
        EXPECT_EQ(r.due, pin.due) << targetStructureName(pin.structure);
    }
}

} // namespace
} // namespace gpr
