/**
 * @file
 * Fixture battery for gpr_lint (tools/gpr_lint): one violating snippet
 * per rule D1–D5 asserted to fire, a clean file asserted silent, and
 * the suppression annotations round-tripped.  The fixtures live in
 * tests/lint_fixtures/ and are linted as text — they are never compiled
 * into the build, so they can exhibit the exact patterns the rules ban.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gpr_lint/lint.hh"

namespace {

using gpr_lint::Finding;
using gpr_lint::LintOptions;
using gpr_lint::Rule;

std::string
fixtureSource(const std::string& name)
{
    const std::string path =
        std::string(GPR_LINT_FIXTURE_DIR) + "/" + name;
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing fixture " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::size_t
countRule(const std::vector<Finding>& findings, Rule r)
{
    return static_cast<std::size_t>(
        std::count_if(findings.begin(), findings.end(),
                      [&](const Finding& f) { return f.rule == r; }));
}

/** Lint fixture @p name as if it lived at @p virtualPath. */
std::vector<Finding>
lintFixture(const std::string& name, const std::string& virtualPath,
            const LintOptions& options = {})
{
    return gpr_lint::lintSource(virtualPath, fixtureSource(name),
                                options);
}

TEST(LintRules, D1NondeterminismSourcesFire)
{
    const auto f = lintFixture("d1_violation.cc", "src/core/fixture.cc");
    // random_device, default-seeded engine, rand(), time(), clock read.
    EXPECT_GE(countRule(f, Rule::D1_NondeterminismSource), 5u);
    EXPECT_EQ(f.size(), countRule(f, Rule::D1_NondeterminismSource));
}

TEST(LintRules, D2AddressOrderedContainersFire)
{
    const auto f = lintFixture("d2_violation.cc", "src/core/fixture.cc");
    // Pointer-keyed map + range-for over an unordered_map.
    EXPECT_EQ(countRule(f, Rule::D2_AddressOrderedContainer), 2u);
    EXPECT_EQ(f.size(), 2u);
}

TEST(LintRules, D3RawThreadingFires)
{
    const auto f = lintFixture("d3_violation.cc", "src/core/fixture.cc");
    // std::thread ctor, .detach(), std::async.
    EXPECT_EQ(countRule(f, Rule::D3_RawThread), 3u);
    EXPECT_EQ(f.size(), 3u);
}

TEST(LintRules, D3SilentInsideThreadOwner)
{
    // The same source under the pool's own path is the one sanctioned
    // home for raw threads.
    const auto f = lintFixture("d3_violation.cc",
                               "src/common/worker_pool.cc");
    EXPECT_EQ(countRule(f, Rule::D3_RawThread), 0u);
}

TEST(LintRules, D4UnguardedSharedStateFires)
{
    const auto f = lintFixture("d4_violation.cc", "src/core/fixture.cc");
    // Unguarded mutable member + non-const static object.
    EXPECT_EQ(countRule(f, Rule::D4_UnguardedSharedState), 2u);
    EXPECT_EQ(f.size(), 2u);
}

TEST(LintRules, D5FloatAccumulationFiresInStatsPaths)
{
    const auto f = lintFixture("d5_violation.cc",
                               "src/common/statistics_fixture.cc");
    // Range-for += fold and std::accumulate.
    EXPECT_EQ(countRule(f, Rule::D5_FloatAccumulationOrder), 2u);
    EXPECT_EQ(f.size(), 2u);
}

TEST(LintRules, D5SilentOutsideStatsPaths)
{
    const auto f = lintFixture("d5_violation.cc", "src/sim/fixture.cc");
    EXPECT_EQ(countRule(f, Rule::D5_FloatAccumulationOrder), 0u);
}

TEST(LintRules, CleanFileIsSilent)
{
    // Clean everywhere — including under a statistics path, where the
    // integer fold must not be mistaken for float accumulation.
    EXPECT_TRUE(lintFixture("clean.cc", "src/core/fixture.cc").empty());
    EXPECT_TRUE(
        lintFixture("clean.cc", "src/common/statistics_fixture.cc")
            .empty());
}

TEST(LintSuppression, PerSiteAllowsSilenceEachRule)
{
    // Violating patterns for D1/D2/D3/D4, each carrying its designed
    // suppression (gpr:lint-allow / gpr:guarded_by) — zero findings.
    const auto f = lintFixture("suppressed.cc", "src/core/fixture.cc");
    EXPECT_TRUE(f.empty()) << f.size() << " findings leaked";
}

TEST(LintSuppression, AllowRoundTrip)
{
    // The annotations are load-bearing: strip them and every silenced
    // violation comes back.
    std::string src = fixtureSource("suppressed.cc");
    for (std::string::size_type p;
         (p = src.find("gpr:lint-allow")) != std::string::npos ||
         (p = src.find("gpr:guarded_by")) != std::string::npos;) {
        src.replace(p, 4, "xxx:"); // break the marker, keep the layout
    }
    const auto f = gpr_lint::lintSource("src/core/fixture.cc", src);
    EXPECT_GE(countRule(f, Rule::D1_NondeterminismSource), 1u);
    EXPECT_GE(countRule(f, Rule::D2_AddressOrderedContainer), 1u);
    EXPECT_GE(countRule(f, Rule::D3_RawThread), 1u);
    EXPECT_GE(countRule(f, Rule::D4_UnguardedSharedState), 1u);
}

TEST(LintSuppression, FileLevelAllowIsRuleScoped)
{
    const auto f = lintFixture("file_suppressed_d1.cc",
                               "src/core/fixture.cc");
    // Clock reads are file-whitelisted; the raw thread is not.
    EXPECT_EQ(countRule(f, Rule::D1_NondeterminismSource), 0u);
    EXPECT_EQ(countRule(f, Rule::D3_RawThread), 1u);
}

TEST(LintOptionsTest, RuleMaskDisables)
{
    LintOptions opt;
    opt.enabled = 0;
    EXPECT_TRUE(
        lintFixture("d1_violation.cc", "src/core/fixture.cc", opt)
            .empty());
    opt.enabled = 1u << static_cast<std::uint32_t>(Rule::D3_RawThread);
    const auto f =
        lintFixture("d1_violation.cc", "src/core/fixture.cc", opt);
    EXPECT_TRUE(f.empty());
}

TEST(LintNames, RoundTrip)
{
    for (std::size_t i = 0; i < gpr_lint::kNumRules; ++i) {
        const auto r = static_cast<Rule>(i);
        EXPECT_EQ(gpr_lint::ruleFromName(gpr_lint::ruleName(r)), r);
        EXPECT_FALSE(gpr_lint::ruleSummary(r).empty());
    }
    EXPECT_EQ(gpr_lint::ruleFromName("D9"), Rule::NumRules);
}

TEST(LintRepo, TreeIsCleanUnderDefaultOptions)
{
    // The repository's own sources must stay lint-clean: this is the
    // same sweep the `lint` target and the CI job run.
    const auto files = gpr_lint::expandInputs(
        {std::string(GPR_LINT_FIXTURE_DIR) + "/../../src",
         std::string(GPR_LINT_FIXTURE_DIR) + "/../../tools/gpr_lint"});
    ASSERT_GT(files.size(), 50u);
    std::size_t findings = 0;
    for (const auto& path : files) {
        for (const auto& f : gpr_lint::lintFile(path)) {
            ++findings;
            ADD_FAILURE() << f.file << ":" << f.line << ": ["
                          << gpr_lint::ruleName(f.rule) << "] "
                          << f.message;
        }
    }
    EXPECT_EQ(findings, 0u);
}

} // namespace
