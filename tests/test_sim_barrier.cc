/** @file Barrier semantics: ordering, exited-warp interaction, deadlock. */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "sim_test_util.hh"

namespace gpr {
namespace {

using test::runProgram;
using test::smallCudaConfig;

/**
 * Producer/consumer across warps: warp 0 writes shared slots, all warps
 * barrier, then every warp reads warp 0's data.  Without a working
 * barrier the consumers would read zeroes.
 */
TEST(SimBarrier, OrdersProducerConsumer)
{
    KernelBuilder kb("prodcons", IsaDialect::Cuda);
    const Operand tid = kb.vreg();
    const Operand pout = kb.uniformReg();
    kb.s2r(tid, SpecialReg::TidX);
    kb.ldparam(pout, 0);

    const unsigned p = kb.preg();
    kb.isetp(CmpOp::Lt, p, tid, KernelBuilder::imm(32)); // warp 0 only
    const Operand s_addr = kb.vreg();
    kb.shl(s_addr, tid, KernelBuilder::imm(2));
    const Operand v = kb.vreg();
    kb.imad(v, tid, KernelBuilder::imm(7), KernelBuilder::imm(1));
    kb.sts(s_addr, v, 0, ifP(p));
    kb.bar();

    // Everyone reads slot (tid % 32).
    const Operand r_addr = kb.vreg();
    kb.and_(r_addr, tid, KernelBuilder::imm(31));
    kb.shl(r_addr, r_addr, KernelBuilder::imm(2));
    const Operand got = kb.vreg();
    kb.lds(got, r_addr);

    const Operand o_addr = kb.vreg();
    kb.shl(o_addr, tid, KernelBuilder::imm(2));
    kb.iadd(o_addr, o_addr, pout);
    kb.stg(o_addr, got);
    kb.exit();
    const Program prog = kb.finish(32 * 4);

    MemoryImage img;
    const Buffer out = img.allocBuffer(128);
    LaunchConfig launch;
    launch.blockX = 128; // 4 warps
    launch.gridX = 1;
    launch.addParamAddr(out.byteAddr);

    const RunResult r = runProgram(smallCudaConfig(), prog, launch, img);
    ASSERT_TRUE(r.clean());
    for (std::uint32_t i = 0; i < 128; ++i)
        EXPECT_EQ(r.memory.getWord(out, i), (i % 32) * 7 + 1) << i;
    EXPECT_GE(r.stats.barriersExecuted, 1u);
}

/** A warp that exits before the barrier still lets the block pass it. */
TEST(SimBarrier, ExitedWarpDoesNotBlockBarrier)
{
    KernelBuilder kb("earlyexit", IsaDialect::Cuda);
    const Operand tid = kb.vreg();
    const Operand pout = kb.uniformReg();
    kb.s2r(tid, SpecialReg::TidX);
    kb.ldparam(pout, 0);
    // Warp 1 (tid >= 32) exits immediately.
    const unsigned p = kb.preg();
    kb.isetp(CmpOp::Ge, p, tid, KernelBuilder::imm(32));
    kb.exit(ifP(p));
    // Warp 0 hits a barrier that warp 1 never reaches.
    kb.bar();
    const Operand v = kb.vreg();
    kb.mov(v, KernelBuilder::imm(1));
    const Operand addr = kb.vreg();
    kb.shl(addr, tid, KernelBuilder::imm(2));
    kb.iadd(addr, addr, pout);
    kb.stg(addr, v);
    kb.exit();
    const Program prog = kb.finish();

    MemoryImage img;
    const Buffer out = img.allocBuffer(64);
    LaunchConfig launch;
    launch.blockX = 64; // 2 warps
    launch.gridX = 1;
    launch.addParamAddr(out.byteAddr);

    const RunResult r = runProgram(smallCudaConfig(), prog, launch, img);
    ASSERT_TRUE(r.clean()) << trapKindName(r.trap);
    for (std::uint32_t i = 0; i < 32; ++i)
        EXPECT_EQ(r.memory.getWord(out, i), 1u);
    for (std::uint32_t i = 32; i < 64; ++i)
        EXPECT_EQ(r.memory.getWord(out, i), 0u);
}

/** Several barriers in sequence all synchronise. */
TEST(SimBarrier, MultipleBarrierPhases)
{
    KernelBuilder kb("phases", IsaDialect::Cuda);
    const Operand tid = kb.vreg();
    const Operand pout = kb.uniformReg();
    kb.s2r(tid, SpecialReg::TidX);
    kb.ldparam(pout, 0);
    const Operand s_addr = kb.vreg();
    kb.shl(s_addr, tid, KernelBuilder::imm(2));
    const Operand v = kb.vreg();
    kb.mov(v, KernelBuilder::imm(1));
    kb.sts(s_addr, v);
    // Three ping-pong phases: each phase reads the neighbour and adds.
    for (int phase = 0; phase < 3; ++phase) {
        kb.bar();
        const Operand n_addr = kb.vreg();
        kb.iadd(n_addr, tid, KernelBuilder::imm(1));
        kb.and_(n_addr, n_addr, KernelBuilder::imm(63));
        kb.shl(n_addr, n_addr, KernelBuilder::imm(2));
        const Operand nv = kb.vreg();
        kb.lds(nv, n_addr);
        kb.bar();
        kb.iadd(v, v, nv);
        kb.sts(s_addr, v);
    }
    kb.bar();
    const Operand got = kb.vreg();
    kb.lds(got, s_addr);
    const Operand o_addr = kb.vreg();
    kb.shl(o_addr, tid, KernelBuilder::imm(2));
    kb.iadd(o_addr, o_addr, pout);
    kb.stg(o_addr, got);
    kb.exit();
    const Program prog = kb.finish(64 * 4);

    MemoryImage img;
    const Buffer out = img.allocBuffer(64);
    LaunchConfig launch;
    launch.blockX = 64;
    launch.gridX = 1;
    launch.addParamAddr(out.byteAddr);

    const RunResult r = runProgram(smallCudaConfig(), prog, launch, img);
    ASSERT_TRUE(r.clean());
    // Phase sums: 1 -> 2 -> 4 -> 8 for every lane (uniform neighbours).
    for (std::uint32_t i = 0; i < 64; ++i)
        EXPECT_EQ(r.memory.getWord(out, i), 8u);
    EXPECT_GE(r.stats.barriersExecuted, 7u);
}

} // namespace
} // namespace gpr
