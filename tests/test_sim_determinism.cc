/** @file Bit-level reproducibility of simulations — a prerequisite for
 *  statistical fault injection. */

#include <gtest/gtest.h>

#include "sim_test_util.hh"
#include "workloads/workloads.hh"

namespace gpr {
namespace {

TEST(SimDeterminism, RepeatedRunsAreIdentical)
{
    const GpuConfig cfg = test::smallCudaConfig();
    const auto wl = makeWorkload("reduction");
    const WorkloadInstance inst = wl->build(cfg.dialect, {});

    Gpu gpu(cfg);
    const RunResult a = gpu.run(inst.program, inst.launch, inst.image);
    const RunResult b = gpu.run(inst.program, inst.launch, inst.image);
    ASSERT_TRUE(a.clean());
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.warpInstructions, b.stats.warpInstructions);
    EXPECT_EQ(a.stats.globalTransactions, b.stats.globalTransactions);
    for (std::uint32_t i = 0; i < a.memory.sizeWords(); ++i)
        ASSERT_EQ(a.memory.readWord(i * 4), b.memory.readWord(i * 4));
}

TEST(SimDeterminism, FreshDeviceMatchesReusedDevice)
{
    const GpuConfig cfg = test::smallCudaConfig();
    const auto wl = makeWorkload("scan");
    const WorkloadInstance inst = wl->build(cfg.dialect, {});

    Gpu reused(cfg);
    reused.run(inst.program, inst.launch, inst.image); // warm it up
    const RunResult warm = reused.run(inst.program, inst.launch,
                                      inst.image);

    Gpu fresh(cfg);
    const RunResult cold = fresh.run(inst.program, inst.launch,
                                     inst.image);
    EXPECT_EQ(warm.stats.cycles, cold.stats.cycles);
    EXPECT_EQ(warm.stats.warpInstructions, cold.stats.warpInstructions);
}

TEST(SimDeterminism, FaultyRunsAreReproducible)
{
    const GpuConfig cfg = test::smallCudaConfig();
    const auto wl = makeWorkload("vectoradd");
    const WorkloadInstance inst = wl->build(cfg.dialect, {});

    RunOptions options;
    FaultSpec fault;
    fault.structure = TargetStructure::VectorRegisterFile;
    fault.bitIndex = 12345;
    fault.cycle = 100;
    options.fault = fault;

    Gpu gpu(cfg);
    const RunResult a =
        gpu.run(inst.program, inst.launch, inst.image, options);
    const RunResult b =
        gpu.run(inst.program, inst.launch, inst.image, options);
    EXPECT_EQ(a.trap, b.trap);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    for (std::uint32_t i = 0; i < a.memory.sizeWords(); ++i)
        ASSERT_EQ(a.memory.readWord(i * 4), b.memory.readWord(i * 4));
}

TEST(SimDeterminism, BothSchedulersAreDeterministic)
{
    for (SchedulerKind sched : {SchedulerKind::RoundRobin,
                                SchedulerKind::GreedyThenOldest}) {
        GpuConfig cfg = test::smallCudaConfig();
        cfg.scheduler = sched;
        const auto wl = makeWorkload("histogram");
        const WorkloadInstance inst = wl->build(cfg.dialect, {});
        Gpu gpu(cfg);
        const RunResult a = gpu.run(inst.program, inst.launch, inst.image);
        const RunResult b = gpu.run(inst.program, inst.launch, inst.image);
        ASSERT_TRUE(a.clean());
        EXPECT_EQ(a.stats.cycles, b.stats.cycles);
        std::string why;
        EXPECT_TRUE(verifyOutputs(inst, a.memory, &why)) << why;
        EXPECT_TRUE(verifyOutputs(inst, b.memory, &why)) << why;
    }
}

TEST(SimDeterminism, SchedulersDifferButBothVerify)
{
    GpuConfig rr = test::smallCudaConfig();
    rr.scheduler = SchedulerKind::RoundRobin;
    GpuConfig gto = test::smallCudaConfig();
    gto.scheduler = SchedulerKind::GreedyThenOldest;

    const auto wl = makeWorkload("matrixMul");
    const WorkloadInstance inst = wl->build(rr.dialect, {});

    Gpu a(rr), b(gto);
    const RunResult ra = a.run(inst.program, inst.launch, inst.image);
    const RunResult rb = b.run(inst.program, inst.launch, inst.image);
    ASSERT_TRUE(ra.clean());
    ASSERT_TRUE(rb.clean());
    std::string why;
    EXPECT_TRUE(verifyOutputs(inst, ra.memory, &why)) << why;
    EXPECT_TRUE(verifyOutputs(inst, rb.memory, &why)) << why;
    // The timing (not the functional result) is policy-dependent; the
    // two policies genuinely schedule differently on this kernel.
    EXPECT_NE(ra.stats.cycles, rb.stats.cycles);
}

} // namespace
} // namespace gpr
