/** @file Parameterized tests for the functional ALU semantics. */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/bitutils.hh"
#include "common/logging.hh"
#include "sim/alu.hh"

namespace gpr {
namespace {

Word
f(float v)
{
    return floatBits(v);
}

struct AluCase
{
    const char* label;
    Opcode op;
    Word a, b, c;
    Word expected;
};

class AluEval : public ::testing::TestWithParam<AluCase>
{
};

TEST_P(AluEval, MatchesExpected)
{
    const AluCase& tc = GetParam();
    EXPECT_EQ(evalAlu(tc.op, tc.a, tc.b, tc.c), tc.expected) << tc.label;
}

const AluCase alu_cases[] = {
    {"mov", Opcode::Mov, 0xdeadbeef, 0, 0, 0xdeadbeef},
    {"iadd", Opcode::IAdd, 2, 3, 0, 5},
    {"iadd_wrap", Opcode::IAdd, 0xffffffff, 1, 0, 0},
    {"isub", Opcode::ISub, 3, 5, 0, static_cast<Word>(-2)},
    {"imul", Opcode::IMul, 7, 6, 0, 42},
    {"imul_low32", Opcode::IMul, 0x10000, 0x10000, 0, 0},
    {"imad", Opcode::IMad, 3, 4, 5, 17},
    {"imin_signed", Opcode::IMin, static_cast<Word>(-5), 3, 0,
     static_cast<Word>(-5)},
    {"imax_signed", Opcode::IMax, static_cast<Word>(-5), 3, 0, 3},
    {"and", Opcode::And, 0xff00ff00, 0x0ff00ff0, 0, 0x0f000f00},
    {"or", Opcode::Or, 0xf0, 0x0f, 0, 0xff},
    {"xor", Opcode::Xor, 0xff, 0x0f, 0, 0xf0},
    {"not", Opcode::Not, 0, 0, 0, 0xffffffff},
    {"shl", Opcode::Shl, 1, 5, 0, 32},
    {"shl_mask", Opcode::Shl, 1, 32, 0, 1}, // shift masked to 5 bits
    {"shr_logical", Opcode::Shr, 0x80000000, 4, 0, 0x08000000},
    {"shra_arith", Opcode::Shra, 0x80000000, 4, 0, 0xf8000000},
    {"fadd", Opcode::FAdd, f(1.5f), f(2.25f), 0, f(3.75f)},
    {"fsub", Opcode::FSub, f(1.0f), f(3.0f), 0, f(-2.0f)},
    {"fmul", Opcode::FMul, f(3.0f), f(-2.0f), 0, f(-6.0f)},
    {"fmin", Opcode::FMin, f(1.0f), f(-2.0f), 0, f(-2.0f)},
    {"fmax", Opcode::FMax, f(1.0f), f(-2.0f), 0, f(1.0f)},
    {"frcp", Opcode::FRcp, f(4.0f), 0, 0, f(0.25f)},
    {"fsqrt", Opcode::FSqrt, f(9.0f), 0, 0, f(3.0f)},
    {"fexp2", Opcode::FExp2, f(3.0f), 0, 0, f(8.0f)},
    {"fabs", Opcode::FAbs, f(-2.5f), 0, 0, f(2.5f)},
    {"fneg", Opcode::FNeg, f(2.5f), 0, 0, f(-2.5f)},
    {"fneg_zero", Opcode::FNeg, f(0.0f), 0, 0, f(-0.0f)},
    {"fdiv", Opcode::FDiv, f(7.0f), f(2.0f), 0, f(3.5f)},
    {"f2i_trunc", Opcode::F2i, f(2.9f), 0, 0, 2},
    {"f2i_trunc_neg", Opcode::F2i, f(-2.9f), 0, 0, static_cast<Word>(-2)},
    {"f2i_nan", Opcode::F2i, 0x7fc00000, 0, 0, 0},
    {"f2i_sat_hi", Opcode::F2i, f(1e20f), 0, 0, 0x7fffffff},
    {"f2i_sat_lo", Opcode::F2i, f(-1e20f), 0, 0, 0x80000000},
    {"i2f", Opcode::I2f, static_cast<Word>(-3), 0, 0, f(-3.0f)},
};

INSTANTIATE_TEST_SUITE_P(AllOps, AluEval, ::testing::ValuesIn(alu_cases),
                         [](const auto& info) {
                             return std::string(info.param.label);
                         });

TEST(Alu, FfmaIsFused)
{
    // FFMA must match std::fma bit-for-bit (single rounding).
    const float a = 1.0000001f, b = 1.0000001f, c = -1.0000002f;
    EXPECT_EQ(evalAlu(Opcode::FFma, f(a), f(b), f(c)),
              f(std::fma(a, b, c)));
}

TEST(Alu, NonAluOpcodePanics)
{
    EXPECT_THROW(evalAlu(Opcode::Bra, 0, 0, 0), PanicError);
    EXPECT_THROW(evalAlu(Opcode::Ldg, 0, 0, 0), PanicError);
}

TEST(AluCmp, IntComparisons)
{
    EXPECT_TRUE(evalCmpInt(CmpOp::Eq, 5, 5));
    EXPECT_FALSE(evalCmpInt(CmpOp::Ne, 5, 5));
    EXPECT_TRUE(evalCmpInt(CmpOp::Lt, static_cast<Word>(-1), 0)); // signed
    EXPECT_FALSE(evalCmpInt(CmpOp::Gt, static_cast<Word>(-1), 0));
    EXPECT_TRUE(evalCmpInt(CmpOp::Le, 3, 3));
    EXPECT_TRUE(evalCmpInt(CmpOp::Ge, 4, 3));
}

TEST(AluCmp, FloatComparisons)
{
    EXPECT_TRUE(evalCmpFloat(CmpOp::Lt, f(1.0f), f(2.0f)));
    EXPECT_TRUE(evalCmpFloat(CmpOp::Eq, f(-0.0f), f(0.0f))); // IEEE
    const Word nan = 0x7fc00000;
    // NaN: all ordered comparisons false, NE true.
    EXPECT_FALSE(evalCmpFloat(CmpOp::Eq, nan, nan));
    EXPECT_FALSE(evalCmpFloat(CmpOp::Lt, nan, f(1.0f)));
    EXPECT_FALSE(evalCmpFloat(CmpOp::Ge, nan, f(1.0f)));
    EXPECT_TRUE(evalCmpFloat(CmpOp::Ne, nan, nan));
}

TEST(Alu, DivisionSpecialCases)
{
    EXPECT_EQ(evalAlu(Opcode::FDiv, f(1.0f), f(0.0f), 0),
              f(std::numeric_limits<float>::infinity()));
    EXPECT_EQ(evalAlu(Opcode::FRcp, f(0.0f), 0, 0),
              f(std::numeric_limits<float>::infinity()));
}

} // namespace
} // namespace gpr
