/** @file Tests for the FIT / EIT / EPF algebra. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "reliability/fit_epf.hh"

namespace gpr {
namespace {

TEST(Fit, StructureFitScalesLinearly)
{
    FitParams params;
    params.rawFitPerMbit = 1000.0;
    const double base = structureFit(1024 * 1024, 0.5, params);
    EXPECT_DOUBLE_EQ(base, 500.0); // 1 Mbit * 1000 FIT/Mbit * 0.5

    // Linear in size and in AVF.
    EXPECT_DOUBLE_EQ(structureFit(2 * 1024 * 1024, 0.5, params),
                     2 * base);
    EXPECT_DOUBLE_EQ(structureFit(1024 * 1024, 0.25, params), base / 2);
    EXPECT_DOUBLE_EQ(structureFit(1024 * 1024, 0.0, params), 0.0);
}

TEST(Fit, RejectsNonProbabilityAvf)
{
    EXPECT_THROW(structureFit(1024, 1.5), PanicError);
    EXPECT_THROW(structureFit(1024, -0.1), PanicError);
}

TEST(Eit, ExecutionTimeFromClock)
{
    const GpuConfig& fermi = gpuConfig(GpuModel::GeforceGtx480);
    // 1401 MHz: 1401e6 cycles take exactly one second.
    EXPECT_NEAR(executionSeconds(fermi, 1401000000ull), 1.0, 1e-9);
    // Executions in 1e9 hours = 3.6e12 s / t.
    EXPECT_NEAR(executionsInTime(1.0), 3.6e12, 1.0);
    EXPECT_NEAR(executionsInTime(1e-6), 3.6e18, 1e7);
}

TEST(Epf, CombinesStructures)
{
    const GpuConfig& fermi = gpuConfig(GpuModel::GeforceGtx480);
    const EpfResult r = computeEpf(fermi, 1401000, 0.2, 0.1);

    // RF: 15 SMs x 128 KB = 15 Mbit; FIT = 15360 KB*8/1Mbit... check via
    // the helper itself for consistency.
    EXPECT_DOUBLE_EQ(r.fitRegisterFile,
                     structureFit(fermi.totalRegFileBits(), 0.2));
    EXPECT_DOUBLE_EQ(r.fitLocalMemory,
                     structureFit(fermi.totalSmemBits(), 0.1));
    EXPECT_EQ(r.fitScalarRegisterFile, 0.0); // NVIDIA: no scalar RF
    EXPECT_DOUBLE_EQ(r.fitTotal(),
                     r.fitRegisterFile + r.fitLocalMemory);

    // 1401000 cycles @ 1401 MHz = 1 ms => EIT = 3.6e15.
    EXPECT_NEAR(r.execSeconds, 1e-3, 1e-12);
    EXPECT_NEAR(r.eit, 3.6e15, 1e6);
    EXPECT_NEAR(r.epf(), r.eit / r.fitTotal(), 1e-3);
}

TEST(Epf, ScalarFileCountsOnAmd)
{
    const GpuConfig& tahiti = gpuConfig(GpuModel::HdRadeon7970);
    const EpfResult r = computeEpf(tahiti, 925000, 0.1, 0.1, 0.3);
    EXPECT_GT(r.fitScalarRegisterFile, 0.0);
    EXPECT_DOUBLE_EQ(r.fitScalarRegisterFile,
                     structureFit(tahiti.totalScalarRegBits(), 0.3));
}

TEST(Epf, ZeroAvfMeansInfiniteEpfGuard)
{
    const GpuConfig& fermi = gpuConfig(GpuModel::GeforceGtx480);
    const EpfResult r = computeEpf(fermi, 1000, 0.0, 0.0);
    EXPECT_EQ(r.fitTotal(), 0.0);
    EXPECT_EQ(r.epf(), 0.0); // guarded, not a division by zero
}

TEST(Epf, PaperMagnitudeRange)
{
    // Representative numbers: ~5k-cycle kernels with AVFs of a few
    // percent land inside the paper's 1e12..1e16 EPF band.
    for (GpuModel m : allGpuModels()) {
        const GpuConfig& cfg = gpuConfig(m);
        const EpfResult r = computeEpf(cfg, 5000, 0.10, 0.02, 0.05);
        EXPECT_GT(r.epf(), 1e12) << cfg.name;
        EXPECT_LT(r.epf(), 1e17) << cfg.name;
    }
}

TEST(Epf, FasterChipHigherEitAtFixedCycles)
{
    const EpfResult slow =
        computeEpf(gpuConfig(GpuModel::HdRadeon7970), 10000, 0.1, 0.1);
    const EpfResult fast =
        computeEpf(gpuConfig(GpuModel::GeforceGtx480), 10000, 0.1, 0.1);
    // 1401 MHz vs 925 MHz at equal cycle count.
    EXPECT_GT(fast.eit, slow.eit);
}

} // namespace
} // namespace gpr
