/** @file Tests for vulnerability breakdowns and access profiling. */

#include <gtest/gtest.h>

#include "reliability/access_profile.hh"
#include "reliability/breakdown.hh"
#include "sim_test_util.hh"
#include "workloads/workloads.hh"

namespace gpr {
namespace {

TEST(Breakdown, BucketsPartitionTheCampaign)
{
    const GpuConfig cfg = test::smallCudaConfig();
    const auto wl = makeWorkload("vectoradd");
    const WorkloadInstance inst = wl->build(cfg.dialect, {});
    CampaignConfig cc;
    cc.plan.injections = 120;
    const VulnerabilityBreakdown bd = runBreakdownCampaign(
        cfg, inst, TargetStructure::VectorRegisterFile, cc);

    EXPECT_EQ(bd.overall.total(), 120u);

    std::uint32_t bit_total = 0;
    for (const auto& b : bd.byBit)
        bit_total += b.total();
    EXPECT_EQ(bit_total, 120u);

    std::uint32_t time_total = 0;
    for (const auto& b : bd.byTime)
        time_total += b.total();
    EXPECT_EQ(time_total, 120u);
}

TEST(Breakdown, RequiresRecords)
{
    CampaignResult campaign;
    campaign.injections = 10; // but no records kept
    EXPECT_THROW(computeBreakdown(campaign, 100), FatalError);
}

TEST(Breakdown, SyntheticRecordsBucketCorrectly)
{
    CampaignResult campaign;
    campaign.injections = 3;
    InjectionResult a;
    a.fault.bitIndex = 5;      // bit 5
    a.fault.cycle = 0;         // first decile
    a.outcome = FaultOutcome::Sdc;
    InjectionResult b;
    b.fault.bitIndex = 32 + 5; // also bit 5, next word
    b.fault.cycle = 99;        // last decile of 100 cycles
    b.outcome = FaultOutcome::Masked;
    InjectionResult c;
    c.fault.bitIndex = 31;
    c.fault.cycle = 55;
    c.outcome = FaultOutcome::Due;
    campaign.records = {a, b, c};

    const VulnerabilityBreakdown bd = computeBreakdown(campaign, 100);
    EXPECT_EQ(bd.byBit[5].sdc, 1u);
    EXPECT_EQ(bd.byBit[5].masked, 1u);
    EXPECT_EQ(bd.byBit[31].due, 1u);
    EXPECT_EQ(bd.byTime[0].sdc, 1u);
    EXPECT_EQ(bd.byTime[9].masked, 1u);
    EXPECT_EQ(bd.byTime[5].due, 1u);
    EXPECT_NEAR(bd.overall.avf(), 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(bd.avfBitRange(0, 7), 0.5, 1e-12);
    EXPECT_NEAR(bd.avfBitRange(31, 31), 1.0, 1e-12);
}

TEST(AccessProfile, CountsMatchKernelShape)
{
    const GpuConfig cfg = test::smallCudaConfig();
    const auto wl = makeWorkload("reduction");
    const WorkloadInstance inst = wl->build(cfg.dialect, {});
    const AccessProfileResult p = profileAccesses(cfg, inst);

    const AccessSummary& rf =
        p.forStructure(TargetStructure::VectorRegisterFile);
    const AccessSummary& lm =
        p.forStructure(TargetStructure::SharedMemory);

    // The kernel reads and writes registers and shared memory.
    EXPECT_GT(rf.reads, 0u);
    EXPECT_GT(rf.writes, 0u);
    EXPECT_GT(rf.touchedWords, 0u);
    EXPECT_LE(rf.touchedFraction(), 1.0);

    EXPECT_GT(lm.reads, 0u);
    EXPECT_GT(lm.writes, 0u);

    // Control-state traffic is profiled too: the SIMT PC/mask unit is
    // read every issue, and reduction's guarded branches touch preds.
    EXPECT_GT(p.forStructure(TargetStructure::SimtStack).reads, 0u);
    EXPECT_GT(p.forStructure(TargetStructure::PredicateFile).writes, 0u);

    // Traffic concentration is a valid share.
    EXPECT_GE(rf.top10Share, 0.0);
    EXPECT_LE(rf.top10Share, 1.0);
    EXPECT_GT(rf.readsPerWrite(), 0.0);
}

TEST(AccessProfile, ReductionTreeConcentratesSharedTraffic)
{
    // In a tree reduction, low shared slots are touched log(n) times
    // while high slots are touched once or twice: traffic must be more
    // concentrated than perfectly even.
    const GpuConfig cfg = test::smallCudaConfig();
    const auto wl = makeWorkload("reduction");
    const WorkloadInstance inst = wl->build(cfg.dialect, {});
    const AccessProfileResult p = profileAccesses(cfg, inst);
    EXPECT_GT(p.forStructure(TargetStructure::SharedMemory).top10Share,
              0.12);
}

TEST(AccessProfile, NoSharedTrafficWithoutLocalMemory)
{
    const GpuConfig cfg = test::smallCudaConfig();
    const auto wl = makeWorkload("gaussian");
    const WorkloadInstance inst = wl->build(cfg.dialect, {});
    const AccessProfileResult p = profileAccesses(cfg, inst);
    const AccessSummary& lm =
        p.forStructure(TargetStructure::SharedMemory);
    EXPECT_EQ(lm.reads + lm.writes, 0u);
    EXPECT_EQ(lm.touchedWords, 0u);
}

} // namespace
} // namespace gpr
