/** @file Shared helpers for simulator tests: small configs, run wrappers. */

#ifndef GPR_TESTS_SIM_TEST_UTIL_HH
#define GPR_TESTS_SIM_TEST_UTIL_HH

#include "arch/gpu_config.hh"
#include "sim/gpu.hh"

namespace gpr {
namespace test {

/** A shrunken Fermi-class device: fast to construct/reset in tests. */
inline GpuConfig
smallCudaConfig()
{
    GpuConfig cfg = gpuConfig(GpuModel::GeforceGtx480);
    cfg.name = "test-fermi-2sm";
    cfg.numSms = 2;
    return cfg;
}

/** A shrunken Southern-Islands device. */
inline GpuConfig
smallSiConfig()
{
    GpuConfig cfg = gpuConfig(GpuModel::HdRadeon7970);
    cfg.name = "test-tahiti-2cu";
    cfg.numSms = 2;
    return cfg;
}

inline RunResult
runProgram(const GpuConfig& cfg, const Program& prog,
           const LaunchConfig& launch, MemoryImage image,
           const RunOptions& options = {})
{
    Gpu gpu(cfg);
    return gpu.run(prog, launch, std::move(image), options);
}

} // namespace test
} // namespace gpr

#endif // GPR_TESTS_SIM_TEST_UTIL_HH
