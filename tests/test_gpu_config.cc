/** @file Tests for the four chip configuration records. */

#include <gtest/gtest.h>

#include "arch/gpu_config.hh"
#include "common/logging.hh"

namespace gpr {
namespace {

TEST(GpuConfig, FourModelsInFigureOrder)
{
    const auto& models = allGpuModels();
    ASSERT_EQ(models.size(), 4u);
    EXPECT_EQ(models[0], GpuModel::HdRadeon7970);
    EXPECT_EQ(models[1], GpuModel::QuadroFx5600);
    EXPECT_EQ(models[2], GpuModel::QuadroFx5800);
    EXPECT_EQ(models[3], GpuModel::GeforceGtx480);
}

TEST(GpuConfig, DialectMatchesVendor)
{
    for (GpuModel m : allGpuModels()) {
        const GpuConfig& c = gpuConfig(m);
        if (c.vendor == Vendor::Amd) {
            EXPECT_EQ(c.dialect, IsaDialect::SouthernIslands);
            EXPECT_EQ(c.warpWidth, 64u);
            EXPECT_GT(c.scalarRegWordsPerSm, 0u);
        } else {
            EXPECT_EQ(c.dialect, IsaDialect::Cuda);
            EXPECT_EQ(c.warpWidth, 32u);
            EXPECT_EQ(c.scalarRegWordsPerSm, 0u);
        }
        EXPECT_EQ(c.warpWidth, dialectWarpWidth(c.dialect));
    }
}

TEST(GpuConfig, DatasheetNumbers)
{
    const GpuConfig& g80 = gpuConfig(GpuModel::QuadroFx5600);
    EXPECT_EQ(g80.numSms, 16u);
    EXPECT_EQ(g80.regFileWordsPerSm, 8192u);   // 32 KB
    EXPECT_EQ(g80.smemBytesPerSm, 16u * 1024);
    EXPECT_EQ(g80.maxWarpsPerSm, 24u);         // 768 threads

    const GpuConfig& gt200 = gpuConfig(GpuModel::QuadroFx5800);
    EXPECT_EQ(gt200.numSms, 30u);
    EXPECT_EQ(gt200.regFileWordsPerSm, 16384u); // 64 KB

    const GpuConfig& fermi = gpuConfig(GpuModel::GeforceGtx480);
    EXPECT_EQ(fermi.numSms, 15u);
    EXPECT_EQ(fermi.regFileWordsPerSm, 32768u); // 128 KB
    EXPECT_EQ(fermi.smemBytesPerSm, 48u * 1024);
    EXPECT_EQ(fermi.scheduler, SchedulerKind::GreedyThenOldest);

    const GpuConfig& tahiti = gpuConfig(GpuModel::HdRadeon7970);
    EXPECT_EQ(tahiti.numSms, 32u);
    EXPECT_EQ(tahiti.regFileWordsPerSm, 65536u); // 256 KB
    EXPECT_EQ(tahiti.smemBytesPerSm, 64u * 1024);
}

TEST(GpuConfig, RegisterFileGrowsAcrossGenerations)
{
    // G80 < GT200 < Fermi per-SM register file (the paper's size axis).
    EXPECT_LT(gpuConfig(GpuModel::QuadroFx5600).regFileWordsPerSm,
              gpuConfig(GpuModel::QuadroFx5800).regFileWordsPerSm);
    EXPECT_LT(gpuConfig(GpuModel::QuadroFx5800).regFileWordsPerSm,
              gpuConfig(GpuModel::GeforceGtx480).regFileWordsPerSm);
}

TEST(GpuConfig, DerivedBitCounts)
{
    const GpuConfig& fermi = gpuConfig(GpuModel::GeforceGtx480);
    EXPECT_EQ(fermi.totalRegFileBits(),
              15ull * 32768 * 32); // 15 SMs x 128 KB
    EXPECT_EQ(fermi.totalSmemBits(), 15ull * 48 * 1024 * 8);
    EXPECT_EQ(fermi.totalScalarRegBits(), 0ull);
    EXPECT_EQ(fermi.smemWordsPerSm(), 48u * 1024 / 4);

    const GpuConfig& tahiti = gpuConfig(GpuModel::HdRadeon7970);
    EXPECT_GT(tahiti.totalScalarRegBits(), 0ull);
}

TEST(GpuConfig, SaneTimingParameters)
{
    for (GpuModel m : allGpuModels()) {
        const GpuConfig& c = gpuConfig(m);
        EXPECT_GT(c.clockMhz, 100.0);
        EXPECT_GT(c.issueWidth, 0u);
        EXPECT_GT(c.warpIssueInterval, 0u);
        EXPECT_GT(c.latency.global, c.latency.shared);
        EXPECT_GT(c.latency.shared, 0u);
        EXPECT_GE(c.watchdogFactor, 2.0);
        EXPECT_GT(c.maxThreadsPerBlock, 0u);
    }
}

TEST(GpuConfig, NameLookup)
{
    EXPECT_EQ(gpuModelFromName("GTX480"), GpuModel::GeforceGtx480);
    EXPECT_EQ(gpuModelFromName("fermi"), GpuModel::GeforceGtx480);
    EXPECT_EQ(gpuModelFromName("7970"), GpuModel::HdRadeon7970);
    EXPECT_EQ(gpuModelFromName("Quadro FX 5600"), GpuModel::QuadroFx5600);
    EXPECT_EQ(gpuModelFromName("gt200"), GpuModel::QuadroFx5800);
    EXPECT_THROW(gpuModelFromName("voodoo2"), FatalError);
}

} // namespace
} // namespace gpr
