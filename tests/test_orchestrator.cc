/** @file Tests for the sharded study orchestrator. */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/statistics.hh"
#include "core/export.hh"
#include "core/orchestrator.hh"
#include "reliability/campaign.hh"
#include "workloads/workloads.hh"

namespace gpr {
namespace {

StudyOptions
miniStudy(std::size_t injections = 24)
{
    StudyOptions s;
    s.workloads = {"vectoradd", "reduction"};
    s.gpus = {GpuModel::QuadroFx5600};
    s.analysis.plan.injections = injections;
    s.verbose = false;
    return s;
}

std::string
tempStorePath(const char* name)
{
    return testing::TempDir() + "gpr_orchestrator_" + name + ".jsonl";
}

std::vector<std::string>
storeLines(const std::string& path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            lines.push_back(line);
    return lines;
}

void
expectIdenticalReports(const StudyResult& a, const StudyResult& b)
{
    ASSERT_EQ(a.reports.size(), b.reports.size());
    for (std::size_t i = 0; i < a.reports.size(); ++i) {
        const ReliabilityReport& ra = a.reports[i];
        const ReliabilityReport& rb = b.reports[i];
        EXPECT_EQ(ra.workload, rb.workload);
        EXPECT_EQ(ra.gpuName, rb.gpuName);
        EXPECT_EQ(ra.cycles, rb.cycles);
        auto same_structure = [](const StructureReport& sa,
                                 const StructureReport& sb) {
            EXPECT_EQ(sa.applicable, sb.applicable);
            EXPECT_EQ(sa.avfFi, sb.avfFi);
            EXPECT_EQ(sa.sdcRate, sb.sdcRate);
            EXPECT_EQ(sa.dueRate, sb.dueRate);
            EXPECT_EQ(sa.avfAce, sb.avfAce);
            EXPECT_EQ(sa.injections, sb.injections);
        };
        ASSERT_EQ(ra.structures.size(), rb.structures.size());
        for (std::size_t k = 0; k < ra.structures.size(); ++k)
            same_structure(ra.structures[k], rb.structures[k]);
        EXPECT_EQ(ra.epf.epf(), rb.epf.epf());
        EXPECT_EQ(ra.epf.fitTotal(), rb.epf.fitTotal());
    }
}

TEST(Decomposition, PartitionsEveryCampaignPlan)
{
    const StudyOptions study = miniStudy(24);
    const std::vector<ShardKey> shards = decomposeStudy(study, 4);

    // vectoradd: RF + the two control targets + the three caches;
    // reduction adds LDS.  FX 5600 has no scalar RF.  13 campaigns x
    // 4 shards.
    ASSERT_EQ(shards.size(), 52u);

    std::map<std::pair<std::string, TargetStructure>, std::uint64_t> next;
    for (const ShardKey& key : shards) {
        EXPECT_EQ(key.gpu, GpuModel::QuadroFx5600);
        EXPECT_EQ(key.campaignSeed,
                  deriveSeed(study.analysis.seed,
                             static_cast<std::uint64_t>(key.structure)));
        EXPECT_EQ(key.workloadSeed, study.analysis.workloadSeed);
        // Shards of one campaign tile [0, injections) contiguously.
        auto& expected_begin = next[{key.workload, key.structure}];
        EXPECT_EQ(key.injectionBegin, expected_begin);
        EXPECT_LT(key.injectionBegin, key.injectionEnd);
        expected_begin = key.injectionEnd;
    }
    for (const auto& [campaign, end] : next)
        EXPECT_EQ(end, 24u) << campaign.first;
    EXPECT_EQ(next.size(), 13u);
}

TEST(Decomposition, DefaultShardCountIndependentOfJobs)
{
    SamplePlan plan;
    plan.injections = 2000;
    EXPECT_EQ(defaultShardCount(plan), 8u); // 2000 / 250
    plan.injections = 10;
    EXPECT_EQ(defaultShardCount(plan), 1u);
    plan.injections = 0;
    EXPECT_EQ(defaultShardCount(plan), 0u);
    plan.injections = 1000000;
    EXPECT_EQ(defaultShardCount(plan), 64u); // capped
}

TEST(Orchestrator, JobsAndShardsDoNotChangeResults)
{
    const StudyOptions study = miniStudy();

    OrchestratorOptions serial;
    serial.jobs = 1;
    serial.shardsPerCampaign = 1;
    const StudyResult a = runStudy(study, serial);

    OrchestratorOptions wide;
    wide.jobs = 8;
    wide.shardsPerCampaign = 8;
    const StudyResult b = runStudy(study, wide);

    expectIdenticalReports(a, b);
    // And the public entry point (auto jobs/shards) agrees too.
    const StudyResult c = runComparisonStudy(study);
    expectIdenticalReports(a, c);
}

TEST(Orchestrator, DuplicateGridEntriesShareOneCell)
{
    // Listing the same (workload, GPU) twice must not split or double
    // its shard counts: duplicates share one canonical cell and both
    // grid positions report the single-entry result.
    StudyOptions study = miniStudy();
    study.workloads = {"vectoradd", "vectoradd"};
    OrchestratorOptions orch;
    orch.jobs = 2;
    orch.shardsPerCampaign = 2;
    StudyProgress progress;
    const StudyResult dup = runStudy(study, orch, &progress);
    EXPECT_EQ(progress.goldenRuns, 1u);
    // One cell's campaigns (RF + pred + simt + the three caches), not
    // two cells' worth.
    EXPECT_EQ(progress.totalShards, 12u);

    StudyOptions single = study;
    single.workloads = {"vectoradd"};
    const StudyResult one = runStudy(single, orch);
    ASSERT_EQ(dup.reports.size(), 2u);
    for (const ReliabilityReport& r : dup.reports) {
        const StructureReport& rf =
            r.forStructure(TargetStructure::VectorRegisterFile);
        EXPECT_EQ(rf.avfFi,
                  one.reports.front()
                      .forStructure(TargetStructure::VectorRegisterFile)
                      .avfFi);
        EXPECT_EQ(rf.injections, study.analysis.plan.injections);
    }
}

TEST(Orchestrator, MatchesStandaloneCampaignEngine)
{
    // The orchestrated register-file numbers must equal a standalone
    // runCampaign() with the same (campaign seed, injection index)
    // derivation — the orchestrator changes scheduling, not sampling.
    StudyOptions study = miniStudy();
    study.workloads = {"vectoradd"};
    OrchestratorOptions orch;
    orch.jobs = 4;
    orch.shardsPerCampaign = 3;
    const StudyResult result = runStudy(study, orch);
    const StructureReport& sr = result.reports.front().forStructure(
        TargetStructure::VectorRegisterFile);

    const GpuConfig& cfg = gpuConfig(GpuModel::QuadroFx5600);
    const auto workload = makeWorkload("vectoradd");
    WorkloadParams params;
    params.seed = study.analysis.workloadSeed;
    const WorkloadInstance inst = workload->build(cfg.dialect, params);
    CampaignConfig cc;
    cc.plan = study.analysis.plan;
    cc.seed = deriveSeed(study.analysis.seed,
                         static_cast<std::uint64_t>(
                             TargetStructure::VectorRegisterFile));
    cc.numThreads = 1;
    const CampaignResult fi =
        runCampaign(cfg, inst, TargetStructure::VectorRegisterFile, cc);

    EXPECT_EQ(sr.avfFi, fi.avf());
    EXPECT_EQ(sr.sdcRate, fi.sdcRate());
    EXPECT_EQ(sr.dueRate, fi.dueRate());
    EXPECT_EQ(sr.fiErrorMargin, fi.errorMargin());
}

TEST(Orchestrator, CheckpointsEveryShardToTheStore)
{
    const std::string path = tempStorePath("checkpoint");
    StudyProgress progress;
    OrchestratorOptions orch;
    orch.jobs = 2;
    orch.shardsPerCampaign = 4;
    orch.storePath = path;
    runStudy(miniStudy(), orch, &progress);

    EXPECT_EQ(progress.totalShards, 52u);
    EXPECT_EQ(progress.executedShards, 52u);
    EXPECT_EQ(progress.resumedShards, 0u);

    // Line 0 is the spec header; the 28 shard records follow.
    const auto lines = storeLines(path);
    ASSERT_EQ(lines.size(), 53u);
    StoreHeader header;
    ASSERT_TRUE(parseStoreHeader(lines.front(), header));
    EXPECT_EQ(header.specHash,
              studySpecFromLegacy(miniStudy(), orch).campaignHashHex());
    for (std::size_t i = 1; i < lines.size(); ++i) {
        ShardRecord r;
        EXPECT_TRUE(parseShardRecord(lines[i], r)) << lines[i];
    }
    std::remove(path.c_str());
}

TEST(Orchestrator, ResumeSkipsFinishedShardsAndMatchesBitForBit)
{
    const std::string path = tempStorePath("resume");
    const StudyOptions study = miniStudy();

    OrchestratorOptions first;
    first.jobs = 1;
    first.shardsPerCampaign = 4;
    first.storePath = path;
    StudyProgress full_progress;
    const StudyResult full = runStudy(study, first, &full_progress);
    ASSERT_EQ(full_progress.executedShards, 52u);

    // Simulate a kill after 5 shards: keep the header and a record
    // prefix of the store.
    const auto lines = storeLines(path);
    ASSERT_EQ(lines.size(), 53u); // spec header + 52 records
    {
        std::ofstream out(path, std::ios::trunc);
        for (std::size_t i = 0; i < 6; ++i)
            out << lines[i] << '\n';
        // ...plus a truncated tail line, as a real kill would leave.
        out << lines[6].substr(0, lines[6].size() / 2);
    }

    OrchestratorOptions second;
    second.jobs = 8; // resume at a different job count
    second.shardsPerCampaign = 4;
    second.storePath = path;
    second.resume = true;
    StudyProgress resumed_progress;
    const StudyResult resumed = runStudy(study, second, &resumed_progress);

    EXPECT_EQ(resumed_progress.resumedShards, 5u);
    EXPECT_EQ(resumed_progress.executedShards, 47u);
    expectIdenticalReports(full, resumed);

    // A third run finds everything done and recomputes nothing.
    StudyProgress third_progress;
    const StudyResult third = runStudy(study, second, &third_progress);
    EXPECT_EQ(third_progress.resumedShards, 52u);
    EXPECT_EQ(third_progress.executedShards, 0u);
    expectIdenticalReports(full, third);
    std::remove(path.c_str());
}

TEST(Orchestrator, ResumeRefusesAStoreFromADifferentSpec)
{
    const std::string path = tempStorePath("mismatch");
    const StudyOptions study = miniStudy();

    OrchestratorOptions orch;
    orch.jobs = 4;
    orch.shardsPerCampaign = 4;
    orch.storePath = path;
    runStudy(study, orch);

    // Same store, different campaign seed: the spec hash mismatches, so
    // resume fails loudly (naming both hashes) instead of silently
    // recomputing — or worse, mixing — two different experiments.
    StudyOptions reseeded = study;
    reseeded.analysis.seed = 0xDEADBEEF;
    orch.resume = true;
    const std::string original_hash =
        studySpecFromLegacy(study, orch).campaignHashHex();
    const std::string reseeded_hash =
        studySpecFromLegacy(reseeded, orch).campaignHashHex();
    try {
        runStudy(reseeded, orch);
        FAIL() << "expected FatalError on spec-hash mismatch";
    } catch (const FatalError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find(original_hash), std::string::npos) << what;
        EXPECT_NE(what.find(reseeded_hash), std::string::npos) << what;
    }

    // Execution knobs are not part of the identity: the same campaign
    // resumes fine at a different job count.
    OrchestratorOptions rejobbed = orch;
    rejobbed.jobs = 1;
    StudyProgress progress;
    runStudy(study, rejobbed, &progress);
    EXPECT_EQ(progress.resumedShards, 52u);
    EXPECT_EQ(progress.executedShards, 0u);
    std::remove(path.c_str());
}

TEST(Orchestrator, LegacyHeaderlessStoreResumesWithKeyMatchingOnly)
{
    const std::string path = tempStorePath("legacy");
    const StudyOptions study = miniStudy();

    OrchestratorOptions orch;
    orch.jobs = 4;
    orch.shardsPerCampaign = 4;
    orch.storePath = path;
    runStudy(study, orch);

    // Strip the header, as a store written before it existed would be.
    const auto lines = storeLines(path);
    ASSERT_EQ(lines.size(), 53u);
    {
        std::ofstream out(path, std::ios::trunc);
        for (std::size_t i = 1; i < lines.size(); ++i)
            out << lines[i] << '\n';
    }

    // A header-less store loads with a warning; per-key matching still
    // rejects records of a different plan, so a reseeded study simply
    // recomputes everything.
    orch.resume = true;
    StudyProgress same_progress;
    runStudy(study, orch, &same_progress);
    EXPECT_EQ(same_progress.resumedShards, 52u);

    // The resume back-fills a header (appended, recognised at any
    // line), so the spec-hash guard is armed again: a doctored spec is
    // now refused instead of sliding through the legacy path.
    bool has_header = false;
    for (const std::string& line : storeLines(path)) {
        StoreHeader h;
        if (parseStoreHeader(line, h)) {
            has_header = true;
            EXPECT_EQ(h.specHash,
                      studySpecFromLegacy(study, orch).campaignHashHex());
        }
    }
    EXPECT_TRUE(has_header);
    {
        StudyOptions doctored = study;
        doctored.analysis.seed = 0xBAD;
        EXPECT_THROW(runStudy(doctored, orch), FatalError);
    }

    StudyOptions reseeded = study;
    reseeded.analysis.seed = 0xDEADBEEF;
    std::remove(path.c_str());
    orch.resume = false;
    runStudy(study, orch);
    {
        const auto with_header = storeLines(path);
        std::ofstream out(path, std::ios::trunc);
        for (std::size_t i = 1; i < with_header.size(); ++i)
            out << with_header[i] << '\n';
    }
    orch.resume = true;
    StudyProgress reseeded_progress;
    runStudy(reseeded, orch, &reseeded_progress);
    EXPECT_EQ(reseeded_progress.resumedShards, 0u);
    EXPECT_EQ(reseeded_progress.executedShards, 52u);
    std::remove(path.c_str());
}

TEST(Orchestrator, WallSecondsAggregateWithoutDoubleCounting)
{
    StudyProgress progress;
    OrchestratorOptions orch;
    orch.jobs = 4;
    orch.shardsPerCampaign = 4;
    const StudyResult result = runStudy(miniStudy(), orch, &progress);

    // Per-campaign fiWallSeconds are sums of per-shard busy time, so the
    // study total equals the orchestrator's busy-seconds tally exactly
    // (nothing is counted once per concurrent campaign).  claims()
    // reduces the series with the fixed-order compensated reducer
    // (lint rule D5), so the expected total goes through the same one.
    std::vector<double> seconds;
    for (const ReliabilityReport& r : result.reports) {
        for (const StructureReport& sr : r.structures)
            seconds.push_back(sr.fiWallSeconds);
        EXPECT_GT(r.forStructure(TargetStructure::VectorRegisterFile)
                      .fiWallSeconds,
                  0.0);
    }
    const double total = fixedOrderSum(seconds);
    EXPECT_NEAR(total, progress.shardBusySeconds,
                1e-9 * std::max(1.0, progress.shardBusySeconds));
    EXPECT_EQ(result.claims().fiSecondsTotal, total);
}

TEST(ShardStore, RecordRoundTrips)
{
    ShardRecord r;
    r.key.workload = "reduction";
    r.key.gpu = GpuModel::HdRadeon7970;
    r.key.structure = TargetStructure::ScalarRegisterFile;
    r.key.shardIndex = 3;
    r.key.injectionBegin = 750;
    r.key.injectionEnd = 1000;
    r.key.campaignSeed = 0xFEEDFACECAFEBEEFULL; // > int64 range
    r.key.workloadSeed = 42;
    r.counts.masked = 200;
    r.counts.sdc = 30;
    r.counts.due = 20;
    r.counts.busySeconds = 1.25;

    std::ostringstream os;
    writeShardRecord(os, r);
    ShardRecord back;
    ASSERT_TRUE(parseShardRecord(os.str(), back));
    EXPECT_TRUE(back.key == r.key);
    EXPECT_EQ(back.counts.masked, r.counts.masked);
    EXPECT_EQ(back.counts.sdc, r.counts.sdc);
    EXPECT_EQ(back.counts.due, r.counts.due);
    EXPECT_EQ(back.counts.busySeconds, r.counts.busySeconds);
}

TEST(ShardStore, RejectsMalformedLines)
{
    ShardRecord r;
    EXPECT_FALSE(parseShardRecord("", r));
    EXPECT_FALSE(parseShardRecord("not json", r));
    EXPECT_FALSE(parseShardRecord(R"({"workload":"x"})", r));

    // A well-formed record...
    ShardRecord good;
    good.key.workload = "vectoradd";
    good.key.gpu = GpuModel::GeforceGtx480;
    good.key.injectionEnd = 10;
    good.counts.masked = 10;
    std::ostringstream os;
    writeShardRecord(os, good);
    ASSERT_TRUE(parseShardRecord(os.str(), r));

    // ...fails once truncated (kill mid-write) ...
    const std::string line = os.str();
    EXPECT_FALSE(parseShardRecord(line.substr(0, line.size() - 5), r));

    // ...or when counts do not cover the stated injection range.
    ShardRecord bad = good;
    bad.counts.masked = 7;
    std::ostringstream os2;
    writeShardRecord(os2, bad);
    EXPECT_FALSE(parseShardRecord(os2.str(), r));
}

TEST(ShardStore, ReaderSkipsBrokenLines)
{
    ShardRecord r;
    r.key.workload = "scan";
    r.key.gpu = GpuModel::QuadroFx5800;
    r.key.injectionEnd = 5;
    r.counts.sdc = 5;
    std::ostringstream os;
    writeShardRecord(os, r);
    const std::string good_line = os.str();

    std::istringstream is("garbage\n" + good_line + "\n" +
                          good_line.substr(0, 20));
    const std::vector<ShardRecord> records = readShardStore(is);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records.front().key.workload, "scan");
}

TEST(WorkerPoolTest, RunsEveryTaskAcrossWaves)
{
    WorkerPool pool(4);
    std::atomic<int> count{0};
    for (int wave = 0; wave < 3; ++wave) {
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] { count.fetch_add(1); });
        pool.waitIdle();
        EXPECT_EQ(count.load(), 50 * (wave + 1));
    }
}

} // namespace
} // namespace gpr
