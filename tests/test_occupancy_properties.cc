/** @file Property sweep of the occupancy calculator: invariants that must
 *  hold for every (GPU, register demand, block size, grid size) point. */

#include <gtest/gtest.h>

#include "arch/occupancy.hh"
#include "isa/builder.hh"

namespace gpr {
namespace {

Program
kernelWith(IsaDialect dialect, std::uint32_t vregs, std::uint32_t smem)
{
    KernelBuilder kb("sweep", dialect);
    Operand last = Operand();
    for (std::uint32_t i = 0; i < vregs; ++i)
        last = kb.vreg();
    kb.mov(last, KernelBuilder::imm(0));
    if (smem > 0)
        kb.sts(last, last);
    kb.exit();
    return kb.finish(smem);
}

struct SweepPoint
{
    GpuModel model;
    std::uint32_t vregs;
    std::uint32_t smem;
    std::uint32_t threads;
    std::uint32_t blocks;
};

class OccupancySweep : public ::testing::TestWithParam<SweepPoint>
{
};

TEST_P(OccupancySweep, InvariantsHold)
{
    const SweepPoint& p = GetParam();
    const GpuConfig& cfg = gpuConfig(p.model);
    if (p.threads > cfg.maxThreadsPerBlock)
        GTEST_SKIP() << "block exceeds device limit by construction";

    const Program prog = kernelWith(cfg.dialect, p.vregs, p.smem);
    const OccupancyInfo o =
        computeOccupancy(cfg, prog, p.threads, p.blocks);

    // At least one block always fits (validated launches only).
    EXPECT_GE(o.blocksPerSm, 1u);
    EXPECT_LE(o.blocksPerSm, cfg.maxBlocksPerSm);

    // Warp accounting.
    EXPECT_EQ(o.warpsPerBlock,
              (p.threads + cfg.warpWidth - 1) / cfg.warpWidth);
    EXPECT_LE(o.activeWarpsPerSm, cfg.maxWarpsPerSm);
    EXPECT_EQ(o.activeWarpsPerSm, o.blocksPerSm * o.warpsPerBlock);

    // Resource sums never exceed the device.
    EXPECT_LE(o.blocksPerSm * o.regsPerBlock, cfg.regFileWordsPerSm);
    EXPECT_LE(o.blocksPerSm * o.smemPerBlock, cfg.smemBytesPerSm);

    // All occupancies are proper fractions.
    EXPECT_GT(o.warpOccupancy, 0.0);
    EXPECT_LE(o.warpOccupancy, 1.0);
    EXPECT_GE(o.regFileOccupancy, 0.0);
    EXPECT_LE(o.regFileOccupancy, 1.0);
    EXPECT_GE(o.smemOccupancy, 0.0);
    EXPECT_LE(o.smemOccupancy, 1.0);

    // Adding one more block per SM must violate some resource or limit
    // (maximality of the residency computation).
    const std::uint32_t next = o.blocksPerSm + 1;
    const bool would_violate =
        next > cfg.maxBlocksPerSm ||
        next * o.warpsPerBlock > cfg.maxWarpsPerSm ||
        next * o.regsPerBlock > cfg.regFileWordsPerSm ||
        (o.smemPerBlock > 0 &&
         next * o.smemPerBlock > cfg.smemBytesPerSm) ||
        o.limiter == OccupancyInfo::Limiter::GridSize;
    EXPECT_TRUE(would_violate)
        << "residency " << o.blocksPerSm << " is not maximal";
}

std::vector<SweepPoint>
sweepPoints()
{
    std::vector<SweepPoint> points;
    for (GpuModel model : allGpuModels())
        for (std::uint32_t vregs : {4u, 12u, 24u})
            for (std::uint32_t smem : {0u, 1024u, 4096u})
                for (std::uint32_t threads : {64u, 128u, 256u})
                    for (std::uint32_t blocks : {8u, 1024u})
                        points.push_back(
                            {model, vregs, smem, threads, blocks});
    return points;
}

INSTANTIATE_TEST_SUITE_P(Grid, OccupancySweep,
                         ::testing::ValuesIn(sweepPoints()));

} // namespace
} // namespace gpr
