/**
 * @file
 * The whole-device simulator: block dispatcher, cycle loop, fault
 * application, occupancy integration and watchdog.
 *
 * A Gpu is constructed once per worker thread and reused across runs
 * (run() fully resets architectural state), which keeps fault-injection
 * campaigns cheap.  Runs are bit-deterministic: same (program, launch,
 * image, options) in, same result out, regardless of what ran before.
 */

#ifndef GPR_SIM_GPU_HH
#define GPR_SIM_GPU_HH

#include <memory>
#include <optional>
#include <vector>

#include "arch/gpu_config.hh"
#include "sim/fault_model.hh"
#include "sim/launch.hh"
#include "sim/memory_image.hh"
#include "sim/observer.hh"
#include "sim/sm_core.hh"
#include "sim/stats.hh"
#include "sim/trap.hh"

namespace gpr {

struct RunOptions
{
    /** Hard cycle budget; 0 selects the default cap (50M cycles). */
    Cycle maxCycles = 0;
    /** Optional single bit flip to apply during the run. */
    std::optional<FaultSpec> fault;
    /** Optional access-trace observer (ACE analysis). */
    SimObserver* observer = nullptr;
};

struct RunResult
{
    TrapKind trap = TrapKind::None;
    SimStats stats;
    MemoryImage memory;

    bool clean() const { return trap == TrapKind::None; }
};

class Gpu
{
  public:
    explicit Gpu(const GpuConfig& config);

    Gpu(const Gpu&) = delete;
    Gpu& operator=(const Gpu&) = delete;

    const GpuConfig& config() const { return config_; }

    /**
     * Execute @p prog over @p launch against a copy-in @p image.
     * Throws FatalError on configuration errors (kernel cannot launch);
     * abnormal *simulation* outcomes are reported via RunResult::trap.
     */
    RunResult run(const Program& prog, const LaunchConfig& launch,
                  MemoryImage image, const RunOptions& options = {});

    /** Total bits of @p structure across the whole chip. */
    std::uint64_t structureBits(TargetStructure structure) const;

  private:
    void applyFault(const FaultSpec& fault);
    void dispatchBlocks(RunContext& ctx, Cycle now);

    const GpuConfig& config_;
    std::vector<std::unique_ptr<SmCore>> sms_;

    // Per-run dispatch state.
    std::uint32_t next_block_ = 0;
    std::uint32_t num_blocks_ = 0;
    std::uint32_t dispatch_rr_ = 0;
};

} // namespace gpr

#endif // GPR_SIM_GPU_HH
