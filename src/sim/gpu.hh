/**
 * @file
 * The whole-device simulator: block dispatcher, cycle loop, fault
 * application, occupancy integration and watchdog.
 *
 * A Gpu is constructed once per worker thread and reused across runs
 * (run() fully resets architectural state), which keeps fault-injection
 * campaigns cheap.  Runs are bit-deterministic: same (program, launch,
 * image, options) in, same result out, regardless of what ran before.
 */

#ifndef GPR_SIM_GPU_HH
#define GPR_SIM_GPU_HH

#include <memory>
#include <optional>
#include <vector>

#include "arch/gpu_config.hh"
#include "common/hash.hh"
#include "sim/fault_model.hh"
#include "sim/launch.hh"
#include "sim/memory_image.hh"
#include "sim/observer.hh"
#include "sim/sm_core.hh"
#include "sim/stats.hh"
#include "sim/trap.hh"

namespace gpr {

/**
 * Complete mid-run device + run-loop state at the start of one cycle.
 * Restoring it and resuming reproduces the original run's remaining
 * trajectory bit-for-bit, with one caveat: the occupancy *averages* of a
 * resumed run can differ from an uninterrupted run in the last ulp
 * (the integrators accumulate over differently split intervals) —
 * classification never reads them.
 *
 * The device portion (SMs + dispatch) is captured by Gpu::snapshot();
 * the run-loop portion (cycle, stats, memory, occupancy integrators)
 * is filled in by the run loop when recording via CheckpointRecorder.
 */
struct GpuCheckpoint
{
    Cycle now = 0;

    // Device state.
    std::vector<SmCore::Snapshot> sms;
    std::optional<CacheModel> l2; ///< chip-shared L2, when modeled
    std::uint32_t nextBlock = 0;
    std::uint32_t dispatchRr = 0;

    // Run-loop state.
    MemPipe memPipe;
    SimStats stats;
    MemoryImage memory;
    double vrfOccAcc = 0.0;
    double srfOccAcc = 0.0;
    double ldsOccAcc = 0.0;
    double warpOccAcc = 0.0;
    std::uint64_t lastCompleted = 0;

    /** Resident footprint (pack accounting). */
    std::size_t
    bytes() const
    {
        std::size_t b = sizeof(*this) + memory.bytes() +
                        (l2 ? l2->bytes() : 0);
        for (const SmCore::Snapshot& s : sms)
            b += s.bytes();
        return b;
    }
};

/**
 * A checkpoint encoded against a baseline GpuCheckpoint instead of
 * standing alone: the storages and the memory image are stored as the
 * pages that differ from the baseline, while the (small) control state
 * is copied whole.  Restoring = revert the anchored device/image to the
 * baseline (touching only pages written since) + apply these deltas —
 * bit-identical to restoring the full checkpoint this delta encodes.
 */
struct GpuCheckpointDelta
{
    Cycle now = 0;

    // Device state.
    std::vector<SmStorageDelta> smStorage;
    std::vector<SmCore::ControlState> smControl;
    StorageDelta l2; ///< L2 pages differing from the baseline's
    std::uint32_t nextBlock = 0;
    std::uint32_t dispatchRr = 0;

    // Run-loop state.
    MemPipe memPipe;
    SimStats stats;
    StorageDelta memory; ///< image pages differing from the baseline's
    double vrfOccAcc = 0.0;
    double srfOccAcc = 0.0;
    double ldsOccAcc = 0.0;
    double warpOccAcc = 0.0;
    std::uint64_t lastCompleted = 0;

    /** Resident footprint (pack accounting). */
    std::size_t
    bytes() const
    {
        std::size_t b = sizeof(*this) + memory.bytes() + l2.bytes();
        for (const SmStorageDelta& s : smStorage)
            b += s.bytes();
        for (const SmCore::ControlState& c : smControl)
            b += c.bytes();
        return b;
    }
};

/**
 * Output channel for a golden recording pass: Gpu::run snapshots a
 * GpuCheckpoint at each requested cycle and appends the trajectory's
 * state hash at every hashInterval boundary (cycle k*hashInterval for
 * k = 1, 2, ...; hashes[k-1] is the digest at the *start* of that
 * cycle).
 */
struct CheckpointRecorder
{
    /** Cycles to checkpoint at, ascending and > 0 (input). */
    std::vector<Cycle> checkpointCycles;
    /**
     * Record delta checkpoints (input): capture one full baseline at
     * cycle 0 (after initial dispatch) into `baseline`, then encode
     * every checkpoint — including an implicit one at cycle 0 — as a
     * GpuCheckpointDelta against it in `deltas`.  When false, full
     * checkpoints land in `checkpoints` (legacy mode).
     */
    bool delta = false;
    /** Captured checkpoints, one per reached requested cycle (output,
     *  legacy mode). */
    std::vector<GpuCheckpoint> checkpoints;
    /** Cycle-0 baseline every delta is encoded against (output). */
    GpuCheckpoint baseline;
    /** Delta checkpoints: cycle 0, then each reached requested cycle
     *  (output, delta mode). */
    std::vector<GpuCheckpointDelta> deltas;
    /** Golden state hashes, one per crossed hash boundary (output). */
    std::vector<std::uint64_t> hashes;
};

struct RunOptions
{
    /** Hard cycle budget; 0 selects the default cap (50M cycles). */
    Cycle maxCycles = 0;
    /** Optional fault to inject during the run (behavior × pattern ×
     *  target; see sim/fault_model.hh).  A persistent fault may pair
     *  with goldenHashes only when convergeMinCycle carries a
     *  residency-sound threshold past the fault cycle (the injector's
     *  persistent fast path); transient faults need no threshold. */
    std::optional<FaultSpec> fault;
    /** Optional access-trace observer (ACE analysis). */
    SimObserver* observer = nullptr;

    /** Start mid-execution from this checkpoint instead of cycle 0 (the
     *  passed-in MemoryImage is ignored; the checkpoint's is used).
     *  Incompatible with observer/recorder. */
    const GpuCheckpoint* resume = nullptr;

    /**
     * Delta resume: start mid-execution from resumeDelta, applied on
     * top of resumeBaseline.  The device must be anchored to that exact
     * baseline (Gpu::anchorTo) and imageInOut must point to a scratch
     * image whose dirty tracking is likewise anchored to the baseline's
     * image — then the restore touches only pages the previous run
     * wrote, instead of copying the whole state.  Bit-identical to a
     * full `resume` from the checkpoint the delta encodes.
     * Incompatible with resume/observer/recorder.
     */
    const GpuCheckpoint* resumeBaseline = nullptr;
    const GpuCheckpointDelta* resumeDelta = nullptr;

    /**
     * Run against this caller-owned image instead of the copied-in one
     * (the passed-in MemoryImage parameter is ignored, and the result's
     * `memory` field is left empty — read the scratch image instead).
     * Requires resumeDelta: the whole point is reusing one scratch
     * image across a campaign's injections without per-run copies.
     */
    MemoryImage* imageInOut = nullptr;
    /** Record checkpoints + golden hashes along this (fault-free) run. */
    CheckpointRecorder* recorder = nullptr;
    /** State-hash boundary spacing in cycles; 0 disables hashing.  Must
     *  be identical between the recording run and any comparing run. */
    Cycle hashInterval = 0;
    /** Golden trajectory hashes to compare against at each boundary
     *  after the fault has been applied; on a match the run ends early
     *  with RunResult::convergedToGolden set. */
    const std::vector<std::uint64_t>* goldenHashes = nullptr;
    /** First cycle at which a goldenHashes match may end the run.  0
     *  (transient faults) compares at every post-fault boundary.  For
     *  persistent faults the injector sets this to the fault's
     *  value-residency agree-from cycle: from there on every golden
     *  read of the stuck word observes the forced value, so a matching
     *  (canonical for stuck-at, raw for intermittent) hash pins the
     *  rest of the run to the golden trajectory. */
    Cycle convergeMinCycle = 0;
};

struct RunResult
{
    TrapKind trap = TrapKind::None;
    SimStats stats;
    MemoryImage memory;
    /** The post-fault state hash matched the golden trajectory: the rest
     *  of the run is bit-identical to the golden run, so the outcome is
     *  Masked without simulating (or verifying) the remainder.  stats
     *  and memory hold the state at the convergence point. */
    bool convergedToGolden = false;

    /** Wall-clock seconds the run spent restoring resume state (full or
     *  delta) — the injection-throughput bench's per-phase breakdown. */
    double restoreSeconds = 0.0;
    /** Wall-clock seconds spent computing trajectory state hashes. */
    double hashSeconds = 0.0;

    bool clean() const { return trap == TrapKind::None; }
};

class Gpu
{
  public:
    explicit Gpu(const GpuConfig& config);

    Gpu(const Gpu&) = delete;
    Gpu& operator=(const Gpu&) = delete;

    const GpuConfig& config() const { return config_; }

    /**
     * Execute @p prog over @p launch against a copy-in @p image.
     * Throws FatalError on configuration errors (kernel cannot launch);
     * abnormal *simulation* outcomes are reported via RunResult::trap.
     */
    RunResult run(const Program& prog, const LaunchConfig& launch,
                  MemoryImage image, const RunOptions& options = {});

    /** Total bits of @p structure across the whole chip. */
    std::uint64_t structureBits(TargetStructure structure) const;

    /**
     * Deep-copy the device portion of the state (all SMs + dispatch)
     * into a checkpoint; the run-loop fields are left default (the run
     * loop fills them when recording via CheckpointRecorder).
     */
    GpuCheckpoint snapshot() const;

    /** Restore the device portion captured by snapshot().  Drops any
     *  delta anchor (the dirty tracking no longer matches it). */
    void restore(const GpuCheckpoint& cp);

    /**
     * Anchor the device to @p baseline for delta resumes: fully restore
     * its device portion, then mark every storage clean so subsequent
     * dirty tracking measures divergence from the baseline.  The caller
     * keeps @p baseline alive and unchanged for as long as runs resume
     * against it (one anchoring serves a whole campaign of injections).
     */
    void anchorTo(const GpuCheckpoint& baseline);

    /** Is the device currently anchored to exactly @p baseline? */
    bool
    anchoredTo(const GpuCheckpoint* baseline) const
    {
        return anchor_ != nullptr && anchor_ == baseline;
    }

    /**
     * Fingerprint of the device portion (SMs + dispatch state) — the
     * round-trip invariant: restore(cp) always reproduces the same
     * deviceStateHash().  The run loop's trajectory hash additionally
     * folds in the memory image, MemPipe and completed-block count; see
     * Gpu::runStateHash in gpu.cc for the full definition.
     */
    std::uint64_t deviceStateHash() const;

  private:
    void applyFault(const FaultSpec& fault);
    void restoreDelta(const GpuCheckpoint& baseline,
                      const GpuCheckpointDelta& d);
    void dispatchBlocks(RunContext& ctx, Cycle now);
    void hashDeviceInto(StateHash& h) const;
    std::uint64_t runStateHash(const RunContext& ctx,
                               const MemoryImage& image,
                               std::uint64_t blocks_completed) const;
    GpuCheckpoint captureCheckpoint(const RunContext& ctx,
                                    const SimStats& stats,
                                    const MemoryImage& image,
                                    Cycle now) const;

    const GpuConfig& config_;
    std::vector<std::unique_ptr<SmCore>> sms_;
    std::optional<CacheModel> l2_; ///< absent when l2Bytes == 0

    // Per-run dispatch state.
    std::uint32_t next_block_ = 0;
    std::uint32_t num_blocks_ = 0;
    std::uint32_t dispatch_rr_ = 0;
    /** SM hosting the run's persistent fault, -1 if none (per-run). */
    std::int64_t persistent_sm_ = -1;
    /** Chip-scoped (L2) persistent fault bound to this run; forced via
     *  CacheModel::forceBit each active cycle (per-run state). */
    std::optional<SmCore::PersistentFault> persistent_l2_;
    /** Baseline the device's dirty tracking is anchored to (nullptr =
     *  unanchored; delta resumes assert against it). */
    const GpuCheckpoint* anchor_ = nullptr;
};

} // namespace gpr

#endif // GPR_SIM_GPU_HH
