/**
 * @file
 * The whole-device simulator: block dispatcher, cycle loop, fault
 * application, occupancy integration and watchdog.
 *
 * A Gpu is constructed once per worker thread and reused across runs
 * (run() fully resets architectural state), which keeps fault-injection
 * campaigns cheap.  Runs are bit-deterministic: same (program, launch,
 * image, options) in, same result out, regardless of what ran before.
 */

#ifndef GPR_SIM_GPU_HH
#define GPR_SIM_GPU_HH

#include <memory>
#include <optional>
#include <vector>

#include "arch/gpu_config.hh"
#include "common/hash.hh"
#include "sim/fault_model.hh"
#include "sim/launch.hh"
#include "sim/memory_image.hh"
#include "sim/observer.hh"
#include "sim/sm_core.hh"
#include "sim/stats.hh"
#include "sim/trap.hh"

namespace gpr {

/**
 * Complete mid-run device + run-loop state at the start of one cycle.
 * Restoring it and resuming reproduces the original run's remaining
 * trajectory bit-for-bit, with one caveat: the occupancy *averages* of a
 * resumed run can differ from an uninterrupted run in the last ulp
 * (the integrators accumulate over differently split intervals) —
 * classification never reads them.
 *
 * The device portion (SMs + dispatch) is captured by Gpu::snapshot();
 * the run-loop portion (cycle, stats, memory, occupancy integrators)
 * is filled in by the run loop when recording via CheckpointRecorder.
 */
struct GpuCheckpoint
{
    Cycle now = 0;

    // Device state.
    std::vector<SmCore::Snapshot> sms;
    std::uint32_t nextBlock = 0;
    std::uint32_t dispatchRr = 0;

    // Run-loop state.
    MemPipe memPipe;
    SimStats stats;
    MemoryImage memory;
    double vrfOccAcc = 0.0;
    double srfOccAcc = 0.0;
    double ldsOccAcc = 0.0;
    double warpOccAcc = 0.0;
    std::uint64_t lastCompleted = 0;
};

/**
 * Output channel for a golden recording pass: Gpu::run snapshots a
 * GpuCheckpoint at each requested cycle and appends the trajectory's
 * state hash at every hashInterval boundary (cycle k*hashInterval for
 * k = 1, 2, ...; hashes[k-1] is the digest at the *start* of that
 * cycle).
 */
struct CheckpointRecorder
{
    /** Cycles to checkpoint at, ascending (input). */
    std::vector<Cycle> checkpointCycles;
    /** Captured checkpoints, one per reached requested cycle (output). */
    std::vector<GpuCheckpoint> checkpoints;
    /** Golden state hashes, one per crossed hash boundary (output). */
    std::vector<std::uint64_t> hashes;
};

struct RunOptions
{
    /** Hard cycle budget; 0 selects the default cap (50M cycles). */
    Cycle maxCycles = 0;
    /** Optional fault to inject during the run (behavior × pattern ×
     *  target; see sim/fault_model.hh).  Persistent behaviors are
     *  incompatible with goldenHashes (the trajectory never rejoins
     *  golden, so hash early-out would be meaningless). */
    std::optional<FaultSpec> fault;
    /** Optional access-trace observer (ACE analysis). */
    SimObserver* observer = nullptr;

    /** Start mid-execution from this checkpoint instead of cycle 0 (the
     *  passed-in MemoryImage is ignored; the checkpoint's is used).
     *  Incompatible with observer/recorder. */
    const GpuCheckpoint* resume = nullptr;
    /** Record checkpoints + golden hashes along this (fault-free) run. */
    CheckpointRecorder* recorder = nullptr;
    /** State-hash boundary spacing in cycles; 0 disables hashing.  Must
     *  be identical between the recording run and any comparing run. */
    Cycle hashInterval = 0;
    /** Golden trajectory hashes to compare against at each boundary
     *  after the fault has been applied; on a match the run ends early
     *  with RunResult::convergedToGolden set. */
    const std::vector<std::uint64_t>* goldenHashes = nullptr;
};

struct RunResult
{
    TrapKind trap = TrapKind::None;
    SimStats stats;
    MemoryImage memory;
    /** The post-fault state hash matched the golden trajectory: the rest
     *  of the run is bit-identical to the golden run, so the outcome is
     *  Masked without simulating (or verifying) the remainder.  stats
     *  and memory hold the state at the convergence point. */
    bool convergedToGolden = false;

    bool clean() const { return trap == TrapKind::None; }
};

class Gpu
{
  public:
    explicit Gpu(const GpuConfig& config);

    Gpu(const Gpu&) = delete;
    Gpu& operator=(const Gpu&) = delete;

    const GpuConfig& config() const { return config_; }

    /**
     * Execute @p prog over @p launch against a copy-in @p image.
     * Throws FatalError on configuration errors (kernel cannot launch);
     * abnormal *simulation* outcomes are reported via RunResult::trap.
     */
    RunResult run(const Program& prog, const LaunchConfig& launch,
                  MemoryImage image, const RunOptions& options = {});

    /** Total bits of @p structure across the whole chip. */
    std::uint64_t structureBits(TargetStructure structure) const;

    /**
     * Deep-copy the device portion of the state (all SMs + dispatch)
     * into a checkpoint; the run-loop fields are left default (the run
     * loop fills them when recording via CheckpointRecorder).
     */
    GpuCheckpoint snapshot() const;

    /** Restore the device portion captured by snapshot(). */
    void restore(const GpuCheckpoint& cp);

    /**
     * Fingerprint of the device portion (SMs + dispatch state) — the
     * round-trip invariant: restore(cp) always reproduces the same
     * deviceStateHash().  The run loop's trajectory hash additionally
     * folds in the memory image, MemPipe and completed-block count; see
     * Gpu::runStateHash in gpu.cc for the full definition.
     */
    std::uint64_t deviceStateHash() const;

  private:
    void applyFault(const FaultSpec& fault);
    void dispatchBlocks(RunContext& ctx, Cycle now);
    void hashDeviceInto(StateHash& h) const;
    std::uint64_t runStateHash(const RunContext& ctx,
                               const MemoryImage& image,
                               std::uint64_t blocks_completed) const;
    GpuCheckpoint captureCheckpoint(const RunContext& ctx,
                                    const SimStats& stats,
                                    const MemoryImage& image,
                                    Cycle now) const;

    const GpuConfig& config_;
    std::vector<std::unique_ptr<SmCore>> sms_;

    // Per-run dispatch state.
    std::uint32_t next_block_ = 0;
    std::uint32_t num_blocks_ = 0;
    std::uint32_t dispatch_rr_ = 0;
    /** SM hosting the run's persistent fault, -1 if none (per-run). */
    std::int64_t persistent_sm_ = -1;
};

} // namespace gpr

#endif // GPR_SIM_GPU_HH
