/**
 * @file
 * Per-run simulation statistics.
 */

#ifndef GPR_SIM_STATS_HH
#define GPR_SIM_STATS_HH

#include <cstdint>

#include "common/types.hh"

namespace gpr {

struct SimStats
{
    Cycle cycles = 0;
    std::uint64_t warpInstructions = 0;
    std::uint64_t threadInstructions = 0; ///< active-lane-weighted

    std::uint64_t globalLoads = 0;
    std::uint64_t globalStores = 0;
    std::uint64_t globalTransactions = 0; ///< 128-byte segments
    std::uint64_t sharedAccesses = 0;
    std::uint64_t sharedBankConflictReplays = 0;
    std::uint64_t barriersExecuted = 0;
    std::uint64_t divergenceEvents = 0;   ///< warp-splitting branches

    std::uint64_t blocksCompleted = 0;

    // Time-averaged fraction of each structure's words that were
    // allocated to resident blocks (chip-wide); this is the "occupancy"
    // red line of the paper's figures.
    double avgRegFileOccupancy = 0.0;
    double avgScalarRegOccupancy = 0.0;
    double avgSmemOccupancy = 0.0;
    /** Time-averaged resident warps / total warp slots, chip-wide. */
    double avgWarpOccupancy = 0.0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(warpInstructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

} // namespace gpr

#endif // GPR_SIM_STATS_HH
