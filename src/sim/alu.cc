#include "sim/alu.hh"

#include <algorithm>
#include <cmath>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace gpr {
namespace {

std::int32_t
asInt(Word w)
{
    return static_cast<std::int32_t>(w);
}

Word
fromInt(std::int32_t v)
{
    return static_cast<Word>(v);
}

Word
fromFloat(float f)
{
    return floatBits(f);
}

float
asFloat(Word w)
{
    return wordToFloat(w);
}

/** Saturating float->int32 truncation (hardware cvt.rzi.s32 semantics). */
Word
floatToInt(Word a)
{
    const float f = asFloat(a);
    if (std::isnan(f))
        return 0;
    if (f >= 2147483648.0f)
        return fromInt(INT32_MAX);
    if (f <= -2147483648.0f)
        return fromInt(INT32_MIN);
    return fromInt(static_cast<std::int32_t>(f));
}

} // namespace

Word
evalAlu(Opcode op, Word a, Word b, Word c)
{
    switch (op) {
      case Opcode::Mov:
        return a;
      case Opcode::IAdd:
        return a + b; // two's-complement wraparound
      case Opcode::ISub:
        return a - b;
      case Opcode::IMul:
        return a * b; // low 32 bits
      case Opcode::IMad:
        return a * b + c;
      case Opcode::IMin:
        return fromInt(std::min(asInt(a), asInt(b)));
      case Opcode::IMax:
        return fromInt(std::max(asInt(a), asInt(b)));
      case Opcode::And:
        return a & b;
      case Opcode::Or:
        return a | b;
      case Opcode::Xor:
        return a ^ b;
      case Opcode::Not:
        return ~a;
      case Opcode::Shl:
        return (b & 31u) ? (a << (b & 31u)) : a;
      case Opcode::Shr:
        return (b & 31u) ? (a >> (b & 31u)) : a;
      case Opcode::Shra:
        return fromInt(asInt(a) >> (b & 31u));
      case Opcode::FAdd:
        return fromFloat(asFloat(a) + asFloat(b));
      case Opcode::FSub:
        return fromFloat(asFloat(a) - asFloat(b));
      case Opcode::FMul:
        return fromFloat(asFloat(a) * asFloat(b));
      case Opcode::FFma:
        return fromFloat(std::fma(asFloat(a), asFloat(b), asFloat(c)));
      case Opcode::FMin:
        return fromFloat(std::fmin(asFloat(a), asFloat(b)));
      case Opcode::FMax:
        return fromFloat(std::fmax(asFloat(a), asFloat(b)));
      case Opcode::FRcp:
        return fromFloat(1.0f / asFloat(a));
      case Opcode::FSqrt:
        return fromFloat(std::sqrt(asFloat(a)));
      case Opcode::FExp2:
        return fromFloat(std::exp2(asFloat(a)));
      case Opcode::FAbs:
        return a & 0x7fffffffu;
      case Opcode::FNeg:
        return a ^ 0x80000000u;
      case Opcode::FDiv:
        return fromFloat(asFloat(a) / asFloat(b));
      case Opcode::F2i:
        return floatToInt(a);
      case Opcode::I2f:
        return fromFloat(static_cast<float>(asInt(a)));
      default:
        panic("evalAlu: opcode ", opMnemonic(op), " is not an ALU op");
    }
}

bool
evalCmpInt(CmpOp cmp, Word a, Word b)
{
    const std::int32_t x = asInt(a);
    const std::int32_t y = asInt(b);
    switch (cmp) {
      case CmpOp::Eq:
        return x == y;
      case CmpOp::Ne:
        return x != y;
      case CmpOp::Lt:
        return x < y;
      case CmpOp::Le:
        return x <= y;
      case CmpOp::Gt:
        return x > y;
      case CmpOp::Ge:
        return x >= y;
    }
    panic("bad CmpOp");
}

bool
evalCmpFloat(CmpOp cmp, Word a, Word b)
{
    const float x = asFloat(a);
    const float y = asFloat(b);
    switch (cmp) {
      case CmpOp::Eq:
        return x == y;
      case CmpOp::Ne:
        return x != y; // true for NaN operands, like hardware !(EQ)
      case CmpOp::Lt:
        return x < y;
      case CmpOp::Le:
        return x <= y;
      case CmpOp::Gt:
        return x > y;
      case CmpOp::Ge:
        return x >= y;
    }
    panic("bad CmpOp");
}

} // namespace gpr
