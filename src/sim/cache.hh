/**
 * @file
 * Modeled cache array — the fault target between SmCore and MemoryImage.
 *
 * One CacheModel is a direct-mapped array of `lines` cache lines of
 * `lineWords` 32-bit words each, plus per-line metadata: a full 32-bit
 * tag (the line-base byte address; fault-free, its low bits are zero), a
 * valid bit and a dirty bit.  The same class models the per-SM L1 data
 * cache, the per-SM L1 instruction cache and the chip-shared L2 — they
 * differ only in identity (TargetStructure + SmId), geometry, and which
 * access methods the core calls.
 *
 * The model is **functional only**: hits and misses never change
 * instruction latencies, memory-pipe occupancy or any statistic.  Timing
 * stays exactly what it was without caches — the hierarchy exists so
 * that faults have somewhere architecturally meaningful to land.  What a
 * fault *can* change is the data path:
 *
 *  - a **tag** fault turns a hit into a miss (victim written back at the
 *    corrupted address: trap MisalignedAddress / GlobalOutOfBounds when
 *    the address is detectably bad, or a silent wrong-address write —
 *    stale-data SDC — when it is word-aligned and in bounds), or turns a
 *    miss into a stale hit;
 *  - a **valid-bit** fault forces a miss-and-refetch (usually masked,
 *    but it silently drops a dirty line's writeback) or validates a
 *    garbage line;
 *  - a **dirty-bit** fault drops or fabricates a writeback;
 *  - a **data** fault is the classic payload corruption.
 *
 * State lives in ONE flat word array tracked by ONE PageTracker — tags,
 * then the packed valid bitmap, then the packed dirty bitmap, then the
 * data words — so dirty-page hashing, delta/CoW checkpoints and restore
 * all reuse the storage machinery verbatim (a cache's delta is a plain
 * StorageDelta, like MemoryImage's).
 */

#ifndef GPR_SIM_CACHE_HH
#define GPR_SIM_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/hash.hh"
#include "common/logging.hh"
#include "common/types.hh"
#include "sim/fault_model.hh"
#include "sim/memory_image.hh"
#include "sim/observer.hh"
#include "sim/state_page.hh"
#include "sim/trap.hh"

namespace gpr {

/**
 * Fault-space bits of one cache line: 32 tag bits + valid + dirty + the
 * data words.  Fault bit indices are line-major — line L owns bits
 * [L*cacheLineBits, (L+1)*cacheLineBits); within a line, bits [0,32) are
 * the tag, bit 32 the valid bit, bit 33 the dirty bit, and the rest the
 * data words in order.
 */
constexpr std::uint64_t
cacheLineBits(std::uint32_t line_words)
{
    return 34 + std::uint64_t{32} * line_words;
}

/** ACE units of one cache line: one 34-bit metadata unit (tag + valid +
 *  dirty) followed by one unit per data word. */
constexpr std::uint64_t
cacheLineAceUnits(std::uint32_t line_words)
{
    return std::uint64_t{1} + line_words;
}

class CacheModel
{
  public:
    /**
     * @p structure / @p sm are the identity stamped on observer events
     * (the chip-shared L2 reports sm 0).  @p line_words is the line size
     * in 32-bit words; for the instruction cache, "words" are
     * instruction slots and "addresses" are instruction indices.
     */
    CacheModel(TargetStructure structure, SmId sm, std::uint32_t lines,
               std::uint32_t line_words);

    /** Outcome of a data-side read: a trap (victim writeback at a
     *  fault-corrupted address) or the word observed. */
    struct Access
    {
        std::optional<TrapKind> trap;
        Word value = 0;
    };

    /**
     * Read the word at byte address @p addr (word-aligned and in bounds
     * — the core traps misaligned/OOB program addresses *before* the
     * cache).  Misses write back a dirty victim (which may trap — see
     * the file comment) and refill through @p next when non-null (the
     * L2) or @p mem directly.
     */
    Access read(Addr addr, CacheModel* next, MemoryImage& mem,
                SimObserver* obs, Cycle now);

    /**
     * Write-allocate store of @p value at byte address @p addr; same
     * contract and miss handling as read().  Private L1 data caches are
     * **write-through**: the store updates the local line and propagates
     * immediately to @p next / @p mem, which keeps the per-SM copies
     * coherent (two SMs storing to disjoint words of one line must not
     * clobber each other at writeback).  The shared L2 is write-back.
     * A write-through L1d's dirty bits are therefore only ever set by
     * injected faults — flushing such a line is the fabricated-writeback
     * fault channel, not normal operation.
     */
    std::optional<TrapKind> write(Addr addr, Word value, CacheModel* next,
                                  MemoryImage& mem, SimObserver* obs,
                                  Cycle now);

    /** Patch the cached copy of @p addr if the line is resident (no
     *  refill, no traps, no observer events) — used to keep a private
     *  L1d consistent after an atomic performed at the shared level. */
    void updateIfPresent(Addr addr, Word value);

    /**
     * Write every valid dirty line back (line-index order) and mark it
     * clean.  Called at clean kernel completion so the memory image the
     * workload checks reflects all cached stores; a trap here is the
     * delayed detection of a corrupted tag.
     */
    std::optional<TrapKind> flushDirty(CacheModel* next, MemoryImage& mem,
                                       SimObserver* obs, Cycle now);

    /**
     * Instruction-side fetch (L1i): @p pc is an instruction index; a
     * miss silently evicts (instructions are read-only) and refills the
     * line with identity mappings (slot j of the line holds base + j),
     * so the fault-free return value is @p pc itself.  A data/tag fault
     * makes the fetch return a *different* instruction index — the core
     * executes the wrong instruction, or traps InvalidControlFlow when
     * the index is past the program.
     */
    std::uint32_t fetchInst(std::uint32_t pc, SimObserver* obs, Cycle now);

    /** Flip fault-space bit @p bit (see cacheLineBits for the layout). */
    void flipBit(BitIndex bit);

    /** Force fault-space bit @p bit to @p value (persistent faults
     *  re-assert through this every active cycle). */
    void forceBit(BitIndex bit, bool value);

    std::uint32_t lines() const { return lines_; }
    std::uint32_t lineWords() const { return lineWords_; }

    /**
     * Fold the full cache state (tags, valid/dirty bitmaps, data) into
     * @p h as a sum of cached per-page digests — cost proportional to
     * the pages written since the previous hash.
     */
    void
    hashInto(StateHash& h) const
    {
        h.mix(words_.size());
        h.mix(pages_.digestSum(words_));
    }

    // --- Delta/CoW checkpoint support (mirrors MemoryImage) -------------

    /** Declare the current state the revert/capture baseline. */
    void markCleanForRestore() { pages_.markCleanForRestore(); }

    /** Copy back from @p baseline only the pages written since
     *  markCleanForRestore() (both caches must be the same shape). */
    void revertTo(const CacheModel& baseline);

    /** Encode the pages differing from @p baseline into @p out. */
    void captureDelta(const CacheModel& baseline, StorageDelta& out) const;

    /** Overwrite the delta's pages (this cache must currently match the
     *  baseline the delta was recorded against). */
    void applyDelta(const StorageDelta& delta)
    {
        pages_.applyDelta(words_, delta);
    }

    /** Resident footprint of the full cache (pack accounting). */
    std::size_t bytes() const { return words_.size() * sizeof(Word); }

    /** Backing words including metadata (pack/hash-interval sizing). */
    std::uint32_t
    stateWords() const
    {
        return static_cast<std::uint32_t>(words_.size());
    }

  private:
    // Flat-array layout: [tags | valid bitmap | dirty bitmap | data].
    std::uint32_t tagIndex(std::uint32_t line) const { return line; }
    std::uint32_t
    validIndex(std::uint32_t line) const
    {
        return lines_ + line / 32;
    }
    std::uint32_t
    dirtyIndex(std::uint32_t line) const
    {
        return lines_ + bitmapWords_ + line / 32;
    }
    std::uint32_t
    dataIndex(std::uint32_t line, std::uint32_t j) const
    {
        return dataBase_ + line * lineWords_ + j;
    }

    Word tag(std::uint32_t line) const { return words_[tagIndex(line)]; }
    bool
    valid(std::uint32_t line) const
    {
        return (words_[validIndex(line)] >> (line % 32)) & 1u;
    }
    bool
    dirty(std::uint32_t line) const
    {
        return (words_[dirtyIndex(line)] >> (line % 32)) & 1u;
    }
    Word
    data(std::uint32_t line, std::uint32_t j) const
    {
        return words_[dataIndex(line, j)];
    }

    /** Every mutation funnels through here so the PageTracker sees it. */
    void
    setWord(std::uint32_t index, Word value)
    {
        words_[index] = value;
        pages_.onWrite(index);
    }
    void setTag(std::uint32_t line, Word t) { setWord(tagIndex(line), t); }
    void setFlag(std::uint32_t index, std::uint32_t line, bool on);
    void
    setValid(std::uint32_t line, bool on)
    {
        setFlag(validIndex(line), line, on);
    }
    void
    setDirty(std::uint32_t line, bool on)
    {
        setFlag(dirtyIndex(line), line, on);
    }
    void
    setData(std::uint32_t line, std::uint32_t j, Word v)
    {
        setWord(dataIndex(line, j), v);
    }

    Addr lineBytes() const { return static_cast<Addr>(lineWords_) * 4; }
    std::uint32_t
    lineIndexOf(Addr addr) const
    {
        return static_cast<std::uint32_t>((addr / lineBytes()) % lines_);
    }
    std::uint32_t
    wordOffsetOf(Addr addr) const
    {
        return static_cast<std::uint32_t>((addr / 4) % lineWords_);
    }

    // Observer unit mapping (matches cacheLineAceUnits).
    std::uint32_t
    metaUnit(std::uint32_t line) const
    {
        return line * (1 + lineWords_);
    }
    std::uint32_t
    dataUnit(std::uint32_t line, std::uint32_t j) const
    {
        return metaUnit(line) + 1 + j;
    }

    std::optional<TrapKind> writebackLine(std::uint32_t line,
                                          CacheModel* next,
                                          MemoryImage& mem,
                                          SimObserver* obs, Cycle now);
    std::optional<TrapKind> refillLine(std::uint32_t line, Addr base,
                                       CacheModel* next, MemoryImage& mem,
                                       SimObserver* obs, Cycle now);
    std::optional<TrapKind> ensureLine(Addr addr, CacheModel* next,
                                       MemoryImage& mem, SimObserver* obs,
                                       Cycle now, std::uint32_t& line);

    TargetStructure structure_;
    SmId sm_;
    /** True for private L1 data caches (stores propagate to the next
     *  level immediately); false for the write-back shared L2. */
    bool writeThrough_;
    std::uint32_t lines_;
    std::uint32_t lineWords_;
    std::uint32_t bitmapWords_; ///< words per packed line bitmap
    std::uint32_t dataBase_;    ///< word index of the first data word
    std::vector<Word> words_;
    PageTracker pages_;
};

} // namespace gpr

#endif // GPR_SIM_CACHE_HH
