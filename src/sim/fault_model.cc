#include "sim/fault_model.hh"

#include <array>
#include <string>

#include "common/logging.hh"

namespace gpr {
namespace {

constexpr std::array<std::string_view, kNumFaultBehaviors> kBehaviorNames = {
    "transient",
    "stuck-at-0",
    "stuck-at-1",
    "intermittent",
};

constexpr std::array<std::string_view, kNumFaultPatterns> kPatternNames = {
    "single",
    "adjacent-double",
    "adjacent-quad",
};

template <std::size_t N>
std::string
joinNames(const std::array<std::string_view, N>& names)
{
    std::string out;
    for (std::string_view n : names) {
        if (!out.empty())
            out += ", ";
        out += std::string(n);
    }
    return out;
}

} // namespace

std::string_view
faultBehaviorName(FaultBehavior b)
{
    const auto index = static_cast<std::size_t>(b);
    GPR_ASSERT(index < kBehaviorNames.size(), "bad fault behavior");
    return kBehaviorNames[index];
}

bool
tryFaultBehaviorFromName(std::string_view name, FaultBehavior& out)
{
    for (std::size_t i = 0; i < kBehaviorNames.size(); ++i) {
        if (name == kBehaviorNames[i]) {
            out = static_cast<FaultBehavior>(i);
            return true;
        }
    }
    return false;
}

FaultBehavior
faultBehaviorFromName(std::string_view name)
{
    FaultBehavior out;
    if (tryFaultBehaviorFromName(name, out))
        return out;
    fatal("unknown fault behavior '", name,
          "'; known: ", joinNames(kBehaviorNames));
}

std::string_view
faultPatternName(FaultPattern p)
{
    const auto index = static_cast<std::size_t>(p);
    GPR_ASSERT(index < kPatternNames.size(), "bad fault pattern");
    return kPatternNames[index];
}

bool
tryFaultPatternFromName(std::string_view name, FaultPattern& out)
{
    for (std::size_t i = 0; i < kPatternNames.size(); ++i) {
        if (name == kPatternNames[i]) {
            out = static_cast<FaultPattern>(i);
            return true;
        }
    }
    return false;
}

FaultPattern
faultPatternFromName(std::string_view name)
{
    FaultPattern out;
    if (tryFaultPatternFromName(name, out))
        return out;
    fatal("unknown fault pattern '", name,
          "'; known: ", joinNames(kPatternNames));
}

} // namespace gpr
