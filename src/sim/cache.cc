#include "sim/cache.hh"

namespace gpr {

CacheModel::CacheModel(TargetStructure structure, SmId sm,
                       std::uint32_t lines, std::uint32_t line_words)
    : structure_(structure), sm_(sm),
      writeThrough_(structure == TargetStructure::L1DataCache),
      lines_(lines), lineWords_(line_words)
{
    GPR_ASSERT(lines_ > 0 && lineWords_ > 0,
               "cache geometry must be non-zero");
    bitmapWords_ = (lines_ + 31) / 32;
    dataBase_ = lines_ + 2 * bitmapWords_;
    const std::size_t total =
        static_cast<std::size_t>(dataBase_) +
        static_cast<std::size_t>(lines_) * lineWords_;
    words_.assign(total, 0u);
    pages_.resize(total);
}

void
CacheModel::setFlag(std::uint32_t index, std::uint32_t line, bool on)
{
    const Word bit = 1u << (line % 32);
    setWord(index, on ? (words_[index] | bit) : (words_[index] & ~bit));
}

std::optional<TrapKind>
CacheModel::writebackLine(std::uint32_t line, CacheModel* next,
                          MemoryImage& mem, SimObserver* obs, Cycle now)
{
    const Word t = tag(line);
    // A fault-free tag is the line-base byte address: word- and
    // line-aligned, in bounds.  A corrupted one is detected here when it
    // is *detectably* bad; a word-aligned in-bounds corruption writes
    // the line to the wrong address — the stale-data SDC path.
    if (t & 3)
        return TrapKind::MisalignedAddress;
    if (!mem.inBounds(t))
        return TrapKind::GlobalOutOfBounds;
    if (obs) {
        obs->onRead(structure_, sm_, metaUnit(line), t, now);
        for (std::uint32_t j = 0; j < lineWords_; ++j)
            obs->onRead(structure_, sm_, dataUnit(line, j), data(line, j),
                        now);
    }
    for (std::uint32_t j = 0; j < lineWords_; ++j) {
        const Addr waddr = static_cast<Addr>(t) + static_cast<Addr>(j) * 4;
        if (!mem.inBounds(waddr))
            break; // the image ends mid-line: drop the tail words
        if (next) {
            if (auto trap =
                    next->write(waddr, data(line, j), nullptr, mem, obs, now))
                return trap;
        } else {
            mem.writeWord(waddr, data(line, j));
        }
    }
    setDirty(line, false);
    return std::nullopt;
}

std::optional<TrapKind>
CacheModel::refillLine(std::uint32_t line, Addr base, CacheModel* next,
                       MemoryImage& mem, SimObserver* obs, Cycle now)
{
    GPR_ASSERT(base <= 0xffffffffULL,
               "cache line base exceeds the 32-bit tag width");
    for (std::uint32_t j = 0; j < lineWords_; ++j) {
        const Addr waddr = base + static_cast<Addr>(j) * 4;
        Word v = 0; // words past the image end fill as zero
        if (mem.inBounds(waddr)) {
            if (next) {
                const Access a = next->read(waddr, nullptr, mem, obs, now);
                if (a.trap)
                    return a.trap;
                v = a.value;
            } else {
                v = mem.readWord(waddr);
            }
        }
        setData(line, j, v);
    }
    setTag(line, static_cast<Word>(base));
    setValid(line, true);
    setDirty(line, false);
    if (obs)
        obs->onAlloc(structure_, sm_, metaUnit(line), 1 + lineWords_, now);
    return std::nullopt;
}

std::optional<TrapKind>
CacheModel::ensureLine(Addr addr, CacheModel* next, MemoryImage& mem,
                       SimObserver* obs, Cycle now, std::uint32_t& line)
{
    line = lineIndexOf(addr);
    const Addr base = addr & ~(lineBytes() - 1);
    if (valid(line) && tag(line) == static_cast<Word>(base))
        return std::nullopt; // hit
    if (valid(line) && dirty(line)) {
        if (auto trap = writebackLine(line, next, mem, obs, now))
            return trap;
    }
    return refillLine(line, base, next, mem, obs, now);
}

CacheModel::Access
CacheModel::read(Addr addr, CacheModel* next, MemoryImage& mem,
                 SimObserver* obs, Cycle now)
{
    Access out;
    std::uint32_t line = 0;
    if (auto trap = ensureLine(addr, next, mem, obs, now, line)) {
        out.trap = trap;
        return out;
    }
    const std::uint32_t j = wordOffsetOf(addr);
    out.value = data(line, j);
    if (obs) {
        obs->onRead(structure_, sm_, metaUnit(line), tag(line), now);
        obs->onRead(structure_, sm_, dataUnit(line, j), out.value, now);
    }
    return out;
}

std::optional<TrapKind>
CacheModel::write(Addr addr, Word value, CacheModel* next,
                  MemoryImage& mem, SimObserver* obs, Cycle now)
{
    std::uint32_t line = 0;
    if (auto trap = ensureLine(addr, next, mem, obs, now, line))
        return trap;
    const std::uint32_t j = wordOffsetOf(addr);
    setData(line, j, value);
    if (writeThrough_) {
        // Propagate at the *architected* store address: a corrupted tag
        // cannot redirect a write-through store, only later reads.
        if (next) {
            if (auto trap = next->write(addr, value, nullptr, mem, obs,
                                        now))
                return trap;
        } else {
            mem.writeWord(addr, value);
        }
    } else {
        setDirty(line, true);
    }
    if (obs) {
        obs->onRead(structure_, sm_, metaUnit(line), tag(line), now);
        obs->onWrite(structure_, sm_, dataUnit(line, j), now);
        obs->onWrite(structure_, sm_, metaUnit(line), now);
    }
    return std::nullopt;
}

std::optional<TrapKind>
CacheModel::flushDirty(CacheModel* next, MemoryImage& mem,
                       SimObserver* obs, Cycle now)
{
    for (std::uint32_t line = 0; line < lines_; ++line) {
        if (valid(line) && dirty(line)) {
            if (auto trap = writebackLine(line, next, mem, obs, now))
                return trap;
        }
    }
    return std::nullopt;
}

std::uint32_t
CacheModel::fetchInst(std::uint32_t pc, SimObserver* obs, Cycle now)
{
    const std::uint32_t line = (pc / lineWords_) % lines_;
    const std::uint32_t base = pc - pc % lineWords_;
    if (!(valid(line) && tag(line) == base)) {
        // Instructions are read-only: evict silently, refill identity.
        for (std::uint32_t j = 0; j < lineWords_; ++j)
            setData(line, j, base + j);
        setTag(line, base);
        setValid(line, true);
        setDirty(line, false);
        if (obs)
            obs->onAlloc(structure_, sm_, metaUnit(line), 1 + lineWords_,
                         now);
    }
    const std::uint32_t j = pc % lineWords_;
    const std::uint32_t mapped = data(line, j);
    if (obs) {
        obs->onRead(structure_, sm_, metaUnit(line), tag(line), now);
        obs->onRead(structure_, sm_, dataUnit(line, j), mapped, now);
    }
    return mapped;
}

void
CacheModel::flipBit(BitIndex bit)
{
    const std::uint64_t lb = cacheLineBits(lineWords_);
    GPR_ASSERT(bit < lb * lines_, "cache fault bit out of range");
    const std::uint32_t line = static_cast<std::uint32_t>(bit / lb);
    const std::uint32_t r = static_cast<std::uint32_t>(bit % lb);
    if (r < 32) {
        setWord(tagIndex(line), tag(line) ^ (1u << r));
    } else if (r == 32) {
        setValid(line, !valid(line));
    } else if (r == 33) {
        setDirty(line, !dirty(line));
    } else {
        const std::uint32_t j = (r - 34) / 32;
        const std::uint32_t b = (r - 34) % 32;
        setData(line, j, data(line, j) ^ (1u << b));
    }
}

void
CacheModel::forceBit(BitIndex bit, bool value)
{
    const std::uint64_t lb = cacheLineBits(lineWords_);
    GPR_ASSERT(bit < lb * lines_, "cache fault bit out of range");
    const std::uint32_t line = static_cast<std::uint32_t>(bit / lb);
    const std::uint32_t r = static_cast<std::uint32_t>(bit % lb);
    if (r < 32) {
        const Word m = 1u << r;
        setWord(tagIndex(line), value ? (tag(line) | m) : (tag(line) & ~m));
    } else if (r == 32) {
        setValid(line, value);
    } else if (r == 33) {
        setDirty(line, value);
    } else {
        const std::uint32_t j = (r - 34) / 32;
        const Word m = 1u << ((r - 34) % 32);
        setData(line, j,
                value ? (data(line, j) | m) : (data(line, j) & ~m));
    }
}

void
CacheModel::updateIfPresent(Addr addr, Word value)
{
    const std::uint32_t line = lineIndexOf(addr);
    const Addr base = addr & ~(lineBytes() - 1);
    if (valid(line) && tag(line) == static_cast<Word>(base))
        setData(line, wordOffsetOf(addr), value);
}

void
CacheModel::revertTo(const CacheModel& baseline)
{
    GPR_ASSERT(baseline.words_.size() == words_.size(),
               "revert against a different-shaped cache");
    pages_.revertTo(words_, baseline.words_);
}

void
CacheModel::captureDelta(const CacheModel& baseline,
                         StorageDelta& out) const
{
    GPR_ASSERT(baseline.words_.size() == words_.size(),
               "delta against a different-shaped cache");
    pages_.captureDelta(words_, baseline.words_, out);
}

} // namespace gpr
