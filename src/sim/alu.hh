/**
 * @file
 * Pure functional semantics of the ALU opcodes — separated from the core
 * so every opcode can be unit-tested in isolation.
 *
 * All values are 32-bit raw words; float ops reinterpret bits (IEEE-754
 * binary32, round-to-nearest-even, matching both vendors' default mode).
 */

#ifndef GPR_SIM_ALU_HH
#define GPR_SIM_ALU_HH

#include "common/types.hh"
#include "isa/opcode.hh"

namespace gpr {

/**
 * Evaluate an ALU/conversion opcode on raw word operands.
 * @p a, @p b, @p c are the (up to three) sources; unused sources are
 * ignored.  Only valid for data-computing opcodes (panics otherwise).
 */
Word evalAlu(Opcode op, Word a, Word b, Word c);

/** Evaluate an integer comparison (signed 32-bit). */
bool evalCmpInt(CmpOp cmp, Word a, Word b);

/** Evaluate a float comparison (IEEE semantics: NaN => false, NE true). */
bool evalCmpFloat(CmpOp cmp, Word a, Word b);

} // namespace gpr

#endif // GPR_SIM_ALU_HH
