/**
 * @file
 * Simulation traps: abnormal kernel terminations.
 *
 * Traps are *expected data* in a fault-injection campaign (they classify as
 * DUE — Detected Unrecoverable Error), never C++ errors.  A fault-free run
 * that traps indicates a workload bug and is rejected by the campaign
 * driver before any injection happens.
 */

#ifndef GPR_SIM_TRAP_HH
#define GPR_SIM_TRAP_HH

#include <cstdint>
#include <string_view>

namespace gpr {

enum class TrapKind : std::uint8_t
{
    None,              ///< clean EXIT
    GlobalOutOfBounds, ///< global access outside the memory image
    SharedOutOfBounds, ///< LDS access outside the block's allocation
    BarrierDeadlock,   ///< no warp can ever make progress again
    Watchdog,          ///< exceeded the cycle budget (hang / livelock)
    InvalidControlFlow, ///< reconvergence-stack underflow (corrupted state)
    MisalignedAddress,  ///< word access at a non-word-aligned byte address
};

constexpr std::string_view
trapKindName(TrapKind k)
{
    switch (k) {
      case TrapKind::None:
        return "none";
      case TrapKind::GlobalOutOfBounds:
        return "global-out-of-bounds";
      case TrapKind::SharedOutOfBounds:
        return "shared-out-of-bounds";
      case TrapKind::BarrierDeadlock:
        return "barrier-deadlock";
      case TrapKind::Watchdog:
        return "watchdog-timeout";
      case TrapKind::InvalidControlFlow:
        return "invalid-control-flow";
      case TrapKind::MisalignedAddress:
        return "misaligned-address";
    }
    return "unknown";
}

} // namespace gpr

#endif // GPR_SIM_TRAP_HH
