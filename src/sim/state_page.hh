/**
 * @file
 * Page-granular dirty tracking and delta encoding over flat word arrays —
 * the shared machinery behind the checkpoint engine v2's copy-on-write
 * restore path and its incremental (dirty-page) state hashing.
 *
 * Both WordStorage and MemoryImage keep their words in one contiguous
 * std::vector<Word>; "pages" here are purely logical 256-word spans of
 * that vector, so the hot read/write paths keep their flat indexing.  A
 * PageTracker rides alongside the vector and maintains two bitmaps plus
 * a per-page digest cache:
 *
 *  - **restore-dirty**: pages mutated since the tracker was last marked
 *    clean against a baseline.  Reverting to the baseline touches only
 *    these pages; capturing a delta checkpoint copies only these pages.
 *  - **hash-dirty**: pages mutated since their digest was last computed.
 *    Hashing a storage re-digests only these pages and folds the cached
 *    digests of the rest, so the per-interval trajectory hash costs
 *    O(pages touched since the last boundary), not O(state).
 *
 * Page digests are position-salted (the page index is folded in), and
 * the storage-level digest is their sum mod 2^64: order-independent, so
 * it can be rebuilt from the cache without walking words, while two
 * different changed pages can only cancel through a full 64-bit
 * coincidence — the same collision budget the trajectory hash already
 * accepts (see common/hash.hh).
 */

#ifndef GPR_SIM_STATE_PAGE_HH
#define GPR_SIM_STATE_PAGE_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/hash.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace gpr {

/** Words per logical state page (27 bits of address stay word-flat). */
constexpr std::uint32_t kStatePageWords = 256;

/**
 * Sparse page-set delta of one word array against a baseline array of
 * the same size: ascending page indices plus their full contents,
 * concatenated (the tail page may be short when the array size is not a
 * page multiple — apply/capture derive each page's span from the array
 * size, so no padding is stored).
 */
struct StorageDelta
{
    std::vector<std::uint32_t> pages;
    std::vector<Word> words;

    bool empty() const { return pages.empty(); }

    /** Resident footprint of this delta (accounting, not allocation). */
    std::size_t
    bytes() const
    {
        return pages.size() * sizeof(std::uint32_t) +
               words.size() * sizeof(Word);
    }
};

class PageTracker
{
  public:
    /** Size (or resize) for an array of @p num_words words.  All pages
     *  start restore-dirty and hash-dirty: nothing is known about the
     *  array yet, which is always safe. */
    void
    resize(std::size_t num_words)
    {
        num_words_ = num_words;
        const std::size_t pages = pageCount();
        const std::size_t slots = (pages + 63) / 64;
        restore_dirty_.assign(slots, ~std::uint64_t{0});
        hash_dirty_.assign(slots, ~std::uint64_t{0});
        digest_.assign(pages, 0);
        // Bits past pageCount() in the last slot must stay clear: the
        // bitmap walkers treat every set bit as a real page index.
        if (const std::size_t tail = pages & 63; tail != 0 && slots > 0) {
            const std::uint64_t mask = (~std::uint64_t{0}) >> (64 - tail);
            restore_dirty_.back() &= mask;
            hash_dirty_.back() &= mask;
        }
    }

    std::size_t
    pageCount() const
    {
        return (num_words_ + kStatePageWords - 1) / kStatePageWords;
    }

    /** Words covered by page @p p (short for the tail page). */
    std::uint32_t
    pageWords(std::size_t p) const
    {
        const std::size_t base =
            static_cast<std::size_t>(p) * kStatePageWords;
        const std::size_t left = num_words_ - base;
        return static_cast<std::uint32_t>(
            left < kStatePageWords ? left : kStatePageWords);
    }

    /** Record a mutation of word @p word (both consumers go dirty). */
    void
    onWrite(std::size_t word)
    {
        const std::size_t p = word / kStatePageWords;
        const std::uint64_t bit = std::uint64_t{1} << (p & 63);
        restore_dirty_[p >> 6] |= bit;
        hash_dirty_[p >> 6] |= bit;
    }

    /** Declare the array's current content the baseline: the next
     *  revert/capture sees only pages mutated from here on. */
    void
    markCleanForRestore()
    {
        std::fill(restore_dirty_.begin(), restore_dirty_.end(), 0);
    }

    /**
     * Sum of position-salted page digests over @p words (which must be
     * the tracked array).  Recomputes only hash-dirty pages; everything
     * else folds from the cache.
     */
    std::uint64_t
    digestSum(const std::vector<Word>& words) const
    {
        GPR_ASSERT(words.size() == num_words_, "tracker out of sync");
        std::uint64_t sum = 0;
        const std::size_t pages = pageCount();
        for (std::size_t slot = 0; slot < hash_dirty_.size(); ++slot) {
            std::uint64_t bits = hash_dirty_[slot];
            while (bits) {
                const auto p = (slot << 6) +
                               static_cast<std::size_t>(
                                   __builtin_ctzll(bits));
                bits &= bits - 1;
                digest_[p] = StateHash::wordsDigest(
                    words.data() + p * kStatePageWords, pageWords(p),
                    static_cast<std::uint64_t>(p));
            }
            hash_dirty_[slot] = 0;
        }
        for (std::size_t p = 0; p < pages; ++p)
            sum += digest_[p];
        return sum;
    }

    /**
     * Cached salted digest of page @p p.  Valid only while the page is
     * not hash-dirty — i.e. immediately after a digestSum() pass — which
     * is exactly when the canonical-overlay hash needs it to swap one
     * page's contribution out of the sum.
     */
    std::uint64_t
    cachedPageDigest(std::size_t p) const
    {
        GPR_ASSERT(p < digest_.size() &&
                       (hash_dirty_[p >> 6] &
                        (std::uint64_t{1} << (p & 63))) == 0,
                   "page digest not cached");
        return digest_[p];
    }

    /**
     * Copy every restore-dirty page of @p words back from @p baseline
     * (same size), clearing the restore-dirty set and marking the
     * reverted pages hash-dirty.  After this the array's content equals
     * the baseline's, provided every mutation since the last
     * markCleanForRestore() went through onWrite().
     */
    void
    revertTo(std::vector<Word>& words, const std::vector<Word>& baseline)
    {
        GPR_ASSERT(words.size() == num_words_ &&
                       baseline.size() == num_words_,
                   "revert shape mismatch");
        for (std::size_t slot = 0; slot < restore_dirty_.size(); ++slot) {
            std::uint64_t bits = restore_dirty_[slot];
            hash_dirty_[slot] |= bits;
            restore_dirty_[slot] = 0;
            while (bits) {
                const auto p = (slot << 6) +
                               static_cast<std::size_t>(
                                   __builtin_ctzll(bits));
                bits &= bits - 1;
                const std::size_t base = p * kStatePageWords;
                std::memcpy(words.data() + base, baseline.data() + base,
                            pageWords(p) * sizeof(Word));
            }
        }
    }

    /**
     * Encode into @p out the restore-dirty pages of @p words whose
     * content actually differs from @p baseline (pages that were written
     * back to their baseline value are skipped).  The restore-dirty set
     * is left untouched — during a recording run it accumulates from the
     * baseline capture onward, and several checkpoints capture against
     * the same baseline.
     */
    void
    captureDelta(const std::vector<Word>& words,
                 const std::vector<Word>& baseline,
                 StorageDelta& out) const
    {
        GPR_ASSERT(words.size() == num_words_ &&
                       baseline.size() == num_words_,
                   "delta shape mismatch");
        out.pages.clear();
        out.words.clear();
        for (std::size_t slot = 0; slot < restore_dirty_.size(); ++slot) {
            std::uint64_t bits = restore_dirty_[slot];
            while (bits) {
                const auto p = (slot << 6) +
                               static_cast<std::size_t>(
                                   __builtin_ctzll(bits));
                bits &= bits - 1;
                const std::size_t base = p * kStatePageWords;
                const std::uint32_t n = pageWords(p);
                if (std::memcmp(words.data() + base,
                                baseline.data() + base,
                                n * sizeof(Word)) == 0) {
                    continue;
                }
                out.pages.push_back(static_cast<std::uint32_t>(p));
                out.words.insert(out.words.end(), words.begin() +
                                 static_cast<std::ptrdiff_t>(base),
                                 words.begin() +
                                 static_cast<std::ptrdiff_t>(base + n));
            }
        }
    }

    /** Overwrite the delta's pages in @p words, marking them dirty for
     *  both consumers (they now differ from the baseline and need
     *  re-digesting). */
    void
    applyDelta(std::vector<Word>& words, const StorageDelta& delta)
    {
        GPR_ASSERT(words.size() == num_words_, "delta shape mismatch");
        std::size_t src = 0;
        for (const std::uint32_t p : delta.pages) {
            const std::size_t base =
                static_cast<std::size_t>(p) * kStatePageWords;
            const std::uint32_t n = pageWords(p);
            GPR_ASSERT(base < num_words_ && src + n <= delta.words.size(),
                       "delta page out of range");
            std::memcpy(words.data() + base, delta.words.data() + src,
                        n * sizeof(Word));
            src += n;
            onWrite(base);
        }
        GPR_ASSERT(src == delta.words.size(), "delta payload mismatch");
    }

  private:
    std::size_t num_words_ = 0;
    std::vector<std::uint64_t> restore_dirty_;
    /**
     * Mutable with digest_: the cache refreshes inside const hashing.
     *
     * Guard discipline (lint rule D4): single-writer by ownership, not
     * by lock.  A PageTracker rides inside the WordStorage/MemoryImage
     * of exactly one Gpu, and every Gpu is owned by exactly one
     * FaultInjector, which campaign/orchestrator workers construct
     * per-task and never share.  The only cross-thread object is the
     * cell's CheckpointPack, which is adopted through
     * shared_ptr<const CheckpointPack> — its trackers are never hashed
     * or reverted after publication.  Shard pre-draw batching keeps
     * this property: sampleRandom() only draws from the injector's own
     * RNG stream and reads pack windows (const); the stable_sort and
     * the subsequent inject() calls all run on the worker that owns
     * the injector.  Verified dynamically by the TSan CI job over the
     * campaign/checkpoint/orchestrator test subset.
     */
    // gpr:guarded_by(single-writer: owning FaultInjector's worker task)
    mutable std::vector<std::uint64_t> hash_dirty_;
    // gpr:guarded_by(single-writer: owning FaultInjector's worker task)
    mutable std::vector<std::uint64_t> digest_;
};

} // namespace gpr

#endif // GPR_SIM_STATE_PAGE_HH
