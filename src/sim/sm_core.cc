#include "sim/sm_core.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/alu.hh"
#include "sim/structure_registry.hh"

namespace gpr {

SmCore::SmCore(const GpuConfig& config, SmId id)
    : config_(config),
      id_(id),
      vrf_(config.regFileWordsPerSm),
      lds_(config.smemWordsPerSm())
{
    if (config.scalarRegWordsPerSm > 0)
        srf_.emplace(config.scalarRegWordsPerSm);
    if (config.l1dBytesPerSm > 0) {
        l1d_.emplace(TargetStructure::L1DataCache, id,
                     config.l1dLinesPerSm(), config.cacheLineWords());
    }
    if (config.l1iBytesPerSm > 0) {
        l1i_.emplace(TargetStructure::L1InstructionCache, id,
                     config.l1iLinesPerSm(), config.cacheLineWords());
    }

    blocks_.resize(config.maxBlocksPerSm);
    warps_.resize(config.maxWarpsPerSm);
    warp_slot_used_.assign(config.maxWarpsPerSm, false);
    warp_age_.assign(config.maxWarpsPerSm, 0);
}

void
SmCore::reset()
{
    pfault_.reset(); // storage overlays die with the reassignment below
    vrf_ = WordStorage(config_.regFileWordsPerSm);
    if (srf_)
        srf_.emplace(config_.scalarRegWordsPerSm);
    lds_ = WordStorage(config_.smemWordsPerSm());
    if (l1d_) {
        l1d_.emplace(TargetStructure::L1DataCache, id_,
                     config_.l1dLinesPerSm(), config_.cacheLineWords());
    }
    if (l1i_) {
        l1i_.emplace(TargetStructure::L1InstructionCache, id_,
                     config_.l1iLinesPerSm(), config_.cacheLineWords());
    }

    for (auto& b : blocks_)
        b = BlockContext{};
    for (auto& w : warps_)
        w = WarpContext{};
    std::fill(warp_slot_used_.begin(), warp_slot_used_.end(), false);
    std::fill(warp_age_.begin(), warp_age_.end(), 0);
    resident_blocks_ = 0;
    resident_warps_ = 0;
    dispatch_seq_ = 0;
    rr_cursor_ = 0;
    gto_last_ = -1;
}

void
SmCore::applyFault(TargetStructure structure, BitIndex first_bit,
                   std::uint64_t mask)
{
    for (unsigned k = 0; (mask >> k) != 0; ++k) {
        if ((mask >> k) & 1)
            mutateBit(structure, first_bit + k, BitMutation::Flip);
    }
}

WordStorage&
SmCore::storageFor(TargetStructure structure)
{
    switch (structure) {
      case TargetStructure::VectorRegisterFile:
        return vrf_;
      case TargetStructure::ScalarRegisterFile:
        GPR_ASSERT(srf_, "no scalar register file on this architecture");
        return *srf_;
      case TargetStructure::SharedMemory:
        return lds_;
      default:
        panic("not a word-storage structure");
    }
}

void
SmCore::bindPersistentFault(const PersistentFault& fault)
{
    const StructureSpec& spec = structureSpec(fault.structure);
    GPR_ASSERT(spec.persistenceHook != PersistenceHook::None,
               "structure has no persistence hook");
    GPR_ASSERT(!pfault_, "at most one persistent fault per SM per run");
    GPR_ASSERT(fault.mask != 0, "empty persistent-fault mask");
    pfault_ = fault;
    if (spec.persistenceHook == PersistenceHook::StorageReadOverlay) {
        // The pattern mask is cell-aligned with width dividing 32, so it
        // never crosses the 32-bit word boundary.
        const auto word = static_cast<std::uint32_t>(fault.firstBit / 32);
        const auto shift = static_cast<unsigned>(fault.firstBit % 32);
        const Word word_mask = static_cast<Word>(fault.mask) << shift;
        WordStorage& storage = storageFor(fault.structure);
        storage.setStuckBits(word, word_mask, fault.value ? word_mask : 0);
        // A stuck-at overlay is active from the fault cycle to the end
        // of the run, so the observable value of the stuck word is its
        // overlaid one — hash that (the persistent early-out compares
        // against golden raw hashes; see WordStorage::hashInto).
        if (fault.alwaysActive)
            storage.setHashOverlayCanonical(true);
    }
}

void
SmCore::persistentFaultTick(bool active)
{
    if (!pfault_)
        return;
    const StructureSpec& spec = structureSpec(pfault_->structure);
    if (spec.persistenceHook == PersistenceHook::StorageReadOverlay) {
        storageFor(pfault_->structure).setStuckEnabled(active);
        return;
    }
    // CycleReassert: force the faulty control bits for the cycle about
    // to step.  When inactive (intermittent off-phase) nothing is
    // asserted and the last forced value simply persists in the context
    // fields — register semantics, matching the retention behavior of
    // the storage overlay's raw words.
    if (!active)
        return;
    const BitMutation mut =
        pfault_->value ? BitMutation::Force1 : BitMutation::Force0;
    for (unsigned k = 0; (pfault_->mask >> k) != 0; ++k) {
        if ((pfault_->mask >> k) & 1)
            mutateBit(pfault_->structure, pfault_->firstBit + k, mut);
    }
}

void
SmCore::clearPersistentFault()
{
    if (!pfault_)
        return;
    if (structureSpec(pfault_->structure).persistenceHook ==
        PersistenceHook::StorageReadOverlay) {
        storageFor(pfault_->structure).clearStuck();
    }
    pfault_.reset();
}

std::optional<TrapKind>
SmCore::flushL1d(RunContext& ctx, Cycle now)
{
    if (!l1d_)
        return std::nullopt;
    return l1d_->flushDirty(ctx.l2, *ctx.memory, ctx.observer, now);
}

void
SmCore::mutateBit(TargetStructure structure, BitIndex bit, BitMutation mut)
{
    // The three leaf cell types, under flip/force-0/force-1.
    const auto mut_u32 = [mut](std::uint32_t& v, unsigned b) {
        const std::uint32_t m = std::uint32_t{1} << b;
        if (mut == BitMutation::Flip)
            v ^= m;
        else if (mut == BitMutation::Force0)
            v &= ~m;
        else
            v |= m;
    };
    const auto mut_mask = [mut](LaneMask& v, unsigned b) {
        const LaneMask m = LaneMask{1} << b;
        if (mut == BitMutation::Flip)
            v ^= m;
        else if (mut == BitMutation::Force0)
            v &= ~m;
        else
            v |= m;
    };

    switch (structure) {
      case TargetStructure::VectorRegisterFile:
      case TargetStructure::ScalarRegisterFile:
      case TargetStructure::SharedMemory:
        // Word storage persists via the read overlay, never by forcing
        // the raw words (that would destroy the retained value an
        // intermittent fault must recover).
        GPR_ASSERT(mut == BitMutation::Flip,
                   "word-storage persistence uses the read overlay");
        storageFor(structure).flipBitAt(bit);
        return;

      case TargetStructure::PredicateFile: {
        const std::uint64_t per_warp = predBitsPerWarp(config_);
        const auto slot = static_cast<std::size_t>(bit / per_warp);
        const std::uint64_t rem = bit % per_warp;
        GPR_ASSERT(slot < warps_.size(),
                   "predicate-file fault bit out of range");
        const auto preg = static_cast<unsigned>(rem / config_.warpWidth);
        const auto lane = static_cast<unsigned>(rem % config_.warpWidth);
        // A flip in an unused warp slot is dead state: dispatch fully
        // reinitialises the context before reuse, and unused slots are
        // (deliberately) outside the trajectory hash.
        mut_mask(warps_[slot].preds[preg], lane);
        return;
      }

      case TargetStructure::L1DataCache:
        GPR_ASSERT(l1d_, "no L1 data cache on this configuration");
        if (mut == BitMutation::Flip)
            l1d_->flipBit(bit);
        else
            l1d_->forceBit(bit, mut == BitMutation::Force1);
        return;

      case TargetStructure::L1InstructionCache:
        GPR_ASSERT(l1i_, "no L1 instruction cache on this configuration");
        if (mut == BitMutation::Flip)
            l1i_->flipBit(bit);
        else
            l1i_->forceBit(bit, mut == BitMutation::Force1);
        return;

      case TargetStructure::L2Cache:
        panic("chip-scoped L2 faults are applied by Gpu, not an SM");

      case TargetStructure::SimtStack: {
        const std::uint64_t per_warp = simtBitsPerWarp(config_);
        const auto slot = static_cast<std::size_t>(bit / per_warp);
        std::uint64_t rem = bit % per_warp;
        GPR_ASSERT(slot < warps_.size(),
                   "SIMT-stack fault bit out of range");
        WarpContext& w = warps_[slot];
        if (rem < 32) {
            mut_u32(w.pc, static_cast<unsigned>(rem));
            return;
        }
        rem -= 32;
        if (rem < config_.warpWidth) {
            mut_mask(w.activeMask, static_cast<unsigned>(rem));
            return;
        }
        rem -= config_.warpWidth;
        if (rem < config_.warpWidth) {
            mut_mask(w.exitedMask, static_cast<unsigned>(rem));
            return;
        }
        rem -= config_.warpWidth;
        const std::uint64_t entry_bits = simtEntryBits(config_);
        const auto entry = static_cast<std::size_t>(rem / entry_bits);
        std::uint64_t ebit = rem % entry_bits;
        if (entry >= w.stack.size())
            return; // empty hardware cell: contents are dead
        ReconvEntry& e = w.stack[entry];
        if (ebit == 0) {
            // The kind bit: SyncToken = 0, PendingPath = 1.
            if (mut == BitMutation::Flip) {
                e.kind = e.kind == ReconvEntry::Kind::SyncToken
                             ? ReconvEntry::Kind::PendingPath
                             : ReconvEntry::Kind::SyncToken;
            } else {
                e.kind = mut == BitMutation::Force1
                             ? ReconvEntry::Kind::PendingPath
                             : ReconvEntry::Kind::SyncToken;
            }
            return;
        }
        ebit -= 1;
        if (ebit < 32) {
            mut_u32(e.pc, static_cast<unsigned>(ebit));
            return;
        }
        mut_mask(e.mask, static_cast<unsigned>(ebit - 32));
        return;
      }
    }
    panic("bad structure");
}

std::uint32_t
SmCore::warpSlotOf(const WarpContext& w) const
{
    return static_cast<std::uint32_t>(&w - warps_.data());
}

std::uint32_t
SmCore::predUnit(const WarpContext& w, unsigned preg) const
{
    return warpSlotOf(w) * kNumPredRegs + preg;
}

std::uint32_t
SmCore::simtUnit(const WarpContext& w, unsigned unit) const
{
    return warpSlotOf(w) * kSimtUnitsPerWarp + unit;
}

SmCore::Snapshot
SmCore::snapshot() const
{
    return Snapshot{vrf_,
                    srf_,
                    lds_,
                    l1d_,
                    l1i_,
                    blocks_,
                    warps_,
                    warp_slot_used_,
                    warp_age_,
                    resident_blocks_,
                    resident_warps_,
                    dispatch_seq_,
                    rr_cursor_,
                    gto_last_};
}

void
SmCore::restore(const Snapshot& s)
{
    GPR_ASSERT(s.vrf.size() == vrf_.size() &&
                   s.lds.size() == lds_.size() &&
                   s.srf.has_value() == srf_.has_value() &&
                   s.l1d.has_value() == l1d_.has_value() &&
                   s.l1i.has_value() == l1i_.has_value() &&
                   s.blocks.size() == blocks_.size() &&
                   s.warps.size() == warps_.size(),
               "checkpoint shape does not match this SM's configuration");
    pfault_.reset(); // snapshots are taken on fault-free runs
    vrf_ = s.vrf;
    srf_ = s.srf;
    lds_ = s.lds;
    l1d_ = s.l1d;
    l1i_ = s.l1i;
    blocks_ = s.blocks;
    warps_ = s.warps;
    warp_slot_used_ = s.warpSlotUsed;
    warp_age_ = s.warpAge;
    resident_blocks_ = s.residentBlocks;
    resident_warps_ = s.residentWarps;
    dispatch_seq_ = s.dispatchSeq;
    rr_cursor_ = s.rrCursor;
    gto_last_ = s.gtoLast;
}

SmCore::ControlState
SmCore::captureControl() const
{
    return ControlState{blocks_,
                        warps_,
                        warp_slot_used_,
                        warp_age_,
                        resident_blocks_,
                        resident_warps_,
                        dispatch_seq_,
                        rr_cursor_,
                        gto_last_};
}

void
SmCore::restoreControl(const ControlState& c)
{
    GPR_ASSERT(c.blocks.size() == blocks_.size() &&
                   c.warps.size() == warps_.size(),
               "control state does not match this SM's configuration");
    pfault_.reset(); // checkpoints are recorded on fault-free runs
    blocks_ = c.blocks;
    warps_ = c.warps;
    warp_slot_used_ = c.warpSlotUsed;
    warp_age_ = c.warpAge;
    resident_blocks_ = c.residentBlocks;
    resident_warps_ = c.residentWarps;
    dispatch_seq_ = c.dispatchSeq;
    rr_cursor_ = c.rrCursor;
    gto_last_ = c.gtoLast;
}

void
SmCore::markStoragesClean()
{
    vrf_.markCleanForRestore();
    if (srf_)
        srf_->markCleanForRestore();
    lds_.markCleanForRestore();
    if (l1d_)
        l1d_->markCleanForRestore();
    if (l1i_)
        l1i_->markCleanForRestore();
}

void
SmCore::revertStorages(const Snapshot& baseline)
{
    GPR_ASSERT(baseline.srf.has_value() == srf_.has_value() &&
                   baseline.l1d.has_value() == l1d_.has_value() &&
                   baseline.l1i.has_value() == l1i_.has_value(),
               "baseline does not match this SM's configuration");
    vrf_.revertTo(baseline.vrf);
    if (srf_)
        srf_->revertTo(*baseline.srf);
    lds_.revertTo(baseline.lds);
    if (l1d_)
        l1d_->revertTo(*baseline.l1d);
    if (l1i_)
        l1i_->revertTo(*baseline.l1i);
}

void
SmCore::captureStorageDelta(const Snapshot& baseline,
                            SmStorageDelta& out) const
{
    GPR_ASSERT(baseline.srf.has_value() == srf_.has_value() &&
                   baseline.l1d.has_value() == l1d_.has_value() &&
                   baseline.l1i.has_value() == l1i_.has_value(),
               "baseline does not match this SM's configuration");
    vrf_.captureDelta(baseline.vrf, out.vrf);
    if (srf_)
        srf_->captureDelta(*baseline.srf, out.srf);
    lds_.captureDelta(baseline.lds, out.lds);
    if (l1d_)
        l1d_->captureDelta(*baseline.l1d, out.l1d);
    if (l1i_)
        l1i_->captureDelta(*baseline.l1i, out.l1i);
}

void
SmCore::applyStorageDelta(const SmStorageDelta& delta)
{
    vrf_.applyDelta(delta.vrf);
    if (srf_)
        srf_->applyDelta(delta.srf);
    lds_.applyDelta(delta.lds);
    if (l1d_)
        l1d_->applyDelta(delta.l1d);
    if (l1i_)
        l1i_->applyDelta(delta.l1i);
}

void
SmCore::hashInto(StateHash& h) const
{
    vrf_.hashInto(h);
    if (srf_)
        srf_->hashInto(h);
    lds_.hashInto(h);
    if (l1d_)
        l1d_->hashInto(h);
    if (l1i_)
        l1i_->hashInto(h);

    for (const BlockContext& b : blocks_) {
        h.mix(b.active);
        if (!b.active)
            continue; // stale slots are reinitialised on dispatch
        h.mix(b.blockId);
        h.mix(b.bx);
        h.mix(b.by);
        h.mix(b.vrfBase);
        h.mix(b.srfBase);
        h.mix(b.ldsBase);
        h.mix(b.warpSlots.size());
        for (std::uint32_t slot : b.warpSlots)
            h.mix(slot);
        h.mix(b.liveWarps);
        h.mix(b.barrierArrived);
    }
    for (std::size_t i = 0; i < warps_.size(); ++i) {
        h.mix(static_cast<std::uint64_t>(warp_slot_used_[i]));
        if (!warp_slot_used_[i])
            continue; // ditto
        h.mix(warp_age_[i]);
        warps_[i].hashInto(h);
    }
    h.mix(resident_blocks_);
    h.mix(resident_warps_);
    h.mix(dispatch_seq_);
    h.mix(rr_cursor_);
    h.mix(static_cast<std::uint64_t>(
        static_cast<std::uint32_t>(gto_last_)));
}

bool
SmCore::tryDispatchBlock(RunContext& ctx, std::uint32_t block_id, Cycle now)
{
    // Find a free block slot.
    std::int32_t slot = -1;
    for (std::uint32_t i = 0; i < blocks_.size(); ++i) {
        if (!blocks_[i].active) {
            slot = static_cast<std::int32_t>(i);
            break;
        }
    }
    if (slot < 0)
        return false;

    const std::uint32_t warps_needed = ctx.warpsPerBlock;
    if (resident_warps_ + warps_needed > config_.maxWarpsPerSm)
        return false;

    // Allocate storage: vector RF, scalar RF, LDS.
    const auto vrf_base = ctx.vrfWordsPerBlock
                              ? vrf_.allocate(ctx.vrfWordsPerBlock)
                              : std::optional<std::uint32_t>(0u);
    if (!vrf_base)
        return false;

    std::optional<std::uint32_t> srf_base = 0u;
    if (ctx.srfWordsPerBlock) {
        GPR_ASSERT(srf_, "scalar registers demanded on a scalar-less GPU");
        srf_base = srf_->allocate(ctx.srfWordsPerBlock);
        if (!srf_base) {
            if (ctx.vrfWordsPerBlock)
                vrf_.release(*vrf_base, ctx.vrfWordsPerBlock);
            return false;
        }
    }

    std::optional<std::uint32_t> lds_base = 0u;
    if (ctx.ldsWordsPerBlock) {
        lds_base = lds_.allocate(ctx.ldsWordsPerBlock);
        if (!lds_base) {
            if (ctx.vrfWordsPerBlock)
                vrf_.release(*vrf_base, ctx.vrfWordsPerBlock);
            if (ctx.srfWordsPerBlock)
                srf_->release(*srf_base, ctx.srfWordsPerBlock);
            return false;
        }
    }

    BlockContext& block = blocks_[static_cast<std::size_t>(slot)];
    block.active = true;
    block.blockId = block_id;
    block.bx = block_id % ctx.launch->gridX;
    block.by = block_id / ctx.launch->gridX;
    block.vrfBase = *vrf_base;
    block.srfBase = *srf_base;
    block.ldsBase = *lds_base;
    block.warpSlots.clear();
    block.liveWarps = 0;
    block.barrierArrived = 0;

    if (ctx.observer) {
        if (ctx.vrfWordsPerBlock) {
            ctx.observer->onAlloc(TargetStructure::VectorRegisterFile, id_,
                                  block.vrfBase, ctx.vrfWordsPerBlock, now);
        }
        if (ctx.srfWordsPerBlock) {
            ctx.observer->onAlloc(TargetStructure::ScalarRegisterFile, id_,
                                  block.srfBase, ctx.srfWordsPerBlock, now);
        }
        if (ctx.ldsWordsPerBlock) {
            ctx.observer->onAlloc(TargetStructure::SharedMemory, id_,
                                  block.ldsBase, ctx.ldsWordsPerBlock, now);
        }
    }

    // Populate warps.
    const std::uint32_t threads = ctx.launch->threadsPerBlock();
    for (std::uint32_t w = 0; w < warps_needed; ++w) {
        std::int32_t wslot = -1;
        for (std::uint32_t i = 0; i < warp_slot_used_.size(); ++i) {
            if (!warp_slot_used_[i]) {
                wslot = static_cast<std::int32_t>(i);
                break;
            }
        }
        GPR_ASSERT(wslot >= 0, "warp slot accounting is broken");
        warp_slot_used_[static_cast<std::size_t>(wslot)] = true;
        warp_age_[static_cast<std::size_t>(wslot)] = dispatch_seq_++;

        WarpContext& warp = warps_[static_cast<std::size_t>(wslot)];
        warp = WarpContext{};
        warp.blockSlot = static_cast<std::uint32_t>(slot);
        warp.warpInBlock = w;
        const std::uint32_t first_thread = w * config_.warpWidth;
        warp.laneCount = std::min(config_.warpWidth,
                                  threads - std::min(threads, first_thread));
        GPR_ASSERT(warp.laneCount > 0, "empty warp dispatched");
        warp.activeMask = fullMask(warp.laneCount);
        warp.status = WarpStatus::Ready;
        warp.readyCycle = now + 1;
        warp.vregReady.assign(ctx.program->numVRegs(), 0);
        warp.sregReady.assign(ctx.program->numSRegs(), 0);
        warp.stack.reserve(8);

        if (ctx.observer) {
            // Dispatch initialises the warp's control state (preds to
            // zero, PC/masks to their entry values) — a fresh lifetime
            // epoch for the control-bit structures.
            const auto uslot = static_cast<std::uint32_t>(wslot);
            ctx.observer->onAlloc(TargetStructure::PredicateFile, id_,
                                  uslot * kNumPredRegs, kNumPredRegs, now);
            ctx.observer->onAlloc(TargetStructure::SimtStack, id_,
                                  uslot * kSimtUnitsPerWarp,
                                  kSimtUnitsPerWarp, now);
        }

        block.warpSlots.push_back(static_cast<std::uint32_t>(wslot));
        ++block.liveWarps;
    }

    resident_warps_ += warps_needed;
    ++resident_blocks_;
    return true;
}

std::uint32_t
SmCore::vrfIndex(const WarpContext& w, RegIndex r, unsigned lane) const
{
    const BlockContext& block = blocks_[w.blockSlot];
    return block.vrfBase +
           (w.warpInBlock * static_cast<std::uint32_t>(
                                w.vregReady.size()) + r) *
               config_.warpWidth +
           lane;
}

std::uint32_t
SmCore::srfIndex(const WarpContext& w, RegIndex r) const
{
    const BlockContext& block = blocks_[w.blockSlot];
    return block.srfBase +
           w.warpInBlock * static_cast<std::uint32_t>(w.sregReady.size()) +
           r;
}

Word
SmCore::readSpecial(const RunContext& ctx, const WarpContext& w,
                    SpecialReg sr, unsigned lane) const
{
    const BlockContext& block = blocks_[w.blockSlot];
    const LaunchConfig& launch = *ctx.launch;
    const std::uint32_t linear = w.warpInBlock * config_.warpWidth + lane;

    switch (sr) {
      case SpecialReg::TidX:
        return linear % launch.blockX;
      case SpecialReg::TidY:
        return linear / launch.blockX;
      case SpecialReg::CtaIdX:
        return block.bx;
      case SpecialReg::CtaIdY:
        return block.by;
      case SpecialReg::NTidX:
        return launch.blockX;
      case SpecialReg::NTidY:
        return launch.blockY;
      case SpecialReg::NCtaIdX:
        return launch.gridX;
      case SpecialReg::NCtaIdY:
        return launch.gridY;
      case SpecialReg::Lane:
        return lane;
      case SpecialReg::WarpId:
        return w.warpInBlock;
      default:
        panic("bad special register");
    }
}

Word
SmCore::readUniformOperand(RunContext& ctx, const WarpContext& w,
                           const Operand& op, Cycle now)
{
    switch (op.kind) {
      case OperandKind::Imm:
        return op.imm;
      case OperandKind::SReg: {
        const std::uint32_t idx = srfIndex(w, op.index);
        const Word value = srf_->read(idx);
        if (ctx.observer) {
            ctx.observer->onRead(TargetStructure::ScalarRegisterFile, id_,
                                 idx, value, now);
        }
        return value;
      }
      default:
        panic("operand is not uniform: ", op.toString());
    }
}

Word
SmCore::readLaneOperand(RunContext& ctx, const WarpContext& w,
                        const Operand& op, unsigned lane, Cycle now,
                        Word uniform_value)
{
    if (op.kind != OperandKind::VReg)
        return uniform_value;
    const std::uint32_t idx = vrfIndex(w, op.index, lane);
    const Word value = vrf_.read(idx);
    if (ctx.observer) {
        ctx.observer->onRead(TargetStructure::VectorRegisterFile, id_, idx,
                             value, now);
    }
    return value;
}

void
SmCore::writeVReg(RunContext& ctx, const WarpContext& w, RegIndex r,
                  unsigned lane, Word value, Cycle now)
{
    const std::uint32_t idx = vrfIndex(w, r, lane);
    vrf_.write(idx, value);
    if (ctx.observer) {
        ctx.observer->onWrite(TargetStructure::VectorRegisterFile, id_, idx,
                              now);
    }
}

bool
SmCore::canIssue(const RunContext& ctx, const WarpContext& w, Cycle now,
                 Cycle& stall_until) const
{
    if (w.pc >= ctx.program->size()) {
        // Fault-corrupted PC: issue immediately so executeInstruction
        // can raise the InvalidControlFlow trap.
        if (w.readyCycle > now) {
            stall_until = w.readyCycle;
            return false;
        }
        return true;
    }

    Cycle blocked = w.readyCycle;
    const Instruction& inst = ctx.program->inst(w.pc);
    const OpTraits& t = inst.traits();

    auto track_reg = [&](const Operand& op) {
        if (op.kind == OperandKind::VReg)
            blocked = std::max(blocked, w.vregReady[op.index]);
        else if (op.kind == OperandKind::SReg)
            blocked = std::max(blocked, w.sregReady[op.index]);
    };

    if (inst.guard != kNoPred) {
        blocked = std::max(
            blocked, w.predReady[static_cast<unsigned>(inst.guard)]);
    }
    for (unsigned s = 0; s < t.numSrcs; ++s)
        track_reg(inst.src[s]);
    if (t.writesDst)
        track_reg(inst.dst);
    if (t.writesPred)
        blocked = std::max(blocked, w.predReady[inst.predDst]);
    if (t.readsPredSrc)
        blocked = std::max(blocked, w.predReady[inst.predSrc]);

    if (blocked > now) {
        stall_until = blocked;
        return false;
    }
    return true;
}

void
SmCore::pushReconv(RunContext& ctx, WarpContext& w,
                   const ReconvEntry& entry, Cycle now)
{
    // Only the first kSimtStackDepth entries are modelled hardware
    // cells; deeper pushes still simulate but have no lifetime events.
    if (ctx.observer && w.stack.size() < kSimtStackDepth) {
        ctx.observer->onWrite(
            TargetStructure::SimtStack, id_,
            simtUnit(w, 1 + static_cast<unsigned>(w.stack.size())), now);
    }
    w.stack.push_back(entry);
}

void
SmCore::popToNextPath(RunContext& ctx, WarpContext& w, Cycle now,
                      bool& underflow)
{
    underflow = false;
    while (!w.stack.empty()) {
        const auto depth = static_cast<unsigned>(w.stack.size() - 1);
        const ReconvEntry top = w.stack.back();
        w.stack.pop_back();
        if (ctx.observer && depth < kSimtStackDepth) {
            ctx.observer->onRead(TargetStructure::SimtStack, id_,
                                 simtUnit(w, 1 + depth), 0, now);
        }
        const LaneMask live = top.mask & ~w.exitedMask;
        if (live == 0)
            continue;
        w.pc = top.pc;
        w.activeMask = live;
        return;
    }
    underflow = true;
}

void
SmCore::finishWarp(RunContext& ctx, WarpContext& w, Cycle now)
{
    w.status = WarpStatus::Finished;
    w.activeMask = 0;
    BlockContext& block = blocks_[w.blockSlot];
    GPR_ASSERT(block.liveWarps > 0, "block live-warp accounting broken");
    --block.liveWarps;

    if (block.liveWarps == 0) {
        completeBlock(ctx, block, now);
    } else {
        // An exited warp implicitly satisfies any outstanding barrier.
        releaseBarrierIfReady(ctx, block, now);
    }
}

void
SmCore::releaseBarrierIfReady(RunContext& ctx, BlockContext& block,
                              Cycle now)
{
    if (block.barrierArrived == 0)
        return;
    // Release when every live warp of the block is parked at the barrier.
    std::uint32_t waiting = 0;
    for (std::uint32_t slot : block.warpSlots) {
        if (warps_[slot].status == WarpStatus::AtBarrier)
            ++waiting;
    }
    if (waiting < block.liveWarps)
        return;

    for (std::uint32_t slot : block.warpSlots) {
        WarpContext& w = warps_[slot];
        if (w.status == WarpStatus::AtBarrier) {
            w.status = WarpStatus::Ready;
            w.readyCycle = now + 1;
        }
    }
    block.barrierArrived = 0;
    if (ctx.stats)
        ++ctx.stats->barriersExecuted;
}

void
SmCore::completeBlock(RunContext& ctx, BlockContext& block, Cycle now)
{
    if (ctx.vrfWordsPerBlock) {
        vrf_.release(block.vrfBase, ctx.vrfWordsPerBlock);
        if (ctx.observer) {
            ctx.observer->onFree(TargetStructure::VectorRegisterFile, id_,
                                 block.vrfBase, ctx.vrfWordsPerBlock, now);
        }
    }
    if (ctx.srfWordsPerBlock) {
        srf_->release(block.srfBase, ctx.srfWordsPerBlock);
        if (ctx.observer) {
            ctx.observer->onFree(TargetStructure::ScalarRegisterFile, id_,
                                 block.srfBase, ctx.srfWordsPerBlock, now);
        }
    }
    if (ctx.ldsWordsPerBlock) {
        lds_.release(block.ldsBase, ctx.ldsWordsPerBlock);
        if (ctx.observer) {
            ctx.observer->onFree(TargetStructure::SharedMemory, id_,
                                 block.ldsBase, ctx.ldsWordsPerBlock, now);
        }
    }

    for (std::uint32_t slot : block.warpSlots) {
        warp_slot_used_[slot] = false;
        if (ctx.observer) {
            ctx.observer->onFree(TargetStructure::PredicateFile, id_,
                                 slot * kNumPredRegs, kNumPredRegs, now);
            ctx.observer->onFree(TargetStructure::SimtStack, id_,
                                 slot * kSimtUnitsPerWarp,
                                 kSimtUnitsPerWarp, now);
        }
    }

    GPR_ASSERT(resident_warps_ >=
                   static_cast<std::uint32_t>(block.warpSlots.size()),
               "warp residency accounting broken");
    resident_warps_ -=
        static_cast<std::uint32_t>(block.warpSlots.size());
    GPR_ASSERT(resident_blocks_ > 0, "block residency accounting broken");
    --resident_blocks_;
    block.active = false;
    if (ctx.stats)
        ++ctx.stats->blocksCompleted;
}

std::optional<TrapKind>
SmCore::executeInstruction(RunContext& ctx, WarpContext& w, Cycle now)
{
    // A PC outside the program (only reachable through injected control
    // faults) is a fetch from nonexistent instruction memory.
    if (w.pc >= ctx.program->size())
        return TrapKind::InvalidControlFlow;

    // Fetch through the L1i: fault-free, the identity-mapped line
    // returns the PC itself; an L1i tag/data fault redirects the fetch
    // to a different instruction index (wrong-opcode execution) or past
    // the program (trap).  The scoreboard in canIssue still consults
    // the raw w.pc — a deliberate modeling simplification: fetch
    // corruption changes what executes, not when it issues.
    std::uint32_t fetch_pc = w.pc;
    if (l1i_) {
        fetch_pc = l1i_->fetchInst(w.pc, ctx.observer, now);
        if (fetch_pc >= ctx.program->size())
            return TrapKind::InvalidControlFlow;
    }

    const Instruction& inst = ctx.program->inst(fetch_pc);
    const OpTraits& t = inst.traits();
    const LatencyModel& lat = config_.latency;

    if (ctx.observer) {
        // Issue consumes the warp's PC + masks and every instruction
        // updates them (the PC always advances): the PC/mask unit of
        // the SIMT-stack target is read and rewritten each issue.
        ctx.observer->onRead(TargetStructure::SimtStack, id_,
                             simtUnit(w, 0), 0, now);
        ctx.observer->onWrite(TargetStructure::SimtStack, id_,
                              simtUnit(w, 0), now);
        if (inst.guard != kNoPred) {
            ctx.observer->onRead(
                TargetStructure::PredicateFile, id_,
                predUnit(w, static_cast<unsigned>(inst.guard)), 0, now);
        }
    }

    if (ctx.stats) {
        ++ctx.stats->warpInstructions;
        ctx.stats->threadInstructions +=
            static_cast<std::uint64_t>(popcount(
                static_cast<Word>(w.activeMask & 0xffffffffu))) +
            popcount(static_cast<Word>(w.activeMask >> 32));
    }

    // Lanes this instruction affects (guard applied); BRA and EXIT use the
    // guard as the *condition* instead, handled in their cases.
    LaneMask exec = w.activeMask;
    if (inst.guard != kNoPred && inst.op != Opcode::Bra &&
        inst.op != Opcode::Exit) {
        const LaneMask p = w.preds[static_cast<unsigned>(inst.guard)];
        exec &= inst.guardNegate ? ~p : p;
    }

    // Consume the issue slot.
    w.readyCycle = now + config_.warpIssueInterval;

    auto for_each_lane = [&](LaneMask mask, auto&& fn) {
        for (unsigned lane = 0; lane < config_.warpWidth; ++lane) {
            if (mask & (LaneMask{1} << lane))
                fn(lane);
        }
    };

    auto category_latency = [&](OpCategory cat) -> Cycle {
        switch (cat) {
          case OpCategory::Misc:
            return lat.misc;
          case OpCategory::IntAlu:
            return lat.intAlu;
          case OpCategory::FloatAlu:
            return lat.floatAlu;
          case OpCategory::Sfu:
            return lat.sfu;
          case OpCategory::Compare:
            return lat.compare;
          default:
            return lat.misc;
        }
    };

    auto retire_dst = [&](Cycle ready) {
        if (inst.dst.kind == OperandKind::VReg)
            w.vregReady[inst.dst.index] = ready;
        else if (inst.dst.kind == OperandKind::SReg)
            w.sregReady[inst.dst.index] = ready;
    };

    switch (inst.op) {
      case Opcode::Nop:
        ++w.pc;
        return std::nullopt;

      case Opcode::S2r: {
        const SpecialReg sr = inst.src[0].sreg;
        if (inst.dst.kind == OperandKind::SReg) {
            // Uniform special only (verified): read via lane 0.
            const Word v = readSpecial(ctx, w, sr, 0);
            const std::uint32_t idx = srfIndex(w, inst.dst.index);
            srf_->write(idx, v);
            if (ctx.observer) {
                ctx.observer->onWrite(TargetStructure::ScalarRegisterFile,
                                      id_, idx, now);
            }
        } else {
            for_each_lane(exec, [&](unsigned lane) {
                writeVReg(ctx, w, inst.dst.index, lane,
                          readSpecial(ctx, w, sr, lane), now);
            });
        }
        retire_dst(now + lat.misc);
        ++w.pc;
        return std::nullopt;
      }

      case Opcode::LdParam: {
        const std::uint32_t pidx = inst.src[0].imm;
        GPR_ASSERT(pidx < ctx.launch->params.size(),
                   "kernel reads parameter ", pidx, " but only ",
                   ctx.launch->params.size(), " were provided");
        const Word v = ctx.launch->params[pidx];
        if (inst.dst.kind == OperandKind::SReg) {
            const std::uint32_t idx = srfIndex(w, inst.dst.index);
            srf_->write(idx, v);
            if (ctx.observer) {
                ctx.observer->onWrite(TargetStructure::ScalarRegisterFile,
                                      id_, idx, now);
            }
        } else {
            for_each_lane(exec, [&](unsigned lane) {
                writeVReg(ctx, w, inst.dst.index, lane, v, now);
            });
        }
        retire_dst(now + lat.misc);
        ++w.pc;
        return std::nullopt;
      }

      // --- Generic ALU / conversions / MOV / SELP ------------------------
      case Opcode::Mov:
      case Opcode::IAdd:
      case Opcode::ISub:
      case Opcode::IMul:
      case Opcode::IMad:
      case Opcode::IMin:
      case Opcode::IMax:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Not:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Shra:
      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FMul:
      case Opcode::FFma:
      case Opcode::FMin:
      case Opcode::FMax:
      case Opcode::FRcp:
      case Opcode::FSqrt:
      case Opcode::FExp2:
      case Opcode::FAbs:
      case Opcode::FNeg:
      case Opcode::FDiv:
      case Opcode::F2i:
      case Opcode::I2f:
      case Opcode::Selp: {
        // Pre-read uniform sources once (immediates / scalar registers).
        std::array<Word, 3> uni{};
        for (unsigned s = 0; s < t.numSrcs; ++s) {
            if (inst.src[s].kind != OperandKind::VReg)
                uni[s] = readUniformOperand(ctx, w, inst.src[s], now);
        }

        if (inst.dst.kind == OperandKind::SReg) {
            // Scalar ALU: executes once per wavefront.
            Word v;
            if (inst.op == Opcode::Selp) {
                panic("SELP cannot target a scalar register");
            } else {
                v = evalAlu(inst.op, uni[0], uni[1], uni[2]);
            }
            const std::uint32_t idx = srfIndex(w, inst.dst.index);
            srf_->write(idx, v);
            if (ctx.observer) {
                ctx.observer->onWrite(TargetStructure::ScalarRegisterFile,
                                      id_, idx, now);
            }
        } else {
            if (inst.op == Opcode::Selp && ctx.observer) {
                ctx.observer->onRead(TargetStructure::PredicateFile, id_,
                                     predUnit(w, inst.predSrc), 0, now);
            }
            const LaneMask sel =
                inst.op == Opcode::Selp ? w.preds[inst.predSrc] : 0;
            for_each_lane(exec, [&](unsigned lane) {
                std::array<Word, 3> v = uni;
                for (unsigned s = 0; s < t.numSrcs; ++s) {
                    v[s] = readLaneOperand(ctx, w, inst.src[s], lane, now,
                                           v[s]);
                }
                Word out;
                if (inst.op == Opcode::Selp) {
                    out = (sel & (LaneMask{1} << lane)) ? v[0] : v[1];
                } else {
                    out = evalAlu(inst.op, v[0], v[1], v[2]);
                }
                writeVReg(ctx, w, inst.dst.index, lane, out, now);
            });
        }
        retire_dst(now + category_latency(t.category));
        ++w.pc;
        return std::nullopt;
      }

      case Opcode::ISetp:
      case Opcode::FSetp: {
        std::array<Word, 2> uni{};
        for (unsigned s = 0; s < 2; ++s) {
            if (inst.src[s].kind != OperandKind::VReg)
                uni[s] = readUniformOperand(ctx, w, inst.src[s], now);
        }
        if (ctx.observer) {
            // Guard-false lanes merge the old predicate value into the
            // result, so SETP both reads and writes its destination.
            ctx.observer->onRead(TargetStructure::PredicateFile, id_,
                                 predUnit(w, inst.predDst), 0, now);
        }
        LaneMask result = w.preds[inst.predDst] & ~exec;
        for_each_lane(exec, [&](unsigned lane) {
            const Word a =
                readLaneOperand(ctx, w, inst.src[0], lane, now, uni[0]);
            const Word b =
                readLaneOperand(ctx, w, inst.src[1], lane, now, uni[1]);
            const bool r = inst.op == Opcode::ISetp
                               ? evalCmpInt(inst.cmp, a, b)
                               : evalCmpFloat(inst.cmp, a, b);
            if (r)
                result |= LaneMask{1} << lane;
        });
        w.preds[inst.predDst] = result;
        w.predReady[inst.predDst] = now + lat.compare;
        if (ctx.observer) {
            ctx.observer->onWrite(TargetStructure::PredicateFile, id_,
                                  predUnit(w, inst.predDst), now);
        }
        ++w.pc;
        return std::nullopt;
      }

      // --- Control flow ---------------------------------------------------
      case Opcode::Ssy:
        pushReconv(ctx, w,
                   {ReconvEntry::Kind::SyncToken, inst.target,
                    w.activeMask},
                   now);
        ++w.pc;
        return std::nullopt;

      case Opcode::Bra: {
        LaneMask taken = w.activeMask;
        if (inst.guard != kNoPred) {
            const LaneMask p = w.preds[static_cast<unsigned>(inst.guard)];
            taken &= inst.guardNegate ? ~p : p;
        }
        if (taken == w.activeMask) {
            w.pc = inst.target; // uniformly taken
        } else if (taken == 0) {
            ++w.pc;             // uniformly not taken
        } else {
            // Divergence: defer the taken lanes, continue fall-through.
            if (ctx.stats)
                ++ctx.stats->divergenceEvents;
            pushReconv(ctx, w,
                       {ReconvEntry::Kind::PendingPath, inst.target,
                        taken},
                       now);
            w.activeMask &= ~taken;
            ++w.pc;
        }
        return std::nullopt;
      }

      case Opcode::Sync: {
        bool underflow = false;
        popToNextPath(ctx, w, now, underflow);
        if (underflow) {
            // Lanes are parked with nowhere to reconverge: corrupted
            // control state (only reachable through injected faults).
            return TrapKind::InvalidControlFlow;
        }
        return std::nullopt;
      }

      case Opcode::Exit: {
        LaneMask exiting = w.activeMask;
        if (inst.guard != kNoPred) {
            const LaneMask p = w.preds[static_cast<unsigned>(inst.guard)];
            exiting &= inst.guardNegate ? ~p : p;
        }
        w.exitedMask |= exiting;
        w.activeMask &= ~exiting;
        if (w.activeMask != 0) {
            ++w.pc; // guard-false lanes continue
            return std::nullopt;
        }
        bool underflow = false;
        popToNextPath(ctx, w, now, underflow);
        if (underflow)
            finishWarp(ctx, w, now);
        return std::nullopt;
      }

      case Opcode::Bar: {
        ++w.pc;
        w.status = WarpStatus::AtBarrier;
        BlockContext& block = blocks_[w.blockSlot];
        ++block.barrierArrived;
        releaseBarrierIfReady(ctx, block, now);
        return std::nullopt;
      }

      // --- Memory ----------------------------------------------------------
      case Opcode::Ldg:
      case Opcode::Stg:
      case Opcode::AtomgAdd: {
        const bool is_load = inst.op == Opcode::Ldg;
        const bool is_atomic = inst.op == Opcode::AtomgAdd;
        Word addr_uni = 0, val_uni = 0;
        if (inst.src[0].kind != OperandKind::VReg)
            addr_uni = readUniformOperand(ctx, w, inst.src[0], now);
        if (!is_load && inst.src[1].kind != OperandKind::VReg)
            val_uni = readUniformOperand(ctx, w, inst.src[1], now);

        // Gather addresses, bounds-check, count 128-byte segments.
        std::optional<TrapKind> trap;
        std::uint64_t seg_bits_lo = 0; // cheap small-set: segment ids hash
        std::vector<std::uint64_t> segments;
        segments.reserve(8);
        std::uint32_t lane_ops = 0;

        for_each_lane(exec, [&](unsigned lane) {
            if (trap)
                return;
            const Word base =
                readLaneOperand(ctx, w, inst.src[0], lane, now, addr_uni);
            const Addr addr =
                (static_cast<Addr>(base) +
                 static_cast<Addr>(
                     static_cast<std::int64_t>(inst.memOffset))) &
                0xffffffffULL;
            if (!ctx.memory->inBounds(addr)) {
                trap = TrapKind::GlobalOutOfBounds;
                return;
            }
            if (addr & 3) {
                // A misaligned word address (computed or injected) must
                // surface as a DUE — silently aligning down would read
                // the wrong word and masquerade as SDC.
                trap = TrapKind::MisalignedAddress;
                return;
            }
            const std::uint64_t seg = addr >> 7;
            if (std::find(segments.begin(), segments.end(), seg) ==
                segments.end()) {
                segments.push_back(seg);
            }
            (void)seg_bits_lo;

            // Data path: through the L1d/L2 hierarchy when modeled
            // (functional only — the segment/pipe timing above is
            // unchanged by hits or misses), else straight to memory.
            auto mem_read = [&](Word& out) -> bool {
                if (l1d_) {
                    const CacheModel::Access a = l1d_->read(
                        addr, ctx.l2, *ctx.memory, ctx.observer, now);
                    if (a.trap) {
                        trap = a.trap;
                        return false;
                    }
                    out = a.value;
                } else {
                    out = ctx.memory->readWord(addr);
                }
                return true;
            };
            auto mem_write = [&](Word v) {
                if (l1d_) {
                    trap = l1d_->write(addr, v, ctx.l2, *ctx.memory,
                                       ctx.observer, now);
                } else {
                    ctx.memory->writeWord(addr, v);
                }
            };

            if (is_load) {
                Word loaded = 0;
                if (!mem_read(loaded))
                    return;
                writeVReg(ctx, w, inst.dst.index, lane, loaded, now);
            } else {
                const Word v = readLaneOperand(ctx, w, inst.src[1], lane,
                                               now, val_uni);
                if (is_atomic) {
                    // Atomics execute at the chip's shared point of
                    // coherence (the L2 when modeled): a private-L1
                    // read-modify-write would lose updates between SMs.
                    // The local line, if resident, is patched so later
                    // loads from this SM observe the new value.
                    Word old = 0;
                    if (ctx.l2) {
                        const CacheModel::Access a = ctx.l2->read(
                            addr, nullptr, *ctx.memory, ctx.observer, now);
                        if (a.trap) {
                            trap = a.trap;
                            return;
                        }
                        old = a.value;
                        trap = ctx.l2->write(addr, old + v, nullptr,
                                             *ctx.memory, ctx.observer,
                                             now);
                    } else {
                        old = ctx.memory->readWord(addr);
                        ctx.memory->writeWord(addr, old + v);
                    }
                    if (l1d_)
                        l1d_->updateIfPresent(addr, old + v);
                } else {
                    mem_write(v);
                }
                if (trap)
                    return;
            }
            ++lane_ops;
        });
        if (trap)
            return trap;

        // Timing: the chip-wide pipe serialises transactions.
        const std::uint64_t txns =
            is_atomic ? lane_ops
                      : static_cast<std::uint64_t>(segments.size());
        if (txns > 0) {
            const Cycle start = std::max(now, ctx.memPipe.nextFree);
            ctx.memPipe.nextFree =
                start + txns * config_.memTransactionCycles;
            if (is_load)
                retire_dst(ctx.memPipe.nextFree + lat.global);
            if (ctx.stats) {
                ctx.stats->globalTransactions += txns;
                if (is_load)
                    ++ctx.stats->globalLoads;
                else
                    ++ctx.stats->globalStores;
            }
        }
        ++w.pc;
        return std::nullopt;
      }

      case Opcode::Lds:
      case Opcode::Sts:
      case Opcode::AtomsAdd: {
        const bool is_load = inst.op == Opcode::Lds;
        const bool is_atomic = inst.op == Opcode::AtomsAdd;
        const BlockContext& block = blocks_[w.blockSlot];

        Word addr_uni = 0, val_uni = 0;
        if (inst.src[0].kind != OperandKind::VReg)
            addr_uni = readUniformOperand(ctx, w, inst.src[0], now);
        if (!is_load && inst.src[1].kind != OperandKind::VReg)
            val_uni = readUniformOperand(ctx, w, inst.src[1], now);

        std::optional<TrapKind> trap;
        // Bank-conflict model: count accesses per bank; the replay factor
        // is the worst bank's distinct-word count.
        std::vector<std::uint32_t> bank_words;
        bank_words.reserve(config_.warpWidth);
        std::uint32_t lane_ops = 0;

        for_each_lane(exec, [&](unsigned lane) {
            if (trap)
                return;
            const Word base =
                readLaneOperand(ctx, w, inst.src[0], lane, now, addr_uni);
            const Word byte_addr =
                base + static_cast<Word>(inst.memOffset);
            const std::uint32_t word = byte_addr >> 2;
            if (word >= ctx.ldsWordsPerBlock) {
                trap = TrapKind::SharedOutOfBounds;
                return;
            }
            const std::uint32_t idx = block.ldsBase + word;
            if (std::find(bank_words.begin(), bank_words.end(), word) ==
                bank_words.end()) {
                bank_words.push_back(word);
            }

            if (is_load) {
                const Word loaded = lds_.read(idx);
                if (ctx.observer) {
                    ctx.observer->onRead(TargetStructure::SharedMemory,
                                         id_, idx, loaded, now);
                }
                writeVReg(ctx, w, inst.dst.index, lane, loaded, now);
            } else {
                const Word v = readLaneOperand(ctx, w, inst.src[1], lane,
                                               now, val_uni);
                if (is_atomic) {
                    const Word old = lds_.read(idx);
                    if (ctx.observer) {
                        ctx.observer->onRead(TargetStructure::SharedMemory,
                                             id_, idx, old, now);
                    }
                    lds_.write(idx, old + v);
                } else {
                    lds_.write(idx, v);
                }
                if (ctx.observer) {
                    ctx.observer->onWrite(TargetStructure::SharedMemory,
                                          id_, idx, now);
                }
            }
            ++lane_ops;
        });
        if (trap)
            return trap;

        // Replay factor: distinct words per bank.
        std::uint32_t replay = 1;
        if (!bank_words.empty()) {
            std::vector<std::uint32_t> per_bank(config_.smemBanks, 0);
            for (std::uint32_t word : bank_words)
                ++per_bank[word % config_.smemBanks];
            replay = *std::max_element(per_bank.begin(), per_bank.end());
            replay = std::max(replay, 1u);
        }
        const Cycle extra =
            is_atomic ? (lane_ops > 0 ? lane_ops - 1 : 0) : (replay - 1);
        if (is_load)
            retire_dst(now + lat.shared + extra);
        if (ctx.stats) {
            ++ctx.stats->sharedAccesses;
            ctx.stats->sharedBankConflictReplays += replay - 1;
        }
        ++w.pc;
        return std::nullopt;
      }

      default:
        panic("unhandled opcode ", opMnemonic(inst.op));
    }
}

std::int32_t
SmCore::pickWarpRoundRobin(const RunContext& ctx, Cycle now,
                           Cycle& next_event)
{
    const std::uint32_t n = static_cast<std::uint32_t>(warps_.size());
    for (std::uint32_t probe = 0; probe < n; ++probe) {
        const std::uint32_t slot = (rr_cursor_ + 1 + probe) % n;
        if (!warp_slot_used_[slot])
            continue;
        const WarpContext& w = warps_[slot];
        if (w.status != WarpStatus::Ready)
            continue;
        Cycle stall = 0;
        if (canIssue(ctx, w, now, stall)) {
            rr_cursor_ = slot;
            return static_cast<std::int32_t>(slot);
        }
        next_event = std::min(next_event, stall);
    }
    return -1;
}

std::int32_t
SmCore::pickWarpGto(const RunContext& ctx, Cycle now, Cycle& next_event)
{
    // Greedy: stick with the last issued warp while it can issue.
    if (gto_last_ >= 0 &&
        warp_slot_used_[static_cast<std::uint32_t>(gto_last_)]) {
        const WarpContext& w =
            warps_[static_cast<std::uint32_t>(gto_last_)];
        if (w.status == WarpStatus::Ready) {
            Cycle stall = 0;
            if (canIssue(ctx, w, now, stall))
                return gto_last_;
            next_event = std::min(next_event, stall);
        }
    }
    // Then oldest (smallest dispatch sequence number).
    std::int32_t best = -1;
    std::uint64_t best_age = ~std::uint64_t{0};
    for (std::uint32_t slot = 0; slot < warps_.size(); ++slot) {
        if (!warp_slot_used_[slot])
            continue;
        const WarpContext& w = warps_[slot];
        if (w.status != WarpStatus::Ready)
            continue;
        Cycle stall = 0;
        if (canIssue(ctx, w, now, stall)) {
            if (warp_age_[slot] < best_age) {
                best_age = warp_age_[slot];
                best = static_cast<std::int32_t>(slot);
            }
        } else {
            next_event = std::min(next_event, stall);
        }
    }
    if (best >= 0)
        gto_last_ = best;
    return best;
}

std::optional<TrapKind>
SmCore::stepCycle(RunContext& ctx, Cycle now, bool& issued_any,
                  Cycle& next_event)
{
    if (resident_blocks_ == 0)
        return std::nullopt;

    for (std::uint32_t slot_issue = 0; slot_issue < config_.issueWidth;
         ++slot_issue) {
        std::int32_t pick =
            config_.scheduler == SchedulerKind::GreedyThenOldest
                ? pickWarpGto(ctx, now, next_event)
                : pickWarpRoundRobin(ctx, now, next_event);
        if (pick < 0)
            break;
        WarpContext& w = warps_[static_cast<std::uint32_t>(pick)];
        const auto trap = executeInstruction(ctx, w, now);
        if (trap)
            return trap;
        issued_any = true;
    }
    return std::nullopt;
}

} // namespace gpr
