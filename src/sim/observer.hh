/**
 * @file
 * Instrumentation interface for lifetime analysis (ACE) and tracing.
 *
 * The simulator invokes these hooks on every architectural access to the
 * studied structures.  Word indices are SM-relative; (sm, word) uniquely
 * names a 32-bit word of the structure.  A null observer costs nothing on
 * the hot path (pointer check only), which keeps fault-injection campaigns
 * fast.
 */

#ifndef GPR_SIM_OBSERVER_HH
#define GPR_SIM_OBSERVER_HH

#include "common/types.hh"
#include "sim/fault_model.hh"

namespace gpr {

class SimObserver
{
  public:
    virtual ~SimObserver() = default;

    /**
     * A word of @p structure was read by an instruction.  @p value is
     * the 32-bit word the read observed (observers run on fault-free
     * passes only, so this equals the raw stored word); control-bit
     * structures without a word-granular payload report 0.
     */
    virtual void
    onRead(TargetStructure structure, SmId sm, std::uint32_t word,
           Word value, Cycle cycle)
    {
        (void)structure; (void)sm; (void)word; (void)value; (void)cycle;
    }

    /** A word of @p structure was overwritten by an instruction. */
    virtual void
    onWrite(TargetStructure structure, SmId sm, std::uint32_t word,
            Cycle cycle)
    {
        (void)structure; (void)sm; (void)word; (void)cycle;
    }

    /**
     * Words [first, first+count) were allocated for a block (contents are
     * architecturally undefined — treated as a write for conservative
     * lifetime accounting).
     */
    virtual void
    onAlloc(TargetStructure structure, SmId sm, std::uint32_t first,
            std::uint32_t count, Cycle cycle)
    {
        (void)structure; (void)sm; (void)first; (void)count; (void)cycle;
    }

    /** Words [first, first+count) were released at block completion. */
    virtual void
    onFree(TargetStructure structure, SmId sm, std::uint32_t first,
           std::uint32_t count, Cycle cycle)
    {
        (void)structure; (void)sm; (void)first; (void)count; (void)cycle;
    }

    /** The kernel finished (cleanly or by trap) at @p cycle. */
    virtual void onKernelEnd(Cycle cycle) { (void)cycle; }
};

} // namespace gpr

#endif // GPR_SIM_OBSERVER_HH
