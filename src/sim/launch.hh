/**
 * @file
 * Kernel launch geometry and parameters (grid/block dims, argument words).
 */

#ifndef GPR_SIM_LAUNCH_HH
#define GPR_SIM_LAUNCH_HH

#include <cstdint>
#include <vector>

#include "common/bitutils.hh"
#include "common/types.hh"

namespace gpr {

/** Up to 2-D grids and blocks (all ten workloads fit in 2-D). */
struct LaunchConfig
{
    std::uint32_t gridX = 1;
    std::uint32_t gridY = 1;
    std::uint32_t blockX = 1;
    std::uint32_t blockY = 1;

    /** Kernel parameters as raw 32-bit words (LDPARAM reads these). */
    std::vector<Word> params;

    std::uint32_t numBlocks() const { return gridX * gridY; }
    std::uint32_t threadsPerBlock() const { return blockX * blockY; }
    std::uint64_t totalThreads() const
    {
        return static_cast<std::uint64_t>(numBlocks()) * threadsPerBlock();
    }

    void
    addParam(Word w)
    {
        params.push_back(w);
    }
    void
    addParamInt(std::int32_t v)
    {
        params.push_back(static_cast<Word>(v));
    }
    void
    addParamAddr(Addr a)
    {
        params.push_back(static_cast<Word>(a));
    }
    void
    addParamFloat(float f)
    {
        params.push_back(floatBits(f));
    }
};

} // namespace gpr

#endif // GPR_SIM_LAUNCH_HH
