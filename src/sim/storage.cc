#include "sim/storage.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gpr {

WordStorage::WordStorage(std::uint32_t num_words)
    : words_(num_words, 0u)
{
    GPR_ASSERT(num_words > 0, "zero-sized storage");
    free_list_.push_back({0, num_words});
    pages_.resize(num_words);
}

Word
WordStorage::read(std::uint32_t index) const
{
    GPR_ASSERT(index < words_.size(), "storage read out of range");
    Word value = words_[index];
    if (stuck_enabled_ && index == stuck_word_)
        value = (value & ~stuck_mask_) | stuck_value_;
    return value;
}

void
WordStorage::setStuckBits(std::uint32_t word, Word mask, Word value)
{
    GPR_ASSERT(word < words_.size(), "stuck word out of range");
    GPR_ASSERT((value & ~mask) == 0, "stuck value outside stuck mask");
    stuck_word_ = word;
    stuck_mask_ = mask;
    stuck_value_ = value;
    stuck_enabled_ = false;
}

void
WordStorage::setStuckEnabled(bool enabled)
{
    stuck_enabled_ = enabled;
}

void
WordStorage::setHashOverlayCanonical(bool on)
{
    GPR_ASSERT(!on || stuck_mask_ != 0,
               "canonical overlay hashing needs a bound overlay");
    hash_overlay_canonical_ = on;
}

void
WordStorage::clearStuck()
{
    stuck_word_ = 0;
    stuck_mask_ = 0;
    stuck_value_ = 0;
    stuck_enabled_ = false;
    hash_overlay_canonical_ = false;
}

void
WordStorage::write(std::uint32_t index, Word value)
{
    GPR_ASSERT(index < words_.size(), "storage write out of range");
    words_[index] = value;
    pages_.onWrite(index);
}

void
WordStorage::flipBitAt(BitIndex bit_index)
{
    const std::uint32_t word = static_cast<std::uint32_t>(bit_index / 32);
    const unsigned bit = static_cast<unsigned>(bit_index % 32);
    GPR_ASSERT(word < words_.size(), "bit flip out of range");
    words_[word] = flipBit(words_[word], bit);
    pages_.onWrite(word);
}

std::optional<std::uint32_t>
WordStorage::allocate(std::uint32_t count)
{
    GPR_ASSERT(count > 0, "zero-sized allocation");
    for (std::size_t i = 0; i < free_list_.size(); ++i) {
        if (free_list_[i].count >= count) {
            const std::uint32_t base = free_list_[i].base;
            free_list_[i].base += count;
            free_list_[i].count -= count;
            if (free_list_[i].count == 0)
                free_list_.erase(free_list_.begin() +
                                 static_cast<std::ptrdiff_t>(i));
            allocated_words_ += count;
            return base;
        }
    }
    return std::nullopt;
}

void
WordStorage::hashInto(StateHash& h) const
{
    // Word contents via the dirty-page digest cache: only pages written
    // since the previous hashInto() are re-digested.  The array length
    // is mixed alongside so the sum formulation keeps the same framing
    // guarantees mixWords provided.
    h.mix(words_.size());
    std::uint64_t sum = pages_.digestSum(words_);
    if (hash_overlay_canonical_ && stuck_mask_ != 0) {
        // Swap the stuck page's raw digest for the digest of the same
        // page with the overlay applied to the stuck word (<= 1 KB of
        // stack, touched only when a canonical overlay is armed).
        const std::size_t p = stuck_word_ / kStatePageWords;
        const std::size_t base = p * kStatePageWords;
        const std::uint32_t n = pages_.pageWords(p);
        Word buf[kStatePageWords];
        std::memcpy(buf, words_.data() + base, n * sizeof(Word));
        buf[stuck_word_ - base] =
            (buf[stuck_word_ - base] & ~stuck_mask_) | stuck_value_;
        sum -= pages_.cachedPageDigest(p);
        sum += StateHash::wordsDigest(buf, n,
                                      static_cast<std::uint64_t>(p));
    }
    h.mix(sum);
    h.mix(free_list_.size());
    for (const Range& r : free_list_) {
        h.mix(r.base);
        h.mix(r.count);
    }
    h.mix(allocated_words_);
}

void
WordStorage::revertTo(const WordStorage& baseline)
{
    GPR_ASSERT(baseline.words_.size() == words_.size(),
               "revert against a different-shaped storage");
    pages_.revertTo(words_, baseline.words_);
    free_list_ = baseline.free_list_;
    allocated_words_ = baseline.allocated_words_;
    clearStuck();
}

void
WordStorage::captureDelta(const WordStorage& baseline, Delta& out) const
{
    GPR_ASSERT(baseline.words_.size() == words_.size(),
               "delta against a different-shaped storage");
    pages_.captureDelta(words_, baseline.words_, out.pages);
    out.freeList = free_list_;
    out.allocatedWords = allocated_words_;
}

void
WordStorage::applyDelta(const Delta& delta)
{
    pages_.applyDelta(words_, delta.pages);
    free_list_ = delta.freeList;
    allocated_words_ = delta.allocatedWords;
}

void
WordStorage::release(std::uint32_t base, std::uint32_t count)
{
    GPR_ASSERT(count > 0 && base + count <= words_.size(),
               "bad release range");
    GPR_ASSERT(allocated_words_ >= count, "double free");
    allocated_words_ -= count;

    // Insert sorted, then coalesce neighbours.
    const Range range{base, count};
    const auto pos = std::lower_bound(
        free_list_.begin(), free_list_.end(), range,
        [](const Range& a, const Range& b) { return a.base < b.base; });
    const auto it = free_list_.insert(pos, range);

    const std::size_t idx = static_cast<std::size_t>(it - free_list_.begin());
    // Coalesce with successor.
    if (idx + 1 < free_list_.size() &&
        free_list_[idx].base + free_list_[idx].count ==
            free_list_[idx + 1].base) {
        free_list_[idx].count += free_list_[idx + 1].count;
        free_list_.erase(free_list_.begin() +
                         static_cast<std::ptrdiff_t>(idx + 1));
    }
    // Coalesce with predecessor.
    if (idx > 0 && free_list_[idx - 1].base + free_list_[idx - 1].count ==
                       free_list_[idx].base) {
        free_list_[idx - 1].count += free_list_[idx].count;
        free_list_.erase(free_list_.begin() +
                         static_cast<std::ptrdiff_t>(idx));
    }
}

} // namespace gpr
