/**
 * @file
 * The data-driven target-structure registry.
 *
 * Every layer that used to switch over the three hard-coded structures —
 * ACE analysis, fault windows, the injector, campaigns, breakdowns,
 * export, the orchestrator and the CLI — now iterates this table
 * instead.  Adding a structure means adding one StructureSpec row plus
 * the sim-layer binding (SmCore::applyFault + observer events); everything
 * above the simulator picks the new entry up automatically (see the
 * "Adding a target structure" section of the README).
 *
 * Three structure kinds exist:
 *
 *  - **WordStorage**: 32-bit-word-granular SRAM (register files, LDS)
 *    backed by a WordStorage instance.  The golden access trace yields
 *    *exact* per-word dead windows, so the checkpoint engine can
 *    classify most faults with zero simulation.
 *  - **ControlBits**: packed per-warp control state (predicate file,
 *    SIMT reconvergence stack + PC), laid out bit-linearly over the
 *    SM's resident warp slots.  Reads are not the only way such bits
 *    become architecturally visible (a flipped PC acts at the next
 *    issue without any "read" event), so control structures have no
 *    exact dead windows — the checkpoint engine skips the prefilter
 *    but keeps checkpoint restore and hash early-out.
 *  - **CacheArray**: modeled cache lines (tag + valid/dirty + data; see
 *    sim/cache.hh) of the L1d/L1i/L2 hierarchy.  Metadata faults act
 *    through address comparison rather than reads, so — like control
 *    bits — caches have no exact dead windows; checkpoint restore and
 *    the hash early-out still apply.
 */

#ifndef GPR_SIM_STRUCTURE_REGISTRY_HH
#define GPR_SIM_STRUCTURE_REGISTRY_HH

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "arch/gpu_config.hh"
#include "common/logging.hh"
#include "isa/instruction.hh"
#include "sim/fault_model.hh"
#include "sim/stats.hh"

namespace gpr {

enum class StructureKind : std::uint8_t
{
    WordStorage, ///< 32-bit-word-granular SRAM with alloc/free
    ControlBits, ///< packed control bits over resident warp slots
    CacheArray,  ///< tag + valid/dirty + data cache lines (sim/cache.hh)
};

/**
 * Whether one instance of the structure exists per SM (the registry's
 * historical assumption) or once for the whole chip (the shared L2).
 * Everything that multiplies a per-instance size by numSms — total
 * bits/units, ACE tracker sizing, checkpoint-placement weights — is
 * scope-aware; chip-scoped structures report observer events as SM 0.
 */
enum class StructureScope : std::uint8_t
{
    PerSm,
    Chip,
};

/**
 * How a structure hosts persistent (stuck-at / intermittent) faults.
 * A structure opts into persistence by binding one of these hooks in
 * its registry row; None means persistent behaviors are rejected for
 * it.  All five built-in rows bind a hook.
 */
enum class PersistenceHook : std::uint8_t
{
    None,               ///< persistent faults unsupported
    /** WordStorage read-side overlay: reads of the faulty word see the
     *  forced bits, writes retain the raw value underneath (so an
     *  intermittent fault's inactive phase recovers stored data). */
    StorageReadOverlay,
    /** Control bits live in named context fields consumed only during
     *  SmCore::stepCycle, so persistence = re-forcing the faulty bits
     *  before every stepped cycle (idempotent, hence insensitive to
     *  how many idle cycles the run loop lands on). */
    CycleReassert,
};

/**
 * Modelled hardware depth of the SIMT reconvergence stack.  Pushes
 * beyond this depth still simulate (the software stack is unbounded)
 * but only the first kSimtStackDepth entries exist as fault-injectable
 * hardware cells.
 */
constexpr std::uint32_t kSimtStackDepth = 16;

// --- Control-state bit geometry (shared by the flip mapping, the -------
// --- registry sizes and the tests) -------------------------------------

/** Predicate-file bits per warp slot: one lane mask per predicate reg. */
inline std::uint64_t
predBitsPerWarp(const GpuConfig& config)
{
    return std::uint64_t{kNumPredRegs} * config.warpWidth;
}

/** Bits of one SIMT stack entry: kind + PC + lane mask. */
inline std::uint64_t
simtEntryBits(const GpuConfig& config)
{
    return 1 + 32 + std::uint64_t{config.warpWidth};
}

/** SIMT control bits per warp slot: PC, active/exited masks, stack. */
inline std::uint64_t
simtBitsPerWarp(const GpuConfig& config)
{
    return 32 + 2 * std::uint64_t{config.warpWidth} +
           kSimtStackDepth * simtEntryBits(config);
}

/** ACE units per warp slot of the SIMT target: the PC/mask unit plus
 *  one unit per hardware stack entry. */
constexpr std::uint32_t kSimtUnitsPerWarp = 1 + kSimtStackDepth;

/**
 * One registered target structure.  Sizes are functions of the device
 * configuration so a single table serves every GPU model; a structure a
 * chip lacks reports 0 bits (e.g. the scalar RF on NVIDIA parts).
 */
struct StructureSpec
{
    TargetStructure id = TargetStructure::VectorRegisterFile;
    StructureKind kind = StructureKind::WordStorage;
    /** Canonical display name, e.g. "register-file". */
    std::string_view name;
    /** Short CLI alias, e.g. "rf". */
    std::string_view shortName;
    /** Key used in JSON exports, e.g. "register_file". */
    std::string_view jsonKey;
    /** Word-storage only: the golden trace yields exact per-word dead
     *  windows (the checkpoint engine's zero-simulation prefilter;
     *  transient faults only — a persistent fault's cell is never
     *  dead while the forcing holds). */
    bool exactDeadWindows = false;
    /** How this structure hosts stuck-at / intermittent faults. */
    PersistenceHook persistenceHook = PersistenceHook::None;
    /** One instance per SM, or one chip-shared instance (the L2). */
    StructureScope scope = StructureScope::PerSm;

    /** Fault-injectable bits per instance — per SM/CU for PerSm scope,
     *  chip-wide for Chip scope — on @p config (0 = chip lacks it). */
    std::uint64_t (*bitsPerSm)(const GpuConfig&) = nullptr;
    /**
     * Lifetime-accounting granules per SM: 32-bit words for word
     * storage, logical control units (one predicate register / one
     * stack entry / the PC+mask group) for control bits.  Observer
     * read/write/alloc/free events address these units.
     */
    std::uint64_t (*aceUnitsPerSm)(const GpuConfig&) = nullptr;
    /**
     * Bit width of SM-relative ACE unit @p unit, for structures whose
     * units are NOT uniform 32-bit words (null = uniform words).  ACE
     * accounting weights each unit's lifetime by its bit count so the
     * structure AVF stays a conservative bound on bit-uniform fault
     * injection even when units differ in size (the SIMT PC/mask group
     * vs. a stack entry).  Invariant: the widths of one SM's units sum
     * to bitsPerSm.
     */
    std::uint32_t (*aceUnitBits)(const GpuConfig&, std::uint32_t unit) =
        nullptr;
    /** The golden-run occupancy series this structure's AVF is compared
     *  against in reports (control state occupancy = warp residency). */
    double (*occupancy)(const SimStats&) = nullptr;
};

/** The registry, indexed by TargetStructure value. */
const std::array<StructureSpec, kNumTargetStructures>& structureRegistry();

/** Spec lookup; throws FatalError on an unregistered id. */
const StructureSpec& structureSpec(TargetStructure id);

/** Parse a canonical or short name; false if @p name is unregistered. */
bool tryTargetStructureFromName(std::string_view name, TargetStructure& out);

/** Parse a canonical or short name; throws FatalError listing the
 *  registered names on failure. */
TargetStructure targetStructureFromName(std::string_view name);

/** Chip-wide fault-injectable bits of @p id on @p config. */
std::uint64_t structureBitsTotal(const GpuConfig& config,
                                 TargetStructure id);

/**
 * Does @p id apply to a cell of @p config running a kernel that does
 * (or does not) use local memory?  A structure the chip lacks (0 bits)
 * never applies; local memory applies only to kernels that use it.
 * The single applicability rule shared by the study orchestrator and
 * the throughput bench.
 */
bool structureApplies(const GpuConfig& config, TargetStructure id,
                      bool uses_local_memory);

/**
 * The structures a fault-injection grid targets on one cell, in
 * registry order: every applicable structure, optionally intersected
 * with @p requested (empty = no restriction).  The single selection
 * rule shared by the study orchestrator and the throughput bench.
 */
std::vector<TargetStructure>
selectStructures(const GpuConfig& config, bool uses_local_memory,
                 const std::vector<TargetStructure>& requested);

/**
 * Registry-ordered lookup shared by every per-structure result vector
 * (`AceResult`, `ReliabilityReport`, `AccessProfileResult`): elements
 * carry a `structure` id field and sit at their enum index.  Throws
 * FatalError — naming @p what — when the entry is missing, so a
 * registry/result mismatch fails loudly instead of aliasing another
 * structure's numbers.
 */
template <typename T>
const T&
structureEntry(const std::vector<T>& entries, TargetStructure s,
               std::string_view what)
{
    const auto index = static_cast<std::size_t>(s);
    if (index >= entries.size() || entries[index].structure != s) {
        fatal(what, " holds no entry for structure id ",
              static_cast<unsigned>(s),
              " — registry and result are out of sync");
    }
    return entries[index];
}

/** Chip-wide ACE units of @p id on @p config. */
std::uint64_t structureAceUnitsTotal(const GpuConfig& config,
                                     TargetStructure id);

} // namespace gpr

#endif // GPR_SIM_STRUCTURE_REGISTRY_HH
