/**
 * @file
 * The single-bit-flip fault model shared by the simulator and the
 * reliability layer.
 */

#ifndef GPR_SIM_FAULT_MODEL_HH
#define GPR_SIM_FAULT_MODEL_HH

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/types.hh"

namespace gpr {

/**
 * Structures that can be targeted by injection / ACE analysis.  The
 * enumerators are dense indices into the structure registry (see
 * sim/structure_registry.hh), which holds everything else that used to
 * live in per-structure switch statements: names, kinds, bit budgets,
 * dead-window availability.
 */
enum class TargetStructure : std::uint8_t
{
    // Word-granular storage (the paper's three structures).
    VectorRegisterFile,
    SharedMemory,       ///< local memory in AMD terminology
    ScalarRegisterFile, ///< Southern Islands only

    // Packed control bits over resident warp slots.
    PredicateFile,      ///< per-warp predicate registers (lane masks)
    SimtStack,          ///< PC + active/exited masks + reconvergence stack
};

/** Number of registered target structures (registry size). */
constexpr std::size_t kNumTargetStructures = 5;

/** Canonical display name; throws FatalError on an unregistered id. */
std::string_view targetStructureName(TargetStructure s);

/**
 * One transient fault: flip chip-wide bit @p bitIndex of @p structure at
 * the start of cycle @p cycle.  bitIndex spans every SM's instance of the
 * structure (bitsPerSm * numSms bits total); unallocated storage and
 * empty control cells are part of the target space by design — hitting
 * them is how occupancy couples to AVF.
 */
struct FaultSpec
{
    TargetStructure structure = TargetStructure::VectorRegisterFile;
    BitIndex bitIndex = 0;
    Cycle cycle = 0;
};

} // namespace gpr

#endif // GPR_SIM_FAULT_MODEL_HH
