/**
 * @file
 * The fault model shared by the simulator and the reliability layer: a
 * fault is a **behavior × pattern × target** description.  The behavior
 * says how the fault evolves over time (one-shot transient flip,
 * stuck-at forced value, intermittent duty cycle), the pattern says how
 * many adjacent cell bits it touches (single, adjacent-double,
 * adjacent-quad — the classic MBU shapes), and the target names the
 * hardware structure and the bit within it.  The default-constructed
 * shape (transient × single) reproduces the original single-bit-flip
 * model exactly.
 */

#ifndef GPR_SIM_FAULT_MODEL_HH
#define GPR_SIM_FAULT_MODEL_HH

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/types.hh"

namespace gpr {

/**
 * Structures that can be targeted by injection / ACE analysis.  The
 * enumerators are dense indices into the structure registry (see
 * sim/structure_registry.hh), which holds everything else that used to
 * live in per-structure switch statements: names, kinds, bit budgets,
 * dead-window availability.
 */
enum class TargetStructure : std::uint8_t
{
    // Word-granular storage (the paper's three structures).
    VectorRegisterFile,
    SharedMemory,       ///< local memory in AMD terminology
    ScalarRegisterFile, ///< Southern Islands only

    // Packed control bits over resident warp slots.
    PredicateFile,      ///< per-warp predicate registers (lane masks)
    SimtStack,          ///< PC + active/exited masks + reconvergence stack

    // Cache arrays: tag + valid + dirty metadata plus data lines.
    L1DataCache,        ///< per-SM L1 data cache
    L1InstructionCache, ///< per-SM L1 instruction cache
    L2Cache,            ///< chip-shared L2 cache
};

/** Number of registered target structures (registry size). */
constexpr std::size_t kNumTargetStructures = 8;

/** Canonical display name; throws FatalError on an unregistered id. */
std::string_view targetStructureName(TargetStructure s);

/**
 * Temporal behavior of an injected fault.
 *
 *  - **Transient**: one XOR at the fault cycle; the classic SEU model
 *    every prior campaign used.  Served by the checkpoint engine's
 *    dead-window prefilter and hash early-out.
 *  - **StuckAt0 / StuckAt1**: the faulty cell is forced to 0/1 from the
 *    fault cycle to the end of the run, re-asserted on every access of
 *    the cell (hard/permanent fault).
 *  - **Intermittent**: stuck-at with a deterministic duty cycle — the
 *    forcing is active for FaultSpec::intermittentActive cycles out of
 *    every FaultSpec::intermittentPeriod, starting at the fault cycle;
 *    outside the active phase the cell retains/recovers its stored
 *    value (marginal-cell model).
 */
enum class FaultBehavior : std::uint8_t
{
    Transient,
    StuckAt0,
    StuckAt1,
    Intermittent,
};

/** Number of fault behaviors (for iteration / tables). */
constexpr std::size_t kNumFaultBehaviors = 4;

/** Persistent behaviors outlive the fault cycle: the forcing is
 *  re-asserted on every access, so the transient dead-window prefilter
 *  does not apply (a "dead" interval ends at the next re-assertion) and
 *  the *raw* state can never literally rejoin the golden trajectory.
 *  They get persistence-sound equivalents instead: the value-residency
 *  prefilter (FaultWindows::stuckAgreeCycle) and, past the residency
 *  agree-from cycle, an overlay-aware hash early-out (see
 *  FaultInjector::inject). */
constexpr bool
faultBehaviorPersistent(FaultBehavior b)
{
    return b != FaultBehavior::Transient;
}

/**
 * Spatial shape of an injected fault: how many physically adjacent bits
 * of the target cell it upsets (gpuFI-style multi-bit-upset modes).
 * The affected bits are the pattern-aligned group containing the
 * sampled bit (bit - bit % width .. + width), so uniform bit sampling
 * yields uniform cell sampling; the group never crosses a 32-bit word.
 */
enum class FaultPattern : std::uint8_t
{
    SingleBit,
    AdjacentDouble,
    AdjacentQuad,
};

/** Number of fault patterns (for iteration / tables). */
constexpr std::size_t kNumFaultPatterns = 3;

/** Bits touched by @p p (1, 2 or 4; always a divisor of 32). */
constexpr unsigned
faultPatternWidth(FaultPattern p)
{
    return p == FaultPattern::SingleBit        ? 1u
           : p == FaultPattern::AdjacentDouble ? 2u
                                               : 4u;
}

/**
 * The (behavior, pattern) pair that parameterizes a campaign: every
 * injection of the campaign shares one shape while target/bit/cycle are
 * sampled per injection.  Default-constructed = transient single-bit,
 * the exact pre-redesign model.
 */
struct FaultShape
{
    FaultBehavior behavior = FaultBehavior::Transient;
    FaultPattern pattern = FaultPattern::SingleBit;

    bool
    isDefault() const
    {
        return behavior == FaultBehavior::Transient &&
               pattern == FaultPattern::SingleBit;
    }

    bool
    persistent() const
    {
        return faultBehaviorPersistent(behavior);
    }

    friend bool
    operator==(const FaultShape& a, const FaultShape& b)
    {
        return a.behavior == b.behavior && a.pattern == b.pattern;
    }
    friend bool
    operator!=(const FaultShape& a, const FaultShape& b)
    {
        return !(a == b);
    }
};

/** Canonical behavior name: "transient", "stuck-at-0", "stuck-at-1",
 *  "intermittent". */
std::string_view faultBehaviorName(FaultBehavior b);

/** Parse a canonical behavior name; false if unknown. */
bool tryFaultBehaviorFromName(std::string_view name, FaultBehavior& out);

/** Parse a canonical behavior name; throws FatalError listing the known
 *  names on failure. */
FaultBehavior faultBehaviorFromName(std::string_view name);

/** Canonical pattern name: "single", "adjacent-double", "adjacent-quad". */
std::string_view faultPatternName(FaultPattern p);

/** Parse a canonical pattern name; false if unknown. */
bool tryFaultPatternFromName(std::string_view name, FaultPattern& out);

/** Parse a canonical pattern name; throws FatalError listing the known
 *  names on failure. */
FaultPattern faultPatternFromName(std::string_view name);

/**
 * One fault: upset the pattern-aligned bit group of @p structure
 * containing chip-wide bit @p bitIndex, starting at cycle @p cycle,
 * evolving per @p behavior.  bitIndex spans every SM's instance of the
 * structure (bitsPerSm * numSms bits total); unallocated storage and
 * empty control cells are part of the target space by design — hitting
 * them is how occupancy couples to AVF.
 *
 * Aggregate-initializing only {structure, bitIndex, cycle} (the
 * pre-redesign field set) yields a transient single-bit flip — the
 * original model, bit-for-bit.
 */
struct FaultSpec
{
    TargetStructure structure = TargetStructure::VectorRegisterFile;
    BitIndex bitIndex = 0;
    Cycle cycle = 0;

    // Shape (appended with defaults so legacy {s, b, c} initialization
    // keeps meaning a transient single-bit flip).
    FaultBehavior behavior = FaultBehavior::Transient;
    FaultPattern pattern = FaultPattern::SingleBit;

    // Intermittent duty cycle: forcing is active for the first
    // intermittentActive cycles of every intermittentPeriod-cycle window
    // after `cycle`.  Ignored (and left 0) for other behaviors.
    std::uint32_t intermittentPeriod = 0;
    std::uint32_t intermittentActive = 0;
    /** Value an Intermittent fault forces while active (StuckAt0/1
     *  encode their value in the behavior itself). */
    bool intermittentValue = false;

    FaultShape
    shape() const
    {
        return FaultShape{behavior, pattern};
    }

    bool
    persistent() const
    {
        return faultBehaviorPersistent(behavior);
    }
};

/** The value a persistent @p fault forces while active. */
constexpr bool
faultForcedValue(const FaultSpec& fault)
{
    return fault.behavior == FaultBehavior::StuckAt1 ||
           (fault.behavior == FaultBehavior::Intermittent &&
            fault.intermittentValue);
}

} // namespace gpr

#endif // GPR_SIM_FAULT_MODEL_HH
