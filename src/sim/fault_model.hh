/**
 * @file
 * The single-bit-flip fault model shared by the simulator and the
 * reliability layer.
 */

#ifndef GPR_SIM_FAULT_MODEL_HH
#define GPR_SIM_FAULT_MODEL_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace gpr {

/** Storage structures that can be targeted by injection / ACE analysis. */
enum class TargetStructure : std::uint8_t
{
    VectorRegisterFile,
    SharedMemory,       ///< local memory in AMD terminology
    ScalarRegisterFile, ///< Southern Islands only
};

std::string_view targetStructureName(TargetStructure s);

/**
 * One transient fault: flip chip-wide bit @p bitIndex of @p structure at
 * the start of cycle @p cycle.  bitIndex spans every SM's instance of the
 * structure (bitsPerSm * numSms bits total); unallocated storage is part
 * of the target space by design — hitting it is how occupancy couples to
 * AVF.
 */
struct FaultSpec
{
    TargetStructure structure = TargetStructure::VectorRegisterFile;
    BitIndex bitIndex = 0;
    Cycle cycle = 0;
};

inline std::string_view
targetStructureName(TargetStructure s)
{
    switch (s) {
      case TargetStructure::VectorRegisterFile:
        return "register-file";
      case TargetStructure::SharedMemory:
        return "local-memory";
      case TargetStructure::ScalarRegisterFile:
        return "scalar-register-file";
    }
    return "unknown";
}

} // namespace gpr

#endif // GPR_SIM_FAULT_MODEL_HH
