/**
 * @file
 * One streaming multiprocessor (NVIDIA) / compute unit (AMD).
 *
 * Owns the storage structures under study — vector register file, scalar
 * register file (SI), LDS — plus the resident-block table, the warp
 * contexts, the warp scheduler and the functional executor.  Timing is
 * "GPGPU-Sim-lite": in-order issue per warp with a register scoreboard,
 * configurable latencies per functional category, shared-memory bank
 * conflicts and a chip-level global-memory bandwidth pipe.
 */

#ifndef GPR_SIM_SM_CORE_HH
#define GPR_SIM_SM_CORE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "arch/gpu_config.hh"
#include "isa/program.hh"
#include "sim/cache.hh"
#include "sim/launch.hh"
#include "sim/memory_image.hh"
#include "sim/observer.hh"
#include "sim/stats.hh"
#include "sim/storage.hh"
#include "sim/trap.hh"
#include "sim/warp.hh"

namespace gpr {

/**
 * One SM's share of a delta checkpoint: page deltas of its three word
 * storages (srf unused on scalar-less architectures) and its two L1
 * caches against the recording run's baseline snapshot.
 */
struct SmStorageDelta
{
    WordStorage::Delta vrf;
    WordStorage::Delta srf;
    WordStorage::Delta lds;
    StorageDelta l1d;
    StorageDelta l1i;

    std::size_t
    bytes() const
    {
        return vrf.bytes() + srf.bytes() + lds.bytes() + l1d.bytes() +
               l1i.bytes();
    }
};

/** Chip-level global-memory bandwidth model (shared by all SMs). */
struct MemPipe
{
    Cycle nextFree = 0;
};

/** Everything one kernel run needs; owned by Gpu, passed down by ref. */
struct RunContext
{
    const GpuConfig* config = nullptr;
    const Program* program = nullptr;
    const LaunchConfig* launch = nullptr;
    MemoryImage* memory = nullptr;
    SimObserver* observer = nullptr;
    SimStats* stats = nullptr;
    /** Chip-shared L2 (owned by Gpu); null when the chip models none. */
    CacheModel* l2 = nullptr;
    MemPipe memPipe;

    // Launch-derived constants (filled by Gpu::run).
    std::uint32_t warpsPerBlock = 0;
    std::uint32_t vrfWordsPerBlock = 0;
    std::uint32_t srfWordsPerBlock = 0;
    std::uint32_t ldsWordsPerBlock = 0;
};

class SmCore
{
  public:
    SmCore(const GpuConfig& config, SmId id);

    SmCore(const SmCore&) = delete;
    SmCore& operator=(const SmCore&) = delete;
    SmCore(SmCore&&) = default;

    /** Wipe all storage and residency state before a new run. */
    void reset();

    /**
     * Try to make block @p block_id resident; allocates registers, scalar
     * registers and LDS.  Returns false if resources do not fit.
     */
    bool tryDispatchBlock(RunContext& ctx, std::uint32_t block_id,
                          Cycle now);

    /**
     * Run one cycle: issue up to issueWidth warp-instructions.
     * @p issued_any is set if at least one instruction issued;
     * @p next_event is lowered to the earliest cycle any stalled warp
     * could issue.  Returns a trap if execution faulted.
     */
    std::optional<TrapKind> stepCycle(RunContext& ctx, Cycle now,
                                      bool& issued_any, Cycle& next_event);

    /** Number of blocks currently resident. */
    std::uint32_t residentBlocks() const { return resident_blocks_; }
    /** Warp slots claimed by resident blocks. */
    std::uint32_t residentWarps() const { return resident_warps_; }

    std::uint32_t allocatedVrfWords() const
    {
        return vrf_.allocatedWords();
    }
    std::uint32_t allocatedSrfWords() const
    {
        return srf_ ? srf_->allocatedWords() : 0;
    }
    std::uint32_t allocatedLdsWords() const
    {
        return lds_.allocatedWords();
    }

    /**
     * XOR-flip a group of bits of @p structure on this SM: mask bit k
     * set means SM-local fault-space bit @p first_bit + k flips (see
     * the structure registry for per-structure bit geometry).  This is
     * the single place where registry ids bind to physical simulator
     * state.  Flips into dead cells (unallocated storage, unused warp
     * slots, empty stack entries) are architecturally inert by design.
     */
    void applyFault(TargetStructure structure, BitIndex first_bit,
                    std::uint64_t mask);

    /** Deprecated single-bit wrapper: applyFault(structure, bit, 1). */
    void
    flipBit(TargetStructure structure, BitIndex bit)
    {
        applyFault(structure, bit, 1);
    }

    /**
     * One persistent (stuck-at / intermittent) fault bound to this SM:
     * the bits selected by @p mask at @p firstBit are forced to
     * @p value whenever the fault is active.  How the forcing reaches
     * the state is the structure's registry-declared PersistenceHook.
     */
    struct PersistentFault
    {
        TargetStructure structure = TargetStructure::VectorRegisterFile;
        BitIndex firstBit = 0;       ///< SM-local, pattern-aligned
        std::uint64_t mask = 1;      ///< bit k = local bit firstBit + k
        bool value = false;          ///< forced value while active
        /** True for stuck-at faults (active every cycle once applied);
         *  false for intermittent ones.  An always-active storage
         *  overlay arms canonical hashing (WordStorage hashes the
         *  overlaid value), enabling the persistent hash early-out. */
        bool alwaysActive = true;
    };

    /**
     * Bind @p fault to this SM (at most one per run).  The binding is
     * run-loop state, not part of snapshots: checkpoints are recorded
     * on fault-free runs and Gpu::run re-binds after a restore once the
     * fault cycle arrives.  Cleared by reset()/restore().
     */
    void bindPersistentFault(const PersistentFault& fault);

    /**
     * Assert the bound fault for the cycle about to step: enable or
     * disable the storage read overlay, or re-force control bits when
     * @p active.  Idempotent, so the run loop may tick it on any
     * super-sequence of the simulated cycles without changing behavior.
     * No-op when no fault is bound.
     */
    void persistentFaultTick(bool active);

    /** Drop the bound fault and its storage overlay (if any). */
    void clearPersistentFault();

    /**
     * Write this SM's dirty L1d lines back (into the L2 when present,
     * else memory) at clean kernel completion, so the image the
     * workload checks reflects all cached stores.  A trap here is the
     * delayed detection of a fault-corrupted tag.  No-op without an L1d.
     */
    std::optional<TrapKind> flushL1d(RunContext& ctx, Cycle now);

    // --- Checkpoint support ----------------------------------------------
    struct Snapshot; ///< full mid-run state of one SM (defined below)

    /** Deep copy of all mutable SM state (storage, blocks, warps,
     *  scheduler).  Paired with restore() for checkpoint-resume runs. */
    Snapshot snapshot() const;

    /** Overwrite all mutable state from @p s (taken on a same-config
     *  SmCore); after this the SM continues exactly where @p s was. */
    void restore(const Snapshot& s);

    /**
     * Fold this SM's trajectory-determining state into @p h.  Hashed:
     * all three storages (contents + free lists), every *active* block
     * context, every *used* warp slot (with its age), the residency
     * bitmaps/counters, and the scheduler cursors.  Deliberately NOT
     * hashed: the contents of inactive block slots and unused warp
     * slots — dispatch fully reinitialises them before reuse, so their
     * stale bytes can never influence future execution and would only
     * produce false "diverged" verdicts.
     */
    void hashInto(StateHash& h) const;

    // --- Delta/CoW checkpoint support ------------------------------------
    // The checkpoint engine v2 splits SM state along the cheap/expensive
    // axis: control state (blocks, warps, scheduler — kilobytes) is
    // copied in full per checkpoint, while the storages (megabytes) are
    // baseline-anchored and move as page deltas.

    struct ControlState; ///< all non-storage mutable state (defined below)

    /** Deep copy of the control half only (storages excluded). */
    ControlState captureControl() const;

    /** Overwrite the control half from @p c; drops any bound persistent
     *  fault (restores land on fault-free recorded state). */
    void restoreControl(const ControlState& c);

    /** Declare the current storage contents the revert/capture baseline
     *  (see WordStorage::markCleanForRestore). */
    void markStoragesClean();

    /** Revert all storages to @p baseline by copying back only the pages
     *  written since markStoragesClean(); also drops any stuck-bit
     *  overlays (see WordStorage::revertTo). */
    void revertStorages(const Snapshot& baseline);

    /** Encode the storage pages differing from @p baseline into @p out. */
    void captureStorageDelta(const Snapshot& baseline,
                             SmStorageDelta& out) const;

    /** Apply @p delta on top of the baseline the SM currently matches. */
    void applyStorageDelta(const SmStorageDelta& delta);

  private:
    struct BlockContext
    {
        bool active = false;
        std::uint32_t blockId = 0;
        std::uint32_t bx = 0;
        std::uint32_t by = 0;
        std::uint32_t vrfBase = 0;
        std::uint32_t srfBase = 0;
        std::uint32_t ldsBase = 0;
        std::vector<std::uint32_t> warpSlots;
        std::uint32_t liveWarps = 0;
        std::uint32_t barrierArrived = 0;
    };

    // --- Fault plumbing ----------------------------------------------------
    /** How mutateBit changes the addressed bit. */
    enum class BitMutation : std::uint8_t { Flip, Force0, Force1 };

    /** The per-bit core behind applyFault and persistentFaultTick:
     *  flip or force one SM-local fault-space bit of @p structure. */
    void mutateBit(TargetStructure structure, BitIndex bit,
                   BitMutation mut);

    /** The WordStorage instance backing a word-storage structure. */
    WordStorage& storageFor(TargetStructure structure);

    // --- Issue & execution -----------------------------------------------
    /** Can warp @p w issue at @p now?  If not, raises @p stall_until. */
    bool canIssue(const RunContext& ctx, const WarpContext& w, Cycle now,
                  Cycle& stall_until) const;

    std::optional<TrapKind> executeInstruction(RunContext& ctx,
                                               WarpContext& w, Cycle now);

    // Operand access.
    Word readUniformOperand(RunContext& ctx, const WarpContext& w,
                            const Operand& op, Cycle now);
    Word readLaneOperand(RunContext& ctx, const WarpContext& w,
                         const Operand& op, unsigned lane, Cycle now,
                         Word uniform_value);
    void writeVReg(RunContext& ctx, const WarpContext& w, RegIndex r,
                   unsigned lane, Word value, Cycle now);
    Word readSpecial(const RunContext& ctx, const WarpContext& w,
                     SpecialReg sr, unsigned lane) const;

    std::uint32_t vrfIndex(const WarpContext& w, RegIndex r,
                           unsigned lane) const;
    std::uint32_t srfIndex(const WarpContext& w, RegIndex r) const;

    // Registry-unit indices of a warp's control state (SM-relative).
    std::uint32_t warpSlotOf(const WarpContext& w) const;
    std::uint32_t predUnit(const WarpContext& w, unsigned preg) const;
    std::uint32_t simtUnit(const WarpContext& w, unsigned unit) const;

    // Control-flow helpers.
    void popToNextPath(RunContext& ctx, WarpContext& w, Cycle now,
                       bool& underflow);
    void pushReconv(RunContext& ctx, WarpContext& w,
                    const ReconvEntry& entry, Cycle now);
    void finishWarp(RunContext& ctx, WarpContext& w, Cycle now);
    void releaseBarrierIfReady(RunContext& ctx, BlockContext& block,
                               Cycle now);
    void completeBlock(RunContext& ctx, BlockContext& block, Cycle now);

    // Scheduling.
    std::int32_t pickWarpRoundRobin(const RunContext& ctx, Cycle now,
                                    Cycle& next_event);
    std::int32_t pickWarpGto(const RunContext& ctx, Cycle now,
                             Cycle& next_event);

    const GpuConfig& config_;
    SmId id_;

    WordStorage vrf_;
    std::optional<WordStorage> srf_; ///< SI only
    WordStorage lds_;                ///< word-granular LDS
    std::optional<CacheModel> l1d_;  ///< absent when l1dBytesPerSm == 0
    std::optional<CacheModel> l1i_;  ///< absent when l1iBytesPerSm == 0

    std::vector<BlockContext> blocks_;   ///< maxBlocksPerSm slots
    std::vector<WarpContext> warps_;     ///< maxWarpsPerSm slots
    std::vector<bool> warp_slot_used_;
    std::vector<std::uint64_t> warp_age_; ///< dispatch sequence, for GTO

    std::uint32_t resident_blocks_ = 0;
    std::uint32_t resident_warps_ = 0;
    std::uint64_t dispatch_seq_ = 0;

    // Scheduler state.
    std::uint32_t rr_cursor_ = 0;
    std::int32_t gto_last_ = -1;

    // Bound persistent fault (run-loop state; never checkpointed).
    std::optional<PersistentFault> pfault_;
};

/**
 * One SM's complete mid-run state, deep-copied.  Mirrors every mutable
 * member of SmCore; restore() asserts the shape matches the config the
 * snapshot was taken under.  Opaque to everything outside the sim layer
 * (GpuCheckpoint just carries a vector of these).
 */
struct SmCore::Snapshot
{
    WordStorage vrf;
    std::optional<WordStorage> srf;
    WordStorage lds;
    std::optional<CacheModel> l1d;
    std::optional<CacheModel> l1i;
    std::vector<BlockContext> blocks;
    std::vector<WarpContext> warps;
    std::vector<bool> warpSlotUsed;
    std::vector<std::uint64_t> warpAge;
    std::uint32_t residentBlocks = 0;
    std::uint32_t residentWarps = 0;
    std::uint64_t dispatchSeq = 0;
    std::uint32_t rrCursor = 0;
    std::int32_t gtoLast = -1;

    /** Resident footprint (pack accounting). */
    std::size_t
    bytes() const
    {
        std::size_t b = sizeof(*this) + vrf.bytes() +
                        (srf ? srf->bytes() : 0) + lds.bytes() +
                        (l1d ? l1d->bytes() : 0) +
                        (l1i ? l1i->bytes() : 0) +
                        warpSlotUsed.size() / 8 +
                        warpAge.size() * sizeof(std::uint64_t);
        for (const BlockContext& blk : blocks)
            b += sizeof(blk) + blk.warpSlots.size() * sizeof(std::uint32_t);
        for (const WarpContext& w : warps) {
            b += sizeof(w) + w.stack.capacity() * sizeof(ReconvEntry) +
                 (w.vregReady.size() + w.sregReady.size()) * sizeof(Cycle);
        }
        return b;
    }
};

/**
 * The non-storage half of a Snapshot: block/warp contexts, residency
 * bookkeeping and scheduler cursors.  Small enough (a few KiB) that
 * delta checkpoints copy it whole instead of diffing it.
 */
struct SmCore::ControlState
{
    std::vector<BlockContext> blocks;
    std::vector<WarpContext> warps;
    std::vector<bool> warpSlotUsed;
    std::vector<std::uint64_t> warpAge;
    std::uint32_t residentBlocks = 0;
    std::uint32_t residentWarps = 0;
    std::uint64_t dispatchSeq = 0;
    std::uint32_t rrCursor = 0;
    std::int32_t gtoLast = -1;

    std::size_t
    bytes() const
    {
        std::size_t b = sizeof(*this) +
                        warpSlotUsed.size() / 8 +
                        warpAge.size() * sizeof(std::uint64_t);
        for (const BlockContext& blk : blocks)
            b += sizeof(blk) + blk.warpSlots.size() * sizeof(std::uint32_t);
        for (const WarpContext& w : warps) {
            b += sizeof(w) + w.stack.capacity() * sizeof(ReconvEntry) +
                 (w.vregReady.size() + w.sregReady.size()) * sizeof(Cycle);
        }
        return b;
    }
};

} // namespace gpr

#endif // GPR_SIM_SM_CORE_HH
