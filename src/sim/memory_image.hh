/**
 * @file
 * The global-memory image a kernel runs against.
 *
 * Workloads build an image (inputs + zeroed outputs), the simulator runs
 * against a private copy, and the workload then compares output buffers
 * against a host-computed golden.  Word-granular, byte-addressed.
 */

#ifndef GPR_SIM_MEMORY_IMAGE_HH
#define GPR_SIM_MEMORY_IMAGE_HH

#include <cstdint>
#include <vector>

#include "common/bitutils.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "common/types.hh"
#include "sim/state_page.hh"

namespace gpr {

/** A named span of global memory (byte address + word count). */
struct Buffer
{
    Addr byteAddr = 0;
    std::uint32_t words = 0;

    Addr byteAddrOfWord(std::uint32_t i) const
    {
        GPR_ASSERT(i < words, "buffer index out of range");
        return byteAddr + static_cast<Addr>(i) * 4;
    }
};

class MemoryImage
{
  public:
    MemoryImage() = default;

    /** Reserve a word-aligned buffer of @p words 32-bit words. */
    Buffer
    allocBuffer(std::uint32_t words)
    {
        // A zero-word Buffer would carry the byte address of whatever is
        // allocated *next* — a footgun that silently aliases two buffers.
        GPR_ASSERT(words > 0,
                   "allocBuffer(0): zero-word buffers would alias the "
                   "next allocation's base address");
        // Do the address arithmetic in Addr width *before* any multiply
        // or add, and pin the image to what sizeWords()/Buffer::words
        // can express — a 32-bit word count (16 GiB of image).
        const Addr base_words = static_cast<Addr>(words_.size());
        const Addr total_words = base_words + static_cast<Addr>(words);
        GPR_ASSERT(total_words <= 0xffffffffULL,
                   "memory image exceeds the 32-bit word-count limit");
        Buffer b;
        b.byteAddr = base_words * 4;
        b.words = words;
        words_.resize(static_cast<std::size_t>(total_words), 0u);
        pages_.resize(words_.size());
        return b;
    }

    std::uint32_t sizeWords() const
    {
        return static_cast<std::uint32_t>(words_.size());
    }
    Addr sizeBytes() const { return static_cast<Addr>(words_.size()) * 4; }

    /** In-range check for a word access at byte address @p addr. */
    bool
    inBounds(Addr addr) const
    {
        return addr / 4 < words_.size();
    }

    /**
     * Word read at byte address @p addr, which must be word-aligned.
     * Misalignment is a *caller* bug at this level: the simulator's
     * memory path traps TrapKind::MisalignedAddress before ever calling
     * in (a tag-fault-corrupted address must surface as a DUE, not be
     * silently aligned down onto the wrong word).
     */
    Word
    readWord(Addr addr) const
    {
        GPR_ASSERT(inBounds(addr), "global read out of bounds");
        GPR_ASSERT((addr & 3) == 0, "misaligned global word read");
        return words_[addr / 4];
    }

    void
    writeWord(Addr addr, Word value)
    {
        GPR_ASSERT(inBounds(addr), "global write out of bounds");
        GPR_ASSERT((addr & 3) == 0, "misaligned global word write");
        const std::size_t index = static_cast<std::size_t>(addr / 4);
        words_[index] = value;
        pages_.onWrite(index);
    }

    // Typed helpers for workload setup / checking.
    void setWord(const Buffer& b, std::uint32_t i, Word v)
    {
        writeWord(b.byteAddrOfWord(i), v);
    }
    Word getWord(const Buffer& b, std::uint32_t i) const
    {
        return readWord(b.byteAddrOfWord(i));
    }
    void setFloat(const Buffer& b, std::uint32_t i, float f)
    {
        setWord(b, i, floatBits(f));
    }
    float getFloat(const Buffer& b, std::uint32_t i) const
    {
        return wordToFloat(getWord(b, i));
    }
    void setInt(const Buffer& b, std::uint32_t i, std::int32_t v)
    {
        setWord(b, i, static_cast<Word>(v));
    }
    std::int32_t getInt(const Buffer& b, std::uint32_t i) const
    {
        return static_cast<std::int32_t>(getWord(b, i));
    }

    /** Raw word array (whole-image comparisons, output checking). */
    const std::vector<Word>& words() const { return words_; }

    /**
     * Fold the image contents into @p h as a sum of cached per-page
     * digests (see sim/state_page.hh) — cost proportional to the pages
     * written since the previous hash, not to the image size.
     */
    void
    hashInto(StateHash& h) const
    {
        h.mix(words_.size());
        h.mix(pages_.digestSum(words_));
    }

    // --- Delta/CoW checkpoint support (mirrors WordStorage) -------------

    /** Declare the current contents the revert/capture baseline. */
    void markCleanForRestore() { pages_.markCleanForRestore(); }

    /** Copy back from @p baseline only the pages written since
     *  markCleanForRestore() (both images must be the same shape). */
    void
    revertTo(const MemoryImage& baseline)
    {
        GPR_ASSERT(baseline.words_.size() == words_.size(),
                   "revert against a different-shaped image");
        pages_.revertTo(words_, baseline.words_);
    }

    /** Encode the pages differing from @p baseline into @p out. */
    void
    captureDelta(const MemoryImage& baseline, StorageDelta& out) const
    {
        GPR_ASSERT(baseline.words_.size() == words_.size(),
                   "delta against a different-shaped image");
        pages_.captureDelta(words_, baseline.words_, out);
    }

    /** Overwrite the delta's pages (this image must currently match the
     *  baseline the delta was recorded against). */
    void applyDelta(const StorageDelta& delta)
    {
        pages_.applyDelta(words_, delta);
    }

    /** Resident footprint of the full image (pack accounting). */
    std::size_t bytes() const { return words_.size() * sizeof(Word); }

  private:
    std::vector<Word> words_;
    PageTracker pages_;
};

} // namespace gpr

#endif // GPR_SIM_MEMORY_IMAGE_HH
