/**
 * @file
 * The global-memory image a kernel runs against.
 *
 * Workloads build an image (inputs + zeroed outputs), the simulator runs
 * against a private copy, and the workload then compares output buffers
 * against a host-computed golden.  Word-granular, byte-addressed.
 */

#ifndef GPR_SIM_MEMORY_IMAGE_HH
#define GPR_SIM_MEMORY_IMAGE_HH

#include <cstdint>
#include <vector>

#include "common/bitutils.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace gpr {

/** A named span of global memory (byte address + word count). */
struct Buffer
{
    Addr byteAddr = 0;
    std::uint32_t words = 0;

    Addr byteAddrOfWord(std::uint32_t i) const
    {
        GPR_ASSERT(i < words, "buffer index out of range");
        return byteAddr + static_cast<Addr>(i) * 4;
    }
};

class MemoryImage
{
  public:
    MemoryImage() = default;

    /** Reserve a word-aligned buffer of @p words 32-bit words. */
    Buffer
    allocBuffer(std::uint32_t words)
    {
        Buffer b;
        b.byteAddr = static_cast<Addr>(words_.size()) * 4;
        b.words = words;
        words_.resize(words_.size() + words, 0u);
        return b;
    }

    std::uint32_t sizeWords() const
    {
        return static_cast<std::uint32_t>(words_.size());
    }
    Addr sizeBytes() const { return static_cast<Addr>(words_.size()) * 4; }

    /** In-range check for a word access at byte address @p addr. */
    bool
    inBounds(Addr addr) const
    {
        return addr / 4 < words_.size();
    }

    /** Word read at byte address (aligned down to the word). */
    Word
    readWord(Addr addr) const
    {
        GPR_ASSERT(inBounds(addr), "global read out of bounds");
        return words_[addr / 4];
    }

    void
    writeWord(Addr addr, Word value)
    {
        GPR_ASSERT(inBounds(addr), "global write out of bounds");
        words_[addr / 4] = value;
    }

    // Typed helpers for workload setup / checking.
    void setWord(const Buffer& b, std::uint32_t i, Word v)
    {
        writeWord(b.byteAddrOfWord(i), v);
    }
    Word getWord(const Buffer& b, std::uint32_t i) const
    {
        return readWord(b.byteAddrOfWord(i));
    }
    void setFloat(const Buffer& b, std::uint32_t i, float f)
    {
        setWord(b, i, floatBits(f));
    }
    float getFloat(const Buffer& b, std::uint32_t i) const
    {
        return wordToFloat(getWord(b, i));
    }
    void setInt(const Buffer& b, std::uint32_t i, std::int32_t v)
    {
        setWord(b, i, static_cast<Word>(v));
    }
    std::int32_t getInt(const Buffer& b, std::uint32_t i) const
    {
        return static_cast<std::int32_t>(getWord(b, i));
    }

    /** Raw word array (state hashing, whole-image comparisons). */
    const std::vector<Word>& words() const { return words_; }

  private:
    std::vector<Word> words_;
};

} // namespace gpr

#endif // GPR_SIM_MEMORY_IMAGE_HH
