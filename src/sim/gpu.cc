#include "sim/gpu.hh"

#include <algorithm>
#include <limits>

#include "arch/occupancy.hh"
#include "common/bitutils.hh"
#include "common/logging.hh"

namespace gpr {
namespace {

constexpr Cycle kDefaultMaxCycles = 50'000'000;

} // namespace

Gpu::Gpu(const GpuConfig& config)
    : config_(config)
{
    sms_.reserve(config.numSms);
    for (SmId i = 0; i < config.numSms; ++i)
        sms_.push_back(std::make_unique<SmCore>(config, i));
}

std::uint64_t
Gpu::structureBits(TargetStructure structure) const
{
    switch (structure) {
      case TargetStructure::VectorRegisterFile:
        return config_.totalRegFileBits();
      case TargetStructure::ScalarRegisterFile:
        return config_.totalScalarRegBits();
      case TargetStructure::SharedMemory:
        return config_.totalSmemBits();
    }
    panic("bad structure");
}

void
Gpu::applyFault(const FaultSpec& fault)
{
    std::uint64_t bits_per_sm = 0;
    switch (fault.structure) {
      case TargetStructure::VectorRegisterFile:
        bits_per_sm = std::uint64_t{config_.regFileWordsPerSm} * 32;
        break;
      case TargetStructure::ScalarRegisterFile:
        bits_per_sm = std::uint64_t{config_.scalarRegWordsPerSm} * 32;
        break;
      case TargetStructure::SharedMemory:
        bits_per_sm = std::uint64_t{config_.smemWordsPerSm()} * 32;
        break;
    }
    GPR_ASSERT(bits_per_sm > 0, "fault targets a structure this chip "
               "does not have");
    const SmId sm = static_cast<SmId>(fault.bitIndex / bits_per_sm);
    const BitIndex local = fault.bitIndex % bits_per_sm;
    GPR_ASSERT(sm < sms_.size(), "fault bit index out of range");

    switch (fault.structure) {
      case TargetStructure::VectorRegisterFile:
        sms_[sm]->flipVrfBit(local);
        break;
      case TargetStructure::ScalarRegisterFile:
        sms_[sm]->flipSrfBit(local);
        break;
      case TargetStructure::SharedMemory:
        sms_[sm]->flipLdsBit(local);
        break;
    }
}

void
Gpu::dispatchBlocks(RunContext& ctx, Cycle now)
{
    // Round-robin over SMs, one block per step, until nothing fits.
    bool any_progress = true;
    while (next_block_ < num_blocks_ && any_progress) {
        any_progress = false;
        for (std::uint32_t probe = 0;
             probe < sms_.size() && next_block_ < num_blocks_; ++probe) {
            const std::uint32_t sm =
                (dispatch_rr_ + probe) % sms_.size();
            if (sms_[sm]->tryDispatchBlock(ctx, next_block_, now)) {
                ++next_block_;
                any_progress = true;
            }
        }
        dispatch_rr_ = (dispatch_rr_ + 1) % sms_.size();
    }
}

RunResult
Gpu::run(const Program& prog, const LaunchConfig& launch, MemoryImage image,
         const RunOptions& options)
{
    // Configuration validation (throws on user error).  This also
    // guarantees that at least one block fits on an SM.
    computeOccupancy(config_, prog, launch.threadsPerBlock(),
                     std::max(1u, launch.numBlocks()));
    GPR_ASSERT(launch.numBlocks() > 0, "empty grid");

    RunResult result;
    RunContext ctx;
    ctx.config = &config_;
    ctx.program = &prog;
    ctx.launch = &launch;
    ctx.memory = &image;
    ctx.observer = options.observer;
    ctx.stats = &result.stats;

    ctx.warpsPerBlock = ceilDiv(launch.threadsPerBlock(),
                                config_.warpWidth);
    ctx.vrfWordsPerBlock =
        ctx.warpsPerBlock * config_.warpWidth * prog.numVRegs();
    ctx.srfWordsPerBlock = ctx.warpsPerBlock * prog.numSRegs();
    ctx.ldsWordsPerBlock = ceilDiv(prog.smemBytes(), 4u);

    for (auto& sm : sms_)
        sm->reset();
    next_block_ = 0;
    num_blocks_ = launch.numBlocks();
    dispatch_rr_ = 0;

    const Cycle max_cycles =
        options.maxCycles ? options.maxCycles : kDefaultMaxCycles;
    bool fault_pending = options.fault.has_value();

    // Occupancy integrators (word-cycles / warp-slot-cycles).
    double vrf_occ_acc = 0.0;
    double srf_occ_acc = 0.0;
    double lds_occ_acc = 0.0;
    double warp_occ_acc = 0.0;

    Cycle now = 0;
    dispatchBlocks(ctx, now);

    std::uint64_t last_completed = 0;
    auto finalize = [&](TrapKind trap) {
        result.trap = trap;
        result.stats.cycles = now + 1;
        const double cycles = static_cast<double>(result.stats.cycles);
        const double chip_vrf =
            static_cast<double>(config_.regFileWordsPerSm) * config_.numSms;
        const double chip_srf =
            static_cast<double>(config_.scalarRegWordsPerSm) *
            config_.numSms;
        const double chip_lds =
            static_cast<double>(config_.smemWordsPerSm()) * config_.numSms;
        const double chip_warps =
            static_cast<double>(config_.maxWarpsPerSm) * config_.numSms;
        result.stats.avgRegFileOccupancy =
            chip_vrf > 0 ? vrf_occ_acc / (cycles * chip_vrf) : 0.0;
        result.stats.avgScalarRegOccupancy =
            chip_srf > 0 ? srf_occ_acc / (cycles * chip_srf) : 0.0;
        result.stats.avgSmemOccupancy =
            chip_lds > 0 ? lds_occ_acc / (cycles * chip_lds) : 0.0;
        result.stats.avgWarpOccupancy =
            chip_warps > 0 ? warp_occ_acc / (cycles * chip_warps) : 0.0;
        if (ctx.observer)
            ctx.observer->onKernelEnd(now);
        result.memory = std::move(image);
        return result;
    };

    while (result.stats.blocksCompleted < num_blocks_) {
        if (fault_pending && now >= options.fault->cycle) {
            applyFault(*options.fault);
            fault_pending = false;
        }

        bool issued = false;
        Cycle next_event = std::numeric_limits<Cycle>::max();
        for (auto& sm : sms_) {
            const auto trap = sm->stepCycle(ctx, now, issued, next_event);
            if (trap)
                return finalize(*trap);
        }

        // Refill SMs after block completions.
        if (result.stats.blocksCompleted != last_completed) {
            last_completed = result.stats.blocksCompleted;
            if (next_block_ < num_blocks_)
                dispatchBlocks(ctx, now);
        }

        if (result.stats.blocksCompleted >= num_blocks_) {
            // Account the final cycle before finishing.
            for (const auto& sm : sms_) {
                vrf_occ_acc += sm->allocatedVrfWords();
                srf_occ_acc += sm->allocatedSrfWords();
                lds_occ_acc += sm->allocatedLdsWords();
                warp_occ_acc += sm->residentWarps();
            }
            break;
        }

        Cycle next;
        if (issued) {
            next = now + 1;
        } else {
            if (next_event == std::numeric_limits<Cycle>::max()) {
                // Nothing can ever issue again: warps all parked at
                // barriers that cannot be satisfied.
                return finalize(TrapKind::BarrierDeadlock);
            }
            next = std::max(now + 1, next_event);
        }
        if (fault_pending && options.fault->cycle > now) {
            next = std::min(next, std::max(now + 1, options.fault->cycle));
        }

        // Integrate occupancy over [now, next).
        const double dt = static_cast<double>(next - now);
        std::uint64_t vrf_alloc = 0, srf_alloc = 0, lds_alloc = 0,
                      warps_resident = 0;
        for (const auto& sm : sms_) {
            vrf_alloc += sm->allocatedVrfWords();
            srf_alloc += sm->allocatedSrfWords();
            lds_alloc += sm->allocatedLdsWords();
            warps_resident += sm->residentWarps();
        }
        vrf_occ_acc += static_cast<double>(vrf_alloc) * dt;
        srf_occ_acc += static_cast<double>(srf_alloc) * dt;
        lds_occ_acc += static_cast<double>(lds_alloc) * dt;
        warp_occ_acc += static_cast<double>(warps_resident) * dt;

        now = next;
        if (now > max_cycles)
            return finalize(TrapKind::Watchdog);
    }

    return finalize(TrapKind::None);
}

} // namespace gpr
