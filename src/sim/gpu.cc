#include "sim/gpu.hh"

// gpr:lint-allow-file(D1): timing whitelist — PhaseClock reads feed only
// per-phase seconds diagnostics, never simulated state or cycle counts.

#include <algorithm>
#include <chrono>
#include <limits>

#include "arch/occupancy.hh"
#include "common/bitutils.hh"
#include "common/logging.hh"
#include "sim/structure_registry.hh"

namespace gpr {
namespace {

constexpr Cycle kDefaultMaxCycles = 50'000'000;

using PhaseClock = std::chrono::steady_clock;

double
secondsSince(PhaseClock::time_point start)
{
    return std::chrono::duration<double>(PhaseClock::now() - start)
        .count();
}

} // namespace

Gpu::Gpu(const GpuConfig& config)
    : config_(config)
{
    sms_.reserve(config.numSms);
    for (SmId i = 0; i < config.numSms; ++i)
        sms_.push_back(std::make_unique<SmCore>(config, i));
    if (config.l2Bytes > 0) {
        l2_.emplace(TargetStructure::L2Cache, /*sm=*/0, config.l2Lines(),
                    config.cacheLineWords());
    }
}

std::uint64_t
Gpu::structureBits(TargetStructure structure) const
{
    return structureBitsTotal(config_, structure);
}

void
Gpu::applyFault(const FaultSpec& fault)
{
    const StructureSpec& spec = structureSpec(fault.structure);
    const std::uint64_t bits_per_instance = spec.bitsPerSm(config_);
    GPR_ASSERT(bits_per_instance > 0,
               "fault targets a structure this chip does not have");

    // The pattern upsets the aligned width-bit cell group containing
    // the sampled bit.  Width divides 32 and every structure's
    // per-instance bits, so the group stays inside one instance and
    // inside one 32-bit word of word storage.
    const unsigned width = faultPatternWidth(fault.pattern);

    if (spec.scope == StructureScope::Chip) {
        // The one chip-shared structure is the L2; its fault space is
        // instance-local (no SM split).
        GPR_ASSERT(fault.structure == TargetStructure::L2Cache && l2_,
                   "unhandled chip-scoped structure");
        BitIndex local = fault.bitIndex;
        GPR_ASSERT(local < bits_per_instance,
                   "fault bit index out of range");
        local -= local % width;
        const std::uint64_t mask = (std::uint64_t{1} << width) - 1;
        if (!fault.persistent()) {
            for (unsigned k = 0; (mask >> k) != 0; ++k) {
                if ((mask >> k) & 1)
                    l2_->flipBit(local + k);
            }
            return;
        }
        GPR_ASSERT(spec.persistenceHook == PersistenceHook::CycleReassert,
                   "L2 persistence is cycle-reasserted");
        SmCore::PersistentFault pf;
        pf.structure = fault.structure;
        pf.firstBit = local;
        pf.mask = mask;
        pf.value = faultForcedValue(fault);
        pf.alwaysActive = fault.behavior != FaultBehavior::Intermittent;
        persistent_l2_ = pf;
        return;
    }

    const SmId sm = static_cast<SmId>(fault.bitIndex / bits_per_instance);
    BitIndex local = fault.bitIndex % bits_per_instance;
    GPR_ASSERT(sm < sms_.size(), "fault bit index out of range");
    local -= local % width;
    const std::uint64_t mask = (std::uint64_t{1} << width) - 1;

    if (!fault.persistent()) {
        sms_[sm]->applyFault(fault.structure, local, mask);
        return;
    }
    SmCore::PersistentFault pf;
    pf.structure = fault.structure;
    pf.firstBit = local;
    pf.mask = mask;
    pf.value = faultForcedValue(fault);
    pf.alwaysActive = fault.behavior != FaultBehavior::Intermittent;
    sms_[sm]->bindPersistentFault(pf);
    persistent_sm_ = static_cast<std::int64_t>(sm);
}

GpuCheckpoint
Gpu::snapshot() const
{
    GpuCheckpoint cp;
    cp.sms.reserve(sms_.size());
    for (const auto& sm : sms_)
        cp.sms.push_back(sm->snapshot());
    cp.l2 = l2_;
    cp.nextBlock = next_block_;
    cp.dispatchRr = dispatch_rr_;
    return cp;
}

void
Gpu::restore(const GpuCheckpoint& cp)
{
    GPR_ASSERT(cp.sms.size() == sms_.size() &&
                   cp.l2.has_value() == l2_.has_value(),
               "checkpoint was taken on a chip with a different SM count");
    anchor_ = nullptr; // full restore rebases every storage's tracking
    for (std::size_t i = 0; i < sms_.size(); ++i)
        sms_[i]->restore(cp.sms[i]);
    l2_ = cp.l2;
    next_block_ = cp.nextBlock;
    dispatch_rr_ = cp.dispatchRr;
}

void
Gpu::anchorTo(const GpuCheckpoint& baseline)
{
    restore(baseline);
    for (auto& sm : sms_)
        sm->markStoragesClean();
    if (l2_)
        l2_->markCleanForRestore();
    anchor_ = &baseline;
}

void
Gpu::restoreDelta(const GpuCheckpoint& baseline,
                  const GpuCheckpointDelta& d)
{
    GPR_ASSERT(anchoredTo(&baseline),
               "delta resume on a device not anchored to this baseline");
    GPR_ASSERT(d.smStorage.size() == sms_.size() &&
                   d.smControl.size() == sms_.size(),
               "delta was recorded on a chip with a different SM count");
    for (std::size_t i = 0; i < sms_.size(); ++i) {
        sms_[i]->revertStorages(baseline.sms[i]);
        sms_[i]->applyStorageDelta(d.smStorage[i]);
        sms_[i]->restoreControl(d.smControl[i]);
    }
    if (l2_) {
        l2_->revertTo(*baseline.l2);
        l2_->applyDelta(d.l2);
    }
    next_block_ = d.nextBlock;
    dispatch_rr_ = d.dispatchRr;
}

void
Gpu::hashDeviceInto(StateHash& h) const
{
    for (const auto& sm : sms_)
        sm->hashInto(h);
    if (l2_)
        l2_->hashInto(h);
    h.mix(next_block_);
    h.mix(dispatch_rr_);
}

std::uint64_t
Gpu::deviceStateHash() const
{
    StateHash h;
    hashDeviceInto(h);
    return h.value();
}

/**
 * The trajectory state hash: everything that determines the remainder of
 * a run.  Covers the device (storage contents incl. free space, free
 * lists, active blocks, used warp contexts with scoreboards, residency,
 * scheduler cursors, dispatch state), the global-memory image, the
 * MemPipe timestamp and the completed-block count.  Deliberately NOT
 * covered: performance counters and occupancy integrators — they are
 * write-only accumulators that never feed back into execution, and
 * excluding them lets a run whose *architectural* state rejoined the
 * golden trajectory be classified Masked even though its counters
 * differ.  Hash equality at a common cycle therefore implies the two
 * runs produce identical traps and identical final memory — which is
 * exactly (and only) what outcome classification consumes.
 */
std::uint64_t
Gpu::runStateHash(const RunContext& ctx, const MemoryImage& image,
                  std::uint64_t blocks_completed) const
{
    StateHash h;
    hashDeviceInto(h);
    h.mix(ctx.memPipe.nextFree);
    image.hashInto(h);
    h.mix(blocks_completed);
    return h.value();
}

GpuCheckpoint
Gpu::captureCheckpoint(const RunContext& ctx, const SimStats& stats,
                       const MemoryImage& image, Cycle now) const
{
    GpuCheckpoint cp = snapshot();
    cp.now = now;
    cp.memPipe = ctx.memPipe;
    cp.stats = stats;
    cp.memory = image;
    return cp;
}

void
Gpu::dispatchBlocks(RunContext& ctx, Cycle now)
{
    // Round-robin over SMs, one block per step, until nothing fits.
    bool any_progress = true;
    while (next_block_ < num_blocks_ && any_progress) {
        any_progress = false;
        for (std::uint32_t probe = 0;
             probe < sms_.size() && next_block_ < num_blocks_; ++probe) {
            const std::uint32_t sm =
                (dispatch_rr_ + probe) % sms_.size();
            if (sms_[sm]->tryDispatchBlock(ctx, next_block_, now)) {
                ++next_block_;
                any_progress = true;
            }
        }
        dispatch_rr_ = (dispatch_rr_ + 1) % sms_.size();
    }
}

RunResult
Gpu::run(const Program& prog, const LaunchConfig& launch, MemoryImage image,
         const RunOptions& options)
{
    // Configuration validation (throws on user error).  This also
    // guarantees that at least one block fits on an SM.
    computeOccupancy(config_, prog, launch.threadsPerBlock(),
                     std::max(1u, launch.numBlocks()));
    GPR_ASSERT(launch.numBlocks() > 0, "empty grid");

    GPR_ASSERT(!options.resume || (!options.observer && !options.recorder),
               "a resumed run cannot be observed or re-recorded");
    GPR_ASSERT(!options.resumeDelta ||
                   (!options.observer && !options.recorder),
               "a resumed run cannot be observed or re-recorded");
    GPR_ASSERT(!options.resume || !options.resumeDelta,
               "full and delta resume are mutually exclusive");
    GPR_ASSERT(!options.resumeDelta || options.resumeBaseline,
               "delta resume requires its baseline");
    GPR_ASSERT(options.imageInOut ? options.resumeDelta != nullptr
                                  : options.resumeDelta == nullptr,
               "delta resume and imageInOut come as a pair");
    GPR_ASSERT(!options.recorder || !options.fault,
               "checkpoints are recorded on the fault-free golden run");
    GPR_ASSERT(!options.recorder || options.hashInterval > 0,
               "recording requires a hash interval");
    GPR_ASSERT(!options.fault || !options.fault->persistent() ||
                   !options.goldenHashes ||
                   options.convergeMinCycle > options.fault->cycle,
               "persistent hash early-out requires a residency-sound "
               "convergence threshold past the fault cycle");
    if (options.fault &&
        options.fault->behavior == FaultBehavior::Intermittent) {
        GPR_ASSERT(options.fault->intermittentPeriod > 0 &&
                       options.fault->intermittentActive > 0 &&
                       options.fault->intermittentActive <=
                           options.fault->intermittentPeriod,
                   "bad intermittent duty cycle");
    }

    RunResult result;
    RunContext ctx;
    ctx.config = &config_;
    ctx.program = &prog;
    ctx.launch = &launch;
    MemoryImage* const img =
        options.imageInOut ? options.imageInOut : &image;
    ctx.memory = img;
    ctx.observer = options.observer;
    ctx.stats = &result.stats;
    ctx.l2 = l2_ ? &*l2_ : nullptr;

    ctx.warpsPerBlock = ceilDiv(launch.threadsPerBlock(),
                                config_.warpWidth);
    ctx.vrfWordsPerBlock =
        ctx.warpsPerBlock * config_.warpWidth * prog.numVRegs();
    ctx.srfWordsPerBlock = ctx.warpsPerBlock * prog.numSRegs();
    ctx.ldsWordsPerBlock = ceilDiv(prog.smemBytes(), 4u);

    const Cycle max_cycles =
        options.maxCycles ? options.maxCycles : kDefaultMaxCycles;
    bool fault_pending = options.fault.has_value();

    // Occupancy integrators (word-cycles / warp-slot-cycles).
    double vrf_occ_acc = 0.0;
    double srf_occ_acc = 0.0;
    double lds_occ_acc = 0.0;
    double warp_occ_acc = 0.0;

    Cycle now = 0;
    std::uint64_t last_completed = 0;
    num_blocks_ = launch.numBlocks();
    persistent_sm_ = -1; // reset()/restore() clear the per-SM binding
    persistent_l2_.reset();

    if (options.resume) {
        // Continue a previous run: the checkpoint holds the state at the
        // *start* of cycle cp.now, so the loop picks up exactly where the
        // recorded run left off.
        const auto t0 = PhaseClock::now();
        const GpuCheckpoint& cp = *options.resume;
        GPR_ASSERT(!options.fault || options.fault->cycle >= cp.now,
                   "fault predates the resume checkpoint");
        restore(cp);
        ctx.memPipe = cp.memPipe;
        result.stats = cp.stats;
        image = cp.memory;
        vrf_occ_acc = cp.vrfOccAcc;
        srf_occ_acc = cp.srfOccAcc;
        lds_occ_acc = cp.ldsOccAcc;
        warp_occ_acc = cp.warpOccAcc;
        last_completed = cp.lastCompleted;
        now = cp.now;
        result.restoreSeconds += secondsSince(t0);
    } else if (options.resumeDelta) {
        // Anchored delta resume: revert only the pages the previous run
        // dirtied, then lay the delta's pages and control state on top —
        // bit-identical to a full restore of the encoded checkpoint.
        const auto t0 = PhaseClock::now();
        const GpuCheckpoint& base = *options.resumeBaseline;
        const GpuCheckpointDelta& d = *options.resumeDelta;
        GPR_ASSERT(!options.fault || options.fault->cycle >= d.now,
                   "fault predates the resume checkpoint");
        restoreDelta(base, d);
        img->revertTo(base.memory);
        img->applyDelta(d.memory);
        ctx.memPipe = d.memPipe;
        result.stats = d.stats;
        vrf_occ_acc = d.vrfOccAcc;
        srf_occ_acc = d.srfOccAcc;
        lds_occ_acc = d.ldsOccAcc;
        warp_occ_acc = d.warpOccAcc;
        last_completed = d.lastCompleted;
        now = d.now;
        result.restoreSeconds += secondsSince(t0);
    } else {
        for (auto& sm : sms_)
            sm->reset();
        if (l2_) {
            l2_.emplace(TargetStructure::L2Cache, /*sm=*/0,
                        config_.l2Lines(), config_.cacheLineWords());
            ctx.l2 = &*l2_;
        }
        anchor_ = nullptr;
        next_block_ = 0;
        dispatch_rr_ = 0;
        dispatchBlocks(ctx, now);

        if (options.recorder && options.recorder->delta) {
            // Capture the baseline every delta checkpoint encodes
            // against, plus a trivial delta for cycle 0 itself (the
            // placement's implicit first checkpoint).  From here on the
            // storages' dirty tracking measures divergence from it.
            CheckpointRecorder& rec = *options.recorder;
            rec.baseline = captureCheckpoint(ctx, result.stats, *img, now);
            for (auto& sm : sms_)
                sm->markStoragesClean();
            img->markCleanForRestore();
            if (l2_)
                l2_->markCleanForRestore();
            GpuCheckpointDelta d0;
            d0.nextBlock = next_block_;
            d0.dispatchRr = dispatch_rr_;
            d0.memPipe = ctx.memPipe;
            d0.stats = result.stats;
            d0.smStorage.resize(sms_.size());
            d0.smControl.reserve(sms_.size());
            for (std::size_t i = 0; i < sms_.size(); ++i) {
                // Against the just-captured baseline the page set is
                // empty, but the delta still carries the free list and
                // allocation counter applyDelta adopts wholesale.
                sms_[i]->captureStorageDelta(rec.baseline.sms[i],
                                             d0.smStorage[i]);
                d0.smControl.push_back(sms_[i]->captureControl());
            }
            if (l2_)
                l2_->captureDelta(*rec.baseline.l2, d0.l2);
            rec.deltas.push_back(std::move(d0));
        }
    }

    // State-hash boundaries at cycles k*hashInterval (k >= 1).  The loop
    // is clamped to land exactly on each boundary so recording and
    // comparing runs fingerprint identical cycles; stepping through an
    // extra idle cycle never changes the simulation.
    const Cycle hash_interval = options.hashInterval;
    Cycle next_boundary =
        hash_interval ? (now / hash_interval + 1) * hash_interval : 0;
    std::size_t rec_idx = 0;
    auto finalize = [&](TrapKind trap) {
        result.trap = trap;
        result.stats.cycles = now + 1;
        const double cycles = static_cast<double>(result.stats.cycles);
        const double chip_vrf =
            static_cast<double>(config_.regFileWordsPerSm) * config_.numSms;
        const double chip_srf =
            static_cast<double>(config_.scalarRegWordsPerSm) *
            config_.numSms;
        const double chip_lds =
            static_cast<double>(config_.smemWordsPerSm()) * config_.numSms;
        const double chip_warps =
            static_cast<double>(config_.maxWarpsPerSm) * config_.numSms;
        result.stats.avgRegFileOccupancy =
            chip_vrf > 0 ? vrf_occ_acc / (cycles * chip_vrf) : 0.0;
        result.stats.avgScalarRegOccupancy =
            chip_srf > 0 ? srf_occ_acc / (cycles * chip_srf) : 0.0;
        result.stats.avgSmemOccupancy =
            chip_lds > 0 ? lds_occ_acc / (cycles * chip_lds) : 0.0;
        result.stats.avgWarpOccupancy =
            chip_warps > 0 ? warp_occ_acc / (cycles * chip_warps) : 0.0;
        if (ctx.observer)
            ctx.observer->onKernelEnd(now);
        if (!options.imageInOut)
            result.memory = std::move(image);
        return result;
    };

    while (result.stats.blocksCompleted < num_blocks_) {
        if (fault_pending && now >= options.fault->cycle) {
            applyFault(*options.fault);
            fault_pending = false;
        }

        // Assert the persistent fault (if one is bound) for this cycle.
        // The tick is idempotent, so landing on extra idle cycles — as
        // a checkpoint-resumed run may, relative to from-scratch —
        // cannot diverge the trajectory.
        if (persistent_sm_ >= 0) {
            const FaultSpec& f = *options.fault;
            bool active = true;
            if (f.behavior == FaultBehavior::Intermittent) {
                active = (now - f.cycle) % f.intermittentPeriod <
                         f.intermittentActive;
            }
            sms_[static_cast<std::size_t>(persistent_sm_)]
                ->persistentFaultTick(active);
        }
        if (persistent_l2_) {
            const FaultSpec& f = *options.fault;
            bool active = true;
            if (f.behavior == FaultBehavior::Intermittent) {
                active = (now - f.cycle) % f.intermittentPeriod <
                         f.intermittentActive;
            }
            if (active) {
                for (unsigned k = 0; (persistent_l2_->mask >> k) != 0; ++k)
                    if ((persistent_l2_->mask >> k) & 1)
                        l2_->forceBit(persistent_l2_->firstBit + k,
                                      persistent_l2_->value);
            }
        }

        if (options.recorder &&
            rec_idx < options.recorder->checkpointCycles.size() &&
            now >= options.recorder->checkpointCycles[rec_idx]) {
            if (options.recorder->delta) {
                GpuCheckpointDelta d;
                d.now = now;
                d.nextBlock = next_block_;
                d.dispatchRr = dispatch_rr_;
                d.memPipe = ctx.memPipe;
                d.stats = result.stats;
                d.smStorage.resize(sms_.size());
                d.smControl.reserve(sms_.size());
                for (std::size_t i = 0; i < sms_.size(); ++i) {
                    sms_[i]->captureStorageDelta(
                        options.recorder->baseline.sms[i], d.smStorage[i]);
                    d.smControl.push_back(sms_[i]->captureControl());
                }
                img->captureDelta(options.recorder->baseline.memory,
                                  d.memory);
                if (l2_)
                    l2_->captureDelta(*options.recorder->baseline.l2,
                                      d.l2);
                d.vrfOccAcc = vrf_occ_acc;
                d.srfOccAcc = srf_occ_acc;
                d.ldsOccAcc = lds_occ_acc;
                d.warpOccAcc = warp_occ_acc;
                d.lastCompleted = last_completed;
                options.recorder->deltas.push_back(std::move(d));
            } else {
                GpuCheckpoint cp =
                    captureCheckpoint(ctx, result.stats, *img, now);
                cp.vrfOccAcc = vrf_occ_acc;
                cp.srfOccAcc = srf_occ_acc;
                cp.ldsOccAcc = lds_occ_acc;
                cp.warpOccAcc = warp_occ_acc;
                cp.lastCompleted = last_completed;
                options.recorder->checkpoints.push_back(std::move(cp));
            }
            ++rec_idx;
        }

        if (hash_interval && now == next_boundary) {
            if (options.recorder) {
                const auto t0 = PhaseClock::now();
                options.recorder->hashes.push_back(runStateHash(
                    ctx, *img, result.stats.blocksCompleted));
                result.hashSeconds += secondsSince(t0);
            } else if (options.goldenHashes && !fault_pending &&
                       now >= options.convergeMinCycle) {
                // The flip (if any) landed earlier this iteration, so the
                // digest reflects post-fault state; matching the golden
                // fingerprint here means the remaining trajectory is the
                // golden one — classify without simulating it.  For a
                // persistent fault the comparison additionally waits for
                // convergeMinCycle, past which value residency makes the
                // (canonical) match imply golden continuation.
                const std::size_t idx =
                    static_cast<std::size_t>(now / hash_interval) - 1;
                const auto t0 = PhaseClock::now();
                const bool converged =
                    idx < options.goldenHashes->size() &&
                    (*options.goldenHashes)[idx] ==
                        runStateHash(ctx, *img,
                                     result.stats.blocksCompleted);
                result.hashSeconds += secondsSince(t0);
                if (converged) {
                    result.convergedToGolden = true;
                    return finalize(TrapKind::None);
                }
            }
            next_boundary += hash_interval;
        }

        bool issued = false;
        Cycle next_event = std::numeric_limits<Cycle>::max();
        for (auto& sm : sms_) {
            const auto trap = sm->stepCycle(ctx, now, issued, next_event);
            if (trap)
                return finalize(*trap);
        }

        // Refill SMs after block completions.
        if (result.stats.blocksCompleted != last_completed) {
            last_completed = result.stats.blocksCompleted;
            if (next_block_ < num_blocks_)
                dispatchBlocks(ctx, now);
        }

        if (result.stats.blocksCompleted >= num_blocks_) {
            // Account the final cycle before finishing.
            for (const auto& sm : sms_) {
                vrf_occ_acc += sm->allocatedVrfWords();
                srf_occ_acc += sm->allocatedSrfWords();
                lds_occ_acc += sm->allocatedLdsWords();
                warp_occ_acc += sm->residentWarps();
            }
            break;
        }

        Cycle next;
        if (issued) {
            next = now + 1;
        } else {
            if (next_event == std::numeric_limits<Cycle>::max()) {
                // Nothing can ever issue again: warps all parked at
                // barriers that cannot be satisfied.
                return finalize(TrapKind::BarrierDeadlock);
            }
            next = std::max(now + 1, next_event);
        }
        if (fault_pending && options.fault->cycle > now) {
            next = std::min(next, std::max(now + 1, options.fault->cycle));
        }
        // Land exactly on hash boundaries and requested checkpoint
        // cycles (both are > now here by construction).
        if (hash_interval)
            next = std::min(next, next_boundary);
        if (options.recorder &&
            rec_idx < options.recorder->checkpointCycles.size()) {
            next = std::min(
                next, std::max(now + 1,
                               options.recorder->checkpointCycles[rec_idx]));
        }

        // Integrate occupancy over [now, next).
        const double dt = static_cast<double>(next - now);
        std::uint64_t vrf_alloc = 0, srf_alloc = 0, lds_alloc = 0,
                      warps_resident = 0;
        for (const auto& sm : sms_) {
            vrf_alloc += sm->allocatedVrfWords();
            srf_alloc += sm->allocatedSrfWords();
            lds_alloc += sm->allocatedLdsWords();
            warps_resident += sm->residentWarps();
        }
        vrf_occ_acc += static_cast<double>(vrf_alloc) * dt;
        srf_occ_acc += static_cast<double>(srf_alloc) * dt;
        lds_occ_acc += static_cast<double>(lds_alloc) * dt;
        warp_occ_acc += static_cast<double>(warps_resident) * dt;

        now = next;
        if (now > max_cycles)
            return finalize(TrapKind::Watchdog);
    }

    // Drain dirty cache lines into the image so RunResult::memory
    // reflects every store the kernel retired — including ones a fault
    // redirected to a corrupted address (the stale-data / wrong-address
    // SDC channel).  A corrupt tag can also trap here, which classifies
    // as a DUE exactly like an in-flight wrong-address access.
    for (auto& sm : sms_) {
        if (auto trap = sm->flushL1d(ctx, now))
            return finalize(*trap);
    }
    if (l2_) {
        if (auto trap = l2_->flushDirty(nullptr, *img, ctx.observer, now))
            return finalize(*trap);
    }

    return finalize(TrapKind::None);
}

} // namespace gpr
