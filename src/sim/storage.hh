/**
 * @file
 * Bit-accurate word storage with block-granular allocation — the model
 * behind the vector/scalar register files and the LDS of one SM.
 */

#ifndef GPR_SIM_STORAGE_HH
#define GPR_SIM_STORAGE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitutils.hh"
#include "common/hash.hh"
#include "common/types.hh"
#include "sim/state_page.hh"

namespace gpr {

/**
 * A fixed-size array of 32-bit words plus a first-fit range allocator.
 * Values of unallocated words persist (like real SRAM), which matters for
 * fault injection: a flip landing in free space stays until the space is
 * reallocated — and allocation is modelled as making contents undefined,
 * so such flips are architecturally masked.
 */
class WordStorage
{
  private:
    struct Range
    {
        std::uint32_t base;
        std::uint32_t count;
    };

  public:
    explicit WordStorage(std::uint32_t num_words);

    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(words_.size());
    }

    Word read(std::uint32_t index) const;
    void write(std::uint32_t index, Word value);

    /** Flip one bit; @p bit_index addresses the structure bit-linearly. */
    void flipBitAt(BitIndex bit_index);

    /**
     * Bind a stuck-bit overlay to word @p word: while enabled, reads of
     * that word see the bits of @p mask forced to the corresponding bits
     * of @p value.  The overlay is read-side only — writes store the raw
     * value underneath — so an intermittent fault that deactivates
     * (setStuckEnabled(false)) re-exposes whatever the program last
     * wrote, which is exactly the marginal-cell retention semantics.
     * One overlay per storage; binding starts disabled.
     */
    void setStuckBits(std::uint32_t word, Word mask, Word value);

    /** Toggle the bound overlay (persistent faults tick this per cycle). */
    void setStuckEnabled(bool enabled);

    /**
     * Hash the *observable* value of the stuck word instead of its raw
     * value: hashInto() substitutes the stuck page's cached digest with
     * the digest of the same page with the overlay applied to the stuck
     * word.  Sound only for always-active overlays (stuck-at faults),
     * where the overlaid value is the one every future read returns —
     * an intermittent fault re-exposes the raw word in inactive phases,
     * so its hash must stay raw.  Cleared by clearStuck()/revertTo().
     */
    void setHashOverlayCanonical(bool on);

    /** Drop the overlay entirely. */
    void clearStuck();

    /**
     * First-fit allocation of @p count contiguous words.
     * Returns the base index, or nullopt if no hole fits.
     */
    std::optional<std::uint32_t> allocate(std::uint32_t count);

    /** Release a range previously returned by allocate(). */
    void release(std::uint32_t base, std::uint32_t count);

    /** Words currently allocated (for occupancy accounting). */
    std::uint32_t allocatedWords() const { return allocated_words_; }

    /**
     * Fold the full storage state into @p h: every word's contents
     * (allocated *and* free — free words persist and may be observed by
     * a later block that reads before writing, so they are part of the
     * architecturally visible state) plus the free list (fragmentation
     * steers future allocations, hence future behaviour).  The word
     * contents enter as a sum of cached per-page digests, so the cost is
     * proportional to the pages written since the previous hash, not to
     * the storage size.  The stuck-bit overlay is by default NOT hashed
     * (the raw word is the architecturally retained state, which is what
     * an intermittent fault re-exposes when inactive); with
     * setHashOverlayCanonical() armed — always-active stuck-at faults —
     * the stuck word contributes its overlaid (observable) value
     * instead, which is what lets a stuck-at run compare against the
     * golden trajectory's raw hashes (see the persistent fast path in
     * reliability/fault_injector.hh).
     */
    void hashInto(StateHash& h) const;

    // --- Delta/CoW checkpoint support ------------------------------------
    // The page-granular half of the checkpoint engine v2: a baseline-
    // anchored storage reverts to its baseline by copying only the pages
    // written since markCleanForRestore(), and a delta checkpoint stores
    // only those pages.  The free list, allocation counter and stuck
    // overlay are tiny and handled unconditionally.

    /** Declare the current state the revert/capture baseline. */
    void
    markCleanForRestore()
    {
        pages_.markCleanForRestore();
    }

    /**
     * Revert to @p baseline (same size): copy back every page written
     * since markCleanForRestore(), adopt the baseline's free list and
     * allocation counter, and drop any stuck-bit overlay.  Equivalent to
     * a full copy assignment from @p baseline, provided this storage was
     * content-identical to it at the last markCleanForRestore().
     */
    void revertTo(const WordStorage& baseline);

    /**
     * One storage's share of a delta checkpoint: the pages differing
     * from the baseline, plus the full free list and allocation counter
     * (the allocator state is a handful of ranges — never worth paging).
     */
    struct Delta
    {
        StorageDelta pages;
        std::vector<Range> freeList;
        std::uint32_t allocatedWords = 0;

        std::size_t
        bytes() const
        {
            return pages.bytes() + freeList.size() * sizeof(Range);
        }
    };

    /** Encode the pages differing from @p baseline into @p out (the
     *  dirty set is consulted, then filtered by content), plus the full
     *  free list and allocation counter (small, never delta'd). */
    void captureDelta(const WordStorage& baseline, Delta& out) const;

    /** Overwrite the delta's pages and adopt its free list (the storage
     *  must currently match the baseline the delta was recorded
     *  against). */
    void applyDelta(const Delta& delta);

    /** Resident footprint of the full storage (pack accounting). */
    std::size_t
    bytes() const
    {
        return words_.size() * sizeof(Word) +
               free_list_.size() * sizeof(Range);
    }

  private:
    std::vector<Word> words_;
    std::vector<Range> free_list_; ///< sorted by base, coalesced
    std::uint32_t allocated_words_ = 0;
    PageTracker pages_;

    // Stuck-bit overlay (persistent-fault hook; see setStuckBits).
    std::uint32_t stuck_word_ = 0;
    Word stuck_mask_ = 0;
    Word stuck_value_ = 0;
    bool stuck_enabled_ = false;
    bool hash_overlay_canonical_ = false;
};

} // namespace gpr

#endif // GPR_SIM_STORAGE_HH
