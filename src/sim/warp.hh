/**
 * @file
 * Per-warp (wavefront) execution state: PC, SIMT divergence stack,
 * predicate file, scoreboard.
 */

#ifndef GPR_SIM_WARP_HH
#define GPR_SIM_WARP_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/hash.hh"
#include "common/types.hh"
#include "isa/instruction.hh"

namespace gpr {

/** Lane-set within a warp; bit i = lane i (warpWidth <= 64). */
using LaneMask = std::uint64_t;

constexpr LaneMask
fullMask(unsigned lanes)
{
    return lanes >= 64 ? ~LaneMask{0} : ((LaneMask{1} << lanes) - 1);
}

/**
 * SIMT reconvergence stack entry.  SSY pushes a SyncToken carrying the
 * reconvergence PC and the pre-divergence mask; a divergent branch pushes
 * a PendingPath for the taken lanes.  SYNC pops: a PendingPath resumes
 * the deferred lanes, a SyncToken reconverges.
 */
struct ReconvEntry
{
    enum class Kind : std::uint8_t { SyncToken, PendingPath };
    Kind kind = Kind::SyncToken;
    std::uint32_t pc = 0;   ///< reconvergence PC / pending-path entry PC
    LaneMask mask = 0;
};

/** Scheduling state of a warp. */
enum class WarpStatus : std::uint8_t
{
    Ready,
    AtBarrier,
    Finished,
};

struct WarpContext
{
    // Identity.
    std::uint32_t blockSlot = 0;   ///< resident-block slot within the SM
    std::uint32_t warpInBlock = 0;
    std::uint32_t laneCount = 0;   ///< live lanes (may be < warpWidth)

    // Control flow.
    std::uint32_t pc = 0;
    LaneMask activeMask = 0;
    LaneMask exitedMask = 0;
    std::vector<ReconvEntry> stack;
    WarpStatus status = WarpStatus::Ready;

    // Predicate file: one lane-mask per predicate register.
    std::array<LaneMask, kNumPredRegs> preds{};

    // Timing: earliest cycle at which the next instruction may issue.
    Cycle readyCycle = 0;
    // Scoreboard: per-register earliest-use cycles.
    std::vector<Cycle> vregReady;
    std::vector<Cycle> sregReady;
    std::array<Cycle, kNumPredRegs> predReady{};

    /** Lanes currently executing (active minus exited). */
    LaneMask
    currentLanes() const
    {
        return activeMask & ~exitedMask;
    }

    bool
    finished() const
    {
        return status == WarpStatus::Finished;
    }

    /**
     * Fold everything that steers this warp's future execution into
     * @p h: control flow (PC, masks, reconvergence stack, predicates)
     * *and* timing (readyCycle, scoreboards) — two states that differ
     * only in a scoreboard entry still schedule differently, so timing
     * is architecturally visible to the trajectory.
     */
    void
    hashInto(StateHash& h) const
    {
        h.mix(blockSlot);
        h.mix(warpInBlock);
        h.mix(laneCount);
        h.mix(pc);
        h.mix(activeMask);
        h.mix(exitedMask);
        h.mix(stack.size());
        for (const ReconvEntry& e : stack) {
            h.mix(static_cast<std::uint64_t>(e.kind));
            h.mix(e.pc);
            h.mix(e.mask);
        }
        h.mix(static_cast<std::uint64_t>(status));
        for (LaneMask p : preds)
            h.mix(p);
        h.mix(readyCycle);
        for (Cycle c : vregReady)
            h.mix(c);
        for (Cycle c : sregReady)
            h.mix(c);
        for (Cycle c : predReady)
            h.mix(c);
    }
};

} // namespace gpr

#endif // GPR_SIM_WARP_HH
