#include "sim/structure_registry.hh"

#include <algorithm>
#include <string>

#include "common/logging.hh"
#include "sim/cache.hh"

namespace gpr {
namespace {

std::uint64_t
vrfBits(const GpuConfig& c)
{
    return std::uint64_t{c.regFileWordsPerSm} * 32;
}

std::uint64_t
ldsBits(const GpuConfig& c)
{
    return std::uint64_t{c.smemWordsPerSm()} * 32;
}

std::uint64_t
srfBits(const GpuConfig& c)
{
    return std::uint64_t{c.scalarRegWordsPerSm} * 32;
}

std::uint64_t
predBits(const GpuConfig& c)
{
    return std::uint64_t{c.maxWarpsPerSm} * predBitsPerWarp(c);
}

std::uint64_t
simtBits(const GpuConfig& c)
{
    return std::uint64_t{c.maxWarpsPerSm} * simtBitsPerWarp(c);
}

std::uint64_t
vrfUnits(const GpuConfig& c)
{
    return c.regFileWordsPerSm;
}

std::uint64_t
ldsUnits(const GpuConfig& c)
{
    return c.smemWordsPerSm();
}

std::uint64_t
srfUnits(const GpuConfig& c)
{
    return c.scalarRegWordsPerSm;
}

std::uint64_t
predUnits(const GpuConfig& c)
{
    return std::uint64_t{c.maxWarpsPerSm} * kNumPredRegs;
}

std::uint64_t
simtUnits(const GpuConfig& c)
{
    return std::uint64_t{c.maxWarpsPerSm} * kSimtUnitsPerWarp;
}

std::uint32_t
simtUnitBits(const GpuConfig& c, std::uint32_t unit)
{
    // Unit 0 of each warp is the PC + active/exited masks; units
    // 1..kSimtStackDepth are (kind, pc, mask) stack entries.
    return unit % kSimtUnitsPerWarp == 0
               ? 32 + 2 * c.warpWidth
               : static_cast<std::uint32_t>(simtEntryBits(c));
}

std::uint64_t
l1dBits(const GpuConfig& c)
{
    return c.l1dLinesPerSm() * cacheLineBits(c.cacheLineWords());
}

std::uint64_t
l1iBits(const GpuConfig& c)
{
    return c.l1iLinesPerSm() * cacheLineBits(c.cacheLineWords());
}

std::uint64_t
l2Bits(const GpuConfig& c)
{
    return c.l2Lines() * cacheLineBits(c.cacheLineWords());
}

std::uint64_t
l1dUnits(const GpuConfig& c)
{
    return c.l1dLinesPerSm() * cacheLineAceUnits(c.cacheLineWords());
}

std::uint64_t
l1iUnits(const GpuConfig& c)
{
    return c.l1iLinesPerSm() * cacheLineAceUnits(c.cacheLineWords());
}

std::uint64_t
l2Units(const GpuConfig& c)
{
    return c.l2Lines() * cacheLineAceUnits(c.cacheLineWords());
}

std::uint32_t
cacheUnitBits(const GpuConfig& c, std::uint32_t unit)
{
    // Unit 0 of each line is the 34-bit metadata group (tag + valid +
    // dirty); the rest are 32-bit data words.
    return unit % cacheLineAceUnits(c.cacheLineWords()) == 0 ? 34 : 32;
}

double
vrfOcc(const SimStats& s)
{
    return s.avgRegFileOccupancy;
}

double
ldsOcc(const SimStats& s)
{
    return s.avgSmemOccupancy;
}

double
srfOcc(const SimStats& s)
{
    return s.avgScalarRegOccupancy;
}

double
warpOcc(const SimStats& s)
{
    return s.avgWarpOccupancy;
}

double
fullOcc(const SimStats&)
{
    // Cache arrays have no alloc/free lifecycle: every line is hardware
    // that a fault can land in for the whole run.
    return 1.0;
}

} // namespace

const std::array<StructureSpec, kNumTargetStructures>&
structureRegistry()
{
    static const std::array<StructureSpec, kNumTargetStructures> registry = {{
        {TargetStructure::VectorRegisterFile, StructureKind::WordStorage,
         "register-file", "rf", "register_file",
         /*exactDeadWindows=*/true, PersistenceHook::StorageReadOverlay,
         StructureScope::PerSm,
         vrfBits, vrfUnits, /*aceUnitBits=*/nullptr, vrfOcc},
        {TargetStructure::SharedMemory, StructureKind::WordStorage,
         "local-memory", "lds", "local_memory",
         /*exactDeadWindows=*/true, PersistenceHook::StorageReadOverlay,
         StructureScope::PerSm,
         ldsBits, ldsUnits, /*aceUnitBits=*/nullptr, ldsOcc},
        {TargetStructure::ScalarRegisterFile, StructureKind::WordStorage,
         "scalar-register-file", "srf", "scalar_register_file",
         /*exactDeadWindows=*/true, PersistenceHook::StorageReadOverlay,
         StructureScope::PerSm,
         srfBits, srfUnits, /*aceUnitBits=*/nullptr, srfOcc},
        // Predicate units are uniform (one warpWidth-bit lane mask per
        // register), so no per-unit bit weighting is needed: unit-cycle
        // over unit accounting already equals the bit-weighted ratio.
        {TargetStructure::PredicateFile, StructureKind::ControlBits,
         "predicate-file", "pred", "predicate_file",
         /*exactDeadWindows=*/false, PersistenceHook::CycleReassert,
         StructureScope::PerSm,
         predBits, predUnits, /*aceUnitBits=*/nullptr, warpOcc},
        {TargetStructure::SimtStack, StructureKind::ControlBits,
         "simt-stack", "simt", "simt_stack",
         /*exactDeadWindows=*/false, PersistenceHook::CycleReassert,
         StructureScope::PerSm,
         simtBits, simtUnits, simtUnitBits, warpOcc},
        // Cache metadata becomes architecturally visible through address
        // comparison, not reads, so no exact dead windows; persistence
        // re-forces the faulty bits each stepped cycle (CycleReassert).
        {TargetStructure::L1DataCache, StructureKind::CacheArray,
         "l1-data-cache", "l1d", "l1_data_cache",
         /*exactDeadWindows=*/false, PersistenceHook::CycleReassert,
         StructureScope::PerSm,
         l1dBits, l1dUnits, cacheUnitBits, fullOcc},
        {TargetStructure::L1InstructionCache, StructureKind::CacheArray,
         "l1-instruction-cache", "l1i", "l1_instruction_cache",
         /*exactDeadWindows=*/false, PersistenceHook::CycleReassert,
         StructureScope::PerSm,
         l1iBits, l1iUnits, cacheUnitBits, fullOcc},
        {TargetStructure::L2Cache, StructureKind::CacheArray,
         "l2-cache", "l2", "l2_cache",
         /*exactDeadWindows=*/false, PersistenceHook::CycleReassert,
         StructureScope::Chip,
         l2Bits, l2Units, cacheUnitBits, fullOcc},
    }};
    return registry;
}

const StructureSpec&
structureSpec(TargetStructure id)
{
    const auto& registry = structureRegistry();
    const auto index = static_cast<std::size_t>(id);
    if (index >= registry.size()) {
        fatal("unregistered target structure id ",
              static_cast<unsigned>(id), " (registry holds ",
              registry.size(), " structures)");
    }
    const StructureSpec& spec = registry[index];
    GPR_ASSERT(spec.id == id, "structure registry is not enum-ordered");
    return spec;
}

std::string_view
targetStructureName(TargetStructure s)
{
    return structureSpec(s).name;
}

bool
tryTargetStructureFromName(std::string_view name, TargetStructure& out)
{
    for (const StructureSpec& spec : structureRegistry()) {
        if (name == spec.name || name == spec.shortName) {
            out = spec.id;
            return true;
        }
    }
    return false;
}

TargetStructure
targetStructureFromName(std::string_view name)
{
    TargetStructure out;
    if (tryTargetStructureFromName(name, out))
        return out;

    std::string known;
    for (const StructureSpec& spec : structureRegistry()) {
        if (!known.empty())
            known += ", ";
        known += std::string(spec.name) + " (" +
                 std::string(spec.shortName) + ")";
    }
    fatal("unknown target structure '", name, "'; registered: ", known);
}

std::uint64_t
structureBitsTotal(const GpuConfig& config, TargetStructure id)
{
    const StructureSpec& spec = structureSpec(id);
    const std::uint64_t instances =
        spec.scope == StructureScope::PerSm ? config.numSms : 1;
    return spec.bitsPerSm(config) * instances;
}

bool
structureApplies(const GpuConfig& config, TargetStructure id,
                 bool uses_local_memory)
{
    if (structureBitsTotal(config, id) == 0)
        return false;
    if (id == TargetStructure::SharedMemory && !uses_local_memory)
        return false;
    return true;
}

std::vector<TargetStructure>
selectStructures(const GpuConfig& config, bool uses_local_memory,
                 const std::vector<TargetStructure>& requested)
{
    std::vector<TargetStructure> out;
    for (const StructureSpec& spec : structureRegistry()) {
        if (!structureApplies(config, spec.id, uses_local_memory))
            continue;
        if (!requested.empty() &&
            std::find(requested.begin(), requested.end(), spec.id) ==
                requested.end()) {
            continue;
        }
        out.push_back(spec.id);
    }
    return out;
}

std::uint64_t
structureAceUnitsTotal(const GpuConfig& config, TargetStructure id)
{
    const StructureSpec& spec = structureSpec(id);
    const std::uint64_t instances =
        spec.scope == StructureScope::PerSm ? config.numSms : 1;
    return spec.aceUnitsPerSm(config) * instances;
}

} // namespace gpr
