/**
 * @file
 * Shared emission idioms for workload kernels.
 */

#ifndef GPR_WORKLOADS_KERNEL_UTIL_HH
#define GPR_WORKLOADS_KERNEL_UTIL_HH

#include "isa/builder.hh"

namespace gpr {

/**
 * Emit the canonical global-thread-id computation
 * gid = ctaid.x * ntid.x + tid.x into fresh registers;
 * returns (gid, tid) for further addressing.
 */
struct Tid1D
{
    Operand gid;
    Operand tid;
};

inline Tid1D
emitGlobalTid1D(KernelBuilder& kb)
{
    const Operand tid = kb.vreg();
    const Operand bid = kb.uniformReg();
    const Operand bdim = kb.uniformReg();
    kb.s2r(tid, SpecialReg::TidX);
    kb.s2r(bid, SpecialReg::CtaIdX);
    kb.s2r(bdim, SpecialReg::NTidX);
    const Operand gid = kb.vreg();
    kb.imad(gid, bid, bdim, tid);
    return {gid, tid};
}

/**
 * RAII-style emitter for the SASS divergent-if idiom:
 *
 *     SSY  endif
 *     @!P  BRA sync
 *          ...body (lanes where P holds)...
 *     sync: SYNC
 *     endif:
 *
 * Construct with the guard predicate, emit the body, then close().
 */
class DivergentIf
{
  public:
    DivergentIf(KernelBuilder& kb, unsigned pred)
        : kb_(kb),
          sync_(kb.newLabel("ifsync")),
          end_(kb.newLabel("endif"))
    {
        kb_.ssy(end_);
        kb_.bra(sync_, ifNotP(pred));
    }

    /** Terminate the body; all lanes reconverge after this point. */
    void
    close()
    {
        kb_.bind(sync_);
        kb_.sync();
        kb_.bind(end_);
    }

  private:
    KernelBuilder& kb_;
    Label sync_;
    Label end_;
};

} // namespace gpr

#endif // GPR_WORKLOADS_KERNEL_UTIL_HH
