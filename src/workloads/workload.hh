/**
 * @file
 * Workload abstraction: one of the paper's ten benchmarks, buildable for
 * either ISA dialect.
 *
 * A build yields a self-contained WorkloadInstance: the register-allocated
 * kernel, launch geometry, an input-initialised memory image, and golden
 * outputs computed on the host (with the output-comparison rule the
 * original SDK/Rodinia sample uses: bitwise for integer kernels, relative
 * tolerance for float kernels).  The comparison rule is what defines
 * "error at the system output" for AVF purposes.
 */

#ifndef GPR_WORKLOADS_WORKLOAD_HH
#define GPR_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "isa/program.hh"
#include "sim/launch.hh"
#include "sim/memory_image.hh"

namespace gpr {

/** Tunables shared by all workloads. */
struct WorkloadParams
{
    /** Seed for deterministic input generation. */
    std::uint64_t seed = 42;
};

/** How a golden buffer is compared against simulated output. */
enum class CompareKind : std::uint8_t
{
    ExactWords,   ///< bit-exact (integer kernels)
    FloatRelTol,  ///< |a-g| <= tol * max(1, |g|), NaN mismatch = error
};

/** One output buffer with its golden contents. */
struct ExpectedOutput
{
    std::string label;
    Buffer buffer;
    std::vector<Word> golden;
    CompareKind compare = CompareKind::ExactWords;
    float tolerance = 0.0f;
};

/** Everything needed to run and verify one benchmark build. */
struct WorkloadInstance
{
    std::string workloadName;
    Program program;
    LaunchConfig launch;
    MemoryImage image;
    std::vector<ExpectedOutput> outputs;
};

/**
 * Verify simulated @p final_memory against the instance's goldens.
 * On mismatch returns false and (optionally) a diagnostic in @p why.
 */
bool verifyOutputs(const WorkloadInstance& instance,
                   const MemoryImage& final_memory,
                   std::string* why = nullptr);

class Workload
{
  public:
    virtual ~Workload() = default;

    /** Benchmark name as it appears in the paper's figures. */
    virtual std::string_view name() const = 0;

    /** Whether the kernel uses local/shared memory (Fig. 2 membership). */
    virtual bool usesLocalMemory() const = 0;

    /** Build the kernel + inputs + goldens for @p dialect. */
    virtual WorkloadInstance build(IsaDialect dialect,
                                   const WorkloadParams& params) const = 0;
};

} // namespace gpr

#endif // GPR_WORKLOADS_WORKLOAD_HH
