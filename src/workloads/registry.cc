#include "workloads/workloads.hh"

#include "common/logging.hh"

namespace gpr {

const std::vector<std::string_view>&
allWorkloadNames()
{
    static const std::vector<std::string_view> names = {
        "backprop", "dwtHaar1D", "gaussian",  "histogram", "kmeans",
        "matrixMul", "reduction", "scan",     "transpose", "vectoradd",
    };
    return names;
}

const std::vector<std::string_view>&
localMemoryWorkloadNames()
{
    static const std::vector<std::string_view> names = {
        "backprop",  "dwtHaar1D", "histogram", "matrixMul",
        "reduction", "scan",      "transpose",
    };
    return names;
}

std::unique_ptr<Workload>
makeWorkload(std::string_view name)
{
    if (name == "backprop")
        return makeBackprop();
    if (name == "dwtHaar1D")
        return makeDwtHaar1D();
    if (name == "gaussian")
        return makeGaussian();
    if (name == "histogram")
        return makeHistogram();
    if (name == "kmeans")
        return makeKmeans();
    if (name == "matrixMul")
        return makeMatrixMul();
    if (name == "reduction")
        return makeReduction();
    if (name == "scan")
        return makeScan();
    if (name == "transpose")
        return makeTranspose();
    if (name == "vectoradd")
        return makeVectorAdd();
    fatal("unknown workload '", std::string(name), "'");
}

} // namespace gpr
