#include "workloads/workload.hh"

#include <cmath>

#include "common/bitutils.hh"
#include "common/string_utils.hh"

namespace gpr {

bool
verifyOutputs(const WorkloadInstance& instance,
              const MemoryImage& final_memory, std::string* why)
{
    for (const auto& out : instance.outputs) {
        GPR_ASSERT(out.golden.size() == out.buffer.words,
                   "golden size mismatch for '", out.label, "'");
        for (std::uint32_t i = 0; i < out.buffer.words; ++i) {
            const Word actual =
                final_memory.readWord(out.buffer.byteAddrOfWord(i));
            const Word golden = out.golden[i];

            bool ok;
            if (out.compare == CompareKind::ExactWords) {
                ok = actual == golden;
            } else {
                const float a = wordToFloat(actual);
                const float g = wordToFloat(golden);
                if (std::isnan(a) || std::isnan(g) || std::isinf(a)) {
                    ok = false;
                } else {
                    const float mag = std::max(1.0f, std::fabs(g));
                    ok = std::fabs(a - g) <= out.tolerance * mag;
                }
            }
            if (!ok) {
                if (why) {
                    *why = strprintf(
                        "%s: output '%s' word %u: got 0x%08x, expected "
                        "0x%08x",
                        instance.workloadName.c_str(), out.label.c_str(), i,
                        actual, golden);
                }
                return false;
            }
        }
    }
    return true;
}

} // namespace gpr
