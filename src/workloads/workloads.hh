/**
 * @file
 * Registry of the paper's ten benchmarks.
 *
 * Seven are common to the CUDA SDK and the AMD-APP SDK (vectoradd,
 * matrixMul, reduction, scan, histogram, transpose, dwtHaar1D) and three
 * come from Rodinia (backprop, gaussian, kmeans), exactly as in Section
 * III of the paper.  Names match the figure labels.
 */

#ifndef GPR_WORKLOADS_WORKLOADS_HH
#define GPR_WORKLOADS_WORKLOADS_HH

#include <memory>
#include <string_view>
#include <vector>

#include "workloads/workload.hh"

namespace gpr {

std::unique_ptr<Workload> makeBackprop();
std::unique_ptr<Workload> makeDwtHaar1D();
std::unique_ptr<Workload> makeGaussian();
std::unique_ptr<Workload> makeHistogram();
std::unique_ptr<Workload> makeKmeans();
std::unique_ptr<Workload> makeMatrixMul();
std::unique_ptr<Workload> makeReduction();
std::unique_ptr<Workload> makeScan();
std::unique_ptr<Workload> makeTranspose();
std::unique_ptr<Workload> makeVectorAdd();

/** All ten benchmark names in the paper's figure order. */
const std::vector<std::string_view>& allWorkloadNames();

/** The seven benchmarks that use local/shared memory (Fig. 2 set). */
const std::vector<std::string_view>& localMemoryWorkloadNames();

/** Factory by figure label; throws FatalError for unknown names. */
std::unique_ptr<Workload> makeWorkload(std::string_view name);

} // namespace gpr

#endif // GPR_WORKLOADS_WORKLOADS_HH
