/**
 * @file
 * kmeans — the Rodinia classification step: each thread takes one point
 * (4 features) and labels it with the index of the nearest of 8 centroids
 * (squared Euclidean distance, argmin with strict less-than, ties keep
 * the lower index).  Labels are verified bit-exactly; the simulator and
 * the host golden use the identical FMA evaluation order, so the argmin
 * is deterministic.
 */

#include "workloads/workloads.hh"

#include <limits>

#include <cmath>

#include "common/random.hh"
#include "isa/builder.hh"
#include "workloads/kernel_util.hh"

namespace gpr {
namespace {

constexpr std::uint32_t kPoints = 8192;
constexpr std::uint32_t kDim = 4;
constexpr std::uint32_t kClusters = 8;
constexpr std::uint32_t kBlock = 128;

class Kmeans : public Workload
{
  public:
    std::string_view name() const override { return "kmeans"; }
    bool usesLocalMemory() const override { return false; }

    WorkloadInstance
    build(IsaDialect dialect, const WorkloadParams& params) const override
    {
        WorkloadInstance inst;
        inst.workloadName = std::string(name());

        Rng rng(deriveSeed(params.seed, 0x4EA5));
        Buffer pts = inst.image.allocBuffer(kPoints * kDim);
        Buffer cents = inst.image.allocBuffer(kClusters * kDim);
        Buffer labels = inst.image.allocBuffer(kPoints);

        std::vector<float> pv(kPoints * kDim);
        std::vector<float> cv(kClusters * kDim);
        for (std::uint32_t c = 0; c < kClusters * kDim; ++c) {
            cv[c] = rng.uniformF(-4.0f, 4.0f);
            inst.image.setFloat(cents, c, cv[c]);
        }
        for (std::uint32_t i = 0; i < kPoints * kDim; ++i) {
            pv[i] = rng.uniformF(-5.0f, 5.0f);
            inst.image.setFloat(pts, i, pv[i]);
        }

        ExpectedOutput out;
        out.label = "labels";
        out.buffer = labels;
        out.compare = CompareKind::ExactWords;
        out.golden.resize(kPoints);
        for (std::uint32_t p = 0; p < kPoints; ++p) {
            float best_dist = std::numeric_limits<float>::infinity();
            Word best = 0;
            for (std::uint32_t c = 0; c < kClusters; ++c) {
                float dist = 0.0f;
                for (std::uint32_t d = 0; d < kDim; ++d) {
                    const float diff =
                        pv[p * kDim + d] - cv[c * kDim + d];
                    dist = std::fma(diff, diff, dist);
                }
                if (dist < best_dist) {
                    best_dist = dist;
                    best = c;
                }
            }
            out.golden[p] = best;
        }
        inst.outputs.push_back(std::move(out));

        inst.program = buildKernel(dialect);

        inst.launch.blockX = kBlock;
        inst.launch.gridX = kPoints / kBlock;
        inst.launch.addParamAddr(pts.byteAddr);
        inst.launch.addParamAddr(cents.byteAddr);
        inst.launch.addParamAddr(labels.byteAddr);
        return inst;
    }

  private:
    static Program
    buildKernel(IsaDialect dialect)
    {
        KernelBuilder kb("kmeans", dialect);
        const Tid1D t = emitGlobalTid1D(kb);

        const Operand ppts = kb.uniformReg();
        const Operand pcents = kb.uniformReg();
        const Operand plabels = kb.uniformReg();
        kb.ldparam(ppts, 0);
        kb.ldparam(pcents, 1);
        kb.ldparam(plabels, 2);

        // Load the point's 4 features.
        const Operand p_addr = kb.vreg();
        kb.shl(p_addr, t.gid, KernelBuilder::imm(4)); // * kDim * 4 bytes
        kb.iadd(p_addr, p_addr, ppts);
        std::array<Operand, kDim> x{};
        for (std::uint32_t d = 0; d < kDim; ++d) {
            x[d] = kb.vreg();
            kb.ldg(x[d], p_addr, static_cast<std::int32_t>(d * 4));
        }

        const Operand best = kb.vreg();
        const Operand best_dist = kb.vreg();
        kb.mov(best, KernelBuilder::imm(0));
        kb.mov(best_dist, KernelBuilder::imm(0x7f800000)); // +inf

        const Operand diff = kb.vreg();
        const Operand dist = kb.vreg();
        const Operand cvreg = kb.vreg();
        const unsigned p_lt = kb.preg();

        // Unrolled over clusters (the Rodinia kernel's inner loops are
        // compile-time constant and get unrolled the same way).
        for (std::uint32_t c = 0; c < kClusters; ++c) {
            kb.mov(dist, KernelBuilder::fimm(0.0f));
            for (std::uint32_t d = 0; d < kDim; ++d) {
                kb.ldg(cvreg, pcents,
                       static_cast<std::int32_t>((c * kDim + d) * 4));
                kb.fsub(diff, x[d], cvreg);
                kb.ffma(dist, diff, diff, dist);
            }
            kb.fsetp(CmpOp::Lt, p_lt, dist, best_dist);
            kb.selp(best_dist, dist, best_dist, p_lt);
            kb.selp(best, KernelBuilder::imm(static_cast<std::int32_t>(c)),
                    best, p_lt);
        }

        const Operand o_addr = kb.vreg();
        kb.shl(o_addr, t.gid, KernelBuilder::imm(2));
        kb.iadd(o_addr, o_addr, plabels);
        kb.stg(o_addr, best);
        kb.exit();

        return kb.finish();
    }
};

} // namespace

std::unique_ptr<Workload>
makeKmeans()
{
    return std::make_unique<Kmeans>();
}

} // namespace gpr
