/**
 * @file
 * transpose — the SDK shared-memory matrix transpose: 8x8 tiles staged in
 * LDS so that both global read and write are coalesced.  Integer data,
 * bit-exact verification.
 */

#include "workloads/workloads.hh"

#include "common/random.hh"
#include "isa/builder.hh"

namespace gpr {
namespace {

constexpr std::uint32_t kN = 128;
constexpr std::uint32_t kTile = 16;

class Transpose : public Workload
{
  public:
    std::string_view name() const override { return "transpose"; }
    bool usesLocalMemory() const override { return true; }

    WorkloadInstance
    build(IsaDialect dialect, const WorkloadParams& params) const override
    {
        WorkloadInstance inst;
        inst.workloadName = std::string(name());

        Rng rng(deriveSeed(params.seed, 0x7359));
        Buffer in = inst.image.allocBuffer(kN * kN);
        Buffer out_buf = inst.image.allocBuffer(kN * kN);

        ExpectedOutput out;
        out.label = "transposed";
        out.buffer = out_buf;
        out.compare = CompareKind::ExactWords;
        out.golden.resize(kN * kN);
        for (std::uint32_t y = 0; y < kN; ++y) {
            for (std::uint32_t x = 0; x < kN; ++x) {
                const Word v = static_cast<Word>(rng());
                inst.image.setWord(in, y * kN + x, v);
                out.golden[x * kN + y] = v;
            }
        }
        inst.outputs.push_back(std::move(out));

        inst.program = buildKernel(dialect);

        inst.launch.blockX = kTile;
        inst.launch.blockY = kTile;
        inst.launch.gridX = kN / kTile;
        inst.launch.gridY = kN / kTile;
        inst.launch.addParamAddr(in.byteAddr);
        inst.launch.addParamAddr(out_buf.byteAddr);
        inst.launch.addParamInt(static_cast<std::int32_t>(kN));
        return inst;
    }

  private:
    static Program
    buildKernel(IsaDialect dialect)
    {
        KernelBuilder kb("transpose", dialect);
        const Operand tx = kb.vreg();
        const Operand ty = kb.vreg();
        const Operand bx = kb.uniformReg();
        const Operand by = kb.uniformReg();
        const Operand pin = kb.uniformReg();
        const Operand pout = kb.uniformReg();
        const Operand n = kb.uniformReg();

        kb.s2r(tx, SpecialReg::TidX);
        kb.s2r(ty, SpecialReg::TidY);
        kb.s2r(bx, SpecialReg::CtaIdX);
        kb.s2r(by, SpecialReg::CtaIdY);
        kb.ldparam(pin, 0);
        kb.ldparam(pout, 1);
        kb.ldparam(n, 2);

        // Read in[(by*kTile+ty)*N + bx*kTile+tx] -> tile[ty][tx].
        const Operand gx = kb.vreg();
        const Operand gy = kb.vreg();
        kb.imad(gx, bx, KernelBuilder::imm(kTile), tx);
        kb.imad(gy, by, KernelBuilder::imm(kTile), ty);

        const Operand addr = kb.vreg();
        kb.imad(addr, gy, n, gx);
        kb.shl(addr, addr, KernelBuilder::imm(2));
        kb.iadd(addr, addr, pin);
        const Operand v = kb.vreg();
        kb.ldg(v, addr);

        const Operand s_w = kb.vreg(); // (ty*kTile+tx)*4
        kb.imad(s_w, ty, KernelBuilder::imm(kTile), tx);
        kb.shl(s_w, s_w, KernelBuilder::imm(2));
        kb.sts(s_w, v);
        kb.bar();

        // Write out[(bx*kTile+ty)*N + by*kTile+tx] = tile[tx][ty]
        // (coalesced store: consecutive tx writes consecutive addresses).
        const Operand ox = kb.vreg();
        const Operand oy = kb.vreg();
        kb.imad(ox, by, KernelBuilder::imm(kTile), tx);
        kb.imad(oy, bx, KernelBuilder::imm(kTile), ty);

        const Operand s_r = kb.vreg(); // (tx*kTile+ty)*4
        kb.imad(s_r, tx, KernelBuilder::imm(kTile), ty);
        kb.shl(s_r, s_r, KernelBuilder::imm(2));
        const Operand tv = kb.vreg();
        kb.lds(tv, s_r);

        const Operand oaddr = kb.vreg();
        kb.imad(oaddr, oy, n, ox);
        kb.shl(oaddr, oaddr, KernelBuilder::imm(2));
        kb.iadd(oaddr, oaddr, pout);
        kb.stg(oaddr, tv);
        kb.exit();

        return kb.finish(kTile * kTile * 4);
    }
};

} // namespace

std::unique_ptr<Workload>
makeTranspose()
{
    return std::make_unique<Transpose>();
}

} // namespace gpr
