/**
 * @file
 * scan — the SDK work-efficient (Blelloch) exclusive prefix sum: each
 * block scans a 256-element tile in shared memory with barrier-separated
 * up-sweep and down-sweep phases full of divergent `if (tid < d)` steps.
 * Integer data, bit-exact verification.
 */

#include "workloads/workloads.hh"

#include "common/random.hh"
#include "isa/builder.hh"
#include "workloads/kernel_util.hh"

namespace gpr {
namespace {

constexpr std::uint32_t kBlock = 256;
constexpr std::uint32_t kTileElems = 512; ///< 2 elements per thread
constexpr std::uint32_t kBlocks = 64;
constexpr std::uint32_t kN = kTileElems * kBlocks;

class Scan : public Workload
{
  public:
    std::string_view name() const override { return "scan"; }
    bool usesLocalMemory() const override { return true; }

    WorkloadInstance
    build(IsaDialect dialect, const WorkloadParams& params) const override
    {
        WorkloadInstance inst;
        inst.workloadName = std::string(name());

        Rng rng(deriveSeed(params.seed, 0x5CA9));
        Buffer in = inst.image.allocBuffer(kN);
        Buffer out_buf = inst.image.allocBuffer(kN);

        std::vector<std::int32_t> data(kN);
        for (std::uint32_t i = 0; i < kN; ++i) {
            data[i] = static_cast<std::int32_t>(rng.below(1000));
            inst.image.setInt(in, i, data[i]);
        }

        // Golden: per-tile exclusive scan (wraparound int32 semantics).
        ExpectedOutput out;
        out.label = "scanned";
        out.buffer = out_buf;
        out.compare = CompareKind::ExactWords;
        out.golden.resize(kN);
        for (std::uint32_t blk = 0; blk < kBlocks; ++blk) {
            std::uint32_t acc = 0;
            for (std::uint32_t i = 0; i < kTileElems; ++i) {
                out.golden[blk * kTileElems + i] = acc;
                acc += static_cast<std::uint32_t>(data[blk * kTileElems + i]);
            }
        }
        inst.outputs.push_back(std::move(out));

        inst.program = buildKernel(dialect);

        inst.launch.blockX = kBlock;
        inst.launch.gridX = kBlocks;
        inst.launch.addParamAddr(in.byteAddr);
        inst.launch.addParamAddr(out_buf.byteAddr);
        return inst;
    }

  private:
    static Program
    buildKernel(IsaDialect dialect)
    {
        KernelBuilder kb("scan", dialect);
        const Operand tid = kb.vreg();
        const Operand bid = kb.uniformReg();
        const Operand pin = kb.uniformReg();
        const Operand pout = kb.uniformReg();

        kb.s2r(tid, SpecialReg::TidX);
        kb.s2r(bid, SpecialReg::CtaIdX);
        kb.ldparam(pin, 0);
        kb.ldparam(pout, 1);

        const Operand base = kb.uniformReg(); // tile base byte address
        kb.imul(base, bid, KernelBuilder::imm(kTileElems * 4));

        // Load 2 elements per thread into shared: s[2t], s[2t+1].
        const Operand two_t = kb.vreg(); // 2*tid*4 bytes
        kb.shl(two_t, tid, KernelBuilder::imm(3));
        const Operand g_in = kb.vreg();
        kb.iadd(g_in, base, pin);
        kb.iadd(g_in, g_in, two_t);
        const Operand e0 = kb.vreg();
        const Operand e1 = kb.vreg();
        kb.ldg(e0, g_in, 0);
        kb.ldg(e1, g_in, 4);
        kb.sts(two_t, e0, 0);
        kb.sts(two_t, e1, 4);
        kb.bar();

        const unsigned p0 = kb.preg();
        const Operand ai = kb.vreg(); // byte address of s[ai]
        const Operand bi = kb.vreg();
        const Operand va = kb.vreg();
        const Operand vb = kb.vreg();

        // Up-sweep: offset doubles; active threads tid < d.
        std::uint32_t offset = 1;
        for (std::uint32_t d = kTileElems >> 1; d > 0; d >>= 1) {
            kb.isetp(CmpOp::Lt, p0, tid,
                     KernelBuilder::imm(static_cast<std::int32_t>(d)));
            DivergentIf div(kb, p0);
            // ai = offset*(2*tid+1) - 1;  bi = offset*(2*tid+2) - 1.
            emitPairAddrs(kb, tid, offset, ai, bi);
            kb.lds(va, ai, 0);
            kb.lds(vb, bi, 0);
            kb.iadd(vb, vb, va);
            kb.sts(bi, vb, 0);
            div.close();
            kb.bar();
            offset <<= 1;
        }

        // Clear the last element (tid == 0).
        const unsigned p1 = kb.preg();
        kb.isetp(CmpOp::Eq, p1, tid, KernelBuilder::imm(0));
        const Operand zero = kb.vreg();
        kb.mov(zero, KernelBuilder::imm(0), ifP(p1));
        kb.sts(KernelBuilder::imm((kTileElems - 1) * 4), zero, 0, ifP(p1));
        kb.bar();

        // Down-sweep: offset halves; t = s[ai]; s[ai] = s[bi]; s[bi] += t.
        for (std::uint32_t d = 1; d < kTileElems; d <<= 1) {
            offset >>= 1;
            kb.isetp(CmpOp::Lt, p0, tid,
                     KernelBuilder::imm(static_cast<std::int32_t>(d)));
            DivergentIf div(kb, p0);
            emitPairAddrs(kb, tid, offset, ai, bi);
            kb.lds(va, ai, 0);
            kb.lds(vb, bi, 0);
            kb.sts(ai, vb, 0);
            kb.iadd(vb, vb, va);
            kb.sts(bi, vb, 0);
            div.close();
            kb.bar();
        }

        // Write both elements back.
        const Operand g_out = kb.vreg();
        kb.iadd(g_out, base, pout);
        kb.iadd(g_out, g_out, two_t);
        kb.lds(e0, two_t, 0);
        kb.lds(e1, two_t, 4);
        kb.stg(g_out, e0, 0);
        kb.stg(g_out, e1, 4);
        kb.exit();

        return kb.finish(kTileElems * 4);
    }

    /** ai = (offset*(2*tid+1) - 1) * 4;  bi = (offset*(2*tid+2) - 1) * 4. */
    static void
    emitPairAddrs(KernelBuilder& kb, Operand tid, std::uint32_t offset,
                  Operand ai, Operand bi)
    {
        // 2*tid+1 and 2*tid+2 via IMAD on the fly.
        kb.imad(ai, tid, KernelBuilder::imm(2), KernelBuilder::imm(1));
        kb.imul(ai, ai, KernelBuilder::imm(static_cast<std::int32_t>(offset)));
        kb.isub(ai, ai, KernelBuilder::imm(1));
        kb.shl(ai, ai, KernelBuilder::imm(2));
        kb.imad(bi, tid, KernelBuilder::imm(2), KernelBuilder::imm(2));
        kb.imul(bi, bi, KernelBuilder::imm(static_cast<std::int32_t>(offset)));
        kb.isub(bi, bi, KernelBuilder::imm(1));
        kb.shl(bi, bi, KernelBuilder::imm(2));
    }
};

} // namespace

std::unique_ptr<Workload>
makeScan()
{
    return std::make_unique<Scan>();
}

} // namespace gpr
