/**
 * @file
 * reduction — the SDK parallel sum: each block loads 2*blockDim elements,
 * reduces them in shared memory with a barrier-synchronised binary tree
 * (divergent `if (tid < s)` steps), and writes one partial sum per block.
 * The output is the vector of per-block partials, exactly what the SDK
 * kernel emits before the host (or a second launch) finishes the sum.
 */

#include "workloads/workloads.hh"

#include "common/random.hh"
#include "isa/builder.hh"
#include "workloads/kernel_util.hh"

namespace gpr {
namespace {

constexpr std::uint32_t kBlock = 256;          ///< threads per block
constexpr std::uint32_t kElemsPerBlock = 512;  ///< 2 loads per thread
constexpr std::uint32_t kBlocks = 64;
constexpr std::uint32_t kN = kElemsPerBlock * kBlocks;

class Reduction : public Workload
{
  public:
    std::string_view name() const override { return "reduction"; }
    bool usesLocalMemory() const override { return true; }

    WorkloadInstance
    build(IsaDialect dialect, const WorkloadParams& params) const override
    {
        WorkloadInstance inst;
        inst.workloadName = std::string(name());

        Rng rng(deriveSeed(params.seed, 0x5ED0));
        Buffer in = inst.image.allocBuffer(kN);
        Buffer out_buf = inst.image.allocBuffer(kBlocks);

        std::vector<float> data(kN);
        for (std::uint32_t i = 0; i < kN; ++i) {
            data[i] = rng.uniformF(-2.0f, 2.0f);
            inst.image.setFloat(in, i, data[i]);
        }

        // Golden replays the kernel's exact tree order (float addition is
        // not associative).
        ExpectedOutput out;
        out.label = "partials";
        out.buffer = out_buf;
        out.compare = CompareKind::FloatRelTol;
        out.tolerance = 1e-5f;
        out.golden.resize(kBlocks);
        for (std::uint32_t blk = 0; blk < kBlocks; ++blk) {
            float sdata[kBlock];
            const std::uint32_t base = blk * kElemsPerBlock;
            for (std::uint32_t t = 0; t < kBlock; ++t)
                sdata[t] = data[base + t] + data[base + t + kBlock];
            for (std::uint32_t s = kBlock / 2; s > 0; s >>= 1)
                for (std::uint32_t t = 0; t < s; ++t)
                    sdata[t] += sdata[t + s];
            out.golden[blk] = floatBits(sdata[0]);
        }
        inst.outputs.push_back(std::move(out));

        inst.program = buildKernel(dialect);

        inst.launch.blockX = kBlock;
        inst.launch.gridX = kBlocks;
        inst.launch.addParamAddr(in.byteAddr);
        inst.launch.addParamAddr(out_buf.byteAddr);
        return inst;
    }

  private:
    static Program
    buildKernel(IsaDialect dialect)
    {
        KernelBuilder kb("reduction", dialect);
        const Operand tid = kb.vreg();
        const Operand bid = kb.uniformReg();
        const Operand pin = kb.uniformReg();
        const Operand pout = kb.uniformReg();

        kb.s2r(tid, SpecialReg::TidX);
        kb.s2r(bid, SpecialReg::CtaIdX);
        kb.ldparam(pin, 0);
        kb.ldparam(pout, 1);

        // sdata[tid] = in[base + tid] + in[base + tid + kBlock].
        const Operand base = kb.uniformReg(); // block base byte address
        kb.imul(base, bid, KernelBuilder::imm(kElemsPerBlock * 4));
        kb.iadd(base, base, pin);

        const Operand t_off = kb.vreg(); // tid * 4
        kb.shl(t_off, tid, KernelBuilder::imm(2));
        const Operand g_addr = kb.vreg();
        kb.iadd(g_addr, base, t_off);

        const Operand x0 = kb.vreg();
        const Operand x1 = kb.vreg();
        kb.ldg(x0, g_addr, 0);
        kb.ldg(x1, g_addr, kBlock * 4);
        const Operand sum = kb.vreg();
        kb.fadd(sum, x0, x1);
        kb.sts(t_off, sum);
        kb.bar();

        // Tree reduction with divergent guards, statically unrolled.
        const unsigned p0 = kb.preg();
        const Operand v_a = kb.vreg();
        const Operand v_b = kb.vreg();
        for (std::uint32_t s = kBlock / 2; s > 0; s >>= 1) {
            kb.isetp(CmpOp::Lt, p0, tid,
                     KernelBuilder::imm(static_cast<std::int32_t>(s)));
            DivergentIf div(kb, p0);
            kb.lds(v_a, t_off, 0);
            kb.lds(v_b, t_off, static_cast<std::int32_t>(s * 4));
            kb.fadd(v_a, v_a, v_b);
            kb.sts(t_off, v_a);
            div.close();
            kb.bar();
        }

        // tid == 0 writes the block partial.
        const unsigned p1 = kb.preg();
        kb.isetp(CmpOp::Eq, p1, tid, KernelBuilder::imm(0));
        const Operand o_addr = kb.vreg();
        const Operand result = kb.vreg();
        kb.shl(o_addr, bid, KernelBuilder::imm(2));
        kb.iadd(o_addr, o_addr, pout);
        kb.lds(result, t_off, 0, ifP(p1));
        kb.stg(o_addr, result, 0, ifP(p1));
        kb.exit();

        return kb.finish(kBlock * 4);
    }
};

} // namespace

std::unique_ptr<Workload>
makeReduction()
{
    return std::make_unique<Reduction>();
}

} // namespace gpr
