/**
 * @file
 * matrixMul — the SDK tiled GEMM: C = A x B with two shared-memory tiles,
 * 8x8 thread blocks, barrier-synchronised tile loop, unrolled inner
 * product.
 */

#include "workloads/workloads.hh"

#include <cmath>

#include "common/random.hh"
#include "isa/builder.hh"

namespace gpr {
namespace {

constexpr std::uint32_t kN = 128;   ///< square matrix dimension
constexpr std::uint32_t kTile = 16; ///< tile edge (block is kTile x kTile)
constexpr std::uint32_t kTileShift = 4;   ///< log2(kTile)

class MatrixMul : public Workload
{
  public:
    std::string_view name() const override { return "matrixMul"; }
    bool usesLocalMemory() const override { return true; }

    WorkloadInstance
    build(IsaDialect dialect, const WorkloadParams& params) const override
    {
        WorkloadInstance inst;
        inst.workloadName = std::string(name());

        Rng rng(deriveSeed(params.seed, 0x33A7));
        Buffer a = inst.image.allocBuffer(kN * kN);
        Buffer b = inst.image.allocBuffer(kN * kN);
        Buffer c = inst.image.allocBuffer(kN * kN);

        std::vector<float> av(kN * kN), bv(kN * kN);
        for (std::uint32_t i = 0; i < kN * kN; ++i) {
            av[i] = rng.uniformF(-1.0f, 1.0f);
            bv[i] = rng.uniformF(-1.0f, 1.0f);
            inst.image.setFloat(a, i, av[i]);
            inst.image.setFloat(b, i, bv[i]);
        }

        // Host golden with the kernel's accumulation order (fmaf chain
        // over k ascending).
        ExpectedOutput out;
        out.label = "C";
        out.buffer = c;
        out.compare = CompareKind::FloatRelTol;
        out.tolerance = 1e-4f;
        out.golden.resize(kN * kN);
        for (std::uint32_t row = 0; row < kN; ++row) {
            for (std::uint32_t col = 0; col < kN; ++col) {
                float acc = 0.0f;
                for (std::uint32_t k = 0; k < kN; ++k)
                    acc = std::fma(av[row * kN + k], bv[k * kN + col], acc);
                out.golden[row * kN + col] = floatBits(acc);
            }
        }
        inst.outputs.push_back(std::move(out));

        inst.program = buildKernel(dialect);

        inst.launch.blockX = kTile;
        inst.launch.blockY = kTile;
        inst.launch.gridX = kN / kTile;
        inst.launch.gridY = kN / kTile;
        inst.launch.addParamAddr(a.byteAddr);
        inst.launch.addParamAddr(b.byteAddr);
        inst.launch.addParamAddr(c.byteAddr);
        inst.launch.addParamInt(static_cast<std::int32_t>(kN));
        return inst;
    }

  private:
    static Program
    buildKernel(IsaDialect dialect)
    {
        // Shared layout: As[kTile][kTile] at byte 0,
        //                Bs[kTile][kTile] at byte kTile*kTile*4.
        constexpr std::uint32_t kTileBytes = kTile * kTile * 4;

        KernelBuilder kb("matrixMul", dialect);
        const Operand tx = kb.vreg();
        const Operand ty = kb.vreg();
        const Operand bx = kb.uniformReg();
        const Operand by = kb.uniformReg();
        const Operand pa = kb.uniformReg();
        const Operand pb = kb.uniformReg();
        const Operand pc = kb.uniformReg();
        const Operand n = kb.uniformReg();

        kb.s2r(tx, SpecialReg::TidX);
        kb.s2r(ty, SpecialReg::TidY);
        kb.s2r(bx, SpecialReg::CtaIdX);
        kb.s2r(by, SpecialReg::CtaIdY);
        kb.ldparam(pa, 0);
        kb.ldparam(pb, 1);
        kb.ldparam(pc, 2);
        kb.ldparam(n, 3);

        // row = by*kTile + ty; col = bx*kTile + tx.
        const Operand row = kb.vreg();
        const Operand col = kb.vreg();
        kb.imad(row, by, KernelBuilder::imm(kTile), ty);
        kb.imad(col, bx, KernelBuilder::imm(kTile), tx);

        // In-tile shared byte addresses.
        const Operand s_store = kb.vreg(); // (ty*kTile + tx) * 4
        kb.imad(s_store, ty, KernelBuilder::imm(kTile), tx);
        kb.shl(s_store, s_store, KernelBuilder::imm(2));

        const Operand acc = kb.vreg();
        kb.mov(acc, KernelBuilder::fimm(0.0f));

        // a_ptr walks A[row][t*kTile + tx]; b_ptr walks B[t*kTile+ty][col].
        const Operand a_ptr = kb.vreg();
        const Operand tmp = kb.vreg();
        kb.imad(tmp, row, n, tx);              // row*N + tx
        kb.shl(tmp, tmp, KernelBuilder::imm(2));
        kb.iadd(a_ptr, tmp, pa);

        const Operand b_ptr = kb.vreg();
        kb.imad(tmp, ty, n, col);              // ty*N + col
        kb.shl(tmp, tmp, KernelBuilder::imm(2));
        kb.iadd(b_ptr, tmp, pb);

        // Per-iteration pointer strides (bytes).
        const Operand a_stride = kb.uniformReg(); // kTile * 4
        const Operand b_stride = kb.uniformReg(); // kTile * N * 4
        kb.mov(a_stride, KernelBuilder::imm(kTile * 4));
        kb.shl(b_stride, n, KernelBuilder::imm(2 + kTileShift)); // N*4*kTile

        // Tile loop (uniform trip count N/kTile).
        const Operand t = kb.uniformReg();
        kb.mov(t, KernelBuilder::imm(0));
        const Label loop = kb.newLabel("tile_loop");
        const unsigned p_loop = kb.preg();
        kb.bind(loop);

        const Operand va = kb.vreg();
        const Operand vb = kb.vreg();
        kb.ldg(va, a_ptr);
        kb.ldg(vb, b_ptr);
        kb.sts(s_store, va);                       // As[ty][tx]
        kb.sts(s_store, vb, kTileBytes);           // Bs[ty][tx]
        kb.bar();

        // acc += As[ty][k] * Bs[k][tx], k unrolled.
        const Operand s_a = kb.vreg(); // &As[ty][0] byte offset
        const Operand s_b = kb.vreg(); // &Bs[0][tx] byte offset
        kb.shl(s_a, ty, KernelBuilder::imm(2 + kTileShift)); // ty*kTile*4
        kb.shl(s_b, tx, KernelBuilder::imm(2));     // tx*4
        const Operand ea = kb.vreg();
        const Operand eb = kb.vreg();
        for (std::uint32_t k = 0; k < kTile; ++k) {
            kb.lds(ea, s_a, static_cast<std::int32_t>(k * 4));
            kb.lds(eb, s_b,
                   static_cast<std::int32_t>(kTileBytes + k * kTile * 4));
            kb.ffma(acc, ea, eb, acc);
        }
        kb.bar();

        kb.iadd(a_ptr, a_ptr, a_stride);
        kb.iadd(b_ptr, b_ptr, b_stride);
        kb.iadd(t, t, KernelBuilder::imm(1));
        kb.isetp(CmpOp::Lt, p_loop, t, KernelBuilder::imm(kN / kTile));
        kb.bra(loop, ifP(p_loop));

        // C[row][col] = acc.
        const Operand c_ptr = kb.vreg();
        kb.imad(tmp, row, n, col);
        kb.shl(tmp, tmp, KernelBuilder::imm(2));
        kb.iadd(c_ptr, tmp, pc);
        kb.stg(c_ptr, acc);
        kb.exit();

        return kb.finish(2 * kTileBytes);
    }
};

} // namespace

std::unique_ptr<Workload>
makeMatrixMul()
{
    return std::make_unique<MatrixMul>();
}

} // namespace gpr
