/**
 * @file
 * histogram — the SDK 256-bin histogram: per-block bins in shared memory
 * filled with shared-memory atomics, then merged into the global
 * histogram with global atomics.  Integer counts, bit-exact verification.
 */

#include "workloads/workloads.hh"

#include "common/random.hh"
#include "isa/builder.hh"

namespace gpr {
namespace {

constexpr std::uint32_t kBins = 256;
constexpr std::uint32_t kBlock = 256;
constexpr std::uint32_t kBlocks = 64;
constexpr std::uint32_t kElemsPerThread = 4;
constexpr std::uint32_t kN = kBlocks * kBlock * kElemsPerThread;

class Histogram : public Workload
{
  public:
    std::string_view name() const override { return "histogram"; }
    bool usesLocalMemory() const override { return true; }

    WorkloadInstance
    build(IsaDialect dialect, const WorkloadParams& params) const override
    {
        WorkloadInstance inst;
        inst.workloadName = std::string(name());

        Rng rng(deriveSeed(params.seed, 0x4157));
        Buffer data = inst.image.allocBuffer(kN);
        Buffer bins = inst.image.allocBuffer(kBins);

        ExpectedOutput out;
        out.label = "bins";
        out.buffer = bins;
        out.compare = CompareKind::ExactWords;
        out.golden.assign(kBins, 0);
        for (std::uint32_t i = 0; i < kN; ++i) {
            // Skewed distribution (squared uniform) like image data.
            const double u = rng.uniform();
            const Word v = static_cast<Word>(u * u * kBins) % kBins;
            inst.image.setWord(data, i, v);
            ++out.golden[v];
        }
        inst.outputs.push_back(std::move(out));

        inst.program = buildKernel(dialect);

        inst.launch.blockX = kBlock;
        inst.launch.gridX = kBlocks;
        inst.launch.addParamAddr(data.byteAddr);
        inst.launch.addParamAddr(bins.byteAddr);
        return inst;
    }

  private:
    static Program
    buildKernel(IsaDialect dialect)
    {
        KernelBuilder kb("histogram", dialect);
        const Operand tid = kb.vreg();
        const Operand bid = kb.uniformReg();
        const Operand pdata = kb.uniformReg();
        const Operand pbins = kb.uniformReg();

        kb.s2r(tid, SpecialReg::TidX);
        kb.s2r(bid, SpecialReg::CtaIdX);
        kb.ldparam(pdata, 0);
        kb.ldparam(pbins, 1);

        // Zero the shared bins: each thread clears kBins/kBlock slots.
        const Operand t_off = kb.vreg();
        kb.shl(t_off, tid, KernelBuilder::imm(2));
        const Operand zero = kb.vreg();
        kb.mov(zero, KernelBuilder::imm(0));
        for (std::uint32_t k = 0; k < kBins / kBlock; ++k) {
            kb.sts(t_off, zero,
                   static_cast<std::int32_t>(k * kBlock * 4));
        }
        kb.bar();

        // Accumulate kElemsPerThread values via shared atomics.
        const Operand chunk = kb.uniformReg(); // block chunk base bytes
        kb.imul(chunk, bid,
                KernelBuilder::imm(kBlock * kElemsPerThread * 4));
        kb.iadd(chunk, chunk, pdata);
        const Operand g_addr = kb.vreg();
        kb.iadd(g_addr, chunk, t_off);

        const Operand value = kb.vreg();
        const Operand s_bin = kb.vreg();
        const Operand one = kb.vreg();
        kb.mov(one, KernelBuilder::imm(1));
        for (std::uint32_t k = 0; k < kElemsPerThread; ++k) {
            kb.ldg(value, g_addr, static_cast<std::int32_t>(k * kBlock * 4));
            kb.shl(s_bin, value, KernelBuilder::imm(2));
            kb.atomsAdd(s_bin, one);
        }
        kb.bar();

        // Merge into the global histogram with global atomics.
        const Operand s_val = kb.vreg();
        const Operand g_bin = kb.vreg();
        kb.iadd(g_bin, pbins, t_off);
        for (std::uint32_t k = 0; k < kBins / kBlock; ++k) {
            const auto off = static_cast<std::int32_t>(k * kBlock * 4);
            kb.lds(s_val, t_off, off);
            kb.atomgAdd(g_bin, s_val, off);
        }
        kb.exit();

        return kb.finish(kBins * 4);
    }
};

} // namespace

std::unique_ptr<Workload>
makeHistogram()
{
    return std::make_unique<Histogram>();
}

} // namespace gpr
