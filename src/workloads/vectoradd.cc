/**
 * @file
 * vectoradd — the CUDA SDK / AMD-APP "VectorAdd" sample: C[i] = A[i] + B[i]
 * with a bounds guard, one thread per element.
 */

#include "workloads/workloads.hh"

#include "common/random.hh"
#include "isa/builder.hh"

namespace gpr {
namespace {

constexpr std::uint32_t kN = 32768;
constexpr std::uint32_t kBlock = 128;

class VectorAdd : public Workload
{
  public:
    std::string_view name() const override { return "vectoradd"; }
    bool usesLocalMemory() const override { return false; }

    WorkloadInstance
    build(IsaDialect dialect, const WorkloadParams& params) const override
    {
        WorkloadInstance inst;
        inst.workloadName = std::string(name());

        // --- Inputs & golden -------------------------------------------
        Rng rng(deriveSeed(params.seed, 0xADD));
        Buffer a = inst.image.allocBuffer(kN);
        Buffer b = inst.image.allocBuffer(kN);
        Buffer c = inst.image.allocBuffer(kN);

        ExpectedOutput out;
        out.label = "C";
        out.buffer = c;
        out.compare = CompareKind::FloatRelTol;
        out.tolerance = 1e-5f;
        out.golden.resize(kN);
        for (std::uint32_t i = 0; i < kN; ++i) {
            const float av = rng.uniformF(-4.0f, 4.0f);
            const float bv = rng.uniformF(-4.0f, 4.0f);
            inst.image.setFloat(a, i, av);
            inst.image.setFloat(b, i, bv);
            out.golden[i] = floatBits(av + bv);
        }
        inst.outputs.push_back(std::move(out));

        // --- Kernel ------------------------------------------------------
        KernelBuilder kb(std::string(name()), dialect);
        const Operand tid = kb.vreg();
        const Operand bid = kb.uniformReg();
        const Operand bdim = kb.uniformReg();
        const Operand pa = kb.uniformReg();
        const Operand pb = kb.uniformReg();
        const Operand pc = kb.uniformReg();
        const Operand n = kb.uniformReg();

        kb.s2r(tid, SpecialReg::TidX);
        kb.s2r(bid, SpecialReg::CtaIdX);
        kb.s2r(bdim, SpecialReg::NTidX);
        kb.ldparam(pa, 0);
        kb.ldparam(pb, 1);
        kb.ldparam(pc, 2);
        kb.ldparam(n, 3);

        const Operand gid = kb.vreg();
        kb.imad(gid, bid, bdim, tid);
        const unsigned p0 = kb.preg();
        kb.isetp(CmpOp::Lt, p0, gid, n);

        const Operand off = kb.vreg();
        kb.shl(off, gid, KernelBuilder::imm(2));
        const Operand aaddr = kb.vreg();
        const Operand baddr = kb.vreg();
        const Operand caddr = kb.vreg();
        kb.iadd(aaddr, off, pa);
        kb.iadd(baddr, off, pb);
        kb.iadd(caddr, off, pc);

        const Operand va = kb.vreg();
        const Operand vb = kb.vreg();
        const Operand vc = kb.vreg();
        kb.ldg(va, aaddr, 0, ifP(p0));
        kb.ldg(vb, baddr, 0, ifP(p0));
        kb.fadd(vc, va, vb, ifP(p0));
        kb.stg(caddr, vc, 0, ifP(p0));
        kb.exit();

        inst.program = kb.finish();

        // --- Launch ------------------------------------------------------
        inst.launch.blockX = kBlock;
        inst.launch.gridX = kN / kBlock;
        inst.launch.addParamAddr(a.byteAddr);
        inst.launch.addParamAddr(b.byteAddr);
        inst.launch.addParamAddr(c.byteAddr);
        inst.launch.addParamInt(static_cast<std::int32_t>(kN));
        return inst;
    }
};

} // namespace

std::unique_ptr<Workload>
makeVectorAdd()
{
    return std::make_unique<VectorAdd>();
}

} // namespace gpr
