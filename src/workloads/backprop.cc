/**
 * @file
 * backprop — the Rodinia layer-forward kernel: one block per hidden unit;
 * threads compute input x weight partial products, reduce them in shared
 * memory, and thread 0 applies the sigmoid activation:
 *
 *     h[j] = 1 / (1 + exp(-sum_i in[i] * w[j][i]))
 *
 * exp() is lowered to the hardware EXP2 SFU (exp(x) = 2^(x*log2 e)),
 * exactly as both vendors' compilers do.
 */

#include "workloads/workloads.hh"

#include <cmath>

#include "common/random.hh"
#include "isa/builder.hh"
#include "workloads/kernel_util.hh"

namespace gpr {
namespace {

constexpr std::uint32_t kInputs = 512;
constexpr std::uint32_t kHidden = 64;  ///< one block per hidden unit
constexpr std::uint32_t kBlock = 256;  ///< 2 products per thread
constexpr float kLog2E = 1.44269504088896340736f;

class Backprop : public Workload
{
  public:
    std::string_view name() const override { return "backprop"; }
    bool usesLocalMemory() const override { return true; }

    WorkloadInstance
    build(IsaDialect dialect, const WorkloadParams& params) const override
    {
        WorkloadInstance inst;
        inst.workloadName = std::string(name());

        Rng rng(deriveSeed(params.seed, 0xBAC2));
        Buffer in = inst.image.allocBuffer(kInputs);
        Buffer w = inst.image.allocBuffer(kHidden * kInputs);
        Buffer h = inst.image.allocBuffer(kHidden);

        std::vector<float> iv(kInputs);
        std::vector<float> wv(kHidden * kInputs);
        for (std::uint32_t i = 0; i < kInputs; ++i) {
            iv[i] = rng.uniformF(-1.0f, 1.0f);
            inst.image.setFloat(in, i, iv[i]);
        }
        for (std::uint32_t i = 0; i < kHidden * kInputs; ++i) {
            wv[i] = rng.uniformF(-0.25f, 0.25f);
            inst.image.setFloat(w, i, wv[i]);
        }

        // Golden replays the kernel's partial-product and tree order.
        ExpectedOutput out;
        out.label = "hidden";
        out.buffer = h;
        out.compare = CompareKind::FloatRelTol;
        out.tolerance = 1e-4f;
        out.golden.resize(kHidden);
        for (std::uint32_t j = 0; j < kHidden; ++j) {
            float sdata[kBlock];
            for (std::uint32_t t = 0; t < kBlock; ++t) {
                const float p0 = iv[t] * wv[j * kInputs + t];
                sdata[t] = std::fma(iv[t + kBlock],
                                    wv[j * kInputs + t + kBlock], p0);
            }
            for (std::uint32_t s = kBlock / 2; s > 0; s >>= 1)
                for (std::uint32_t t = 0; t < s; ++t)
                    sdata[t] += sdata[t + s];
            const float act =
                1.0f / (1.0f + std::exp2(-sdata[0] * kLog2E));
            out.golden[j] = floatBits(act);
        }
        inst.outputs.push_back(std::move(out));

        inst.program = buildKernel(dialect);

        inst.launch.blockX = kBlock;
        inst.launch.gridX = kHidden;
        inst.launch.addParamAddr(in.byteAddr);
        inst.launch.addParamAddr(w.byteAddr);
        inst.launch.addParamAddr(h.byteAddr);
        return inst;
    }

  private:
    static Program
    buildKernel(IsaDialect dialect)
    {
        KernelBuilder kb("backprop", dialect);
        const Operand tid = kb.vreg();
        const Operand bid = kb.uniformReg(); // hidden-unit index j
        const Operand pin = kb.uniformReg();
        const Operand pw = kb.uniformReg();
        const Operand ph = kb.uniformReg();

        kb.s2r(tid, SpecialReg::TidX);
        kb.s2r(bid, SpecialReg::CtaIdX);
        kb.ldparam(pin, 0);
        kb.ldparam(pw, 1);
        kb.ldparam(ph, 2);

        const Operand t_off = kb.vreg();
        kb.shl(t_off, tid, KernelBuilder::imm(2));

        // Weight row base: pw + j*kInputs*4.
        const Operand w_row = kb.uniformReg();
        kb.imul(w_row, bid, KernelBuilder::imm(kInputs * 4));
        kb.iadd(w_row, w_row, pw);

        const Operand in_addr = kb.vreg();
        const Operand w_addr = kb.vreg();
        kb.iadd(in_addr, pin, t_off);
        kb.iadd(w_addr, w_row, t_off);

        // partial = in[t]*w[t] + in[t+128]*w[t+128] (FMUL then FFMA).
        const Operand x0 = kb.vreg();
        const Operand w0 = kb.vreg();
        const Operand x1 = kb.vreg();
        const Operand w1 = kb.vreg();
        kb.ldg(x0, in_addr, 0);
        kb.ldg(w0, w_addr, 0);
        kb.ldg(x1, in_addr, kBlock * 4);
        kb.ldg(w1, w_addr, kBlock * 4);

        const Operand partial = kb.vreg();
        kb.fmul(partial, x0, w0);
        kb.ffma(partial, x1, w1, partial);
        kb.sts(t_off, partial);
        kb.bar();

        // Shared-memory tree reduction (divergent guards).
        const unsigned p0 = kb.preg();
        const Operand v_a = kb.vreg();
        const Operand v_b = kb.vreg();
        for (std::uint32_t s = kBlock / 2; s > 0; s >>= 1) {
            kb.isetp(CmpOp::Lt, p0, tid,
                     KernelBuilder::imm(static_cast<std::int32_t>(s)));
            DivergentIf div(kb, p0);
            kb.lds(v_a, t_off, 0);
            kb.lds(v_b, t_off, static_cast<std::int32_t>(s * 4));
            kb.fadd(v_a, v_a, v_b);
            kb.sts(t_off, v_a);
            div.close();
            kb.bar();
        }

        // Thread 0: sigmoid via EXP2 and reciprocal, store h[j].
        const unsigned p1 = kb.preg();
        kb.isetp(CmpOp::Eq, p1, tid, KernelBuilder::imm(0));
        const Operand sum = kb.vreg();
        const Operand e = kb.vreg();
        kb.lds(sum, t_off, 0, ifP(p1));
        kb.fmul(e, sum, KernelBuilder::fimm(-kLog2E), ifP(p1));
        kb.fexp2(e, e, ifP(p1));
        kb.fadd(e, e, KernelBuilder::fimm(1.0f), ifP(p1));
        kb.frcp(e, e, ifP(p1));

        const Operand o_addr = kb.vreg();
        kb.shl(o_addr, bid, KernelBuilder::imm(2));
        kb.iadd(o_addr, o_addr, ph);
        kb.stg(o_addr, e, 0, ifP(p1));
        kb.exit();

        return kb.finish(kBlock * 4);
    }
};

} // namespace

std::unique_ptr<Workload>
makeBackprop()
{
    return std::make_unique<Backprop>();
}

} // namespace gpr
