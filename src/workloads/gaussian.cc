/**
 * @file
 * gaussian — the Rodinia Gaussian-elimination update (Fan kernels) for one
 * pivot step: every thread (i, j) computes the multiplier
 * m = a[i][0] / a[0][0] and the eliminated element
 * out[i][j] = a[i][j] - m * a[0][j]; row 0 is copied through.  The update
 * is out-of-place, as in Rodinia's Fan2 which consumes the separately
 * produced multiplier column.  No shared memory (matching the paper's
 * Fig. 2 benchmark set).
 */

#include "workloads/workloads.hh"

#include <cmath>

#include "common/random.hh"
#include "isa/builder.hh"

namespace gpr {
namespace {

constexpr std::uint32_t kN = 64;
constexpr std::uint32_t kTile = 8;

class Gaussian : public Workload
{
  public:
    std::string_view name() const override { return "gaussian"; }
    bool usesLocalMemory() const override { return false; }

    WorkloadInstance
    build(IsaDialect dialect, const WorkloadParams& params) const override
    {
        WorkloadInstance inst;
        inst.workloadName = std::string(name());

        Rng rng(deriveSeed(params.seed, 0x6A55));
        Buffer a = inst.image.allocBuffer(kN * kN);
        Buffer out_buf = inst.image.allocBuffer(kN * kN);

        // Diagonally dominant matrix keeps the pivot well conditioned.
        std::vector<float> av(kN * kN);
        for (std::uint32_t i = 0; i < kN; ++i) {
            for (std::uint32_t j = 0; j < kN; ++j) {
                float v = rng.uniformF(-1.0f, 1.0f);
                if (i == j)
                    v += 8.0f;
                av[i * kN + j] = v;
                inst.image.setFloat(a, i * kN + j, v);
            }
        }

        ExpectedOutput out;
        out.label = "eliminated";
        out.buffer = out_buf;
        out.compare = CompareKind::FloatRelTol;
        out.tolerance = 1e-4f;
        out.golden.resize(kN * kN);
        for (std::uint32_t i = 0; i < kN; ++i) {
            for (std::uint32_t j = 0; j < kN; ++j) {
                if (i == 0) {
                    out.golden[j] = floatBits(av[j]);
                    continue;
                }
                const float m = av[i * kN] / av[0];
                const float v =
                    std::fma(-m, av[j], av[i * kN + j]);
                out.golden[i * kN + j] = floatBits(v);
            }
        }
        inst.outputs.push_back(std::move(out));

        inst.program = buildKernel(dialect);

        inst.launch.blockX = kTile;
        inst.launch.blockY = kTile;
        inst.launch.gridX = kN / kTile;
        inst.launch.gridY = kN / kTile;
        inst.launch.addParamAddr(a.byteAddr);
        inst.launch.addParamAddr(out_buf.byteAddr);
        inst.launch.addParamInt(static_cast<std::int32_t>(kN));
        return inst;
    }

  private:
    static Program
    buildKernel(IsaDialect dialect)
    {
        KernelBuilder kb("gaussian", dialect);
        const Operand tx = kb.vreg();
        const Operand ty = kb.vreg();
        const Operand bx = kb.uniformReg();
        const Operand by = kb.uniformReg();
        const Operand pa = kb.uniformReg();
        const Operand pout = kb.uniformReg();
        const Operand n = kb.uniformReg();

        kb.s2r(tx, SpecialReg::TidX);
        kb.s2r(ty, SpecialReg::TidY);
        kb.s2r(bx, SpecialReg::CtaIdX);
        kb.s2r(by, SpecialReg::CtaIdY);
        kb.ldparam(pa, 0);
        kb.ldparam(pout, 1);
        kb.ldparam(n, 2);

        const Operand i = kb.vreg();
        const Operand j = kb.vreg();
        kb.imad(i, by, KernelBuilder::imm(kTile), ty);
        kb.imad(j, bx, KernelBuilder::imm(kTile), tx);

        // Addresses of a[i][0], a[0][j], a[i][j].
        const Operand row_addr = kb.vreg(); // &a[i][0]
        kb.imul(row_addr, i, n);
        kb.shl(row_addr, row_addr, KernelBuilder::imm(2));
        kb.iadd(row_addr, row_addr, pa);

        const Operand col_addr = kb.vreg(); // &a[0][j]
        kb.shl(col_addr, j, KernelBuilder::imm(2));
        kb.iadd(col_addr, col_addr, pa);

        const Operand elem_addr = kb.vreg(); // &a[i][j]
        const Operand tmp = kb.vreg();
        kb.imad(tmp, i, n, j);
        kb.shl(tmp, tmp, KernelBuilder::imm(2));
        kb.iadd(elem_addr, tmp, pa);

        const Operand a_i0 = kb.vreg();
        const Operand a_00 = kb.vreg();
        const Operand a_0j = kb.vreg();
        const Operand a_ij = kb.vreg();
        kb.ldg(a_i0, row_addr, 0);
        kb.ldg(a_00, pa, 0);
        kb.ldg(a_0j, col_addr, 0);
        kb.ldg(a_ij, elem_addr, 0);

        // m = a[i][0] / a[0][0];  v = a[i][j] - m * a[0][j].
        const Operand m = kb.vreg();
        kb.fdiv(m, a_i0, a_00);
        const Operand v = kb.vreg();
        kb.fneg(m, m);
        kb.ffma(v, m, a_0j, a_ij);

        // Row 0 is passed through unchanged.
        const unsigned p_row0 = kb.preg();
        kb.isetp(CmpOp::Eq, p_row0, i, KernelBuilder::imm(0));
        kb.selp(v, a_ij, v, p_row0);

        const Operand o_addr = kb.vreg();
        kb.iadd(o_addr, tmp, pout);
        kb.stg(o_addr, v, 0);
        kb.exit();

        return kb.finish();
    }
};

} // namespace

std::unique_ptr<Workload>
makeGaussian()
{
    return std::make_unique<Gaussian>();
}

} // namespace gpr
