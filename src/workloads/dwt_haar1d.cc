/**
 * @file
 * dwtHaar1D — the SDK one-level 1-D Haar wavelet decomposition: each block
 * stages 2*blockDim signal samples in shared memory, then every thread
 * produces one approximation and one detail coefficient:
 *
 *     a[i] = (x[2i] + x[2i+1]) / sqrt(2)
 *     d[i] = (x[2i] - x[2i+1]) / sqrt(2)
 */

#include "workloads/workloads.hh"

#include "common/random.hh"
#include "isa/builder.hh"

namespace gpr {
namespace {

constexpr std::uint32_t kBlock = 256;
constexpr std::uint32_t kElemsPerBlock = 2 * kBlock;
constexpr std::uint32_t kBlocks = 64;
constexpr std::uint32_t kN = kElemsPerBlock * kBlocks;
constexpr float kInvSqrt2 = 0.70710678118654752440f;

class DwtHaar1D : public Workload
{
  public:
    std::string_view name() const override { return "dwtHaar1D"; }
    bool usesLocalMemory() const override { return true; }

    WorkloadInstance
    build(IsaDialect dialect, const WorkloadParams& params) const override
    {
        WorkloadInstance inst;
        inst.workloadName = std::string(name());

        Rng rng(deriveSeed(params.seed, 0xD317));
        Buffer in = inst.image.allocBuffer(kN);
        Buffer out_buf = inst.image.allocBuffer(kN);

        std::vector<float> signal(kN);
        for (std::uint32_t i = 0; i < kN; ++i) {
            signal[i] = rng.uniformF(-1.0f, 1.0f);
            inst.image.setFloat(in, i, signal[i]);
        }

        // Output layout: approx coefficients in the first half, details in
        // the second half (global index = block*kBlock + tid).
        ExpectedOutput out;
        out.label = "coefficients";
        out.buffer = out_buf;
        out.compare = CompareKind::FloatRelTol;
        out.tolerance = 1e-5f;
        out.golden.resize(kN);
        for (std::uint32_t i = 0; i < kN / 2; ++i) {
            const float x0 = signal[2 * i];
            const float x1 = signal[2 * i + 1];
            out.golden[i] = floatBits((x0 + x1) * kInvSqrt2);
            out.golden[kN / 2 + i] = floatBits((x0 - x1) * kInvSqrt2);
        }
        inst.outputs.push_back(std::move(out));

        inst.program = buildKernel(dialect);

        inst.launch.blockX = kBlock;
        inst.launch.gridX = kBlocks;
        inst.launch.addParamAddr(in.byteAddr);
        inst.launch.addParamAddr(out_buf.byteAddr);
        return inst;
    }

  private:
    static Program
    buildKernel(IsaDialect dialect)
    {
        KernelBuilder kb("dwtHaar1D", dialect);
        const Operand tid = kb.vreg();
        const Operand bid = kb.uniformReg();
        const Operand pin = kb.uniformReg();
        const Operand pout = kb.uniformReg();

        kb.s2r(tid, SpecialReg::TidX);
        kb.s2r(bid, SpecialReg::CtaIdX);
        kb.ldparam(pin, 0);
        kb.ldparam(pout, 1);

        // Stage 2 samples per thread into shared memory (coalesced reads:
        // thread t loads x[t] and x[t + kBlock] of the block's chunk).
        const Operand base = kb.uniformReg();
        kb.imul(base, bid, KernelBuilder::imm(kElemsPerBlock * 4));
        kb.iadd(base, base, pin);

        const Operand t_off = kb.vreg();
        kb.shl(t_off, tid, KernelBuilder::imm(2));
        const Operand g_addr = kb.vreg();
        kb.iadd(g_addr, base, t_off);

        const Operand v = kb.vreg();
        kb.ldg(v, g_addr, 0);
        kb.sts(t_off, v, 0);
        kb.ldg(v, g_addr, kBlock * 4);
        kb.sts(t_off, v, kBlock * 4);
        kb.bar();

        // Each thread reads its pair x[2t], x[2t+1] from shared memory.
        const Operand pair_off = kb.vreg(); // 2*tid*4
        kb.shl(pair_off, tid, KernelBuilder::imm(3));
        const Operand x0 = kb.vreg();
        const Operand x1 = kb.vreg();
        kb.lds(x0, pair_off, 0);
        kb.lds(x1, pair_off, 4);

        const Operand approx = kb.vreg();
        const Operand detail = kb.vreg();
        kb.fadd(approx, x0, x1);
        kb.fmul(approx, approx, KernelBuilder::fimm(kInvSqrt2));
        kb.fsub(detail, x0, x1);
        kb.fmul(detail, detail, KernelBuilder::fimm(kInvSqrt2));

        // out[bid*kBlock + tid] = approx;
        // out[kN/2 + bid*kBlock + tid] = detail.
        const Operand o_base = kb.uniformReg();
        kb.imul(o_base, bid, KernelBuilder::imm(kBlock * 4));
        kb.iadd(o_base, o_base, pout);
        const Operand o_addr = kb.vreg();
        kb.iadd(o_addr, o_base, t_off);
        kb.stg(o_addr, approx, 0);
        kb.stg(o_addr, detail, (kN / 2) * 4);
        kb.exit();

        return kb.finish(kElemsPerBlock * 4);
    }
};

} // namespace

std::unique_ptr<Workload>
makeDwtHaar1D()
{
    return std::make_unique<DwtHaar1D>();
}

} // namespace gpr
