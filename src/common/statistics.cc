#include "common/statistics.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace gpr {

void
RunningStat::push(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
inverseNormalCdf(double p)
{
    GPR_ASSERT(p > 0.0 && p < 1.0, "inverseNormalCdf domain is (0,1)");

    // Acklam's algorithm.
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};

    const double p_low = 0.02425;
    const double p_high = 1 - p_low;
    double q, r, x;

    if (p < p_low) {
        q = std::sqrt(-2 * std::log(p));
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
    } else if (p <= p_high) {
        q = p - 0.5;
        r = q * q;
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
             a[5]) *
            q /
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
    } else {
        q = std::sqrt(-2 * std::log(1 - p));
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
              c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
    }
    return x;
}

double
normalQuantileTwoSided(double confidence)
{
    GPR_ASSERT(confidence > 0.0 && confidence < 1.0,
               "confidence must be in (0,1)");
    return inverseNormalCdf(0.5 + confidence / 2.0);
}

double
proportionErrorMargin(std::size_t n, double confidence)
{
    GPR_ASSERT(n > 0, "need at least one sample");
    const double z = normalQuantileTwoSided(confidence);
    return z * std::sqrt(0.25 / static_cast<double>(n));
}

double
proportionErrorMargin(double p_hat, std::size_t n, double confidence)
{
    GPR_ASSERT(n > 0, "need at least one sample");
    GPR_ASSERT(p_hat >= 0.0 && p_hat <= 1.0, "p_hat must be a proportion");
    const double z = normalQuantileTwoSided(confidence);
    return z * std::sqrt(p_hat * (1.0 - p_hat) / static_cast<double>(n));
}

std::size_t
requiredSamples(double margin, double confidence)
{
    GPR_ASSERT(margin > 0.0 && margin < 1.0, "margin must be in (0,1)");
    const double z = normalQuantileTwoSided(confidence);
    return static_cast<std::size_t>(std::ceil(z * z * 0.25 /
                                              (margin * margin)));
}

Interval
wilsonInterval(std::size_t successes, std::size_t n, double confidence)
{
    GPR_ASSERT(n > 0, "need at least one sample");
    GPR_ASSERT(successes <= n, "successes cannot exceed samples");
    const double z = normalQuantileTwoSided(confidence);
    const double nn = static_cast<double>(n);
    const double p = static_cast<double>(successes) / nn;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / nn;
    const double centre = p + z2 / (2.0 * nn);
    const double half = z * std::sqrt(p * (1.0 - p) / nn +
                                      z2 / (4.0 * nn * nn));
    Interval iv;
    iv.lo = std::max(0.0, (centre - half) / denom);
    iv.hi = std::min(1.0, (centre + half) / denom);
    return iv;
}

double
pearsonCorrelation(const std::vector<double>& xs,
                   const std::vector<double>& ys)
{
    GPR_ASSERT(xs.size() == ys.size(), "series must have equal length");
    const std::size_t n = xs.size();
    if (n < 2)
        return 0.0;

    double mx = 0.0, my = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        mx += xs[i];
        my += ys[i];
    }
    mx /= static_cast<double>(n);
    my /= static_cast<double>(n);

    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

} // namespace gpr
