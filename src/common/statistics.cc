#include "common/statistics.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace gpr {

void
RunningStat::push(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
inverseNormalCdf(double p)
{
    GPR_ASSERT(p > 0.0 && p < 1.0, "inverseNormalCdf domain is (0,1)");

    // Acklam's algorithm.
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};

    const double p_low = 0.02425;
    const double p_high = 1 - p_low;
    double q, r, x;

    if (p < p_low) {
        q = std::sqrt(-2 * std::log(p));
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
    } else if (p <= p_high) {
        q = p - 0.5;
        r = q * q;
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
             a[5]) *
            q /
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
    } else {
        q = std::sqrt(-2 * std::log(1 - p));
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
              c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
    }
    return x;
}

double
normalQuantileTwoSided(double confidence)
{
    GPR_ASSERT(confidence > 0.0 && confidence < 1.0,
               "confidence must be in (0,1)");
    return inverseNormalCdf(0.5 + confidence / 2.0);
}

double
proportionErrorMargin(std::size_t n, double confidence)
{
    GPR_ASSERT(n > 0, "need at least one sample");
    const double z = normalQuantileTwoSided(confidence);
    return z * std::sqrt(0.25 / static_cast<double>(n));
}

double
proportionErrorMargin(double p_hat, std::size_t n, double confidence)
{
    GPR_ASSERT(n > 0, "need at least one sample");
    GPR_ASSERT(p_hat >= 0.0 && p_hat <= 1.0, "p_hat must be a proportion");
    const double z = normalQuantileTwoSided(confidence);
    return z * std::sqrt(p_hat * (1.0 - p_hat) / static_cast<double>(n));
}

std::size_t
requiredSamples(double margin, double confidence)
{
    GPR_ASSERT(margin > 0.0 && margin < 1.0, "margin must be in (0,1)");
    const double z = normalQuantileTwoSided(confidence);
    return static_cast<std::size_t>(std::ceil(z * z * 0.25 /
                                              (margin * margin)));
}

Interval
wilsonInterval(std::size_t successes, std::size_t n, double confidence)
{
    GPR_ASSERT(successes <= n, "successes cannot exceed samples");
    if (n == 0)
        return Interval{0.0, 1.0}; // no data: the vacuous interval
    const double z = normalQuantileTwoSided(confidence);
    const double nn = static_cast<double>(n);
    const double p = static_cast<double>(successes) / nn;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / nn;
    const double centre = p + z2 / (2.0 * nn);
    const double half = z * std::sqrt(p * (1.0 - p) / nn +
                                      z2 / (4.0 * nn * nn));
    Interval iv;
    // Pin the bounds exactly at the degenerate counts — floating-point
    // cancellation otherwise leaves ~1e-17 residue where the bound is
    // analytically 0 (k = 0) or 1 (k = n).
    iv.lo = successes == 0 ? 0.0
                           : std::max(0.0, (centre - half) / denom);
    iv.hi = successes == n ? 1.0
                           : std::min(1.0, (centre + half) / denom);
    return iv;
}

namespace {

/** Continued fraction for the incomplete beta (Lentz's method). */
double
betaContinuedFraction(double a, double b, double x)
{
    constexpr int kMaxIterations = 300;
    constexpr double kEpsilon = 3e-16;
    constexpr double kTiny = 1e-300;

    const double qab = a + b;
    const double qap = a + 1.0;
    const double qam = a - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::abs(d) < kTiny)
        d = kTiny;
    d = 1.0 / d;
    double h = d;
    for (int m = 1; m <= kMaxIterations; ++m) {
        const double m2 = 2.0 * m;
        double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::abs(d) < kTiny)
            d = kTiny;
        c = 1.0 + aa / c;
        if (std::abs(c) < kTiny)
            c = kTiny;
        d = 1.0 / d;
        h *= d * c;
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::abs(d) < kTiny)
            d = kTiny;
        c = 1.0 + aa / c;
        if (std::abs(c) < kTiny)
            c = kTiny;
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::abs(del - 1.0) < kEpsilon)
            break;
    }
    return h;
}

} // namespace

double
incompleteBetaRegularized(double a, double b, double x)
{
    GPR_ASSERT(a > 0.0 && b > 0.0, "beta parameters must be positive");
    GPR_ASSERT(x >= 0.0 && x <= 1.0, "incomplete beta domain is [0,1]");
    if (x <= 0.0)
        return 0.0;
    if (x >= 1.0)
        return 1.0;
    const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                            std::lgamma(b) + a * std::log(x) +
                            b * std::log1p(-x);
    const double front = std::exp(ln_front);
    // The continued fraction converges fast for x < (a+1)/(a+b+2);
    // otherwise use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a).
    if (x < (a + 1.0) / (a + b + 2.0))
        return front * betaContinuedFraction(a, b, x) / a;
    return 1.0 - front * betaContinuedFraction(b, a, 1.0 - x) / b;
}

double
betaQuantile(double p, double a, double b)
{
    GPR_ASSERT(p >= 0.0 && p <= 1.0, "quantile domain is [0,1]");
    GPR_ASSERT(a > 0.0 && b > 0.0, "beta parameters must be positive");
    if (p <= 0.0)
        return 0.0;
    if (p >= 1.0)
        return 1.0;
    // Bisection: ~100 halvings reach full double resolution, the CDF is
    // monotone, and this path is far from any hot loop.
    double lo = 0.0, hi = 1.0;
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (incompleteBetaRegularized(a, b, mid) < p)
            lo = mid;
        else
            hi = mid;
        if (hi - lo <= 1e-15 * std::max(1.0, std::abs(lo)))
            break;
    }
    return 0.5 * (lo + hi);
}

Interval
clopperPearsonInterval(std::size_t successes, std::size_t n,
                       double confidence)
{
    GPR_ASSERT(successes <= n, "successes cannot exceed samples");
    if (n == 0)
        return Interval{0.0, 1.0}; // no data: the vacuous interval
    const double alpha = 1.0 - confidence;
    const double k = static_cast<double>(successes);
    const double nn = static_cast<double>(n);
    Interval iv;
    iv.lo = successes == 0
                ? 0.0
                : betaQuantile(alpha / 2.0, k, nn - k + 1.0);
    iv.hi = successes == n
                ? 1.0
                : betaQuantile(1.0 - alpha / 2.0, k + 1.0, nn - k);
    iv.lo = std::max(0.0, iv.lo);
    iv.hi = std::min(1.0, iv.hi);
    return iv;
}

double
fixedOrderSum(const double* xs, std::size_t n)
{
    NeumaierSum sum;
    for (std::size_t i = 0; i < n; ++i)
        sum.add(xs[i]);
    return sum.value();
}

double
fixedOrderSum(const std::vector<double>& xs)
{
    return fixedOrderSum(xs.data(), xs.size());
}

double
pearsonCorrelation(const std::vector<double>& xs,
                   const std::vector<double>& ys)
{
    GPR_ASSERT(xs.size() == ys.size(), "series must have equal length");
    const std::size_t n = xs.size();
    if (n < 2)
        return 0.0;

    const double mx = fixedOrderSum(xs) / static_cast<double>(n);
    const double my = fixedOrderSum(ys) / static_cast<double>(n);

    NeumaierSum sxy, sxx, syy;
    for (std::size_t i = 0; i < n; ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy.add(dx * dy);
        sxx.add(dx * dx);
        syy.add(dy * dy);
    }
    if (sxx.value() <= 0.0 || syy.value() <= 0.0)
        return 0.0;
    return sxy.value() / std::sqrt(sxx.value() * syy.value());
}

} // namespace gpr
