#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace gpr {
namespace {

std::mutex log_mutex;
std::atomic<bool> inform_enabled{true};

} // namespace

namespace detail {

void
logMessage(const char* level, const std::string& msg)
{
    if (std::string_view(level) == "info" &&
        !inform_enabled.load(std::memory_order_relaxed)) {
        return;
    }
    std::lock_guard<std::mutex> lock(log_mutex);
    std::fprintf(stderr, "[%s] %s\n", level, msg.c_str());
    std::fflush(stderr);
}

} // namespace detail

void
setInformEnabled(bool enabled)
{
    inform_enabled.store(enabled, std::memory_order_relaxed);
}

} // namespace gpr
