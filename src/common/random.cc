#include "common/random.hh"

namespace gpr {

std::uint64_t
deriveSeed(std::uint64_t root_seed, std::uint64_t stream_id)
{
    SplitMix64 sm(root_seed ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1)));
    // Burn one output so adjacent stream ids decorrelate fully.
    sm.next();
    return sm.next();
}

} // namespace gpr
