/**
 * @file
 * A cheap 64-bit state-hash accumulator used to fingerprint simulator
 * state along a run's trajectory (the checkpoint-restore injection
 * engine compares these fingerprints against the golden run's to detect
 * state convergence).
 *
 * The construction is an xxHash-style round — XOR, *rotate*, multiply —
 * with a splitmix64 finaliser.  The rotation is load-bearing: a plain
 * XOR-multiply chain is triangular modulo 2^64 (output bit i depends
 * only on input bits <= i), so two single-bit differences near bit 63 —
 * exactly what a bit flip and the register that loaded it produce —
 * stay confined to a couple of top bits and can cancel with probability
 * ~1/4.  Rotating after each absorption diffuses high bits down, making
 * cancellation require a full 64-bit coincidence.  Word arrays are
 * folded four lanes at a time so the multiply latency chain does not
 * bottleneck hashing megabyte-sized register files.  This is a
 * fingerprint, not a cryptographic hash: a collision mis-classifies one
 * injection, and at 64 bits the chance of any collision across even a
 * billion-injection study is ~1e-10.
 */

#ifndef GPR_COMMON_HASH_HH
#define GPR_COMMON_HASH_HH

#include <cstddef>
#include <cstdint>

namespace gpr {

class StateHash
{
  public:
    /** Fold one 64-bit value into the running state. */
    void
    mix(std::uint64_t v)
    {
        h_ = round(h_, v);
    }

    /** Fold a 32-bit word array (storage contents, memory images). */
    void
    mixWords(const std::uint32_t* w, std::size_t n)
    {
        mix(n);
        std::uint64_t a = h_ ^ 0x9e3779b97f4a7c15ULL;
        std::uint64_t b = h_ ^ 0xbf58476d1ce4e5b9ULL;
        std::uint64_t c = h_ ^ 0x94d049bb133111ebULL;
        std::uint64_t d = h_ ^ 0x2545f4914f6cdd1dULL;
        std::size_t i = 0;
        for (; i + 8 <= n; i += 8) {
            a = round(a, pack(w[i + 0], w[i + 1]));
            b = round(b, pack(w[i + 2], w[i + 3]));
            c = round(c, pack(w[i + 4], w[i + 5]));
            d = round(d, pack(w[i + 6], w[i + 7]));
        }
        for (; i < n; ++i)
            a = round(a, w[i]);
        mix(a);
        mix(b);
        mix(c);
        mix(d);
    }

    /**
     * Standalone finalised digest of a word array under @p salt — the
     * page-digest primitive of the dirty-page incremental hash (see
     * sim/state_page.hh).  Equivalent to mixWords on a fresh accumulator
     * seeded with the salt, so it shares the 4-lane × 8-words-per-round
     * batching and the rotate's diffusion guarantees.
     */
    static std::uint64_t
    wordsDigest(const std::uint32_t* w, std::size_t n, std::uint64_t salt)
    {
        StateHash h;
        h.mix(salt);
        h.mixWords(w, n);
        return h.value();
    }

    /** Finalised digest (the accumulator itself stays unperturbed). */
    std::uint64_t
    value() const
    {
        // splitmix64 finaliser: diffuses the low-entropy high bits the
        // multiplicative core leaves behind.
        std::uint64_t z = h_;
        z ^= z >> 30;
        z *= 0xbf58476d1ce4e5b9ULL;
        z ^= z >> 27;
        z *= 0x94d049bb133111ebULL;
        z ^= z >> 31;
        return z;
    }

  private:
    static constexpr std::uint64_t kMul = 0x100000001b3ULL; // FNV prime

    /** One absorption: XOR, rotate (high bits reach low positions so
     *  the multiply can spread them again — see the file comment),
     *  multiply. */
    static std::uint64_t
    round(std::uint64_t acc, std::uint64_t v)
    {
        const std::uint64_t x = acc ^ v;
        return ((x << 27) | (x >> 37)) * kMul;
    }

    static std::uint64_t
    pack(std::uint32_t lo, std::uint32_t hi)
    {
        return static_cast<std::uint64_t>(lo) |
               (static_cast<std::uint64_t>(hi) << 32);
    }

    std::uint64_t h_ = 0xcbf29ce484222325ULL; // FNV offset basis
};

} // namespace gpr

#endif // GPR_COMMON_HASH_HH
