/**
 * @file
 * Fundamental type aliases shared across the project.
 */

#ifndef GPR_COMMON_TYPES_HH
#define GPR_COMMON_TYPES_HH

#include <cstdint>

namespace gpr {

/** Simulation cycle count (shader-clock domain). */
using Cycle = std::uint64_t;

/** Byte address into a memory space (global, shared, parameter). */
using Addr = std::uint64_t;

/** 32-bit architectural word — the granularity of registers and LDS words. */
using Word = std::uint32_t;

/** Index of a register within a register file (file-relative, not per-thread). */
using RegIndex = std::uint32_t;

/** Index of a bit within a storage structure. */
using BitIndex = std::uint64_t;

/** Identifies a streaming multiprocessor / compute unit on the device. */
using SmId = std::uint32_t;

/** Identifies a hardware warp/wavefront slot within an SM. */
using WarpSlot = std::uint32_t;

} // namespace gpr

#endif // GPR_COMMON_TYPES_HH
