/**
 * @file
 * Small string helpers used mainly by the assembler and report writers.
 */

#ifndef GPR_COMMON_STRING_UTILS_HH
#define GPR_COMMON_STRING_UTILS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gpr {

/** Strip leading/trailing whitespace. */
std::string_view trim(std::string_view s);

/** Split on @p delim, trimming each piece; empty pieces are kept. */
std::vector<std::string> split(std::string_view s, char delim);

/** Split on arbitrary whitespace; empty pieces are dropped. */
std::vector<std::string> splitWhitespace(std::string_view s);

/** True if @p s starts with @p prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** ASCII lowercase copy. */
std::string toLower(std::string_view s);

/** ASCII uppercase copy. */
std::string toUpper(std::string_view s);

/**
 * Parse a signed integer with optional 0x/0b prefix; nullopt on any
 * trailing garbage or overflow.
 */
std::optional<std::int64_t> parseInt(std::string_view s);

/** Parse a double; nullopt on trailing garbage. */
std::optional<double> parseDouble(std::string_view s);

/** printf-style formatting into std::string. */
std::string strprintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Human-readable engineering notation, e.g. 1.23e+14. */
std::string sciNotation(double v, int digits = 2);

} // namespace gpr

#endif // GPR_COMMON_STRING_UTILS_HH
