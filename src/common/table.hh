/**
 * @file
 * Plain-text and CSV table rendering for benchmark harness output.
 *
 * Every figure-reproducing bench prints its series through TextTable so the
 * rows match the paper's figures one-to-one and can be diffed / re-plotted.
 */

#ifndef GPR_COMMON_TABLE_HH
#define GPR_COMMON_TABLE_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace gpr {

/** Column alignment inside a TextTable. */
enum class Align { Left, Right };

/**
 * A simple monospace table: set headers, add rows of strings, render.
 * Cells are stored as strings; numeric formatting is the caller's job
 * (keeps the dependency surface tiny).
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    /** Add one row; must have exactly as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Set per-column alignment (default: first column left, rest right). */
    void setAlign(std::size_t col, Align align);

    /** Render with box-drawing separators. */
    void render(std::ostream& os) const;

    /** Render as CSV (RFC-4180-ish quoting). */
    void renderCsv(std::ostream& os) const;

    std::size_t rowCount() const { return rows_.size(); }
    std::size_t columnCount() const { return headers_.size(); }

  private:
    static std::string csvEscape(const std::string& cell);

    std::vector<std::string> headers_;
    std::vector<Align> aligns_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace gpr

#endif // GPR_COMMON_TABLE_HH
