#include "common/worker_pool.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gpr {
namespace {

thread_local bool tls_on_worker_thread = false;

} // namespace

WorkerPool::WorkerPool(unsigned jobs)
{
    if (jobs == 0)
        jobs = std::max(1u, std::thread::hardware_concurrency());
    threads_.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t)
        threads_.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto& t : threads_)
        t.join();
}

void
WorkerPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        GPR_ASSERT(!stop_, "submit() on a stopped pool");
        queue_.push_back(std::move(task));
    }
    wake_.notify_one();
}

void
WorkerPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

bool
WorkerPool::onWorkerThread()
{
    return tls_on_worker_thread;
}

void
WorkerPool::workerLoop()
{
    tls_on_worker_thread = true;
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --active_;
            if (queue_.empty() && active_ == 0)
                idle_.notify_all();
        }
    }
}

WorkerPool&
sharedWorkerPool()
{
    // Magic-static init is thread-safe; all post-init state is behind
    // the pool's own lock.
    // gpr:guarded_by(WorkerPool::mutex_)
    static WorkerPool pool;
    return pool;
}

} // namespace gpr
