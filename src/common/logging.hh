/**
 * @file
 * Error-reporting and logging primitives, following the gem5 convention:
 *
 *  - panic():  something happened that should never happen regardless of
 *              user input — an internal bug.  Aborts (throws PanicError so
 *              tests can observe it; the default terminate handler aborts).
 *  - fatal():  the run cannot continue because of a *user* error (bad
 *              configuration, malformed assembly, ...).  Throws FatalError.
 *  - warn()/inform(): non-fatal status messages on stderr.
 *
 * Simulation traps caused by injected faults are NOT errors and never go
 * through these functions; they are reported as data (see sim/trap.hh).
 */

#ifndef GPR_COMMON_LOGGING_HH
#define GPR_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace gpr {

/** Thrown by panic(); indicates an internal invariant violation (a bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string& msg) : std::logic_error(msg) {}
};

/** Thrown by fatal(); indicates a user/configuration error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& msg) : std::runtime_error(msg) {}
};

namespace detail {

void logMessage(const char* level, const std::string& msg);

template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Report an internal bug and abort the current operation. */
template <typename... Args>
[[noreturn]] void
panic(Args&&... args)
{
    std::string msg = detail::concat(std::forward<Args>(args)...);
    detail::logMessage("panic", msg);
    throw PanicError(msg);
}

/** Report an unrecoverable user error. */
template <typename... Args>
[[noreturn]] void
fatal(Args&&... args)
{
    std::string msg = detail::concat(std::forward<Args>(args)...);
    detail::logMessage("fatal", msg);
    throw FatalError(msg);
}

/** Report a suspicious-but-survivable condition. */
template <typename... Args>
void
warn(Args&&... args)
{
    detail::logMessage("warn", detail::concat(std::forward<Args>(args)...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args&&... args)
{
    detail::logMessage("info", detail::concat(std::forward<Args>(args)...));
}

/** Enable/disable inform() output (benchmarks silence it). */
void setInformEnabled(bool enabled);

/**
 * Internal invariant check.  Unlike assert(), stays on in release builds:
 * reliability numbers must never be produced by a silently-broken simulator.
 */
#define GPR_ASSERT(cond, ...)                                                \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::gpr::panic("assertion '", #cond, "' failed at ", __FILE__,     \
                         ":", __LINE__, " ", ##__VA_ARGS__);                 \
        }                                                                    \
    } while (0)

} // namespace gpr

#endif // GPR_COMMON_LOGGING_HH
