/**
 * @file
 * Bit-manipulation helpers used by storage models and the fault injector.
 */

#ifndef GPR_COMMON_BITUTILS_HH
#define GPR_COMMON_BITUTILS_HH

#include <cstdint>
#include <cstring>

#include "common/types.hh"

namespace gpr {

/** Flip bit @p bit (0 = LSB) of @p w. */
constexpr Word
flipBit(Word w, unsigned bit)
{
    return w ^ (Word{1} << (bit & 31u));
}

/** Extract bit @p bit of @p w. */
constexpr bool
getBit(Word w, unsigned bit)
{
    return (w >> (bit & 31u)) & 1u;
}

/** Set bit @p bit of @p w to @p value. */
constexpr Word
setBit(Word w, unsigned bit, bool value)
{
    const Word mask = Word{1} << (bit & 31u);
    return value ? (w | mask) : (w & ~mask);
}

/** Population count. */
constexpr unsigned
popcount(Word w)
{
    return static_cast<unsigned>(__builtin_popcountll(w));
}

/** Integer ceiling division. */
template <typename T>
constexpr T
ceilDiv(T a, T b)
{
    return (a + b - 1) / b;
}

/** Round @p a up to the next multiple of @p b. */
template <typename T>
constexpr T
roundUp(T a, T b)
{
    return ceilDiv(a, b) * b;
}

/** Reinterpret a float's bits as a Word (type-pun via memcpy). */
inline Word
floatBits(float f)
{
    static_assert(sizeof(Word) == sizeof(float), "Word/float size mismatch");
    Word w;
    std::memcpy(&w, &f, sizeof(w));
    return w;
}

/** Reinterpret a Word as float. */
inline float
wordToFloat(Word w)
{
    float f;
    std::memcpy(&f, &w, sizeof(f));
    return f;
}

} // namespace gpr

#endif // GPR_COMMON_BITUTILS_HH
