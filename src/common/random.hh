/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Campaigns must be reproducible across runs and independent of thread
 * scheduling, so every injection derives its own generator from
 * (campaign seed, injection index) via SplitMix64.  The main generator is
 * xoshiro256** (public domain, Blackman & Vigna), which is fast and has
 * excellent statistical quality for Monte-Carlo sampling.
 */

#ifndef GPR_COMMON_RANDOM_HH
#define GPR_COMMON_RANDOM_HH

#include <cstdint>

#include "common/logging.hh"

namespace gpr {

/** SplitMix64 — used for seeding / deriving independent streams. */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state_;
};

/**
 * xoshiro256** PRNG.
 *
 * Satisfies the essentials of UniformRandomBitGenerator so it can be used
 * with <random> distributions, though we provide bias-free bounded draws
 * directly (Lemire's method) for the hot paths.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed)
    {
        SplitMix64 sm(seed);
        for (auto& s : state_)
            s = sm.next();
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    result_type
    operator()()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound) without modulo bias (Lemire). */
    std::uint64_t
    below(std::uint64_t bound)
    {
        GPR_ASSERT(bound > 0, "below() needs a positive bound");
        // 128-bit multiply rejection sampling.
        std::uint64_t x = (*this)();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        std::uint64_t l = static_cast<std::uint64_t>(m);
        if (l < bound) {
            std::uint64_t threshold = (-bound) % bound;
            while (l < threshold) {
                x = (*this)();
                m = static_cast<__uint128_t>(x) * bound;
                l = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        GPR_ASSERT(lo <= hi, "between() needs lo <= hi");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform float in [lo, hi) — convenience for input generators. */
    float
    uniformF(float lo, float hi)
    {
        return static_cast<float>(uniform(lo, hi));
    }

    /** Derive an independent child generator (stable w.r.t. call order). */
    Rng
    derive(std::uint64_t stream_id) const
    {
        SplitMix64 sm(state_[0] ^ (0xa0761d6478bd642fULL * (stream_id + 1)));
        return Rng(sm.next());
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

/** Derive a 64-bit seed for stream @p stream_id from @p root_seed. */
std::uint64_t deriveSeed(std::uint64_t root_seed, std::uint64_t stream_id);

} // namespace gpr

#endif // GPR_COMMON_RANDOM_HH
