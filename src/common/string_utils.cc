#include "common/string_utils.hh"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace gpr {

std::string_view
trim(std::string_view s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string>
split(std::string_view s, char delim)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = s.find(delim, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(trim(s.substr(start)));
            break;
        }
        out.emplace_back(trim(s.substr(start, pos - start)));
        start = pos + 1;
    }
    return out;
}

std::vector<std::string>
splitWhitespace(std::string_view s)
{
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
        }
        std::size_t start = i;
        while (i < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
        }
        if (i > start)
            out.emplace_back(s.substr(start, i - start));
    }
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (auto& c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::string
toUpper(std::string_view s)
{
    std::string out(s);
    for (auto& c : out)
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    return out;
}

std::optional<std::int64_t>
parseInt(std::string_view sv)
{
    sv = trim(sv);
    if (sv.empty())
        return std::nullopt;

    std::string s(sv);
    bool negative = false;
    std::size_t idx = 0;
    if (s[idx] == '+' || s[idx] == '-') {
        negative = (s[idx] == '-');
        ++idx;
    }
    if (idx >= s.size())
        return std::nullopt;

    int base = 10;
    if (s.size() - idx > 2 && s[idx] == '0' &&
        (s[idx + 1] == 'x' || s[idx + 1] == 'X')) {
        base = 16;
        idx += 2;
    } else if (s.size() - idx > 2 && s[idx] == '0' &&
               (s[idx + 1] == 'b' || s[idx + 1] == 'B')) {
        base = 2;
        idx += 2;
    }

    errno = 0;
    char* end = nullptr;
    const unsigned long long mag =
        std::strtoull(s.c_str() + idx, &end, base);
    if (errno != 0 || end == s.c_str() + idx || *end != '\0')
        return std::nullopt;
    if (!negative && mag > 0x7fffffffffffffffULL)
        return std::nullopt;
    if (negative && mag > 0x8000000000000000ULL)
        return std::nullopt;
    return negative ? -static_cast<std::int64_t>(mag)
                    : static_cast<std::int64_t>(mag);
}

std::optional<double>
parseDouble(std::string_view sv)
{
    sv = trim(sv);
    if (sv.empty())
        return std::nullopt;
    std::string s(sv);
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (errno != 0 || end == s.c_str() || *end != '\0')
        return std::nullopt;
    return v;
}

std::string
strprintf(const char* fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args2;
    va_copy(args2, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<std::size_t>(needed));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
    }
    va_end(args2);
    return out;
}

std::string
sciNotation(double v, int digits)
{
    return strprintf("%.*e", digits, v);
}

} // namespace gpr
