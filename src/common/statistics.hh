/**
 * @file
 * Statistics helpers for statistical fault injection.
 *
 * The paper (footnote 4) sizes its campaigns with the classic formula for
 * the error margin of an estimated proportion at a given confidence level
 * (Leveugle et al., DATE 2009): 2,000 injections per structure give a
 * 2.88 % margin at 99 % confidence when no fault-population correction is
 * applied and p is conservatively taken as 0.5.  sampling.hh in
 * src/reliability builds on these primitives.
 */

#ifndef GPR_COMMON_STATISTICS_HH
#define GPR_COMMON_STATISTICS_HH

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace gpr {

/** Welford online accumulator for mean / variance / extrema. */
class RunningStat
{
  public:
    void push(double x);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    /** Sample variance (n-1 denominator). */
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Two-sided normal quantile z for confidence level @p confidence
 * (e.g. 0.99 -> 2.5758).  Uses the Acklam rational approximation of the
 * inverse normal CDF (|relative error| < 1.15e-9).
 */
double normalQuantileTwoSided(double confidence);

/** Inverse standard normal CDF Phi^{-1}(p), p in (0,1). */
double inverseNormalCdf(double p);

/**
 * Error margin (half-width of the confidence interval) for an estimated
 * proportion with @p n samples at @p confidence, using the conservative
 * p = 0.5 (worst case), i.e.  e = z * sqrt(0.25 / n).
 */
double proportionErrorMargin(std::size_t n, double confidence);

/**
 * Error margin for a *measured* proportion @p p_hat with @p n samples
 * (normal / Wald approximation).
 */
double proportionErrorMargin(double p_hat, std::size_t n, double confidence);

/**
 * Number of samples needed for error margin @p margin at @p confidence,
 * conservative p = 0.5:  n = z^2 * 0.25 / e^2, rounded up.
 */
std::size_t requiredSamples(double margin, double confidence);

/**
 * Wilson score interval for a proportion: better behaved than Wald for
 * p near 0 or 1 (common for masked-dominated campaigns).
 */
struct Interval
{
    double lo = 0.0;
    double hi = 0.0;
    double width() const { return hi - lo; }
};

Interval wilsonInterval(std::size_t successes, std::size_t n,
                        double confidence);

/**
 * Clopper–Pearson ("exact") interval: inverts the binomial CDF, so its
 * coverage is >= the nominal confidence for every (n, p) — the
 * verification-grade interval the property tests check Wilson against.
 */
Interval clopperPearsonInterval(std::size_t successes, std::size_t n,
                                double confidence);

/** Regularized incomplete beta function I_x(a, b), a,b > 0, x in [0,1]. */
double incompleteBetaRegularized(double a, double b, double x);

/** Quantile of the Beta(a, b) distribution: x with I_x(a, b) = p. */
double betaQuantile(double p, double a, double b);

/**
 * Neumaier-compensated left-to-right accumulator — the repository's
 * fixed-order float reducer (lint rule D5).  Floating-point addition is
 * not associative, so any reduction whose order is implicit (container
 * iteration, parallel merge completion order) can change its low bits
 * between runs and break bit-identity gates.  Routing sums through this
 * class makes the order an explicit property of the call sequence, and
 * the compensation term removes the incentive to regroup for accuracy.
 */
class NeumaierSum
{
  public:
    void
    add(double x)
    {
        const double t = sum_ + x;
        // The smaller-magnitude operand's lost low bits.
        if (std::abs(sum_) >= std::abs(x))
            comp_ += (sum_ - t) + x;
        else
            comp_ += (x - t) + sum_;
        sum_ = t;
    }

    double value() const { return sum_ + comp_; }

  private:
    double sum_ = 0.0;
    double comp_ = 0.0;
};

/** Compensated sum of @p xs in index order — the fixed-order reduction
 *  every statistics path must use for float series (lint rule D5). */
double fixedOrderSum(const double* xs, std::size_t n);
double fixedOrderSum(const std::vector<double>& xs);

/** Pearson correlation of two equally-sized series (0 if degenerate). */
double pearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

} // namespace gpr

#endif // GPR_COMMON_STATISTICS_HH
