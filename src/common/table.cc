#include "common/table.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gpr {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    GPR_ASSERT(!headers_.empty(), "a table needs at least one column");
    aligns_.assign(headers_.size(), Align::Right);
    aligns_[0] = Align::Left;
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    GPR_ASSERT(cells.size() == headers_.size(),
               "row width ", cells.size(), " != header width ",
               headers_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::setAlign(std::size_t col, Align align)
{
    GPR_ASSERT(col < aligns_.size(), "column out of range");
    aligns_[col] = align;
}

void
TextTable::render(std::ostream& os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string>& cells) {
        os << '|';
        for (std::size_t c = 0; c < cells.size(); ++c) {
            const std::size_t pad = widths[c] - cells[c].size();
            os << ' ';
            if (aligns_[c] == Align::Right)
                os << std::string(pad, ' ') << cells[c];
            else
                os << cells[c] << std::string(pad, ' ');
            os << " |";
        }
        os << '\n';
    };

    auto emit_sep = [&]() {
        os << '+';
        for (std::size_t c = 0; c < widths.size(); ++c)
            os << std::string(widths[c] + 2, '-') << '+';
        os << '\n';
    };

    emit_sep();
    emit_row(headers_);
    emit_sep();
    for (const auto& row : rows_)
        emit_row(row);
    emit_sep();
}

std::string
TextTable::csvEscape(const std::string& cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"')
            out += "\"\"";
        else
            out += ch;
    }
    out += '"';
    return out;
}

void
TextTable::renderCsv(std::ostream& os) const
{
    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ',';
            os << csvEscape(cells[c]);
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto& row : rows_)
        emit(row);
}

} // namespace gpr
