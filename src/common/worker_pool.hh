/**
 * @file
 * A persistent pool of worker threads draining one task queue — shared
 * by the study orchestrator and by standalone campaigns.
 *
 * The process-wide sharedWorkerPool() exists so every direct
 * runCampaign() call (examples, benches, tests) reuses one set of
 * threads instead of spawning a fresh pool per campaign: before, a
 * sweep like examples/ace_vs_fi.cc created and joined
 * hardware_concurrency threads once per sample size, and concurrent
 * campaigns oversubscribed the machine.
 */

#ifndef GPR_COMMON_WORKER_POOL_HH
#define GPR_COMMON_WORKER_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gpr {

/**
 * A persistent pool of worker threads draining one task queue.  Tasks
 * may be submitted from any thread; waitIdle() blocks until the queue is
 * empty and every worker is idle, so one pool can serve several waves of
 * tasks (golden runs, then shards) without re-spawning threads.
 */
class WorkerPool
{
  public:
    /** @p jobs worker threads; 0 = hardware concurrency. */
    explicit WorkerPool(unsigned jobs = 0);
    ~WorkerPool();

    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

    void submit(std::function<void()> task);
    /** Block until all submitted tasks have finished. */
    void waitIdle();

    unsigned size() const { return static_cast<unsigned>(threads_.size()); }

    /**
     * True when the calling thread is a worker of *any* WorkerPool.
     * Code that would block waiting on pool tasks (runCampaign) checks
     * this and runs inline instead — a worker waiting on its own pool's
     * queue is a deadlock, and fanning out from inside another pool is
     * exactly the oversubscription the shared pool exists to prevent.
     */
    static bool onWorkerThread();

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable idle_;
    std::deque<std::function<void()>> queue_;
    std::size_t active_ = 0;
    bool stop_ = false;
    std::vector<std::thread> threads_;
};

/**
 * The process-wide pool (hardware_concurrency threads, created on first
 * use).  Campaigns cap their parallelism by submitting fewer worker
 * tasks, not by resizing the pool.
 */
WorkerPool& sharedWorkerPool();

} // namespace gpr

#endif // GPR_COMMON_WORKER_POOL_HH
