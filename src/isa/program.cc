#include "isa/program.hh"

#include "common/logging.hh"

namespace gpr {

Program::Program(std::string name, IsaDialect dialect,
                 std::vector<Instruction> instructions,
                 std::map<std::string, std::uint32_t> labels,
                 std::uint32_t num_vregs, std::uint32_t num_sregs,
                 std::uint32_t smem_bytes)
    : name_(std::move(name)),
      dialect_(dialect),
      insts_(std::move(instructions)),
      labels_(std::move(labels)),
      num_vregs_(num_vregs),
      num_sregs_(num_sregs),
      smem_bytes_(smem_bytes)
{
    GPR_ASSERT(!insts_.empty(), "program '", name_, "' has no instructions");
}

std::uint32_t
Program::sharedMemoryOpCount() const
{
    std::uint32_t n = 0;
    for (const auto& inst : insts_) {
        if (inst.traits().category == OpCategory::MemShared)
            ++n;
    }
    return n;
}

} // namespace gpr
