/**
 * @file
 * Program -> assembly text, the inverse of the Assembler.
 */

#ifndef GPR_ISA_DISASSEMBLER_HH
#define GPR_ISA_DISASSEMBLER_HH

#include <string>

#include "isa/program.hh"

namespace gpr {

/**
 * Render @p prog as assembler-accepted text (directives, labels, one
 * instruction per line).  assemble(disassemble(p)) reproduces p's
 * instruction stream and metadata.
 */
std::string disassemble(const Program& prog);

} // namespace gpr

#endif // GPR_ISA_DISASSEMBLER_HH
