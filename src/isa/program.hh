/**
 * @file
 * A finalised kernel program: instructions plus resource metadata.
 */

#ifndef GPR_ISA_PROGRAM_HH
#define GPR_ISA_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/dialect.hh"
#include "isa/instruction.hh"

namespace gpr {

/**
 * An executable kernel.  Immutable once built (by KernelBuilder or the
 * Assembler) and validated (by Verifier).
 */
class Program
{
  public:
    Program() = default;

    Program(std::string name, IsaDialect dialect,
            std::vector<Instruction> instructions,
            std::map<std::string, std::uint32_t> labels,
            std::uint32_t num_vregs, std::uint32_t num_sregs,
            std::uint32_t smem_bytes);

    const std::string& name() const { return name_; }
    IsaDialect dialect() const { return dialect_; }

    const std::vector<Instruction>& instructions() const { return insts_; }
    const Instruction& inst(std::uint32_t pc) const { return insts_[pc]; }
    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(insts_.size());
    }

    /** Vector registers required per thread. */
    std::uint32_t numVRegs() const { return num_vregs_; }
    /** Scalar registers required per wavefront (SI dialect only). */
    std::uint32_t numSRegs() const { return num_sregs_; }
    /** Static shared/local memory per block, in bytes. */
    std::uint32_t smemBytes() const { return smem_bytes_; }

    const std::map<std::string, std::uint32_t>& labels() const
    {
        return labels_;
    }

    /** Count of instructions that touch shared/local memory. */
    std::uint32_t sharedMemoryOpCount() const;

  private:
    std::string name_;
    IsaDialect dialect_ = IsaDialect::Cuda;
    std::vector<Instruction> insts_;
    std::map<std::string, std::uint32_t> labels_;
    std::uint32_t num_vregs_ = 0;
    std::uint32_t num_sregs_ = 0;
    std::uint32_t smem_bytes_ = 0;
};

} // namespace gpr

#endif // GPR_ISA_PROGRAM_HH
