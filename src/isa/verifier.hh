/**
 * @file
 * Static validation of kernel programs.
 */

#ifndef GPR_ISA_VERIFIER_HH
#define GPR_ISA_VERIFIER_HH

#include "isa/program.hh"

namespace gpr {

/**
 * Verify the static well-formedness of @p prog; throws FatalError with a
 * diagnostic on the first violation.  Checks:
 *  - register indices within the declared counts;
 *  - scalar registers only under the SouthernIslands dialect;
 *  - scalar-destination ops consume only uniform (SReg/Imm) sources;
 *  - branch/SSY targets within the program;
 *  - operand kinds legal for each opcode (e.g. stores need a register or
 *    scalar address, SETP writes a valid predicate, guards in range);
 *  - the program ends in a reachable EXIT (a straight-line fall-through off
 *    the end is rejected);
 *  - shared-memory use only if the program declares shared memory.
 */
void verifyProgram(const Program& prog);

} // namespace gpr

#endif // GPR_ISA_VERIFIER_HH
