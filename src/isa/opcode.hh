/**
 * @file
 * Opcode definitions for the SIMT micro-ISA.
 *
 * The instruction set is a distilled SASS/Southern-Islands common core:
 * 32-bit integer and float ALU ops, predication, explicit-reconvergence
 * control flow (SSY/SYNC, mirroring SASS), block barriers, and word-granular
 * global/shared memory accesses with atomics.  Fault injection targets the
 * storage the ISA architecturally exposes (vector/scalar register files and
 * local memory), which is exactly the scope of the ISPASS'17 study.
 */

#ifndef GPR_ISA_OPCODE_HH
#define GPR_ISA_OPCODE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace gpr {

/** All opcodes of the micro-ISA. */
enum class Opcode : std::uint8_t
{
    Nop,
    // Data movement.
    Mov,      ///< rd = src (register or immediate)
    S2r,      ///< rd = special register
    LdParam,  ///< rd = kernel parameter word [imm index]
    // Integer ALU.
    IAdd,
    ISub,
    IMul,     ///< low 32 bits
    IMad,     ///< rd = a * b + c (low 32)
    IMin,
    IMax,
    And,
    Or,
    Xor,
    Not,
    Shl,
    Shr,      ///< logical
    Shra,     ///< arithmetic
    // Float ALU.
    FAdd,
    FSub,
    FMul,
    FFma,
    FMin,
    FMax,
    FRcp,
    FSqrt,
    FExp2,    ///< 2^x, SFU-style
    FAbs,
    FNeg,
    FDiv,
    F2i,      ///< truncating convert
    I2f,
    // Compare / select.
    ISetp,
    FSetp,
    Selp,     ///< rd = pred ? a : b
    // Control flow.
    Bra,
    Ssy,      ///< push reconvergence point
    Sync,     ///< pop reconvergence point
    Bar,      ///< block-wide barrier
    Exit,
    // Memory.
    Ldg,      ///< load word from global
    Stg,
    Lds,      ///< load word from shared/local
    Sts,
    AtomgAdd, ///< atomic add to global (no return)
    AtomsAdd, ///< atomic add to shared (no return)

    NumOpcodes
};

/** Coarse functional category, used by the timing model. */
enum class OpCategory : std::uint8_t
{
    Misc,     ///< NOP, MOV, S2R, LDPARAM
    IntAlu,
    FloatAlu,
    Sfu,      ///< RCP/SQRT/EXP2/DIV — special function unit
    Compare,
    Control,  ///< BRA/SSY/SYNC/EXIT
    Barrier,
    MemGlobal,
    MemShared,
};

/** Static properties of an opcode. */
struct OpTraits
{
    const char* mnemonic;
    OpCategory category;
    std::uint8_t numSrcs;      ///< register/immediate source operands
    bool writesDst;            ///< produces a register result
    bool writesPred;           ///< produces a predicate result (SETP)
    bool readsPredSrc;         ///< consumes a predicate source (SELP)
    bool isMemory;
    bool isStore;
    bool isAtomic;
    bool isBranch;             ///< has a code target (BRA/SSY)
};

/** Look up the static traits of @p op. */
const OpTraits& opTraits(Opcode op);

/** Mnemonic string for @p op. */
std::string_view opMnemonic(Opcode op);

/** Parse a mnemonic (case-insensitive); nullopt if unknown. */
std::optional<Opcode> opcodeFromMnemonic(std::string_view mnemonic);

/** Comparison operators for ISETP/FSETP. */
enum class CmpOp : std::uint8_t { Eq, Ne, Lt, Le, Gt, Ge };

std::string_view cmpOpName(CmpOp cmp);
std::optional<CmpOp> cmpOpFromName(std::string_view name);

} // namespace gpr

#endif // GPR_ISA_OPCODE_HH
