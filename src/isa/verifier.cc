#include "isa/verifier.hh"

#include "common/logging.hh"
#include "common/string_utils.hh"

namespace gpr {
namespace {

void
verifyOperand(const Program& prog, const Instruction& inst,
              std::uint32_t pc, const Operand& op, const char* role)
{
    auto fail = [&](const std::string& why) {
        fatal("kernel '", prog.name(), "' @", pc, " '", inst.toString(),
              "': ", role, ": ", why);
    };

    switch (op.kind) {
      case OperandKind::None:
        fail("missing operand");
        break;
      case OperandKind::VReg:
        if (op.index >= prog.numVRegs())
            fail(strprintf("V%u out of range (%u declared)", op.index,
                           prog.numVRegs()));
        break;
      case OperandKind::SReg:
        if (prog.dialect() != IsaDialect::SouthernIslands)
            fail("scalar registers only exist in the SouthernIslands "
                 "dialect");
        if (op.index >= prog.numSRegs())
            fail(strprintf("S%u out of range (%u declared)", op.index,
                           prog.numSRegs()));
        break;
      case OperandKind::Imm:
        break;
      case OperandKind::Special:
        if (inst.op != Opcode::S2r)
            fail("special registers are only readable via S2R");
        break;
    }
}

} // namespace

void
verifyProgram(const Program& prog)
{
    const auto& insts = prog.instructions();
    GPR_ASSERT(!insts.empty(), "empty program");

    bool saw_exit = false;

    for (std::uint32_t pc = 0; pc < insts.size(); ++pc) {
        const Instruction& inst = insts[pc];
        const OpTraits& t = inst.traits();

        auto fail = [&](const std::string& why) {
            fatal("kernel '", prog.name(), "' @", pc, " '",
                  inst.toString(), "': ", why);
        };

        if (inst.guard != kNoPred &&
            (inst.guard < 0 ||
             static_cast<unsigned>(inst.guard) >= kNumPredRegs)) {
            fail("guard predicate out of range");
        }

        if (t.writesDst) {
            if (!inst.dst.isReg())
                fail("destination must be a register");
            verifyOperand(prog, inst, pc, inst.dst, "dst");
        }
        if (t.writesPred && inst.predDst >= kNumPredRegs)
            fail("SETP destination predicate out of range");
        if (t.readsPredSrc && inst.predSrc >= kNumPredRegs)
            fail("SELP source predicate out of range");

        for (unsigned s = 0; s < t.numSrcs; ++s)
            verifyOperand(prog, inst, pc, inst.src[s], "src");

        if (t.isMemory) {
            if (!inst.src[0].isReg() &&
                inst.src[0].kind != OperandKind::Imm) {
                fail("memory address must be a register or immediate");
            }
            if (t.category == OpCategory::MemShared &&
                prog.smemBytes() == 0) {
                fail("shared-memory access in a kernel that declares no "
                     "shared memory");
            }
        }

        if (t.isBranch && inst.target >= insts.size())
            fail(strprintf("branch target %u out of range", inst.target));

        // Scalar-unit constraint: an SReg destination means the op runs on
        // the scalar ALU once per wavefront, so every register source must
        // be uniform too.
        if (t.writesDst && inst.dst.kind == OperandKind::SReg) {
            if (t.isMemory)
                fail("memory destinations must be vector registers");
            for (unsigned s = 0; s < t.numSrcs; ++s) {
                if (inst.src[s].kind == OperandKind::VReg)
                    fail("scalar-destination op reads vector register "
                         "(non-uniform source)");
            }
        }

        if (inst.op == Opcode::Exit)
            saw_exit = true;
    }

    if (!saw_exit)
        fatal("kernel '", prog.name(), "': no EXIT instruction");

    // The last instruction must not fall through off the end of the
    // program: require EXIT or an unconditional branch.
    const Instruction& last = insts.back();
    const bool terminates =
        last.op == Opcode::Exit ||
        (last.op == Opcode::Bra && last.guard == kNoPred);
    if (!terminates) {
        fatal("kernel '", prog.name(),
              "': control can fall off the end of the program (last "
              "instruction is '", last.toString(), "')");
    }
}

} // namespace gpr
