/**
 * @file
 * Text assembler for the micro-ISA.
 *
 * Accepts the syntax produced by the disassembler:
 *
 *     .kernel vectoradd          # directives
 *     .dialect cuda              # cuda | si
 *     .vregs 8                   # optional; grown to actual use
 *     .sregs 2                   # SI dialect only
 *     .smem 1024                 # static shared memory bytes per block
 *     loop:                      # labels
 *         S2R   V0, SR_TID_X
 *         IADD  V1, V0, 0x10     # int immediates: dec, 0x.., 0b..
 *         FADD  V2, V1, 1.5f     # float immediates carry an 'f' suffix
 *         ISETP.LT P0, V1, 64
 *         @P0 BRA loop           # guards: @Pn / @!Pn
 *         LDG   V3, [V1 + 4]    # memory: [reg], [reg + imm], [reg - imm]
 *         STG   [V1], V3
 *         EXIT
 *
 * Comments run from '#' or '//' to end of line.  Parsing failures raise
 * FatalError with file/line diagnostics.
 */

#ifndef GPR_ISA_ASSEMBLER_HH
#define GPR_ISA_ASSEMBLER_HH

#include <string>
#include <string_view>

#include "isa/program.hh"

namespace gpr {

/** Assemble @p source into a verified Program. */
Program assemble(std::string_view source);

} // namespace gpr

#endif // GPR_ISA_ASSEMBLER_HH
