#include "isa/builder.hh"

#include "common/logging.hh"
#include "common/string_utils.hh"
#include "isa/verifier.hh"

namespace gpr {

KernelBuilder::KernelBuilder(std::string name, IsaDialect dialect)
    : name_(std::move(name)), dialect_(dialect)
{
    GPR_ASSERT(!name_.empty(), "kernel needs a name");
}

Operand
KernelBuilder::vreg()
{
    const Operand r = Operand::vreg(next_vreg_++);
    max_vreg_seen_ = std::max(max_vreg_seen_, next_vreg_);
    return r;
}

Operand
KernelBuilder::uniformReg()
{
    if (dialectHasScalarUnit(dialect_)) {
        const Operand r = Operand::sreg_(next_sreg_++);
        max_sreg_seen_ = std::max(max_sreg_seen_, next_sreg_);
        return r;
    }
    return vreg();
}

unsigned
KernelBuilder::preg()
{
    GPR_ASSERT(next_preg_ < kNumPredRegs, "out of predicate registers in '",
               name_, "'");
    return next_preg_++;
}

Label
KernelBuilder::newLabel(std::string hint)
{
    Label l;
    l.id = static_cast<std::uint32_t>(label_table_.size());
    label_table_.push_back(
        {strprintf("%s_%u", hint.c_str(), l.id), ~0u});
    return l;
}

void
KernelBuilder::bind(Label l)
{
    GPR_ASSERT(l.valid() && l.id < label_table_.size(), "invalid label");
    GPR_ASSERT(label_table_[l.id].bound_at == ~0u, "label '",
               label_table_[l.id].name, "' bound twice");
    label_table_[l.id].bound_at =
        static_cast<std::uint32_t>(insts_.size());
}

std::string
KernelBuilder::labelName(Label l) const
{
    GPR_ASSERT(l.valid() && l.id < label_table_.size(), "invalid label");
    return label_table_[l.id].name;
}

Instruction&
KernelBuilder::emit(Opcode op, Guard g)
{
    GPR_ASSERT(!finished_, "builder already finished");
    Instruction inst;
    inst.op = op;
    inst.guard = g.reg;
    inst.guardNegate = g.negate;
    insts_.push_back(std::move(inst));
    return insts_.back();
}

void
KernelBuilder::noteRegUse(const Operand& op)
{
    if (op.kind == OperandKind::VReg)
        max_vreg_seen_ = std::max(max_vreg_seen_, op.index + 1);
    else if (op.kind == OperandKind::SReg)
        max_sreg_seen_ = std::max(max_sreg_seen_, op.index + 1);
}

void
KernelBuilder::emitAlu(Opcode op, Operand d, Operand a, Operand b, Guard g)
{
    Instruction& i = emit(op, g);
    i.dst = d;
    i.src[0] = a;
    i.src[1] = b;
    noteRegUse(d);
    noteRegUse(a);
    noteRegUse(b);
}

void
KernelBuilder::emitAlu3(Opcode op, Operand d, Operand a, Operand b,
                        Operand c, Guard g)
{
    Instruction& i = emit(op, g);
    i.dst = d;
    i.src[0] = a;
    i.src[1] = b;
    i.src[2] = c;
    noteRegUse(d);
    noteRegUse(a);
    noteRegUse(b);
    noteRegUse(c);
}

void
KernelBuilder::emitUnary(Opcode op, Operand d, Operand a, Guard g)
{
    Instruction& i = emit(op, g);
    i.dst = d;
    i.src[0] = a;
    noteRegUse(d);
    noteRegUse(a);
}

void
KernelBuilder::mov(Operand d, Operand a, Guard g)
{
    emitUnary(Opcode::Mov, d, a, g);
}

void
KernelBuilder::s2r(Operand d, SpecialReg sr, Guard g)
{
    Instruction& i = emit(Opcode::S2r, g);
    i.dst = d;
    i.src[0] = Operand::special(sr);
    noteRegUse(d);
}

void
KernelBuilder::ldparam(Operand d, unsigned param_index, Guard g)
{
    Instruction& i = emit(Opcode::LdParam, g);
    i.dst = d;
    i.src[0] = Operand::immediateInt(static_cast<std::int32_t>(param_index));
    noteRegUse(d);
}

// Integer ALU.
void KernelBuilder::iadd(Operand d, Operand a, Operand b, Guard g)
{ emitAlu(Opcode::IAdd, d, a, b, g); }
void KernelBuilder::isub(Operand d, Operand a, Operand b, Guard g)
{ emitAlu(Opcode::ISub, d, a, b, g); }
void KernelBuilder::imul(Operand d, Operand a, Operand b, Guard g)
{ emitAlu(Opcode::IMul, d, a, b, g); }
void KernelBuilder::imad(Operand d, Operand a, Operand b, Operand c, Guard g)
{ emitAlu3(Opcode::IMad, d, a, b, c, g); }
void KernelBuilder::imin(Operand d, Operand a, Operand b, Guard g)
{ emitAlu(Opcode::IMin, d, a, b, g); }
void KernelBuilder::imax(Operand d, Operand a, Operand b, Guard g)
{ emitAlu(Opcode::IMax, d, a, b, g); }
void KernelBuilder::and_(Operand d, Operand a, Operand b, Guard g)
{ emitAlu(Opcode::And, d, a, b, g); }
void KernelBuilder::or_(Operand d, Operand a, Operand b, Guard g)
{ emitAlu(Opcode::Or, d, a, b, g); }
void KernelBuilder::xor_(Operand d, Operand a, Operand b, Guard g)
{ emitAlu(Opcode::Xor, d, a, b, g); }
void KernelBuilder::not_(Operand d, Operand a, Guard g)
{ emitUnary(Opcode::Not, d, a, g); }
void KernelBuilder::shl(Operand d, Operand a, Operand b, Guard g)
{ emitAlu(Opcode::Shl, d, a, b, g); }
void KernelBuilder::shr(Operand d, Operand a, Operand b, Guard g)
{ emitAlu(Opcode::Shr, d, a, b, g); }
void KernelBuilder::shra(Operand d, Operand a, Operand b, Guard g)
{ emitAlu(Opcode::Shra, d, a, b, g); }

// Float ALU.
void KernelBuilder::fadd(Operand d, Operand a, Operand b, Guard g)
{ emitAlu(Opcode::FAdd, d, a, b, g); }
void KernelBuilder::fsub(Operand d, Operand a, Operand b, Guard g)
{ emitAlu(Opcode::FSub, d, a, b, g); }
void KernelBuilder::fmul(Operand d, Operand a, Operand b, Guard g)
{ emitAlu(Opcode::FMul, d, a, b, g); }
void KernelBuilder::ffma(Operand d, Operand a, Operand b, Operand c, Guard g)
{ emitAlu3(Opcode::FFma, d, a, b, c, g); }
void KernelBuilder::fmin(Operand d, Operand a, Operand b, Guard g)
{ emitAlu(Opcode::FMin, d, a, b, g); }
void KernelBuilder::fmax(Operand d, Operand a, Operand b, Guard g)
{ emitAlu(Opcode::FMax, d, a, b, g); }
void KernelBuilder::frcp(Operand d, Operand a, Guard g)
{ emitUnary(Opcode::FRcp, d, a, g); }
void KernelBuilder::fsqrt(Operand d, Operand a, Guard g)
{ emitUnary(Opcode::FSqrt, d, a, g); }
void KernelBuilder::fexp2(Operand d, Operand a, Guard g)
{ emitUnary(Opcode::FExp2, d, a, g); }
void KernelBuilder::fabs_(Operand d, Operand a, Guard g)
{ emitUnary(Opcode::FAbs, d, a, g); }
void KernelBuilder::fneg(Operand d, Operand a, Guard g)
{ emitUnary(Opcode::FNeg, d, a, g); }
void KernelBuilder::fdiv(Operand d, Operand a, Operand b, Guard g)
{ emitAlu(Opcode::FDiv, d, a, b, g); }
void KernelBuilder::f2i(Operand d, Operand a, Guard g)
{ emitUnary(Opcode::F2i, d, a, g); }
void KernelBuilder::i2f(Operand d, Operand a, Guard g)
{ emitUnary(Opcode::I2f, d, a, g); }

void
KernelBuilder::isetp(CmpOp cmp, unsigned pd, Operand a, Operand b, Guard g)
{
    GPR_ASSERT(pd < kNumPredRegs, "predicate index out of range");
    Instruction& i = emit(Opcode::ISetp, g);
    i.cmp = cmp;
    i.predDst = static_cast<std::uint8_t>(pd);
    i.src[0] = a;
    i.src[1] = b;
    noteRegUse(a);
    noteRegUse(b);
}

void
KernelBuilder::fsetp(CmpOp cmp, unsigned pd, Operand a, Operand b, Guard g)
{
    GPR_ASSERT(pd < kNumPredRegs, "predicate index out of range");
    Instruction& i = emit(Opcode::FSetp, g);
    i.cmp = cmp;
    i.predDst = static_cast<std::uint8_t>(pd);
    i.src[0] = a;
    i.src[1] = b;
    noteRegUse(a);
    noteRegUse(b);
}

void
KernelBuilder::selp(Operand d, Operand a, Operand b, unsigned ps, Guard g)
{
    GPR_ASSERT(ps < kNumPredRegs, "predicate index out of range");
    Instruction& i = emit(Opcode::Selp, g);
    i.dst = d;
    i.src[0] = a;
    i.src[1] = b;
    i.predSrc = static_cast<std::uint8_t>(ps);
    noteRegUse(d);
    noteRegUse(a);
    noteRegUse(b);
}

void
KernelBuilder::bra(Label target, Guard g)
{
    Instruction& i = emit(Opcode::Bra, g);
    i.targetLabel = labelName(target);
}

void
KernelBuilder::ssy(Label reconv)
{
    Instruction& i = emit(Opcode::Ssy, Guard{});
    i.targetLabel = labelName(reconv);
}

void
KernelBuilder::sync()
{
    emit(Opcode::Sync, Guard{});
}

void
KernelBuilder::bar()
{
    emit(Opcode::Bar, Guard{});
}

void
KernelBuilder::exit(Guard g)
{
    emit(Opcode::Exit, g);
}

void
KernelBuilder::ldg(Operand d, Operand addr, std::int32_t offset, Guard g)
{
    Instruction& i = emit(Opcode::Ldg, g);
    i.dst = d;
    i.src[0] = addr;
    i.memOffset = offset;
    noteRegUse(d);
    noteRegUse(addr);
}

void
KernelBuilder::stg(Operand addr, Operand value, std::int32_t offset, Guard g)
{
    Instruction& i = emit(Opcode::Stg, g);
    i.src[0] = addr;
    i.src[1] = value;
    i.memOffset = offset;
    noteRegUse(addr);
    noteRegUse(value);
}

void
KernelBuilder::lds(Operand d, Operand addr, std::int32_t offset, Guard g)
{
    Instruction& i = emit(Opcode::Lds, g);
    i.dst = d;
    i.src[0] = addr;
    i.memOffset = offset;
    noteRegUse(d);
    noteRegUse(addr);
}

void
KernelBuilder::sts(Operand addr, Operand value, std::int32_t offset, Guard g)
{
    Instruction& i = emit(Opcode::Sts, g);
    i.src[0] = addr;
    i.src[1] = value;
    i.memOffset = offset;
    noteRegUse(addr);
    noteRegUse(value);
}

void
KernelBuilder::atomgAdd(Operand addr, Operand value, std::int32_t offset,
                        Guard g)
{
    Instruction& i = emit(Opcode::AtomgAdd, g);
    i.src[0] = addr;
    i.src[1] = value;
    i.memOffset = offset;
    noteRegUse(addr);
    noteRegUse(value);
}

void
KernelBuilder::atomsAdd(Operand addr, Operand value, std::int32_t offset,
                        Guard g)
{
    Instruction& i = emit(Opcode::AtomsAdd, g);
    i.src[0] = addr;
    i.src[1] = value;
    i.memOffset = offset;
    noteRegUse(addr);
    noteRegUse(value);
}

Program
KernelBuilder::finish(std::uint32_t smem_bytes)
{
    GPR_ASSERT(!finished_, "finish() called twice");
    finished_ = true;

    // Resolve labels to instruction indices.
    std::map<std::string, std::uint32_t> labels;
    for (const auto& entry : label_table_) {
        if (entry.bound_at == ~0u) {
            fatal("kernel '", name_, "': label '", entry.name,
                  "' referenced but never bound");
        }
        labels[entry.name] = entry.bound_at;
    }
    for (auto& inst : insts_) {
        if (inst.traits().isBranch) {
            const auto it = labels.find(inst.targetLabel);
            if (it == labels.end()) {
                fatal("kernel '", name_, "': unresolved branch target '",
                      inst.targetLabel, "'");
            }
            inst.target = it->second;
        }
    }

    Program prog(name_, dialect_, std::move(insts_), std::move(labels),
                 max_vreg_seen_, max_sreg_seen_, smem_bytes);
    verifyProgram(prog);
    return prog;
}

} // namespace gpr
