/**
 * @file
 * KernelBuilder: a programmatic assembler for micro-ISA kernels.
 *
 * Workloads use this like a compiler back-end.  The builder is
 * dialect-aware: uniformReg() returns a scalar register under the
 * SouthernIslands dialect (so uniform address arithmetic runs on the
 * scalar unit, as the AMD compiler would emit) and a vector register under
 * the CUDA dialect (as NVIDIA hardware requires).  This is how one
 * workload source lowers to genuinely different per-vendor binaries,
 * mirroring the paper's same-source / different-ISA methodology.
 */

#ifndef GPR_ISA_BUILDER_HH
#define GPR_ISA_BUILDER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace gpr {

/** Guard descriptor for predicated execution (@Pn / @!Pn). */
struct Guard
{
    std::int8_t reg = kNoPred;
    bool negate = false;
};

/** Guard on predicate @p p being true. */
inline Guard
ifP(unsigned p)
{
    return Guard{static_cast<std::int8_t>(p), false};
}

/** Guard on predicate @p p being false. */
inline Guard
ifNotP(unsigned p)
{
    return Guard{static_cast<std::int8_t>(p), true};
}

/** Forward-referencable code label. */
struct Label
{
    std::uint32_t id = ~0u;
    bool valid() const { return id != ~0u; }
};

class KernelBuilder
{
  public:
    KernelBuilder(std::string name, IsaDialect dialect);

    IsaDialect dialect() const { return dialect_; }
    /** Warp/wavefront width of the target dialect. */
    unsigned warpWidth() const { return dialectWarpWidth(dialect_); }

    // --- Register allocation -------------------------------------------
    /** Allocate a fresh per-thread vector register. */
    Operand vreg();
    /** Allocate a register for a wavefront-uniform value (SReg on SI). */
    Operand uniformReg();
    /** Allocate a predicate register (at most kNumPredRegs). */
    unsigned preg();

    static Operand imm(std::int32_t v) { return Operand::immediateInt(v); }
    static Operand fimm(float f) { return Operand::immediateFloat(f); }

    // --- Labels ---------------------------------------------------------
    Label newLabel(std::string hint = "L");
    void bind(Label l);

    // --- Emission: movement ----------------------------------------------
    void mov(Operand d, Operand a, Guard g = {});
    void s2r(Operand d, SpecialReg sr, Guard g = {});
    void ldparam(Operand d, unsigned param_index, Guard g = {});

    // --- Emission: integer ALU -------------------------------------------
    void iadd(Operand d, Operand a, Operand b, Guard g = {});
    void isub(Operand d, Operand a, Operand b, Guard g = {});
    void imul(Operand d, Operand a, Operand b, Guard g = {});
    void imad(Operand d, Operand a, Operand b, Operand c, Guard g = {});
    void imin(Operand d, Operand a, Operand b, Guard g = {});
    void imax(Operand d, Operand a, Operand b, Guard g = {});
    void and_(Operand d, Operand a, Operand b, Guard g = {});
    void or_(Operand d, Operand a, Operand b, Guard g = {});
    void xor_(Operand d, Operand a, Operand b, Guard g = {});
    void not_(Operand d, Operand a, Guard g = {});
    void shl(Operand d, Operand a, Operand b, Guard g = {});
    void shr(Operand d, Operand a, Operand b, Guard g = {});
    void shra(Operand d, Operand a, Operand b, Guard g = {});

    // --- Emission: float ALU ---------------------------------------------
    void fadd(Operand d, Operand a, Operand b, Guard g = {});
    void fsub(Operand d, Operand a, Operand b, Guard g = {});
    void fmul(Operand d, Operand a, Operand b, Guard g = {});
    void ffma(Operand d, Operand a, Operand b, Operand c, Guard g = {});
    void fmin(Operand d, Operand a, Operand b, Guard g = {});
    void fmax(Operand d, Operand a, Operand b, Guard g = {});
    void frcp(Operand d, Operand a, Guard g = {});
    void fsqrt(Operand d, Operand a, Guard g = {});
    void fexp2(Operand d, Operand a, Guard g = {});
    void fabs_(Operand d, Operand a, Guard g = {});
    void fneg(Operand d, Operand a, Guard g = {});
    void fdiv(Operand d, Operand a, Operand b, Guard g = {});
    void f2i(Operand d, Operand a, Guard g = {});
    void i2f(Operand d, Operand a, Guard g = {});

    // --- Emission: compare / select --------------------------------------
    void isetp(CmpOp cmp, unsigned pd, Operand a, Operand b, Guard g = {});
    void fsetp(CmpOp cmp, unsigned pd, Operand a, Operand b, Guard g = {});
    void selp(Operand d, Operand a, Operand b, unsigned ps, Guard g = {});

    // --- Emission: control flow ------------------------------------------
    void bra(Label target, Guard g = {});
    void ssy(Label reconv);
    void sync();
    void bar();
    void exit(Guard g = {});

    // --- Emission: memory -------------------------------------------------
    void ldg(Operand d, Operand addr, std::int32_t offset = 0, Guard g = {});
    void stg(Operand addr, Operand value, std::int32_t offset = 0,
             Guard g = {});
    void lds(Operand d, Operand addr, std::int32_t offset = 0, Guard g = {});
    void sts(Operand addr, Operand value, std::int32_t offset = 0,
             Guard g = {});
    void atomgAdd(Operand addr, Operand value, std::int32_t offset = 0,
                  Guard g = {});
    void atomsAdd(Operand addr, Operand value, std::int32_t offset = 0,
                  Guard g = {});

    /** Number of instructions emitted so far. */
    std::uint32_t instructionCount() const
    {
        return static_cast<std::uint32_t>(insts_.size());
    }

    /**
     * Finalise: resolve labels, attach metadata, verify, and return the
     * immutable Program.  @p smem_bytes is the static shared/local memory
     * the kernel needs per block.
     */
    Program finish(std::uint32_t smem_bytes = 0);

  private:
    Instruction& emit(Opcode op, Guard g);
    void emitAlu(Opcode op, Operand d, Operand a, Operand b, Guard g);
    void emitAlu3(Opcode op, Operand d, Operand a, Operand b, Operand c,
                  Guard g);
    void emitUnary(Opcode op, Operand d, Operand a, Guard g);
    void noteRegUse(const Operand& op);
    std::string labelName(Label l) const;

    std::string name_;
    IsaDialect dialect_;
    std::vector<Instruction> insts_;

    std::uint32_t next_vreg_ = 0;
    std::uint32_t next_sreg_ = 0;
    std::uint32_t next_preg_ = 0;
    std::uint32_t max_vreg_seen_ = 0;
    std::uint32_t max_sreg_seen_ = 0;

    struct PendingLabel
    {
        std::string name;
        std::uint32_t bound_at = ~0u;
    };
    std::vector<PendingLabel> label_table_;
    bool finished_ = false;
};

} // namespace gpr

#endif // GPR_ISA_BUILDER_HH
