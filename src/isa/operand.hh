/**
 * @file
 * Operand representation: vector/scalar registers, predicates, immediates
 * and special (read-only) registers.
 */

#ifndef GPR_ISA_OPERAND_HH
#define GPR_ISA_OPERAND_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/bitutils.hh"
#include "common/types.hh"

namespace gpr {

/** Read-only special registers (thread/block geometry). */
enum class SpecialReg : std::uint8_t
{
    TidX,
    TidY,
    CtaIdX,
    CtaIdY,
    NTidX,
    NTidY,
    NCtaIdX,
    NCtaIdY,
    Lane,     ///< lane index within the warp/wavefront
    WarpId,   ///< warp index within the block
    NumSpecialRegs
};

std::string_view specialRegName(SpecialReg sr);
std::optional<SpecialReg> specialRegFromName(std::string_view name);

/** What an operand denotes. */
enum class OperandKind : std::uint8_t
{
    None,
    VReg,    ///< per-thread vector register
    SReg,    ///< per-wavefront scalar register (Southern Islands dialect)
    Imm,     ///< 32-bit immediate (raw bits; float imms are stored as bits)
    Special, ///< special register, S2R only
};

/** A single instruction operand. */
struct Operand
{
    OperandKind kind = OperandKind::None;
    RegIndex index = 0;   ///< register index for VReg/SReg
    Word imm = 0;         ///< raw immediate bits
    SpecialReg sreg = SpecialReg::TidX;

    static Operand
    vreg(RegIndex r)
    {
        Operand o;
        o.kind = OperandKind::VReg;
        o.index = r;
        return o;
    }

    static Operand
    sreg_(RegIndex r)
    {
        Operand o;
        o.kind = OperandKind::SReg;
        o.index = r;
        return o;
    }

    static Operand
    immediate(Word bits)
    {
        Operand o;
        o.kind = OperandKind::Imm;
        o.imm = bits;
        return o;
    }

    static Operand
    immediateInt(std::int32_t v)
    {
        return immediate(static_cast<Word>(v));
    }

    static Operand
    immediateFloat(float f)
    {
        return immediate(floatBits(f));
    }

    static Operand
    special(SpecialReg sr)
    {
        Operand o;
        o.kind = OperandKind::Special;
        o.sreg = sr;
        return o;
    }

    bool isReg() const
    {
        return kind == OperandKind::VReg || kind == OperandKind::SReg;
    }

    bool operator==(const Operand& other) const
    {
        if (kind != other.kind)
            return false;
        switch (kind) {
          case OperandKind::None:
            return true;
          case OperandKind::VReg:
          case OperandKind::SReg:
            return index == other.index;
          case OperandKind::Imm:
            return imm == other.imm;
          case OperandKind::Special:
            return sreg == other.sreg;
        }
        return false;
    }

    /** Assembly-syntax rendering (V3, S1, 0x10, SR_TID_X, ...). */
    std::string toString() const;
};

} // namespace gpr

#endif // GPR_ISA_OPERAND_HH
