#include "isa/opcode.hh"

#include <array>
#include <unordered_map>

#include "common/logging.hh"
#include "common/string_utils.hh"

namespace gpr {
namespace {

// Row layout: mnemonic, category, numSrcs, writesDst, writesPred,
//             readsPredSrc, isMemory, isStore, isAtomic, isBranch
constexpr std::array<OpTraits, static_cast<std::size_t>(Opcode::NumOpcodes)>
op_table = {{
    {"NOP",       OpCategory::Misc,      0, false, false, false, false, false, false, false},
    {"MOV",       OpCategory::Misc,      1, true,  false, false, false, false, false, false},
    {"S2R",       OpCategory::Misc,      1, true,  false, false, false, false, false, false},
    {"LDPARAM",   OpCategory::Misc,      1, true,  false, false, false, false, false, false},
    {"IADD",      OpCategory::IntAlu,    2, true,  false, false, false, false, false, false},
    {"ISUB",      OpCategory::IntAlu,    2, true,  false, false, false, false, false, false},
    {"IMUL",      OpCategory::IntAlu,    2, true,  false, false, false, false, false, false},
    {"IMAD",      OpCategory::IntAlu,    3, true,  false, false, false, false, false, false},
    {"IMIN",      OpCategory::IntAlu,    2, true,  false, false, false, false, false, false},
    {"IMAX",      OpCategory::IntAlu,    2, true,  false, false, false, false, false, false},
    {"AND",       OpCategory::IntAlu,    2, true,  false, false, false, false, false, false},
    {"OR",        OpCategory::IntAlu,    2, true,  false, false, false, false, false, false},
    {"XOR",       OpCategory::IntAlu,    2, true,  false, false, false, false, false, false},
    {"NOT",       OpCategory::IntAlu,    1, true,  false, false, false, false, false, false},
    {"SHL",       OpCategory::IntAlu,    2, true,  false, false, false, false, false, false},
    {"SHR",       OpCategory::IntAlu,    2, true,  false, false, false, false, false, false},
    {"SHRA",      OpCategory::IntAlu,    2, true,  false, false, false, false, false, false},
    {"FADD",      OpCategory::FloatAlu,  2, true,  false, false, false, false, false, false},
    {"FSUB",      OpCategory::FloatAlu,  2, true,  false, false, false, false, false, false},
    {"FMUL",      OpCategory::FloatAlu,  2, true,  false, false, false, false, false, false},
    {"FFMA",      OpCategory::FloatAlu,  3, true,  false, false, false, false, false, false},
    {"FMIN",      OpCategory::FloatAlu,  2, true,  false, false, false, false, false, false},
    {"FMAX",      OpCategory::FloatAlu,  2, true,  false, false, false, false, false, false},
    {"FRCP",      OpCategory::Sfu,       1, true,  false, false, false, false, false, false},
    {"FSQRT",     OpCategory::Sfu,       1, true,  false, false, false, false, false, false},
    {"FEXP2",     OpCategory::Sfu,       1, true,  false, false, false, false, false, false},
    {"FABS",      OpCategory::FloatAlu,  1, true,  false, false, false, false, false, false},
    {"FNEG",      OpCategory::FloatAlu,  1, true,  false, false, false, false, false, false},
    {"FDIV",      OpCategory::Sfu,       2, true,  false, false, false, false, false, false},
    {"F2I",       OpCategory::FloatAlu,  1, true,  false, false, false, false, false, false},
    {"I2F",       OpCategory::FloatAlu,  1, true,  false, false, false, false, false, false},
    {"ISETP",     OpCategory::Compare,   2, false, true,  false, false, false, false, false},
    {"FSETP",     OpCategory::Compare,   2, false, true,  false, false, false, false, false},
    {"SELP",      OpCategory::IntAlu,    2, true,  false, true,  false, false, false, false},
    {"BRA",       OpCategory::Control,   0, false, false, false, false, false, false, true},
    {"SSY",       OpCategory::Control,   0, false, false, false, false, false, false, true},
    {"SYNC",      OpCategory::Control,   0, false, false, false, false, false, false, false},
    {"BAR",       OpCategory::Barrier,   0, false, false, false, false, false, false, false},
    {"EXIT",      OpCategory::Control,   0, false, false, false, false, false, false, false},
    {"LDG",       OpCategory::MemGlobal, 1, true,  false, false, true,  false, false, false},
    {"STG",       OpCategory::MemGlobal, 2, false, false, false, true,  true,  false, false},
    {"LDS",       OpCategory::MemShared, 1, true,  false, false, true,  false, false, false},
    {"STS",       OpCategory::MemShared, 2, false, false, false, true,  true,  false, false},
    {"ATOMG_ADD", OpCategory::MemGlobal, 2, false, false, false, true,  true,  true,  false},
    {"ATOMS_ADD", OpCategory::MemShared, 2, false, false, false, true,  true,  true,  false},
}};

const std::unordered_map<std::string, Opcode>&
mnemonicMap()
{
    static const auto* map = [] {
        auto* m = new std::unordered_map<std::string, Opcode>();
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(Opcode::NumOpcodes); ++i) {
            (*m)[op_table[i].mnemonic] = static_cast<Opcode>(i);
        }
        return m;
    }();
    return *map;
}

constexpr std::array<const char*, 6> cmp_names = {
    "EQ", "NE", "LT", "LE", "GT", "GE",
};

} // namespace

const OpTraits&
opTraits(Opcode op)
{
    const auto idx = static_cast<std::size_t>(op);
    GPR_ASSERT(idx < op_table.size(), "invalid opcode ", idx);
    return op_table[idx];
}

std::string_view
opMnemonic(Opcode op)
{
    return opTraits(op).mnemonic;
}

std::optional<Opcode>
opcodeFromMnemonic(std::string_view mnemonic)
{
    const auto it = mnemonicMap().find(toUpper(mnemonic));
    if (it == mnemonicMap().end())
        return std::nullopt;
    return it->second;
}

std::string_view
cmpOpName(CmpOp cmp)
{
    const auto idx = static_cast<std::size_t>(cmp);
    GPR_ASSERT(idx < cmp_names.size(), "invalid cmp op");
    return cmp_names[idx];
}

std::optional<CmpOp>
cmpOpFromName(std::string_view name)
{
    const std::string upper = toUpper(name);
    for (std::size_t i = 0; i < cmp_names.size(); ++i) {
        if (upper == cmp_names[i])
            return static_cast<CmpOp>(i);
    }
    return std::nullopt;
}

} // namespace gpr
