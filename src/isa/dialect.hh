/**
 * @file
 * ISA dialects: the vendor-specific flavour a kernel is lowered to.
 *
 * The two dialects share the opcode set but differ in what the hardware
 * provides and therefore in how workloads are compiled:
 *  - Cuda (NVIDIA G80/GT200/Fermi): 32-wide warps, unified per-SM vector
 *    register file, no scalar unit — uniform values live in vector regs.
 *  - SouthernIslands (AMD GCN): 64-wide wavefronts, vector register file
 *    split across four SIMD banks per CU, plus a scalar register file and
 *    scalar ALU used for uniform (wavefront-invariant) computation.
 */

#ifndef GPR_ISA_DIALECT_HH
#define GPR_ISA_DIALECT_HH

#include <cstdint>
#include <string_view>

namespace gpr {

enum class IsaDialect : std::uint8_t
{
    Cuda,
    SouthernIslands,
};

constexpr std::string_view
dialectName(IsaDialect d)
{
    return d == IsaDialect::Cuda ? "CUDA" : "SouthernIslands";
}

/** Warp/wavefront width implied by the dialect. */
constexpr unsigned
dialectWarpWidth(IsaDialect d)
{
    return d == IsaDialect::Cuda ? 32u : 64u;
}

/** Whether the dialect has a scalar register file / scalar ALU. */
constexpr bool
dialectHasScalarUnit(IsaDialect d)
{
    return d == IsaDialect::SouthernIslands;
}

} // namespace gpr

#endif // GPR_ISA_DIALECT_HH
