#include "isa/instruction.hh"

#include <sstream>

#include "common/string_utils.hh"

namespace gpr {

std::string
Instruction::toString() const
{
    const OpTraits& t = traits();
    std::ostringstream os;

    if (guard != kNoPred)
        os << '@' << (guardNegate ? "!" : "") << 'P'
           << static_cast<int>(guard) << ' ';

    os << t.mnemonic;
    if (t.writesPred)
        os << '.' << cmpOpName(cmp);

    std::vector<std::string> parts;
    if (t.writesPred) {
        parts.push_back(strprintf("P%u", predDst));
    } else if (t.writesDst && !t.isMemory) {
        parts.push_back(dst.toString());
    }

    if (t.isMemory) {
        // Loads: rd, [addr +/- off].  Stores: [addr +/- off], rs.
        std::string mem;
        const Operand& addr = t.isStore ? src[0] : src[0];
        if (memOffset > 0)
            mem = strprintf("[%s + %d]", addr.toString().c_str(), memOffset);
        else if (memOffset < 0)
            mem = strprintf("[%s - %d]", addr.toString().c_str(), -memOffset);
        else
            mem = strprintf("[%s]", addr.toString().c_str());

        if (t.isStore) {
            parts.push_back(mem);
            parts.push_back(src[1].toString());
        } else {
            parts.push_back(dst.toString());
            parts.push_back(mem);
        }
    } else {
        for (unsigned i = 0; i < t.numSrcs; ++i)
            parts.push_back(src[i].toString());
    }

    if (t.readsPredSrc)
        parts.push_back(strprintf("P%u", predSrc));

    if (t.isBranch) {
        parts.push_back(targetLabel.empty() ? strprintf("@%u", target)
                                            : targetLabel);
    }

    if (!parts.empty()) {
        os << ' ';
        for (std::size_t i = 0; i < parts.size(); ++i) {
            if (i)
                os << ", ";
            os << parts[i];
        }
    }
    return os.str();
}

} // namespace gpr
