#include "isa/assembler.hh"

#include <algorithm>
#include <map>
#include <vector>

#include "common/logging.hh"
#include "common/string_utils.hh"
#include "isa/verifier.hh"

namespace gpr {
namespace {

struct ParseState
{
    std::string kernel_name = "kernel";
    IsaDialect dialect = IsaDialect::Cuda;
    std::uint32_t declared_vregs = 0;
    std::uint32_t declared_sregs = 0;
    std::uint32_t smem_bytes = 0;
    std::vector<Instruction> insts;
    std::map<std::string, std::uint32_t> labels;
    std::uint32_t max_vreg = 0;
    std::uint32_t max_sreg = 0;
    int line_no = 0;
};

[[noreturn]] void
parseError(const ParseState& st, const std::string& why)
{
    fatal("assembler: line ", st.line_no, ": ", why);
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentifier(std::string_view s)
{
    if (s.empty() || std::isdigit(static_cast<unsigned char>(s[0])))
        return false;
    return std::all_of(s.begin(), s.end(), isIdentChar);
}

/** Parse a register-like token (V3/S3/P3); returns index or nullopt. */
std::optional<std::uint32_t>
parseRegIndex(std::string_view tok, char prefix)
{
    if (tok.size() < 2 || std::toupper(tok[0]) != prefix)
        return std::nullopt;
    const auto num = parseInt(tok.substr(1));
    if (!num || *num < 0 || *num > 0xffff)
        return std::nullopt;
    return static_cast<std::uint32_t>(*num);
}

Operand
parseOperand(ParseState& st, std::string_view tok)
{
    tok = trim(tok);
    if (tok.empty())
        parseError(st, "empty operand");

    if (auto v = parseRegIndex(tok, 'V')) {
        st.max_vreg = std::max(st.max_vreg, *v + 1);
        return Operand::vreg(*v);
    }
    if (auto s = parseRegIndex(tok, 'S')) {
        if (tok.size() >= 3 && std::toupper(tok[1]) == 'R' &&
            tok[2] == '_') {
            // Fallthrough: SR_* special registers are handled below.
        } else {
            st.max_sreg = std::max(st.max_sreg, *s + 1);
            return Operand::sreg_(*s);
        }
    }
    if (startsWith(toUpper(tok), "SR_")) {
        const auto sr = specialRegFromName(tok);
        if (!sr)
            parseError(st, "unknown special register '" +
                               std::string(tok) + "'");
        return Operand::special(*sr);
    }
    // Float immediate: trailing 'f' with a '.' or exponent inside.
    if (tok.size() > 1 &&
        (tok.back() == 'f' || tok.back() == 'F') &&
        tok.find_first_of(".eE") != std::string_view::npos) {
        const auto d = parseDouble(tok.substr(0, tok.size() - 1));
        if (!d)
            parseError(st, "bad float immediate '" + std::string(tok) + "'");
        return Operand::immediateFloat(static_cast<float>(*d));
    }
    if (auto i = parseInt(tok)) {
        if (*i < INT32_MIN || *i > static_cast<std::int64_t>(UINT32_MAX))
            parseError(st, "immediate out of 32-bit range");
        return Operand::immediate(static_cast<Word>(*i));
    }
    parseError(st, "cannot parse operand '" + std::string(tok) + "'");
}

/** Parse "[Vx]", "[Vx + 12]", "[Vx - 4]"; fills src[0] and memOffset. */
void
parseMemOperand(ParseState& st, Instruction& inst, std::string_view tok)
{
    tok = trim(tok);
    if (tok.size() < 2 || tok.front() != '[' || tok.back() != ']')
        parseError(st, "expected memory operand '[reg +/- off]', got '" +
                           std::string(tok) + "'");
    std::string_view inner = trim(tok.substr(1, tok.size() - 2));

    std::int32_t sign = 1;
    std::size_t op_pos = std::string_view::npos;
    for (std::size_t i = 1; i < inner.size(); ++i) {
        if (inner[i] == '+' || inner[i] == '-') {
            op_pos = i;
            sign = inner[i] == '-' ? -1 : 1;
            break;
        }
    }

    std::string_view base = inner;
    if (op_pos != std::string_view::npos) {
        base = trim(inner.substr(0, op_pos));
        const auto off = parseInt(trim(inner.substr(op_pos + 1)));
        if (!off)
            parseError(st, "bad memory offset in '" + std::string(tok) +
                               "'");
        inst.memOffset = sign * static_cast<std::int32_t>(*off);
    }
    inst.src[0] = parseOperand(st, base);
}

/**
 * Split an operand list on top-level commas (commas inside brackets do
 * not occur in this syntax, but guard anyway).
 */
std::vector<std::string>
splitOperands(std::string_view s)
{
    std::vector<std::string> out;
    int depth = 0;
    std::string cur;
    for (char c : s) {
        if (c == '[')
            ++depth;
        else if (c == ']')
            --depth;
        if (c == ',' && depth == 0) {
            out.emplace_back(trim(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!trim(cur).empty() || !out.empty())
        out.emplace_back(trim(cur));
    return out;
}

void
parseInstruction(ParseState& st, std::string_view text)
{
    Instruction inst;

    // Guard prefix.
    std::string_view rest = trim(text);
    if (!rest.empty() && rest[0] == '@') {
        rest.remove_prefix(1);
        bool negate = false;
        if (!rest.empty() && rest[0] == '!') {
            negate = true;
            rest.remove_prefix(1);
        }
        const std::size_t sp = rest.find_first_of(" \t");
        if (sp == std::string_view::npos)
            parseError(st, "guard without instruction");
        const auto p = parseRegIndex(trim(rest.substr(0, sp)), 'P');
        if (!p || *p >= kNumPredRegs)
            parseError(st, "bad guard predicate");
        inst.guard = static_cast<std::int8_t>(*p);
        inst.guardNegate = negate;
        rest = trim(rest.substr(sp));
    }

    // Mnemonic, optionally with .CMP suffix.
    std::size_t sp = rest.find_first_of(" \t");
    std::string mnem(sp == std::string_view::npos ? rest
                                                  : rest.substr(0, sp));
    rest = sp == std::string_view::npos ? std::string_view{}
                                        : trim(rest.substr(sp));

    std::string cmp_suffix;
    const std::size_t dot = mnem.find('.');
    if (dot != std::string::npos) {
        cmp_suffix = mnem.substr(dot + 1);
        mnem = mnem.substr(0, dot);
    }

    const auto op = opcodeFromMnemonic(mnem);
    if (!op)
        parseError(st, "unknown mnemonic '" + mnem + "'");
    inst.op = *op;
    const OpTraits& t = opTraits(*op);

    if (t.writesPred) {
        if (cmp_suffix.empty())
            parseError(st, "SETP needs a .CMP suffix (e.g. ISETP.LT)");
        const auto cmp = cmpOpFromName(cmp_suffix);
        if (!cmp)
            parseError(st, "unknown comparison '" + cmp_suffix + "'");
        inst.cmp = *cmp;
    } else if (!cmp_suffix.empty()) {
        parseError(st, "unexpected suffix '." + cmp_suffix + "'");
    }

    const std::vector<std::string> ops = splitOperands(rest);
    auto need = [&](std::size_t n) {
        if (ops.size() != n) {
            parseError(st, strprintf("'%s' expects %zu operands, got %zu",
                                     t.mnemonic, n, ops.size()));
        }
    };

    if (t.isBranch) {
        need(1);
        if (!isIdentifier(ops[0]))
            parseError(st, "branch target must be a label");
        inst.targetLabel = ops[0];
    } else if (t.isMemory) {
        if (t.isStore) {
            need(2);
            parseMemOperand(st, inst, ops[0]);
            inst.src[1] = parseOperand(st, ops[1]);
        } else {
            need(2);
            inst.dst = parseOperand(st, ops[0]);
            parseMemOperand(st, inst, ops[1]);
        }
    } else if (t.writesPred) {
        need(3);
        const auto pd = parseRegIndex(ops[0], 'P');
        if (!pd || *pd >= kNumPredRegs)
            parseError(st, "bad predicate destination");
        inst.predDst = static_cast<std::uint8_t>(*pd);
        inst.src[0] = parseOperand(st, ops[1]);
        inst.src[1] = parseOperand(st, ops[2]);
    } else if (t.readsPredSrc) {
        // SELP dst, a, b, P.
        need(4);
        inst.dst = parseOperand(st, ops[0]);
        inst.src[0] = parseOperand(st, ops[1]);
        inst.src[1] = parseOperand(st, ops[2]);
        const auto ps = parseRegIndex(ops[3], 'P');
        if (!ps || *ps >= kNumPredRegs)
            parseError(st, "bad predicate source");
        inst.predSrc = static_cast<std::uint8_t>(*ps);
    } else if (inst.op == Opcode::S2r) {
        need(2);
        inst.dst = parseOperand(st, ops[0]);
        inst.src[0] = parseOperand(st, ops[1]);
        if (inst.src[0].kind != OperandKind::Special)
            parseError(st, "S2R source must be a special register");
    } else if (t.writesDst) {
        need(1 + t.numSrcs);
        inst.dst = parseOperand(st, ops[0]);
        for (unsigned i = 0; i < t.numSrcs; ++i)
            inst.src[i] = parseOperand(st, ops[1 + i]);
    } else {
        // NOP, SYNC, BAR, EXIT.
        if (!(ops.size() == 1 && ops[0].empty()))
            need(0);
    }

    st.insts.push_back(std::move(inst));
}

void
parseDirective(ParseState& st, std::string_view line)
{
    const auto parts = splitWhitespace(line);
    const std::string dir = toLower(parts[0]);
    auto need_arg = [&]() -> const std::string& {
        if (parts.size() != 2)
            parseError(st, "directive " + dir + " expects one argument");
        return parts[1];
    };

    if (dir == ".kernel") {
        st.kernel_name = need_arg();
    } else if (dir == ".dialect") {
        const std::string v = toLower(need_arg());
        if (v == "cuda")
            st.dialect = IsaDialect::Cuda;
        else if (v == "si" || v == "southernislands")
            st.dialect = IsaDialect::SouthernIslands;
        else
            parseError(st, "unknown dialect '" + v + "'");
    } else if (dir == ".vregs" || dir == ".sregs" || dir == ".smem") {
        const auto n = parseInt(need_arg());
        if (!n || *n < 0 || *n > (1 << 24))
            parseError(st, "bad value for " + dir);
        if (dir == ".vregs")
            st.declared_vregs = static_cast<std::uint32_t>(*n);
        else if (dir == ".sregs")
            st.declared_sregs = static_cast<std::uint32_t>(*n);
        else
            st.smem_bytes = static_cast<std::uint32_t>(*n);
    } else {
        parseError(st, "unknown directive '" + dir + "'");
    }
}

} // namespace

Program
assemble(std::string_view source)
{
    ParseState st;

    std::size_t pos = 0;
    while (pos <= source.size()) {
        const std::size_t nl = source.find('\n', pos);
        std::string_view line =
            source.substr(pos, nl == std::string_view::npos ? source.size() - pos
                                                            : nl - pos);
        pos = nl == std::string_view::npos ? source.size() + 1 : nl + 1;
        ++st.line_no;

        // Strip comments.
        for (std::string_view marker : {"#", "//"}) {
            const std::size_t c = line.find(marker);
            if (c != std::string_view::npos)
                line = line.substr(0, c);
        }
        line = trim(line);
        if (line.empty())
            continue;

        if (line[0] == '.') {
            parseDirective(st, line);
            continue;
        }

        // One or more labels may precede an instruction on the same line.
        while (true) {
            const std::size_t colon = line.find(':');
            if (colon == std::string_view::npos)
                break;
            const std::string_view candidate = trim(line.substr(0, colon));
            if (!isIdentifier(candidate))
                break;
            const std::string label(candidate);
            if (st.labels.count(label))
                parseError(st, "label '" + label + "' redefined");
            st.labels[label] =
                static_cast<std::uint32_t>(st.insts.size());
            line = trim(line.substr(colon + 1));
            if (line.empty())
                break;
        }
        if (line.empty())
            continue;

        parseInstruction(st, line);
    }

    if (st.insts.empty())
        fatal("assembler: no instructions");

    // Resolve branch targets.
    for (auto& inst : st.insts) {
        if (inst.traits().isBranch) {
            const auto it = st.labels.find(inst.targetLabel);
            if (it == st.labels.end())
                fatal("assembler: unresolved label '", inst.targetLabel,
                      "'");
            inst.target = it->second;
        }
    }

    Program prog(st.kernel_name, st.dialect, std::move(st.insts),
                 std::move(st.labels),
                 std::max(st.declared_vregs, st.max_vreg),
                 std::max(st.declared_sregs, st.max_sreg), st.smem_bytes);
    verifyProgram(prog);
    return prog;
}

} // namespace gpr
