#include "isa/operand.hh"

#include <array>

#include "common/logging.hh"
#include "common/string_utils.hh"

namespace gpr {
namespace {

constexpr std::array<const char*,
                     static_cast<std::size_t>(SpecialReg::NumSpecialRegs)>
special_names = {
    "SR_TID_X",    "SR_TID_Y",    "SR_CTAID_X", "SR_CTAID_Y", "SR_NTID_X",
    "SR_NTID_Y",   "SR_NCTAID_X", "SR_NCTAID_Y", "SR_LANE",   "SR_WARPID",
};

} // namespace

std::string_view
specialRegName(SpecialReg sr)
{
    const auto idx = static_cast<std::size_t>(sr);
    GPR_ASSERT(idx < special_names.size(), "invalid special register");
    return special_names[idx];
}

std::optional<SpecialReg>
specialRegFromName(std::string_view name)
{
    const std::string upper = toUpper(name);
    for (std::size_t i = 0; i < special_names.size(); ++i) {
        if (upper == special_names[i])
            return static_cast<SpecialReg>(i);
    }
    return std::nullopt;
}

std::string
Operand::toString() const
{
    switch (kind) {
      case OperandKind::None:
        return "<none>";
      case OperandKind::VReg:
        return strprintf("V%u", index);
      case OperandKind::SReg:
        return strprintf("S%u", index);
      case OperandKind::Imm:
        return strprintf("0x%x", imm);
      case OperandKind::Special:
        return std::string(specialRegName(sreg));
    }
    return "<bad>";
}

} // namespace gpr
