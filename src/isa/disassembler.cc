#include "isa/disassembler.hh"

#include <map>
#include <sstream>

#include "common/string_utils.hh"

namespace gpr {

std::string
disassemble(const Program& prog)
{
    std::ostringstream os;
    os << ".kernel " << prog.name() << '\n';
    os << ".dialect "
       << (prog.dialect() == IsaDialect::Cuda ? "cuda" : "si") << '\n';
    os << ".vregs " << prog.numVRegs() << '\n';
    if (prog.numSRegs() > 0)
        os << ".sregs " << prog.numSRegs() << '\n';
    if (prog.smemBytes() > 0)
        os << ".smem " << prog.smemBytes() << '\n';

    // Invert the label map: instruction index -> labels bound there.
    std::multimap<std::uint32_t, std::string> by_pc;
    for (const auto& [name, pc] : prog.labels())
        by_pc.emplace(pc, name);

    const auto& insts = prog.instructions();
    for (std::uint32_t pc = 0; pc < insts.size(); ++pc) {
        for (auto [it, end] = by_pc.equal_range(pc); it != end; ++it)
            os << it->second << ":\n";
        os << "    " << insts[pc].toString() << '\n';
    }
    // Labels bound past the last instruction (e.g. exit labels).
    for (auto [it, end] = by_pc.equal_range(
             static_cast<std::uint32_t>(insts.size()));
         it != end; ++it) {
        os << it->second << ":\n";
    }
    return os.str();
}

} // namespace gpr
