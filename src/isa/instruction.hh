/**
 * @file
 * A single decoded micro-ISA instruction.
 */

#ifndef GPR_ISA_INSTRUCTION_HH
#define GPR_ISA_INSTRUCTION_HH

#include <array>
#include <cstdint>
#include <string>

#include "isa/opcode.hh"
#include "isa/operand.hh"

namespace gpr {

/** Predicate guard (@P2 / @!P2 prefixes); kNoPred means unconditional. */
constexpr int kNoPred = -1;

/** Maximum architectural predicate registers per thread. */
constexpr unsigned kNumPredRegs = 8;

/**
 * One instruction.  Branch/SSY targets are stored as instruction indices
 * once the program is finalised; the label text survives for disassembly.
 */
struct Instruction
{
    Opcode op = Opcode::Nop;

    /** Guard predicate register index, or kNoPred. */
    std::int8_t guard = kNoPred;
    /** If true, the guard is negated (@!Pn). */
    bool guardNegate = false;

    Operand dst;                  ///< register destination (if writesDst)
    std::array<Operand, 3> src{}; ///< register/immediate sources

    /** Destination predicate register for SETP. */
    std::uint8_t predDst = 0;
    /** Source predicate register for SELP. */
    std::uint8_t predSrc = 0;
    /** Comparison operator for SETP. */
    CmpOp cmp = CmpOp::Eq;

    /** Signed byte offset for memory operands: [Rx + offset]. */
    std::int32_t memOffset = 0;

    /** Resolved branch/SSY target (instruction index). */
    std::uint32_t target = 0;
    /** Original label text (kept for disassembly/diagnostics). */
    std::string targetLabel;

    const OpTraits& traits() const { return opTraits(op); }

    /** Assembly-syntax rendering of the full instruction. */
    std::string toString() const;
};

} // namespace gpr

#endif // GPR_ISA_INSTRUCTION_HH
