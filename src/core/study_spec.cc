#include "core/study_spec.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/hash.hh"
#include "common/logging.hh"
#include "common/string_utils.hh"
#include "core/export.hh"
#include "sim/structure_registry.hh"
#include "workloads/workloads.hh"

namespace gpr {
namespace {

/** Shortest decimal string that parses back to exactly @p v. */
std::string
formatDouble(double v)
{
    for (int precision : {15, 16, 17}) {
        std::string s = strprintf("%.*g", precision, v);
        if (std::strtod(s.c_str(), nullptr) == v)
            return s;
    }
    return strprintf("%.17g", v);
}

std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v), "64-bit double expected");
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

void
mixString(StateHash& h, std::string_view s)
{
    h.mix(s.size());
    for (char c : s)
        h.mix(static_cast<unsigned char>(c));
}

/** Fatal unless every member key of @p obj appears in @p known. */
void
rejectUnknownKeys(const JsonValue& obj, std::string_view where,
                  std::initializer_list<std::string_view> known)
{
    for (const auto& [key, value] : obj.members()) {
        (void)value;
        if (std::find(known.begin(), known.end(), key) != known.end())
            continue;
        std::string list;
        for (std::string_view k : known)
            list += (list.empty() ? "" : ", ") + std::string(k);
        fatal("unknown key '", key, "' in spec ", where,
              " section (known keys: ", list, ")");
    }
}

} // namespace

// ------------------------------------------------------------- resolution

std::vector<std::string>
StudySpec::resolvedWorkloads() const
{
    if (!workloads.empty())
        return workloads;
    std::vector<std::string> all;
    for (std::string_view name : allWorkloadNames())
        all.emplace_back(name);
    return all;
}

std::vector<GpuModel>
StudySpec::resolvedGpus() const
{
    return gpus.empty() ? allGpuModels() : gpus;
}

std::vector<TargetStructure>
StudySpec::resolvedStructures() const
{
    if (!structures.empty())
        return structures;
    std::vector<TargetStructure> all;
    for (const StructureSpec& spec : structureRegistry())
        all.push_back(spec.id);
    return all;
}

// ------------------------------------------------------------- validation

void
validateWorkloadNames(const std::vector<std::string>& names)
{
    const auto& known = allWorkloadNames();
    for (const std::string& name : names) {
        if (std::find(known.begin(), known.end(), name) != known.end())
            continue;
        std::string list;
        for (std::string_view k : known)
            list += (list.empty() ? "" : ", ") + std::string(k);
        fatal("unknown workload '", name, "' (known benchmarks: ", list,
              ")");
    }
}

void
StudySpec::validate() const
{
    validateWorkloadNames(workloads);
    for (GpuModel m : gpus) {
        if (static_cast<std::size_t>(m) >= allGpuModels().size()) {
            fatal("spec names an unregistered GPU model id ",
                  static_cast<unsigned>(m));
        }
    }
    for (TargetStructure s : structures)
        structureSpec(s); // throws FatalError on an unregistered id
    if (plan.injections == 0 && !plan.adaptive() && !aceOnly) {
        fatal("spec has a zero-injection sample plan; set "
              "campaign.injections > 0, campaign.margin > 0 (adaptive "
              "stopping), or campaign.ace_only = true");
    }
    if (plan.confidence <= 0.0 || plan.confidence >= 1.0) {
        fatal("spec confidence ", formatDouble(plan.confidence),
              " is outside (0, 1)");
    }
    if (plan.margin < 0.0 || plan.margin >= 1.0) {
        fatal("spec margin ", formatDouble(plan.margin),
              " is outside [0, 1); 0 disables adaptive stopping");
    }
    if (!plan.adaptive() && plan.maxInjections > 0) {
        fatal("spec sets campaign.max_injections without a margin; the "
              "cap only applies to adaptive (margin > 0) campaigns");
    }
    if (resume && storePath.empty())
        fatal("spec requests resume without a store path");
    if (faultBehaviorPersistent(faultBehavior)) {
        for (TargetStructure s : resolvedStructures()) {
            if (structureSpec(s).persistenceHook == PersistenceHook::None) {
                fatal("spec requests ", faultBehaviorName(faultBehavior),
                      " faults but structure ", structureSpec(s).name,
                      " binds no persistence hook");
            }
        }
    }
}

// ------------------------------------------------------------------ hash

std::uint64_t
StudySpec::campaignHash() const
{
    // Resolve the empty-means-all defaults and canonicalise ordering so
    // the hash depends on the *set* of cells a spec describes, never on
    // listing order, duplicates, or spelled-out defaults.
    std::vector<std::string> w = resolvedWorkloads();
    std::sort(w.begin(), w.end());
    w.erase(std::unique(w.begin(), w.end()), w.end());
    std::vector<GpuModel> g = resolvedGpus();
    std::sort(g.begin(), g.end());
    g.erase(std::unique(g.begin(), g.end()), g.end());
    std::vector<TargetStructure> s = resolvedStructures();
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());

    StateHash h;
    h.mix(0x47505253504543ULL); // "GPRSPEC" domain tag
    h.mix(1);                   // hash-schema version
    h.mix(w.size());
    for (const std::string& name : w)
        mixString(h, name);
    h.mix(g.size());
    for (GpuModel m : g)
        h.mix(static_cast<std::uint64_t>(m));
    h.mix(s.size());
    for (TargetStructure id : s)
        h.mix(static_cast<std::uint64_t>(id));
    if (plan.adaptive()) {
        // Adaptive campaigns are identified by (margin, cap) — the fixed
        // injection count is unused and must not split their identity.
        // The marker keeps the adaptive space disjoint from every fixed
        // plan; fixed plans keep the pre-adaptive byte sequence, so
        // existing stores stay resumable.
        h.mix(0x414441505456ULL); // "ADAPTV"
        h.mix(doubleBits(plan.margin));
        h.mix(plan.resolvedMaxInjections());
    } else {
        h.mix(plan.injections);
    }
    h.mix(doubleBits(plan.confidence));
    h.mix(seed);
    h.mix(workloadSeed);
    h.mix(aceOnly ? 1 : 0);
    h.mix(doubleBits(fitParams.rawFitPerMbit));
    if (faultShape() != FaultShape{}) {
        // Same compatibility scheme as the adaptive marker above: the
        // default transient single-bit shape keeps the pre-redesign byte
        // sequence — every existing store hash is untouched — while any
        // non-default shape moves the spec into a disjoint, marked space.
        h.mix(0x4642454856ULL); // "FBEHV"
        h.mix(static_cast<std::uint64_t>(faultBehavior));
        h.mix(static_cast<std::uint64_t>(faultPattern));
    }
    return h.value();
}

std::string
StudySpec::campaignHashHex() const
{
    return strprintf("%016llx",
                     static_cast<unsigned long long>(campaignHash()));
}

// --------------------------------------------------------- serialization

void
StudySpec::writeJson(JsonWriter& j) const
{
    j.beginObject();
    j.kv("version", std::uint64_t{1});

    j.key("grid").beginObject();
    j.key("workloads").beginArray();
    for (const std::string& w : workloads)
        j.value(w);
    j.endArray();
    j.key("gpus").beginArray();
    for (GpuModel m : gpus)
        j.value(gpuShortName(m));
    j.endArray();
    j.key("structures").beginArray();
    for (TargetStructure s : structures)
        j.value(structureSpec(s).shortName);
    j.endArray();
    j.endObject();

    j.key("campaign").beginObject();
    j.kv("injections", static_cast<std::uint64_t>(plan.injections));
    j.key("confidence").raw(formatDouble(plan.confidence));
    j.key("margin").raw(formatDouble(plan.margin));
    j.kv("max_injections", static_cast<std::uint64_t>(plan.maxInjections));
    j.kv("seed", seed);
    j.kv("workload_seed", workloadSeed);
    j.kv("fault_behavior", faultBehaviorName(faultBehavior));
    j.kv("fault_pattern", faultPatternName(faultPattern));
    j.kv("ace_only", aceOnly);
    j.key("raw_fit_per_mbit").raw(formatDouble(fitParams.rawFitPerMbit));
    j.endObject();

    j.key("execution").beginObject();
    j.kv("jobs", std::uint64_t{jobs});
    j.kv("shards_per_campaign",
         static_cast<std::uint64_t>(shardsPerCampaign));
    j.kv("checkpoints", std::uint64_t{checkpoints});
    j.kv("store", storePath);
    j.kv("resume", resume);
    j.kv("verbose", verbose);
    j.endObject();

    j.endObject();
}

void
StudySpec::toJson(std::ostream& os) const
{
    JsonWriter j(os);
    writeJson(j);
}

std::string
StudySpec::toJsonString() const
{
    std::ostringstream os;
    toJson(os);
    return os.str();
}

StudySpec
StudySpec::fromJson(std::string_view json)
{
    const JsonValue doc = parseJson(json);
    if (doc.kind() != JsonValue::Kind::Object)
        fatal("a study spec must be a JSON object");
    rejectUnknownKeys(doc, "top-level",
                      {"version", "grid", "campaign", "execution"});

    StudySpec spec;
    if (const JsonValue* version = doc.find("version")) {
        if (version->asU64() != 1) {
            fatal("unsupported spec version ", version->asU64(),
                  " (this build reads version 1)");
        }
    }

    if (const JsonValue* grid = doc.find("grid")) {
        rejectUnknownKeys(*grid, "grid",
                          {"workloads", "gpus", "structures"});
        if (const JsonValue* w = grid->find("workloads")) {
            for (const JsonValue& name : w->items())
                spec.workloads.push_back(name.asString());
            validateWorkloadNames(spec.workloads);
        }
        if (const JsonValue* g = grid->find("gpus")) {
            for (const JsonValue& name : g->items())
                spec.gpus.push_back(gpuModelFromName(name.asString()));
        }
        if (const JsonValue* s = grid->find("structures")) {
            for (const JsonValue& name : s->items()) {
                spec.structures.push_back(
                    targetStructureFromName(name.asString()));
            }
        }
    }

    if (const JsonValue* campaign = doc.find("campaign")) {
        rejectUnknownKeys(*campaign, "campaign",
                          {"injections", "confidence", "margin",
                           "max_injections", "seed", "workload_seed",
                           "fault_behavior", "fault_pattern",
                           "ace_only", "raw_fit_per_mbit"});
        if (const JsonValue* v = campaign->find("injections"))
            spec.plan.injections = static_cast<std::size_t>(v->asU64());
        if (const JsonValue* v = campaign->find("confidence"))
            spec.plan.confidence = v->asDouble();
        if (const JsonValue* v = campaign->find("margin"))
            spec.plan.margin = v->asDouble();
        if (const JsonValue* v = campaign->find("max_injections"))
            spec.plan.maxInjections =
                static_cast<std::size_t>(v->asU64());
        if (const JsonValue* v = campaign->find("seed"))
            spec.seed = v->asU64();
        if (const JsonValue* v = campaign->find("workload_seed"))
            spec.workloadSeed = v->asU64();
        if (const JsonValue* v = campaign->find("fault_behavior"))
            spec.faultBehavior = faultBehaviorFromName(v->asString());
        if (const JsonValue* v = campaign->find("fault_pattern"))
            spec.faultPattern = faultPatternFromName(v->asString());
        if (const JsonValue* v = campaign->find("ace_only"))
            spec.aceOnly = v->asBool();
        if (const JsonValue* v = campaign->find("raw_fit_per_mbit"))
            spec.fitParams.rawFitPerMbit = v->asDouble();
    }

    if (const JsonValue* execution = doc.find("execution")) {
        rejectUnknownKeys(*execution, "execution",
                          {"jobs", "shards_per_campaign", "checkpoints",
                           "store", "resume", "verbose"});
        if (const JsonValue* v = execution->find("jobs"))
            spec.jobs = static_cast<unsigned>(v->asU64());
        if (const JsonValue* v = execution->find("shards_per_campaign"))
            spec.shardsPerCampaign =
                static_cast<std::size_t>(v->asU64());
        if (const JsonValue* v = execution->find("checkpoints"))
            spec.checkpoints = static_cast<unsigned>(v->asU64());
        if (const JsonValue* v = execution->find("store"))
            spec.storePath = v->asString();
        if (const JsonValue* v = execution->find("resume"))
            spec.resume = v->asBool();
        if (const JsonValue* v = execution->find("verbose"))
            spec.verbose = v->asBool();
    }

    spec.validate();
    return spec;
}

StudySpec
StudySpec::fromJsonFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open spec file '", path, "'");
    std::ostringstream text;
    text << in.rdbuf();
    try {
        return fromJson(text.str());
    } catch (const FatalError& e) {
        fatal("spec file '", path, "': ", e.what());
    }
}

bool
StudySpec::operator==(const StudySpec& o) const
{
    return workloads == o.workloads && gpus == o.gpus &&
           structures == o.structures &&
           plan.injections == o.plan.injections &&
           plan.confidence == o.plan.confidence &&
           plan.margin == o.plan.margin &&
           plan.maxInjections == o.plan.maxInjections && seed == o.seed &&
           workloadSeed == o.workloadSeed &&
           faultBehavior == o.faultBehavior &&
           faultPattern == o.faultPattern && aceOnly == o.aceOnly &&
           fitParams.rawFitPerMbit == o.fitParams.rawFitPerMbit &&
           jobs == o.jobs && shardsPerCampaign == o.shardsPerCampaign &&
           checkpoints == o.checkpoints && storePath == o.storePath &&
           resume == o.resume && verbose == o.verbose;
}

// ---------------------------------------------------------------- builder

StudySpecBuilder&
StudySpecBuilder::workloads(std::vector<std::string> names)
{
    spec_.workloads = std::move(names);
    return *this;
}

StudySpecBuilder&
StudySpecBuilder::workload(std::string name)
{
    spec_.workloads.push_back(std::move(name));
    return *this;
}

StudySpecBuilder&
StudySpecBuilder::gpus(std::vector<GpuModel> models)
{
    spec_.gpus = std::move(models);
    return *this;
}

StudySpecBuilder&
StudySpecBuilder::gpu(GpuModel model)
{
    spec_.gpus.push_back(model);
    return *this;
}

StudySpecBuilder&
StudySpecBuilder::structures(std::vector<TargetStructure> ids)
{
    spec_.structures = std::move(ids);
    return *this;
}

StudySpecBuilder&
StudySpecBuilder::structure(TargetStructure id)
{
    spec_.structures.push_back(id);
    return *this;
}

StudySpecBuilder&
StudySpecBuilder::plan(const SamplePlan& p)
{
    spec_.plan = p;
    return *this;
}

StudySpecBuilder&
StudySpecBuilder::injections(std::size_t n)
{
    spec_.plan.injections = n;
    return *this;
}

StudySpecBuilder&
StudySpecBuilder::confidence(double c)
{
    spec_.plan.confidence = c;
    return *this;
}

StudySpecBuilder&
StudySpecBuilder::margin(double m)
{
    spec_.plan.margin = m;
    return *this;
}

StudySpecBuilder&
StudySpecBuilder::maxInjections(std::size_t n)
{
    spec_.plan.maxInjections = n;
    return *this;
}

StudySpecBuilder&
StudySpecBuilder::seed(std::uint64_t s)
{
    spec_.seed = s;
    return *this;
}

StudySpecBuilder&
StudySpecBuilder::workloadSeed(std::uint64_t s)
{
    spec_.workloadSeed = s;
    return *this;
}

StudySpecBuilder&
StudySpecBuilder::faultBehavior(FaultBehavior b)
{
    spec_.faultBehavior = b;
    return *this;
}

StudySpecBuilder&
StudySpecBuilder::faultPattern(FaultPattern p)
{
    spec_.faultPattern = p;
    return *this;
}

StudySpecBuilder&
StudySpecBuilder::aceOnly(bool on)
{
    spec_.aceOnly = on;
    return *this;
}

StudySpecBuilder&
StudySpecBuilder::rawFitPerMbit(double fit)
{
    spec_.fitParams.rawFitPerMbit = fit;
    return *this;
}

StudySpecBuilder&
StudySpecBuilder::jobs(unsigned n)
{
    spec_.jobs = n;
    return *this;
}

StudySpecBuilder&
StudySpecBuilder::shardsPerCampaign(std::size_t n)
{
    spec_.shardsPerCampaign = n;
    return *this;
}

StudySpecBuilder&
StudySpecBuilder::checkpoints(unsigned n)
{
    spec_.checkpoints = n;
    return *this;
}

StudySpecBuilder&
StudySpecBuilder::store(std::string path)
{
    spec_.storePath = std::move(path);
    return *this;
}

StudySpecBuilder&
StudySpecBuilder::resume(bool on)
{
    spec_.resume = on;
    return *this;
}

StudySpecBuilder&
StudySpecBuilder::verbose(bool on)
{
    spec_.verbose = on;
    return *this;
}

StudySpec
StudySpecBuilder::build() const
{
    spec_.validate();
    return spec_;
}

// ---------------------------------------------------------------- presets

StudySpec
paperStudySpec()
{
    // The defaults *are* the paper's experiment: every workload, every
    // GPU, every applicable structure, 2,000 injections at 99 %.
    return StudySpec{};
}

StudySpec
smokeStudySpec()
{
    return StudySpecBuilder()
        .workloads({"vectoradd", "reduction"})
        .gpu(GpuModel::GeforceGtx480)
        .injections(40)
        .build();
}

// ------------------------------------------------- name-list CSV parsing

std::vector<std::string>
parseWorkloadList(std::string_view csv)
{
    std::vector<std::string> names;
    for (const std::string& piece : split(csv, ','))
        if (!piece.empty())
            names.push_back(piece);
    validateWorkloadNames(names);
    return names;
}

std::vector<GpuModel>
parseGpuList(std::string_view csv)
{
    std::vector<GpuModel> models;
    for (const std::string& piece : split(csv, ','))
        if (!piece.empty())
            models.push_back(gpuModelFromName(piece));
    return models;
}

std::vector<TargetStructure>
parseStructureList(std::string_view csv)
{
    std::vector<TargetStructure> ids;
    for (const std::string& piece : split(csv, ','))
        if (!piece.empty())
            ids.push_back(targetStructureFromName(piece));
    return ids;
}

} // namespace gpr
