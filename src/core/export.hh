/**
 * @file
 * Machine-readable export of analysis results (JSON and CSV), so the
 * figures can be re-plotted or post-processed outside this repository.
 *
 * The JSON writer is a deliberately small, dependency-free emitter that
 * covers exactly the shapes we serialise (objects, arrays, strings,
 * numbers, booleans); it is not a general-purpose JSON library.
 */

#ifndef GPR_CORE_EXPORT_HH
#define GPR_CORE_EXPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "core/comparison.hh"
#include "core/shard.hh"

namespace gpr {

/** Minimal streaming JSON writer (objects/arrays must be closed in
 *  LIFO order; keys only inside objects). */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream& os);

    JsonWriter& beginObject();
    JsonWriter& endObject();
    JsonWriter& beginArray();
    JsonWriter& endArray();

    /** Emit a key inside an object (must be followed by a value). */
    JsonWriter& key(std::string_view k);

    JsonWriter& value(std::string_view v);
    JsonWriter& value(const char* v);
    JsonWriter& value(double v);
    JsonWriter& value(std::uint64_t v);
    JsonWriter& value(bool v);

    /** Emit @p token verbatim as a value.  Callers guarantee it is one
     *  valid, fully serialised JSON value (a shortest-round-trip double
     *  token, a pre-rendered object, ...). */
    JsonWriter& raw(std::string_view token);

    /** key + value in one call. */
    template <typename T>
    JsonWriter&
    kv(std::string_view k, T v)
    {
        key(k);
        return value(v);
    }

  private:
    void separator();
    static std::string escape(std::string_view s);

    std::ostream& os_;
    /** Whether a value has been emitted at each nesting level. */
    std::string stack_; ///< 'o' = object, 'a' = array
    bool need_comma_ = false;
    bool after_key_ = false;
};

// ------------------------------------------------------------------------
// JSON reader — the parsing counterpart of JsonWriter, sized for the
// shapes this repository serialises (specs, store headers).  Numbers keep
// their raw token so 64-bit seeds survive exactly.

class JsonValue
{
  public:
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }

    /** Typed accessors; each throws FatalError on a kind mismatch. */
    bool asBool() const;
    double asDouble() const;
    /** Exact unsigned 64-bit value (fatal on sign/fraction/overflow). */
    std::uint64_t asU64() const;
    const std::string& asString() const;
    /** Array elements, in document order. */
    const std::vector<JsonValue>& items() const;
    /** Object members, in document order. */
    const std::vector<std::pair<std::string, JsonValue>>& members() const;

    /** Object member lookup; nullptr when absent (fatal on non-object). */
    const JsonValue* find(std::string_view key) const;

    // Construction (used by the parser; exposed for tests).
    static JsonValue makeNull();
    static JsonValue makeBool(bool b);
    /** @p token must be a valid JSON number literal. */
    static JsonValue makeNumber(std::string token);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray(std::vector<JsonValue> items);
    static JsonValue
    makeObject(std::vector<std::pair<std::string, JsonValue>> members);

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::string scalar_; ///< string value, or the raw number token
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

/** Parse one JSON document (trailing garbage is an error).  Throws
 *  FatalError with a byte offset on malformed input. */
JsonValue parseJson(std::string_view text);

/** Serialise one per-benchmark report as a JSON object. */
void writeReportJson(std::ostream& os, const ReliabilityReport& report);

/** Serialise a whole study (all cells + claim summary) as JSON. */
void writeStudyJson(std::ostream& os, const StudyResult& study);

/** Flat CSV of a study: one row per (benchmark, GPU) cell. */
void writeStudyCsv(std::ostream& os, const StudyResult& study);

// ------------------------------------------------------------------------
// JSONL shard store — the orchestrator's checkpoint format.  One record
// per line, append-only, so a killed study leaves at worst one truncated
// line (which the reader skips).

/**
 * The store's first line: identifies the StudySpec the shards were
 * computed under, so --resume can refuse a mismatched store instead of
 * silently mixing results.  Stores written before this header existed
 * simply start with a shard record; readers treat those as legacy.
 */
struct StoreHeader
{
    std::uint64_t version = 1;
    /** StudySpec::campaignHashHex() of the writing spec. */
    std::string specHash;
    /** Full spec JSON, for forensics (ignored on load). */
    std::string specJson;
};

/** Serialise @p header as a single JSON object on one line (no '\n'). */
void writeStoreHeader(std::ostream& os, const StoreHeader& header);

/** Parse a store line as a header record; false for anything else
 *  (including ordinary shard records and malformed lines). */
bool parseStoreHeader(std::string_view line, StoreHeader& out);

/** Serialise @p record as a single JSON object on one line (no '\n'). */
void writeShardRecord(std::ostream& os, const ShardRecord& record);

/** Parse one store line into @p out; false for malformed/truncated
 *  lines (the caller should skip them, not abort). */
bool parseShardRecord(std::string_view line, ShardRecord& out);

/** Read every well-formed record from a shard-store stream. */
std::vector<ShardRecord> readShardStore(std::istream& is);

} // namespace gpr

#endif // GPR_CORE_EXPORT_HH
