/**
 * @file
 * Machine-readable export of analysis results (JSON and CSV), so the
 * figures can be re-plotted or post-processed outside this repository.
 *
 * The JSON writer is a deliberately small, dependency-free emitter that
 * covers exactly the shapes we serialise (objects, arrays, strings,
 * numbers, booleans); it is not a general-purpose JSON library.
 */

#ifndef GPR_CORE_EXPORT_HH
#define GPR_CORE_EXPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "core/comparison.hh"
#include "core/shard.hh"

namespace gpr {

/** Minimal streaming JSON writer (objects/arrays must be closed in
 *  LIFO order; keys only inside objects). */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream& os);

    JsonWriter& beginObject();
    JsonWriter& endObject();
    JsonWriter& beginArray();
    JsonWriter& endArray();

    /** Emit a key inside an object (must be followed by a value). */
    JsonWriter& key(std::string_view k);

    JsonWriter& value(std::string_view v);
    JsonWriter& value(const char* v);
    JsonWriter& value(double v);
    JsonWriter& value(std::uint64_t v);
    JsonWriter& value(bool v);

    /** key + value in one call. */
    template <typename T>
    JsonWriter&
    kv(std::string_view k, T v)
    {
        key(k);
        return value(v);
    }

  private:
    void separator();
    static std::string escape(std::string_view s);

    std::ostream& os_;
    /** Whether a value has been emitted at each nesting level. */
    std::string stack_; ///< 'o' = object, 'a' = array
    bool need_comma_ = false;
    bool after_key_ = false;
};

/** Serialise one per-benchmark report as a JSON object. */
void writeReportJson(std::ostream& os, const ReliabilityReport& report);

/** Serialise a whole study (all cells + claim summary) as JSON. */
void writeStudyJson(std::ostream& os, const StudyResult& study);

/** Flat CSV of a study: one row per (benchmark, GPU) cell. */
void writeStudyCsv(std::ostream& os, const StudyResult& study);

// ------------------------------------------------------------------------
// JSONL shard store — the orchestrator's checkpoint format.  One record
// per line, append-only, so a killed study leaves at worst one truncated
// line (which the reader skips).

/** Serialise @p record as a single JSON object on one line (no '\n'). */
void writeShardRecord(std::ostream& os, const ShardRecord& record);

/** Parse one store line into @p out; false for malformed/truncated
 *  lines (the caller should skip them, not abort). */
bool parseShardRecord(std::string_view line, ShardRecord& out);

/** Read every well-formed record from a shard-store stream. */
std::vector<ShardRecord> readShardStore(std::istream& is);

} // namespace gpr

#endif // GPR_CORE_EXPORT_HH
