#include "core/bench_cli.hh"

#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "common/logging.hh"
#include "common/string_utils.hh"
#include "core/export.hh"

namespace gpr {
namespace {

constexpr std::size_t kDefaultInjections = 150;

void
usage()
{
    std::fprintf(
        stderr,
        "flags: --injections=N --confidence=C --seed=S --threads=T\n"
        "       --jobs=N --shards=N --checkpoints=N --store=FILE\n"
        "       --resume[=FILE] --workloads=a,b,...\n"
        "       --gpus=7970,fx5600,fx5800,gtx480\n"
        "       --structures=rf,lds,srf,pred,simt (registry subset)\n"
        "       --ace-only --csv --json --quiet\n"
        "       (--checkpoints=0 runs every injection from scratch — the\n"
        "        legacy engine kept for differential testing)\n"
        "env:   GPR_INJECTIONS overrides the default injection count\n");
}

} // namespace

bool
BenchCli::parse(int argc, char** argv)
{
    study.analysis.plan.injections = kDefaultInjections;
    if (const char* env = std::getenv("GPR_INJECTIONS")) {
        if (const auto n = parseInt(env); n && *n >= 0) {
            study.analysis.plan.injections =
                static_cast<std::size_t>(*n);
        }
    }

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](std::string_view prefix) -> std::string {
            return arg.substr(prefix.size());
        };

        if (startsWith(arg, "--injections=")) {
            const auto n = parseInt(value("--injections="));
            if (!n || *n < 0) {
                usage();
                return false;
            }
            study.analysis.plan.injections = static_cast<std::size_t>(*n);
        } else if (startsWith(arg, "--confidence=")) {
            const auto c = parseDouble(value("--confidence="));
            if (!c || *c <= 0 || *c >= 1) {
                usage();
                return false;
            }
            study.analysis.plan.confidence = *c;
        } else if (startsWith(arg, "--seed=")) {
            const auto s = parseInt(value("--seed="));
            if (!s) {
                usage();
                return false;
            }
            study.analysis.seed = static_cast<std::uint64_t>(*s);
        } else if (startsWith(arg, "--threads=") ||
                   startsWith(arg, "--jobs=")) {
            const auto t = parseInt(
                value(startsWith(arg, "--jobs=") ? "--jobs=" : "--threads="));
            if (!t || *t < 0) {
                usage();
                return false;
            }
            study.analysis.numThreads = static_cast<unsigned>(*t);
            orch.jobs = static_cast<unsigned>(*t);
        } else if (startsWith(arg, "--shards=")) {
            const auto s = parseInt(value("--shards="));
            if (!s || *s < 0) {
                usage();
                return false;
            }
            orch.shardsPerCampaign = static_cast<std::size_t>(*s);
        } else if (startsWith(arg, "--checkpoints=")) {
            const auto c = parseInt(value("--checkpoints="));
            if (!c || *c < 0) {
                usage();
                return false;
            }
            orch.checkpoints = static_cast<unsigned>(*c);
        } else if (startsWith(arg, "--store=")) {
            orch.storePath = value("--store=");
        } else if (startsWith(arg, "--resume=")) {
            orch.storePath = value("--resume=");
            orch.resume = true;
        } else if (arg == "--resume") {
            orch.resume = true;
            if (orch.storePath.empty())
                orch.storePath = "study.jsonl";
        } else if (startsWith(arg, "--workloads=")) {
            study.workloads.clear();
            for (const auto& w : split(value("--workloads="), ','))
                if (!w.empty())
                    study.workloads.push_back(w);
        } else if (startsWith(arg, "--gpus=")) {
            study.gpus.clear();
            for (const auto& g : split(value("--gpus="), ','))
                if (!g.empty())
                    study.gpus.push_back(gpuModelFromName(g));
        } else if (startsWith(arg, "--structures=")) {
            study.structures.clear();
            for (const auto& s : split(value("--structures="), ','))
                if (!s.empty())
                    study.structures.push_back(
                        targetStructureFromName(s));
        } else if (arg == "--ace-only") {
            study.analysis.aceOnly = true;
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--quiet") {
            study.verbose = false;
            setInformEnabled(false);
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return false;
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
            usage();
            return false;
        }
    }
    return true;
}

bool
BenchCli::printStudyJson(std::ostream& os, const StudyResult& study) const
{
    if (!json)
        return false;
    if (csv)
        std::fprintf(stderr, "note: --json supersedes --csv\n");
    writeStudyJson(os, study);
    os << '\n';
    return true;
}

void
BenchCli::printHeader(std::ostream& os, const std::string& title) const
{
    os << "== " << title << " ==\n";
    if (study.analysis.aceOnly) {
        os << "mode: ACE analysis only (no fault injection)\n";
    } else {
        os << strprintf(
            "statistical FI: %zu injections/structure, +/-%.2f%% margin "
            "at %.0f%% confidence (paper: 2000 => 2.88%% at 99%%)\n",
            study.analysis.plan.injections,
            100.0 * study.analysis.plan.errorMargin(),
            100.0 * study.analysis.plan.confidence);
    }
}

} // namespace gpr
