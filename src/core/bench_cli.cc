#include "core/bench_cli.hh"

#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "common/logging.hh"
#include "common/string_utils.hh"
#include "core/export.hh"

namespace gpr {
namespace {

constexpr std::size_t kDefaultInjections = 150;

void
usage()
{
    std::fprintf(
        stderr,
        "flags: --spec=FILE --dump-spec --dry-run\n"
        "       --injections=N --confidence=C --margin=M\n"
        "       --max-injections=N --seed=S --threads=T\n"
        "       --jobs=N --shards=N --checkpoints=N --store=FILE\n"
        "       --resume[=FILE] --workloads=a,b,...\n"
        "       --gpus=7970,fx5600,fx5800,gtx480\n"
        "       --structures=rf,lds,srf,pred,simt,l1d,l1i,l2 (registry subset)\n"
        "       --behavior=transient|stuck-at-0|stuck-at-1|intermittent\n"
        "       --pattern=single|adjacent-double|adjacent-quad\n"
        "       --ace-only --csv --json --quiet\n"
        "       (--spec loads a StudySpec JSON; later flags override\n"
        "        individual fields.  --margin=M > 0 switches to adaptive\n"
        "        sequential stopping: each campaign injects until every\n"
        "        rate's CI half-width <= M, capped at --max-injections\n"
        "        [default: the fixed-size equivalent].  --checkpoints=0\n"
        "        runs every injection from scratch — the legacy engine\n"
        "        kept for differential testing)\n"
        "env:   GPR_INJECTIONS overrides the default injection count\n");
}

} // namespace

bool
BenchCli::parse(int argc, char** argv)
{
    spec.plan.injections = kDefaultInjections;
    if (const char* env = std::getenv("GPR_INJECTIONS")) {
        if (const auto n = parseInt(env); n && *n >= 0)
            spec.plan.injections = static_cast<std::size_t>(*n);
    }

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](std::string_view prefix) -> std::string {
            return arg.substr(prefix.size());
        };

        if (startsWith(arg, "--spec=")) {
            // The file is the baseline; flags after it override fields.
            spec = StudySpec::fromJsonFile(value("--spec="));
        } else if (arg == "--dump-spec") {
            dumpSpec = true;
        } else if (arg == "--dry-run") {
            dryRun = true;
        } else if (startsWith(arg, "--injections=")) {
            const auto n = parseInt(value("--injections="));
            if (!n || *n < 0) {
                usage();
                return false;
            }
            spec.plan.injections = static_cast<std::size_t>(*n);
        } else if (startsWith(arg, "--confidence=")) {
            const auto c = parseDouble(value("--confidence="));
            if (!c || *c <= 0 || *c >= 1) {
                usage();
                return false;
            }
            spec.plan.confidence = *c;
        } else if (startsWith(arg, "--margin=")) {
            const auto m = parseDouble(value("--margin="));
            if (!m || *m < 0 || *m >= 1) {
                usage();
                return false;
            }
            spec.plan.margin = *m;
        } else if (startsWith(arg, "--max-injections=")) {
            const auto n = parseInt(value("--max-injections="));
            if (!n || *n < 0) {
                usage();
                return false;
            }
            spec.plan.maxInjections = static_cast<std::size_t>(*n);
        } else if (startsWith(arg, "--seed=")) {
            const auto s = parseInt(value("--seed="));
            if (!s) {
                usage();
                return false;
            }
            spec.seed = static_cast<std::uint64_t>(*s);
        } else if (startsWith(arg, "--threads=") ||
                   startsWith(arg, "--jobs=")) {
            const auto t = parseInt(
                value(startsWith(arg, "--jobs=") ? "--jobs=" : "--threads="));
            if (!t || *t < 0) {
                usage();
                return false;
            }
            spec.jobs = static_cast<unsigned>(*t);
        } else if (startsWith(arg, "--shards=")) {
            const auto s = parseInt(value("--shards="));
            if (!s || *s < 0) {
                usage();
                return false;
            }
            spec.shardsPerCampaign = static_cast<std::size_t>(*s);
        } else if (startsWith(arg, "--checkpoints=")) {
            const auto c = parseInt(value("--checkpoints="));
            if (!c || *c < 0) {
                usage();
                return false;
            }
            spec.checkpoints = static_cast<unsigned>(*c);
        } else if (startsWith(arg, "--store=")) {
            spec.storePath = value("--store=");
        } else if (startsWith(arg, "--resume=")) {
            spec.storePath = value("--resume=");
            spec.resume = true;
        } else if (arg == "--resume") {
            spec.resume = true;
            if (spec.storePath.empty())
                spec.storePath = "study.jsonl";
        } else if (startsWith(arg, "--workloads=")) {
            spec.workloads = parseWorkloadList(value("--workloads="));
        } else if (startsWith(arg, "--gpus=")) {
            spec.gpus = parseGpuList(value("--gpus="));
        } else if (startsWith(arg, "--structures=")) {
            spec.structures = parseStructureList(value("--structures="));
        } else if (startsWith(arg, "--behavior=")) {
            spec.faultBehavior = faultBehaviorFromName(value("--behavior="));
        } else if (startsWith(arg, "--pattern=")) {
            spec.faultPattern = faultPatternFromName(value("--pattern="));
        } else if (arg == "--ace-only") {
            spec.aceOnly = true;
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--quiet") {
            spec.verbose = false;
            setInformEnabled(false);
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return false;
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
            usage();
            return false;
        }
    }
    // Full validation is deferred to runMetaActions()/runStudy(): some
    // harnesses legitimately adjust the spec after parsing (fig3 flips
    // ace-only when no campaign was requested) and must not be failed
    // on the intermediate state.  Name typos still fail right here —
    // the list parsers validate against the registries.
    return true;
}

bool
BenchCli::runMetaActions(std::ostream& os) const
{
    if (dumpSpec) {
        spec.validate();
        spec.toJson(os);
        os << '\n';
        return true;
    }
    if (!dryRun)
        return false;

    const StudyPlan plan = planStudy(spec);
    os << "study plan (spec " << spec.campaignHashHex() << "):\n";
    os << strprintf("  %zu grid cells, %zu golden+ACE runs\n",
                    plan.gridCells, plan.goldenRuns);
    for (const StudyPlanCampaign& c : plan.campaigns) {
        os << strprintf(
            "  %-10s %-8s %-22s %3zu shards  %6llu injections\n",
            c.workload.c_str(),
            std::string(gpuShortName(c.gpu)).c_str(),
            std::string(targetStructureName(c.structure)).c_str(),
            c.shards, static_cast<unsigned long long>(c.injections));
    }
    os << strprintf("  total: %zu campaigns, %zu shards, %llu injections\n",
                    plan.campaigns.size(), plan.totalShards(),
                    static_cast<unsigned long long>(
                        plan.totalInjections()));
    if (spec.aceOnly)
        os << "  (ace-only: no fault-injection shards)\n";
    if (!spec.aceOnly && spec.plan.adaptive()) {
        os << strprintf(
            "  (adaptive: worst case; campaigns stop at +/-%.2f%% CI "
            "half-width, %.0f%% confidence)\n",
            100.0 * spec.plan.margin, 100.0 * spec.plan.confidence);
    }
    return true;
}

bool
BenchCli::rejectMetaActions(std::string_view harness) const
{
    if (!dumpSpec && !dryRun)
        return false;
    std::fprintf(stderr,
                 "%s runs a custom campaign, not the grid study its "
                 "spec would describe; --dump-spec/--dry-run apply to "
                 "grid harnesses (gpr study, bench_fig1/2/3)\n",
                 std::string(harness).c_str());
    return true;
}

bool
BenchCli::printStudyJson(std::ostream& os, const StudyResult& study) const
{
    if (!json)
        return false;
    if (csv)
        std::fprintf(stderr, "note: --json supersedes --csv\n");
    writeStudyJson(os, study);
    os << '\n';
    return true;
}

void
BenchCli::printHeader(std::ostream& os, const std::string& title) const
{
    os << "== " << title << " ==\n";
    if (spec.aceOnly) {
        os << "mode: ACE analysis only (no fault injection)\n";
    } else if (spec.plan.adaptive()) {
        os << strprintf(
            "statistical FI: adaptive stopping at +/-%.2f%% CI "
            "half-width, %.0f%% confidence, cap %zu "
            "injections/structure (%zu looks, peeking guard at "
            "%.2f%%)\n",
            100.0 * spec.plan.margin, 100.0 * spec.plan.confidence,
            spec.plan.resolvedMaxInjections(),
            sequentialSchedule(spec.plan).size(),
            100.0 * sequentialConfidence(spec.plan));
    } else {
        os << strprintf(
            "statistical FI: %zu injections/structure, +/-%.2f%% margin "
            "at %.0f%% confidence (paper: 2000 => 2.88%% at 99%%)\n",
            spec.plan.injections, 100.0 * spec.plan.errorMargin(),
            100.0 * spec.plan.confidence);
    }
    if (!spec.aceOnly && !spec.faultShape().isDefault()) {
        os << "fault model: "
           << std::string(faultBehaviorName(spec.faultBehavior)) << " x "
           << std::string(faultPatternName(spec.faultPattern)) << "\n";
    }
}

} // namespace gpr
