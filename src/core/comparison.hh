/**
 * @file
 * ComparisonStudy — the paper's full experiment: every benchmark on every
 * GPU, producing the series behind Fig. 1 (register-file AVF), Fig. 2
 * (local-memory AVF) and Fig. 3 (EPF), plus the cross-checks the text
 * claims (occupancy correlation, ACE-vs-FI accuracy per structure).
 */

#ifndef GPR_CORE_COMPARISON_HH
#define GPR_CORE_COMPARISON_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "common/table.hh"
#include "core/framework.hh"
#include "core/study_spec.hh"

namespace gpr {

/** @deprecated Superseded by the grid section of StudySpec; kept for
 *  one PR so existing callers keep compiling. */
struct StudyOptions
{
    AnalysisOptions analysis;
    /** Benchmarks to include (defaults to all ten). */
    std::vector<std::string> workloads;
    /** GPUs to include (defaults to all four, figure order). */
    std::vector<GpuModel> gpus;
    /**
     * Restrict fault injection to these registered structures (empty =
     * every structure applicable to a cell).  The restriction composes
     * with per-cell applicability and keeps the per-structure campaign
     * seeding, so a restricted study's counts are bit-identical to the
     * matching slice of an unrestricted one — and resume against a
     * store written either way just works.
     */
    std::vector<TargetStructure> structures;
    /** Print progress lines to stderr as cells complete. */
    bool verbose = true;
};

/** All reports of a study, indexed by (workload, gpu). */
struct StudyResult
{
    std::vector<std::string> workloads;
    std::vector<GpuModel> gpus;
    /** reports[w * gpus.size() + g] */
    std::vector<ReliabilityReport> reports;

    const ReliabilityReport& at(std::size_t w, std::size_t g) const;

    /** Fig. 1 series: register-file AVF-FI / AVF-ACE / occupancy. */
    TextTable figure1() const;
    /** Fig. 2 series: local-memory AVF (local-memory benchmarks only). */
    TextTable figure2() const;
    /** Fig. 3 series: EPF per benchmark x GPU. */
    TextTable figure3() const;

    /**
     * The paper's textual claims, quantified:
     * Pearson correlation of AVF with occupancy per structure, and the
     * mean ACE-vs-FI gap per structure (expect: large for the register
     * file, small for local memory).
     */
    struct Claims
    {
        double rfAvfOccupancyCorrelation = 0.0;
        double lmAvfOccupancyCorrelation = 0.0;
        double rfMeanAceOverestimate = 0.0; ///< mean (ACE - FI), RF
        double lmMeanAceGap = 0.0;          ///< mean |ACE - FI|, LDS
        double fiSecondsTotal = 0.0;
        double aceSecondsTotal = 0.0;
    };
    Claims claims() const;

    void printClaims(std::ostream& os) const;
};

/** Run the study @p spec describes.  This is the expensive entry point
 *  (equivalent to runStudy(spec) with default execution settings). */
StudyResult runComparisonStudy(const StudySpec& spec);

/** Run the paper's full experiment (paperStudySpec()). */
StudyResult runComparisonStudy();

/** @deprecated Use runComparisonStudy(const StudySpec&). */
StudyResult runComparisonStudy(const StudyOptions& options);

} // namespace gpr

#endif // GPR_CORE_COMPARISON_HH
