#include "core/export.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/logging.hh"
#include "common/string_utils.hh"
#include "sim/structure_registry.hh"

namespace gpr {

JsonWriter::JsonWriter(std::ostream& os) : os_(os) {}

void
JsonWriter::separator()
{
    if (after_key_) {
        after_key_ = false;
        return;
    }
    if (need_comma_)
        os_ << ',';
}

std::string
JsonWriter::escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

JsonWriter&
JsonWriter::beginObject()
{
    separator();
    os_ << '{';
    stack_ += 'o';
    need_comma_ = false;
    return *this;
}

JsonWriter&
JsonWriter::endObject()
{
    GPR_ASSERT(!stack_.empty() && stack_.back() == 'o',
               "endObject without beginObject");
    stack_.pop_back();
    os_ << '}';
    need_comma_ = true;
    return *this;
}

JsonWriter&
JsonWriter::beginArray()
{
    separator();
    os_ << '[';
    stack_ += 'a';
    need_comma_ = false;
    return *this;
}

JsonWriter&
JsonWriter::endArray()
{
    GPR_ASSERT(!stack_.empty() && stack_.back() == 'a',
               "endArray without beginArray");
    stack_.pop_back();
    os_ << ']';
    need_comma_ = true;
    return *this;
}

JsonWriter&
JsonWriter::key(std::string_view k)
{
    GPR_ASSERT(!stack_.empty() && stack_.back() == 'o',
               "keys only exist inside objects");
    if (need_comma_)
        os_ << ',';
    os_ << '"' << escape(k) << "\":";
    after_key_ = true;
    need_comma_ = false;
    return *this;
}

JsonWriter&
JsonWriter::value(std::string_view v)
{
    separator();
    os_ << '"' << escape(v) << '"';
    need_comma_ = true;
    return *this;
}

JsonWriter&
JsonWriter::value(const char* v)
{
    return value(std::string_view(v));
}

JsonWriter&
JsonWriter::value(double v)
{
    separator();
    if (std::isfinite(v))
        os_ << strprintf("%.9g", v);
    else
        os_ << "null"; // JSON has no inf/nan
    need_comma_ = true;
    return *this;
}

JsonWriter&
JsonWriter::value(std::uint64_t v)
{
    separator();
    os_ << v;
    need_comma_ = true;
    return *this;
}

JsonWriter&
JsonWriter::value(bool v)
{
    separator();
    os_ << (v ? "true" : "false");
    need_comma_ = true;
    return *this;
}

JsonWriter&
JsonWriter::raw(std::string_view token)
{
    separator();
    os_ << token;
    need_comma_ = true;
    return *this;
}

// ------------------------------------------------------------ JSON reader

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        fatal("JSON value is not a boolean");
    return bool_;
}

double
JsonValue::asDouble() const
{
    if (kind_ != Kind::Number)
        fatal("JSON value is not a number");
    char* end = nullptr;
    const double v = std::strtod(scalar_.c_str(), &end);
    if (!end || *end != '\0')
        fatal("malformed JSON number token '", scalar_, "'");
    return v;
}

std::uint64_t
JsonValue::asU64() const
{
    if (kind_ != Kind::Number)
        fatal("JSON value is not a number");
    // Parse the raw token so 64-bit seeds above 2^53 survive exactly.
    if (scalar_.find_first_of(".eE-") != std::string::npos)
        fatal("JSON number '", scalar_, "' is not an unsigned integer");
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(scalar_.c_str(), &end, 10);
    if (!end || *end != '\0' || errno == ERANGE)
        fatal("JSON number '", scalar_, "' does not fit in 64 bits");
    return v;
}

const std::string&
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        fatal("JSON value is not a string");
    return scalar_;
}

const std::vector<JsonValue>&
JsonValue::items() const
{
    if (kind_ != Kind::Array)
        fatal("JSON value is not an array");
    return items_;
}

const std::vector<std::pair<std::string, JsonValue>>&
JsonValue::members() const
{
    if (kind_ != Kind::Object)
        fatal("JSON value is not an object");
    return members_;
}

const JsonValue*
JsonValue::find(std::string_view key) const
{
    for (const auto& [k, v] : members()) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

JsonValue
JsonValue::makeNull()
{
    return JsonValue{};
}

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::makeNumber(std::string token)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.scalar_ = std::move(token);
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.scalar_ = std::move(s);
    return v;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> items)
{
    JsonValue v;
    v.kind_ = Kind::Array;
    v.items_ = std::move(items);
    return v;
}

JsonValue
JsonValue::makeObject(
    std::vector<std::pair<std::string, JsonValue>> members)
{
    JsonValue v;
    v.kind_ = Kind::Object;
    v.members_ = std::move(members);
    return v;
}

namespace {

/** Recursive-descent parser over the subset JsonWriter emits (full JSON
 *  minus \uXXXX escapes above ASCII). */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    JsonValue
    parseDocument()
    {
        JsonValue v = parseValue();
        skipWhitespace();
        if (pos_ != text_.size())
            fail("trailing garbage after JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(std::string_view what) const
    {
        fatal("JSON parse error at byte ", pos_, ": ", what);
    }

    void
    skipWhitespace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char
    peek()
    {
        skipWhitespace();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(strprintf("expected '%c'", c));
        ++pos_;
    }

    bool
    consumeLiteral(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    JsonValue
    parseValue()
    {
        const char c = peek();
        switch (c) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return JsonValue::makeString(parseString());
          case 't':
          case 'f': {
            if (consumeLiteral("true"))
                return JsonValue::makeBool(true);
            if (consumeLiteral("false"))
                return JsonValue::makeBool(false);
            fail("malformed literal");
          }
          case 'n': {
            if (!consumeLiteral("null"))
                fail("malformed literal");
            return JsonValue::makeNull();
          }
          default:
            return parseNumber();
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':
              case '\\':
              case '/':
                out += esc;
                break;
              case 'n':
                out += '\n';
                break;
              case 't':
                out += '\t';
                break;
              case 'r':
                out += '\r';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("malformed \\u escape");
                }
                if (code > 0x7f)
                    fail("\\u escapes above ASCII are not supported");
                out += static_cast<char>(code);
                break;
              }
              default:
                fail("unknown escape character");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        skipWhitespace();
        const std::size_t begin = pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '-' ||
                text_[pos_] == '+')) {
            ++pos_;
        }
        if (pos_ == begin)
            fail("expected a value");
        std::string token(text_.substr(begin, pos_ - begin));
        // Validate the token now so accessors can assume it is sound.
        char* end = nullptr;
        std::strtod(token.c_str(), &end);
        if (!end || *end != '\0')
            fail("malformed number");
        return JsonValue::makeNumber(std::move(token));
    }

    JsonValue
    parseArray()
    {
        expect('[');
        std::vector<JsonValue> items;
        if (peek() == ']') {
            ++pos_;
            return JsonValue::makeArray(std::move(items));
        }
        while (true) {
            items.push_back(parseValue());
            const char c = peek();
            ++pos_;
            if (c == ']')
                return JsonValue::makeArray(std::move(items));
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        std::vector<std::pair<std::string, JsonValue>> members;
        if (peek() == '}') {
            ++pos_;
            return JsonValue::makeObject(std::move(members));
        }
        while (true) {
            skipWhitespace();
            std::string key = parseString();
            expect(':');
            JsonValue member = parseValue();
            for (const auto& [seen, ignored] : members) {
                (void)ignored;
                if (seen == key)
                    fail("duplicate object key '" + key + "'");
            }
            members.emplace_back(std::move(key), std::move(member));
            const char c = peek();
            ++pos_;
            if (c == '}')
                return JsonValue::makeObject(std::move(members));
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

} // namespace

JsonValue
parseJson(std::string_view text)
{
    return JsonParser(text).parseDocument();
}

namespace {

void
writeStructure(JsonWriter& j, std::string_view key,
               const StructureReport& sr)
{
    j.key(key).beginObject();
    j.kv("applicable", sr.applicable);
    if (sr.applicable) {
        // FI fields only exist when injections actually ran on this
        // structure (--ace-only and --structures exclusions leave
        // placeholder zeros that would read as measured reliability).
        if (sr.injections) {
            // The fault model the rates were measured under — always
            // present so per-behavior exports are self-describing.
            j.kv("fault_behavior", faultBehaviorName(sr.behavior));
            j.kv("fault_pattern", faultPatternName(sr.pattern));
            j.kv("avf_fi", sr.avfFi);
            j.kv("fi_error_margin", sr.fiErrorMargin);
            j.kv("sdc_rate", sr.sdcRate);
            j.kv("due_rate", sr.dueRate);
            // Every measured rate carries its Wilson interval at
            // ci_confidence; achieved_margin is the largest half-width
            // (<= the spec margin when the stopping rule ended the
            // campaign; larger means a cap cut it short).
            j.kv("avf_ci_lo", sr.avfCi.lo);
            j.kv("avf_ci_hi", sr.avfCi.hi);
            j.kv("sdc_ci_lo", sr.sdcCi.lo);
            j.kv("sdc_ci_hi", sr.sdcCi.hi);
            j.kv("due_ci_lo", sr.dueCi.lo);
            j.kv("due_ci_hi", sr.dueCi.hi);
            j.kv("achieved_margin", sr.achievedMargin);
            j.kv("ci_confidence", sr.ciConfidence);
        }
        j.kv("avf_ace", sr.avfAce);
        j.kv("occupancy", sr.occupancy);
        j.kv("injections", static_cast<std::uint64_t>(sr.injections));
    }
    j.endObject();
}

} // namespace

void
writeReportJson(std::ostream& os, const ReliabilityReport& report)
{
    JsonWriter j(os);
    j.beginObject();
    j.kv("workload", report.workload);
    j.kv("gpu", report.gpuName);
    j.kv("cycles", static_cast<std::uint64_t>(report.cycles));
    j.kv("exec_seconds", report.execSeconds);
    j.kv("ipc", report.ipc);
    j.kv("warp_occupancy", report.warpOccupancy);
    for (const StructureSpec& spec : structureRegistry())
        writeStructure(j, spec.jsonKey, report.forStructure(spec.id));
    j.key("epf").beginObject();
    j.kv("fit_register_file", report.epf.fitRegisterFile);
    j.kv("fit_local_memory", report.epf.fitLocalMemory);
    j.kv("fit_scalar_register_file", report.epf.fitScalarRegisterFile);
    j.kv("fit_total", report.epf.fitTotal());
    j.kv("eit", report.epf.eit);
    j.kv("epf", report.epf.epf());
    j.kv("epf_ci_lo", report.epfCi.lo);
    j.kv("epf_ci_hi", report.epfCi.hi);
    j.endObject();
    j.endObject();
}

void
writeStudyJson(std::ostream& os, const StudyResult& study)
{
    JsonWriter j(os);
    j.beginObject();
    j.key("cells").beginArray();
    os.flush();
    for (const ReliabilityReport& report : study.reports) {
        // Each cell rendered through the same single-report writer for
        // consistency; JsonWriter instances cannot nest across calls,
        // so emit via a fresh writer into the same stream with manual
        // comma placement.
        if (&report != &study.reports.front())
            os << ',';
        writeReportJson(os, report);
    }
    j.endArray();

    const auto claims = study.claims();
    j.key("claims").beginObject();
    j.kv("rf_avf_occupancy_correlation", claims.rfAvfOccupancyCorrelation);
    j.kv("lm_avf_occupancy_correlation", claims.lmAvfOccupancyCorrelation);
    j.kv("rf_mean_ace_overestimate", claims.rfMeanAceOverestimate);
    j.kv("lm_mean_ace_gap", claims.lmMeanAceGap);
    j.kv("fi_seconds_total", claims.fiSecondsTotal);
    j.kv("ace_seconds_total", claims.aceSecondsTotal);
    j.endObject();
    j.endObject();
}

void
writeStudyCsv(std::ostream& os, const StudyResult& study)
{
    TextTable table(
        {"benchmark", "gpu", "cycles", "exec_seconds", "ipc",
         "rf_avf_fi", "rf_avf_lo", "rf_avf_hi", "rf_avf_ace",
         "rf_occupancy", "rf_sdc", "rf_sdc_lo", "rf_sdc_hi", "rf_due",
         "rf_due_lo", "rf_due_hi", "rf_injections",
         "lm_applicable", "lm_avf_fi", "lm_avf_lo", "lm_avf_hi",
         "lm_avf_ace", "lm_occupancy", "lm_injections",
         "ci_confidence", "fit_total", "eit", "epf", "epf_lo", "epf_hi"});
    for (const ReliabilityReport& r : study.reports) {
        const StructureReport& rf =
            r.forStructure(TargetStructure::VectorRegisterFile);
        const StructureReport& lm =
            r.forStructure(TargetStructure::SharedMemory);
        // FI cells of a structure no injections ran on stay empty —
        // "0.000000" would read as a measured ultra-reliable result.
        auto fi_cell = [](const StructureReport& sr, double value) {
            return sr.injections ? strprintf("%.6f", value)
                                 : std::string();
        };
        const double conf =
            rf.injections ? rf.ciConfidence : lm.ciConfidence;
        table.addRow(
            {r.workload, r.gpuName,
             strprintf("%llu", static_cast<unsigned long long>(r.cycles)),
             strprintf("%.6e", r.execSeconds), strprintf("%.3f", r.ipc),
             fi_cell(rf, rf.avfFi),
             fi_cell(rf, rf.avfCi.lo),
             fi_cell(rf, rf.avfCi.hi),
             strprintf("%.6f", rf.avfAce),
             strprintf("%.6f", rf.occupancy),
             fi_cell(rf, rf.sdcRate),
             fi_cell(rf, rf.sdcCi.lo),
             fi_cell(rf, rf.sdcCi.hi),
             fi_cell(rf, rf.dueRate),
             fi_cell(rf, rf.dueCi.lo),
             fi_cell(rf, rf.dueCi.hi),
             strprintf("%zu", rf.injections),
             lm.applicable ? "1" : "0",
             fi_cell(lm, lm.avfFi),
             fi_cell(lm, lm.avfCi.lo),
             fi_cell(lm, lm.avfCi.hi),
             strprintf("%.6f", lm.avfAce),
             strprintf("%.6f", lm.occupancy),
             strprintf("%zu", lm.injections),
             conf > 0.0 ? strprintf("%.4f", conf) : std::string(),
             strprintf("%.3f", r.epf.fitTotal()),
             strprintf("%.6e", r.epf.eit),
             strprintf("%.6e", r.epf.epf()),
             strprintf("%.6e", r.epfCi.lo),
             strprintf("%.6e", r.epfCi.hi)});
    }
    table.renderCsv(os);
}

// ------------------------------------------------------------- shard store

namespace {

/**
 * Locate the raw value token of @p key in a flat one-line JSON object we
 * emitted ourselves (string values never contain escapes: workload and
 * GPU names are plain identifiers).  Not a general JSON parser.
 */
bool
findField(std::string_view line, std::string_view key, std::string_view& out)
{
    const std::string needle = "\"" + std::string(key) + "\":";
    const auto pos = line.find(needle);
    if (pos == std::string_view::npos)
        return false;
    std::size_t begin = pos + needle.size();
    if (begin >= line.size())
        return false;
    std::size_t end;
    if (line[begin] == '"') {
        ++begin;
        end = line.find('"', begin);
        if (end == std::string_view::npos)
            return false;
    } else {
        end = line.find_first_of(",}", begin);
        if (end == std::string_view::npos)
            return false;
    }
    out = line.substr(begin, end - begin);
    return true;
}

bool
fieldU64(std::string_view line, std::string_view key, std::uint64_t& out)
{
    std::string_view tok;
    if (!findField(line, key, tok) || tok.empty())
        return false;
    char* end = nullptr;
    const std::string s(tok);
    out = std::strtoull(s.c_str(), &end, 10);
    return end && *end == '\0';
}

bool
fieldDouble(std::string_view line, std::string_view key, double& out)
{
    std::string_view tok;
    if (!findField(line, key, tok) || tok.empty())
        return false;
    char* end = nullptr;
    const std::string s(tok);
    out = std::strtod(s.c_str(), &end);
    return end && *end == '\0';
}

} // namespace

void
writeStoreHeader(std::ostream& os, const StoreHeader& header)
{
    JsonWriter j(os);
    j.beginObject();
    j.kv("gpr_store", header.version);
    j.kv("spec_hash", header.specHash);
    if (!header.specJson.empty())
        j.key("spec").raw(header.specJson); // pre-serialised object
    j.endObject();
}

bool
parseStoreHeader(std::string_view line, StoreHeader& out)
{
    try {
        const JsonValue v = parseJson(line);
        const JsonValue* version = v.find("gpr_store");
        const JsonValue* hash = v.find("spec_hash");
        if (!version || !hash)
            return false;
        StoreHeader h;
        h.version = version->asU64();
        h.specHash = hash->asString();
        out = std::move(h);
        return true;
    } catch (const FatalError&) {
        return false;
    }
}

void
writeShardRecord(std::ostream& os, const ShardRecord& record)
{
    JsonWriter j(os);
    j.beginObject();
    j.kv("workload", record.key.workload);
    j.kv("gpu", gpuModelName(record.key.gpu));
    j.kv("structure", targetStructureName(record.key.structure));
    j.kv("shard", std::uint64_t{record.key.shardIndex});
    j.kv("begin", record.key.injectionBegin);
    j.kv("end", record.key.injectionEnd);
    j.kv("campaign_seed", record.key.campaignSeed);
    j.kv("workload_seed", record.key.workloadSeed);
    // Shape keys only when non-default, so every pre-shape store stays
    // byte-identical to what this build writes for default campaigns.
    if (record.key.behavior != FaultBehavior::Transient)
        j.kv("behavior", faultBehaviorName(record.key.behavior));
    if (record.key.pattern != FaultPattern::SingleBit)
        j.kv("pattern", faultPatternName(record.key.pattern));
    j.kv("masked", record.counts.masked);
    j.kv("sdc", record.counts.sdc);
    j.kv("due", record.counts.due);
    j.kv("busy_seconds", record.counts.busySeconds);
    j.endObject();
}

bool
parseShardRecord(std::string_view line, ShardRecord& out)
{
    // A complete record ends in '}' — a truncated tail line does not.
    const auto close = line.find_last_not_of(" \t\r");
    if (close == std::string_view::npos || line[close] != '}')
        return false;

    std::string_view workload, gpu, structure;
    if (!findField(line, "workload", workload) ||
        !findField(line, "gpu", gpu) ||
        !findField(line, "structure", structure)) {
        return false;
    }

    ShardRecord r;
    r.key.workload = std::string(workload);
    if (!tryTargetStructureFromName(structure, r.key.structure))
        return false;
    try {
        r.key.gpu = gpuModelFromName(gpu);
    } catch (const FatalError&) {
        return false;
    }

    std::uint64_t shard = 0;
    if (!fieldU64(line, "shard", shard) ||
        !fieldU64(line, "begin", r.key.injectionBegin) ||
        !fieldU64(line, "end", r.key.injectionEnd) ||
        !fieldU64(line, "campaign_seed", r.key.campaignSeed) ||
        !fieldU64(line, "workload_seed", r.key.workloadSeed) ||
        !fieldU64(line, "masked", r.counts.masked) ||
        !fieldU64(line, "sdc", r.counts.sdc) ||
        !fieldU64(line, "due", r.counts.due) ||
        !fieldDouble(line, "busy_seconds", r.counts.busySeconds)) {
        return false;
    }
    r.key.shardIndex = static_cast<std::uint32_t>(shard);

    // Optional shape fields; absent means the default (pre-shape
    // stores carry no behavior/pattern keys).
    std::string_view behavior, pattern;
    if (findField(line, "behavior", behavior) &&
        !tryFaultBehaviorFromName(behavior, r.key.behavior)) {
        return false;
    }
    if (findField(line, "pattern", pattern) &&
        !tryFaultPatternFromName(pattern, r.key.pattern)) {
        return false;
    }

    // Internal consistency: counts must cover exactly the stated range.
    const std::uint64_t n = r.counts.masked + r.counts.sdc + r.counts.due;
    if (r.key.injectionEnd < r.key.injectionBegin ||
        n != r.key.injectionEnd - r.key.injectionBegin) {
        return false;
    }
    out = std::move(r);
    return true;
}

std::vector<ShardRecord>
readShardStore(std::istream& is)
{
    std::vector<ShardRecord> records;
    // Size the record vector from the stream length up front (records
    // are one line each, ~120 bytes in practice) so a large store's
    // replay does not pay repeated reallocation + move of every parsed
    // record.  Unseekable streams just fall back to geometric growth.
    const auto pos = is.tellg();
    if (pos != std::istream::pos_type(-1)) {
        is.seekg(0, std::ios::end);
        const auto end = is.tellg();
        is.seekg(pos);
        if (end != std::istream::pos_type(-1) && end > pos)
            records.reserve(
                static_cast<std::size_t>(end - pos) / 120 + 1);
    }
    std::string line;
    line.reserve(256);
    while (std::getline(is, line)) {
        ShardRecord r;
        if (parseShardRecord(line, r))
            records.push_back(std::move(r));
    }
    return records;
}

} // namespace gpr
