#include "core/export.hh"

#include <cmath>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/logging.hh"
#include "common/string_utils.hh"
#include "sim/structure_registry.hh"

namespace gpr {

JsonWriter::JsonWriter(std::ostream& os) : os_(os) {}

void
JsonWriter::separator()
{
    if (after_key_) {
        after_key_ = false;
        return;
    }
    if (need_comma_)
        os_ << ',';
}

std::string
JsonWriter::escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

JsonWriter&
JsonWriter::beginObject()
{
    separator();
    os_ << '{';
    stack_ += 'o';
    need_comma_ = false;
    return *this;
}

JsonWriter&
JsonWriter::endObject()
{
    GPR_ASSERT(!stack_.empty() && stack_.back() == 'o',
               "endObject without beginObject");
    stack_.pop_back();
    os_ << '}';
    need_comma_ = true;
    return *this;
}

JsonWriter&
JsonWriter::beginArray()
{
    separator();
    os_ << '[';
    stack_ += 'a';
    need_comma_ = false;
    return *this;
}

JsonWriter&
JsonWriter::endArray()
{
    GPR_ASSERT(!stack_.empty() && stack_.back() == 'a',
               "endArray without beginArray");
    stack_.pop_back();
    os_ << ']';
    need_comma_ = true;
    return *this;
}

JsonWriter&
JsonWriter::key(std::string_view k)
{
    GPR_ASSERT(!stack_.empty() && stack_.back() == 'o',
               "keys only exist inside objects");
    if (need_comma_)
        os_ << ',';
    os_ << '"' << escape(k) << "\":";
    after_key_ = true;
    need_comma_ = false;
    return *this;
}

JsonWriter&
JsonWriter::value(std::string_view v)
{
    separator();
    os_ << '"' << escape(v) << '"';
    need_comma_ = true;
    return *this;
}

JsonWriter&
JsonWriter::value(const char* v)
{
    return value(std::string_view(v));
}

JsonWriter&
JsonWriter::value(double v)
{
    separator();
    if (std::isfinite(v))
        os_ << strprintf("%.9g", v);
    else
        os_ << "null"; // JSON has no inf/nan
    need_comma_ = true;
    return *this;
}

JsonWriter&
JsonWriter::value(std::uint64_t v)
{
    separator();
    os_ << v;
    need_comma_ = true;
    return *this;
}

JsonWriter&
JsonWriter::value(bool v)
{
    separator();
    os_ << (v ? "true" : "false");
    need_comma_ = true;
    return *this;
}

namespace {

void
writeStructure(JsonWriter& j, std::string_view key,
               const StructureReport& sr)
{
    j.key(key).beginObject();
    j.kv("applicable", sr.applicable);
    if (sr.applicable) {
        // FI fields only exist when injections actually ran on this
        // structure (--ace-only and --structures exclusions leave
        // placeholder zeros that would read as measured reliability).
        if (sr.injections) {
            j.kv("avf_fi", sr.avfFi);
            j.kv("fi_error_margin", sr.fiErrorMargin);
            j.kv("sdc_rate", sr.sdcRate);
            j.kv("due_rate", sr.dueRate);
        }
        j.kv("avf_ace", sr.avfAce);
        j.kv("occupancy", sr.occupancy);
        j.kv("injections", static_cast<std::uint64_t>(sr.injections));
    }
    j.endObject();
}

} // namespace

void
writeReportJson(std::ostream& os, const ReliabilityReport& report)
{
    JsonWriter j(os);
    j.beginObject();
    j.kv("workload", report.workload);
    j.kv("gpu", report.gpuName);
    j.kv("cycles", static_cast<std::uint64_t>(report.cycles));
    j.kv("exec_seconds", report.execSeconds);
    j.kv("ipc", report.ipc);
    j.kv("warp_occupancy", report.warpOccupancy);
    for (const StructureSpec& spec : structureRegistry())
        writeStructure(j, spec.jsonKey, report.forStructure(spec.id));
    j.key("epf").beginObject();
    j.kv("fit_register_file", report.epf.fitRegisterFile);
    j.kv("fit_local_memory", report.epf.fitLocalMemory);
    j.kv("fit_scalar_register_file", report.epf.fitScalarRegisterFile);
    j.kv("fit_total", report.epf.fitTotal());
    j.kv("eit", report.epf.eit);
    j.kv("epf", report.epf.epf());
    j.endObject();
    j.endObject();
}

void
writeStudyJson(std::ostream& os, const StudyResult& study)
{
    JsonWriter j(os);
    j.beginObject();
    j.key("cells").beginArray();
    os.flush();
    for (const ReliabilityReport& report : study.reports) {
        // Each cell rendered through the same single-report writer for
        // consistency; JsonWriter instances cannot nest across calls,
        // so emit via a fresh writer into the same stream with manual
        // comma placement.
        if (&report != &study.reports.front())
            os << ',';
        writeReportJson(os, report);
    }
    j.endArray();

    const auto claims = study.claims();
    j.key("claims").beginObject();
    j.kv("rf_avf_occupancy_correlation", claims.rfAvfOccupancyCorrelation);
    j.kv("lm_avf_occupancy_correlation", claims.lmAvfOccupancyCorrelation);
    j.kv("rf_mean_ace_overestimate", claims.rfMeanAceOverestimate);
    j.kv("lm_mean_ace_gap", claims.lmMeanAceGap);
    j.kv("fi_seconds_total", claims.fiSecondsTotal);
    j.kv("ace_seconds_total", claims.aceSecondsTotal);
    j.endObject();
    j.endObject();
}

void
writeStudyCsv(std::ostream& os, const StudyResult& study)
{
    TextTable table(
        {"benchmark", "gpu", "cycles", "exec_seconds", "ipc",
         "rf_avf_fi", "rf_avf_ace", "rf_occupancy", "rf_sdc", "rf_due",
         "lm_applicable", "lm_avf_fi", "lm_avf_ace", "lm_occupancy",
         "fit_total", "eit", "epf"});
    for (const ReliabilityReport& r : study.reports) {
        const StructureReport& rf =
            r.forStructure(TargetStructure::VectorRegisterFile);
        const StructureReport& lm =
            r.forStructure(TargetStructure::SharedMemory);
        // FI cells of a structure no injections ran on stay empty —
        // "0.000000" would read as a measured ultra-reliable result.
        auto fi_cell = [](const StructureReport& sr, double value) {
            return sr.injections ? strprintf("%.6f", value)
                                 : std::string();
        };
        table.addRow(
            {r.workload, r.gpuName,
             strprintf("%llu", static_cast<unsigned long long>(r.cycles)),
             strprintf("%.6e", r.execSeconds), strprintf("%.3f", r.ipc),
             fi_cell(rf, rf.avfFi),
             strprintf("%.6f", rf.avfAce),
             strprintf("%.6f", rf.occupancy),
             fi_cell(rf, rf.sdcRate),
             fi_cell(rf, rf.dueRate),
             lm.applicable ? "1" : "0",
             fi_cell(lm, lm.avfFi),
             strprintf("%.6f", lm.avfAce),
             strprintf("%.6f", lm.occupancy),
             strprintf("%.3f", r.epf.fitTotal()),
             strprintf("%.6e", r.epf.eit),
             strprintf("%.6e", r.epf.epf())});
    }
    table.renderCsv(os);
}

// ------------------------------------------------------------- shard store

namespace {

/**
 * Locate the raw value token of @p key in a flat one-line JSON object we
 * emitted ourselves (string values never contain escapes: workload and
 * GPU names are plain identifiers).  Not a general JSON parser.
 */
bool
findField(std::string_view line, std::string_view key, std::string_view& out)
{
    const std::string needle = "\"" + std::string(key) + "\":";
    const auto pos = line.find(needle);
    if (pos == std::string_view::npos)
        return false;
    std::size_t begin = pos + needle.size();
    if (begin >= line.size())
        return false;
    std::size_t end;
    if (line[begin] == '"') {
        ++begin;
        end = line.find('"', begin);
        if (end == std::string_view::npos)
            return false;
    } else {
        end = line.find_first_of(",}", begin);
        if (end == std::string_view::npos)
            return false;
    }
    out = line.substr(begin, end - begin);
    return true;
}

bool
fieldU64(std::string_view line, std::string_view key, std::uint64_t& out)
{
    std::string_view tok;
    if (!findField(line, key, tok) || tok.empty())
        return false;
    char* end = nullptr;
    const std::string s(tok);
    out = std::strtoull(s.c_str(), &end, 10);
    return end && *end == '\0';
}

bool
fieldDouble(std::string_view line, std::string_view key, double& out)
{
    std::string_view tok;
    if (!findField(line, key, tok) || tok.empty())
        return false;
    char* end = nullptr;
    const std::string s(tok);
    out = std::strtod(s.c_str(), &end);
    return end && *end == '\0';
}

} // namespace

void
writeShardRecord(std::ostream& os, const ShardRecord& record)
{
    JsonWriter j(os);
    j.beginObject();
    j.kv("workload", record.key.workload);
    j.kv("gpu", gpuModelName(record.key.gpu));
    j.kv("structure", targetStructureName(record.key.structure));
    j.kv("shard", std::uint64_t{record.key.shardIndex});
    j.kv("begin", record.key.injectionBegin);
    j.kv("end", record.key.injectionEnd);
    j.kv("campaign_seed", record.key.campaignSeed);
    j.kv("workload_seed", record.key.workloadSeed);
    j.kv("masked", record.counts.masked);
    j.kv("sdc", record.counts.sdc);
    j.kv("due", record.counts.due);
    j.kv("busy_seconds", record.counts.busySeconds);
    j.endObject();
}

bool
parseShardRecord(std::string_view line, ShardRecord& out)
{
    // A complete record ends in '}' — a truncated tail line does not.
    const auto close = line.find_last_not_of(" \t\r");
    if (close == std::string_view::npos || line[close] != '}')
        return false;

    std::string_view workload, gpu, structure;
    if (!findField(line, "workload", workload) ||
        !findField(line, "gpu", gpu) ||
        !findField(line, "structure", structure)) {
        return false;
    }

    ShardRecord r;
    r.key.workload = std::string(workload);
    if (!tryTargetStructureFromName(structure, r.key.structure))
        return false;
    try {
        r.key.gpu = gpuModelFromName(gpu);
    } catch (const FatalError&) {
        return false;
    }

    std::uint64_t shard = 0;
    if (!fieldU64(line, "shard", shard) ||
        !fieldU64(line, "begin", r.key.injectionBegin) ||
        !fieldU64(line, "end", r.key.injectionEnd) ||
        !fieldU64(line, "campaign_seed", r.key.campaignSeed) ||
        !fieldU64(line, "workload_seed", r.key.workloadSeed) ||
        !fieldU64(line, "masked", r.counts.masked) ||
        !fieldU64(line, "sdc", r.counts.sdc) ||
        !fieldU64(line, "due", r.counts.due) ||
        !fieldDouble(line, "busy_seconds", r.counts.busySeconds)) {
        return false;
    }
    r.key.shardIndex = static_cast<std::uint32_t>(shard);

    // Internal consistency: counts must cover exactly the stated range.
    const std::uint64_t n = r.counts.masked + r.counts.sdc + r.counts.due;
    if (r.key.injectionEnd < r.key.injectionBegin ||
        n != r.key.injectionEnd - r.key.injectionBegin) {
        return false;
    }
    out = std::move(r);
    return true;
}

std::vector<ShardRecord>
readShardStore(std::istream& is)
{
    std::vector<ShardRecord> records;
    std::string line;
    while (std::getline(is, line)) {
        ShardRecord r;
        if (parseShardRecord(line, r))
            records.push_back(std::move(r));
    }
    return records;
}

} // namespace gpr
