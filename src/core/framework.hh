/**
 * @file
 * ReliabilityFramework — the public façade of the library, playing the
 * role GUFI (NVIDIA) and SIFI (AMD) play in the paper: given a GPU model
 * and a benchmark, it produces every number the study needs — AVF by
 * fault injection, AVF by ACE analysis, structure occupancy, performance,
 * FIT and EPF — in one report.
 *
 * Typical use (see examples/quickstart.cc):
 *
 *     ReliabilityFramework fw(GpuModel::GeforceGtx480);
 *     ReliabilityReport rep = fw.analyze("vectoradd", options);
 *     rep.printSummary(std::cout);
 */

#ifndef GPR_CORE_FRAMEWORK_HH
#define GPR_CORE_FRAMEWORK_HH

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "arch/gpu_config.hh"
#include "core/study_spec.hh"
#include "reliability/ace.hh"
#include "reliability/campaign.hh"
#include "reliability/fit_epf.hh"
#include "sim/structure_registry.hh"
#include "workloads/workloads.hh"

namespace gpr {

/** Knobs for a full per-benchmark analysis.
 *  @deprecated Superseded by the campaign section of StudySpec; kept
 *  for one PR so existing callers keep compiling. */
struct AnalysisOptions
{
    /** Injections per structure (paper: 2,000). */
    SamplePlan plan = paperSamplePlan();
    std::uint64_t seed = 0xC0FFEE;
    unsigned numThreads = 0;
    std::uint64_t workloadSeed = 42;
    /** Skip the FI campaigns and report ACE + occupancy + perf only. */
    bool aceOnly = false;
    FitParams fitParams;
};

/** Per-structure reliability numbers. */
struct StructureReport
{
    TargetStructure structure = TargetStructure::VectorRegisterFile;
    bool applicable = false;   ///< e.g. LDS on a kernel with no shared use
    double avfFi = 0.0;
    double fiErrorMargin = 0.0;
    double sdcRate = 0.0;
    double dueRate = 0.0;
    /** Wilson intervals around the three measured rates, quoted at
     *  @ref ciConfidence (zero-width when nothing was injected). */
    Interval avfCi;
    Interval sdcCi;
    Interval dueCi;
    /** Largest CI half-width across SDC/DUE/AVF — what an adaptive
     *  campaign drove below the plan's margin. */
    double achievedMargin = 0.0;
    /** Confidence level of the intervals above. */
    double ciConfidence = 0.0;
    double avfAce = 0.0;
    double occupancy = 0.0;
    double fiWallSeconds = 0.0;
    /** Injections actually run: the adaptive stopping point, or the
     *  fixed plan size (0 = structure not measured). */
    std::size_t injections = 0;
    /** Fault model the FI rates above were measured under (study-wide;
     *  default = transient single-bit). */
    FaultBehavior behavior = FaultBehavior::Transient;
    FaultPattern pattern = FaultPattern::SingleBit;
};

/** Everything the study reports for one (GPU, benchmark) pair. */
struct ReliabilityReport
{
    std::string workload;
    GpuModel gpu = GpuModel::GeforceGtx480;
    std::string gpuName;

    /** One entry per registered structure, in registry order. */
    std::vector<StructureReport> structures;

    /** Lookup by id; throws FatalError on an unregistered structure. */
    const StructureReport& forStructure(TargetStructure s) const;

    // Performance.
    Cycle cycles = 0;
    double execSeconds = 0.0;
    double ipc = 0.0;
    double warpOccupancy = 0.0;

    // Combined metric (Fig. 3).
    EpfResult epf;
    /** EPF evaluated at the AVF interval endpoints — the error bar the
     *  fig3 bench renders (degenerate for ACE-only studies). */
    Interval epfCi;

    double aceWallSeconds = 0.0;

    /** Render a human-readable block to @p os. */
    void printSummary(std::ostream& os) const;
};

class ReliabilityFramework
{
  public:
    explicit ReliabilityFramework(GpuModel model);

    const GpuConfig& config() const { return config_; }

    /**
     * Full analysis of @p workload_name: golden run, FI campaigns on
     * every applicable structure, ACE analysis, and the FIT/EPF
     * roll-up.  The spec's workload/GPU grid is replaced by this one
     * (workload, GPU) cell (a structure restriction is honoured), and
     * store / resume / verbosity are cleared — a one-cell analysis is
     * not a checkpointable grid study.
     */
    ReliabilityReport analyze(std::string_view workload_name,
                              const StudySpec& spec) const;

    /** Full analysis under the default campaign (the paper's plan). */
    ReliabilityReport analyze(std::string_view workload_name) const;

    /** @deprecated Use analyze(name, const StudySpec&). */
    ReliabilityReport analyze(std::string_view workload_name,
                              const AnalysisOptions& options) const;

    /** Build the workload instance this framework would analyze. */
    WorkloadInstance buildInstance(std::string_view workload_name,
                                   std::uint64_t workload_seed = 42) const;

  private:
    GpuModel model_;
    const GpuConfig& config_;
};

} // namespace gpr

#endif // GPR_CORE_FRAMEWORK_HH
