#include "core/orchestrator.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/string_utils.hh"
#include "core/export.hh"
#include "reliability/ace.hh"
#include "workloads/workloads.hh"

namespace gpr {

// ---------------------------------------------------------- decomposition

std::size_t
defaultShardCount(const SamplePlan& plan)
{
    if (plan.injections == 0)
        return 0;
    // ~250 injections per shard: fine-grained enough to keep a pool busy
    // and to make resume checkpoints frequent, coarse enough that the
    // per-shard simulator setup stays negligible.  Deliberately *not* a
    // function of the worker count, so a store written at --jobs 1
    // resumes cleanly at --jobs 8.
    const std::size_t shards = (plan.injections + 249) / 250;
    return std::min<std::size_t>(std::max<std::size_t>(shards, 1), 64);
}

std::vector<ShardKey>
decomposeStudy(const StudySpec& spec)
{
    std::vector<ShardKey> shards;
    if (spec.aceOnly)
        return shards;
    const std::size_t n = spec.plan.injections;
    if (n == 0)
        return shards;
    std::size_t shards_per_campaign = spec.shardsPerCampaign;
    if (shards_per_campaign == 0)
        shards_per_campaign = defaultShardCount(spec.plan);
    const std::size_t per =
        (n + shards_per_campaign - 1) / shards_per_campaign;

    // Duplicate (workload, GPU) grid entries are one cell: identical
    // seeds produce identical counts, so they share one set of shards
    // (and one store identity — ShardKeys could not tell them apart).
    // Requested structures are validated against the registry up front
    // so a typo fails loudly before any simulation runs.
    for (TargetStructure s : spec.structures)
        structureSpec(s);

    std::set<std::pair<std::string, GpuModel>> seen;
    for (const std::string& w : spec.resolvedWorkloads()) {
        const bool uses_lds = makeWorkload(w)->usesLocalMemory();
        for (GpuModel gpu : spec.resolvedGpus()) {
            if (!seen.insert({w, gpu}).second)
                continue;
            const GpuConfig& config = gpuConfig(gpu);
            for (TargetStructure s : selectStructures(
                     config, uses_lds, spec.structures)) {
                for (std::size_t begin = 0, index = 0; begin < n;
                     begin += per, ++index) {
                    ShardKey key;
                    key.workload = w;
                    key.gpu = gpu;
                    key.structure = s;
                    key.shardIndex = static_cast<std::uint32_t>(index);
                    key.injectionBegin = begin;
                    key.injectionEnd = std::min(begin + per, n);
                    key.campaignSeed =
                        deriveSeed(spec.seed,
                                   static_cast<std::uint64_t>(s));
                    key.workloadSeed = spec.workloadSeed;
                    shards.push_back(std::move(key));
                }
            }
        }
    }
    return shards;
}

std::size_t
StudyPlan::totalShards() const
{
    std::size_t total = 0;
    for (const StudyPlanCampaign& c : campaigns)
        total += c.shards;
    return total;
}

std::uint64_t
StudyPlan::totalInjections() const
{
    std::uint64_t total = 0;
    for (const StudyPlanCampaign& c : campaigns)
        total += c.injections;
    return total;
}

StudyPlan
planStudy(const StudySpec& spec)
{
    spec.validate();
    StudyPlan plan;
    plan.gridCells =
        spec.resolvedWorkloads().size() * spec.resolvedGpus().size();

    std::set<std::pair<std::string, GpuModel>> cells;
    for (const std::string& w : spec.resolvedWorkloads())
        for (GpuModel g : spec.resolvedGpus())
            cells.insert({w, g});
    plan.goldenRuns = cells.size();

    for (const ShardKey& key : decomposeStudy(spec)) {
        if (!plan.campaigns.empty()) {
            StudyPlanCampaign& last = plan.campaigns.back();
            if (last.workload == key.workload && last.gpu == key.gpu &&
                last.structure == key.structure) {
                ++last.shards;
                last.injections += key.injectionEnd - key.injectionBegin;
                continue;
            }
        }
        StudyPlanCampaign c;
        c.workload = key.workload;
        c.gpu = key.gpu;
        c.structure = key.structure;
        c.shards = 1;
        c.injections = key.injectionEnd - key.injectionBegin;
        plan.campaigns.push_back(std::move(c));
    }
    return plan;
}

// -------------------------------------------------------------- execution

namespace {

/** One (workload, GPU) grid cell with its cached golden/ACE pass. */
struct Cell
{
    std::string workload;
    GpuModel gpu = GpuModel::GeforceGtx480;
    const GpuConfig* config = nullptr;
    bool usesLds = false;
    WorkloadInstance instance;
    AceResult ace;

    // Checkpoint pack shared by every shard of this cell.  Built
    // lazily by the first shard worker that needs it (one extra golden
    // pass) and released when the cell's last shard retires, so peak
    // pack memory tracks the cells currently in flight, not the whole
    // grid.
    std::once_flag packOnce;
    std::shared_ptr<const CheckpointPack> pack;
    std::atomic<std::size_t> shardsLeft{0};
};

/** Per-campaign accumulation of shard outcomes. */
struct CampaignTotals
{
    ShardCounts counts;
    std::size_t shardsDone = 0;
    std::size_t shardsTotal = 0;
};

void
assembleReport(ReliabilityReport& report, const Cell& cell,
               const StudySpec& spec,
               const std::map<TargetStructure, CampaignTotals>& campaigns)
{
    const std::vector<TargetStructure>& requested = spec.structures;
    report.workload = cell.workload;
    report.gpu = cell.gpu;
    report.gpuName = cell.config->name;
    report.aceWallSeconds = cell.ace.wallSeconds;
    report.cycles = cell.ace.goldenStats.cycles;
    report.execSeconds = executionSeconds(*cell.config, report.cycles);
    report.ipc = cell.ace.goldenStats.ipc();
    report.warpOccupancy = cell.ace.goldenStats.avgWarpOccupancy;

    report.structures.clear();
    report.structures.reserve(kNumTargetStructures);
    for (const StructureSpec& sspec : structureRegistry()) {
        StructureReport sr;
        sr.structure = sspec.id;
        sr.applicable =
            structureApplies(*cell.config, sspec.id, cell.usesLds);
        const bool selected =
            requested.empty() ||
            std::find(requested.begin(), requested.end(), sspec.id) !=
                requested.end();
        if (sr.applicable) {
            sr.avfAce = cell.ace.forStructure(sspec.id).avf();
            sr.occupancy = sspec.occupancy(cell.ace.goldenStats);
            // FI fields (incl. the injection count, which downstream
            // consumers read as "was this measured") stay zero for
            // structures a --structures restriction excluded; ACE +
            // occupancy are still reported — the golden pass covers
            // every structure for free.
            if (!spec.aceOnly && selected) {
                // Fold the shard counts through CampaignResult so the
                // statistics (AVF, rates, Wilson margin) share one
                // implementation with the standalone campaign path.
                const auto it = campaigns.find(sspec.id);
                CampaignResult cr;
                cr.structure = sspec.id;
                cr.confidence = spec.plan.confidence;
                cr.injections = spec.plan.injections;
                if (it != campaigns.end()) {
                    cr.masked =
                        static_cast<std::size_t>(it->second.counts.masked);
                    cr.sdc =
                        static_cast<std::size_t>(it->second.counts.sdc);
                    cr.due =
                        static_cast<std::size_t>(it->second.counts.due);
                    cr.wallSeconds = it->second.counts.busySeconds;
                }
                sr.avfFi = cr.avf();
                sr.fiErrorMargin = cr.errorMargin();
                sr.sdcRate = cr.sdcRate();
                sr.dueRate = cr.dueRate();
                sr.fiWallSeconds = cr.wallSeconds;
                sr.injections = cr.injections;
            }
        }
        report.structures.push_back(sr);
    }

    // EPF models the paper's three storage structures (the FIT roll-up
    // has no per-bit rate calibration for control cells).  Structures
    // without measured FI (--ace-only, or excluded by --structures)
    // fall back to their ACE AVF — reporting FIT 0 for a structure that
    // merely wasn't injected would read as ultra-reliable rather than
    // not-measured.
    const auto pick = [&](TargetStructure s) {
        const StructureReport& sr = report.forStructure(s);
        if (!sr.applicable)
            return 0.0;
        return sr.injections ? sr.avfFi : sr.avfAce;
    };
    report.epf = computeEpf(*cell.config, report.cycles,
                            pick(TargetStructure::VectorRegisterFile),
                            pick(TargetStructure::SharedMemory),
                            pick(TargetStructure::ScalarRegisterFile),
                            spec.fitParams);
}

} // namespace

StudyResult
runStudy(const StudySpec& spec, StudyProgress* progress_out)
{
    const auto t0 = std::chrono::steady_clock::now();
    spec.validate();

    StudyResult result;
    result.workloads = spec.resolvedWorkloads();
    result.gpus = spec.resolvedGpus();
    const std::size_t num_gpus = result.gpus.size();

    StudyProgress progress;
    progress.cells = result.workloads.size() * num_gpus;

    // Load completed shards from a previous (possibly killed) run.  The
    // store's header pins the campaign spec the shards were computed
    // under: resuming with a different campaign fails loudly instead of
    // silently mixing two experiments' counts.  (Execution knobs are
    // not part of the hash — stores stay resumable at any jobs/shards/
    // checkpoints setting.)
    std::map<ShardKey, ShardCounts> checkpointed;
    bool store_exists = false;
    bool backfill_header = false;
    if (spec.resume && !spec.storePath.empty()) {
        std::ifstream in(spec.storePath);
        if (in) {
            store_exists = true;
            // Header records are recognised at any line, not just the
            // first: a run killed before its header flushed — or a
            // legacy store that was back-filled on a previous resume —
            // must not lose the guard.
            bool saw_header = false;
            std::string line;
            while (std::getline(in, line)) {
                StoreHeader header;
                if (parseStoreHeader(line, header)) {
                    saw_header = true;
                    if (header.specHash != spec.campaignHashHex()) {
                        fatal("shard store '", spec.storePath,
                              "' was written under campaign spec ",
                              header.specHash,
                              " but the current spec is ",
                              spec.campaignHashHex(),
                              "; refusing to resume a mismatched store "
                              "(use a fresh --store to start over)");
                    }
                    continue;
                }
                ShardRecord r;
                if (parseShardRecord(line, r))
                    checkpointed[std::move(r.key)] = r.counts;
            }
            if (!saw_header) {
                warn("shard store '", spec.storePath,
                     "' has no spec header (older version, or a run "
                     "killed before the header flushed); resuming with "
                     "per-key matching only and stamping the current "
                     "spec so future resumes are verified again");
                backfill_header = true;
            }
        }
    }

    std::ofstream store;
    std::mutex store_mutex;
    if (!spec.storePath.empty()) {
        // A killed run can leave a truncated tail line without a newline;
        // start appending on a fresh line so the glued bytes stay one
        // (skippable) broken line instead of corrupting a new record.
        bool needs_newline = false;
        if (spec.resume && store_exists) {
            std::ifstream probe(spec.storePath, std::ios::binary);
            if (probe && probe.seekg(-1, std::ios::end)) {
                char last = '\n';
                probe.get(last);
                needs_newline = last != '\n';
            }
        }
        const bool fresh_store = !spec.resume || !store_exists;
        store.open(spec.storePath, spec.resume
                                       ? std::ios::out | std::ios::app
                                       : std::ios::out | std::ios::trunc);
        if (!store) {
            fatal("cannot open shard store '", spec.storePath,
                  "' for writing");
        }
        if (needs_newline)
            store << '\n';
        if (fresh_store || backfill_header) {
            StoreHeader header;
            header.specHash = spec.campaignHashHex();
            header.specJson = spec.toJsonString();
            writeStoreHeader(store, header);
            store << '\n';
            store.flush();
        }
    }

    // Canonical cells (duplicate grid entries collapse into one) and the
    // flat shard work-list are known up front, so the pool never spawns
    // more threads than it has work for the larger wave.
    std::map<std::pair<std::string, GpuModel>, std::size_t> canonical;
    std::vector<std::size_t> cell_of_grid(progress.cells);
    std::vector<std::unique_ptr<Cell>> cells; // stable addresses (and
                                              // Cell holds a once_flag)
    for (std::size_t w = 0; w < result.workloads.size(); ++w) {
        for (std::size_t g = 0; g < num_gpus; ++g) {
            const auto [it, fresh] = canonical.try_emplace(
                std::make_pair(result.workloads[w], result.gpus[g]),
                cells.size());
            cell_of_grid[w * num_gpus + g] = it->second;
            if (!fresh)
                continue;
            auto cell = std::make_unique<Cell>();
            cell->workload = result.workloads[w];
            cell->gpu = result.gpus[g];
            cell->config = &gpuConfig(cell->gpu);
            cells.push_back(std::move(cell));
        }
    }
    const std::vector<ShardKey> shards = decomposeStudy(spec);
    progress.totalShards = shards.size();

    unsigned jobs = spec.jobs
                        ? spec.jobs
                        : std::max(1u, std::thread::hardware_concurrency());
    jobs = static_cast<unsigned>(std::min<std::size_t>(
        jobs, std::max({std::size_t{1}, cells.size(), shards.size()})));
    WorkerPool pool(jobs);
    std::mutex error_mutex;
    std::exception_ptr first_error;
    auto record_error = [&]() {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error)
            first_error = std::current_exception();
    };
    // Once any task fails, remaining tasks become no-ops so the error
    // surfaces after in-flight work only, not after the whole study.
    auto errored = [&]() {
        std::lock_guard<std::mutex> lock(error_mutex);
        return static_cast<bool>(first_error);
    };
    auto rethrow_errors = [&]() {
        pool.waitIdle();
        if (first_error)
            std::rethrow_exception(first_error);
    };

    // Wave 1 — golden-run cache: one ACE-instrumented reference
    // simulation per unique (workload, GPU, workloadSeed) cell.  Every
    // campaign shard of the cell — and every duplicate grid entry —
    // reuses it instead of re-running the golden.
    for (auto& c : cells) {
        Cell* cell = c.get();
        pool.submit([&spec, &record_error, &errored, cell]() {
            if (errored())
                return;
            try {
                const auto workload = makeWorkload(cell->workload);
                cell->usesLds = workload->usesLocalMemory();
                WorkloadParams params;
                params.seed = spec.workloadSeed;
                cell->instance =
                    workload->build(cell->config->dialect, params);
                cell->ace = runAceAnalysis(*cell->config, cell->instance);
            } catch (...) {
                record_error();
            }
        });
    }
    rethrow_errors();
    progress.goldenRuns = cells.size();
    if (spec.verbose) {
        inform("study: ", cells.size(), " golden+ACE runs cached (",
               result.workloads.size(), " workloads x ", num_gpus,
               " GPUs)");
    }

    // Wave 2 — the flat shard work-list, one global pool, no nesting.
    std::map<std::size_t, std::map<TargetStructure, CampaignTotals>>
        totals_by_cell;
    std::mutex totals_mutex;

    auto cell_index = [&](const ShardKey& key) {
        return canonical.at(std::make_pair(key.workload, key.gpu));
    };

    for (const ShardKey& key : shards) {
        const std::size_t ci = cell_index(key);
        totals_by_cell[ci][key.structure].shardsTotal++;
        cells[ci]->shardsLeft.fetch_add(1, std::memory_order_relaxed);
    }

    auto merge_shard = [&](const ShardKey& key, const ShardCounts& counts,
                           bool executed) {
        std::lock_guard<std::mutex> lock(totals_mutex);
        CampaignTotals& t = totals_by_cell[cell_index(key)][key.structure];
        t.counts.masked += counts.masked;
        t.counts.sdc += counts.sdc;
        t.counts.due += counts.due;
        // Busy seconds are per-worker loop time: campaigns sharing the
        // pool sum to total worker-seconds, never double-counting
        // concurrent wall-clock.
        t.counts.busySeconds += counts.busySeconds;
        ++t.shardsDone;
        if (executed) {
            ++progress.executedShards;
            progress.injectionsExecuted +=
                key.injectionEnd - key.injectionBegin;
            progress.shardBusySeconds += counts.busySeconds;
        } else {
            ++progress.resumedShards;
        }
        if (spec.verbose && t.shardsDone == t.shardsTotal) {
            inform("study: ", key.workload, " on ",
                   gpuModelName(key.gpu), " ",
                   targetStructureName(key.structure), " campaign done (",
                   t.shardsTotal, " shards, ",
                   strprintf("%.2f", t.counts.busySeconds), " worker-s)");
        }
    };

    // A cell's pack is recorded by whichever shard worker gets there
    // first (the others block on the once_flag for the duration of one
    // golden pass) and freed as soon as the cell's last shard retires.
    auto adopt_cell_pack = [&](Cell* cell, FaultInjector& injector) {
        if (spec.checkpoints == 0)
            return;
        std::call_once(cell->packOnce, [&]() {
            cell->pack = injector.buildCheckpointPack(spec.checkpoints);
            std::lock_guard<std::mutex> lock(totals_mutex);
            ++progress.checkpointPacks;
        });
        if (cell->pack)
            injector.adoptCheckpointPack(cell->pack);
    };
    auto retire_cell_shard = [](Cell* cell) {
        if (cell->shardsLeft.fetch_sub(1, std::memory_order_acq_rel) == 1)
            cell->pack.reset();
    };

    for (const ShardKey& key : shards) {
        Cell* cell = cells[cell_index(key)].get();
        if (const auto it = checkpointed.find(key);
            it != checkpointed.end()) {
            merge_shard(key, it->second, /*executed=*/false);
            retire_cell_shard(cell);
            continue;
        }
        pool.submit([&, key, cell]() {
            if (errored())
                return;
            try {
                const auto s0 = std::chrono::steady_clock::now();
                FaultInjector injector(*cell->config, cell->instance);
                injector.adoptGoldenCycles(cell->ace.goldenStats.cycles);
                adopt_cell_pack(cell, injector);
                ShardCounts counts;
                for (std::uint64_t i = key.injectionBegin;
                     i < key.injectionEnd; ++i) {
                    const InjectionResult r = runIndexedInjection(
                        injector, key.structure, key.campaignSeed, i);
                    switch (r.outcome) {
                      case FaultOutcome::Masked:
                        ++counts.masked;
                        break;
                      case FaultOutcome::Sdc:
                        ++counts.sdc;
                        break;
                      case FaultOutcome::Due:
                        ++counts.due;
                        break;
                    }
                }
                const auto s1 = std::chrono::steady_clock::now();
                counts.busySeconds =
                    std::chrono::duration<double>(s1 - s0).count();
                merge_shard(key, counts, /*executed=*/true);
                if (store.is_open()) {
                    std::lock_guard<std::mutex> lock(store_mutex);
                    writeShardRecord(store, ShardRecord{key, counts});
                    store << '\n';
                    store.flush();
                }
            } catch (...) {
                record_error();
            }
            retire_cell_shard(cell);
        });
    }
    rethrow_errors();

    // Assembly — pure arithmetic over integer counts, so the reports are
    // bit-identical for any jobs/shards/resume configuration.  Duplicate
    // grid entries replicate their canonical cell's report (identical
    // seeds make that the result a recomputation would produce).
    result.reports.resize(progress.cells);
    static const std::map<TargetStructure, CampaignTotals> kNoCampaigns;
    for (std::size_t pos = 0; pos < progress.cells; ++pos) {
        const std::size_t ci = cell_of_grid[pos];
        const auto it = totals_by_cell.find(ci);
        assembleReport(result.reports[pos], *cells[ci], spec,
                       it != totals_by_cell.end() ? it->second
                                                  : kNoCampaigns);
    }

    const auto t1 = std::chrono::steady_clock::now();
    progress.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
    if (spec.verbose) {
        inform("study: ", progress.executedShards, " shards executed, ",
               progress.resumedShards, " resumed from store, ",
               strprintf("%.2f", progress.wallSeconds), " s wall (",
               strprintf("%.2f", progress.shardBusySeconds),
               " worker-s injecting, ", progress.injectionsExecuted,
               " injections at ",
               strprintf("%.1f", progress.injectionsPerSecond()), "/s, ",
               progress.checkpointPacks, " checkpoint packs)");
    }
    if (progress_out)
        *progress_out = progress;
    return result;
}

// ------------------------------------------------- legacy shims (one PR)

StudySpec
studySpecFromLegacy(const StudyOptions& study, const OrchestratorOptions& orch)
{
    StudySpec spec;
    spec.workloads = study.workloads;
    spec.gpus = study.gpus;
    spec.structures = study.structures;
    spec.plan = study.analysis.plan;
    spec.seed = study.analysis.seed;
    spec.workloadSeed = study.analysis.workloadSeed;
    spec.aceOnly = study.analysis.aceOnly;
    spec.fitParams = study.analysis.fitParams;
    spec.verbose = study.verbose;
    spec.jobs = orch.jobs ? orch.jobs : study.analysis.numThreads;
    spec.shardsPerCampaign = orch.shardsPerCampaign;
    spec.checkpoints = orch.checkpoints;
    spec.storePath = orch.storePath;
    spec.resume = orch.resume;
    return spec;
}

std::vector<ShardKey>
decomposeStudy(const StudyOptions& study, std::size_t shards_per_campaign)
{
    StudySpec spec = studySpecFromLegacy(study);
    spec.shardsPerCampaign = shards_per_campaign;
    return decomposeStudy(spec);
}

StudyResult
runStudy(const StudyOptions& study, const OrchestratorOptions& orch,
         StudyProgress* progress)
{
    return runStudy(studySpecFromLegacy(study, orch), progress);
}

} // namespace gpr
