#include "core/orchestrator.hh"

// gpr:lint-allow-file(D1): timing whitelist — steady_clock reads feed
// only progress/busy-seconds diagnostics, never outcome counts, hashes,
// or RNG draws (resume bit-identity strips wall-clock fields).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/string_utils.hh"
#include "core/export.hh"
#include "reliability/ace.hh"
#include "workloads/workloads.hh"

namespace gpr {

// ---------------------------------------------------------- decomposition

namespace {

/**
 * [begin, end) injection ranges of one campaign's shards.  Shard
 * boundaries always coincide with the adaptive look schedule (a fixed
 * plan is one "look" covering everything), so the cumulative counts the
 * stopping rule reads at each look are whole-shard sums regardless of
 * the shards-per-campaign setting — which is what keeps the stopping
 * decision a pure function of the ordered record prefix.
 */
std::vector<std::pair<std::uint64_t, std::uint64_t>>
campaignShardRanges(const SamplePlan& plan, std::size_t per)
{
    std::vector<std::uint64_t> looks;
    if (plan.adaptive())
        looks = sequentialSchedule(plan);
    else
        looks = {plan.injections};

    std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
    std::uint64_t prev = 0;
    for (std::uint64_t look : looks) {
        for (std::uint64_t begin = prev; begin < look; begin += per)
            ranges.emplace_back(begin,
                                std::min<std::uint64_t>(begin + per, look));
        prev = look;
    }
    return ranges;
}

} // namespace

std::size_t
defaultShardCount(const SamplePlan& plan)
{
    const std::size_t n = plan.resolvedMaxInjections();
    if (n == 0)
        return 0;
    // ~250 injections per shard: fine-grained enough to keep a pool busy
    // and to make resume checkpoints frequent, coarse enough that the
    // per-shard simulator setup stays negligible.  Deliberately *not* a
    // function of the worker count, so a store written at --jobs 1
    // resumes cleanly at --jobs 8.
    const std::size_t shards = (n + 249) / 250;
    return std::min<std::size_t>(std::max<std::size_t>(shards, 1), 64);
}

std::vector<ShardKey>
decomposeStudy(const StudySpec& spec)
{
    std::vector<ShardKey> shards;
    if (spec.aceOnly)
        return shards;
    const std::size_t n = spec.plan.resolvedMaxInjections();
    if (n == 0)
        return shards;
    std::size_t shards_per_campaign = spec.shardsPerCampaign;
    if (shards_per_campaign == 0)
        shards_per_campaign = defaultShardCount(spec.plan);
    const std::size_t per =
        (n + shards_per_campaign - 1) / shards_per_campaign;
    const auto ranges = campaignShardRanges(spec.plan, per);

    // Duplicate (workload, GPU) grid entries are one cell: identical
    // seeds produce identical counts, so they share one set of shards
    // (and one store identity — ShardKeys could not tell them apart).
    // Requested structures are validated against the registry up front
    // so a typo fails loudly before any simulation runs.
    for (TargetStructure s : spec.structures)
        structureSpec(s);

    std::set<std::pair<std::string, GpuModel>> seen;
    for (const std::string& w : spec.resolvedWorkloads()) {
        const bool uses_lds = makeWorkload(w)->usesLocalMemory();
        for (GpuModel gpu : spec.resolvedGpus()) {
            if (!seen.insert({w, gpu}).second)
                continue;
            const GpuConfig& config = gpuConfig(gpu);
            for (TargetStructure s : selectStructures(
                     config, uses_lds, spec.structures)) {
                for (std::size_t index = 0; index < ranges.size();
                     ++index) {
                    ShardKey key;
                    key.workload = w;
                    key.gpu = gpu;
                    key.structure = s;
                    key.shardIndex = static_cast<std::uint32_t>(index);
                    key.injectionBegin = ranges[index].first;
                    key.injectionEnd = ranges[index].second;
                    key.campaignSeed =
                        deriveSeed(spec.seed,
                                   static_cast<std::uint64_t>(s));
                    key.workloadSeed = spec.workloadSeed;
                    key.behavior = spec.faultBehavior;
                    key.pattern = spec.faultPattern;
                    shards.push_back(std::move(key));
                }
            }
        }
    }
    return shards;
}

std::size_t
StudyPlan::totalShards() const
{
    std::size_t total = 0;
    for (const StudyPlanCampaign& c : campaigns)
        total += c.shards;
    return total;
}

std::uint64_t
StudyPlan::totalInjections() const
{
    std::uint64_t total = 0;
    for (const StudyPlanCampaign& c : campaigns)
        total += c.injections;
    return total;
}

StudyPlan
planStudy(const StudySpec& spec)
{
    spec.validate();
    StudyPlan plan;
    plan.gridCells =
        spec.resolvedWorkloads().size() * spec.resolvedGpus().size();

    std::set<std::pair<std::string, GpuModel>> cells;
    for (const std::string& w : spec.resolvedWorkloads())
        for (GpuModel g : spec.resolvedGpus())
            cells.insert({w, g});
    plan.goldenRuns = cells.size();

    for (const ShardKey& key : decomposeStudy(spec)) {
        if (!plan.campaigns.empty()) {
            StudyPlanCampaign& last = plan.campaigns.back();
            if (last.workload == key.workload && last.gpu == key.gpu &&
                last.structure == key.structure) {
                ++last.shards;
                last.injections += key.injectionEnd - key.injectionBegin;
                continue;
            }
        }
        StudyPlanCampaign c;
        c.workload = key.workload;
        c.gpu = key.gpu;
        c.structure = key.structure;
        c.shards = 1;
        c.injections = key.injectionEnd - key.injectionBegin;
        plan.campaigns.push_back(std::move(c));
    }
    return plan;
}

// -------------------------------------------------------------- execution

namespace {

/** One (workload, GPU) grid cell with its cached golden/ACE pass. */
struct Cell
{
    std::string workload;
    GpuModel gpu = GpuModel::GeforceGtx480;
    const GpuConfig* config = nullptr;
    bool usesLds = false;
    WorkloadInstance instance;
    AceResult ace;

    // Checkpoint pack shared by every shard of this cell.  Built
    // lazily by the first shard worker that needs it (one extra golden
    // pass) and released when the cell's last campaign finishes, so
    // peak pack memory tracks the cells currently in flight, not the
    // whole grid.
    std::once_flag packOnce;
    std::shared_ptr<const CheckpointPack> pack;
    std::atomic<std::size_t> campaignsLeft{0};
};

/** Final accumulation of one campaign, fed to report assembly. */
struct CampaignTotals
{
    ShardCounts counts;
    /** Injections actually run — the adaptive stopping point, or the
     *  full fixed plan. */
    std::uint64_t injections = 0;
};

/**
 * One (cell, structure) campaign's execution state: the worst-case
 * ordered shard list, its batch boundaries (one batch per adaptive
 * look; a single batch for a fixed plan), and the cumulative counts of
 * the merged prefix.  Batches are issued strictly in order and the
 * next one only after the stopping rule declined to stop on the counts
 * so far — shards beyond the stopping point are pruned, never run.
 */
struct CampaignExec
{
    std::size_t cellIndex = 0;
    TargetStructure structure = TargetStructure::VectorRegisterFile;
    std::vector<ShardKey> shards;
    /** Exclusive shard index ending each batch. */
    std::vector<std::size_t> batchEndShard;
    std::size_t issuedBatches = 0;
    /** Shards of the current batch still executing on the pool. */
    std::size_t outstanding = 0;
    ShardCounts counts;
    std::uint64_t injectionsDone = 0;
    std::size_t shardsDone = 0;
    bool finished = false;
};

void
assembleReport(ReliabilityReport& report, const Cell& cell,
               const StudySpec& spec,
               const std::map<TargetStructure, CampaignTotals>& campaigns)
{
    const std::vector<TargetStructure>& requested = spec.structures;
    report.workload = cell.workload;
    report.gpu = cell.gpu;
    report.gpuName = cell.config->name;
    report.aceWallSeconds = cell.ace.wallSeconds;
    report.cycles = cell.ace.goldenStats.cycles;
    report.execSeconds = executionSeconds(*cell.config, report.cycles);
    report.ipc = cell.ace.goldenStats.ipc();
    report.warpOccupancy = cell.ace.goldenStats.avgWarpOccupancy;

    report.structures.clear();
    report.structures.reserve(kNumTargetStructures);
    for (const StructureSpec& sspec : structureRegistry()) {
        StructureReport sr;
        sr.structure = sspec.id;
        sr.applicable =
            structureApplies(*cell.config, sspec.id, cell.usesLds);
        const bool selected =
            requested.empty() ||
            std::find(requested.begin(), requested.end(), sspec.id) !=
                requested.end();
        if (sr.applicable) {
            sr.avfAce = cell.ace.forStructure(sspec.id).avf();
            sr.occupancy = sspec.occupancy(cell.ace.goldenStats);
            // FI fields (incl. the injection count, which downstream
            // consumers read as "was this measured") stay zero for
            // structures a --structures restriction excluded; ACE +
            // occupancy are still reported — the golden pass covers
            // every structure for free.
            if (!spec.aceOnly && selected) {
                // Fold the shard counts through CampaignResult so the
                // statistics (AVF, rates, Wilson intervals, achieved
                // margin) share one implementation with the standalone
                // campaign path.
                const auto it = campaigns.find(sspec.id);
                CampaignResult cr;
                cr.structure = sspec.id;
                cr.confidence = spec.plan.confidence;
                if (it != campaigns.end()) {
                    // The campaign's own injection count — for an
                    // adaptive plan this is its stopping point, not the
                    // plan ceiling.
                    cr.injections = static_cast<std::size_t>(
                        it->second.injections);
                    cr.masked =
                        static_cast<std::size_t>(it->second.counts.masked);
                    cr.sdc =
                        static_cast<std::size_t>(it->second.counts.sdc);
                    cr.due =
                        static_cast<std::size_t>(it->second.counts.due);
                    cr.wallSeconds = it->second.counts.busySeconds;
                } else if (!spec.plan.adaptive()) {
                    cr.injections = spec.plan.injections;
                }
                sr.avfFi = cr.avf();
                sr.fiErrorMargin = cr.errorMargin();
                sr.sdcRate = cr.sdcRate();
                sr.dueRate = cr.dueRate();
                sr.avfCi = cr.avfInterval();
                sr.sdcCi = cr.sdcInterval();
                sr.dueCi = cr.dueInterval();
                sr.achievedMargin = cr.achievedMargin();
                sr.ciConfidence = spec.plan.confidence;
                sr.fiWallSeconds = cr.wallSeconds;
                sr.injections = cr.injections;
                sr.behavior = spec.faultBehavior;
                sr.pattern = spec.faultPattern;
            }
        }
        report.structures.push_back(sr);
    }

    // EPF models the paper's three storage structures (the FIT roll-up
    // has no per-bit rate calibration for control cells).  Structures
    // without measured FI (--ace-only, or excluded by --structures)
    // fall back to their ACE AVF — reporting FIT 0 for a structure that
    // merely wasn't injected would read as ultra-reliable rather than
    // not-measured.
    const auto pick = [&](TargetStructure s) {
        const StructureReport& sr = report.forStructure(s);
        if (!sr.applicable)
            return 0.0;
        return sr.injections ? sr.avfFi : sr.avfAce;
    };
    report.epf = computeEpf(*cell.config, report.cycles,
                            pick(TargetStructure::VectorRegisterFile),
                            pick(TargetStructure::SharedMemory),
                            pick(TargetStructure::ScalarRegisterFile),
                            spec.fitParams);

    // Propagate the AVF intervals through the FIT/EPF roll-up: EPF is
    // monotone (decreasing) in every AVF, so evaluating it at the two
    // interval endpoints bounds the EPF itself.  Unmeasured structures
    // contribute their (point) ACE fallback at both endpoints.
    const auto pick_bound = [&](TargetStructure s, bool upper) {
        const StructureReport& sr = report.forStructure(s);
        if (!sr.applicable)
            return 0.0;
        if (!sr.injections)
            return sr.avfAce;
        return upper ? sr.avfCi.hi : sr.avfCi.lo;
    };
    const auto epf_at = [&](bool upper) {
        return computeEpf(
                   *cell.config, report.cycles,
                   pick_bound(TargetStructure::VectorRegisterFile, upper),
                   pick_bound(TargetStructure::SharedMemory, upper),
                   pick_bound(TargetStructure::ScalarRegisterFile, upper),
                   spec.fitParams)
            .epf();
    };
    const double epf_a = epf_at(false);
    const double epf_b = epf_at(true);
    report.epfCi.lo = std::min(epf_a, epf_b);
    report.epfCi.hi = std::max(epf_a, epf_b);
}

} // namespace

StudyResult
runStudy(const StudySpec& spec, StudyProgress* progress_out)
{
    const auto t0 = std::chrono::steady_clock::now();
    spec.validate();

    StudyResult result;
    result.workloads = spec.resolvedWorkloads();
    result.gpus = spec.resolvedGpus();
    const std::size_t num_gpus = result.gpus.size();

    StudyProgress progress;
    progress.cells = result.workloads.size() * num_gpus;

    // Load completed shards from a previous (possibly killed) run.  The
    // store's header pins the campaign spec the shards were computed
    // under: resuming with a different campaign fails loudly instead of
    // silently mixing two experiments' counts.  (Execution knobs are
    // not part of the hash — stores stay resumable at any jobs/shards/
    // checkpoints setting.)
    std::map<ShardKey, ShardCounts> checkpointed;
    bool store_exists = false;
    bool backfill_header = false;
    if (spec.resume && !spec.storePath.empty()) {
        const auto load0 = std::chrono::steady_clock::now();
        // Line-at-a-time parsing over the default stream buffer is
        // seek-free but syscall-heavy on large stores; a wide buffer
        // plus a pre-reserved line string keeps resume replay at memory
        // bandwidth.
        std::vector<char> iobuf(std::size_t{1} << 20);
        std::ifstream in;
        in.rdbuf()->pubsetbuf(iobuf.data(),
                              static_cast<std::streamsize>(iobuf.size()));
        in.open(spec.storePath);
        if (in) {
            store_exists = true;
            // Header records are recognised at any line, not just the
            // first: a run killed before its header flushed — or a
            // legacy store that was back-filled on a previous resume —
            // must not lose the guard.
            bool saw_header = false;
            std::string line;
            line.reserve(256);
            while (std::getline(in, line)) {
                StoreHeader header;
                if (parseStoreHeader(line, header)) {
                    saw_header = true;
                    if (header.specHash != spec.campaignHashHex()) {
                        fatal("shard store '", spec.storePath,
                              "' was written under campaign spec ",
                              header.specHash,
                              " but the current spec is ",
                              spec.campaignHashHex(),
                              "; refusing to resume a mismatched store "
                              "(use a fresh --store to start over)");
                    }
                    continue;
                }
                ShardRecord r;
                if (parseShardRecord(line, r))
                    checkpointed[std::move(r.key)] = r.counts;
            }
            if (!saw_header) {
                warn("shard store '", spec.storePath,
                     "' has no spec header (older version, or a run "
                     "killed before the header flushed); resuming with "
                     "per-key matching only and stamping the current "
                     "spec so future resumes are verified again");
                backfill_header = true;
            }
        }
        progress.resumeLoadSeconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          load0)
                .count();
    }

    std::ofstream store;
    std::mutex store_mutex;
    if (!spec.storePath.empty()) {
        // A killed run can leave a truncated tail line without a newline;
        // start appending on a fresh line so the glued bytes stay one
        // (skippable) broken line instead of corrupting a new record.
        bool needs_newline = false;
        if (spec.resume && store_exists) {
            std::ifstream probe(spec.storePath, std::ios::binary);
            if (probe && probe.seekg(-1, std::ios::end)) {
                char last = '\n';
                probe.get(last);
                needs_newline = last != '\n';
            }
        }
        const bool fresh_store = !spec.resume || !store_exists;
        store.open(spec.storePath, spec.resume
                                       ? std::ios::out | std::ios::app
                                       : std::ios::out | std::ios::trunc);
        if (!store) {
            fatal("cannot open shard store '", spec.storePath,
                  "' for writing");
        }
        if (needs_newline)
            store << '\n';
        if (fresh_store || backfill_header) {
            StoreHeader header;
            header.specHash = spec.campaignHashHex();
            header.specJson = spec.toJsonString();
            writeStoreHeader(store, header);
            store << '\n';
            store.flush();
        }
    }

    // Canonical cells (duplicate grid entries collapse into one) and the
    // flat shard work-list are known up front, so the pool never spawns
    // more threads than it has work for the larger wave.
    std::map<std::pair<std::string, GpuModel>, std::size_t> canonical;
    std::vector<std::size_t> cell_of_grid(progress.cells);
    std::vector<std::unique_ptr<Cell>> cells; // stable addresses (and
                                              // Cell holds a once_flag)
    for (std::size_t w = 0; w < result.workloads.size(); ++w) {
        for (std::size_t g = 0; g < num_gpus; ++g) {
            const auto [it, fresh] = canonical.try_emplace(
                std::make_pair(result.workloads[w], result.gpus[g]),
                cells.size());
            cell_of_grid[w * num_gpus + g] = it->second;
            if (!fresh)
                continue;
            auto cell = std::make_unique<Cell>();
            cell->workload = result.workloads[w];
            cell->gpu = result.gpus[g];
            cell->config = &gpuConfig(cell->gpu);
            cells.push_back(std::move(cell));
        }
    }
    const std::vector<ShardKey> shards = decomposeStudy(spec);
    progress.totalShards = shards.size();

    unsigned jobs = spec.jobs
                        ? spec.jobs
                        : std::max(1u, std::thread::hardware_concurrency());
    jobs = static_cast<unsigned>(std::min<std::size_t>(
        jobs, std::max({std::size_t{1}, cells.size(), shards.size()})));
    WorkerPool pool(jobs);
    std::mutex error_mutex;
    std::exception_ptr first_error;
    auto record_error = [&]() {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error)
            first_error = std::current_exception();
    };
    // Once any task fails, remaining tasks become no-ops so the error
    // surfaces after in-flight work only, not after the whole study.
    auto errored = [&]() {
        std::lock_guard<std::mutex> lock(error_mutex);
        return static_cast<bool>(first_error);
    };
    auto rethrow_errors = [&]() {
        pool.waitIdle();
        if (first_error)
            std::rethrow_exception(first_error);
    };

    // Wave 1 — golden-run cache: one ACE-instrumented reference
    // simulation per unique (workload, GPU, workloadSeed) cell.  Every
    // campaign shard of the cell — and every duplicate grid entry —
    // reuses it instead of re-running the golden.
    for (auto& c : cells) {
        Cell* cell = c.get();
        pool.submit([&spec, &record_error, &errored, cell]() {
            if (errored())
                return;
            try {
                const auto workload = makeWorkload(cell->workload);
                cell->usesLds = workload->usesLocalMemory();
                WorkloadParams params;
                params.seed = spec.workloadSeed;
                cell->instance =
                    workload->build(cell->config->dialect, params);
                cell->ace = runAceAnalysis(*cell->config, cell->instance);
            } catch (...) {
                record_error();
            }
        });
    }
    rethrow_errors();
    progress.goldenRuns = cells.size();
    if (spec.verbose) {
        inform("study: ", cells.size(), " golden+ACE runs cached (",
               result.workloads.size(), " workloads x ", num_gpus,
               " GPUs)");
    }

    // Wave 2 — one CampaignExec per (cell, structure), batches issued
    // dynamically: batch k+1 of a campaign is only submitted after every
    // shard of batches 0..k merged and the stopping rule declined to
    // stop on the cumulative counts (a fixed plan is a single batch).
    // Campaigns advance independently, so the pool stays busy across
    // the grid even though batches within one campaign serialize.
    auto cell_index = [&](const ShardKey& key) {
        return canonical.at(std::make_pair(key.workload, key.gpu));
    };

    const bool adaptive = spec.plan.adaptive() && !spec.aceOnly;
    std::vector<std::uint64_t> looks;
    double guarded_confidence = 0.0;
    if (adaptive && !shards.empty()) {
        looks = sequentialSchedule(spec.plan);
        // Derived once: every stop evaluation below runs under the
        // state mutex and must not rebuild the schedule.
        guarded_confidence = sequentialConfidence(spec.plan);
    }

    std::vector<CampaignExec> campaigns;
    for (const ShardKey& key : shards) {
        // decomposeStudy emits each campaign's shards contiguously and
        // in injection order, so grouping is a linear scan.
        if (campaigns.empty() ||
            campaigns.back().cellIndex != cell_index(key) ||
            campaigns.back().structure != key.structure) {
            CampaignExec c;
            c.cellIndex = cell_index(key);
            c.structure = key.structure;
            campaigns.push_back(std::move(c));
        }
        campaigns.back().shards.push_back(key);
    }
    for (CampaignExec& c : campaigns) {
        if (adaptive) {
            std::size_t look = 0;
            for (std::size_t i = 0; i < c.shards.size(); ++i) {
                if (c.shards[i].injectionEnd == looks[look]) {
                    c.batchEndShard.push_back(i + 1);
                    ++look;
                }
            }
            GPR_ASSERT(look == looks.size(),
                       "shard ranges must tile the look schedule");
        } else {
            c.batchEndShard = {c.shards.size()};
        }
        cells[c.cellIndex]->campaignsLeft.fetch_add(
            1, std::memory_order_relaxed);
    }

    std::mutex state_mutex; // guards campaigns' counts + progress

    auto merge_locked = [&](CampaignExec& c, const ShardKey& key,
                            const ShardCounts& counts, bool executed) {
        c.counts.masked += counts.masked;
        c.counts.sdc += counts.sdc;
        c.counts.due += counts.due;
        // Busy seconds are per-worker loop time: campaigns sharing the
        // pool sum to total worker-seconds, never double-counting
        // concurrent wall-clock.
        c.counts.busySeconds += counts.busySeconds;
        c.injectionsDone += key.injectionEnd - key.injectionBegin;
        ++c.shardsDone;
        if (executed) {
            ++progress.executedShards;
            progress.injectionsExecuted +=
                key.injectionEnd - key.injectionBegin;
            progress.shardBusySeconds += counts.busySeconds;
        } else {
            ++progress.resumedShards;
        }
    };

    auto finish_locked = [&](CampaignExec& c) {
        c.finished = true;
        progress.prunedShards += c.shards.size() - c.shardsDone;
        Cell* cell = cells[c.cellIndex].get();
        if (cell->campaignsLeft.fetch_sub(1, std::memory_order_acq_rel) ==
            1) {
            cell->pack.reset();
        }
        if (spec.verbose) {
            inform("study: ", cell->workload, " on ",
                   gpuModelName(cell->gpu), " ",
                   targetStructureName(c.structure), " campaign done (",
                   c.injectionsDone, " injections, ", c.shardsDone,
                   " shards, ",
                   strprintf("%.2f", c.counts.busySeconds), " worker-s)");
        }
    };

    /**
     * Advance @p c until it is finished or has shards in flight: when
     * the current batch is fully merged, evaluate the stopping rule on
     * the cumulative counts and either finish or issue the next batch.
     * Store-resumed shards merge inline (the while loop then re-
     * evaluates immediately); the rest are handed back for submission
     * outside the lock.
     */
    auto pump_locked = [&](CampaignExec& c,
                           std::vector<std::pair<CampaignExec*,
                                                 const ShardKey*>>&
                               to_run) {
        while (!c.finished && c.outstanding == 0) {
            if (c.issuedBatches > 0) {
                const bool last =
                    c.issuedBatches == c.batchEndShard.size();
                bool stop = !adaptive;
                if (adaptive) {
                    // The stopping decision reads only the ordered
                    // record prefix [0, injectionsDone) — bit-identical
                    // at every jobs/shards/resume configuration.
                    stop = evaluateSequentialStop(c.counts.sdc,
                                                  c.counts.due,
                                                  c.injectionsDone,
                                                  spec.plan,
                                                  guarded_confidence)
                               .stop;
                }
                if (stop || last) {
                    finish_locked(c);
                    break;
                }
            }
            const std::size_t begin =
                c.issuedBatches == 0
                    ? 0
                    : c.batchEndShard[c.issuedBatches - 1];
            const std::size_t end = c.batchEndShard[c.issuedBatches];
            ++c.issuedBatches;
            for (std::size_t i = begin; i < end; ++i) {
                const ShardKey& key = c.shards[i];
                if (const auto it = checkpointed.find(key);
                    it != checkpointed.end()) {
                    merge_locked(c, key, it->second, /*executed=*/false);
                } else {
                    ++c.outstanding;
                    to_run.emplace_back(&c, &key);
                }
            }
        }
    };

    // A cell's pack is recorded by whichever shard worker gets there
    // first (the others block on the once_flag for the duration of one
    // golden pass) and freed as soon as the cell's last campaign
    // finishes.
    auto adopt_cell_pack = [&](Cell* cell, FaultInjector& injector) {
        if (spec.checkpoints == 0)
            return;
        std::call_once(cell->packOnce, [&]() {
            cell->pack = injector.buildCheckpointPack(spec.checkpoints);
            std::lock_guard<std::mutex> lock(state_mutex);
            ++progress.checkpointPacks;
            progress.peakPackBytes = std::max(
                progress.peakPackBytes, cell->pack->approxBytes());
            progress.peakPackFullBytes =
                std::max(progress.peakPackFullBytes,
                         cell->pack->fullEquivalentBytes());
        });
        if (cell->pack)
            injector.adoptCheckpointPack(cell->pack);
    };

    // Recursive through std::function: a worker that completes the last
    // shard of a batch submits the campaign's next batch itself.
    std::function<void(CampaignExec*, const ShardKey*)> submit_shard =
        [&](CampaignExec* campaign, const ShardKey* keyp) {
            Cell* cell = cells[campaign->cellIndex].get();
            pool.submit([&, campaign, keyp, cell]() {
                if (errored())
                    return;
                try {
                    const ShardKey& key = *keyp;
                    const auto s0 = std::chrono::steady_clock::now();
                    FaultInjector injector(*cell->config, cell->instance);
                    injector.adoptGoldenCycles(
                        cell->ace.goldenStats.cycles);
                    adopt_cell_pack(cell, injector);
                    ShardCounts counts;
                    const FaultShape shape{key.behavior, key.pattern};
                    const auto tally = [&](const InjectionResult& r) {
                        switch (r.outcome) {
                          case FaultOutcome::Masked:
                            ++counts.masked;
                            break;
                          case FaultOutcome::Sdc:
                            ++counts.sdc;
                            break;
                          case FaultOutcome::Due:
                            ++counts.due;
                            break;
                        }
                    };
                    if (cell->pack &&
                        faultBehaviorPersistent(key.behavior)) {
                        // Shared-restore batching: pre-draw the shard's
                        // persistent faults (sampling is a pure
                        // function of (seed, index)) and execute them
                        // grouped by checkpoint interval, so
                        // consecutive injections reuse the same
                        // restore point and scratch working set.  The
                        // shard's counts are order-independent, so the
                        // record stays bit-identical to index-ordered
                        // execution.
                        struct Drawn
                        {
                            std::size_t checkpoint;
                            FaultSpec fault;
                        };
                        std::vector<Drawn> batch;
                        batch.reserve(key.injectionEnd -
                                      key.injectionBegin);
                        for (std::uint64_t i = key.injectionBegin;
                             i < key.injectionEnd; ++i) {
                            Rng rng(deriveSeed(key.campaignSeed, i));
                            const FaultSpec fault = injector.sampleRandom(
                                key.structure, rng, shape);
                            batch.push_back(
                                {injector.checkpointIndexFor(fault.cycle),
                                 fault});
                        }
                        std::stable_sort(
                            batch.begin(), batch.end(),
                            [](const Drawn& a, const Drawn& b) {
                                return a.checkpoint < b.checkpoint;
                            });
                        for (const Drawn& d : batch)
                            tally(injector.inject(d.fault));
                    } else {
                        for (std::uint64_t i = key.injectionBegin;
                             i < key.injectionEnd; ++i) {
                            tally(runIndexedInjection(
                                injector, key.structure, key.campaignSeed,
                                i, shape));
                        }
                    }
                    const auto s1 = std::chrono::steady_clock::now();
                    counts.busySeconds =
                        std::chrono::duration<double>(s1 - s0).count();
                    if (store.is_open()) {
                        std::lock_guard<std::mutex> lock(store_mutex);
                        writeShardRecord(store, ShardRecord{key, counts});
                        store << '\n';
                        store.flush();
                    }
                    std::vector<std::pair<CampaignExec*, const ShardKey*>>
                        to_run;
                    {
                        std::lock_guard<std::mutex> lock(state_mutex);
                        merge_locked(*campaign, key, counts,
                                     /*executed=*/true);
                        // Per-worker accumulation merged at join: the
                        // injector is this task's own; the only shared
                        // write is here, under the state mutex.
                        progress.phaseStats += injector.phaseStats();
                        --campaign->outstanding;
                        if (campaign->outstanding == 0)
                            pump_locked(*campaign, to_run);
                    }
                    for (const auto& [next_campaign, next_key] : to_run)
                        submit_shard(next_campaign, next_key);
                } catch (...) {
                    record_error();
                }
            });
        };

    {
        std::vector<std::pair<CampaignExec*, const ShardKey*>> to_run;
        {
            std::lock_guard<std::mutex> lock(state_mutex);
            for (CampaignExec& c : campaigns)
                pump_locked(c, to_run);
        }
        for (const auto& [campaign, key] : to_run)
            submit_shard(campaign, key);
    }
    rethrow_errors();
    for (const CampaignExec& c : campaigns) {
        GPR_ASSERT(c.finished && c.outstanding == 0,
                   "campaign did not run to a stopping point");
    }

    std::map<std::size_t, std::map<TargetStructure, CampaignTotals>>
        totals_by_cell;
    for (const CampaignExec& c : campaigns) {
        CampaignTotals& t = totals_by_cell[c.cellIndex][c.structure];
        t.counts = c.counts;
        t.injections = c.injectionsDone;
    }

    // Assembly — pure arithmetic over integer counts, so the reports are
    // bit-identical for any jobs/shards/resume configuration.  Duplicate
    // grid entries replicate their canonical cell's report (identical
    // seeds make that the result a recomputation would produce).
    result.reports.resize(progress.cells);
    static const std::map<TargetStructure, CampaignTotals> kNoCampaigns;
    for (std::size_t pos = 0; pos < progress.cells; ++pos) {
        const std::size_t ci = cell_of_grid[pos];
        const auto it = totals_by_cell.find(ci);
        assembleReport(result.reports[pos], *cells[ci], spec,
                       it != totals_by_cell.end() ? it->second
                                                  : kNoCampaigns);
    }

    const auto t1 = std::chrono::steady_clock::now();
    progress.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
    if (spec.verbose) {
        inform("study: ", progress.executedShards, " shards executed, ",
               progress.resumedShards, " resumed from store (loaded in ",
               strprintf("%.3f", progress.resumeLoadSeconds), " s), ",
               progress.prunedShards, " pruned by early stopping, ",
               strprintf("%.2f", progress.wallSeconds), " s wall (",
               strprintf("%.2f", progress.shardBusySeconds),
               " worker-s injecting, ", progress.injectionsExecuted,
               " injections at ",
               strprintf("%.1f", progress.injectionsPerSecond()), "/s, ",
               progress.checkpointPacks, " checkpoint packs, peak ",
               progress.peakPackBytes / 1024, " KiB delta-encoded vs ",
               progress.peakPackFullBytes / 1024, " KiB full)");
    }
    if (progress_out)
        *progress_out = progress;
    return result;
}

// ------------------------------------------------- legacy shims (one PR)

StudySpec
studySpecFromLegacy(const StudyOptions& study, const OrchestratorOptions& orch)
{
    StudySpec spec;
    spec.workloads = study.workloads;
    spec.gpus = study.gpus;
    spec.structures = study.structures;
    spec.plan = study.analysis.plan;
    spec.seed = study.analysis.seed;
    spec.workloadSeed = study.analysis.workloadSeed;
    spec.aceOnly = study.analysis.aceOnly;
    spec.fitParams = study.analysis.fitParams;
    spec.verbose = study.verbose;
    spec.jobs = orch.jobs ? orch.jobs : study.analysis.numThreads;
    spec.shardsPerCampaign = orch.shardsPerCampaign;
    spec.checkpoints = orch.checkpoints;
    spec.storePath = orch.storePath;
    spec.resume = orch.resume;
    return spec;
}

std::vector<ShardKey>
decomposeStudy(const StudyOptions& study, std::size_t shards_per_campaign)
{
    StudySpec spec = studySpecFromLegacy(study);
    spec.shardsPerCampaign = shards_per_campaign;
    return decomposeStudy(spec);
}

StudyResult
runStudy(const StudyOptions& study, const OrchestratorOptions& orch,
         StudyProgress* progress)
{
    return runStudy(studySpecFromLegacy(study, orch), progress);
}

} // namespace gpr
