/**
 * @file
 * Study orchestrator — decomposes a ComparisonStudy into a flat work-list
 * of (workload, GPU, structure) campaign shards and executes them on one
 * persistent worker pool, instead of nesting a fresh per-campaign pool
 * inside every grid cell.
 *
 * Three properties make the full 10x4 grid tractable:
 *
 *  - **Golden-run cache.**  The fault-free reference simulation (which is
 *    also the ACE-instrumented run) executes once per (workload, GPU,
 *    workloadSeed) cell; every campaign shard of that cell adopts its
 *    golden cycle count instead of re-simulating.
 *  - **Checkpoint/resume.**  Completed shards stream as JSONL records to
 *    an append-only results store; a restarted study loads the store and
 *    skips every shard whose identity (workload, GPU, structure, shard
 *    index, injection range, seeds) matches.
 *  - **Determinism.**  Each injection's RNG derives from (campaign seed,
 *    injection index) — the scheme FaultInjectionCampaign already uses —
 *    so aggregate counts are bit-identical regardless of shard count,
 *    worker count, or resume history.
 */

#ifndef GPR_CORE_ORCHESTRATOR_HH
#define GPR_CORE_ORCHESTRATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/worker_pool.hh"
#include "core/comparison.hh"
#include "core/shard.hh"
#include "reliability/fault_injector.hh"

namespace gpr {

/** Knobs of the orchestrated execution (the grid itself comes from
 *  StudyOptions). */
struct OrchestratorOptions
{
    /** Worker threads; 0 selects std::thread::hardware_concurrency(). */
    unsigned jobs = 0;
    /** Shards per campaign; 0 derives a deterministic default from the
     *  sample plan (independent of `jobs`, so stores written at one job
     *  count resume cleanly at another). */
    std::size_t shardsPerCampaign = 0;
    /** JSONL shard store path; empty disables checkpointing. */
    std::string storePath;
    /** Load @ref storePath (if present) and skip already-completed
     *  shards; new results are appended to the same file. */
    bool resume = false;
    /**
     * Checkpoints per golden run for the checkpoint-restore injection
     * engine; 0 selects the legacy from-scratch engine (kept for
     * differential testing).  Either way the outcome counts are
     * bit-identical — checkpointing only changes how much of each
     * injected run is simulated.
     */
    unsigned checkpoints = kDefaultCheckpoints;
};

/** Execution statistics of one orchestrated study. */
struct StudyProgress
{
    std::size_t cells = 0;          ///< (workload, GPU) pairs
    std::size_t goldenRuns = 0;     ///< reference simulations performed
    std::size_t totalShards = 0;
    std::size_t executedShards = 0; ///< computed this run
    std::size_t resumedShards = 0;  ///< satisfied from the store
    /** Injections simulated this run (resumed shards excluded). */
    std::uint64_t injectionsExecuted = 0;
    /** Checkpoint packs recorded (one per cell that ran any shard). */
    std::size_t checkpointPacks = 0;
    /** Aggregate worker-seconds across executed shards. */
    double shardBusySeconds = 0.0;
    double wallSeconds = 0.0;       ///< end-to-end study wall-clock

    /** Executed injections per wall-clock second. */
    double
    injectionsPerSecond() const
    {
        return wallSeconds > 0
                   ? static_cast<double>(injectionsExecuted) / wallSeconds
                   : 0.0;
    }
};

/** Deterministic default shard count for @p plan (independent of the
 *  worker count; ~250 injections per shard, at most 64 shards). */
std::size_t defaultShardCount(const SamplePlan& plan);

/**
 * Decompose @p study into its flat shard work-list (no execution).  The
 * order is deterministic: cells in grid order, structures in enum order,
 * shards by index.  Exposed for tests and tooling.
 */
std::vector<ShardKey> decomposeStudy(const StudyOptions& study,
                                     std::size_t shards_per_campaign = 0);

/**
 * Run @p study through the orchestrator.  Drop-in replacement for the
 * serial runComparisonStudy() loop: given equal StudyOptions the
 * resulting reports are bit-identical to each other at every `jobs` /
 * `shardsPerCampaign` setting.  @p progress (optional) receives
 * execution statistics.
 */
StudyResult runStudy(const StudyOptions& study,
                     const OrchestratorOptions& orch = {},
                     StudyProgress* progress = nullptr);

} // namespace gpr

#endif // GPR_CORE_ORCHESTRATOR_HH
