/**
 * @file
 * Study orchestrator — decomposes a ComparisonStudy into a flat work-list
 * of (workload, GPU, structure) campaign shards and executes them on one
 * persistent worker pool, instead of nesting a fresh per-campaign pool
 * inside every grid cell.
 *
 * Three properties make the full 10x4 grid tractable:
 *
 *  - **Golden-run cache.**  The fault-free reference simulation (which is
 *    also the ACE-instrumented run) executes once per (workload, GPU,
 *    workloadSeed) cell; every campaign shard of that cell adopts its
 *    golden cycle count instead of re-simulating.
 *  - **Checkpoint/resume.**  Completed shards stream as JSONL records to
 *    an append-only results store; a restarted study loads the store and
 *    skips every shard whose identity (workload, GPU, structure, shard
 *    index, injection range, seeds) matches.
 *  - **Determinism.**  Each injection's RNG derives from (campaign seed,
 *    injection index) — the scheme FaultInjectionCampaign already uses —
 *    so aggregate counts are bit-identical regardless of shard count,
 *    worker count, or resume history.
 *
 * Adaptive plans (StudySpec.plan.margin > 0) turn each campaign's shard
 * list into dynamically issued batches: one batch per look of the
 * sequential schedule (reliability/sampling.hh), the next batch issued
 * only after the stopping rule declined to stop on the cumulative
 * counts so far.  Because shard boundaries coincide with look
 * boundaries and the rule reads only the ordered record prefix, the
 * stopping point — and therefore every reported count and interval —
 * stays bit-identical at any jobs/shards/resume configuration.
 */

#ifndef GPR_CORE_ORCHESTRATOR_HH
#define GPR_CORE_ORCHESTRATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/worker_pool.hh"
#include "core/comparison.hh"
#include "core/shard.hh"
#include "core/study_spec.hh"
#include "reliability/fault_injector.hh"

namespace gpr {

/** Knobs of the orchestrated execution (the grid itself comes from
 *  StudyOptions).
 *  @deprecated Superseded by the execution section of StudySpec; kept
 *  for one PR so existing callers keep compiling. */
struct OrchestratorOptions
{
    /** Worker threads; 0 selects std::thread::hardware_concurrency(). */
    unsigned jobs = 0;
    /** Shards per campaign; 0 derives a deterministic default from the
     *  sample plan (independent of `jobs`, so stores written at one job
     *  count resume cleanly at another). */
    std::size_t shardsPerCampaign = 0;
    /** JSONL shard store path; empty disables checkpointing. */
    std::string storePath;
    /** Load @ref storePath (if present) and skip already-completed
     *  shards; new results are appended to the same file. */
    bool resume = false;
    /**
     * Checkpoints per golden run for the checkpoint-restore injection
     * engine; 0 selects the legacy from-scratch engine (kept for
     * differential testing).  Either way the outcome counts are
     * bit-identical — checkpointing only changes how much of each
     * injected run is simulated.
     */
    unsigned checkpoints = kDefaultCheckpoints;
};

/** Execution statistics of one orchestrated study. */
struct StudyProgress
{
    std::size_t cells = 0;          ///< (workload, GPU) pairs
    std::size_t goldenRuns = 0;     ///< reference simulations performed
    /** Worst-case shard count (an adaptive study may prune some). */
    std::size_t totalShards = 0;
    std::size_t executedShards = 0; ///< computed this run
    std::size_t resumedShards = 0;  ///< satisfied from the store
    /** Shards never run because the sequential stopping rule ended
     *  their campaign first (adaptive plans only). */
    std::size_t prunedShards = 0;
    /** Injections simulated this run (resumed shards excluded). */
    std::uint64_t injectionsExecuted = 0;
    /** Checkpoint packs recorded (one per cell that ran any shard). */
    std::size_t checkpointPacks = 0;
    /** Peak resident bytes across recorded packs (delta-encoded: one
     *  baseline plus dirty pages per checkpoint) and what the same
     *  checkpoint cycles would have cost as full v1 snapshots. */
    std::size_t peakPackBytes = 0;
    std::size_t peakPackFullBytes = 0;
    /** Aggregate worker-seconds across executed shards. */
    double shardBusySeconds = 0.0;
    /** Aggregate per-phase injection-engine breakdown across executed
     *  shards (per-worker injectors merged at shard completion under
     *  the orchestrator's state mutex — see CampaignResult::phaseStats
     *  for the discipline).  Hit counts are bit-identical at any
     *  jobs/shards configuration; the seconds are diagnostics. */
    InjectionPhaseStats phaseStats;
    /** Wall-clock spent replaying the JSONL shard store on resume
     *  (0 when not resuming). */
    double resumeLoadSeconds = 0.0;
    double wallSeconds = 0.0;       ///< end-to-end study wall-clock

    /** Executed injections per wall-clock second. */
    double
    injectionsPerSecond() const
    {
        return wallSeconds > 0
                   ? static_cast<double>(injectionsExecuted) / wallSeconds
                   : 0.0;
    }
};

/** Deterministic default shard count for @p plan (independent of the
 *  worker count; ~250 injections per shard, at most 64 shards). */
std::size_t defaultShardCount(const SamplePlan& plan);

/**
 * Decompose @p spec into its flat shard work-list (no execution).  The
 * order is deterministic: cells in grid order, structures in enum order,
 * shards by index.  For an adaptive plan this is the *worst-case* list
 * (up to the plan's injection cap, shard boundaries aligned to the
 * sequential look schedule); execution prunes every shard past a
 * campaign's stopping point.  Exposed for tests and tooling.
 */
std::vector<ShardKey> decomposeStudy(const StudySpec& spec);

/** One campaign of a planned study: its shard count and injections. */
struct StudyPlanCampaign
{
    std::string workload;
    GpuModel gpu = GpuModel::GeforceGtx480;
    TargetStructure structure = TargetStructure::VectorRegisterFile;
    std::size_t shards = 0;
    std::uint64_t injections = 0;
};

/** The decomposed work-list of a spec, summarised for costing a study
 *  before running it (`gpr_cli study --dry-run`). */
struct StudyPlan
{
    /** (workload, GPU) grid positions, duplicates included. */
    std::size_t gridCells = 0;
    /** Golden+ACE reference simulations (one per unique cell). */
    std::size_t goldenRuns = 0;
    /** Campaigns in deterministic work-list order. */
    std::vector<StudyPlanCampaign> campaigns;

    std::size_t totalShards() const;
    std::uint64_t totalInjections() const;
};

/** Plan @p spec without executing anything. */
StudyPlan planStudy(const StudySpec& spec);

/**
 * Run the study @p spec describes.  Reports are bit-identical at every
 * `jobs` / `shardsPerCampaign` / resume configuration.  When the spec
 * names a store, completed shards stream to it under a header embedding
 * the spec's campaign hash; resuming against a store written by a
 * different campaign spec throws FatalError instead of mixing results.
 * @p progress (optional) receives execution statistics.
 */
StudyResult runStudy(const StudySpec& spec,
                     StudyProgress* progress = nullptr);

// --- Legacy entry points (deprecated, kept compiling for one PR) --------

/** @deprecated Build the equivalent StudySpec from the legacy option
 *  structs (orch.jobs wins over study.analysis.numThreads when both are
 *  set, matching the old orchestrator behaviour). */
StudySpec studySpecFromLegacy(const StudyOptions& study,
                              const OrchestratorOptions& orch = {});

/** @deprecated Use decomposeStudy(const StudySpec&). */
std::vector<ShardKey> decomposeStudy(const StudyOptions& study,
                                     std::size_t shards_per_campaign = 0);

/** @deprecated Use runStudy(const StudySpec&, StudyProgress*). */
StudyResult runStudy(const StudyOptions& study,
                     const OrchestratorOptions& orch = {},
                     StudyProgress* progress = nullptr);

} // namespace gpr

#endif // GPR_CORE_ORCHESTRATOR_HH
