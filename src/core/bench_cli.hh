/**
 * @file
 * Command-line/environment parsing shared by gpr_cli, the bench
 * harnesses and the examples.  The flags are a thin veneer over
 * StudySpec — every run is describable as (and reproducible from) one
 * spec JSON artifact.
 *
 * Flags:
 *   --spec=FILE       load a StudySpec JSON document as the baseline
 *                     (flags after --spec override individual fields)
 *   --dump-spec       print the resolved spec JSON and exit (feed it
 *                     back through --spec to reproduce the run)
 *   --dry-run         print the decomposed shard work-list (per-cell
 *                     shard counts, total injections, golden runs)
 *                     without executing anything
 *   --injections=N    FI samples per structure (default 150; the paper's
 *                     value is 2000).  Env fallback: GPR_INJECTIONS.
 *   --confidence=C    confidence level for margins (default 0.99)
 *   --margin=M        > 0 switches to adaptive sequential stopping:
 *                     each campaign injects until every rate's (SDC,
 *                     DUE, AVF) CI half-width is <= M (see
 *                     reliability/sampling.hh)
 *   --max-injections=N  adaptive cap per campaign (default: the
 *                     fixed-size equivalent of (margin, confidence))
 *   --seed=S          campaign seed (default 0xC0FFEE)
 *   --threads=T       worker threads (default: hardware concurrency)
 *   --jobs=N          alias of --threads (orchestrator wording)
 *   --shards=N        campaign shards (default: derived from the plan)
 *   --checkpoints=N   golden-run checkpoints for the checkpoint-restore
 *                     injection engine (default 8; 0 = legacy
 *                     from-scratch engine, kept for differential tests)
 *   --store=FILE      JSONL shard store to checkpoint into
 *   --resume[=FILE]   resume from the store, skipping finished shards
 *                     (refused with a spec-hash error if the store was
 *                     written under a different campaign spec)
 *   --workloads=a,b   subset of benchmarks
 *   --gpus=a,b        subset of GPUs (7970, fx5600, fx5800, gtx480)
 *   --structures=a,b  subset of registered target structures, by
 *                     canonical or short name (rf, lds, srf, pred, simt);
 *                     validated against the structure registry
 *   --behavior=B      fault behavior: transient (default), stuck-at-0,
 *                     stuck-at-1, intermittent (see sim/fault_model.hh)
 *   --pattern=P       fault pattern: single (default), adjacent-double,
 *                     adjacent-quad (aligned multi-bit upset masks)
 *   --ace-only        skip fault injection (ACE + occupancy + perf only)
 *   --csv             additionally print tables as CSV
 *   --json            print the study as JSON instead of tables
 */

#ifndef GPR_CORE_BENCH_CLI_HH
#define GPR_CORE_BENCH_CLI_HH

#include <string>

#include "core/orchestrator.hh"

namespace gpr {

struct BenchCli
{
    /** The experiment the flags describe. */
    StudySpec spec;
    bool csv = false;
    bool json = false;
    /** --dry-run: plan and cost the spec, execute nothing. */
    bool dryRun = false;
    /** --dump-spec: emit the spec JSON, execute nothing. */
    bool dumpSpec = false;

    /** Parse argv; returns false (after printing usage) on bad flags. */
    bool parse(int argc, char** argv);

    /**
     * Handle --dump-spec / --dry-run: when either was requested, write
     * the spec JSON or the decomposed work-list to @p os and return
     * true — the caller should exit without running the study.  Only
     * for harnesses that execute runStudy(spec); custom-campaign
     * harnesses use rejectMetaActions() instead.
     */
    bool runMetaActions(std::ostream& os) const;

    /**
     * For harnesses that run custom (non-grid) campaigns, where a
     * planStudy() work-list would misdescribe the actual work: when
     * --dump-spec / --dry-run was requested, explain on stderr that
     * @p harness does not support it and return true — the caller
     * should exit nonzero.
     */
    bool rejectMetaActions(std::string_view harness) const;

    /** Print the standard bench header (plan, margin, GPUs). */
    void printHeader(std::ostream& os, const std::string& title) const;

    /**
     * If --json was given, write @p study as one JSON document to @p os
     * and return true — the caller should then skip its tables.  JSON
     * supersedes --csv (noted on stderr when both are requested).
     */
    bool printStudyJson(std::ostream& os, const StudyResult& study) const;
};

} // namespace gpr

#endif // GPR_CORE_BENCH_CLI_HH
