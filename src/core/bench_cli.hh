/**
 * @file
 * Command-line/environment parsing shared by the bench harnesses and
 * examples.
 *
 * Flags:
 *   --injections=N    FI samples per structure (default 150; the paper's
 *                     value is 2000).  Env fallback: GPR_INJECTIONS.
 *   --confidence=C    confidence level for margins (default 0.99)
 *   --seed=S          campaign seed (default 0xC0FFEE)
 *   --threads=T       worker threads (default: hardware concurrency)
 *   --jobs=N          alias of --threads (orchestrator wording)
 *   --shards=N        campaign shards (default: derived from the plan)
 *   --checkpoints=N   golden-run checkpoints for the checkpoint-restore
 *                     injection engine (default 8; 0 = legacy
 *                     from-scratch engine, kept for differential tests)
 *   --store=FILE      JSONL shard store to checkpoint into
 *   --resume[=FILE]   resume from the store, skipping finished shards
 *   --workloads=a,b   subset of benchmarks
 *   --gpus=a,b        subset of GPUs (7970, fx5600, fx5800, gtx480)
 *   --structures=a,b  subset of registered target structures, by
 *                     canonical or short name (rf, lds, srf, pred, simt);
 *                     validated against the structure registry
 *   --ace-only        skip fault injection (ACE + occupancy + perf only)
 *   --csv             additionally print tables as CSV
 *   --json            print the study as JSON instead of tables
 */

#ifndef GPR_CORE_BENCH_CLI_HH
#define GPR_CORE_BENCH_CLI_HH

#include <string>

#include "core/orchestrator.hh"

namespace gpr {

struct BenchCli
{
    StudyOptions study;
    OrchestratorOptions orch;
    bool csv = false;
    bool json = false;

    /** Parse argv; returns false (after printing usage) on bad flags. */
    bool parse(int argc, char** argv);

    /** Print the standard bench header (plan, margin, GPUs). */
    void printHeader(std::ostream& os, const std::string& title) const;

    /**
     * If --json was given, write @p study as one JSON document to @p os
     * and return true — the caller should then skip its tables.  JSON
     * supersedes --csv (noted on stderr when both are requested).
     */
    bool printStudyJson(std::ostream& os, const StudyResult& study) const;
};

} // namespace gpr

#endif // GPR_CORE_BENCH_CLI_HH
