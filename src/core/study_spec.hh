/**
 * @file
 * StudySpec — the single declarative description of an experiment.
 *
 * Everything that determines what a study computes (the grid), how it
 * samples (the campaign) and how it executes (the machinery) lives in
 * one serializable value type instead of the four overlapping option
 * structs it replaces (AnalysisOptions, StudyOptions,
 * OrchestratorOptions, loose SamplePlan/FitParams plumbing).  A spec
 * round-trips through JSON bit-identically, validates against the
 * workload/GPU/structure registries with precise error messages, and
 * carries a stable content hash over its result-determining fields — the
 * identity the JSONL shard store embeds so --resume can refuse a
 * mismatched store.
 *
 * Typical use:
 *
 *     StudySpec spec = StudySpecBuilder()
 *                          .workloads({"vectoradd", "reduction"})
 *                          .gpu(GpuModel::GeforceGtx480)
 *                          .injections(2000)
 *                          .build();
 *     StudyResult result = runStudy(spec);
 *
 * or, from an artifact:
 *
 *     StudySpec spec = StudySpec::fromJsonFile("experiment.json");
 *
 * Empty grid vectors mean "all": every workload, every GPU, every
 * structure applicable to a cell.  The content hash resolves those
 * defaults first, so a spec listing all ten workloads explicitly hashes
 * equal to one listing none.
 */

#ifndef GPR_CORE_STUDY_SPEC_HH
#define GPR_CORE_STUDY_SPEC_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "arch/gpu_config.hh"
#include "reliability/fault_injector.hh"
#include "reliability/fit_epf.hh"
#include "reliability/sampling.hh"
#include "sim/fault_model.hh"

namespace gpr {

class JsonWriter;

struct StudySpec
{
    // --- Grid: what to measure. ---------------------------------------
    /** Benchmarks to include (empty = all ten, figure order). */
    std::vector<std::string> workloads;
    /** GPUs to include (empty = all four, figure order). */
    std::vector<GpuModel> gpus;
    /** Restrict fault injection to these registered structures (empty =
     *  every structure applicable to a cell).  Composes with per-cell
     *  applicability and keeps per-structure campaign seeding, so a
     *  restricted study's counts are bit-identical to the matching
     *  slice of an unrestricted one. */
    std::vector<TargetStructure> structures;

    // --- Campaign: how to sample. -------------------------------------
    /** Injections per structure + confidence (paper: 2000 @ 99 %).
     *  plan.margin > 0 switches the campaign to adaptive sequential
     *  stopping: each cell injects until every reported rate's CI
     *  half-width meets the margin, capped at plan.maxInjections (0 =
     *  the fixed-size equivalent). */
    SamplePlan plan = paperSamplePlan();
    /** Seed the per-(structure, injection) RNGs derive from. */
    std::uint64_t seed = 0xC0FFEE;
    /** Seed of the workload input generators. */
    std::uint64_t workloadSeed = 42;
    /** Temporal fault behavior of every injection (transient stuck-at-0,
     *  stuck-at-1 or intermittent; see sim/fault_model.hh).  The default
     *  (transient) reproduces the original model bit-for-bit and is the
     *  only value that leaves the campaign hash untouched. */
    FaultBehavior faultBehavior = FaultBehavior::Transient;
    /** Spatial fault pattern: single, adjacent-double or adjacent-quad
     *  aligned bit group (gpuFI-style MBU modes). */
    FaultPattern faultPattern = FaultPattern::SingleBit;
    /** Skip FI campaigns; report ACE + occupancy + perf only. */
    bool aceOnly = false;
    /** Intrinsic SER feeding the FIT/EPF roll-up. */
    FitParams fitParams;

    // --- Execution: how to run (never part of the content hash). ------
    /** Worker threads; 0 = hardware concurrency. */
    unsigned jobs = 0;
    /** Shards per campaign; 0 derives a deterministic default from the
     *  sample plan (independent of `jobs`). */
    std::size_t shardsPerCampaign = 0;
    /** Checkpoints per golden run; 0 = legacy from-scratch engine. */
    unsigned checkpoints = kDefaultCheckpoints;
    /** JSONL shard store path; empty disables checkpointing. */
    std::string storePath;
    /** Load the store and skip already-completed shards. */
    bool resume = false;
    /** Print progress lines to stderr. */
    bool verbose = true;

    /** The (behavior, pattern) pair as the reliability layer consumes it. */
    FaultShape
    faultShape() const
    {
        return FaultShape{faultBehavior, faultPattern};
    }

    // --- Resolution of the empty-means-all defaults. -------------------
    std::vector<std::string> resolvedWorkloads() const;
    std::vector<GpuModel> resolvedGpus() const;
    /** Empty resolves to every registered structure. */
    std::vector<TargetStructure> resolvedStructures() const;

    /**
     * Check the spec against the registries: every workload, GPU and
     * structure must be registered, the plan must be executable (a
     * zero-injection plan is only valid with aceOnly), confidence must
     * lie in (0, 1), and resume requires a store path.  Throws
     * FatalError naming the offending field.
     */
    void validate() const;

    /**
     * Stable content hash over the result-determining fields: the
     * resolved grid (order- and duplicate-insensitive) and the campaign
     * parameters.  Execution knobs (jobs, shards, checkpoints, store,
     * verbosity) are excluded — they never change the counts, so stores
     * written at any of those settings stay mutually resumable.
     */
    std::uint64_t campaignHash() const;
    /** campaignHash() as 16 lowercase hex digits. */
    std::string campaignHashHex() const;

    // --- Serialization. ------------------------------------------------
    /** One JSON object: {"version", "grid", "campaign", "execution"}. */
    void toJson(std::ostream& os) const;
    std::string toJsonString() const;
    /** Emit into an existing writer (for embedding, e.g. the shard
     *  store header). */
    void writeJson(JsonWriter& j) const;

    /** Parse a spec document.  Unknown keys, unregistered names and
     *  malformed values all throw FatalError with a precise message.
     *  Missing fields keep their defaults, so fromJson(toJson(s)) == s
     *  for every valid spec. */
    static StudySpec fromJson(std::string_view json);
    static StudySpec fromJsonFile(const std::string& path);

    bool operator==(const StudySpec& o) const;
    bool operator!=(const StudySpec& o) const { return !(*this == o); }
};

/**
 * Fluent construction of a StudySpec.  Each setter returns *this;
 * build() validates and returns the value.  Call order never matters —
 * the spec (and therefore its hash) depends only on the final field
 * values.
 */
class StudySpecBuilder
{
  public:
    StudySpecBuilder& workloads(std::vector<std::string> names);
    StudySpecBuilder& workload(std::string name); ///< append one
    StudySpecBuilder& gpus(std::vector<GpuModel> models);
    StudySpecBuilder& gpu(GpuModel model); ///< append one
    StudySpecBuilder& structures(std::vector<TargetStructure> ids);
    StudySpecBuilder& structure(TargetStructure id); ///< append one

    StudySpecBuilder& plan(const SamplePlan& p);
    StudySpecBuilder& injections(std::size_t n);
    StudySpecBuilder& confidence(double c);
    /** > 0 selects adaptive sequential stopping at this CI half-width. */
    StudySpecBuilder& margin(double m);
    /** Adaptive cap; 0 derives the fixed-size equivalent. */
    StudySpecBuilder& maxInjections(std::size_t n);
    StudySpecBuilder& seed(std::uint64_t s);
    StudySpecBuilder& workloadSeed(std::uint64_t s);
    StudySpecBuilder& faultBehavior(FaultBehavior b);
    StudySpecBuilder& faultPattern(FaultPattern p);
    StudySpecBuilder& aceOnly(bool on = true);
    StudySpecBuilder& rawFitPerMbit(double fit);

    StudySpecBuilder& jobs(unsigned n);
    StudySpecBuilder& shardsPerCampaign(std::size_t n);
    StudySpecBuilder& checkpoints(unsigned n);
    StudySpecBuilder& store(std::string path);
    StudySpecBuilder& resume(bool on = true);
    StudySpecBuilder& verbose(bool on);

    /** Validate and return the spec (throws FatalError on bad fields). */
    StudySpec build() const;

  private:
    StudySpec spec_;
};

// --- Shared presets -----------------------------------------------------

/** The paper's experiment: full 10x4 grid, 2,000 injections per
 *  structure at 99 % confidence. */
StudySpec paperStudySpec();

/** A seconds-scale smoke slice (vectoradd + reduction on the GTX 480,
 *  40 injections) used by CI and quick local checks. */
StudySpec smokeStudySpec();

// --- Registry-validated name-list parsing (shared by every CLI) ---------

/** Throw FatalError listing the registered benchmarks unless every
 *  element of @p names is one of them. */
void validateWorkloadNames(const std::vector<std::string>& names);

/** Parse "a,b,c" into validated workload names (empty pieces dropped). */
std::vector<std::string> parseWorkloadList(std::string_view csv);

/** Parse "gtx480,7970" into GPU models; throws FatalError on unknowns. */
std::vector<GpuModel> parseGpuList(std::string_view csv);

/** Parse "rf,lds" into registered structures; throws FatalError on
 *  unknowns, listing the registry. */
std::vector<TargetStructure> parseStructureList(std::string_view csv);

} // namespace gpr

#endif // GPR_CORE_STUDY_SPEC_HH
