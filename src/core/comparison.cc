#include "core/comparison.hh"

#include <algorithm>
#include <ostream>

#include "common/logging.hh"
#include "common/statistics.hh"
#include "common/string_utils.hh"
#include "core/orchestrator.hh"

namespace gpr {
namespace {

std::string
pct(double v)
{
    return strprintf("%.1f%%", 100.0 * v);
}

/** The error bar of a measured FI rate: its CI as "lo..hi%". */
std::string
ciCell(const StructureReport& sr)
{
    if (!sr.injections)
        return "n/a";
    return strprintf("%.1f..%.1f%%", 100.0 * sr.avfCi.lo,
                     100.0 * sr.avfCi.hi);
}

} // namespace

const ReliabilityReport&
StudyResult::at(std::size_t w, std::size_t g) const
{
    GPR_ASSERT(w < workloads.size() && g < gpus.size(),
               "study index out of range");
    return reports[w * gpus.size() + g];
}

TextTable
StudyResult::figure1() const
{
    TextTable table({"benchmark", "GPU", "AVF-FI", "FI CI", "AVF-ACE",
                     "occupancy"});
    std::vector<RunningStat> fi_avg(gpus.size()), ace_avg(gpus.size()),
        occ_avg(gpus.size());

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        for (std::size_t g = 0; g < gpus.size(); ++g) {
            const ReliabilityReport& r = at(w, g);
            const StructureReport& sr =
                r.forStructure(TargetStructure::VectorRegisterFile);
            // A structure no injections ran on (--ace-only, or excluded
            // by --structures) is not-measured, not ultra-reliable.
            table.addRow({workloads[w], r.gpuName,
                          sr.injections ? pct(sr.avfFi)
                                        : std::string("n/a"),
                          ciCell(sr), pct(sr.avfAce),
                          pct(sr.occupancy)});
            if (sr.injections)
                fi_avg[g].push(sr.avfFi);
            ace_avg[g].push(sr.avfAce);
            occ_avg[g].push(sr.occupancy);
        }
    }
    for (std::size_t g = 0; g < gpus.size(); ++g) {
        table.addRow({"average", std::string(gpuModelName(gpus[g])),
                      fi_avg[g].count() ? pct(fi_avg[g].mean())
                                        : std::string("n/a"),
                      "", pct(ace_avg[g].mean()),
                      pct(occ_avg[g].mean())});
    }
    return table;
}

TextTable
StudyResult::figure2() const
{
    TextTable table({"benchmark", "GPU", "AVF-FI", "FI CI", "AVF-ACE",
                     "occupancy"});
    std::vector<RunningStat> fi_avg(gpus.size()), ace_avg(gpus.size()),
        occ_avg(gpus.size());

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        // Fig. 2 includes only benchmarks that use local memory.
        if (!at(w, 0)
                 .forStructure(TargetStructure::SharedMemory)
                 .applicable)
            continue;
        for (std::size_t g = 0; g < gpus.size(); ++g) {
            const ReliabilityReport& r = at(w, g);
            const StructureReport& sr =
                r.forStructure(TargetStructure::SharedMemory);
            table.addRow({workloads[w], r.gpuName,
                          sr.injections ? pct(sr.avfFi)
                                        : std::string("n/a"),
                          ciCell(sr), pct(sr.avfAce),
                          pct(sr.occupancy)});
            if (sr.injections)
                fi_avg[g].push(sr.avfFi);
            ace_avg[g].push(sr.avfAce);
            occ_avg[g].push(sr.occupancy);
        }
    }
    for (std::size_t g = 0; g < gpus.size(); ++g) {
        if (ace_avg[g].count() == 0)
            continue;
        table.addRow({"average", std::string(gpuModelName(gpus[g])),
                      fi_avg[g].count() ? pct(fi_avg[g].mean())
                                        : std::string("n/a"),
                      "", pct(ace_avg[g].mean()),
                      pct(occ_avg[g].mean())});
    }
    return table;
}

TextTable
StudyResult::figure3() const
{
    TextTable table({"benchmark", "GPU", "EPF", "EPF CI", "EIT",
                     "FIT_GPU", "exec_s"});
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        for (std::size_t g = 0; g < gpus.size(); ++g) {
            const ReliabilityReport& r = at(w, g);
            // Degenerate interval (ACE-only study): no error bar.
            const bool has_ci = r.epfCi.hi > r.epfCi.lo;
            table.addRow({workloads[w], r.gpuName,
                          sciNotation(r.epf.epf()),
                          has_ci ? sciNotation(r.epfCi.lo) + ".." +
                                       sciNotation(r.epfCi.hi)
                                 : std::string("n/a"),
                          sciNotation(r.epf.eit),
                          strprintf("%.1f", r.epf.fitTotal()),
                          sciNotation(r.execSeconds)});
        }
    }
    return table;
}

StudyResult::Claims
StudyResult::claims() const
{
    Claims c;
    std::vector<double> rf_fi, rf_occ, lm_fi, lm_occ;
    std::vector<double> ace_seconds, fi_seconds;
    RunningStat rf_gap, lm_gap;

    for (const ReliabilityReport& r : reports) {
        ace_seconds.push_back(r.aceWallSeconds);
        for (const StructureReport& sr : r.structures)
            fi_seconds.push_back(sr.fiWallSeconds);

        // Only measured FI numbers feed the claim statistics — a
        // structure excluded by --structures (or --ace-only) left
        // placeholder zeros that would fabricate correlations/gaps.
        const StructureReport& rf =
            r.forStructure(TargetStructure::VectorRegisterFile);
        if (rf.injections) {
            rf_fi.push_back(rf.avfFi);
            rf_occ.push_back(rf.occupancy);
            rf_gap.push(rf.avfAce - rf.avfFi);
        }

        const StructureReport& lm =
            r.forStructure(TargetStructure::SharedMemory);
        if (lm.applicable && lm.injections) {
            lm_fi.push_back(lm.avfFi);
            lm_occ.push_back(lm.occupancy);
            lm_gap.push(std::abs(lm.avfAce - lm.avfFi));
        }
    }
    // Report order is the fixed reduction order (lint rule D5): the
    // totals stay bit-identical however the shards that produced the
    // reports were scheduled.
    c.aceSecondsTotal = fixedOrderSum(ace_seconds);
    c.fiSecondsTotal = fixedOrderSum(fi_seconds);
    c.rfAvfOccupancyCorrelation = pearsonCorrelation(rf_fi, rf_occ);
    c.lmAvfOccupancyCorrelation = pearsonCorrelation(lm_fi, lm_occ);
    c.rfMeanAceOverestimate = rf_gap.mean();
    c.lmMeanAceGap = lm_gap.mean();
    return c;
}

void
StudyResult::printClaims(std::ostream& os) const
{
    const Claims c = claims();
    os << "paper-claim checks:\n";
    os << strprintf(
        "  AVF correlates with occupancy:      RF r=%.2f   LM r=%.2f\n",
        c.rfAvfOccupancyCorrelation, c.lmAvfOccupancyCorrelation);
    os << strprintf(
        "  ACE overestimate (mean ACE-FI):     RF %+.1f pp  LM gap %.1f pp\n",
        100.0 * c.rfMeanAceOverestimate, 100.0 * c.lmMeanAceGap);
    os << strprintf(
        "  analysis cost:                      FI %.1f worker-s vs ACE "
        "%.2f s (%.0fx work)\n",
        c.fiSecondsTotal, c.aceSecondsTotal,
        c.aceSecondsTotal > 0 ? c.fiSecondsTotal / c.aceSecondsTotal : 0.0);
}

StudyResult
runComparisonStudy(const StudySpec& spec)
{
    // The grid does not run cell-by-cell: the orchestrator flattens it
    // into campaign shards on one worker pool (see core/orchestrator.hh).
    return runStudy(spec);
}

StudyResult
runComparisonStudy()
{
    return runComparisonStudy(paperStudySpec());
}

StudyResult
runComparisonStudy(const StudyOptions& options)
{
    return runStudy(studySpecFromLegacy(options));
}

} // namespace gpr
