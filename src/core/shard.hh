/**
 * @file
 * Plain-data records of campaign shards — the work-unit identity and
 * outcome counts shared by the study orchestrator (which executes
 * shards) and the exporter (which persists them as JSONL).  Deliberately
 * free of any execution machinery so serialisation-only users do not
 * depend on the worker-pool layer.
 */

#ifndef GPR_CORE_SHARD_HH
#define GPR_CORE_SHARD_HH

#include <cstdint>
#include <string>
#include <tuple>

#include "arch/gpu_config.hh"
#include "sim/fault_model.hh"

namespace gpr {

/** Identity of one campaign shard — everything that determines its
 *  outcome counts.  Two runs recompute identical counts for equal keys,
 *  which is what makes resume sound. */
struct ShardKey
{
    std::string workload;
    GpuModel gpu = GpuModel::GeforceGtx480;
    TargetStructure structure = TargetStructure::VectorRegisterFile;
    std::uint32_t shardIndex = 0;
    /** Injection index range [begin, end) within the campaign. */
    std::uint64_t injectionBegin = 0;
    std::uint64_t injectionEnd = 0;
    /** Seed the per-injection RNGs derive from. */
    std::uint64_t campaignSeed = 0;
    std::uint64_t workloadSeed = 0;
    /** Fault shape of every injection in the shard (study-wide; the
     *  defaults keep pre-shape stores parsing unchanged). */
    FaultBehavior behavior = FaultBehavior::Transient;
    FaultPattern pattern = FaultPattern::SingleBit;

  private:
    auto
    tied() const
    {
        return std::tie(workload, gpu, structure, shardIndex,
                        injectionBegin, injectionEnd, campaignSeed,
                        workloadSeed, behavior, pattern);
    }

  public:
    bool operator==(const ShardKey& o) const { return tied() == o.tied(); }
    bool operator<(const ShardKey& o) const { return tied() < o.tied(); }
};

/** Outcome counts of one executed shard. */
struct ShardCounts
{
    std::uint64_t masked = 0;
    std::uint64_t sdc = 0;
    std::uint64_t due = 0;
    /** Worker-seconds this shard spent injecting (busy time on one
     *  worker, not pool wall-clock — summing never double-counts). */
    double busySeconds = 0.0;
};

/** One line of the JSONL results store. */
struct ShardRecord
{
    ShardKey key;
    ShardCounts counts;
};

} // namespace gpr

#endif // GPR_CORE_SHARD_HH
