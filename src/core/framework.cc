#include "core/framework.hh"

#include <ostream>
#include <utility>

#include "common/logging.hh"
#include "common/string_utils.hh"
#include "core/orchestrator.hh"

namespace gpr {

ReliabilityFramework::ReliabilityFramework(GpuModel model)
    : model_(model), config_(gpuConfig(model))
{
}

const StructureReport&
ReliabilityReport::forStructure(TargetStructure s) const
{
    return structureEntry(structures, s, "ReliabilityReport");
}

WorkloadInstance
ReliabilityFramework::buildInstance(std::string_view workload_name,
                                    std::uint64_t workload_seed) const
{
    const auto workload = makeWorkload(workload_name);
    WorkloadParams params;
    params.seed = workload_seed;
    return workload->build(config_.dialect, params);
}

ReliabilityReport
ReliabilityFramework::analyze(std::string_view workload_name,
                              const StudySpec& spec) const
{
    // A full analysis is a one-cell study: the orchestrator supplies the
    // golden-run cache, the shard fan-out, and the report assembly, so a
    // standalone analyze() is bit-identical to the same cell inside a
    // grid run (identical (campaign seed, injection index) derivation).
    StudySpec cell = spec;
    cell.workloads = {std::string(workload_name)};
    cell.gpus = {model_};
    cell.storePath.clear();
    cell.resume = false;
    cell.verbose = false;

    StudyResult result = runStudy(cell);
    GPR_ASSERT(result.reports.size() == 1, "one-cell study shape");
    return std::move(result.reports.front());
}

ReliabilityReport
ReliabilityFramework::analyze(std::string_view workload_name) const
{
    return analyze(workload_name, StudySpec{});
}

ReliabilityReport
ReliabilityFramework::analyze(std::string_view workload_name,
                              const AnalysisOptions& options) const
{
    StudySpec spec;
    spec.plan = options.plan;
    spec.seed = options.seed;
    spec.workloadSeed = options.workloadSeed;
    spec.aceOnly = options.aceOnly;
    spec.fitParams = options.fitParams;
    spec.jobs = options.numThreads;
    return analyze(workload_name, spec);
}

void
ReliabilityReport::printSummary(std::ostream& os) const
{
    os << workload << " on " << gpuName << ":\n";
    os << strprintf("  cycles %llu  exec %.3e s  IPC %.2f  warp-occ %.1f%%\n",
                    static_cast<unsigned long long>(cycles), execSeconds,
                    ipc, 100.0 * warpOccupancy);

    // Name the fault model when it is not the default transient
    // single-bit (the shape is study-wide; any measured entry carries it).
    for (const StructureReport& sr : structures) {
        if (!sr.injections ||
            FaultShape{sr.behavior, sr.pattern}.isDefault()) {
            continue;
        }
        os << "  fault model: "
           << std::string(faultBehaviorName(sr.behavior)) << " x "
           << std::string(faultPatternName(sr.pattern)) << "\n";
        break;
    }

    for (const StructureSpec& spec : structureRegistry()) {
        const StructureReport& sr = forStructure(spec.id);
        const std::string label(spec.name);
        if (!sr.applicable) {
            os << strprintf("  %-22s n/a\n", label.c_str());
            continue;
        }
        if (sr.injections) {
            os << strprintf(
                "  %-22s AVF-FI %5.1f%% [%4.1f,%5.1f] "
                "(SDC %4.1f%% DUE %4.1f%%, n=%zu)"
                "  AVF-ACE %5.1f%%  occ %5.1f%%\n",
                label.c_str(), 100.0 * sr.avfFi, 100.0 * sr.avfCi.lo,
                100.0 * sr.avfCi.hi, 100.0 * sr.sdcRate,
                100.0 * sr.dueRate, sr.injections, 100.0 * sr.avfAce,
                100.0 * sr.occupancy);
        } else {
            os << strprintf(
                "  %-22s AVF-FI   n/a"
                "  AVF-ACE %5.1f%%  occ %5.1f%%\n",
                label.c_str(), 100.0 * sr.avfAce, 100.0 * sr.occupancy);
        }
    }

    os << strprintf(
        "  FIT: RF %.1f  LDS %.1f  SRF %.1f  total %.1f   EIT %.3e   "
        "EPF %.3e\n",
        epf.fitRegisterFile, epf.fitLocalMemory,
        epf.fitScalarRegisterFile, epf.fitTotal(), epf.eit, epf.epf());
}

} // namespace gpr
