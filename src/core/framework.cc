#include "core/framework.hh"

#include <ostream>

#include "common/logging.hh"
#include "common/string_utils.hh"

namespace gpr {

ReliabilityFramework::ReliabilityFramework(GpuModel model)
    : model_(model), config_(gpuConfig(model))
{
}

WorkloadInstance
ReliabilityFramework::buildInstance(std::string_view workload_name,
                                    std::uint64_t workload_seed) const
{
    const auto workload = makeWorkload(workload_name);
    WorkloadParams params;
    params.seed = workload_seed;
    return workload->build(config_.dialect, params);
}

ReliabilityReport
ReliabilityFramework::analyze(std::string_view workload_name,
                              const AnalysisOptions& options) const
{
    const auto workload = makeWorkload(workload_name);
    WorkloadParams params;
    params.seed = options.workloadSeed;
    const WorkloadInstance instance =
        workload->build(config_.dialect, params);

    ReliabilityReport report;
    report.workload = std::string(workload_name);
    report.gpu = model_;
    report.gpuName = config_.name;

    // ACE analysis: one instrumented run covers all structures and also
    // provides the golden performance stats.
    const AceResult ace = runAceAnalysis(config_, instance);
    report.aceWallSeconds = ace.wallSeconds;
    report.cycles = ace.goldenStats.cycles;
    report.execSeconds = executionSeconds(config_, report.cycles);
    report.ipc = ace.goldenStats.ipc();
    report.warpOccupancy = ace.goldenStats.avgWarpOccupancy;

    const bool uses_lds = workload->usesLocalMemory();

    auto fill_structure = [&](StructureReport& sr, TargetStructure s,
                              bool applicable, double occupancy) {
        sr.structure = s;
        sr.applicable = applicable;
        if (!applicable)
            return;
        sr.avfAce = ace.forStructure(s).avf();
        sr.occupancy = occupancy;
        if (options.aceOnly)
            return;
        CampaignConfig cc;
        cc.plan = options.plan;
        cc.seed = deriveSeed(options.seed, static_cast<std::uint64_t>(s));
        cc.numThreads = options.numThreads;
        const CampaignResult fi = runCampaign(config_, instance, s, cc);
        sr.avfFi = fi.avf();
        sr.fiErrorMargin = fi.errorMargin();
        sr.sdcRate = fi.sdcRate();
        sr.dueRate = fi.dueRate();
        sr.fiWallSeconds = fi.wallSeconds;
        sr.injections = fi.injections;
    };

    fill_structure(report.registerFile,
                   TargetStructure::VectorRegisterFile, true,
                   ace.goldenStats.avgRegFileOccupancy);
    fill_structure(report.localMemory, TargetStructure::SharedMemory,
                   uses_lds, ace.goldenStats.avgSmemOccupancy);
    fill_structure(report.scalarRegisterFile,
                   TargetStructure::ScalarRegisterFile,
                   config_.scalarRegWordsPerSm > 0,
                   ace.goldenStats.avgScalarRegOccupancy);

    // EPF from the FI AVFs (ACE AVFs when aceOnly).
    const auto pick = [&](const StructureReport& sr) {
        if (!sr.applicable)
            return 0.0;
        return options.aceOnly ? sr.avfAce : sr.avfFi;
    };
    report.epf = computeEpf(config_, report.cycles,
                            pick(report.registerFile),
                            pick(report.localMemory),
                            pick(report.scalarRegisterFile),
                            options.fitParams);
    return report;
}

void
ReliabilityReport::printSummary(std::ostream& os) const
{
    os << workload << " on " << gpuName << ":\n";
    os << strprintf("  cycles %llu  exec %.3e s  IPC %.2f  warp-occ %.1f%%\n",
                    static_cast<unsigned long long>(cycles), execSeconds,
                    ipc, 100.0 * warpOccupancy);

    auto line = [&](const char* label, const StructureReport& sr) {
        if (!sr.applicable) {
            os << strprintf("  %-22s n/a\n", label);
            return;
        }
        os << strprintf(
            "  %-22s AVF-FI %5.1f%% (+/-%4.1f%%, SDC %4.1f%% DUE %4.1f%%)"
            "  AVF-ACE %5.1f%%  occ %5.1f%%\n",
            label, 100.0 * sr.avfFi, 100.0 * sr.fiErrorMargin,
            100.0 * sr.sdcRate, 100.0 * sr.dueRate, 100.0 * sr.avfAce,
            100.0 * sr.occupancy);
    };
    line("register file", registerFile);
    line("local memory", localMemory);
    line("scalar register file", scalarRegisterFile);

    os << strprintf(
        "  FIT: RF %.1f  LDS %.1f  SRF %.1f  total %.1f   EIT %.3e   "
        "EPF %.3e\n",
        epf.fitRegisterFile, epf.fitLocalMemory,
        epf.fitScalarRegisterFile, epf.fitTotal(), epf.eit, epf.epf());
}

} // namespace gpr
