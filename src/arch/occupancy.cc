#include "arch/occupancy.hh"

#include <algorithm>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace gpr {

OccupancyInfo
computeOccupancy(const GpuConfig& config, const Program& prog,
                 std::uint32_t threads_per_block, std::uint32_t grid_blocks)
{
    GPR_ASSERT(threads_per_block > 0, "empty block");
    GPR_ASSERT(grid_blocks > 0, "empty grid");

    if (threads_per_block > config.maxThreadsPerBlock) {
        fatal("kernel '", prog.name(), "': block of ", threads_per_block,
              " threads exceeds ", config.name, " limit of ",
              config.maxThreadsPerBlock);
    }
    if (prog.dialect() != config.dialect) {
        fatal("kernel '", prog.name(), "' is compiled for ",
              dialectName(prog.dialect()), " but ", config.name, " runs ",
              dialectName(config.dialect));
    }

    OccupancyInfo info;
    info.warpsPerBlock = ceilDiv(threads_per_block, config.warpWidth);
    info.regsPerBlock =
        info.warpsPerBlock * config.warpWidth * prog.numVRegs();
    info.sregsPerBlock = info.warpsPerBlock * prog.numSRegs();
    info.smemPerBlock = prog.smemBytes();

    if (info.regsPerBlock > config.regFileWordsPerSm) {
        fatal("kernel '", prog.name(), "': one block needs ",
              info.regsPerBlock, " registers, but ", config.name,
              " has only ", config.regFileWordsPerSm, " per SM");
    }
    if (info.smemPerBlock > config.smemBytesPerSm) {
        fatal("kernel '", prog.name(), "': one block needs ",
              info.smemPerBlock, " bytes of shared memory, but ",
              config.name, " has only ", config.smemBytesPerSm, " per SM");
    }
    if (config.scalarRegWordsPerSm > 0 &&
        info.sregsPerBlock > config.scalarRegWordsPerSm) {
        fatal("kernel '", prog.name(), "': scalar register demand exceeds ",
              config.name);
    }

    // Resource-limited block residency.
    std::uint32_t limit = config.maxBlocksPerSm;
    auto limiter = OccupancyInfo::Limiter::BlockSlots;

    const std::uint32_t by_warps =
        config.maxWarpsPerSm / info.warpsPerBlock;
    if (by_warps < limit) {
        limit = by_warps;
        limiter = OccupancyInfo::Limiter::WarpSlots;
    }

    const std::uint32_t by_regs =
        info.regsPerBlock ? config.regFileWordsPerSm / info.regsPerBlock
                          : limit;
    if (by_regs < limit) {
        limit = by_regs;
        limiter = OccupancyInfo::Limiter::Registers;
    }

    if (config.scalarRegWordsPerSm > 0 && info.sregsPerBlock > 0) {
        const std::uint32_t by_sregs =
            config.scalarRegWordsPerSm / info.sregsPerBlock;
        if (by_sregs < limit) {
            limit = by_sregs;
            limiter = OccupancyInfo::Limiter::Registers;
        }
    }

    if (info.smemPerBlock > 0) {
        const std::uint32_t by_smem =
            config.smemBytesPerSm / info.smemPerBlock;
        if (by_smem < limit) {
            limit = by_smem;
            limiter = OccupancyInfo::Limiter::SharedMemory;
        }
    }

    GPR_ASSERT(limit >= 1, "resource checks above guarantee >= 1 block");

    // A small grid may not fill even one SM's worth of slots.
    const std::uint32_t avg_blocks_per_sm_ceiling =
        ceilDiv(grid_blocks, config.numSms);
    if (avg_blocks_per_sm_ceiling < limit) {
        limit = std::max(1u, avg_blocks_per_sm_ceiling);
        limiter = OccupancyInfo::Limiter::GridSize;
    }

    info.blocksPerSm = limit;
    info.limiter = limiter;
    info.activeWarpsPerSm = limit * info.warpsPerBlock;
    info.warpOccupancy = static_cast<double>(info.activeWarpsPerSm) /
                         static_cast<double>(config.maxWarpsPerSm);
    info.regFileOccupancy =
        static_cast<double>(limit) * info.regsPerBlock /
        static_cast<double>(config.regFileWordsPerSm);
    info.smemOccupancy =
        config.smemBytesPerSm
            ? static_cast<double>(limit) * info.smemPerBlock /
                  static_cast<double>(config.smemBytesPerSm)
            : 0.0;
    return info;
}

std::string_view
occupancyLimiterName(OccupancyInfo::Limiter limiter)
{
    switch (limiter) {
      case OccupancyInfo::Limiter::BlockSlots:
        return "block-slots";
      case OccupancyInfo::Limiter::WarpSlots:
        return "warp-slots";
      case OccupancyInfo::Limiter::Registers:
        return "registers";
      case OccupancyInfo::Limiter::SharedMemory:
        return "shared-memory";
      case OccupancyInfo::Limiter::GridSize:
        return "grid-size";
    }
    return "unknown";
}

} // namespace gpr
