/**
 * @file
 * Microarchitectural configuration records for the four GPUs of the study.
 *
 * Numbers come from vendor datasheets / the GPGPU-Sim and Multi2Sim default
 * configs for the same chips.  The timing-model parameters (latencies,
 * issue width, memory throughput) are calibration constants of the
 * simulator — EPF only consumes them through ratios (clock x cycles), so
 * plausible values preserve the paper's shape (see DESIGN.md section 6).
 */

#ifndef GPR_ARCH_GPU_CONFIG_HH
#define GPR_ARCH_GPU_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/dialect.hh"

namespace gpr {

/** The four chips compared in the paper. */
enum class GpuModel : std::uint8_t
{
    HdRadeon7970,  ///< AMD Southern Islands (Tahiti)
    QuadroFx5600,  ///< NVIDIA G80
    QuadroFx5800,  ///< NVIDIA GT200
    GeforceGtx480, ///< NVIDIA Fermi (GF100)
};

enum class Vendor : std::uint8_t { Amd, Nvidia };

/** Warp scheduling policy of an SM/CU. */
enum class SchedulerKind : std::uint8_t
{
    RoundRobin,       ///< loose round-robin (G80/GT200, SI SIMD rotation)
    GreedyThenOldest, ///< GTO (Fermi-style)
};

/** Instruction latencies in shader-clock cycles, by functional category. */
struct LatencyModel
{
    std::uint32_t intAlu = 16;
    std::uint32_t floatAlu = 16;
    std::uint32_t sfu = 48;        ///< RCP/SQRT/EXP2/DIV
    std::uint32_t compare = 16;
    std::uint32_t misc = 8;        ///< MOV/S2R/LDPARAM
    std::uint32_t shared = 32;     ///< LDS/STS round trip
    std::uint32_t global = 400;    ///< LDG/STG round trip (uncontended)
};

/**
 * Full device description.  One SM record is replicated numSms times; the
 * register file and LDS sizes below are per SM/CU.
 */
struct GpuConfig
{
    GpuModel model = GpuModel::GeforceGtx480;
    Vendor vendor = Vendor::Nvidia;
    IsaDialect dialect = IsaDialect::Cuda;
    std::string name;
    std::string microarchitecture;

    // Compute resources.
    std::uint32_t numSms = 1;            ///< SMs (NVIDIA) or CUs (AMD)
    std::uint32_t warpWidth = 32;
    std::uint32_t maxWarpsPerSm = 48;    ///< resident warp/wavefront slots
    std::uint32_t maxBlocksPerSm = 8;
    std::uint32_t maxThreadsPerBlock = 512;
    std::uint32_t issueWidth = 1;        ///< warp-instructions issued/cycle
    /** Cycles a warp occupies its execution unit per instruction (e.g. 4
     *  on G80: a 32-wide warp over 8 SPs); lower-bounds back-to-back
     *  issue from the same warp. */
    std::uint32_t warpIssueInterval = 4;

    // Storage structures under study (sizes per SM/CU).  These fields
    // are raw capacities; the canonical per-structure fault/ACE budgets
    // (including the control-state targets, which derive from
    // maxWarpsPerSm and warpWidth) live in the structure registry —
    // see structureBitsTotal() in sim/structure_registry.hh.
    std::uint32_t regFileWordsPerSm = 32768; ///< 32-bit vector registers
    std::uint32_t scalarRegWordsPerSm = 0;   ///< SI scalar registers
    std::uint32_t smemBytesPerSm = 48 * 1024;
    std::uint32_t smemBanks = 32;

    // Modeled cache hierarchy (functional fault targets, not timing —
    // see sim/cache.hh).  A zero capacity means the cache is absent on
    // the chip and its registry row does not apply.
    std::uint32_t l1dBytesPerSm = 16 * 1024;
    std::uint32_t l1iBytesPerSm = 8 * 1024;
    std::uint32_t l2Bytes = 768 * 1024; ///< chip-shared
    std::uint32_t cacheLineBytes = 128; ///< line size for all three

    // Clocks and memory system.
    double clockMhz = 1000.0;            ///< shader clock
    std::uint32_t memTransactionCycles = 1; ///< chip cycles per 128B txn
    LatencyModel latency;
    SchedulerKind scheduler = SchedulerKind::RoundRobin;

    /** Watchdog: a run is declared hung after this multiple of the golden
     *  cycle count (plus a fixed slack). */
    double watchdogFactor = 4.0;

    // Derived helpers.
    std::uint64_t totalRegFileBits() const
    {
        return static_cast<std::uint64_t>(numSms) * regFileWordsPerSm * 32;
    }
    std::uint64_t totalScalarRegBits() const
    {
        return static_cast<std::uint64_t>(numSms) * scalarRegWordsPerSm * 32;
    }
    std::uint64_t totalSmemBits() const
    {
        return static_cast<std::uint64_t>(numSms) * smemBytesPerSm * 8;
    }
    std::uint32_t smemWordsPerSm() const { return smemBytesPerSm / 4; }
    std::uint32_t cacheLineWords() const { return cacheLineBytes / 4; }
    std::uint32_t l1dLinesPerSm() const
    {
        return l1dBytesPerSm / cacheLineBytes;
    }
    std::uint32_t l1iLinesPerSm() const
    {
        return l1iBytesPerSm / cacheLineBytes;
    }
    std::uint32_t l2Lines() const { return l2Bytes / cacheLineBytes; }
};

/** The canonical configuration for @p model. */
const GpuConfig& gpuConfig(GpuModel model);

/** All four models, in the paper's figure order. */
const std::vector<GpuModel>& allGpuModels();

/** Display name, e.g. "HD Radeon 7970". */
std::string_view gpuModelName(GpuModel model);

/** Canonical short name used by CLIs and serialized specs, e.g. "7970",
 *  "fx5600", "fx5800", "gtx480".  Round-trips via gpuModelFromName(). */
std::string_view gpuShortName(GpuModel model);

/** Parse a model from its display or short name; throws FatalError. */
GpuModel gpuModelFromName(std::string_view name);

} // namespace gpr

#endif // GPR_ARCH_GPU_CONFIG_HH
