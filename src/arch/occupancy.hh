/**
 * @file
 * Static occupancy calculator — the CUDA-occupancy-calculator equivalent,
 * generalised over both vendors.
 *
 * Given a kernel's per-thread register use, per-block shared memory and the
 * launch geometry, computes how many blocks are resident per SM and what
 * fraction of each studied storage structure is therefore allocated.  The
 * simulator reports *measured* (time-averaged) occupancy; this module gives
 * the closed-form bound used for cross-checks and for the occupancy
 * ablation bench.
 */

#ifndef GPR_ARCH_OCCUPANCY_HH
#define GPR_ARCH_OCCUPANCY_HH

#include <cstdint>

#include "arch/gpu_config.hh"
#include "isa/program.hh"

namespace gpr {

/** Result of the static occupancy computation. */
struct OccupancyInfo
{
    std::uint32_t warpsPerBlock = 0;
    std::uint32_t regsPerBlock = 0;     ///< vector RF words per block
    std::uint32_t sregsPerBlock = 0;    ///< scalar RF words per block (SI)
    std::uint32_t smemPerBlock = 0;     ///< bytes per block

    /** Max resident blocks per SM and the limiting resource. */
    std::uint32_t blocksPerSm = 0;
    enum class Limiter : std::uint8_t
    {
        BlockSlots,
        WarpSlots,
        Registers,
        SharedMemory,
        GridSize, ///< grid has fewer blocks than the hardware could host
    } limiter = Limiter::BlockSlots;

    std::uint32_t activeWarpsPerSm = 0;
    /** Warp-slot occupancy (activeWarps / maxWarps). */
    double warpOccupancy = 0.0;
    /** Fraction of vector RF words allocated when fully resident. */
    double regFileOccupancy = 0.0;
    /** Fraction of LDS bytes allocated when fully resident. */
    double smemOccupancy = 0.0;
};

/**
 * Compute the occupancy of @p prog on @p config for a launch of
 * @p threads_per_block threads and @p grid_blocks blocks total.
 * Throws FatalError if the kernel cannot launch at all (one block
 * exceeds an SM's resources).
 */
OccupancyInfo computeOccupancy(const GpuConfig& config, const Program& prog,
                               std::uint32_t threads_per_block,
                               std::uint32_t grid_blocks);

/** Human-readable limiter name. */
std::string_view occupancyLimiterName(OccupancyInfo::Limiter limiter);

} // namespace gpr

#endif // GPR_ARCH_OCCUPANCY_HH
