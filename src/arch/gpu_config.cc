#include "arch/gpu_config.hh"

#include "common/logging.hh"
#include "common/string_utils.hh"

namespace gpr {
namespace {

GpuConfig
makeHdRadeon7970()
{
    GpuConfig c;
    c.model = GpuModel::HdRadeon7970;
    c.vendor = Vendor::Amd;
    c.dialect = IsaDialect::SouthernIslands;
    c.name = "HD Radeon 7970";
    c.microarchitecture = "Southern Islands (Tahiti)";
    c.numSms = 32;                   // compute units
    c.warpWidth = 64;                // wavefront
    c.maxWarpsPerSm = 40;            // 10 waves per SIMD x 4 SIMDs
    c.maxBlocksPerSm = 16;           // work-groups per CU
    c.maxThreadsPerBlock = 256;      // typical OpenCL work-group limit
    c.issueWidth = 2;                // CU-level sustained issue (model)
    c.warpIssueInterval = 4;         // wave64 over a 16-lane SIMD
    c.regFileWordsPerSm = 65536;     // 256 KB vector RF (4 x 64 KB SIMDs)
    c.scalarRegWordsPerSm = 2048;    // 8 KB scalar RF
    c.smemBytesPerSm = 64 * 1024;    // LDS
    c.smemBanks = 32;
    c.l1dBytesPerSm = 16 * 1024;     // vector L1 per CU
    c.l1iBytesPerSm = 8 * 1024;      // shared by a CU cluster; modeled per CU
    c.l2Bytes = 768 * 1024;
    c.cacheLineBytes = 64;
    c.clockMhz = 925.0;
    c.memTransactionCycles = 1;      // 264 GB/s class memory
    c.latency = {.intAlu = 8, .floatAlu = 8, .sfu = 32, .compare = 8,
                 .misc = 4, .shared = 24, .global = 350};
    c.scheduler = SchedulerKind::RoundRobin;
    return c;
}

GpuConfig
makeQuadroFx5600()
{
    GpuConfig c;
    c.model = GpuModel::QuadroFx5600;
    c.vendor = Vendor::Nvidia;
    c.dialect = IsaDialect::Cuda;
    c.name = "Quadro FX 5600";
    c.microarchitecture = "G80";
    c.numSms = 16;
    c.warpWidth = 32;
    c.maxWarpsPerSm = 24;            // 768 threads / SM
    c.maxBlocksPerSm = 8;
    c.maxThreadsPerBlock = 512;
    c.issueWidth = 1;
    c.warpIssueInterval = 4;         // warp32 over 8 SPs
    c.regFileWordsPerSm = 8192;      // 32 KB
    c.scalarRegWordsPerSm = 0;
    c.smemBytesPerSm = 16 * 1024;
    c.smemBanks = 16;
    c.l1dBytesPerSm = 8 * 1024;      // G80 has no L1d; texture/const class
    c.l1iBytesPerSm = 4 * 1024;
    c.l2Bytes = 96 * 1024;           // small pre-Fermi L2 class
    c.cacheLineBytes = 64;
    c.clockMhz = 1350.0;
    c.memTransactionCycles = 2;      // ~77 GB/s class memory
    c.latency = {.intAlu = 20, .floatAlu = 20, .sfu = 60, .compare = 20,
                 .misc = 8, .shared = 34, .global = 450};
    c.scheduler = SchedulerKind::RoundRobin;
    return c;
}

GpuConfig
makeQuadroFx5800()
{
    GpuConfig c;
    c.model = GpuModel::QuadroFx5800;
    c.vendor = Vendor::Nvidia;
    c.dialect = IsaDialect::Cuda;
    c.name = "Quadro FX 5800";
    c.microarchitecture = "GT200";
    c.numSms = 30;
    c.warpWidth = 32;
    c.maxWarpsPerSm = 32;            // 1024 threads / SM
    c.maxBlocksPerSm = 8;
    c.maxThreadsPerBlock = 512;
    c.issueWidth = 1;
    c.warpIssueInterval = 4;         // warp32 over 8 SPs
    c.regFileWordsPerSm = 16384;     // 64 KB
    c.scalarRegWordsPerSm = 0;
    c.smemBytesPerSm = 16 * 1024;
    c.smemBanks = 16;
    c.l1dBytesPerSm = 8 * 1024;      // GT200 texture/const class
    c.l1iBytesPerSm = 4 * 1024;
    c.l2Bytes = 256 * 1024;
    c.cacheLineBytes = 64;
    c.clockMhz = 1296.0;
    c.memTransactionCycles = 1;      // ~102 GB/s class memory
    c.latency = {.intAlu = 20, .floatAlu = 20, .sfu = 60, .compare = 20,
                 .misc = 8, .shared = 34, .global = 420};
    c.scheduler = SchedulerKind::RoundRobin;
    return c;
}

GpuConfig
makeGeforceGtx480()
{
    GpuConfig c;
    c.model = GpuModel::GeforceGtx480;
    c.vendor = Vendor::Nvidia;
    c.dialect = IsaDialect::Cuda;
    c.name = "GeForce GTX 480";
    c.microarchitecture = "Fermi (GF100)";
    c.numSms = 15;
    c.warpWidth = 32;
    c.maxWarpsPerSm = 48;            // 1536 threads / SM
    c.maxBlocksPerSm = 8;
    c.maxThreadsPerBlock = 1024;
    c.issueWidth = 2;                // dual warp schedulers
    c.warpIssueInterval = 2;         // warp32 over 16-lane pipelines
    c.regFileWordsPerSm = 32768;     // 128 KB
    c.scalarRegWordsPerSm = 0;
    c.smemBytesPerSm = 48 * 1024;    // 48/16 configuration
    c.smemBanks = 32;
    c.l1dBytesPerSm = 16 * 1024;     // 48/16 configuration, L1 side
    c.l1iBytesPerSm = 8 * 1024;
    c.l2Bytes = 768 * 1024;
    c.cacheLineBytes = 128;
    c.clockMhz = 1401.0;
    c.memTransactionCycles = 1;      // ~177 GB/s class memory
    c.latency = {.intAlu = 16, .floatAlu = 16, .sfu = 48, .compare = 16,
                 .misc = 6, .shared = 28, .global = 400};
    c.scheduler = SchedulerKind::GreedyThenOldest;
    return c;
}

} // namespace

const GpuConfig&
gpuConfig(GpuModel model)
{
    static const GpuConfig radeon = makeHdRadeon7970();
    static const GpuConfig fx5600 = makeQuadroFx5600();
    static const GpuConfig fx5800 = makeQuadroFx5800();
    static const GpuConfig gtx480 = makeGeforceGtx480();

    switch (model) {
      case GpuModel::HdRadeon7970:
        return radeon;
      case GpuModel::QuadroFx5600:
        return fx5600;
      case GpuModel::QuadroFx5800:
        return fx5800;
      case GpuModel::GeforceGtx480:
        return gtx480;
    }
    panic("unknown GPU model ", static_cast<int>(model));
}

const std::vector<GpuModel>&
allGpuModels()
{
    static const std::vector<GpuModel> models = {
        GpuModel::HdRadeon7970,
        GpuModel::QuadroFx5600,
        GpuModel::QuadroFx5800,
        GpuModel::GeforceGtx480,
    };
    return models;
}

std::string_view
gpuModelName(GpuModel model)
{
    return gpuConfig(model).name;
}

std::string_view
gpuShortName(GpuModel model)
{
    switch (model) {
      case GpuModel::HdRadeon7970:
        return "7970";
      case GpuModel::QuadroFx5600:
        return "fx5600";
      case GpuModel::QuadroFx5800:
        return "fx5800";
      case GpuModel::GeforceGtx480:
        return "gtx480";
    }
    panic("unknown GPU model ", static_cast<int>(model));
}

GpuModel
gpuModelFromName(std::string_view name)
{
    const std::string key = toLower(name);
    for (GpuModel m : allGpuModels()) {
        if (key == toLower(gpuConfig(m).name))
            return m;
    }
    // Short aliases.
    if (key == "7970" || key == "tahiti" || key == "si")
        return GpuModel::HdRadeon7970;
    if (key == "fx5600" || key == "g80")
        return GpuModel::QuadroFx5600;
    if (key == "fx5800" || key == "gt200")
        return GpuModel::QuadroFx5800;
    if (key == "gtx480" || key == "fermi")
        return GpuModel::GeforceGtx480;
    fatal("unknown GPU model '", std::string(name),
          "' (try: 7970, fx5600, fx5800, gtx480)");
}

} // namespace gpr
