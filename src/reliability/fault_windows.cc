#include "reliability/fault_windows.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gpr {
namespace {

/**
 * Safety cap on recorded intervals (~1 GB of windows at 16 B each
 * would be far past it).  A pathological run that exceeds it simply
 * loses the prefilter — observed() turns conservative — while the
 * checkpoint/hash engine keeps working.
 */
constexpr std::size_t kMaxIntervals = std::size_t{1} << 24;

/**
 * Safety cap on value-residency slots (256 B each — 64 MB at the cap).
 * Words past the cap fall back to kResidencyUnknown, i.e. the
 * stuck-at prefilter turns conservative for them individually while
 * every word below the cap keeps its exact thresholds.
 */
constexpr std::size_t kMaxResidencySlots = std::size_t{1} << 18;

} // namespace

bool
FaultWindows::observed(TargetStructure structure, std::uint64_t word,
                       Cycle cycle) const
{
    if (!enabled_)
        return true;
    const StructureWindows& w = forStructure(structure);
    if (word + 1 >= w.offsets.size())
        return true; // unknown structure/word: stay conservative
    const auto begin = w.intervals.begin() +
                       static_cast<std::ptrdiff_t>(w.offsets[word]);
    const auto end = w.intervals.begin() +
                     static_cast<std::ptrdiff_t>(w.offsets[word + 1]);
    // First interval whose end >= cycle; observable iff it started.
    const auto it = std::lower_bound(
        begin, end, cycle,
        [](const Interval& iv, Cycle c) { return iv.end < c; });
    return it != end && it->begin <= cycle;
}

Cycle
FaultWindows::stuckAgreeCycle(TargetStructure structure,
                              std::uint64_t word, unsigned firstBit,
                              unsigned width, bool value) const
{
    GPR_ASSERT(width >= 1 && firstBit + width <= 32,
               "stuck-at bit group must lie within one 32-bit word");
    if (!enabled_)
        return kNeverAgrees;
    const StructureWindows& w = forStructure(structure);
    if (word >= w.residencySlot.size())
        return kNeverAgrees; // unknown structure/word: stay conservative
    const std::uint32_t slot = w.residencySlot[word];
    if (slot == kResidencyNeverRead)
        return 0; // never read: benign at any cycle
    if (slot == kResidencyUnknown)
        return kNeverAgrees;
    const std::uint32_t* base = w.agreeFrom.data() +
                                std::size_t{slot} * 64 + (value ? 32 : 0);
    Cycle worst = 0;
    for (unsigned b = firstBit; b < firstBit + width; ++b) {
        const std::uint32_t stamp = base[b];
        if (stamp == kResidencySaturated)
            return kNeverAgrees;
        worst = std::max<Cycle>(worst, stamp);
    }
    return worst;
}

std::size_t
FaultWindows::intervalCount() const
{
    std::size_t n = 0;
    for (const StructureWindows& w : windows_)
        n += w.intervals.size();
    return n;
}

std::vector<Cycle>
FaultWindows::placeCheckpoints(const GpuConfig& config, Cycle goldenCycles,
                               unsigned budget) const
{
    if (budget == 0 || goldenCycles <= 1)
        return {};

    // Observed-bit density histogram over the golden run.  Bucket k
    // covers cycles [k*g/B, (k+1)*g/B); all weights live at the bucket
    // granularity, which is plenty for placing a handful of checkpoints.
    const std::size_t kBuckets =
        static_cast<std::size_t>(std::min<Cycle>(512, goldenCycles));
    const auto bucket_lo = [&](std::size_t k) {
        return goldenCycles * k / kBuckets;
    };
    std::vector<double> weight(kBuckets, 0.0);

    for (const StructureSpec& spec : structureRegistry()) {
        const std::uint64_t bits_per_sm = spec.bitsPerSm(config);
        if (bits_per_sm == 0)
            continue; // structure absent on this chip
        if (enabled_ && spec.exactDeadWindows) {
            // 32 observable bits per word-interval cycle.
            const StructureWindows& w = forStructure(spec.id);
            for (const Interval& iv : w.intervals) {
                const Cycle lo = iv.begin;
                const Cycle hi = std::min(iv.end, goldenCycles - 1);
                if (lo > hi)
                    continue;
                std::size_t k = lo * kBuckets / goldenCycles;
                for (Cycle c = lo; c <= hi && k < kBuckets; ++k) {
                    const Cycle next = bucket_lo(k + 1);
                    const Cycle span = std::min<Cycle>(hi + 1, next) - c;
                    // Single-threaded fold in fixed registry/interval
                    // order — the order IS the spec.
                    // gpr:lint-allow(D5): deterministic fixed-order fold
                    weight[k] += 32.0 * static_cast<double>(span);
                    c += span;
                }
            }
        } else {
            // No prefilter for this structure: every bit needs
            // simulation at every cycle — uniform weight.
            const double instances =
                spec.scope == StructureScope::PerSm ? config.numSms : 1;
            const double bits = static_cast<double>(bits_per_sm) *
                                instances;
            for (std::size_t k = 0; k < kBuckets; ++k) {
                // gpr:lint-allow(D5): single-threaded, fixed order
                weight[k] += bits * static_cast<double>(
                                        bucket_lo(k + 1) - bucket_lo(k));
            }
        }
    }

    // Prefix sums of weight and weight*cycle (bucket midpoints), so the
    // replay cost of serving buckets [a, b) from a checkpoint at the
    // start of bucket a is O(1).
    std::vector<double> s0(kBuckets + 1, 0.0), s1(kBuckets + 1, 0.0);
    for (std::size_t k = 0; k < kBuckets; ++k) {
        const double mid =
            0.5 * static_cast<double>(bucket_lo(k) + bucket_lo(k + 1));
        s0[k + 1] = s0[k] + weight[k];
        s1[k + 1] = s1[k] + weight[k] * mid;
    }
    const auto segment_cost = [&](std::size_t a, std::size_t b) {
        // Sum over buckets [a, b) of weight * (midpoint - checkpoint).
        return (s1[b] - s1[a]) -
               static_cast<double>(bucket_lo(a)) * (s0[b] - s0[a]);
    };

    // DP: best[m][b] = min cost of buckets [0, b) using the implicit
    // cycle-0 checkpoint plus m placed ones, the m-th at a boundary
    // <= b.  O(budget * B^2) — at most a few million steps.
    const std::size_t m_max =
        std::min<std::size_t>(budget, kBuckets - 1);
    std::vector<double> prev(kBuckets + 1), cur(kBuckets + 1);
    std::vector<std::vector<std::uint32_t>> parent(
        m_max, std::vector<std::uint32_t>(kBuckets + 1, 0));
    for (std::size_t b = 0; b <= kBuckets; ++b)
        prev[b] = segment_cost(0, b);
    for (std::size_t m = 0; m < m_max; ++m) {
        for (std::size_t b = 0; b <= kBuckets; ++b) {
            double best = prev[b]; // skip this checkpoint entirely
            std::uint32_t arg = 0; // 0 encodes "unused"
            for (std::size_t a = 1; a <= b; ++a) {
                const double c = prev[a] + segment_cost(a, b);
                if (c < best) {
                    best = c;
                    arg = static_cast<std::uint32_t>(a);
                }
            }
            cur[b] = best;
            parent[m][b] = arg;
        }
        std::swap(prev, cur);
    }

    // Walk the parents back from the full range.
    std::vector<Cycle> cycles;
    std::size_t b = kBuckets;
    for (std::size_t m = m_max; m-- > 0;) {
        const std::uint32_t a = parent[m][b];
        if (a == 0)
            continue; // this checkpoint did not reduce the cost
        cycles.push_back(bucket_lo(a));
        b = a;
    }
    std::sort(cycles.begin(), cycles.end());
    cycles.erase(std::unique(cycles.begin(), cycles.end()), cycles.end());
    while (!cycles.empty() && cycles.front() == 0)
        cycles.erase(cycles.begin());
    return cycles;
}

FaultWindowRecorder::FaultWindowRecorder(const GpuConfig& config)
{
    for (const StructureSpec& spec : structureRegistry()) {
        if (!spec.exactDeadWindows)
            continue; // control bits: no exact windows exist
        Tracker& t = tracker(spec.id);
        t.tracked = true;
        t.wordsPerSm =
            static_cast<std::uint32_t>(spec.aceUnitsPerSm(config));
        const std::size_t total =
            static_cast<std::size_t>(config.numSms) * t.wordsPerSm;
        t.lastWrite.assign(total, 0);
        t.perWord.resize(total);
        t.residencySlot.assign(total, FaultWindows::kResidencyNeverRead);
    }
}

void
FaultWindowRecorder::onRead(TargetStructure structure, SmId sm,
                            std::uint32_t word, Word value, Cycle cycle)
{
    Tracker& t = tracker(structure);
    if (!t.tracked)
        return;
    const std::size_t w =
        static_cast<std::size_t>(sm) * t.wordsPerSm + word;
    GPR_ASSERT(w < t.perWord.size(), "observer word out of range");
    auto& ivs = t.perWord[w];
    const Cycle begin = t.lastWrite[w];
    if (!ivs.empty() && begin <= ivs.back().end + 1) {
        ivs.back().end = std::max(ivs.back().end, cycle);
    } else {
        ivs.push_back({begin, cycle});
        ++total_intervals_;
    }

    // Value residency: this read observes `value`, so it disagrees with
    // stuck-at-1 in every 0 bit and with stuck-at-0 in every 1 bit; a
    // fault injected at or before this cycle in those (bit, value)
    // pairs is not provably benign, i.e. agreeFrom advances to cycle+1.
    std::uint32_t slot = t.residencySlot[w];
    if (slot == FaultWindows::kResidencyNeverRead) {
        if (total_residency_slots_ >= kMaxResidencySlots) {
            t.residencySlot[w] = FaultWindows::kResidencyUnknown;
            return;
        }
        ++total_residency_slots_;
        slot = static_cast<std::uint32_t>(t.agreeFrom.size() / 64);
        t.residencySlot[w] = slot;
        t.agreeFrom.resize(t.agreeFrom.size() + 64, 0);
    } else if (slot == FaultWindows::kResidencyUnknown) {
        return;
    }
    const std::uint32_t stamp =
        cycle + 1 >= FaultWindows::kResidencySaturated
            ? FaultWindows::kResidencySaturated
            : static_cast<std::uint32_t>(cycle + 1);
    std::uint32_t* base = t.agreeFrom.data() + std::size_t{slot} * 64;
    for (unsigned b = 0; b < 32; ++b)
        base[(((value >> b) & 1u) ? 0 : 32) + b] = stamp;
}

void
FaultWindowRecorder::onWrite(TargetStructure structure, SmId sm,
                             std::uint32_t word, Cycle cycle)
{
    Tracker& t = tracker(structure);
    if (!t.tracked)
        return;
    const std::size_t w =
        static_cast<std::size_t>(sm) * t.wordsPerSm + word;
    GPR_ASSERT(w < t.lastWrite.size(), "observer word out of range");
    // A flip lands at a cycle *start*; a write lands mid-cycle and
    // erases any flip from the same cycle, so observability windows
    // opened by later reads begin the following cycle.
    t.lastWrite[w] = cycle + 1;
}

void
FaultWindowRecorder::finalize(FaultWindows& out)
{
    if (total_intervals_ > kMaxIntervals) {
        out.enabled_ = false;
        return;
    }
    for (std::size_t s = 0; s < trackers_.size(); ++s) {
        Tracker& t = trackers_[s];
        FaultWindows::StructureWindows& w = out.windows_[s];
        w.offsets.clear();
        w.offsets.reserve(t.perWord.size() + 1);
        w.intervals.clear();
        w.offsets.push_back(0);
        for (auto& ivs : t.perWord) {
            w.intervals.insert(w.intervals.end(), ivs.begin(), ivs.end());
            w.offsets.push_back(w.intervals.size());
            ivs = {};
        }
        w.residencySlot = std::move(t.residencySlot);
        w.agreeFrom = std::move(t.agreeFrom);
        t.lastWrite = {};
        t.perWord = {};
        t.residencySlot = {};
        t.agreeFrom = {};
    }
    out.enabled_ = true;
}

} // namespace gpr
