#include "reliability/fault_windows.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gpr {
namespace {

/**
 * Safety cap on recorded intervals (~1 GB of windows at 16 B each
 * would be far past it).  A pathological run that exceeds it simply
 * loses the prefilter — observed() turns conservative — while the
 * checkpoint/hash engine keeps working.
 */
constexpr std::size_t kMaxIntervals = std::size_t{1} << 24;

} // namespace

bool
FaultWindows::observed(TargetStructure structure, std::uint64_t word,
                       Cycle cycle) const
{
    if (!enabled_)
        return true;
    const StructureWindows& w = forStructure(structure);
    if (word + 1 >= w.offsets.size())
        return true; // unknown structure/word: stay conservative
    const auto begin = w.intervals.begin() +
                       static_cast<std::ptrdiff_t>(w.offsets[word]);
    const auto end = w.intervals.begin() +
                     static_cast<std::ptrdiff_t>(w.offsets[word + 1]);
    // First interval whose end >= cycle; observable iff it started.
    const auto it = std::lower_bound(
        begin, end, cycle,
        [](const Interval& iv, Cycle c) { return iv.end < c; });
    return it != end && it->begin <= cycle;
}

std::size_t
FaultWindows::intervalCount() const
{
    std::size_t n = 0;
    for (const StructureWindows& w : windows_)
        n += w.intervals.size();
    return n;
}

FaultWindowRecorder::FaultWindowRecorder(const GpuConfig& config)
{
    for (const StructureSpec& spec : structureRegistry()) {
        if (!spec.exactDeadWindows)
            continue; // control bits: no exact windows exist
        Tracker& t = tracker(spec.id);
        t.tracked = true;
        t.wordsPerSm =
            static_cast<std::uint32_t>(spec.aceUnitsPerSm(config));
        const std::size_t total =
            static_cast<std::size_t>(config.numSms) * t.wordsPerSm;
        t.lastWrite.assign(total, 0);
        t.perWord.resize(total);
    }
}

void
FaultWindowRecorder::onRead(TargetStructure structure, SmId sm,
                            std::uint32_t word, Cycle cycle)
{
    Tracker& t = tracker(structure);
    if (!t.tracked)
        return;
    const std::size_t w =
        static_cast<std::size_t>(sm) * t.wordsPerSm + word;
    GPR_ASSERT(w < t.perWord.size(), "observer word out of range");
    auto& ivs = t.perWord[w];
    const Cycle begin = t.lastWrite[w];
    if (!ivs.empty() && begin <= ivs.back().end + 1) {
        ivs.back().end = std::max(ivs.back().end, cycle);
    } else {
        ivs.push_back({begin, cycle});
        ++total_intervals_;
    }
}

void
FaultWindowRecorder::onWrite(TargetStructure structure, SmId sm,
                             std::uint32_t word, Cycle cycle)
{
    Tracker& t = tracker(structure);
    if (!t.tracked)
        return;
    const std::size_t w =
        static_cast<std::size_t>(sm) * t.wordsPerSm + word;
    GPR_ASSERT(w < t.lastWrite.size(), "observer word out of range");
    // A flip lands at a cycle *start*; a write lands mid-cycle and
    // erases any flip from the same cycle, so observability windows
    // opened by later reads begin the following cycle.
    t.lastWrite[w] = cycle + 1;
}

void
FaultWindowRecorder::finalize(FaultWindows& out)
{
    if (total_intervals_ > kMaxIntervals) {
        out.enabled_ = false;
        return;
    }
    for (std::size_t s = 0; s < trackers_.size(); ++s) {
        Tracker& t = trackers_[s];
        FaultWindows::StructureWindows& w = out.windows_[s];
        w.offsets.clear();
        w.offsets.reserve(t.perWord.size() + 1);
        w.intervals.clear();
        w.offsets.push_back(0);
        for (auto& ivs : t.perWord) {
            w.intervals.insert(w.intervals.end(), ivs.begin(), ivs.end());
            w.offsets.push_back(w.intervals.size());
            ivs = {};
        }
        t.lastWrite = {};
        t.perWord = {};
    }
    out.enabled_ = true;
}

} // namespace gpr
