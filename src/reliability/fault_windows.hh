/**
 * @file
 * Exact golden-run observability windows — the zero-simulation half of
 * the checkpoint-restore injection engine.
 *
 * A single-bit flip only enters computation through a *read* of its
 * word: every other event (writes overwrite the whole word,
 * alloc/free/dispatch move metadata) leaves the injected trajectory
 * bit-identical to the golden run.  So a flip applied at the start of
 * cycle C in word W changes the outcome only if the golden run reads W
 * at some cycle r >= C whose defining write precedes C — i.e. only if
 * C lies inside one of W's live intervals [w, r] (w = last write
 * strictly before the read, with w advanced past a write's own cycle
 * since the flip lands at cycle *start* and the write lands mid-cycle).
 *
 * Recording one merged, disjoint interval list per word during the
 * golden pass therefore yields an exact O(log k) pre-classification:
 * outside every window the fault is Masked with *no* simulation at all.
 * Unlike ACE lifetime accounting this is not conservative-by-design —
 * allocation does NOT close a window (a later block that read a word
 * before writing it would observe the stale flipped value, so such
 * reads extend windows across alloc boundaries) — which is what keeps
 * the classification bit-identical to a from-scratch injected run.
 *
 * The read-only-entry argument above holds only for word-granular
 * storage.  Control-bit structures (predicate file, SIMT stack) become
 * architecturally visible without any modelled "read" — a flipped PC
 * acts at the next issue — so only registry entries with
 * exactDeadWindows participate; observed() stays conservatively true
 * for every other structure and the injector skips the prefilter for
 * them up front.
 */

#ifndef GPR_RELIABILITY_FAULT_WINDOWS_HH
#define GPR_RELIABILITY_FAULT_WINDOWS_HH

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "arch/gpu_config.hh"
#include "sim/observer.hh"
#include "sim/structure_registry.hh"

namespace gpr {

/** How a checkpoint budget is distributed over the golden run. */
enum class CheckpointPlacement : std::uint8_t
{
    /** Evenly spaced: cycle i*golden/(N+1) (the legacy policy). */
    Even,
    /**
     * Fault-aware: place checkpoints where the observed-bit density of
     * the golden run concentrates, minimising the expected replay
     * distance (fault cycle minus nearest checkpoint at or before it)
     * of a uniformly sampled *surviving* fault — faults the dead-window
     * prefilter discards cost nothing, so they carry no weight.
     */
    FaultAware,
};

constexpr std::string_view
checkpointPlacementName(CheckpointPlacement p)
{
    return p == CheckpointPlacement::Even ? "even" : "fault-aware";
}

/**
 * Per-structure observability windows, finalised into CSR layout
 * (offsets into one flat interval array) for compact sharing inside a
 * CheckpointPack.
 */
class FaultWindows
{
  public:
    struct Interval
    {
        Cycle begin = 0; ///< first start-of-cycle the flip is observable
        Cycle end = 0;   ///< last such cycle (inclusive)
    };

    /** True when windows were recorded (and not discarded by the
     *  interval-count safety cap). */
    bool enabled() const { return enabled_; }

    /**
     * Would a flip applied at the start of @p cycle in chip-global
     * @p word of @p structure ever be read before being overwritten?
     * False means the fault is exactly Masked.  Conservative on a
     * disabled/unknown structure (returns true).
     */
    bool observed(TargetStructure structure, std::uint64_t word,
                  Cycle cycle) const;

    /** Total recorded intervals (tests / diagnostics). */
    std::size_t intervalCount() const;

    /**
     * Choose up to @p budget checkpoint cycles in (0, @p goldenCycles)
     * minimising the expected replay distance of a uniformly sampled
     * fault that survives the dead-window prefilter.  The per-cycle
     * weight is the number of fault-space bits whose injection at that
     * cycle requires simulation: for structures with exact windows,
     * 32 bits per word live inside an observability interval; for
     * everything else (control bits — never prefiltered) the full bit
     * count, uniformly.  Solved exactly over a bucketed histogram by
     * dynamic programming, with an implicit free checkpoint at cycle 0.
     * Returns ascending, deduplicated cycles (possibly fewer than the
     * budget when extra checkpoints cannot reduce the cost).  With
     * windows disabled the weight is uniform and the result is close to
     * even spacing.
     */
    std::vector<Cycle> placeCheckpoints(const GpuConfig& config,
                                        Cycle goldenCycles,
                                        unsigned budget) const;

  private:
    friend class FaultWindowRecorder;

    struct StructureWindows
    {
        std::vector<std::uint64_t> offsets; ///< words+1 entries (CSR)
        std::vector<Interval> intervals;
    };

    const StructureWindows&
    forStructure(TargetStructure s) const
    {
        return windows_[static_cast<std::size_t>(s)];
    }

    std::array<StructureWindows, kNumTargetStructures> windows_;
    bool enabled_ = false;
};

/**
 * The SimObserver that records windows during one golden pass.  Events
 * arrive in nondecreasing cycle order per word, so intervals are built
 * and merged in O(1) amortised per access.  finalize() flattens the
 * per-word lists into the CSR FaultWindows and frees the working set.
 */
class FaultWindowRecorder : public SimObserver
{
  public:
    explicit FaultWindowRecorder(const GpuConfig& config);

    void onRead(TargetStructure structure, SmId sm, std::uint32_t word,
                Cycle cycle) override;
    void onWrite(TargetStructure structure, SmId sm, std::uint32_t word,
                 Cycle cycle) override;

    /** Flatten into @p out; the recorder is spent afterwards. */
    void finalize(FaultWindows& out);

  private:
    struct Tracker
    {
        /** False for structures without exact windows (control bits):
         *  their events are ignored and no intervals are recorded. */
        bool tracked = false;
        std::uint32_t wordsPerSm = 0;
        std::vector<Cycle> lastWrite; ///< next observable start cycle
        std::vector<std::vector<FaultWindows::Interval>> perWord;
    };

    Tracker& tracker(TargetStructure s)
    {
        return trackers_[static_cast<std::size_t>(s)];
    }

    std::array<Tracker, kNumTargetStructures> trackers_;
    std::size_t total_intervals_ = 0;
};

} // namespace gpr

#endif // GPR_RELIABILITY_FAULT_WINDOWS_HH
