/**
 * @file
 * Exact golden-run observability windows — the zero-simulation half of
 * the checkpoint-restore injection engine.
 *
 * A single-bit flip only enters computation through a *read* of its
 * word: every other event (writes overwrite the whole word,
 * alloc/free/dispatch move metadata) leaves the injected trajectory
 * bit-identical to the golden run.  So a flip applied at the start of
 * cycle C in word W changes the outcome only if the golden run reads W
 * at some cycle r >= C whose defining write precedes C — i.e. only if
 * C lies inside one of W's live intervals [w, r] (w = last write
 * strictly before the read, with w advanced past a write's own cycle
 * since the flip lands at cycle *start* and the write lands mid-cycle).
 *
 * Recording one merged, disjoint interval list per word during the
 * golden pass therefore yields an exact O(log k) pre-classification:
 * outside every window the fault is Masked with *no* simulation at all.
 * Unlike ACE lifetime accounting this is not conservative-by-design —
 * allocation does NOT close a window (a later block that read a word
 * before writing it would observe the stale flipped value, so such
 * reads extend windows across alloc boundaries) — which is what keeps
 * the classification bit-identical to a from-scratch injected run.
 *
 * The read-only-entry argument above holds only for word-granular
 * storage.  Control-bit structures (predicate file, SIMT stack) become
 * architecturally visible without any modelled "read" — a flipped PC
 * acts at the next issue — so only registry entries with
 * exactDeadWindows participate; observed() stays conservatively true
 * for every other structure and the injector skips the prefilter for
 * them up front.
 *
 * Value residency (persistent-fault prefilter).  The same read-only-
 * entry argument extends to stuck-at faults: a read-overlay fault never
 * mutates the raw word, so a stuck-at-v fault in a bit is provably
 * Masked iff every golden read of its word at or after the fault cycle
 * already observes the bit equal to v — the forced value then never
 * changes any value entering computation.  Recording, per tracked word
 * and bit, the last golden read cycle that *disagrees* with each forced
 * value collapses this to one threshold per (bit, value):
 * stuckAgreeCycle() returns the first injection cycle from which the
 * fault is provably benign, exact by construction for word-granular
 * storage and conservative (kNeverAgrees) everywhere else.  The same
 * threshold is sound for intermittent faults queried with their forced
 * value: inactive phases read the raw (golden) word, so agreement over
 * all reads is sufficient (if slightly conservative).
 */

#ifndef GPR_RELIABILITY_FAULT_WINDOWS_HH
#define GPR_RELIABILITY_FAULT_WINDOWS_HH

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "arch/gpu_config.hh"
#include "sim/observer.hh"
#include "sim/structure_registry.hh"

namespace gpr {

/** How a checkpoint budget is distributed over the golden run. */
enum class CheckpointPlacement : std::uint8_t
{
    /** Evenly spaced: cycle i*golden/(N+1) (the legacy policy). */
    Even,
    /**
     * Fault-aware: place checkpoints where the observed-bit density of
     * the golden run concentrates, minimising the expected replay
     * distance (fault cycle minus nearest checkpoint at or before it)
     * of a uniformly sampled *surviving* fault — faults the dead-window
     * prefilter discards cost nothing, so they carry no weight.
     */
    FaultAware,
};

constexpr std::string_view
checkpointPlacementName(CheckpointPlacement p)
{
    return p == CheckpointPlacement::Even ? "even" : "fault-aware";
}

/**
 * Per-structure observability windows, finalised into CSR layout
 * (offsets into one flat interval array) for compact sharing inside a
 * CheckpointPack.
 */
class FaultWindows
{
  public:
    struct Interval
    {
        Cycle begin = 0; ///< first start-of-cycle the flip is observable
        Cycle end = 0;   ///< last such cycle (inclusive)
    };

    /** True when windows were recorded (and not discarded by the
     *  interval-count safety cap). */
    bool enabled() const { return enabled_; }

    /**
     * Would a flip applied at the start of @p cycle in chip-global
     * @p word of @p structure ever be read before being overwritten?
     * False means the fault is exactly Masked.  Conservative on a
     * disabled/unknown structure (returns true).
     */
    bool observed(TargetStructure structure, std::uint64_t word,
                  Cycle cycle) const;

    /** stuckAgreeCycle() result meaning "never provably benign". */
    static constexpr Cycle kNeverAgrees = ~Cycle{0};

    /**
     * First cycle C such that an always-forced stuck-at-@p value fault
     * in bits [@p firstBit, @p firstBit + @p width) of chip-global
     * @p word of @p structure, injected at any cycle >= C, is provably
     * Masked: every golden read of the word at or after C observes all
     * the faulted bits equal to @p value.  0 means the word is never
     * read (always benign); kNeverAgrees means no such cycle is known
     * (conservative for disabled/unknown structures, exact otherwise).
     * Bits must lie within one 32-bit word (the FaultPattern contract).
     */
    Cycle stuckAgreeCycle(TargetStructure structure, std::uint64_t word,
                          unsigned firstBit, unsigned width,
                          bool value) const;

    /** Total recorded intervals (tests / diagnostics). */
    std::size_t intervalCount() const;

    /**
     * Choose up to @p budget checkpoint cycles in (0, @p goldenCycles)
     * minimising the expected replay distance of a uniformly sampled
     * fault that survives the dead-window prefilter.  The per-cycle
     * weight is the number of fault-space bits whose injection at that
     * cycle requires simulation: for structures with exact windows,
     * 32 bits per word live inside an observability interval; for
     * everything else (control bits — never prefiltered) the full bit
     * count, uniformly.  Solved exactly over a bucketed histogram by
     * dynamic programming, with an implicit free checkpoint at cycle 0.
     * Returns ascending, deduplicated cycles (possibly fewer than the
     * budget when extra checkpoints cannot reduce the cost).  With
     * windows disabled the weight is uniform and the result is close to
     * even spacing.
     */
    std::vector<Cycle> placeCheckpoints(const GpuConfig& config,
                                        Cycle goldenCycles,
                                        unsigned budget) const;

  private:
    friend class FaultWindowRecorder;

    /** residencySlot entry: the word was never read (always benign). */
    static constexpr std::uint32_t kResidencyNeverRead = 0xFFFFFFFFu;
    /** residencySlot entry: residency unknown (slot cap overflow). */
    static constexpr std::uint32_t kResidencyUnknown = 0xFFFFFFFEu;
    /** agreeFrom stamp: disagreement too late to represent in 32 bits. */
    static constexpr std::uint32_t kResidencySaturated = 0xFFFFFFFFu;

    struct StructureWindows
    {
        std::vector<std::uint64_t> offsets; ///< words+1 entries (CSR)
        std::vector<Interval> intervals;
        /** Per word: slot index into agreeFrom, or a sentinel above. */
        std::vector<std::uint32_t> residencySlot;
        /** 64 stamps per slot, laid out [value*32 + bit]: the last
         *  disagreeing golden read cycle + 1 (0 = never disagrees). */
        std::vector<std::uint32_t> agreeFrom;
    };

    const StructureWindows&
    forStructure(TargetStructure s) const
    {
        return windows_[static_cast<std::size_t>(s)];
    }

    std::array<StructureWindows, kNumTargetStructures> windows_;
    bool enabled_ = false;
};

/**
 * The SimObserver that records windows during one golden pass.  Events
 * arrive in nondecreasing cycle order per word, so intervals are built
 * and merged in O(1) amortised per access.  finalize() flattens the
 * per-word lists into the CSR FaultWindows and frees the working set.
 */
class FaultWindowRecorder : public SimObserver
{
  public:
    explicit FaultWindowRecorder(const GpuConfig& config);

    void onRead(TargetStructure structure, SmId sm, std::uint32_t word,
                Word value, Cycle cycle) override;
    void onWrite(TargetStructure structure, SmId sm, std::uint32_t word,
                 Cycle cycle) override;

    /** Flatten into @p out; the recorder is spent afterwards. */
    void finalize(FaultWindows& out);

  private:
    struct Tracker
    {
        /** False for structures without exact windows (control bits):
         *  their events are ignored and no intervals are recorded. */
        bool tracked = false;
        std::uint32_t wordsPerSm = 0;
        std::vector<Cycle> lastWrite; ///< next observable start cycle
        std::vector<std::vector<FaultWindows::Interval>> perWord;
        /** Per word: agreeFrom slot (lazily allocated on first read). */
        std::vector<std::uint32_t> residencySlot;
        std::vector<std::uint32_t> agreeFrom; ///< 64 stamps per slot
    };

    Tracker& tracker(TargetStructure s)
    {
        return trackers_[static_cast<std::size_t>(s)];
    }

    std::array<Tracker, kNumTargetStructures> trackers_;
    std::size_t total_intervals_ = 0;
    std::size_t total_residency_slots_ = 0;
};

} // namespace gpr

#endif // GPR_RELIABILITY_FAULT_WINDOWS_HH
