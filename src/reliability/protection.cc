#include "reliability/protection.hh"

#include "common/logging.hh"

namespace gpr {

ProtectionScheme
unprotectedScheme()
{
    ProtectionScheme s;
    s.name = "unprotected";
    return s;
}

ProtectionScheme
parityScheme()
{
    ProtectionScheme s;
    s.name = "parity";
    s.sdcResidual = 0.0;
    s.sdcToDue = 1.0;
    s.dueResidual = 1.0;
    s.perfOverhead = 0.01;
    return s;
}

ProtectionScheme
eccSecdedScheme()
{
    ProtectionScheme s;
    s.name = "ECC-SECDED";
    s.sdcResidual = 0.01;
    s.sdcToDue = 0.0;
    s.dueResidual = 0.01;
    s.perfOverhead = 0.03;
    return s;
}

const std::vector<ProtectionScheme>&
builtinProtectionSchemes()
{
    static const std::vector<ProtectionScheme> schemes = {
        unprotectedScheme(),
        parityScheme(),
        eccSecdedScheme(),
    };
    return schemes;
}

ProtectedRates
applyProtection(const ProtectionScheme& scheme, double sdc, double due)
{
    GPR_ASSERT(sdc >= 0.0 && due >= 0.0 && sdc + due <= 1.0 + 1e-9,
               "rates must form a sub-probability");
    ProtectedRates out;
    out.sdc = sdc * scheme.sdcResidual;
    out.due = due * scheme.dueResidual + sdc * scheme.sdcToDue;
    return out;
}

} // namespace gpr
