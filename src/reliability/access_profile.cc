#include "reliability/access_profile.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/gpu.hh"

namespace gpr {

const AccessSummary&
AccessProfileResult::forStructure(TargetStructure s) const
{
    return structureEntry(structures, s, "AccessProfileResult");
}

AccessProfiler::AccessProfiler(const GpuConfig& config)
{
    counters_.resize(kNumTargetStructures);
    for (const StructureSpec& spec : structureRegistry()) {
        Counters& c = counters_[static_cast<std::size_t>(spec.id)];
        const std::uint64_t units_per_sm = spec.aceUnitsPerSm(config);
        if (units_per_sm == 0)
            continue;
        c.unitsPerSm = static_cast<std::uint32_t>(units_per_sm);
        // Chip-scoped structures (the shared L2) report all events with
        // sm == 0, so a single instance's worth of units suffices.
        const std::uint64_t instances =
            spec.scope == StructureScope::PerSm ? config.numSms : 1;
        c.reads.assign(instances * units_per_sm, 0);
        c.writes.assign(instances * units_per_sm, 0);
    }
}

AccessProfiler::Counters&
AccessProfiler::counters(TargetStructure structure)
{
    const auto index = static_cast<std::size_t>(structure);
    if (index >= counters_.size()) {
        fatal("access event for unregistered structure id ",
              static_cast<unsigned>(structure));
    }
    return counters_[index];
}

const AccessProfiler::Counters&
AccessProfiler::counters(TargetStructure structure) const
{
    return const_cast<AccessProfiler*>(this)->counters(structure);
}

void
AccessProfiler::onRead(TargetStructure structure, SmId sm,
                       std::uint32_t word, Word, Cycle)
{
    Counters& c = counters(structure);
    ++c.reads[std::uint64_t{sm} * c.unitsPerSm + word];
}

void
AccessProfiler::onWrite(TargetStructure structure, SmId sm,
                        std::uint32_t word, Cycle)
{
    Counters& c = counters(structure);
    ++c.writes[std::uint64_t{sm} * c.unitsPerSm + word];
}

AccessSummary
AccessProfiler::summary(TargetStructure structure) const
{
    const Counters& c = counters(structure);
    AccessSummary s;
    s.structure = structure;
    s.totalWords = c.reads.size();

    std::vector<std::uint64_t> per_word;
    for (std::size_t i = 0; i < c.reads.size(); ++i) {
        const std::uint64_t total =
            std::uint64_t{c.reads[i]} + c.writes[i];
        s.reads += c.reads[i];
        s.writes += c.writes[i];
        if (total > 0) {
            ++s.touchedWords;
            per_word.push_back(total);
        }
    }

    if (!per_word.empty()) {
        std::sort(per_word.begin(), per_word.end(),
                  std::greater<std::uint64_t>());
        const std::size_t top =
            std::max<std::size_t>(1, per_word.size() / 10);
        std::uint64_t top_sum = 0, all_sum = 0;
        for (std::size_t i = 0; i < per_word.size(); ++i) {
            all_sum += per_word[i];
            if (i < top)
                top_sum += per_word[i];
        }
        s.top10Share = all_sum ? static_cast<double>(top_sum) /
                                     static_cast<double>(all_sum)
                               : 0.0;
    }
    return s;
}

AccessProfileResult
profileAccesses(const GpuConfig& config, const WorkloadInstance& instance)
{
    AccessProfiler profiler(config);
    Gpu gpu(config);
    RunOptions options;
    options.observer = &profiler;
    const RunResult run = gpu.run(instance.program, instance.launch,
                                  instance.image, options);
    if (!run.clean()) {
        fatal("access profiling: fault-free run of '",
              instance.workloadName, "' trapped (",
              trapKindName(run.trap), ")");
    }

    AccessProfileResult result;
    result.structures.reserve(kNumTargetStructures);
    for (const StructureSpec& spec : structureRegistry())
        result.structures.push_back(profiler.summary(spec.id));
    return result;
}

} // namespace gpr
