#include "reliability/campaign.hh"

// gpr:lint-allow-file(D1): timing whitelist — steady_clock reads feed
// only busy-seconds diagnostics (wallSeconds/phaseStats), never outcome
// counts, hashes, or RNG draws.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/logging.hh"
#include "common/worker_pool.hh"

namespace gpr {

CampaignResult
runCampaign(const GpuConfig& config, const WorkloadInstance& instance,
            TargetStructure structure, const CampaignConfig& cc)
{
    CampaignResult result;
    result.structure = structure;
    result.confidence = cc.plan.confidence;

    const bool adaptive = cc.plan.adaptive();
    // The most injections this campaign can run (adaptive only ever
    // stops earlier).
    const std::size_t cap = cc.plan.resolvedMaxInjections();

    // Golden run once up front (also validates the workload); the same
    // probe then records the campaign's shared checkpoint pack.  That
    // recording pass is a second full golden simulation — unavoidable,
    // since checkpoint/hash-boundary spacing needs the golden cycle
    // count before the recording run starts — and it amortises across
    // the campaign's injections the same way the golden run itself
    // does.
    std::shared_ptr<const CheckpointPack> pack;
    {
        FaultInjector probe(config, instance);
        result.goldenStats = probe.goldenRun().stats;
        if (cc.checkpoints > 0 && cap > 0)
            pack = probe.buildCheckpointPack(cc.checkpoints, cc.placement);
    }

    if (cap == 0)
        return result;

    std::mutex merge_mutex;
    std::vector<InjectionResult> records;
    if (cc.keepRecords)
        records.resize(cap);

    // Run injections [begin, end) and fold their outcomes into the
    // result.  Adaptive campaigns call this once per look of the
    // schedule; fixed campaigns once for the whole plan.
    auto run_range = [&](std::size_t begin, std::size_t end) {
        std::atomic<std::size_t> next{begin};

        auto worker_fn = [&]() {
            // Adopt the shared golden: the reference simulation already
            // ran once for this campaign; workers only need its cycle
            // count (and the checkpoint pack, which is read-only and
            // shared).
            FaultInjector injector(config, instance);
            injector.adoptGoldenCycles(result.goldenStats.cycles);
            if (pack)
                injector.adoptCheckpointPack(pack);
            std::size_t local_masked = 0, local_sdc = 0, local_due = 0;

            const auto classify = [&](const InjectionResult& r,
                                      std::size_t i) {
                switch (r.outcome) {
                  case FaultOutcome::Masked:
                    ++local_masked;
                    break;
                  case FaultOutcome::Sdc:
                    ++local_sdc;
                    break;
                  case FaultOutcome::Due:
                    ++local_due;
                    break;
                }
                if (cc.keepRecords)
                    records[i] = r;
            };

            // Shared-restore batching: a persistent-shape campaign with
            // a pack pre-draws a chunk of fault specs (sampling is a
            // pure function of (seed, index)) and executes it sorted by
            // checkpoint interval, so consecutive injections restore
            // from the same delta with the same scratch-image working
            // set.  Outcomes are order-independent counts, so the
            // result stays bit-identical to index-ordered execution.
            const bool batched =
                pack && faultBehaviorPersistent(cc.shape.behavior);
            const std::size_t stride = batched ? 32 : 1;

            const auto t0 = std::chrono::steady_clock::now();
            while (true) {
                const std::size_t i0 = next.fetch_add(stride);
                if (i0 >= end)
                    break;
                if (!batched) {
                    classify(runIndexedInjection(injector, structure,
                                                 cc.seed, i0, cc.shape),
                             i0);
                    continue;
                }
                const std::size_t i1 = std::min(end, i0 + stride);
                struct Drawn
                {
                    std::size_t index;
                    std::size_t checkpoint;
                    FaultSpec fault;
                };
                std::vector<Drawn> batch;
                batch.reserve(i1 - i0);
                for (std::size_t i = i0; i < i1; ++i) {
                    Rng rng(deriveSeed(cc.seed, i));
                    const FaultSpec fault =
                        injector.sampleRandom(structure, rng, cc.shape);
                    batch.push_back(
                        {i, injector.checkpointIndexFor(fault.cycle),
                         fault});
                }
                std::stable_sort(batch.begin(), batch.end(),
                                 [](const Drawn& a, const Drawn& b) {
                                     return a.checkpoint < b.checkpoint;
                                 });
                for (const Drawn& d : batch)
                    classify(injector.inject(d.fault), d.index);
            }
            const auto t1 = std::chrono::steady_clock::now();

            std::lock_guard<std::mutex> lock(merge_mutex);
            result.masked += local_masked;
            result.sdc += local_sdc;
            result.due += local_due;
            // Busy time, not pool wall-clock: summing per-worker
            // injection time stays correct when several campaigns share
            // worker threads (concurrent campaigns would otherwise each
            // claim the same wall-clock span).
            result.wallSeconds +=
                std::chrono::duration<double>(t1 - t0).count();
            // Per-worker accumulation merged at join: each worker's
            // injector owns its phase stats; the only shared write is
            // this one, under the merge mutex.
            result.phaseStats += injector.phaseStats();
        };

        unsigned workers =
            cc.numThreads
                ? cc.numThreads
                : std::max(1u, std::thread::hardware_concurrency());
        workers = static_cast<unsigned>(
            std::min<std::size_t>(workers, end - begin));

        if (workers <= 1 || WorkerPool::onWorkerThread()) {
            // Single-threaded, or already running on some pool's worker:
            // drain inline.  (Blocking a worker on tasks it queued
            // behind itself can deadlock, and fanning out from inside a
            // pool is the oversubscription this path exists to avoid.)
            worker_fn();
        } else {
            // Fan out over the process-wide shared pool instead of
            // spawning (and joining) a fresh std::thread set per
            // campaign.  Completion is tracked with a local latch rather
            // than waitIdle() so concurrent campaigns can share the
            // pool.
            WorkerPool& pool = sharedWorkerPool();
            workers = std::min(workers, pool.size());
            std::mutex done_mutex;
            std::condition_variable done_cv;
            unsigned done = 0;
            for (unsigned t = 0; t < workers; ++t) {
                pool.submit([&]() {
                    worker_fn();
                    std::lock_guard<std::mutex> lock(done_mutex);
                    ++done;
                    done_cv.notify_one();
                });
            }
            std::unique_lock<std::mutex> lock(done_mutex);
            done_cv.wait(lock, [&] { return done == workers; });
        }
    };

    if (!adaptive) {
        run_range(0, cap);
        result.injections = cap;
    } else {
        // Walk the deterministic look schedule; the decision at each
        // look is a pure function of the cumulative counts, so the
        // stopping point is independent of worker count.
        const double guarded = sequentialConfidence(cc.plan);
        std::size_t done = 0;
        for (std::uint64_t look : sequentialSchedule(cc.plan)) {
            const auto end = static_cast<std::size_t>(look);
            run_range(done, end);
            done = end;
            result.injections = done;
            if (evaluateSequentialStop(result.sdc, result.due, done,
                                       cc.plan, guarded)
                    .stop) {
                break;
            }
        }
    }

    if (cc.keepRecords) {
        records.resize(result.injections);
        result.records = std::move(records);
    }

    GPR_ASSERT(result.masked + result.sdc + result.due ==
                   result.injections,
               "campaign accounting mismatch");
    return result;
}

} // namespace gpr
