#include "reliability/campaign.hh"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "common/logging.hh"

namespace gpr {

CampaignResult
runCampaign(const GpuConfig& config, const WorkloadInstance& instance,
            TargetStructure structure, const CampaignConfig& cc)
{
    CampaignResult result;
    result.structure = structure;
    result.confidence = cc.plan.confidence;

    // Golden run once up front (also validates the workload).
    {
        FaultInjector probe(config, instance);
        result.goldenStats = probe.goldenRun().stats;
    }

    const std::size_t n = cc.plan.injections;
    result.injections = n;
    if (n == 0)
        return result;

    unsigned workers = cc.numThreads
                           ? cc.numThreads
                           : std::max(1u, std::thread::hardware_concurrency());
    workers = static_cast<unsigned>(
        std::min<std::size_t>(workers, n));

    std::atomic<std::size_t> next{0};
    std::mutex merge_mutex;
    std::vector<InjectionResult> records;
    if (cc.keepRecords)
        records.resize(n);

    auto worker_fn = [&]() {
        // Adopt the shared golden: the reference simulation already ran
        // once for this campaign; workers only need its cycle count.
        FaultInjector injector(config, instance);
        injector.adoptGoldenCycles(result.goldenStats.cycles);
        std::size_t local_masked = 0, local_sdc = 0, local_due = 0;

        const auto t0 = std::chrono::steady_clock::now();
        while (true) {
            const std::size_t i = next.fetch_add(1);
            if (i >= n)
                break;
            const InjectionResult r =
                runIndexedInjection(injector, structure, cc.seed, i);
            switch (r.outcome) {
              case FaultOutcome::Masked:
                ++local_masked;
                break;
              case FaultOutcome::Sdc:
                ++local_sdc;
                break;
              case FaultOutcome::Due:
                ++local_due;
                break;
            }
            if (cc.keepRecords)
                records[i] = r;
        }
        const auto t1 = std::chrono::steady_clock::now();

        std::lock_guard<std::mutex> lock(merge_mutex);
        result.masked += local_masked;
        result.sdc += local_sdc;
        result.due += local_due;
        // Busy time, not pool wall-clock: summing per-worker injection
        // time stays correct when several campaigns share worker threads
        // (concurrent campaigns would otherwise each claim the same
        // wall-clock span).
        result.wallSeconds +=
            std::chrono::duration<double>(t1 - t0).count();
    };

    if (workers <= 1) {
        worker_fn();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned t = 0; t < workers; ++t)
            pool.emplace_back(worker_fn);
        for (auto& t : pool)
            t.join();
    }

    result.records = std::move(records);

    GPR_ASSERT(result.masked + result.sdc + result.due == n,
               "campaign accounting mismatch");
    return result;
}

} // namespace gpr
