#include "reliability/breakdown.hh"

#include "common/logging.hh"

namespace gpr {

double
VulnerabilityBreakdown::avfBitRange(unsigned lo_bit, unsigned hi_bit) const
{
    GPR_ASSERT(lo_bit <= hi_bit && hi_bit < 32, "bad bit range");
    std::uint64_t bad = 0, n = 0;
    for (unsigned b = lo_bit; b <= hi_bit; ++b) {
        bad += byBit[b].sdc + byBit[b].due;
        n += byBit[b].total();
    }
    return n ? static_cast<double>(bad) / static_cast<double>(n) : 0.0;
}

VulnerabilityBreakdown
computeBreakdown(const CampaignResult& campaign, Cycle golden_cycles)
{
    if (campaign.records.empty() && campaign.injections > 0) {
        fatal("computeBreakdown needs a campaign run with "
              "keepRecords=true");
    }
    GPR_ASSERT(golden_cycles > 0, "golden cycle count required");

    VulnerabilityBreakdown bd;
    for (const InjectionResult& r : campaign.records) {
        const unsigned bit = static_cast<unsigned>(r.fault.bitIndex % 32);
        std::size_t q = static_cast<std::size_t>(
            (static_cast<double>(r.fault.cycle) /
             static_cast<double>(golden_cycles)) * kTimeBuckets);
        if (q >= kTimeBuckets)
            q = kTimeBuckets - 1;

        auto bump = [&](OutcomeBucket& bucket) {
            switch (r.outcome) {
              case FaultOutcome::Masked:
                ++bucket.masked;
                break;
              case FaultOutcome::Sdc:
                ++bucket.sdc;
                break;
              case FaultOutcome::Due:
                ++bucket.due;
                break;
            }
        };
        bump(bd.byBit[bit]);
        bump(bd.byTime[q]);
        bump(bd.overall);
    }
    return bd;
}

VulnerabilityBreakdown
runBreakdownCampaign(const GpuConfig& config,
                     const WorkloadInstance& instance,
                     TargetStructure structure, CampaignConfig cc)
{
    cc.keepRecords = true;
    const CampaignResult campaign =
        runCampaign(config, instance, structure, cc);
    return computeBreakdown(campaign, campaign.goldenStats.cycles);
}

} // namespace gpr
