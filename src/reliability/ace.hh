/**
 * @file
 * ACE (Architecturally Correct Execution) analysis — the fast alternative
 * to fault injection (Mukherjee et al., MICRO 2003), as implemented inside
 * GUFI/SIFI.
 *
 * One instrumented simulation tracks, for every 32-bit word of the studied
 * structures, the intervals during which a bit flip *could* propagate to
 * the output.  Two accounting modes:
 *
 *  - Standard (offline, what the paper's tools use): a word is ACE from
 *    each write to the *last* read before the next write / deallocation.
 *  - Conservative: from each write to the next write / deallocation,
 *    provided at least one read consumed the value ("no future knowledge"
 *    — used by the ablation bench to show the accuracy/overhead knob).
 *
 * Both are conservative relative to fault injection: every read is assumed
 * to matter, whole words are counted even when only a few bits are live,
 * and logical masking (tolerance slack, pruned comparisons, saturation) is
 * invisible — which is exactly why the paper finds ACE overestimating the
 * register file AVF while matching FI closely for local memory.
 */

#ifndef GPR_RELIABILITY_ACE_HH
#define GPR_RELIABILITY_ACE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "arch/gpu_config.hh"
#include "sim/observer.hh"
#include "sim/stats.hh"
#include "workloads/workload.hh"

namespace gpr {

enum class AceMode : std::uint8_t
{
    Standard,     ///< write -> last read
    Conservative, ///< write -> next write (if read at all)
};

/** Per-structure ACE measurement. */
struct AceStructureResult
{
    TargetStructure structure = TargetStructure::VectorRegisterFile;
    /** Sum over words of ACE cycles (word-granular). */
    std::uint64_t aceWordCycles = 0;
    /** Structure size in words (chip-wide). */
    std::uint64_t totalWords = 0;
    /** Kernel duration in cycles. */
    Cycle cycles = 0;

    double
    avf() const
    {
        const double denom = static_cast<double>(totalWords) *
                             static_cast<double>(cycles);
        return denom > 0 ? static_cast<double>(aceWordCycles) / denom : 0.0;
    }
};

/** Full ACE analysis output for one (GPU, workload) pair. */
struct AceResult
{
    AceStructureResult registerFile;
    AceStructureResult sharedMemory;
    AceStructureResult scalarRegisterFile;
    SimStats goldenStats;
    double wallSeconds = 0.0;

    const AceStructureResult&
    forStructure(TargetStructure s) const
    {
        switch (s) {
          case TargetStructure::VectorRegisterFile:
            return registerFile;
          case TargetStructure::SharedMemory:
            return sharedMemory;
          case TargetStructure::ScalarRegisterFile:
            return scalarRegisterFile;
        }
        return registerFile;
    }
};

/**
 * The SimObserver that performs lifetime accounting.  Exposed so tests
 * can drive it directly with synthetic event streams.
 */
class AceAnalyzer : public SimObserver
{
  public:
    AceAnalyzer(const GpuConfig& config, AceMode mode);

    void onRead(TargetStructure structure, SmId sm, std::uint32_t word,
                Cycle cycle) override;
    void onWrite(TargetStructure structure, SmId sm, std::uint32_t word,
                 Cycle cycle) override;
    void onAlloc(TargetStructure structure, SmId sm, std::uint32_t first,
                 std::uint32_t count, Cycle cycle) override;
    void onFree(TargetStructure structure, SmId sm, std::uint32_t first,
                std::uint32_t count, Cycle cycle) override;
    void onKernelEnd(Cycle cycle) override;

    /** Accumulated ACE word-cycles for @p structure. */
    std::uint64_t aceWordCycles(TargetStructure structure) const;

  private:
    struct WordState
    {
        Cycle write = 0;
        Cycle lastRead = 0;
        bool allocated = false;
        bool readSinceWrite = false;
    };

    struct StructureTracker
    {
        std::vector<WordState> words; ///< numSms * wordsPerSm
        std::uint32_t wordsPerSm = 0;
        std::uint64_t aceCycles = 0;
    };

    StructureTracker& tracker(TargetStructure structure);
    const StructureTracker& tracker(TargetStructure structure) const;
    void commit(StructureTracker& t, WordState& w, Cycle upto);

    AceMode mode_;
    StructureTracker vrf_;
    StructureTracker lds_;
    StructureTracker srf_;
};

/**
 * Run one instrumented execution of @p instance on @p config and return
 * the ACE AVF of all structures.
 */
AceResult runAceAnalysis(const GpuConfig& config,
                         const WorkloadInstance& instance,
                         AceMode mode = AceMode::Standard);

} // namespace gpr

#endif // GPR_RELIABILITY_ACE_HH
