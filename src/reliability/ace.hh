/**
 * @file
 * ACE (Architecturally Correct Execution) analysis — the fast alternative
 * to fault injection (Mukherjee et al., MICRO 2003), as implemented inside
 * GUFI/SIFI.
 *
 * One instrumented simulation tracks, for every lifetime-accounting unit
 * of every registered structure (32-bit words for storage structures,
 * logical control units — a predicate register, a SIMT stack entry, the
 * PC/mask group — for control-bit structures), the intervals during which
 * a bit flip *could* propagate to the output.  Two accounting modes:
 *
 *  - Standard (offline, what the paper's tools use): a unit is ACE from
 *    each write to the *last* read before the next write / deallocation.
 *  - Conservative: from each write to the next write / deallocation,
 *    provided at least one read consumed the value ("no future knowledge"
 *    — used by the ablation bench to show the accuracy/overhead knob).
 *
 * Both are conservative relative to fault injection: every read is assumed
 * to matter, whole units are counted even when only a few bits are live,
 * and logical masking (tolerance slack, pruned comparisons, saturation) is
 * invisible — which is exactly why the paper finds ACE overestimating the
 * register file AVF while matching FI closely for local memory.
 */

#ifndef GPR_RELIABILITY_ACE_HH
#define GPR_RELIABILITY_ACE_HH

#include <cstdint>
#include <vector>

#include "arch/gpu_config.hh"
#include "sim/observer.hh"
#include "sim/stats.hh"
#include "sim/structure_registry.hh"
#include "workloads/workload.hh"

namespace gpr {

enum class AceMode : std::uint8_t
{
    Standard,     ///< write -> last read
    Conservative, ///< write -> next write (if read at all)
};

/** Per-structure ACE measurement. */
struct AceStructureResult
{
    TargetStructure structure = TargetStructure::VectorRegisterFile;
    /**
     * Sum over units of ACE cycles.  Uniform-unit structures (word
     * storage, predicate file) count one per unit-cycle; structures
     * with nonuniform units (the SIMT stack: a wide PC/mask group next
     * to narrower stack entries) weight each unit by its bit count so
     * the AVF stays a conservative bound on bit-uniform fault
     * injection.  totalUnits uses the matching denominator (units vs.
     * bits), so avf() is comparable either way.
     */
    std::uint64_t aceUnitCycles = 0;
    /** Denominator: lifetime-accounting units, or bits for structures
     *  with nonuniform unit widths (chip-wide). */
    std::uint64_t totalUnits = 0;
    /** Kernel duration in cycles. */
    Cycle cycles = 0;

    double
    avf() const
    {
        const double denom = static_cast<double>(totalUnits) *
                             static_cast<double>(cycles);
        return denom > 0 ? static_cast<double>(aceUnitCycles) / denom : 0.0;
    }
};

/** Full ACE analysis output for one (GPU, workload) pair. */
struct AceResult
{
    /** One entry per registered structure, in registry order. */
    std::vector<AceStructureResult> structures;
    SimStats goldenStats;
    double wallSeconds = 0.0;

    /** Lookup by id; throws FatalError on an unregistered structure. */
    const AceStructureResult& forStructure(TargetStructure s) const;
};

/**
 * The SimObserver that performs lifetime accounting.  Exposed so tests
 * can drive it directly with synthetic event streams.
 */
class AceAnalyzer : public SimObserver
{
  public:
    AceAnalyzer(const GpuConfig& config, AceMode mode);

    void onRead(TargetStructure structure, SmId sm, std::uint32_t word,
                Word value, Cycle cycle) override;
    void onWrite(TargetStructure structure, SmId sm, std::uint32_t word,
                 Cycle cycle) override;
    void onAlloc(TargetStructure structure, SmId sm, std::uint32_t first,
                 std::uint32_t count, Cycle cycle) override;
    void onFree(TargetStructure structure, SmId sm, std::uint32_t first,
                std::uint32_t count, Cycle cycle) override;
    void onKernelEnd(Cycle cycle) override;

    /** Accumulated ACE unit-cycles for @p structure. */
    std::uint64_t aceUnitCycles(TargetStructure structure) const;

  private:
    struct UnitState
    {
        Cycle write = 0;
        Cycle lastRead = 0;
        bool allocated = false;
        bool readSinceWrite = false;
    };

    struct StructureTracker
    {
        std::vector<UnitState> units; ///< numSms * unitsPerSm
        /** Per-unit bit weights (unitsPerSm entries, repeated per SM);
         *  empty = uniform units, weight 1. */
        std::vector<std::uint32_t> unitBits;
        std::uint32_t unitsPerSm = 0;
        std::uint64_t aceCycles = 0;
    };

    StructureTracker& tracker(TargetStructure structure);
    const StructureTracker& tracker(TargetStructure structure) const;
    void commit(StructureTracker& t, UnitState& u, Cycle upto);

    AceMode mode_;
    /** One tracker per registered structure, in registry order. */
    std::vector<StructureTracker> trackers_;
};

/**
 * Run one instrumented execution of @p instance on @p config and return
 * the ACE AVF of all registered structures.
 */
AceResult runAceAnalysis(const GpuConfig& config,
                         const WorkloadInstance& instance,
                         AceMode mode = AceMode::Standard);

} // namespace gpr

#endif // GPR_RELIABILITY_ACE_HH
